# Development targets. `make ci` is the pre-merge gate referenced from
# ROADMAP.md's tier-1 verify line.

GO ?= go

.PHONY: ci vet build test race fuzz experiments-small clean

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the Liberty parser (seeds always run under
# plain `go test`; this explores beyond them).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseLiberty -fuzztime=30s ./internal/liberty

experiments-small:
	$(GO) run ./cmd/experiments -small

clean:
	$(GO) clean ./...
