# Development targets. `make ci` is the pre-merge gate referenced from
# ROADMAP.md's tier-1 verify line.

GO ?= go

# Benchmarks tracked in BENCH_PR7.json (see DESIGN.md, "Performance
# baseline & benchmark JSON").
BENCH_JSON ?= BENCH_PR7.json
BENCH_PAT  ?= BenchmarkFig3Bilinear$$|BenchmarkFig6LargestRectangle$$|BenchmarkAnalyzeDesign$$|BenchmarkLUTBilinearLookup$$|BenchmarkSynthesize$$|BenchmarkSynthesizeRestricted$$
BENCH_SCALE ?= small
# Allocation-regression gate: bench-check fails any tracked benchmark
# whose allocs_per_op exceeds ALLOC_RATIO x its recorded baseline.
ALLOC_RATIO ?= 1.10

.PHONY: ci vet build test race fuzz fuzz-short bench-json bench-check experiments-small obs-smoke serve-smoke crash-smoke load-smoke cluster-smoke query-smoke cluster-bench clean

ci: vet build race fuzz-short bench-check obs-smoke serve-smoke crash-smoke load-smoke cluster-smoke query-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the Liberty parser (seeds always run under
# plain `go test`; this explores beyond them).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseLiberty -fuzztime=30s ./internal/liberty

# One short iteration over every fuzz target, so the NaN-lookup guard,
# the parser, the incremental-STA equivalence contract, and the journal's
# torn-tail recovery cannot regress silently in CI.
fuzz-short:
	$(GO) test -run=^$$ -fuzz=FuzzLookup -fuzztime=5s ./internal/lut
	$(GO) test -run=^$$ -fuzz=FuzzParseLiberty -fuzztime=5s ./internal/liberty
	$(GO) test -run=^$$ -fuzz=FuzzEngineEdits -fuzztime=5s ./internal/sta
	$(GO) test -run=^$$ -fuzz=FuzzReplay -fuzztime=5s ./internal/service/journal

# Regenerate the current numbers in $(BENCH_JSON) from the tracked
# benchmarks (STC_BENCH=$(BENCH_SCALE) flow; seed baselines recorded in
# the file are preserved). See DESIGN.md for the schema.
bench-json:
	STC_BENCH=$(BENCH_SCALE) $(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchmem . \
		| $(GO) run ./cmd/benchjson -out $(BENCH_JSON)

# Validate the tracked benchmark JSON (schema + phases) and fail on
# allocs_per_op regressions beyond ALLOC_RATIO x baseline.
bench-check:
	$(GO) run ./cmd/obscheck -bench $(BENCH_JSON) -allocratio $(ALLOC_RATIO)

experiments-small:
	$(GO) run ./cmd/experiments -small

# End-to-end observability smoke: run the small experiment battery with
# tracing and bench JSON on, then validate the three artifacts
# (Chrome trace, run manifest, bench JSON) with cmd/obscheck.
OBS_TRACE ?= /tmp/obs-trace.json
OBS_BENCH ?= /tmp/obs-bench.json

obs-smoke:
	$(GO) run ./cmd/experiments -small -trace $(OBS_TRACE) -benchjson $(OBS_BENCH)
	$(GO) run ./cmd/obscheck -trace $(OBS_TRACE) \
		-manifest $(basename $(OBS_TRACE)).manifest.json -bench $(OBS_BENCH)

# End-to-end service smoke: boot the stcd daemon on an ephemeral port,
# run the scaled-down pipeline cold and warm, assert the cache-hit and
# byte-identity contract, validate the API documents with cmd/obscheck,
# and check graceful SIGTERM drain. See scripts/serve_smoke.sh.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

# Crash-safety smoke: run stcd into a chaos-armed crash (exit 137 with a
# torn journal tail), restart over the same statedir/cachedir, and prove
# the job recovers as a warm cache hit with byte-identical artifacts,
# admission control answers 429, and the journal validates via
# obscheck -journal. See scripts/serve_crash_smoke.sh.
crash-smoke:
	GO="$(GO)" sh scripts/serve_crash_smoke.sh

# Serving-tier observability smoke: boot stcd on an ephemeral port,
# drive a small open-loop warm/cold mix with cmd/stcload, then validate
# the stdcelltune-load/1 report (obscheck -loadreport) and the /metrics
# Prometheus exposition's per-route RED series (obscheck -metrics).
# See scripts/load_smoke.sh.
load-smoke:
	GO="$(GO)" sh scripts/load_smoke.sh

# Cluster-mode smoke: a coordinator plus worker fleet runs a sharded
# characterize, one worker is SIGKILLed mid-shard (lease expiry + steal
# recover it with byte-identical artifacts), and a third node fills its
# cache from a peer with SHA-256 verification (outcome "peer"). The
# retained shard set validates via obscheck -shard. See
# scripts/cluster_smoke.sh and DESIGN.md section 15.
cluster-smoke:
	GO="$(GO)" sh scripts/cluster_smoke.sh

# Query-layer smoke: boot stcd, run one pipeline job through the
# stdcelltune-api/2 surface, and prove the library-as-a-database
# contract — cold query miss, warm byte-identical hit, normalization
# reaching the cache key, substitute what-if answered with exactly one
# full STA analysis, the api/2 error envelope, and docs/API.md in sync
# with the served route table (obscheck -apispec). See
# scripts/query_smoke.sh.
query-smoke:
	GO="$(GO)" sh scripts/query_smoke.sh

# Cluster scaling curve: single-node baseline vs 1/2/4 workers at
# N=200 with simulated characterizer latency; writes BENCH_PR9.json.
# Not part of `make ci` (it takes minutes by construction).
cluster-bench:
	GO="$(GO)" sh scripts/cluster_bench.sh

clean:
	$(GO) clean ./...
