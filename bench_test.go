// Benchmark harness: one benchmark per table and figure of the paper
// (see DESIGN.md §4). All benchmarks share one experiment flow, so every
// synthesis/tuning combination runs exactly once and later iterations
// measure the cached regeneration; the rendered table/series of each
// experiment is attached with b.Log (visible with -v).
//
// Set STC_BENCH=small to run against the scaled-down MCU and a smaller
// Monte-Carlo sample count.
package stdcelltune_test

import (
	"context"
	"os"
	"sync"
	"testing"

	"stdcelltune/internal/core"
	"stdcelltune/internal/dist"
	"stdcelltune/internal/exp"
	"stdcelltune/internal/lut"
	"stdcelltune/internal/pathmc"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stattime"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/synth"
	"stdcelltune/internal/variation"
)

var (
	benchOnce sync.Once
	benchFlow *exp.Flow
	benchErr  error
)

func flow(b *testing.B) *exp.Flow {
	b.Helper()
	benchOnce.Do(func() {
		cfg := exp.DefaultFlowConfig()
		if os.Getenv("STC_BENCH") == "small" {
			cfg = exp.SmallFlowConfig()
		}
		benchFlow, benchErr = exp.NewFlow(context.Background(), cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchFlow
}

func logOnce(b *testing.B, i int, text string) {
	if i == 0 {
		b.Log("\n" + text)
	}
}

// ----------------------------------------------------------- tables

func BenchmarkTable1ClockPeriods(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Table1()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkTable2ConstraintParams(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		logOnce(b, i, f.Table2().Render())
	}
}

func BenchmarkTable3BestBounds(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Table3()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

// ----------------------------------------------------------- figures

func BenchmarkFig1VariabilityMetric(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		logOnce(b, i, f.Fig1().Render())
	}
}

func BenchmarkFig2StatLibBuild(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkFig3Bilinear(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkFig4InverterSurfaces(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkFig5DriveSixSurfaces(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkFig6LargestRectangle(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkFig7AllSurfaces(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkFig8PeriodAreaCurve(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkFig9CellUseHistograms(b *testing.B) {
	f := flow(b)
	clocks, err := f.Clocks()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		hi, err := f.Fig9(clocks.HighPerf)
		if err != nil {
			b.Fatal(err)
		}
		lo, err := f.Fig9(clocks.Low)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, hi.Render()+"\n"+lo.Render())
	}
}

func BenchmarkFig10SigmaReduction(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkFig11CeilingTradeoff(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkFig12PathDepths(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkFig13SigmaVsDepth(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkFig14PathDelaySpread(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkFig15CornerScaling(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

func BenchmarkFig16LocalContribution(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

// BenchmarkExtPlacementClockTree regenerates the extension experiment:
// placement wire loads plus baseline-vs-tuned clock tree synthesis (the
// paper's future-work section).
func BenchmarkExtPlacementClockTree(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.ExtPNR()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

// BenchmarkExtPowerCost regenerates the power-cost extension: baseline
// vs tuned switching/internal/leakage power and power sigma.
func BenchmarkExtPowerCost(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.ExtPower()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

// BenchmarkExtYieldReclaim regenerates the yield/uncertainty-reclaim
// extension (the paper's motivation paragraph, quantified).
func BenchmarkExtYieldReclaim(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.ExtYield()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

// BenchmarkExtCornerTransfer regenerates the PVT-corner transfer
// extension: the same relative sigma reduction at fast/typical/slow.
func BenchmarkExtCornerTransfer(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.ExtCorners()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

// BenchmarkExtWorkloadGeneralization regenerates the cross-workload
// extension: MCU vs FIR vs CRC under the same tuning.
func BenchmarkExtWorkloadGeneralization(b *testing.B) {
	f := flow(b)
	for i := 0; i < b.N; i++ {
		r, err := f.ExtWorkloads()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r.Render())
	}
}

// --------------------------------------------------------- ablations
// The DESIGN.md §5 design-choice studies.

// Ablation 1: the paper's exhaustive largest-rectangle scan (Algorithm
// 1) against the histogram-stack implementation.
func BenchmarkAblationRectanglePaper(b *testing.B) {
	mask := rectangleMask(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mask.LargestRectangle()
	}
}

// BenchmarkAblationRectangleFast is the optimized counterpart.
func BenchmarkAblationRectangleFast(b *testing.B) {
	mask := rectangleMask(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mask.LargestRectangleFast()
	}
}

func rectangleMask(b *testing.B) *lut.Binary {
	f := flow(b)
	cell := f.Stat.Cell("NR4_6")
	maxEq, err := cell.Pins[0].MaxSigmaTable()
	if err != nil {
		b.Fatal(err)
	}
	return maxEq.ThresholdLE(0.02)
}

// Ablation 2: path convolution with rho=0 (eq. 10) vs correlated
// (eq. 9).
func BenchmarkAblationConvolutionRho(b *testing.B) {
	cells := make([]dist.Normal, 57)
	for i := range cells {
		cells[i] = dist.Normal{Mu: 0.04, Sigma: 0.002}
	}
	for i := 0; i < b.N; i++ {
		p0, err := dist.ConvolvePathCorrelated(cells, 0)
		if err != nil {
			b.Fatal(err)
		}
		p5, err := dist.ConvolvePathCorrelated(cells, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("57-cell path sigma: rho=0 %.5f ns, rho=0.5 %.5f ns", p0.Sigma, p5.Sigma)
		}
	}
}

// Ablation 3: statistical library accuracy versus Monte-Carlo sample
// count (the paper's future-work note).
func BenchmarkAblationStatlibSamples(b *testing.B) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	for i := 0; i < b.N; i++ {
		for _, n := range []int{10, 30, 50} {
			libs := variation.Instances(cat, variation.Config{N: n, Seed: 3})
			sl, err := statlib.Build("abl", libs)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				spec := cat.Spec("NR2_2")
				arc := sl.Cell("NR2_2").Pins[0].Arcs[0]
				want := spec.Sigma(spec.LoadAxis()[3], stdcell.SlewAxis[3], stdcell.Typical) * 1.05
				got := arc.SigmaRise.Values[3][3]
				b.Logf("N=%d: sigma estimate %.5f vs analytic %.5f", n, got, want)
			}
		}
	}
}

// Ablation 4: the sigma metric against the coefficient-of-variation
// metric on the Fig. 1 pair.
func BenchmarkAblationMetricChoice(b *testing.B) {
	left := dist.Normal{Mu: 0.5, Sigma: 0.01}
	right := dist.Normal{Mu: 5, Sigma: 0.1}
	for i := 0; i < b.N; i++ {
		if left.Variability() != right.Variability() {
			b.Fatal("premise broken")
		}
		if i == 0 {
			b.Logf("CoV identical (%.3f); sigma separates: %.3f vs %.3f",
				left.Variability(), left.Sigma, right.Sigma)
		}
	}
}

// Ablation 5: strength clustering vs per-cell thresholds at the same
// bound (built into the method set; timed here head-to-head).
func BenchmarkAblationClusteringMode(b *testing.B) {
	f := flow(b)
	tuner := core.NewTuner(f.Stat)
	for i := 0; i < b.N; i++ {
		_, repS, err := tuner.Tune(core.ParamsFor(core.CellStrengthLoadSlope, 0.03))
		if err != nil {
			b.Fatal(err)
		}
		_, repC, err := tuner.Tune(core.ParamsFor(core.CellLoadSlope, 0.03))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("clusters: strength=%d, per-cell=%d", len(repS.Clusters), len(repC.Clusters))
		}
	}
}

// BenchmarkAnalyzeDesign times the statistical-timing hot path on its
// own: one full stattime.Analyze over the baseline synthesis at the
// relaxed clock (every worst path re-analyzed per iteration, no flow
// cache in the loop). This is the headline number the benchmark JSON
// tracks.
func BenchmarkAnalyzeDesign(b *testing.B) {
	f := flow(b)
	clocks, err := f.Clocks()
	if err != nil {
		b.Fatal(err)
	}
	res, err := f.Baseline(clocks.Low)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stattime.Analyze(res.Timing, f.Stat, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesize times one full map+optimize of the MCU at the
// medium clock with no restrictions — the synthesis unit the experiment
// sweeps pay ~94% of their wall time in (BENCH_PR4.json tracks it). The
// flow cache is deliberately bypassed: every iteration maps and sizes
// from scratch.
func BenchmarkSynthesize(b *testing.B) {
	f := flow(b)
	clocks, err := f.Clocks()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Synthesize("mcu", f.MCU.Net, f.Cat, synth.DefaultOptions(clocks.Medium)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesizeRestricted is the restricted counterpart: the same
// map+optimize under binding sigma-ceiling windows, which exercises the
// legality-repair and repeater-insertion paths on top of sizing.
func BenchmarkSynthesizeRestricted(b *testing.B) {
	f := flow(b)
	clocks, err := f.Clocks()
	if err != nil {
		b.Fatal(err)
	}
	set, _, err := f.Tune(core.SigmaCeiling, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := synth.DefaultOptions(clocks.Medium)
		opts.Restrict = set
		if _, err := synth.Synthesize("mcu", f.MCU.Net, f.Cat, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks for the hot kernels.

func BenchmarkLUTBilinearLookup(b *testing.B) {
	f := flow(b)
	t := f.Stat.Cell("ND2_4").Pins[0].Arcs[0].SigmaRise
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Lookup(0.01, 0.07)
	}
}

func BenchmarkPathMonteCarlo(b *testing.B) {
	f := flow(b)
	clocks, err := f.Clocks()
	if err != nil {
		b.Fatal(err)
	}
	res, err := f.Baseline(clocks.Low)
	if err != nil {
		b.Fatal(err)
	}
	cp, err := res.Timing.CriticalPath()
	if err != nil {
		b.Fatal(err)
	}
	cfg := pathmc.DefaultConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pathmc.Simulate(cp, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
