package stdcelltune_test

import (
	"fmt"

	"stdcelltune"
)

// ExampleNewCatalogue shows the library inventory matching the paper's
// appendix.
func ExampleNewCatalogue() {
	cat := stdcelltune.NewCatalogue(stdcelltune.Typical)
	fmt.Println(len(cat.Lib.Cells), "cells at", cat.Corner.Name())
	fmt.Println("inverter sizes:", len(cat.Families["INV"]))
	// Output:
	// 304 cells at TT1P1V25C
	// inverter sizes: 19
}

// ExampleSweepBounds lists the paper's Table 2 sweep for the sigma
// ceiling method.
func ExampleSweepBounds() {
	fmt.Println(stdcelltune.SweepBounds(stdcelltune.SigmaCeiling))
	fmt.Println(stdcelltune.SweepBounds(stdcelltune.CellLoadSlope))
	// Output:
	// [0.04 0.03 0.02 0.01]
	// [1 0.05 0.03 0.01]
}

// ExampleTune restricts a small statistical library with the sigma
// ceiling method and prints what survives.
func ExampleTune() {
	cat := stdcelltune.NewCatalogue(stdcelltune.Typical)
	stat, err := stdcelltune.Characterize(cat, 10, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	windows, rep, err := stdcelltune.Tune(stat, stdcelltune.SigmaCeiling, 0.02)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("windows:", windows.Len() > 0)
	fmt.Println("every pin reported:", len(rep.Pins) == windows.Len())
	// Output:
	// windows: true
	// every pin reported: true
}
