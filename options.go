package stdcelltune

import (
	"context"
	"fmt"

	"stdcelltune/internal/core"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stattime"
	"stdcelltune/internal/synth"
	"stdcelltune/internal/variation"
)

// This file is the ctx-first facade: every pipeline stage as a
// (ctx, input, Options) function. The positional entrypoints in
// stdcelltune.go remain as thin deprecated wrappers over these.
//
// Contract shared by all *Ctx functions:
//
//   - A cancelled context aborts promptly between (and, where the
//     underlying stage supports it, inside) units of work; the returned
//     error matches ErrCancelled via errors.Is.
//   - The zero Options value reproduces the paper's defaults, and a
//     call through the deprecated positional wrapper is bit-identical
//     to the corresponding *Ctx call.

// CharacterizeOptions configures Monte-Carlo characterization.
type CharacterizeOptions struct {
	// Instances is the number of Monte-Carlo library instances folded
	// into the statistical library. Zero means the paper's 50.
	Instances int
	// Seed of the variation sampler. Used verbatim (zero is a valid
	// seed); the paper's experiments use 1.
	Seed int64
}

// CharacterizeCtx runs the Monte-Carlo characterization (instances are
// generated in parallel on the worker pool) and folds them into the
// statistical library.
func CharacterizeCtx(ctx context.Context, cat *Catalogue, opts CharacterizeOptions) (*StatisticalLibrary, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := opts.Instances
	if n == 0 {
		n = 50
	}
	libs, err := variation.InstancesCtx(ctx, cat, variation.Config{N: n, Seed: opts.Seed, CharNoise: 0.02})
	if err != nil {
		return nil, wrapCancel(err)
	}
	stat, err := statlib.Build("stat_"+cat.Corner.Name(), libs)
	return stat, wrapCancel(err)
}

// TuneOptions configures a tuning run.
type TuneOptions struct {
	// Method is one of the paper's five tuning methods.
	Method Method
	// Bound is the swept constraint value of the method (Table 2); the
	// other two constraint parameters stay at their paper defaults.
	Bound float64
}

// TuneCtx runs a tuning method against the statistical library. When
// the resulting window set excludes every pin it carries a window — the
// restriction would forbid synthesis outright — the error matches
// ErrWindowInfeasible.
func TuneCtx(ctx context.Context, stat *StatisticalLibrary, opts TuneOptions) (*Windows, *TuningReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, wrapCancel(err)
	}
	set, rep, err := core.NewTuner(stat).Tune(core.ParamsFor(opts.Method, opts.Bound))
	if err != nil {
		return nil, nil, wrapCancel(err)
	}
	if len(rep.Pins) > 0 && rep.ExcludedPins() == len(rep.Pins) {
		return nil, nil, fmt.Errorf("%w: method %q at bound %g excluded all %d pins",
			ErrWindowInfeasible, opts.Method.String(), opts.Bound, len(rep.Pins))
	}
	return set, rep, nil
}

// SynthesizeOptions configures a synthesis run.
type SynthesizeOptions struct {
	// Clock is the target clock period in ns.
	Clock float64
	// Windows restricts synthesis to the tuned LUT regions; nil is the
	// unrestricted baseline.
	Windows *Windows
	// MaxIter bounds the optimization loop; zero means the default (60).
	MaxIter int
	// Name labels the produced netlist; empty means "design".
	Name string
}

// SynthesizeCtx maps the design onto the catalogue and sizes it against
// the clock period.
func SynthesizeCtx(ctx context.Context, d *Design, cat *Catalogue, opts SynthesizeOptions) (*SynthesisResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapCancel(err)
	}
	so := synth.DefaultOptions(opts.Clock)
	so.Restrict = opts.Windows
	if opts.MaxIter > 0 {
		so.MaxIter = opts.MaxIter
	}
	name := opts.Name
	if name == "" {
		name = "design"
	}
	res, err := synth.SynthesizeCtx(ctx, name, d, cat, so)
	return res, wrapCancel(err)
}

// AnalyzeVariationOptions configures statistical timing analysis.
type AnalyzeVariationOptions struct {
	// Rho is the path-to-path correlation coefficient; zero is the
	// paper's local-variation assumption.
	Rho float64
}

// AnalyzeVariationCtx computes the local-variation statistics of a
// synthesis result against the statistical library.
func AnalyzeVariationCtx(ctx context.Context, res *SynthesisResult, stat *StatisticalLibrary, opts AnalyzeVariationOptions) (*DesignStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapCancel(err)
	}
	ds, err := stattime.AnalyzeCtx(ctx, res.Timing, stat, opts.Rho)
	return ds, wrapCancel(err)
}
