// Command stcload is the latency-percentile load harness for the stcd
// tuning daemon. It replays a warm/cold spec mix against a live daemon
// and reports throughput, the error/backpressure breakdown (429/503),
// and p50/p90/p99/p99.9 latency from HDR histograms as a versioned
// stdcelltune-load/1 JSON document (validated by `obscheck
// -loadreport`; `make load-smoke` wires both into CI).
//
// Two generation modes:
//
//   - open loop (-rps > 0): requests fire on a fixed schedule
//     regardless of how fast earlier ones complete, and every latency
//     is measured from the request's *scheduled* tick — a stalled
//     server is charged the queueing delay it caused instead of
//     silently slowing the generator (coordinated-omission-safe).
//   - closed loop (-rps 0): -conc workers each run one request at a
//     time back-to-back; latency is measured from the actual send.
//
// The mix: a fraction -coldfrac of requests carry a unique seed (a
// fresh spec digest, so a genuine cache miss through the full
// pipeline); the rest repeat one fixed spec that is primed before the
// run, so they are content-addressed cache hits. Requests are
// classified warm/cold by the *observed* cache outcome, not the
// intent.
//
// With -targets=<url,url,...> the harness drives a fleet: requests
// round-robin across the daemons (request index picks the target, so
// the spread is exact), each target gets its own collector, and the
// report's percentiles come from merging the per-target HDR snapshots
// bucketwise — fleet-aggregate quantiles of the combined population,
// not an average of per-node percentiles. The report then carries
// `targets` and `per_target_requests`.
//
// Usage:
//
//	stcload -target http://127.0.0.1:8372 -rps 5 -duration 10s -coldfrac 0.3 -out report.json
//	stcload -targets http://10.0.0.1:8372,http://10.0.0.2:8372 -conc 8 -duration 10s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stdcelltune/internal/loadreport"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stcload:", err)
		os.Exit(1)
	}
}

// collector aggregates request outcomes for one target daemon. A fleet
// run keeps one collector per target and merges their HDR snapshots at
// the end — quantiles come from the merged buckets, never from
// averaging per-target percentiles.
type collector struct {
	mu        sync.Mutex
	requests  int64
	succeeded int64
	failed    int64
	rejected  map[string]int64
	overall   obs.HDRHistogram
	warm      obs.HDRHistogram
	cold      obs.HDRHistogram
}

func (c *collector) success(lat time.Duration, outcome string) {
	c.overall.Observe(lat)
	if outcome == "hit" {
		c.warm.Observe(lat)
	} else {
		c.cold.Observe(lat)
	}
	c.mu.Lock()
	c.succeeded++
	c.mu.Unlock()
}

func (c *collector) reject(status int) {
	c.mu.Lock()
	if c.rejected == nil {
		c.rejected = make(map[string]int64)
	}
	c.rejected[strconv.Itoa(status)]++
	c.mu.Unlock()
}

func (c *collector) failure() {
	c.mu.Lock()
	c.failed++
	c.mu.Unlock()
}

func run() error {
	target := flag.String("target", "", "base URL of the stcd daemon")
	targets := flag.String("targets", "", "comma-separated daemon base URLs; requests round-robin across the fleet")
	rps := flag.Float64("rps", 0, "open-loop request rate, req/sec (0 = closed loop)")
	conc := flag.Int("conc", 4, "closed-loop worker count (ignored in open-loop mode)")
	duration := flag.Duration("duration", 10*time.Second, "generation window")
	coldFrac := flag.Float64("coldfrac", 0.3, "fraction of requests with a unique (cache-miss) spec")
	design := flag.String("design", "mcu-small", "spec design under load")
	instances := flag.Int("instances", 2, "spec instance count")
	seedBase := flag.Int64("seedbase", 10000, "first seed for cold (unique-digest) specs")
	jobTimeout := flag.Duration("jobtimeout", 120*time.Second, "per-job completion timeout")
	pollEvery := flag.Duration("poll", 20*time.Millisecond, "job status poll interval")
	prime := flag.Bool("prime", true, "run the warm spec to completion once before generating load")
	out := flag.String("out", "", "write the stdcelltune-load/1 report here (default stdout)")
	flag.Parse()

	var bases []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			bases = append(bases, strings.TrimSuffix(t, "/"))
		}
	}
	if len(bases) == 0 && *target != "" {
		bases = []string{strings.TrimSuffix(*target, "/")}
	}
	if len(bases) == 0 {
		return fmt.Errorf("-target or -targets is required")
	}
	if *coldFrac < 0 || *coldFrac > 1 {
		return fmt.Errorf("-coldfrac %g outside [0,1]", *coldFrac)
	}
	client := &http.Client{Timeout: 30 * time.Second}

	warmSpec := service.Spec{
		Design: *design, Instances: *instances, Seed: 1,
		Method: "sigma-ceiling", Bound: 0.02, ClockNS: 6,
	}
	coldSpec := func(i int64) service.Spec {
		s := warmSpec
		s.Seed = *seedBase + i // unique digest -> genuine miss
		return s
	}

	if *prime {
		// Every target is primed so warm requests are hits fleet-wide
		// (peer-cache fills make later primes fast when the tier is on).
		for _, base := range bases {
			t0 := time.Now()
			outcome, status, err := runJob(client, base, warmSpec, "stcload-prime", *jobTimeout, *pollEvery)
			if err != nil || status != 0 {
				return fmt.Errorf("prime run against %s failed (status %d): %v", base, status, err)
			}
			fmt.Fprintf(os.Stderr, "stcload: primed %s in %s (outcome %s)\n",
				base, time.Since(t0).Round(time.Millisecond), outcome)
		}
	}

	cols := make([]*collector, len(bases))
	for i := range cols {
		cols[i] = &collector{}
	}
	var launched atomic.Int64
	// isCold spreads the cold fraction deterministically over the request
	// index so the mix is exact regardless of scheduling races.
	coldEvery := int64(0)
	if *coldFrac > 0 {
		coldEvery = int64(1 / *coldFrac)
	}
	isCold := func(i int64) bool { return coldEvery > 0 && i%coldEvery == 0 }

	fire := func(i int64, sched time.Time) {
		spec := warmSpec
		if isCold(i) {
			spec = coldSpec(i)
		}
		// Round-robin over the fleet: request index picks the target, so
		// the spread is exact and independent of completion timing.
		base := bases[i%int64(len(bases))]
		col := cols[i%int64(len(bases))]
		col.mu.Lock()
		col.requests++
		col.mu.Unlock()
		outcome, status, err := runJob(client, base, spec, fmt.Sprintf("stcload-%d", i), *jobTimeout, *pollEvery)
		switch {
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			col.reject(status)
		case err != nil || status != 0:
			col.failure()
		default:
			col.success(time.Since(sched), outcome)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	mode := "closed"
	if *rps > 0 {
		mode = "open"
		interval := time.Duration(float64(time.Second) / *rps)
		for i := int64(0); ; i++ {
			sched := start.Add(time.Duration(i) * interval)
			if sched.Sub(start) >= *duration {
				break
			}
			// Sleep to the schedule, never past it because of slow
			// responses: each request runs on its own goroutine.
			if d := time.Until(sched); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			launched.Add(1)
			go func(i int64, sched time.Time) {
				defer wg.Done()
				fire(i, sched)
			}(i, sched)
		}
	} else {
		deadline := start.Add(*duration)
		for w := 0; w < *conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					now := time.Now()
					if !now.Before(deadline) {
						return
					}
					i := launched.Add(1) - 1
					fire(i, now)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Fleet aggregation: bucketwise-merge the per-target HDR snapshots,
	// then quantile the merged population.
	var overall, warm, cold obs.HDRSnapshot
	var succeeded, failed int64
	rejected := make(map[string]int64)
	perTarget := make(map[string]int64, len(bases))
	for i, col := range cols {
		col.mu.Lock()
		succeeded += col.succeeded
		failed += col.failed
		for status, n := range col.rejected {
			rejected[status] += n
		}
		perTarget[bases[i]] = col.requests
		col.mu.Unlock()
		overall.Merge(col.overall.Snapshot())
		warm.Merge(col.warm.Snapshot())
		cold.Merge(col.cold.Snapshot())
	}
	if len(rejected) == 0 {
		rejected = nil
	}
	rep := &loadreport.Report{
		Schema: loadreport.Schema, Target: strings.Join(bases, ","), Mode: mode,
		Targets: bases, PerTarget: perTarget,
		RPS: *rps, Concurrency: *conc,
		DurationSec: elapsed.Seconds(), ColdFrac: *coldFrac,
		Requests:  launched.Load(),
		Succeeded: succeeded, Failed: failed, Rejected: rejected,
		ThroughputRPS: float64(succeeded) / elapsed.Seconds(),
		Overall:       stats(overall),
		Warm:          stats(warm),
		Cold:          stats(cold),
	}

	if err := rep.Validate(); err != nil {
		return fmt.Errorf("generated report invalid: %w", err)
	}
	fmt.Fprintf(os.Stderr,
		"stcload: %s %d req in %s: %d ok (%d warm / %d cold), %d failed, %v rejected; p50 %.1fms p99 %.1fms\n",
		mode, rep.Requests, elapsed.Round(time.Millisecond), rep.Succeeded,
		rep.Warm.Count, rep.Cold.Count, rep.Failed, rep.Rejected,
		rep.Overall.P50MS, rep.Overall.P99MS)
	if *out == "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		fmt.Println(string(data))
		return nil
	}
	return rep.Write(*out)
}

// stats converts a (possibly merged) HDR snapshot into the report's
// latency block.
func stats(snap obs.HDRSnapshot) loadreport.LatencyStats {
	s := snap.Summary()
	mean := 0.0
	if s.Count > 0 {
		mean = s.SumMS / float64(s.Count)
	}
	return loadreport.LatencyStats{
		Count: s.Count, MeanMS: mean,
		P50MS: s.P50MS, P90MS: s.P90MS, P99MS: s.P99MS, P999MS: s.P999MS, MaxMS: s.MaxMS,
	}
}

// runJob submits one spec and polls it to a terminal state.
// Returns the cache outcome on success; a non-zero status when the
// daemon answered the submission with anything but 202 (the caller
// classifies 429/503 as backpressure); an error on transport failures,
// job failure or timeout.
func runJob(client *http.Client, base string, spec service.Spec, reqID string, timeout, poll time.Duration) (outcome string, status int, err error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", 0, err
	}
	req, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", reqID)
	resp, err := client.Do(req)
	if err != nil {
		return "", 0, err
	}
	var doc struct {
		ID      string `json:"id"`
		Status  string `json:"status"`
		Outcome string `json:"cache_outcome"`
		Error   string `json:"error"`
	}
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", resp.StatusCode, nil
	}
	if decErr != nil {
		return "", 0, decErr
	}

	deadline := time.Now().Add(timeout)
	for {
		switch doc.Status {
		case string(service.StatusDone):
			return doc.Outcome, 0, nil
		case string(service.StatusFailed), string(service.StatusCancelled):
			return doc.Outcome, 0, fmt.Errorf("job %s %s: %s", doc.ID, doc.Status, doc.Error)
		}
		if time.Now().After(deadline) {
			return "", 0, fmt.Errorf("job %s not terminal after %s", doc.ID, timeout)
		}
		time.Sleep(poll)
		getResp, err := client.Get(base + "/v1/jobs/" + doc.ID)
		if err != nil {
			return "", 0, err
		}
		decErr := json.NewDecoder(io.LimitReader(getResp.Body, 1<<20)).Decode(&doc)
		getResp.Body.Close()
		if decErr != nil {
			return "", 0, decErr
		}
	}
}
