// Command tune runs one of the five library tuning methods against a
// statistical library and prints the extracted thresholds and the
// per-pin slew/load windows that would be passed to synthesis.
//
// Usage:
//
//	tune -method ceiling -bound 0.02 -generate 50
//	tune -method cell-load -bound 0.03 -stat stat.lib
//	tune -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"stdcelltune/internal/core"
	"stdcelltune/internal/liberty"
	"stdcelltune/internal/report"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

var methodNames = map[string]core.Method{
	"strength-load": core.CellStrengthLoadSlope,
	"strength-slew": core.CellStrengthSlewSlope,
	"cell-load":     core.CellLoadSlope,
	"cell-slew":     core.CellSlewSlope,
	"ceiling":       core.SigmaCeiling,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tune: ")
	method := flag.String("method", "ceiling", "tuning method: strength-load, strength-slew, cell-load, cell-slew, ceiling")
	bound := flag.Float64("bound", 0.02, "constraint bound for the chosen method")
	statPath := flag.String("stat", "", "statistical library file (LVF .lib); empty = generate")
	gen := flag.Int("generate", 50, "Monte-Carlo instances when generating the statistical library")
	seed := flag.Int64("seed", 1, "generation seed")
	list := flag.Bool("list", false, "list methods and their Table-2 sweep bounds")
	verbose := flag.Bool("v", false, "print every pin window (default: summary)")
	flag.Parse()

	if *list {
		for name, m := range methodNames {
			fmt.Printf("%-14s %-28s sweep %v\n", name, m, core.SweepBounds(m))
		}
		return
	}
	m, ok := methodNames[*method]
	if !ok {
		log.Fatalf("unknown method %q (try -list)", *method)
	}

	var stat *statlib.Library
	if *statPath != "" {
		data, err := os.ReadFile(*statPath)
		if err != nil {
			log.Fatal(err)
		}
		lib, err := liberty.Parse(string(data))
		if err != nil {
			log.Fatal(err)
		}
		stat, err = statlib.FromLiberty(lib)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cat := stdcell.NewCatalogue(stdcell.Typical)
		libs := variation.Instances(cat, variation.Config{N: *gen, Seed: *seed, CharNoise: 0.02})
		var err error
		stat, err = statlib.Build("stat", libs)
		if err != nil {
			log.Fatal(err)
		}
	}

	set, rep, err := core.NewTuner(stat).Tune(core.ParamsFor(m, *bound))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("method: %s, bound: %g\n", m, *bound)
	fmt.Printf("clusters: %d, pins restricted: %d, pins fully excluded: %d\n",
		len(rep.Clusters), len(rep.Pins), rep.ExcludedPins())

	retained := 0.0
	for _, p := range rep.Pins {
		retained += p.Retained
	}
	if len(rep.Pins) > 0 {
		fmt.Printf("average LUT fraction retained: %.1f%%\n", 100*retained/float64(len(rep.Pins)))
	}
	if *verbose {
		tb := &report.Table{Header: []string{"cell/pin", "window", "retained %"}}
		for _, p := range rep.Pins {
			w, _ := set.Window(p.Cell, p.Pin)
			tb.AddRow(p.Cell+"/"+p.Pin, w.String(), 100*p.Retained)
		}
		fmt.Print(tb.Render())
	}
}
