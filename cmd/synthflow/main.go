// Command synthflow synthesizes the evaluation microcontroller at a
// clock period, optionally under a tuning method's restriction windows,
// and reports timing, area, design sigma and the cell-use histogram —
// one cell of the paper's experiment matrix on demand.
//
// Usage:
//
//	synthflow -clock 5.0
//	synthflow -clock 5.0 -method ceiling -bound 0.02
//	synthflow -clock 5.0 -verilog out.v
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"stdcelltune/internal/core"
	"stdcelltune/internal/netlist"
	"stdcelltune/internal/power"
	"stdcelltune/internal/report"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/sdc"
	"stdcelltune/internal/sdf"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stattime"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/synth"
	"stdcelltune/internal/variation"
)

var methodNames = map[string]core.Method{
	"strength-load": core.CellStrengthLoadSlope,
	"strength-slew": core.CellStrengthSlewSlope,
	"cell-load":     core.CellLoadSlope,
	"cell-slew":     core.CellSlewSlope,
	"ceiling":       core.SigmaCeiling,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("synthflow: ")
	clock := flag.Float64("clock", 5.0, "clock period (ns)")
	method := flag.String("method", "", "tuning method (empty = unrestricted baseline)")
	bound := flag.Float64("bound", 0.02, "tuning bound")
	samples := flag.Int("samples", 50, "Monte-Carlo instances for the statistical library")
	seed := flag.Int64("seed", 1, "seed")
	small := flag.Bool("small", false, "use the scaled-down MCU")
	verilogOut := flag.String("verilog", "", "write the mapped netlist as structural Verilog")
	histo := flag.Bool("cells", false, "print the cell-use histogram")
	pwr := flag.Bool("power", false, "estimate switching/internal/leakage power")
	rpt := flag.Bool("report", false, "print the critical-path timing report")
	sdcPath := flag.String("sdc", "", "read clock/uncertainty/IO constraints from an SDC file (overrides -clock)")
	sdfOut := flag.String("sdf", "", "write SDF delay annotation (sigma-derated max corner)")
	flag.Parse()

	cat := stdcell.NewCatalogue(stdcell.Typical)
	libs := variation.Instances(cat, variation.Config{N: *samples, Seed: *seed, CharNoise: 0.02})
	stat, err := statlib.Build("stat", libs)
	if err != nil {
		log.Fatal(err)
	}
	cfg := rtlgen.DefaultConfig()
	if *small {
		cfg = rtlgen.SmallConfig()
	}
	mcu, err := rtlgen.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	opts := synth.DefaultOptions(*clock)
	if *sdcPath != "" {
		data, err := os.ReadFile(*sdcPath)
		if err != nil {
			log.Fatal(err)
		}
		cons, err := sdc.Parse(string(data))
		if err != nil {
			log.Fatal(err)
		}
		*clock = cons.ClockPeriod
		opts = synth.DefaultOptions(cons.ClockPeriod)
		opts.STA = cons.STAConfig()
		fmt.Printf("constraints: clock %q period %.3f ns, uncertainty %.3f ns\n",
			cons.ClockName, cons.ClockPeriod, opts.STA.Uncertainty)
	}
	if *method != "" {
		m, ok := methodNames[*method]
		if !ok {
			log.Fatalf("unknown method %q", *method)
		}
		set, rep, err := core.NewTuner(stat).Tune(core.ParamsFor(m, *bound))
		if err != nil {
			log.Fatal(err)
		}
		opts.Restrict = set
		fmt.Printf("tuning: %s bound %g (%d windows, %d excluded pins)\n",
			m, *bound, set.Len(), rep.ExcludedPins())
	}

	res, err := synth.Synthesize("mcu", mcu.Net, cat, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clock %.2f ns: met=%v WNS=%.3f ns, area=%.0f um2, instances=%d\n",
		*clock, res.Met, res.Timing.WNS(), res.Area(), len(res.Netlist.Instances))
	fmt.Printf("optimization: %d iterations, %d upsized, %d downsized, %d repeater pairs\n",
		res.Iterations, res.Upsized, res.Downsized, res.Buffered)

	ds, err := stattime.Analyze(res.Timing, stat, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design sigma %.4f ns over %d paths (max depth %d), worst mu+3sigma %.3f ns\n",
		ds.Design.Sigma, len(ds.Paths), ds.MaxDepth(), ds.WorstMeanPlus3Sigma())

	if *rpt {
		fmt.Print(res.Timing.ReportTiming())
	}
	if *pwr {
		rep, err := power.Estimate(res.Netlist, res.Timing, power.DefaultConfig(*clock))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("power: switching %.3f + internal %.3f + leakage %.3f = %.3f mW (internal sigma %.4f, activity %.3f)\n",
			rep.Switching, rep.Internal, rep.Leakage, rep.Total(), rep.SigmaInternal, rep.MeanActivity)
	}
	if *histo {
		use := res.Netlist.CellUse()
		names := make([]string, 0, len(use))
		for n := range use {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return use[names[i]] > use[names[j]] })
		tb := &report.Table{Title: "cell use", Header: []string{"cell", "count"}}
		for _, n := range names {
			tb.AddRow(n, use[n])
		}
		fmt.Print(tb.Render())
	}
	if *sdfOut != "" {
		f, err := os.Create(*sdfOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := sdf.Write(f, res.Netlist, res.Timing, sdf.Options{DesignName: "mcu", Stat: stat}); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *sdfOut)
	}
	if *verilogOut != "" {
		f, err := os.Create(*verilogOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := netlist.WriteVerilog(f, res.Netlist); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *verilogOut)
	}
}
