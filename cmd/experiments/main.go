// Command experiments regenerates every table and figure of the paper's
// evaluation section (Tables 1-3, Figs. 1-16) and prints them; with
// -out it also writes one text file per experiment into a directory.
//
// Usage:
//
//	experiments                 # paper-scale flow (several minutes)
//	experiments -small          # scaled-down quick run
//	experiments -out results/
//	experiments -seed 7         # reseed the Monte-Carlo characterization
//	experiments -faultrate 0.05 # corrupt 5% of LUT entries (robustness demo)
//	experiments -benchjson BENCH_PR3.json  # perf phase report + JSON
//	experiments -cpuprofile cpu.pprof -memprofile mem.pprof
//	experiments -trace trace.json          # Chrome trace-event JSON + run manifest
//	experiments -debugaddr localhost:6060  # live expvar/pprof/obs endpoints
//	experiments -loglevel debug            # pipeline slog output on stderr
//
// A run with -trace or -out also writes a run manifest
// (stdcelltune-manifest/1 JSON: seeds, flags, fault config, toolchain,
// wall time, failures) next to the trace file or into the -out
// directory, so every set of results is self-describing.
//
// Ctrl-C cancels the run promptly (the flow context is honoured between
// synthesis/tuning units). A failing experiment no longer aborts the
// rest of the suite: its error is reported, the remaining experiments
// run, and the process exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"stdcelltune/internal/exp"
	"stdcelltune/internal/lut"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/obs/debughttp"
	"stdcelltune/internal/perfstat"
	"stdcelltune/internal/robust"
	"stdcelltune/internal/robust/faultinject"
	"stdcelltune/internal/sta"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	small := flag.Bool("small", false, "scaled-down MCU and fewer MC samples (quick)")
	out := flag.String("out", "", "directory to write per-experiment text files")
	only := flag.String("only", "", "run a single experiment (e.g. table1, fig10)")
	seed := flag.Int64("seed", 0, "Monte-Carlo seed (0 keeps the paper's default)")
	faultRate := flag.Float64("faultrate", 0, "fraction of LUT entries to corrupt before folding (0 disables)")
	faultSeed := flag.Int64("faultseed", 1, "seed of the fault-injection pattern")
	benchJSON := flag.String("benchjson", "", "print the per-phase perf report and merge phase timings into this BENCH JSON file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing) of the run, plus a <file>.manifest.json run manifest")
	debugAddr := flag.String("debugaddr", "", "serve /debug/vars (expvar), /debug/pprof and /debug/obs on this address (e.g. localhost:6060)")
	logLevel := flag.String("loglevel", "", "route pipeline slog output to stderr at this level (debug|info|warn|error; empty keeps logging off)")
	flag.Parse()

	if lvl, ok := obs.ParseLogLevel(*logLevel); ok {
		obs.InitLog(os.Stderr, lvl)
	} else if *logLevel != "" {
		log.Fatalf("unknown -loglevel %q (want debug|info|warn|error)", *logLevel)
	}

	// Tracing and the debug server share the observation switches: the
	// span tracer, the pool latency histograms and the LUT hint-hit
	// counters all turn on together. None of this runs for the
	// zero-flag pipeline, which stays byte-identical and clock-free.
	var tracer *obs.Tracer
	if *traceOut != "" || *debugAddr != "" {
		tracer = obs.NewTracer(nil)
		obs.SetTimingEnabled(true)
		lut.SetHintStatsEnabled(true)
		obs.Default().GaugeFunc("lut.hint_hit_ratio", lut.HintHitRatio)
		obs.Default().GaugeFunc("sta.incremental_ratio", sta.IncrementalRatio)
	}
	if *debugAddr != "" {
		_, addr, err := debughttp.Serve(*debugAddr, debughttp.DebugState{
			Tracer: tracer, Metrics: obs.Default(),
			Extra: map[string]any{"args": os.Args[1:]},
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug server on http://%s/debug/obs", addr)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if tracer != nil {
		ctx = obs.WithTracer(ctx, tracer)
	}

	cfg := exp.DefaultFlowConfig()
	if *small {
		cfg = exp.SmallFlowConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *faultRate > 0 {
		cfg.Fault = faultinject.Config{Rate: *faultRate, Seed: *faultSeed}
	}
	start := time.Now()
	var flow *exp.Flow
	type renderable interface{ Render() string }
	experiments := []struct {
		name string
		run  func() (renderable, error)
	}{
		{"fig1", func() (renderable, error) { return flow.Fig1(), nil }},
		{"fig2", func() (renderable, error) { return flow.Fig2() }},
		{"fig3", func() (renderable, error) { return flow.Fig3() }},
		{"fig4", func() (renderable, error) { return flow.Fig4() }},
		{"fig5", func() (renderable, error) { return flow.Fig5() }},
		{"fig6", func() (renderable, error) { return flow.Fig6() }},
		{"fig7", func() (renderable, error) { return flow.Fig7() }},
		{"table1", func() (renderable, error) { return flow.Table1() }},
		{"table2", func() (renderable, error) { return flow.Table2(), nil }},
		{"fig8", func() (renderable, error) { return flow.Fig8() }},
		{"table3", func() (renderable, error) { return flow.Table3() }},
		{"fig10", func() (renderable, error) { return flow.Fig10() }},
		{"fig11", func() (renderable, error) { return flow.Fig11() }},
		{"fig9_highperf", func() (renderable, error) {
			clocks, err := flow.Clocks()
			if err != nil {
				return nil, err
			}
			return flow.Fig9(clocks.HighPerf)
		}},
		{"fig9_low", func() (renderable, error) {
			clocks, err := flow.Clocks()
			if err != nil {
				return nil, err
			}
			return flow.Fig9(clocks.Low)
		}},
		{"fig12", func() (renderable, error) { return flow.Fig12() }},
		{"fig13", func() (renderable, error) { return flow.Fig13() }},
		{"fig14", func() (renderable, error) { return flow.Fig14() }},
		{"fig15", func() (renderable, error) { return flow.Fig15() }},
		{"fig16", func() (renderable, error) { return flow.Fig16() }},
		{"ext_pnr", func() (renderable, error) { return flow.ExtPNR() }},
		{"ext_power", func() (renderable, error) { return flow.ExtPower() }},
		{"ext_yield", func() (renderable, error) { return flow.ExtYield() }},
		{"ext_corners", func() (renderable, error) { return flow.ExtCorners() }},
		{"ext_workloads", func() (renderable, error) { return flow.ExtWorkloads() }},
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	if *only != "" {
		known := false
		var names []string
		for _, e := range experiments {
			names = append(names, e.name)
			known = known || e.name == *only
		}
		// Validated before the (possibly minutes-long) flow build so a
		// typo fails in milliseconds, not after characterization.
		if !known {
			log.Fatalf("unknown experiment %q; valid names: %v", *only, names)
		}
	}

	flow, err := exp.NewFlow(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow ready: %d cells, %d MC samples, MCU %d gate nodes (%.1fs)\n",
		len(flow.Stat.Cells), flow.Cfg.Samples, flow.MCU.Net.GateCount(), time.Since(start).Seconds())
	if cfg.Fault.Rate > 0 {
		fmt.Printf("%s\n", flow.Injected)
	}
	if flow.Quarantine.Len() > 0 {
		fmt.Printf("%s", flow.Quarantine.Render())
	}
	fmt.Println()

	var failed []string
	for _, e := range experiments {
		if *only != "" && e.name != *only {
			continue
		}
		if ctx.Err() != nil {
			log.Printf("cancelled before %s: %v", e.name, ctx.Err())
			failed = append(failed, "(cancelled)")
			break
		}
		t0 := time.Now()
		var r renderable
		// robust.Safe: a panicking driver fails its own experiment (with
		// the recovered stack in the error), never the whole suite.
		err := robust.Safe(func() error {
			var runErr error
			r, runErr = e.run()
			return runErr
		})
		if err != nil {
			if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
				log.Printf("%s: cancelled: %v", e.name, err)
				failed = append(failed, "(cancelled)")
				break
			}
			// Degrade, don't abort: report and keep the suite running so
			// one broken experiment cannot hide the other twenty-four.
			log.Printf("%s: FAILED: %v", e.name, err)
			failed = append(failed, e.name)
			continue
		}
		text := r.Render()
		fmt.Printf("--- %s (%.1fs) ---\n%s\n", e.name, time.Since(t0).Seconds(), text)
		if *out != "" {
			path := filepath.Join(*out, e.name+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("total %.1fs\n", time.Since(start).Seconds())
	if *traceOut != "" {
		if err := tracer.WriteChromeTraceFile(*traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%d spans)\n", *traceOut, tracer.EventCount())
	}
	if *traceOut != "" || *out != "" {
		m := obs.NewManifest()
		m.Args = os.Args[1:]
		m.SpecDigest = cfg.Digest()
		m.Samples = cfg.Samples
		m.Seed = cfg.Seed
		m.Corner = cfg.Corner.Name()
		m.Small = *small
		m.FaultRate = cfg.Fault.Rate
		m.FaultSeed = cfg.Fault.Seed
		m.WallSeconds = time.Since(start).Seconds()
		for _, e := range experiments {
			if *only == "" || e.name == *only {
				m.Experiments = append(m.Experiments, e.name)
			}
		}
		m.Failed = failed
		m.Quarantined = flow.Quarantine.Len()
		m.TraceFile = *traceOut
		m.BenchFile = *benchJSON
		m.OutDir = *out
		m.Metrics = obs.Default().Snapshot()
		m.SynthOutcomes = flow.SynthOutcomes()
		// The manifest lands next to what it describes: inside -out when
		// results are being written, else alongside the trace file.
		mpath := manifestPath(*out, *traceOut)
		if err := m.Write(mpath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run manifest written to %s\n", mpath)
	}
	if *benchJSON != "" {
		fmt.Printf("--- perf phases ---\n%s", flow.Perf.Report())
		bf, err := perfstat.ReadBenchFile(*benchJSON)
		if err != nil {
			log.Fatal(err)
		}
		bf.Phases = flow.Perf.Phases()
		if err := bf.Write(*benchJSON); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("phase timings merged into %s\n", *benchJSON)
	}
	if *memProfile != "" {
		mf, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // flush recently-freed objects so the heap profile is current
		if err := pprof.WriteHeapProfile(mf); err != nil {
			log.Fatal(err)
		}
		mf.Close()
	}
	if len(failed) > 0 {
		// log.Fatalf skips deferred functions, so close the CPU profile
		// by hand to keep it readable on a failing run.
		pprof.StopCPUProfile()
		log.Fatalf("%d experiment(s) failed: %v", len(failed), failed)
	}
}

// manifestPath places the run manifest inside the -out directory when
// one is written, else next to the trace file (trace.json ->
// trace.manifest.json).
func manifestPath(outDir, traceFile string) string {
	if outDir != "" {
		return filepath.Join(outDir, "manifest.json")
	}
	base := strings.TrimSuffix(traceFile, filepath.Ext(traceFile))
	return base + ".manifest.json"
}
