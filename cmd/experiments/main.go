// Command experiments regenerates every table and figure of the paper's
// evaluation section (Tables 1-3, Figs. 1-16) and prints them; with
// -out it also writes one text file per experiment into a directory.
//
// Usage:
//
//	experiments                 # paper-scale flow (several minutes)
//	experiments -small          # scaled-down quick run
//	experiments -out results/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"stdcelltune/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	small := flag.Bool("small", false, "scaled-down MCU and fewer MC samples (quick)")
	out := flag.String("out", "", "directory to write per-experiment text files")
	only := flag.String("only", "", "run a single experiment (e.g. table1, fig10)")
	flag.Parse()

	cfg := exp.DefaultFlowConfig()
	if *small {
		cfg = exp.SmallFlowConfig()
	}
	start := time.Now()
	flow, err := exp.NewFlow(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow ready: %d cells, %d MC samples, MCU %d gate nodes (%.1fs)\n\n",
		len(flow.Stat.Cells), flow.Cfg.Samples, flow.MCU.Net.GateCount(), time.Since(start).Seconds())

	type renderable interface{ Render() string }
	experiments := []struct {
		name string
		run  func() (renderable, error)
	}{
		{"fig1", func() (renderable, error) { return flow.Fig1(), nil }},
		{"fig2", func() (renderable, error) { return flow.Fig2() }},
		{"fig3", func() (renderable, error) { return flow.Fig3() }},
		{"fig4", func() (renderable, error) { return flow.Fig4() }},
		{"fig5", func() (renderable, error) { return flow.Fig5() }},
		{"fig6", func() (renderable, error) { return flow.Fig6() }},
		{"fig7", func() (renderable, error) { return flow.Fig7() }},
		{"table1", func() (renderable, error) { return flow.Table1() }},
		{"table2", func() (renderable, error) { return flow.Table2(), nil }},
		{"fig8", func() (renderable, error) { return flow.Fig8() }},
		{"table3", func() (renderable, error) { return flow.Table3() }},
		{"fig10", func() (renderable, error) { return flow.Fig10() }},
		{"fig11", func() (renderable, error) { return flow.Fig11() }},
		{"fig9_highperf", func() (renderable, error) {
			clocks, err := flow.Clocks()
			if err != nil {
				return nil, err
			}
			return flow.Fig9(clocks.HighPerf)
		}},
		{"fig9_low", func() (renderable, error) {
			clocks, err := flow.Clocks()
			if err != nil {
				return nil, err
			}
			return flow.Fig9(clocks.Low)
		}},
		{"fig12", func() (renderable, error) { return flow.Fig12() }},
		{"fig13", func() (renderable, error) { return flow.Fig13() }},
		{"fig14", func() (renderable, error) { return flow.Fig14() }},
		{"fig15", func() (renderable, error) { return flow.Fig15() }},
		{"fig16", func() (renderable, error) { return flow.Fig16() }},
		{"ext_pnr", func() (renderable, error) { return flow.ExtPNR() }},
		{"ext_power", func() (renderable, error) { return flow.ExtPower() }},
		{"ext_yield", func() (renderable, error) { return flow.ExtYield() }},
		{"ext_corners", func() (renderable, error) { return flow.ExtCorners() }},
		{"ext_workloads", func() (renderable, error) { return flow.ExtWorkloads() }},
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	for _, e := range experiments {
		if *only != "" && e.name != *only {
			continue
		}
		t0 := time.Now()
		r, err := e.run()
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		text := r.Render()
		fmt.Printf("--- %s (%.1fs) ---\n%s\n", e.name, time.Since(t0).Seconds(), text)
		if *out != "" {
			path := filepath.Join(*out, e.name+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("total %.1fs\n", time.Since(start).Seconds())
}
