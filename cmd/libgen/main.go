// Command libgen generates the 304-cell standard cell library as
// Liberty files: the nominal library for a chosen corner and,
// optionally, N Monte-Carlo instances with local variation — the raw
// input of the statistical library construction.
//
// Usage:
//
//	libgen -corner typical -out lib/            # nominal only
//	libgen -corner typical -mc 50 -seed 1 -out lib/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libgen: ")
	cornerFlag := flag.String("corner", "typical", "process corner: fast, typical, slow")
	mc := flag.Int("mc", 0, "number of Monte-Carlo instances to generate (0 = nominal only)")
	seed := flag.Int64("seed", 1, "Monte-Carlo seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	corner, err := stdcell.ParseCorner(*cornerFlag)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	cat := stdcell.NewCatalogue(corner)
	nominal := filepath.Join(*out, cat.Lib.Name+".lib")
	if err := writeLib(nominal, cat.Lib); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d cells)\n", nominal, len(cat.Lib.Cells))

	if *mc > 0 {
		cfg := variation.Config{N: *mc, Seed: *seed, CharNoise: 0.02}
		for i, lib := range variation.Instances(cat, cfg) {
			path := filepath.Join(*out, fmt.Sprintf("%s_mc%03d.lib", cat.Lib.Name, i))
			if err := writeLib(path, lib); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("wrote %d Monte-Carlo instances (seed %d)\n", *mc, *seed)
	}
}

func writeLib(path string, lib *liberty.Library) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := liberty.Write(f, lib); err != nil {
		return err
	}
	return f.Close()
}
