// Command obscheck validates the machine-readable artifacts the flow
// produces: the Chrome trace-event JSON (-trace), the run manifest
// (-manifest), the benchmark JSON (-bench), the tuning daemon's API
// documents (-apijob, -apiartifacts), the daemon's durable job
// journal (-journal), a retained cluster shard set (-shard), the
// stcload latency report (-loadreport), a scraped Prometheus
// exposition (-metrics) and the API spec's route inventory (-apispec).
// It is the assertion half of `make obs-smoke`, `make serve-smoke`,
// `make crash-smoke`, `make load-smoke`, `make cluster-smoke` and
// `make query-smoke`: the smoke targets run the pipeline (batch or
// served), then obscheck fails the build if an artifact does not
// parse, misses expected content, or violates its versioned schema.
//
// -apispec parses the fenced ```routes blocks of docs/API.md and
// requires set equality, in both directions, with the route table the
// daemon compiles its mux from (service.Routes()) — the documented
// surface and the served surface cannot drift apart.
//
// -shard validates the stdcelltune-shard/1 document GET
// /v1/cluster/shards/{digest} returns: fixed merge order (shard k at
// position k), contiguous tiling of [0, instances), per-accumulator
// counts within the shard's range and non-negative M2 (variance), and
// per-entry counts summing to exactly N across the set — the invariant
// that proves no shard was lost or double-counted, lease bounces and
// steals included.
//
// Usage:
//
//	obscheck -trace /tmp/trace.json -manifest /tmp/trace.manifest.json [-bench /tmp/b.json]
//	obscheck -bench BENCH_PR7.json -allocratio 1.1   # fail allocs_per_op regressions vs baseline
//	obscheck -apijob /tmp/job.json -apiartifacts /tmp/index.json
//	obscheck -journal /var/lib/stcd/jobs.wal
//	obscheck -shard /tmp/shards.json
//	obscheck -loadreport LOAD_PR8.json -metrics /tmp/metrics.prom
//	obscheck -apispec docs/API.md
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/loadreport"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/perfstat"
	"stdcelltune/internal/service"
	"stdcelltune/internal/service/journal"
	"stdcelltune/internal/service/shard"
	"stdcelltune/internal/statlib"
)

// chromeTrace mirrors the exported subset of the trace-event format the
// checks need.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("obscheck: ")
	tracePath := flag.String("trace", "", "Chrome trace-event JSON to validate")
	manifestPath := flag.String("manifest", "", "run-manifest JSON to validate")
	benchPath := flag.String("bench", "", "benchmark JSON (stdcelltune-bench/1) to validate (optional)")
	allocRatio := flag.Float64("allocratio", 0, "with -bench: fail any benchmark whose allocs_per_op exceeds this ratio times its recorded baseline_allocs_per_op (0 disables)")
	apiJobPath := flag.String("apijob", "", "stcd job document (stdcelltune-job/1) to validate")
	apiArtifactsPath := flag.String("apiartifacts", "", "stcd artifact index JSON to validate")
	journalPath := flag.String("journal", "", "stcd job journal (stdcelltune-journal/1) to validate")
	shardPath := flag.String("shard", "", "retained cluster shard set (stdcelltune-shard/1) to validate")
	loadPath := flag.String("loadreport", "", "stcload latency report (stdcelltune-load/1) to validate")
	metricsPath := flag.String("metrics", "", "Prometheus text exposition scrape to validate (expects stcd's RED series)")
	apiSpecPath := flag.String("apispec", "", "API spec markdown (docs/API.md) to cross-check against the daemon's served route table")
	flag.Parse()

	failed := false
	fail := func(format string, args ...any) {
		log.Printf("FAIL: "+format, args...)
		failed = true
	}

	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		var tr chromeTrace
		if err := json.Unmarshal(data, &tr); err != nil {
			log.Fatalf("%s: not valid trace JSON: %v", *tracePath, err)
		}
		spans := 0
		cats := map[string]int{}
		names := map[string]int{}
		for _, e := range tr.TraceEvents {
			if e.Ph != "X" {
				continue
			}
			spans++
			cats[e.Cat]++
			names[e.Name]++
			if e.TS < 0 || e.Dur < 0 {
				fail("%s: span %q has negative ts/dur (%d/%d)", *tracePath, e.Name, e.TS, e.Dur)
			}
		}
		if spans == 0 {
			fail("%s: no complete spans", *tracePath)
		}
		// The flow phases every experiments run passes through, the
		// pool batches under them, and at least one per-method tuning
		// unit must all have left spans.
		for _, want := range []string{"characterize", "statlib-fold", "rtlgen", "synth", "stattime"} {
			if names[want] == 0 {
				fail("%s: missing flow-phase span %q", *tracePath, want)
			}
		}
		if cats["pool"] == 0 {
			fail("%s: no pool batch spans", *tracePath)
		}
		if cats["tune"] == 0 {
			tuned := false
			for n := range names {
				tuned = tuned || strings.HasPrefix(n, "tune ")
			}
			if !tuned {
				fail("%s: no per-method tuning-unit spans", *tracePath)
			}
		}
		fmt.Printf("obscheck: trace ok: %d spans, %d names, categories %v\n", spans, len(names), keys(cats))
	}

	if *manifestPath != "" {
		m, err := obs.ReadManifest(*manifestPath)
		if err != nil {
			log.Fatalf("manifest invalid: %v", err)
		}
		if m.WallSeconds <= 0 {
			fail("%s: wall_seconds %g not positive", *manifestPath, m.WallSeconds)
		}
		if len(m.Experiments) == 0 {
			fail("%s: no experiments recorded", *manifestPath)
		}
		// The incremental-STA counters must have landed in the metrics
		// snapshot: any run with a synthesis phase performs at least one
		// full analysis, and the dirty-cone histogram must agree with the
		// incremental-update count.
		metricNum := func(name string) (float64, bool) {
			v, ok := m.Metrics[name].(float64)
			return v, ok
		}
		full, okFull := metricNum("sta.full_analyses")
		inc, okInc := metricNum("sta.incremental_updates")
		switch {
		case !okFull || !okInc:
			fail("%s: metrics missing sta.full_analyses / sta.incremental_updates", *manifestPath)
		case full < 1:
			fail("%s: sta.full_analyses = %g, want >= 1", *manifestPath, full)
		}
		if cone, ok := m.Metrics["sta.dirty_cone"].(map[string]any); !ok {
			fail("%s: metrics missing sta.dirty_cone histogram", *manifestPath)
		} else if cnt, _ := cone["count"].(float64); okInc && cnt != inc {
			fail("%s: sta.dirty_cone count %g != sta.incremental_updates %g", *manifestPath, cnt, inc)
		}
		if ratio, ok := metricNum("sta.incremental_ratio"); ok && (ratio < 0 || ratio > 1) {
			fail("%s: sta.incremental_ratio %g outside [0,1]", *manifestPath, ratio)
		}
		if len(m.SynthOutcomes) == 0 {
			fail("%s: no synth_outcomes recorded", *manifestPath)
		}
		for _, o := range m.SynthOutcomes {
			if o.Key == "" || o.Iterations < 1 || o.FullAnalyses < 1 {
				fail("%s: synth outcome %+v malformed (empty key, or no iterations/analyses)", *manifestPath, o)
			}
		}
		fmt.Printf("obscheck: manifest ok: %s, %d experiments, %d failed, %d synth units, %.1fs wall\n",
			m.GoVersion, len(m.Experiments), len(m.Failed), len(m.SynthOutcomes), m.WallSeconds)
	}

	if *benchPath != "" {
		bf, err := perfstat.ReadBenchFile(*benchPath)
		if err != nil {
			log.Fatalf("bench JSON invalid: %v", err)
		}
		if bf.Schema != perfstat.Schema {
			fail("%s: schema %q, want %q", *benchPath, bf.Schema, perfstat.Schema)
		}
		if len(bf.Phases) == 0 {
			fail("%s: no phase timings recorded", *benchPath)
		}
		if *allocRatio > 0 {
			// Allocation-regression gate: allocs/op is deterministic enough
			// that drifting past ratio x the recorded seed baseline means a
			// real discipline regression, not noise. Benchmarks without a
			// baseline (or alloc-free ones) are exempt.
			gated, over := 0, 0
			for _, name := range bf.Names() {
				r := bf.Benchmarks[name]
				if r.BaselineAllocsPerOp <= 0 || r.AllocsPerOp <= 0 {
					continue
				}
				gated++
				if limit := *allocRatio * r.BaselineAllocsPerOp; r.AllocsPerOp > limit {
					over++
					fail("%s: %s allocs_per_op %.0f exceeds %.2fx baseline %.0f (limit %.0f)",
						*benchPath, name, r.AllocsPerOp, *allocRatio, r.BaselineAllocsPerOp, limit)
				}
			}
			if over == 0 {
				fmt.Printf("obscheck: alloc gate ok: %d/%d benchmarks within %.2fx of baseline\n",
					gated, len(bf.Benchmarks), *allocRatio)
			}
		}
		fmt.Printf("obscheck: bench JSON ok: %d benchmarks, %d phases\n", len(bf.Benchmarks), len(bf.Phases))
	}

	if *apiJobPath != "" {
		data, err := os.ReadFile(*apiJobPath)
		if err != nil {
			log.Fatal(err)
		}
		var j service.JobView
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&j); err != nil {
			log.Fatalf("%s: not a job document: %v", *apiJobPath, err)
		}
		if j.Schema != service.SchemaJob {
			fail("%s: schema %q, want %q", *apiJobPath, j.Schema, service.SchemaJob)
		}
		if j.ID == "" {
			fail("%s: empty job id", *apiJobPath)
		}
		if !strings.HasPrefix(j.Digest, "sha256:") || len(j.Digest) != len("sha256:")+64 {
			fail("%s: malformed spec digest %q", *apiJobPath, j.Digest)
		}
		if err := j.Spec.Validate(); err != nil {
			fail("%s: embedded spec invalid: %v", *apiJobPath, err)
		}
		if got := j.Spec.Digest(); got != j.Digest {
			fail("%s: digest %s does not match embedded spec (%s)", *apiJobPath, j.Digest, got)
		}
		if j.Status != service.StatusDone {
			fail("%s: status %q, want done", *apiJobPath, j.Status)
		}
		if j.Outcome != "hit" && j.Outcome != "miss" && j.Outcome != "shared" && j.Outcome != "peer" {
			fail("%s: cache outcome %q", *apiJobPath, j.Outcome)
		}
		have := map[string]bool{}
		for _, a := range j.Artifacts {
			have[a.Name] = true
			if len(a.SHA256) != 64 || a.Size <= 0 {
				fail("%s: artifact %s malformed (sha %q, size %d)", *apiJobPath, a.Name, a.SHA256, a.Size)
			}
		}
		for _, want := range []string{
			service.ArtifactSpec, service.ArtifactStatLib, service.ArtifactWindows,
			service.ArtifactTuning, service.ArtifactSynthesis, service.ArtifactVariation,
		} {
			if !have[want] {
				fail("%s: missing artifact %s", *apiJobPath, want)
			}
		}
		fmt.Printf("obscheck: job ok: %s %s outcome=%s, %d artifacts\n", j.ID, j.Status, j.Outcome, len(j.Artifacts))
	}

	if *apiArtifactsPath != "" {
		data, err := os.ReadFile(*apiArtifactsPath)
		if err != nil {
			log.Fatal(err)
		}
		var idx struct {
			Digest    string                 `json:"digest"`
			Artifacts []service.ArtifactView `json:"artifacts"`
		}
		if err := json.Unmarshal(data, &idx); err != nil {
			log.Fatalf("%s: not an artifact index: %v", *apiArtifactsPath, err)
		}
		if !strings.HasPrefix(idx.Digest, "sha256:") {
			fail("%s: malformed digest %q", *apiArtifactsPath, idx.Digest)
		}
		if len(idx.Artifacts) == 0 {
			fail("%s: empty artifact index", *apiArtifactsPath)
		}
		for _, a := range idx.Artifacts {
			if a.Name == "" || len(a.SHA256) != 64 || a.Size <= 0 {
				fail("%s: artifact %+v malformed", *apiArtifactsPath, a)
			}
		}
		fmt.Printf("obscheck: artifact index ok: %s, %d artifacts\n", idx.Digest, len(idx.Artifacts))
	}

	if *journalPath != "" {
		data, err := os.ReadFile(*journalPath)
		if err != nil {
			log.Fatal(err)
		}
		recs, valid, rerr := journal.Replay(data)
		if len(data) > 0 && valid == 0 {
			fail("%s: no valid records in a %d-byte journal: %v", *journalPath, len(data), rerr)
		} else if rerr != nil {
			// A torn tail is what crashes leave behind; recovery truncates
			// it. Report, but pass.
			log.Printf("warn: %s: torn tail after %d valid bytes (%d dangling): %v",
				*journalPath, valid, int64(len(data))-valid, rerr)
		}
		var lastSeq uint64
		seen := map[string]journal.State{}
		for i, r := range recs {
			if r.Schema != journal.Schema {
				fail("%s: record %d schema %q, want %q", *journalPath, i, r.Schema, journal.Schema)
			}
			if r.Seq <= lastSeq {
				fail("%s: record %d seq %d not strictly increasing (prev %d)", *journalPath, i, r.Seq, lastSeq)
			}
			lastSeq = r.Seq
			if !r.State.Valid() {
				fail("%s: record %d (%s) has unknown state %q", *journalPath, i, r.Job, r.State)
			}
			if r.Job == "" {
				fail("%s: record %d has no job id", *journalPath, i)
			}
			prev, ok := seen[r.Job]
			switch {
			case !ok && r.State != journal.StateAccepted:
				fail("%s: job %s first appears as %q, want accepted first", *journalPath, r.Job, r.State)
			case ok && prev.Terminal():
				fail("%s: job %s transitions %q -> %q after a terminal state", *journalPath, r.Job, prev, r.State)
			case r.State == journal.StateAccepted && len(r.Spec) == 0:
				fail("%s: job %s accepted without a spec", *journalPath, r.Job)
			}
			seen[r.Job] = r.State
		}
		terminal := 0
		for _, st := range seen {
			if st.Terminal() {
				terminal++
			}
		}
		fmt.Printf("obscheck: journal ok: %d records, %d jobs (%d terminal, %d pending), %d valid bytes\n",
			len(recs), len(seen), terminal, len(journal.Pending(recs)), valid)
	}

	if *shardPath != "" {
		data, err := os.ReadFile(*shardPath)
		if err != nil {
			log.Fatal(err)
		}
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.DisallowUnknownFields()
		var set shard.ShardSet
		if err := dec.Decode(&set); err != nil {
			log.Fatalf("%s: not a shard set: %v", *shardPath, err)
		}
		if set.Schema != statlib.SchemaShard {
			fail("%s: schema %q, want %q", *shardPath, set.Schema, statlib.SchemaShard)
		}
		if set.Instances <= 0 {
			fail("%s: instances %d not positive", *shardPath, set.Instances)
		}
		if len(set.Shards) == 0 {
			fail("%s: empty shard set", *shardPath)
		}
		// The retained set must be in the fixed merge order (index k at
		// position k), tile [0, Instances) contiguously, and agree with the
		// container on every global fact — exactly what MergeShards enforces
		// before folding a single moment.
		parts := make([]*statlib.Partial, 0, len(set.Shards))
		for i, raw := range set.Shards {
			pd := json.NewDecoder(strings.NewReader(string(raw)))
			pd.DisallowUnknownFields()
			var p statlib.Partial
			if err := pd.Decode(&p); err != nil {
				log.Fatalf("%s: shard %d does not decode as %s: %v", *shardPath, i, statlib.SchemaShard, err)
			}
			switch {
			case p.Schema != statlib.SchemaShard:
				fail("%s: shard %d schema %q, want %q", *shardPath, i, p.Schema, statlib.SchemaShard)
			case p.Index != i:
				fail("%s: shard at position %d has index %d — retained order is the fixed merge order", *shardPath, i, p.Index)
			case p.Shards != len(set.Shards):
				fail("%s: shard %d claims %d shards, set has %d", *shardPath, i, p.Shards, len(set.Shards))
			case p.N != set.Instances:
				fail("%s: shard %d has N=%d, set says %d", *shardPath, i, p.N, set.Instances)
			case p.Lo >= p.Hi:
				fail("%s: shard %d range [%d,%d) empty", *shardPath, i, p.Lo, p.Hi)
			case i == 0 && p.Lo != 0:
				fail("%s: first shard starts at %d, want 0", *shardPath, p.Lo)
			case i > 0 && p.Lo != parts[i-1].Hi:
				fail("%s: shard %d starts at %d, previous ended at %d", *shardPath, i, p.Lo, parts[i-1].Hi)
			}
			parts = append(parts, &p)
		}
		if last := parts[len(parts)-1]; last.Hi != set.Instances {
			fail("%s: shards end at %d, want %d", *shardPath, last.Hi, set.Instances)
		}
		// Moment sanity per accumulator, then accounting: a shard folds
		// every instance of its range into every tabulated entry, so counts
		// are Hi-Lo within a shard and sum to exactly N across the set —
		// a lost or double-counted shard shows up here. Cells any shard
		// quarantined are exempt (the merge drops them library-wide).
		totals := map[string]map[string]int64{}
		badCells := map[string]bool{}
		states := 0
		for _, p := range parts {
			span := int64(p.Hi - p.Lo)
			for _, pc := range p.Cells {
				if pc.Bad != "" {
					badCells[pc.Name] = true
					continue
				}
				entries := totals[pc.Name]
				if entries == nil {
					entries = map[string]int64{}
					totals[pc.Name] = entries
				}
				for _, pp := range pc.Pins {
					for _, pa := range pp.Arcs {
						for _, edge := range []struct {
							label string
							ws    []dist.WelfordState
						}{{"rise", pa.Rise}, {"fall", pa.Fall}} {
							for k, s := range edge.ws {
								states++
								if s.N < 0 || s.N > span {
									fail("%s: shard %d %s/%s/%s %s[%d] count %d outside [0,%d]",
										*shardPath, p.Index, pc.Name, pp.Name, pa.RelatedPin, edge.label, k, s.N, span)
								}
								if s.M2 < -1e-9 {
									fail("%s: shard %d %s/%s/%s %s[%d] M2 %g negative — variance must be >= 0",
										*shardPath, p.Index, pc.Name, pp.Name, pa.RelatedPin, edge.label, k, s.M2)
								}
								entries[fmt.Sprintf("%s/%s/%s[%d]", pp.Name, pa.RelatedPin, edge.label, k)] += s.N
							}
						}
					}
				}
			}
		}
		for cell, entries := range totals {
			if badCells[cell] {
				continue
			}
			for key, n := range entries {
				if n != int64(set.Instances) {
					fail("%s: %s/%s counts sum to %d across shards, want %d",
						*shardPath, cell, key, n, set.Instances)
				}
			}
		}
		cells := len(totals)
		for c := range badCells {
			if _, ok := totals[c]; !ok {
				cells++
			}
		}
		fmt.Printf("obscheck: shard set ok: %s, %d instances in %d shards, %d accumulators (%d cells, %d quarantined)\n",
			set.Group, set.Instances, len(set.Shards), states, cells, len(badCells))
	}

	if *loadPath != "" {
		rep, err := loadreport.Read(*loadPath)
		if err != nil {
			log.Fatalf("load report invalid: %v", err)
		}
		// Read already ran Validate (schema, non-zero warm and cold sample
		// counts, accounting, monotone percentiles); what's left is the
		// cross-population sanity CI cares about.
		if rep.Warm.P50MS > rep.Cold.P99MS {
			fail("%s: warm p50 %.2fms above cold p99 %.2fms — cache hits slower than misses?",
				*loadPath, rep.Warm.P50MS, rep.Cold.P99MS)
		}
		fmt.Printf("obscheck: load report ok: %s %d req @ %.1f rps, warm p50 %.1fms, cold p99 %.1fms\n",
			rep.Mode, rep.Requests, rep.ThroughputRPS, rep.Warm.P50MS, rep.Cold.P99MS)
	}

	if *metricsPath != "" {
		f, err := os.Open(*metricsPath)
		if err != nil {
			log.Fatal(err)
		}
		samples, types, perr := obs.ParsePrometheusText(f)
		f.Close()
		if perr != nil {
			log.Fatalf("%s: not Prometheus text format: %v", *metricsPath, perr)
		}
		if types["http_requests_total"] != "counter" {
			fail("%s: http_requests_total not declared a counter (types: %v)", *metricsPath, types)
		}
		if types["http_request_duration_seconds"] != "histogram" {
			fail("%s: http_request_duration_seconds not declared a histogram", *metricsPath)
		}
		routes := map[string]bool{}
		var infBuckets, inFlight int
		for _, s := range samples {
			if s.Name == "http_requests_total" {
				routes[s.Labels["route"]] = true
			}
			if s.Name == "http_request_duration_seconds_bucket" && s.Labels["le"] == "+Inf" {
				infBuckets++
			}
			if s.Name == "http_in_flight_requests" {
				inFlight++
			}
		}
		for _, want := range []string{"POST /v1/jobs", "GET /v1/jobs/{id}"} {
			if !routes[want] {
				fail("%s: no http_requests_total series for route %q (have %v)", *metricsPath, want, routes)
			}
		}
		if infBuckets == 0 {
			fail("%s: no +Inf latency buckets", *metricsPath)
		}
		if inFlight == 0 {
			fail("%s: no http_in_flight_requests series", *metricsPath)
		}
		fmt.Printf("obscheck: metrics ok: %d samples, %d routes, %d latency families\n",
			len(samples), len(routes), infBuckets)
	}

	if *apiSpecPath != "" {
		data, err := os.ReadFile(*apiSpecPath)
		if err != nil {
			log.Fatal(err)
		}
		// The spec declares its routes in fenced ```routes blocks, one
		// "METHOD /path" per line, " [cluster]"-suffixed for
		// coordinator-only routes. The check is set equality in both
		// directions against the daemon's compiled route table: a route
		// served but not documented fails, and a route documented but not
		// served fails. The spec cannot drift from the code.
		documented := map[string]bool{}
		inBlock := false
		for ln, line := range strings.Split(string(data), "\n") {
			trimmed := strings.TrimSpace(line)
			switch {
			case trimmed == "```routes":
				inBlock = true
			case trimmed == "```":
				inBlock = false
			case inBlock && trimmed != "":
				key := strings.TrimSuffix(trimmed, " [cluster]")
				if parts := strings.Fields(key); len(parts) != 2 || !strings.HasPrefix(parts[1], "/") {
					fail("%s:%d: malformed route line %q (want \"METHOD /path\")", *apiSpecPath, ln+1, trimmed)
					continue
				}
				if documented[trimmed] {
					fail("%s:%d: duplicate route %q", *apiSpecPath, ln+1, trimmed)
				}
				documented[trimmed] = true
			}
		}
		served := map[string]bool{}
		for _, rt := range service.Routes() {
			key := rt.Pattern
			if rt.Cluster {
				key += " [cluster]"
			}
			served[key] = true
			if !documented[key] {
				fail("%s: served route %q is not documented", *apiSpecPath, key)
			}
		}
		for key := range documented {
			if !served[key] {
				fail("%s: documented route %q is not served by the daemon", *apiSpecPath, key)
			}
		}
		if len(documented) == 0 {
			fail("%s: no ```routes blocks found", *apiSpecPath)
		}
		if !failed {
			fmt.Printf("obscheck: API spec ok: %d routes documented, %d served, in sync\n", len(documented), len(served))
		}
	}

	if *tracePath == "" && *manifestPath == "" && *benchPath == "" && *apiJobPath == "" && *apiArtifactsPath == "" && *journalPath == "" && *shardPath == "" && *loadPath == "" && *metricsPath == "" && *apiSpecPath == "" {
		log.Fatal("nothing to check: pass -trace, -manifest, -bench, -apijob, -apiartifacts, -journal, -shard, -loadreport, -metrics and/or -apispec")
	}
	if failed {
		os.Exit(1)
	}
}

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Small fixed sets; simple insertion sort keeps the output stable.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
