// Command stcd is the standard-cell tuning daemon: the paper's full
// pipeline (characterize -> tune -> restrict -> synthesize -> analyze
// variation) served on demand as asynchronous HTTP/JSON jobs.
//
//	stcd -addr :8372 -cachedir /var/cache/stcd -statedir /var/lib/stcd
//
// The HTTP surface is stdcelltune-api/2 (see docs/API.md): jobs,
// digest-addressed libraries, and a structured query layer over a
// finished run's cells, windows, instances and results — including
// what-if substitution and window-widening evaluated by incremental
// reanalysis (POST /v2/libraries/{digest}/query, see internal/query).
// The original /v1 routes remain as byte-identical compatibility
// shims. Identical specs share one content-addressed cache entry, so a
// warm request returns the cold run's bytes without recomputing (see
// internal/service and internal/service/cache); query results share
// the same cache, keyed by (library digest, normalized query). With
// -statedir every job state transition is
// journaled (stdcelltune-journal/1, fsynced on accept and terminal
// states), so a crash — SIGKILL, OOM, power — loses no accepted job: on
// restart the journal replays, pending jobs re-enqueue, and warm specs
// replay their cached bytes exactly. SIGINT/SIGTERM drains gracefully:
// new submissions get 503 while in-flight jobs finish, bounded by
// -draintimeout.
//
// Flags:
//
//	-addr           listen address (default 127.0.0.1:8372; use :0 for an ephemeral port)
//	-addrfile       write the bound address to this file once listening (smoke harnesses)
//	-cachedir       persist the artifact cache here; empty = memory only
//	-statedir       durable job journal + shutdown manifest here; empty = no crash safety
//	-workers        concurrent pipeline executions (default 1; the pipeline itself parallelizes)
//	-queue          queued-job backlog bound (default 16)
//	-maxrps         global submission rate limit, jobs/sec (0 = unlimited; rejections are 429 + Retry-After)
//	-burst          rate-limiter burst size (0 = ceil(maxrps))
//	-tenantquota    max concurrently active jobs per tenant / X-API-Key (0 = unlimited; 429 on excess)
//	-breakerk       trip a spec digest after K consecutive panic/quarantine failures (0 = breaker off)
//	-breakercooldown how long a tripped digest stays open before one probe (default 30s)
//	-draintimeout   graceful-shutdown bound (default 60s)
//	-chaos          fault-injection spec, e.g. 'journal.done.write=torn' (crash harness; see internal/service/chaos)
//	-chaosseed      deterministic seed for -chaos decisions
//	-debugaddr      also serve expvar/pprof/obs debug surface + /metrics on this address
//	-profiledir     write cpu.pprof (whole lifetime) and heap.pprof (at shutdown) here
//	-log            log level: debug, info, warn, error (default info)
//
// Cluster flags (see DESIGN.md §15):
//
//	-cluster        host a shard coordinator: characterize stages distribute to
//	                registered workers and /v1/cluster routes mount
//	-worker         run as a worker instead of a daemon (requires -join)
//	-join           coordinator base URL a worker registers with
//	-name           worker name label (default host-pid)
//	-leasetimeout   shard lease TTL before a silent worker's task re-queues (default 10s)
//	-shardsize      Monte-Carlo instances per shard task (default 25)
//	-peers          comma-separated peer stcd addresses for the peer cache tier
//	-peeraddr       artifact address a worker advertises at registration
//	-simcharlatency simulated external-characterizer latency per instance (benchmarks)
//
// GET /metrics on the main address serves the Prometheus text
// exposition (format 0.0.4) of the process registry, including the
// per-route RED series the instrument middleware records.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"stdcelltune/internal/obs"
	"stdcelltune/internal/obs/debughttp"
	"stdcelltune/internal/service"
	"stdcelltune/internal/service/cache"
	"stdcelltune/internal/service/chaos"
	"stdcelltune/internal/service/journal"
	"stdcelltune/internal/service/shard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stcd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8372", "listen address (:0 for ephemeral)")
	addrFile := flag.String("addrfile", "", "write bound address to this file once listening")
	cacheDir := flag.String("cachedir", "", "persist artifact cache in this directory")
	stateDir := flag.String("statedir", "", "durable job journal + shutdown manifest directory")
	workers := flag.Int("workers", 1, "concurrent pipeline executions")
	queueDepth := flag.Int("queue", 16, "job queue depth")
	maxRPS := flag.Float64("maxrps", 0, "global submission rate limit, jobs/sec (0 = unlimited)")
	burst := flag.Int("burst", 0, "rate-limiter burst (0 = ceil(maxrps))")
	tenantQuota := flag.Int("tenantquota", 0, "max concurrently active jobs per tenant (0 = unlimited)")
	breakerK := flag.Int("breakerk", 3, "trip a spec digest after K consecutive panic/quarantine failures (0 = off)")
	breakerCooldown := flag.Duration("breakercooldown", 30*time.Second, "tripped-digest cooldown before one probe")
	drainTimeout := flag.Duration("draintimeout", 60*time.Second, "graceful shutdown bound")
	chaosSpec := flag.String("chaos", "", "fault-injection spec (point=kind[:after][:dur], comma-separated)")
	chaosSeed := flag.Int64("chaosseed", 1, "seed for -chaos decisions")
	debugAddr := flag.String("debugaddr", "", "serve expvar/pprof/obs debug surface on this address")
	profileDir := flag.String("profiledir", "", "write cpu.pprof (lifetime) and heap.pprof (at shutdown) into this directory")
	logLevel := flag.String("log", "info", "log level: debug, info, warn, error")
	clusterMode := flag.Bool("cluster", false, "host a shard coordinator for distributed characterization")
	workerMode := flag.Bool("worker", false, "run as a cluster worker (requires -join)")
	join := flag.String("join", "", "coordinator base URL to register with (worker mode)")
	workerName := flag.String("name", "", "worker name label (default host-pid)")
	leaseTimeout := flag.Duration("leasetimeout", 10*time.Second, "shard lease TTL before a silent worker's task re-queues")
	shardSize := flag.Int("shardsize", 0, "Monte-Carlo instances per shard task (0 = default)")
	peerList := flag.String("peers", "", "comma-separated peer stcd addresses for the peer cache tier")
	peerAddr := flag.String("peeraddr", "", "artifact address a worker advertises at registration")
	simCharLatency := flag.Duration("simcharlatency", 0, "simulated external-characterizer latency per Monte-Carlo instance")
	flag.Parse()

	level, ok := obs.ParseLogLevel(*logLevel)
	if !ok {
		return fmt.Errorf("unknown -log level %q", *logLevel)
	}
	log := obs.InitLog(os.Stderr, level)

	if *workerMode {
		return runWorker(log, *join, *workerName, *peerAddr, *simCharLatency)
	}

	if *profileDir != "" {
		stop, err := startProfiles(*profileDir)
		if err != nil {
			return fmt.Errorf("profiledir: %w", err)
		}
		defer stop()
		log.Info("profiling enabled", "dir", *profileDir)
	}

	if *chaosSpec != "" {
		inj, err := chaos.Parse(*chaosSpec, *chaosSeed)
		if err != nil {
			return err
		}
		inj.ExitOnCrash = true // a firing crash point kills the real process, like SIGKILL between two syscalls
		chaos.Activate(inj)
		log.Warn("chaos armed", "spec", *chaosSpec, "seed", *chaosSeed)
	}

	store, err := cache.New(*cacheDir)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if *cacheDir != "" {
		log.Info("cache rehydrated", "dir", *cacheDir, "entries", store.Len(),
			"corrupt_dropped", obs.Default().Counter("cache.corrupt_dropped").Value())
	}

	var jnl *journal.Journal
	var replayed []journal.Record
	if *stateDir != "" {
		jnl, replayed, err = journal.Open(*stateDir)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		defer jnl.Close()
		log.Info("journal replayed", "path", jnl.Path(), "records", len(replayed),
			"pending", len(journal.Pending(replayed)),
			"torn_tails", obs.Default().Counter("journal.torn_tail_truncated").Value())
	}

	// Cluster tier: a coordinator distributes characterize stages to
	// registered workers; the peer client fills local cache misses from
	// other nodes' verified artifacts. Neither is constructed for a
	// plain single-node daemon, whose pipeline stays the byte-identical
	// default.
	var coord *shard.Coordinator
	var peerClient *service.PeerClient
	var pipelineRun func(context.Context, service.Spec) (map[string][]byte, error)
	if *peerList != "" || *clusterMode {
		peerClient = service.NewPeerClient(strings.Split(*peerList, ","))
		store.SetPeerFetch(peerClient.Fetch)
		if ps := peerClient.Peers(); len(ps) > 0 {
			log.Info("peer cache tier enabled", "peers", ps)
		}
	}
	if *clusterMode {
		coord = shard.New(shard.Options{
			LeaseTTL: *leaseTimeout,
			OnRegister: func(name, addr string) {
				log.Info("worker registered", "worker", name, "peer_addr", addr)
				if addr != "" {
					peerClient.Add(addr)
				}
			},
		})
	}
	if coord != nil || *simCharLatency > 0 {
		p := &service.Pipeline{Cluster: coord, ShardSize: *shardSize, SimCharLatency: *simCharLatency}
		pipelineRun = p.Run
	}

	mgr := service.NewManager(store, service.ManagerOptions{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		Run:             pipelineRun,
		Trace:           true,
		Journal:         jnl,
		Recovered:       replayed,
		MaxRPS:          *maxRPS,
		Burst:           *burst,
		TenantQuota:     *tenantQuota,
		BreakerK:        *breakerK,
		BreakerCooldown: *breakerCooldown,
		Cluster:         coord,
		Peers:           peerClient,
	})
	if n := mgr.Recovered(); n > 0 {
		log.Info("recovered jobs re-enqueued", "jobs", n)
	}

	if *debugAddr != "" {
		_, bound, err := debughttp.Serve(*debugAddr, debughttp.DebugState{
			Metrics: obs.Default(),
			Extra:   map[string]any{"binary": "stcd", "schema": service.SchemaSpec},
		})
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		log.Info("debug surface up", "addr", bound)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("addrfile: %w", err)
		}
	}
	srv := &http.Server{Handler: service.Handler(mgr)}
	log.Info("stcd listening", "addr", ln.Addr().String(), "workers", *workers, "queue", *queueDepth,
		"maxrps", *maxRPS, "tenantquota", *tenantQuota, "breakerk", *breakerK,
		"cluster", *clusterMode, "shardsize", *shardSize)

	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	log.Info("draining", "timeout", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the job queue first so in-flight jobs finish, then close the
	// HTTP server; during the drain new submissions are answered 503.
	drainErr := mgr.Drain(drainCtx)
	if err := srv.Shutdown(drainCtx); err != nil {
		srv.Close()
	}
	if drainErr != nil {
		log.Warn("drain incomplete, jobs cancelled", "err", drainErr)
	} else {
		log.Info("drained cleanly")
	}
	if *stateDir != "" {
		writeManifest(*stateDir, mgr, drainErr == nil)
	}
	return nil
}

// runWorker is the -worker entry point: no HTTP surface, no job queue —
// just the cluster poll loop executing characterization shards until a
// signal arrives. Dying mid-shard (SIGKILL) is safe by protocol: the
// lease expires and another worker steals the shard.
func runWorker(log *slog.Logger, join, name, peerAddr string, simCharLatency time.Duration) error {
	if join == "" {
		return errors.New("-worker requires -join=<coordinator URL>")
	}
	if !strings.Contains(join, "://") {
		join = "http://" + join
	}
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &shard.Worker{
		Base:     strings.TrimRight(join, "/"),
		Name:     name,
		PeerAddr: peerAddr,
		Exec:     shard.Executor{SimCharLatency: simCharLatency},
	}
	log.Info("stcd worker starting", "coordinator", w.Base, "name", name,
		"simcharlatency", simCharLatency.String())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	log.Info("stcd worker stopped")
	return nil
}

// startProfiles begins a lifetime CPU profile in dir; the returned stop
// ends it and snapshots the heap profile — called on the graceful
// shutdown path, so a drained daemon leaves both files behind for
// `go tool pprof`.
func startProfiles(dir string) (stop func(), err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpuF, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		cpuF.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		cpuF.Close()
		heapF, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			obs.Log().Warn("heap profile create failed", "err", err)
			return
		}
		runtime.GC() // up-to-date allocation stats in the snapshot
		if err := pprof.Lookup("heap").WriteTo(heapF, 0); err != nil {
			obs.Log().Warn("heap profile write failed", "err", err)
		}
		heapF.Close()
	}, nil
}

// writeManifest records the daemon lifetime's recovery/admission totals
// beside the journal. Best-effort: failing to write provenance must not
// turn a clean drain into a dirty exit.
func writeManifest(stateDir string, mgr *service.Manager, drainClean bool) {
	reg := obs.Default()
	counter := func(name string) int64 { return reg.Counter(name).Value() }
	m := obs.NewManifest()
	m.Args = os.Args
	m.Metrics = reg.Snapshot()
	m.Service = &obs.ServiceOutcome{
		JobsSubmitted:          counter("service.jobs_submitted"),
		JobsRecovered:          int64(mgr.Recovered()),
		JournalRecordsReplayed: counter("journal.records_replayed"),
		TornTailsTruncated:     counter("journal.torn_tail_truncated"),
		RateLimited:            counter("service.admit_rate_limited"),
		QuotaRejected:          counter("service.admit_quota_rejected"),
		BreakerTrips:           counter("service.breaker_trips"),
		CorruptCacheDropped:    counter("cache.corrupt_dropped"),
		DrainClean:             drainClean,
	}
	path := filepath.Join(stateDir, "stcd.manifest.json")
	if err := m.Write(path); err != nil {
		obs.Log().Warn("manifest write failed", "path", path, "err", err)
	} else {
		obs.Log().Info("manifest written", "path", path)
	}
}
