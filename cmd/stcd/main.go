// Command stcd is the standard-cell tuning daemon: the paper's full
// pipeline (characterize -> tune -> restrict -> synthesize -> analyze
// variation) served on demand as asynchronous HTTP/JSON jobs.
//
//	stcd -addr :8372 -cachedir /var/cache/stcd
//
// Requests are stdcelltune-api/1 specs; identical specs share one
// content-addressed cache entry, so a warm request returns the cold
// run's bytes without recomputing (see internal/service and
// internal/service/cache). SIGINT/SIGTERM drains gracefully: new
// submissions get 503 while in-flight jobs finish, bounded by
// -draintimeout.
//
// Flags:
//
//	-addr         listen address (default 127.0.0.1:8372; use :0 for an ephemeral port)
//	-addrfile     write the bound address to this file once listening (smoke harnesses)
//	-cachedir     persist the artifact cache here; empty = memory only
//	-workers      concurrent pipeline executions (default 1; the pipeline itself parallelizes)
//	-queue        queued-job backlog bound (default 16)
//	-draintimeout graceful-shutdown bound (default 60s)
//	-debugaddr    also serve expvar/pprof/obs debug surface on this address
//	-log          log level: debug, info, warn, error (default info)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stdcelltune/internal/obs"
	"stdcelltune/internal/obs/debughttp"
	"stdcelltune/internal/service"
	"stdcelltune/internal/service/cache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stcd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8372", "listen address (:0 for ephemeral)")
	addrFile := flag.String("addrfile", "", "write bound address to this file once listening")
	cacheDir := flag.String("cachedir", "", "persist artifact cache in this directory")
	workers := flag.Int("workers", 1, "concurrent pipeline executions")
	queueDepth := flag.Int("queue", 16, "job queue depth")
	drainTimeout := flag.Duration("draintimeout", 60*time.Second, "graceful shutdown bound")
	debugAddr := flag.String("debugaddr", "", "serve expvar/pprof/obs debug surface on this address")
	logLevel := flag.String("log", "info", "log level: debug, info, warn, error")
	flag.Parse()

	level, ok := obs.ParseLogLevel(*logLevel)
	if !ok {
		return fmt.Errorf("unknown -log level %q", *logLevel)
	}
	log := obs.InitLog(os.Stderr, level)

	store, err := cache.New(*cacheDir)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if *cacheDir != "" {
		log.Info("cache rehydrated", "dir", *cacheDir, "entries", store.Len())
	}

	mgr := service.NewManager(store, service.ManagerOptions{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		Trace:      true,
	})

	if *debugAddr != "" {
		_, bound, err := debughttp.Serve(*debugAddr, debughttp.DebugState{
			Metrics: obs.Default(),
			Extra:   map[string]any{"binary": "stcd", "schema": service.SchemaSpec},
		})
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		log.Info("debug surface up", "addr", bound)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("addrfile: %w", err)
		}
	}
	srv := &http.Server{Handler: service.Handler(mgr)}
	log.Info("stcd listening", "addr", ln.Addr().String(), "workers", *workers, "queue", *queueDepth)

	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	log.Info("draining", "timeout", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the job queue first so in-flight jobs finish, then close the
	// HTTP server; during the drain new submissions are answered 503.
	drainErr := mgr.Drain(drainCtx)
	if err := srv.Shutdown(drainCtx); err != nil {
		srv.Close()
	}
	if drainErr != nil {
		log.Warn("drain incomplete, jobs cancelled", "err", drainErr)
	} else {
		log.Info("drained cleanly")
	}
	return nil
}
