// Command benchjson turns `go test -bench -benchmem` output into the
// repo's benchmark JSON trajectory (BENCH_PR3.json). It reads the
// benchmark output on stdin and merges the parsed numbers into -out,
// preserving everything already recorded there (other benchmarks,
// phase timings, the seed baselines).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -out BENCH_PR3.json
//	... -baseline   # record the numbers as the seed baseline instead
//
// With -baseline the numbers land in the baseline_* fields; without it
// they become the current numbers and the speedup against any recorded
// baseline is recomputed. `make bench-json` wires the whole pipeline.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"stdcelltune/internal/perfstat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "BENCH_PR3.json", "benchmark JSON file to merge into")
	baseline := flag.Bool("baseline", false, "record parsed numbers as the seed baseline instead of the current numbers")
	note := flag.String("note", "", "free-form note stored in the file (machine, scale, date)")
	flag.Parse()

	raw, err := io.ReadAll(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	// The benchmark output is also the human-readable record; echo it so
	// piping through benchjson loses nothing.
	os.Stdout.Write(raw)

	results := perfstat.ParseGoBench(string(raw))
	if len(results) == 0 {
		log.Fatal("no benchmark result lines found on stdin (want `go test -bench` output)")
	}
	f, err := perfstat.ReadBenchFile(*out)
	if err != nil {
		log.Fatal(err)
	}
	f.Merge(results, *baseline)
	if *note != "" {
		f.Note = *note
	}
	if err := f.Write(*out); err != nil {
		log.Fatal(err)
	}
	kind := "current"
	if *baseline {
		kind = "baseline"
	}
	fmt.Fprintf(os.Stderr, "benchjson: merged %d %s benchmark(s) into %s\n", len(results), kind, *out)
}
