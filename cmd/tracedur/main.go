// Command tracedur sums the wall time of the named complete ("X")
// spans in a Chrome trace-event JSON file and prints the total in
// nanoseconds. It exists so shell harnesses (scripts/cluster_bench.sh)
// can pull one phase's duration out of GET /v1/jobs/{id}/trace without
// fragile text scraping — the trace is nested JSON, which sed cannot
// parse reliably.
//
// Usage:
//
//	tracedur -trace /tmp/job-trace.json -span characterize
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracedur: ")
	tracePath := flag.String("trace", "", "Chrome trace-event JSON file (required)")
	span := flag.String("span", "", "span name to sum (required)")
	flag.Parse()
	if *tracePath == "" || *span == "" {
		log.Fatal("usage: tracedur -trace file.json -span characterize")
	}
	data, err := os.ReadFile(*tracePath)
	if err != nil {
		log.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  int64  `json:"dur"` // microseconds, per the trace-event format
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		log.Fatalf("%s: not valid trace JSON: %v", *tracePath, err)
	}
	var total int64
	matched := 0
	for _, e := range tr.TraceEvents {
		if e.Ph == "X" && e.Name == *span {
			total += e.Dur
			matched++
		}
	}
	if matched == 0 {
		log.Fatalf("%s: no complete spans named %q", *tracePath, *span)
	}
	fmt.Println(total * 1000)
}
