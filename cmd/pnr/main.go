// Command pnr runs the post-synthesis extension flow: place the
// synthesized microcontroller, re-time it with wirelength-derived wire
// loads, and synthesize a clock tree — optionally under a tuning
// method's windows — reporting wirelength, post-placement timing and
// clock skew statistics.
//
// Usage:
//
//	pnr -clock 6.0
//	pnr -clock 6.0 -ceiling 0.001
//	pnr -clock 4.0 -small -fanout 8
package main

import (
	"flag"
	"fmt"
	"log"

	"stdcelltune/internal/core"
	"stdcelltune/internal/cts"
	"stdcelltune/internal/place"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/synth"
	"stdcelltune/internal/variation"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnr: ")
	clock := flag.Float64("clock", 6.0, "clock period (ns)")
	ceiling := flag.Float64("ceiling", 0, "sigma-ceiling bound for a tuned clock tree (0 = baseline only)")
	samples := flag.Int("samples", 50, "Monte-Carlo instances")
	seed := flag.Int64("seed", 1, "seed")
	small := flag.Bool("small", false, "use the scaled-down MCU")
	fanout := flag.Int("fanout", 12, "clock tree max fanout")
	flag.Parse()

	cat := stdcell.NewCatalogue(stdcell.Typical)
	libs := variation.Instances(cat, variation.Config{N: *samples, Seed: *seed, CharNoise: 0.02})
	stat, err := statlib.Build("stat", libs)
	if err != nil {
		log.Fatal(err)
	}
	cfg := rtlgen.DefaultConfig()
	if *small {
		cfg = rtlgen.SmallConfig()
	}
	mcu, err := rtlgen.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := synth.Synthesize("mcu", mcu.Net, cat, synth.DefaultOptions(*clock))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesis: met=%v area=%.0f um2, %d instances\n", res.Met, res.Area(), len(res.Netlist.Instances))

	p, err := place.Place(res.Netlist, place.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement: %d rows, die %.0f x %.0f um, wirelength %.0f um\n",
		p.Rows, p.Width, p.Height(), p.TotalHPWL())

	staCfg := res.Opts.STA
	staCfg.NetWireCap = p.WireCaps()
	post, err := sta.Analyze(res.Netlist, staCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-placement timing: WNS %.3f ns (was %.3f with the fanout model)\n",
		post.WNS(), res.Timing.WNS())

	ctsCfg := cts.DefaultConfig()
	ctsCfg.MaxFanout = *fanout
	tree, a, err := cts.BuildLegal(p, cat, stat, ctsCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clock tree (baseline): %d buffers, %d levels, insertion %.3f..%.3f ns, skew %.4f ns, skew sigma %.5f ns\n",
		tree.BufferCount(), tree.Levels, a.InsertionMin, a.InsertionMax, a.NominalSkew(), a.WorstSkewSigma)

	if *ceiling > 0 {
		set, _, err := core.NewTuner(stat).Tune(core.ParamsFor(core.SigmaCeiling, *ceiling))
		if err != nil {
			log.Fatal(err)
		}
		tunedCfg := ctsCfg
		tunedCfg.Windows = set
		ttree, ta, err := cts.BuildLegal(p, cat, stat, tunedCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("clock tree (ceiling %g): %d buffers, %d levels, skew %.4f ns, skew sigma %.5f ns (%.0f%% lower)\n",
			*ceiling, ttree.BufferCount(), ttree.Levels, ta.NominalSkew(), ta.WorstSkewSigma,
			100*(a.WorstSkewSigma-ta.WorstSkewSigma)/a.WorstSkewSigma)
	}
}
