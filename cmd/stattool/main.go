// Command stattool builds the statistical library of Section IV: it
// either loads Monte-Carlo Liberty instances from disk (the libgen
// output) or generates them in memory, folds them into per-entry
// mean/sigma tables, and writes the result as an LVF-style Liberty file
// (ocv_sigma_cell_rise/_fall groups).
//
// Usage:
//
//	stattool -in 'lib/stc40_TT1P1V25C_mc*.lib' -out stat.lib
//	stattool -generate 50 -seed 1 -out stat.lib
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stattool: ")
	in := flag.String("in", "", "glob of Monte-Carlo .lib instances")
	gen := flag.Int("generate", 0, "generate this many instances in memory instead of reading -in")
	seed := flag.Int64("seed", 1, "seed for -generate")
	cornerFlag := flag.String("corner", "typical", "corner for -generate")
	out := flag.String("out", "stat.lib", "output statistical library")
	flag.Parse()

	var libs []*liberty.Library
	switch {
	case *gen > 0:
		corner, err := stdcell.ParseCorner(*cornerFlag)
		if err != nil {
			log.Fatal(err)
		}
		cat := stdcell.NewCatalogue(corner)
		libs = variation.Instances(cat, variation.Config{N: *gen, Seed: *seed, CharNoise: 0.02})
	case *in != "":
		paths, err := filepath.Glob(*in)
		if err != nil {
			log.Fatal(err)
		}
		sort.Strings(paths)
		if len(paths) < 2 {
			log.Fatalf("glob %q matched %d files; need at least 2", *in, len(paths))
		}
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				log.Fatal(err)
			}
			lib, err := liberty.Parse(string(data))
			if err != nil {
				log.Fatalf("%s: %v", p, err)
			}
			libs = append(libs, lib)
		}
	default:
		log.Fatal("need -in or -generate")
	}

	stat, err := statlib.Build("statistical", libs)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := liberty.Write(f, stat.ToLiberty()); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("folded %d instances into %s (%d cells, max sigma %.4f ns)\n",
		stat.Samples, *out, len(stat.Cells), stat.MaxSigma())
}
