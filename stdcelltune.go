// Package stdcelltune reproduces "Standard Cell Library Tuning for
// Variability Tolerant Designs" (Fabrie, DATE 2014): a library tuning
// method that confines each standard cell's look-up table to the
// slew/load region where its delay sigma is low, binding synthesis to
// the variation-robust part of the library and reducing a design's
// sensitivity to local (intra-die) process variation.
//
// The package is a facade over the full flow. Every stage takes a
// context (cancellation aborts promptly; the returned error matches
// ErrCancelled) and an Options struct whose zero value reproduces the
// paper's defaults:
//
//	ctx := context.Background()
//	cat := stdcelltune.NewCatalogue(stdcelltune.Typical) // 304-cell 40nm-class library
//	stat, _ := stdcelltune.CharacterizeCtx(ctx, cat,     // Monte-Carlo statistical library
//		stdcelltune.CharacterizeOptions{Instances: 50, Seed: 1})
//	win, rep, _ := stdcelltune.TuneCtx(ctx, stat,
//		stdcelltune.TuneOptions{Method: stdcelltune.SigmaCeiling, Bound: 0.02})
//	mcu, _ := stdcelltune.NewMCU()                       // 20k-gate evaluation design
//	base, _ := stdcelltune.SynthesizeCtx(ctx, mcu, cat,  // baseline
//		stdcelltune.SynthesizeOptions{Clock: 5.0})
//	tuned, _ := stdcelltune.SynthesizeCtx(ctx, mcu, cat, // restricted
//		stdcelltune.SynthesizeOptions{Clock: 5.0, Windows: win})
//	bs, _ := stdcelltune.AnalyzeVariationCtx(ctx, base, stat, stdcelltune.AnalyzeVariationOptions{})
//	ts, _ := stdcelltune.AnalyzeVariationCtx(ctx, tuned, stat, stdcelltune.AnalyzeVariationOptions{})
//	// ts.Design.Sigma < bs.Design.Sigma at a modest area cost.
//
// Failures carry typed sentinels — ErrQuarantined, ErrWindowInfeasible,
// ErrCancelled — so service layers map them with errors.Is. The
// positional entrypoints (Characterize, Tune, Synthesize,
// AnalyzeVariation) remain as deprecated wrappers.
//
// Every table and figure of the paper regenerates through Experiments
// (see the root bench_test.go and cmd/experiments); the same pipeline
// is served on demand by the cmd/stcd daemon (internal/service).
package stdcelltune

import (
	"context"

	"stdcelltune/internal/core"
	"stdcelltune/internal/exp"
	"stdcelltune/internal/liberty"
	"stdcelltune/internal/logic"
	"stdcelltune/internal/power"
	"stdcelltune/internal/restrict"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stattime"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/synth"
)

// Corner is a process/voltage/temperature corner.
type Corner = stdcell.Corner

// Process corners.
const (
	Typical = stdcell.Typical
	Fast    = stdcell.Fast
	Slow    = stdcell.Slow
)

// Catalogue is the 304-cell standard cell library: the Liberty model
// plus the analytic NLDM behind every cell.
type Catalogue = stdcell.Catalogue

// NewCatalogue builds the library characterized at a corner.
func NewCatalogue(c Corner) *Catalogue { return stdcell.NewCatalogue(c) }

// Library is a parsed or generated Liberty (.lib) model.
type Library = liberty.Library

// WriteLiberty serializes a Liberty library to text.
func WriteLiberty(l *Library) (string, error) { return liberty.WriteString(l) }

// ParseLiberty loads Liberty text.
func ParseLiberty(src string) (*Library, error) { return liberty.Parse(src) }

// StatisticalLibrary holds per-LUT-entry delay mean and sigma across the
// Monte-Carlo instances (paper Section IV, Fig. 2).
type StatisticalLibrary = statlib.Library

// Characterize runs the Monte-Carlo characterization (n library
// instances under local variation) and folds them into the statistical
// library. The paper uses n = 50.
//
// Deprecated: use CharacterizeCtx, which adds cancellation and a
// self-describing options struct. This wrapper is bit-identical to
// CharacterizeCtx(context.Background(), cat, CharacterizeOptions{Instances: n, Seed: seed}).
func Characterize(cat *Catalogue, n int, seed int64) (*StatisticalLibrary, error) {
	return CharacterizeCtx(context.Background(), cat, CharacterizeOptions{Instances: n, Seed: seed})
}

// Method is one of the paper's five tuning methods.
type Method = core.Method

// The five tuning methods (paper Section VI.A).
const (
	CellStrengthLoadSlope = core.CellStrengthLoadSlope
	CellStrengthSlewSlope = core.CellStrengthSlewSlope
	CellLoadSlope         = core.CellLoadSlope
	CellSlewSlope         = core.CellSlewSlope
	SigmaCeiling          = core.SigmaCeiling
)

// Methods lists all five tuning methods in paper order.
var Methods = core.Methods

// SweepBounds returns the paper's Table 2 sweep values for a method.
func SweepBounds(m Method) []float64 { return core.SweepBounds(m) }

// Windows is a set of per-pin slew/load operating windows — the tuning
// output that binds synthesis to each cell's robust LUT region.
type Windows = restrict.Set

// TuningReport records the thresholds and per-pin restrictions of a
// tuning run.
type TuningReport = core.Report

// Tune runs a tuning method at the given constraint bound against the
// statistical library.
//
// Deprecated: use TuneCtx. Unlike TuneCtx this wrapper does not reject
// an all-excluded window set with ErrWindowInfeasible, preserving the
// historical contract for existing sweep drivers that probe infeasible
// bounds deliberately.
func Tune(stat *StatisticalLibrary, m Method, bound float64) (*Windows, *TuningReport, error) {
	return core.NewTuner(stat).Tune(core.ParamsFor(m, bound))
}

// Design is a technology-independent logic network, the synthesis input.
type Design = logic.Network

// MCUConfig sizes the generated microcontroller.
type MCUConfig = rtlgen.Config

// NewMCU generates the paper's evaluation workload: a ~20k-gate 32-bit
// microcontroller (CPU, AHB-style bus, timers, GPIO, SRAM interface).
func NewMCU() (*Design, error) {
	m, err := rtlgen.Build(rtlgen.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return m.Net, nil
}

// NewMCUWith generates the microcontroller with a custom configuration.
func NewMCUWith(cfg MCUConfig) (*Design, error) {
	m, err := rtlgen.Build(cfg)
	if err != nil {
		return nil, err
	}
	return m.Net, nil
}

// SynthesisResult is a completed synthesis run: the mapped and sized
// netlist, its timing, and the optimization statistics.
type SynthesisResult = synth.Result

// Synthesize maps the design onto the catalogue and sizes it against a
// clock period (ns). windows may be nil for an unrestricted baseline.
//
// Deprecated: use SynthesizeCtx, which adds cancellation and room for
// non-default iteration budgets. This wrapper is bit-identical to
// SynthesizeCtx(context.Background(), d, cat, SynthesizeOptions{Clock: clock, Windows: windows}).
func Synthesize(d *Design, cat *Catalogue, clock float64, windows *Windows) (*SynthesisResult, error) {
	return SynthesizeCtx(context.Background(), d, cat, SynthesizeOptions{Clock: clock, Windows: windows})
}

// DesignStats is the statistical timing of a synthesized design: per
// worst path and design-level delay mean and sigma (paper eqs. 5-11).
type DesignStats = stattime.DesignStats

// AnalyzeVariation computes the local-variation statistics of a
// synthesis result against the statistical library (correlation rho=0,
// the paper's assumption).
//
// Deprecated: use AnalyzeVariationCtx. This wrapper is bit-identical to
// AnalyzeVariationCtx(context.Background(), res, stat, AnalyzeVariationOptions{}).
func AnalyzeVariation(res *SynthesisResult, stat *StatisticalLibrary) (*DesignStats, error) {
	return AnalyzeVariationCtx(context.Background(), res, stat, AnalyzeVariationOptions{})
}

// Compare summarizes tuned-versus-baseline sigma and area.
type Compare = stattime.Compare

// PowerReport is a power estimate: switching, internal and leakage
// components in mW plus the local-variation sigma of the internal part.
type PowerReport = power.Report

// EstimatePower runs activity-based power estimation on a synthesis
// result at the given clock period.
func EstimatePower(res *SynthesisResult, clock float64) (*PowerReport, error) {
	return power.Estimate(res.Netlist, res.Timing, power.DefaultConfig(clock))
}

// Experiments drives the paper's full evaluation: every table and figure
// regenerates through its methods (Table1..Table3, Fig1..Fig16).
type Experiments = exp.Flow

// ExperimentsConfig sizes the experiment flow.
type ExperimentsConfig = exp.FlowConfig

// NewExperiments builds the experiment flow at paper scale (50 MC
// instances, the 20k-gate MCU).
func NewExperiments() (*Experiments, error) {
	return exp.NewFlow(context.Background(), exp.DefaultFlowConfig())
}

// NewExperimentsWith builds the flow with a custom configuration (the
// scaled-down exp.SmallFlowConfig is useful for quick runs).
func NewExperimentsWith(cfg ExperimentsConfig) (*Experiments, error) {
	return exp.NewFlow(context.Background(), cfg)
}

// NewExperimentsContext builds the flow bound to a context: cancelling
// it aborts construction and any driver still running, promptly and
// without goroutine leaks (see DESIGN.md, "Failure semantics").
func NewExperimentsContext(ctx context.Context, cfg ExperimentsConfig) (*Experiments, error) {
	return exp.NewFlow(ctx, cfg)
}
