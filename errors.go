package stdcelltune

import (
	"context"
	"errors"
	"fmt"

	"stdcelltune/internal/robust"
)

// Typed sentinel errors of the facade. Service layers (cmd/stcd,
// internal/service) map these to transport status codes with errors.Is
// instead of string matching, so the error text stays free to carry
// human-readable detail.
var (
	// ErrQuarantined reports that too large a fraction of the library was
	// quarantined for the requested operation to produce a meaningful
	// result (see robust.DefaultQuarantineLimit). It aliases the
	// internal sentinel every quarantine check wraps, so it matches
	// failures from characterization, tuning, and statistical analysis
	// alike.
	ErrQuarantined = robust.ErrQuarantineLimit

	// ErrWindowInfeasible reports that a tuning window set forbids every
	// operating point of every pin — synthesis under it cannot succeed.
	ErrWindowInfeasible = errors.New("stdcelltune: tuning windows leave no feasible operating region")

	// ErrCancelled reports that the operation was abandoned because its
	// context was cancelled or timed out. Facade *Ctx functions translate
	// context.Canceled / context.DeadlineExceeded into this sentinel
	// (the original cause stays in the message).
	ErrCancelled = errors.New("stdcelltune: cancelled")
)

// wrapCancel rewrites context cancellation into ErrCancelled so callers
// need exactly one errors.Is test regardless of which pipeline layer
// noticed the cancellation first. Other errors pass through untouched.
func wrapCancel(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %v", ErrCancelled, err)
	}
	return err
}
