package stdcelltune_test

import (
	"context"
	"errors"
	"testing"

	"stdcelltune"
	"stdcelltune/internal/liberty"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/statlib"
)

// TestCtxFacadeMatchesDeprecated proves the deprecated positional
// wrappers and the ctx-first Options API are the same computation: the
// statistical libraries serialize byte-identically and the synthesis
// results agree in every reported field.
func TestCtxFacadeMatchesDeprecated(t *testing.T) {
	ctx := context.Background()
	cat := stdcelltune.NewCatalogue(stdcelltune.Typical)

	oldStat, err := stdcelltune.Characterize(cat, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	newStat, err := stdcelltune.CharacterizeCtx(ctx, cat, stdcelltune.CharacterizeOptions{Instances: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	oldLib, err := stdcelltune.WriteLiberty(oldStat.ToLiberty())
	if err != nil {
		t.Fatal(err)
	}
	newLib, err := stdcelltune.WriteLiberty(newStat.ToLiberty())
	if err != nil {
		t.Fatal(err)
	}
	if oldLib != newLib {
		t.Fatal("CharacterizeCtx is not bit-identical to Characterize")
	}

	oldWin, oldRep, err := stdcelltune.Tune(oldStat, stdcelltune.SigmaCeiling, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	newWin, newRep, err := stdcelltune.TuneCtx(ctx, newStat, stdcelltune.TuneOptions{Method: stdcelltune.SigmaCeiling, Bound: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if oldWin.Len() != newWin.Len() || len(oldRep.Pins) != len(newRep.Pins) {
		t.Fatalf("TuneCtx diverged: %d/%d windows, %d/%d pins",
			oldWin.Len(), newWin.Len(), len(oldRep.Pins), len(newRep.Pins))
	}
	for _, k := range oldWin.Keys() {
		cell, pin, _ := cutKey(k)
		ow, _ := oldWin.Window(cell, pin)
		nw, ok := newWin.Window(cell, pin)
		if !ok || ow != nw {
			t.Fatalf("window %s diverged: %v vs %v (ok=%v)", k, ow, nw, ok)
		}
	}

	design, err := stdcelltune.NewMCUWith(rtlgen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	oldRes, err := stdcelltune.Synthesize(design, cat, 6, oldWin)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := stdcelltune.SynthesizeCtx(ctx, design, cat, stdcelltune.SynthesizeOptions{Clock: 6, Windows: newWin})
	if err != nil {
		t.Fatal(err)
	}
	if oldRes.Met != newRes.Met || oldRes.Area() != newRes.Area() || oldRes.Iterations != newRes.Iterations {
		t.Fatalf("SynthesizeCtx diverged: met %v/%v area %g/%g iter %d/%d",
			oldRes.Met, newRes.Met, oldRes.Area(), newRes.Area(), oldRes.Iterations, newRes.Iterations)
	}

	oldDS, err := stdcelltune.AnalyzeVariation(oldRes, oldStat)
	if err != nil {
		t.Fatal(err)
	}
	newDS, err := stdcelltune.AnalyzeVariationCtx(ctx, newRes, newStat, stdcelltune.AnalyzeVariationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if oldDS.Design != newDS.Design || len(oldDS.Paths) != len(newDS.Paths) {
		t.Fatalf("AnalyzeVariationCtx diverged: %+v vs %+v", oldDS.Design, newDS.Design)
	}
}

func cutKey(k string) (cell, pin string, ok bool) {
	for i := 0; i < len(k); i++ {
		if k[i] == '/' {
			return k[:i], k[i+1:], true
		}
	}
	return k, "", false
}

// TestErrCancelled pins the cancellation sentinel: a pre-cancelled
// context surfaces as ErrCancelled from every stage.
func TestErrCancelled(t *testing.T) {
	cat := stdcelltune.NewCatalogue(stdcelltune.Typical)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := stdcelltune.CharacterizeCtx(ctx, cat, stdcelltune.CharacterizeOptions{Instances: 4, Seed: 1}); !errors.Is(err, stdcelltune.ErrCancelled) {
		t.Fatalf("CharacterizeCtx: want ErrCancelled, got %v", err)
	}
	if _, _, err := stdcelltune.TuneCtx(ctx, nil, stdcelltune.TuneOptions{Method: stdcelltune.SigmaCeiling, Bound: 0.02}); !errors.Is(err, stdcelltune.ErrCancelled) {
		t.Fatalf("TuneCtx: want ErrCancelled, got %v", err)
	}
	design, err := stdcelltune.NewMCUWith(rtlgen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stdcelltune.SynthesizeCtx(ctx, design, cat, stdcelltune.SynthesizeOptions{Clock: 6}); !errors.Is(err, stdcelltune.ErrCancelled) {
		t.Fatalf("SynthesizeCtx: want ErrCancelled, got %v", err)
	}
}

// TestErrQuarantined pins the quarantine sentinel across package
// boundaries: a statistical-library build that loses too many cells
// must match the facade's ErrQuarantined via errors.Is.
func TestErrQuarantined(t *testing.T) {
	// Two instances whose second copy is missing most cells: everything
	// absent from instance 1 is quarantined, tripping the 50% limit.
	cat := stdcelltune.NewCatalogue(stdcelltune.Typical)
	full := cat.Lib
	gutted := &liberty.Library{Name: full.Name}
	for i, c := range full.Cells {
		if i%4 == 0 {
			gutted.AddCell(c)
		}
	}
	_, err := statlib.Build("gutted", []*liberty.Library{full, gutted})
	if err == nil {
		t.Fatal("want quarantine-limit error")
	}
	if !errors.Is(err, stdcelltune.ErrQuarantined) {
		t.Fatalf("want ErrQuarantined, got %v", err)
	}
}

// TestErrWindowInfeasible pins the infeasibility sentinel: a sigma
// ceiling below any achievable sigma excludes every pin, and TuneCtx
// reports that as ErrWindowInfeasible instead of returning windows that
// would make synthesis fail later.
func TestErrWindowInfeasible(t *testing.T) {
	cat := stdcelltune.NewCatalogue(stdcelltune.Typical)
	stat, err := stdcelltune.CharacterizeCtx(context.Background(), cat, stdcelltune.CharacterizeOptions{Instances: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = stdcelltune.TuneCtx(context.Background(), stat, stdcelltune.TuneOptions{Method: stdcelltune.SigmaCeiling, Bound: 1e-12})
	if !errors.Is(err, stdcelltune.ErrWindowInfeasible) {
		t.Fatalf("want ErrWindowInfeasible, got %v", err)
	}
	// The deprecated wrapper keeps the historical contract: no error.
	if _, _, err := stdcelltune.Tune(stat, stdcelltune.SigmaCeiling, 1e-12); err != nil {
		t.Fatalf("deprecated Tune must not reject infeasible windows: %v", err)
	}
}
