package stdcelltune_test

import (
	"strings"
	"testing"

	"stdcelltune"
	"stdcelltune/internal/rtlgen"
)

// TestFacadeEndToEnd drives the whole public API once: catalogue,
// characterization, tuning, baseline and restricted synthesis, and the
// sigma comparison the paper is about.
func TestFacadeEndToEnd(t *testing.T) {
	cat := stdcelltune.NewCatalogue(stdcelltune.Typical)
	if got := len(cat.Lib.Cells); got != 304 {
		t.Fatalf("catalogue cells %d want 304", got)
	}
	stat, err := stdcelltune.Characterize(cat, 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	win, rep, err := stdcelltune.Tune(stat, stdcelltune.SigmaCeiling, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if win.Len() == 0 || len(rep.Pins) == 0 {
		t.Fatal("tuning produced nothing")
	}
	design, err := stdcelltune.NewMCUWith(rtlgen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := stdcelltune.Synthesize(design, cat, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Met {
		t.Fatal("baseline missed timing")
	}
	tuned, err := stdcelltune.Synthesize(design, cat, 6, win)
	if err != nil {
		t.Fatal(err)
	}
	if !tuned.Met {
		t.Fatalf("restricted synthesis missed timing (violations %d)", tuned.Violations())
	}
	bs, err := stdcelltune.AnalyzeVariation(base, stat)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := stdcelltune.AnalyzeVariation(tuned, stat)
	if err != nil {
		t.Fatal(err)
	}
	cmp := stdcelltune.Compare{
		BaselineSigma: bs.Design.Sigma, TunedSigma: ts.Design.Sigma,
		BaselineArea: base.Area(), TunedArea: tuned.Area(),
	}
	t.Logf("sigma %.4f -> %.4f (-%.0f%%), area %.0f -> %.0f (+%.1f%%)",
		bs.Design.Sigma, ts.Design.Sigma, 100*cmp.SigmaReduction(),
		base.Area(), tuned.Area(), 100*cmp.AreaIncrease())
	if ts.Design.Sigma >= bs.Design.Sigma {
		t.Errorf("tuning did not reduce design sigma: %g vs %g", ts.Design.Sigma, bs.Design.Sigma)
	}
}

func TestFacadeLibertyRoundTrip(t *testing.T) {
	cat := stdcelltune.NewCatalogue(stdcelltune.Fast)
	text, err := stdcelltune.WriteLiberty(cat.Lib)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "library (stc40_FF1P21V0C)") {
		t.Error("corner name missing from liberty output")
	}
	back, err := stdcelltune.ParseLiberty(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != 304 {
		t.Errorf("round trip lost cells: %d", len(back.Cells))
	}
}

func TestFacadeMethodsAndBounds(t *testing.T) {
	if len(stdcelltune.Methods) != 5 {
		t.Fatal("five methods expected")
	}
	for _, m := range stdcelltune.Methods {
		if len(stdcelltune.SweepBounds(m)) != 4 {
			t.Errorf("method %v sweep size", m)
		}
	}
}
