#!/bin/sh
# cluster_bench.sh — the scaling curve behind BENCH_PR9.json. Runs the
# same N-instance characterize four ways on localhost — single-node,
# then a coordinator with 1, 2 and 4 workers — and records the
# "characterize" span duration from each job's trace.
#
# The container CI runs on has one CPU, so raw compute cannot speed up
# by adding local workers: instance generation (~20ms/instance of
# library synthesis) and partial JSON stay serialized on the one core
# whichever process runs them. The benchmark therefore models the
# regime cluster mode exists for: characterization dominated by
# per-instance external-simulator latency, injected with
# -simcharlatency. Sleeps overlap across worker processes the same way
# remote SPICE calls overlap across real machines, so the curve
# measures exactly what the sharding tier buys — overlap of
# characterizer waits plus coordinator overhead — and is honest about
# what it does not measure (CPU-bound scaling needs more cores). The
# default 400ms/instance is sized so the wait dominates that serialized
# CPU work; on a multi-core host far smaller latencies show the same
# curve.
#
# Writes a stdcelltune-bench/1 JSON (default BENCH_PR9.json) and fails
# unless the 2-worker run beats single-node by at least MIN_SPEEDUP.
#
# Usage: scripts/cluster_bench.sh [workdir]
#   OUT=BENCH_PR9.json N=200 SIMLAT=400ms SHARDSIZE=50 MIN_SPEEDUP=1.8
set -eu

GO=${GO:-go}
DIR=${1:-$(mktemp -d /tmp/cluster-bench.XXXXXX)}
OUT=${OUT:-BENCH_PR9.json}
N=${N:-200}
SIMLAT=${SIMLAT:-400ms}
SHARDSIZE=${SHARDSIZE:-50}
MIN_SPEEDUP=${MIN_SPEEDUP:-1.8}
mkdir -p "$DIR"
SPEC="{\"design\":\"mcu-small\",\"instances\":$N,\"seed\":11,\"method\":\"sigma-ceiling\",\"bound\":0.02,\"clock_ns\":6}"

# Progress goes to stderr: run_case's stdout is captured for the
# measured duration, and a die inside a $(...) must still be seen.
say() { echo "cluster-bench: $*" >&2; }
die() { say "FAIL: $*"; exit 1; }

$GO build -o "$DIR/stcd" ./cmd/stcd
$GO build -o "$DIR/tracedur" ./cmd/tracedur

ALL_PIDS=""
trap 'for p in $ALL_PIDS; do kill "$p" 2>/dev/null || true; done' EXIT

# run_case <tag> <workers>: fresh daemon (and worker fleet when
# workers > 0), one cold job, echo the characterize span duration (ns).
run_case() {
    tag=$1
    nw=$2
    sub="$DIR/$tag"
    mkdir -p "$sub"
    pids=""
    if [ "$nw" -gt 0 ]; then
        # The lease TTL must exceed one shard's worth of simulated
        # latency (SHARDSIZE x SIMLAT) or every lease expires mid-fold
        # and the job spins on steals of its own unfinished shards.
        "$DIR/stcd" -addr 127.0.0.1:0 -addrfile "$sub/addr" -cachedir "$sub/cache" \
            -cluster -shardsize "$SHARDSIZE" -leasetimeout 2m -simcharlatency "$SIMLAT" >"$sub/stcd.log" 2>&1 &
    else
        "$DIR/stcd" -addr 127.0.0.1:0 -addrfile "$sub/addr" -cachedir "$sub/cache" \
            -simcharlatency "$SIMLAT" >"$sub/stcd.log" 2>&1 &
    fi
    pids="$!"
    ALL_PIDS="$ALL_PIDS $!"
    i=0
    while [ ! -s "$sub/addr" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && die "$tag: stcd did not write its address"
        sleep 0.1
    done
    base="http://$(tr -d '[:space:]' <"$sub/addr")"
    k=0
    while [ "$k" -lt "$nw" ]; do
        k=$((k + 1))
        "$DIR/stcd" -worker -join "$base" -name "$tag-w$k" -simcharlatency "$SIMLAT" \
            >"$sub/w$k.log" 2>&1 &
        pids="$pids $!"
        ALL_PIDS="$ALL_PIDS $!"
    done
    if [ "$nw" -gt 0 ]; then
        i=0
        while :; do
            w=$(curl -fsS "$base/v1/cluster" 2>/dev/null | sed -n 's/.*"workers": \([0-9]*\).*/\1/p') || w=
            [ "${w:-0}" -ge "$nw" ] && break
            i=$((i + 1))
            [ "$i" -gt 100 ] && die "$tag: workers did not register"
            sleep 0.1
        done
    fi
    id=$(curl -fsS -X POST -d "$SPEC" "$base/v1/jobs" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
    [ -n "$id" ] || die "$tag: no job id"
    i=0
    while :; do
        st=$(curl -fsS "$base/v1/jobs/$id" 2>/dev/null | sed -n 's/.*"status": "\([^"]*\)".*/\1/p') || st=
        [ "$st" = done ] && break
        case $st in failed | cancelled) die "$tag: job $st ($(tail -2 "$sub/stcd.log"))" ;; esac
        i=$((i + 1))
        [ "$i" -gt 3000 ] && die "$tag: job did not finish"
        sleep 0.1
    done
    curl -fsS "$base/v1/jobs/$id/trace" >"$sub/trace.json"
    dur=$("$DIR/tracedur" -trace "$sub/trace.json" -span characterize)
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    echo "$dur"
}

say "N=$N instances, $SIMLAT/instance simulated characterizer latency, shardsize $SHARDSIZE"
BASE_NS=$(run_case single 0)
say "single-node:     $BASE_NS ns"
W1_NS=$(run_case w1 1)
say "cluster 1w:      $W1_NS ns"
W2_NS=$(run_case w2 2)
say "cluster 2w:      $W2_NS ns"
W4_NS=$(run_case w4 4)
say "cluster 4w:      $W4_NS ns"

sp() { awk "BEGIN{printf \"%.2f\", $1 / $2}"; }
SP1=$(sp "$BASE_NS" "$W1_NS")
SP2=$(sp "$BASE_NS" "$W2_NS")
SP4=$(sp "$BASE_NS" "$W4_NS")
say "speedup vs single-node: 1w=${SP1}x 2w=${SP2}x 4w=${SP4}x"

cat >"$OUT" <<EOF
{
  "schema": "stdcelltune-bench/1",
  "note": "Sharded cluster characterization scaling (PR 9): one mcu-small characterize of N=$N Monte-Carlo instances with $SIMLAT/instance simulated external-characterizer latency (-simcharlatency), shard size $SHARDSIZE, coordinator and workers all on localhost. The CI container has a single CPU, so the benchmark is deliberately latency-bound: -simcharlatency stands in for the per-instance external simulator wait that dominates real characterization, and worker processes overlap those waits exactly as remote machines would, while the ~4s of per-run instance-generation CPU and the per-shard partial JSON stay serialized on the one core whichever process runs them (that serialized floor, not the scheduler, is what keeps the curve below ideal). Durations are the 'characterize' span from GET /v1/jobs/{id}/trace. CPU-bound scaling is not measured here and needs a multi-core host.",
  "benchmarks": {
    "ClusterCharacterizeN${N}W1": {
      "ns_per_op": $W1_NS,
      "bytes_per_op": 0,
      "allocs_per_op": 0,
      "baseline_ns_per_op": $BASE_NS,
      "speedup": $SP1
    },
    "ClusterCharacterizeN${N}W2": {
      "ns_per_op": $W2_NS,
      "bytes_per_op": 0,
      "allocs_per_op": 0,
      "baseline_ns_per_op": $BASE_NS,
      "speedup": $SP2
    },
    "ClusterCharacterizeN${N}W4": {
      "ns_per_op": $W4_NS,
      "bytes_per_op": 0,
      "allocs_per_op": 0,
      "baseline_ns_per_op": $BASE_NS,
      "speedup": $SP4
    }
  },
  "phases": [
    {"name": "characterize_single_node", "count": 1, "wall_ns": $BASE_NS, "allocs": 0, "bytes": 0},
    {"name": "characterize_cluster_1w", "count": 1, "wall_ns": $W1_NS, "allocs": 0, "bytes": 0},
    {"name": "characterize_cluster_2w", "count": 1, "wall_ns": $W2_NS, "allocs": 0, "bytes": 0},
    {"name": "characterize_cluster_4w", "count": 1, "wall_ns": $W4_NS, "allocs": 0, "bytes": 0}
  ]
}
EOF
say "wrote $OUT"

awk "BEGIN{exit !($SP2 >= $MIN_SPEEDUP)}" ||
    die "2-worker speedup ${SP2}x below required ${MIN_SPEEDUP}x"
say "OK: 2-worker speedup ${SP2}x >= ${MIN_SPEEDUP}x"
