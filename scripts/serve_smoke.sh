#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the tuning daemon, the assertion
# half being cmd/obscheck. Boots stcd on an ephemeral port, submits the
# scaled-down pipeline request twice, and proves the service contract:
#
#   1. the cold job completes with cache_outcome "miss";
#   2. the warm (identical) job completes with cache_outcome "hit";
#   3. both digests agree and every artifact's bytes hash identically
#      across cold and warm (byte-identity via the index's sha256s);
#   4. the job and artifact-index documents validate against their
#      versioned schemas (obscheck -apijob / -apiartifacts);
#   5. the daemon drains cleanly on SIGTERM.
#
# Usage: scripts/serve_smoke.sh [workdir]  (defaults to a fresh mktemp dir)
set -eu

GO=${GO:-go}
DIR=${1:-$(mktemp -d /tmp/serve-smoke.XXXXXX)}
mkdir -p "$DIR"
ADDRFILE="$DIR/addr"
LOG="$DIR/stcd.log"
SPEC='{"design":"mcu-small","instances":3,"seed":1,"method":"sigma-ceiling","bound":0.02,"clock_ns":6}'

say() { echo "serve-smoke: $*"; }
die() { say "FAIL: $*"; [ -f "$LOG" ] && sed 's/^/serve-smoke:   stcd: /' "$LOG" >&2; exit 1; }

$GO build -o "$DIR/stcd" ./cmd/stcd
$GO build -o "$DIR/obscheck" ./cmd/obscheck

"$DIR/stcd" -addr 127.0.0.1:0 -addrfile "$ADDRFILE" -cachedir "$DIR/cache" >"$LOG" 2>&1 &
STCD_PID=$!
trap 'kill "$STCD_PID" 2>/dev/null || true' EXIT

# Wait for the daemon to write its bound address.
i=0
while [ ! -s "$ADDRFILE" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "stcd did not write $ADDRFILE"
    kill -0 "$STCD_PID" 2>/dev/null || die "stcd exited early"
    sleep 0.1
done
BASE="http://$(cat "$ADDRFILE" | tr -d '[:space:]')"
say "stcd up at $BASE"

curl -fsS "$BASE/healthz" >"$DIR/healthz.json" || die "healthz unreachable"

# submit_and_wait <outfile>: POST the spec, poll until terminal, write
# the final job document to <outfile>, echo the job id.
submit_and_wait() {
    out=$1
    id=$(curl -fsS -X POST -d "$SPEC" "$BASE/v1/jobs" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
    [ -n "$id" ] || die "job submission returned no id"
    i=0
    while :; do
        curl -fsS "$BASE/v1/jobs/$id" >"$out"
        case $(sed -n 's/.*"status": "\([^"]*\)".*/\1/p' "$out") in
        done) break ;;
        failed | cancelled) die "job $id did not succeed: $(cat "$out")" ;;
        esac
        i=$((i + 1))
        [ "$i" -gt 600 ] && die "job $id did not finish"
        sleep 0.1
    done
    echo "$id"
}

COLD_ID=$(submit_and_wait "$DIR/job-cold.json")
say "cold job $COLD_ID done"
WARM_ID=$(submit_and_wait "$DIR/job-warm.json")
say "warm job $WARM_ID done"

outcome() { sed -n 's/.*"cache_outcome": "\([^"]*\)".*/\1/p' "$1"; }
digest() { sed -n 's/.*"digest": "\([^"]*\)".*/\1/p' "$1" | head -1; }

[ "$(outcome "$DIR/job-cold.json")" = "miss" ] || die "cold outcome $(outcome "$DIR/job-cold.json"), want miss"
[ "$(outcome "$DIR/job-warm.json")" = "hit" ] || die "warm outcome $(outcome "$DIR/job-warm.json"), want hit"
COLD_DIG=$(digest "$DIR/job-cold.json")
WARM_DIG=$(digest "$DIR/job-warm.json")
[ "$COLD_DIG" = "$WARM_DIG" ] || die "digests diverged: $COLD_DIG vs $WARM_DIG"

# The artifact index after the warm request still carries the cold
# run's content hashes: byte identity served from the cache. Fetch one
# artifact body and re-hash it as a spot check.
curl -fsS "$BASE/v1/artifacts/$COLD_DIG" >"$DIR/index.json"
curl -fsS "$BASE/v1/artifacts/$COLD_DIG/windows.json" >"$DIR/windows.json"
WANT_SHA=$(tr -d ' \n' <"$DIR/index.json" | sed -n 's/.*"name":"windows.json","sha256":"\([0-9a-f]*\)".*/\1/p')
GOT_SHA=$(sha256sum "$DIR/windows.json" | cut -d' ' -f1)
[ -n "$WANT_SHA" ] || die "windows.json missing from artifact index"
[ "$GOT_SHA" = "$WANT_SHA" ] || die "served windows.json hash $GOT_SHA != indexed $WANT_SHA"

# Schema validation: the assertion half.
"$DIR/obscheck" -apijob "$DIR/job-warm.json" -apiartifacts "$DIR/index.json" || die "obscheck rejected API documents"

# Graceful drain: SIGTERM must end the process cleanly (exit 0).
kill -TERM "$STCD_PID"
i=0
while kill -0 "$STCD_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "stcd did not exit after SIGTERM"
    sleep 0.1
done
trap - EXIT
wait "$STCD_PID" 2>/dev/null && :
RC=$?
[ "$RC" -eq 0 ] || die "stcd exited $RC after SIGTERM"
grep -q "drained cleanly" "$LOG" || die "no clean-drain log line"

say "OK (workdir $DIR)"
