#!/bin/sh
# query_smoke.sh — end-to-end smoke of the stdcelltune-api/2 surface
# and the library-as-a-database query layer. Boots stcd on an ephemeral
# port, runs one real pipeline job through /v2, and proves the query
# contract:
#
#   1. the finished job's library lists under /v2/libraries and serves
#      its artifact index (netlist.v included) under /v2;
#   2. a cold table query (group instances by family) answers 200 with
#      X-Query-Cache: miss;
#   3. the identical query repeated answers X-Query-Cache: hit with a
#      byte-identical body, and a whitespace/key-order/operator-case
#      variant of the document also hits (normalization reaches the
#      cache key);
#   4. a substitute what-if answers with exactly one full STA analysis
#      (the baseline; the change itself is incremental) and a positive
#      area delta;
#   5. failing routes answer the api/2 error envelope with the right
#      code slug;
#   6. docs/API.md and the served route table agree (obscheck -apispec);
#   7. the daemon drains cleanly on SIGTERM.
#
# Usage: scripts/query_smoke.sh [workdir]  (defaults to a fresh mktemp dir)
set -eu

GO=${GO:-go}
DIR=${1:-$(mktemp -d /tmp/query-smoke.XXXXXX)}
mkdir -p "$DIR"
ADDRFILE="$DIR/addr"
LOG="$DIR/stcd.log"
SPEC='{"design":"mcu-small","instances":3,"seed":1,"method":"sigma-ceiling","bound":0.02,"clock_ns":6}'

say() { echo "query-smoke: $*"; }
die() { say "FAIL: $*"; [ -f "$LOG" ] && sed 's/^/query-smoke:   stcd: /' "$LOG" >&2; exit 1; }

$GO build -o "$DIR/stcd" ./cmd/stcd
$GO build -o "$DIR/obscheck" ./cmd/obscheck

# The spec/route-table cross-check needs no daemon; fail fast.
"$DIR/obscheck" -apispec docs/API.md || die "docs/API.md out of sync with served routes"

"$DIR/stcd" -addr 127.0.0.1:0 -addrfile "$ADDRFILE" -cachedir "$DIR/cache" >"$LOG" 2>&1 &
STCD_PID=$!
trap 'kill "$STCD_PID" 2>/dev/null || true' EXIT

i=0
while [ ! -s "$ADDRFILE" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "stcd did not write $ADDRFILE"
    kill -0 "$STCD_PID" 2>/dev/null || die "stcd exited early"
    sleep 0.1
done
BASE="http://$(cat "$ADDRFILE" | tr -d '[:space:]')"
say "stcd up at $BASE"

# One real pipeline job through the v2 surface.
ID=$(curl -fsS -X POST -d "$SPEC" "$BASE/v2/jobs" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$ID" ] || die "v2 job submission returned no id"
i=0
while :; do
    curl -fsS "$BASE/v2/jobs/$ID" >"$DIR/job.json"
    case $(sed -n 's/.*"status": "\([^"]*\)".*/\1/p' "$DIR/job.json") in
    done) break ;;
    failed | cancelled) die "job $ID did not succeed: $(cat "$DIR/job.json")" ;;
    esac
    i=$((i + 1))
    [ "$i" -gt 600 ] && die "job $ID did not finish"
    sleep 0.1
done
DIG=$(sed -n 's/.*"digest": "\([^"]*\)".*/\1/p' "$DIR/job.json" | head -1)
say "job $ID done, library $DIG"

# The library lists under /v2 and its artifact set carries the netlist.
curl -fsS "$BASE/v2/libraries" | grep -q "$DIG" || die "library $DIG not listed under /v2/libraries"
curl -fsS "$BASE/v2/libraries/$DIG" >"$DIR/index.json"
grep -q '"netlist.v"' "$DIR/index.json" || die "artifact index lacks netlist.v"

# q <name> <body>: POST a query, keep headers and body apart.
q() {
    curl -fsS -D "$DIR/$1.hdr" -o "$DIR/$1.json" -X POST -d "$2" "$BASE/v2/libraries/$DIG/query"
}
cache_of() { tr -d '\r' <"$DIR/$1.hdr" | sed -n 's/^X-Query-Cache: //p'; }

GROUPQ='{"schema":"stdcelltune-query/1","from":"instances","group_by":["family"],"aggregate":[{"op":"count"},{"op":"sum","col":"area_um2"}]}'
q cold "$GROUPQ" || die "cold query failed"
[ "$(cache_of cold)" = "miss" ] || die "cold query cache verdict '$(cache_of cold)', want miss"
grep -q '"stdcelltune-query-result/1"' "$DIR/cold.json" || die "cold query result lacks schema"

q warm "$GROUPQ" || die "warm query failed"
[ "$(cache_of warm)" = "hit" ] || die "warm query cache verdict '$(cache_of warm)', want hit"
cmp -s "$DIR/cold.json" "$DIR/warm.json" || die "warm query body differs from cold"

# Same document, different surface syntax: key order, whitespace and
# operator case all normalize away before the cache key.
VARIANT='{
  "aggregate": [ {"op":"COUNT"}, {"col":"area_um2","op":"Sum"} ],
  "group_by":  ["family"],
  "from": "instances",
  "schema": "stdcelltune-query/1"
}'
q variant "$VARIANT" || die "variant query failed"
[ "$(cache_of variant)" = "hit" ] || die "variant query cache verdict '$(cache_of variant)', want hit"
cmp -s "$DIR/cold.json" "$DIR/variant.json" || die "normalized variant served different bytes"
say "table query ok: miss -> hit, byte-identical, normalization reaches the cache key"

# What-if substitution: answered by incremental reanalysis — the
# baseline is the only full analysis; upsizing OR2_1 -> OR2_2 must cost
# area.
q whatif '{"schema":"stdcelltune-query/1","what_if":{"op":"substitute","from":"OR2_1","to":"OR2_2"}}' || die "what-if failed"
[ "$(cache_of whatif)" = "miss" ] || die "what-if cache verdict '$(cache_of whatif)', want miss"
grep -q '"full_analyses": 1' "$DIR/whatif.json" || die "what-if did not report exactly one full analysis: $(cat "$DIR/whatif.json")"
AREA_DELTA=$(tr -d ' \n' <"$DIR/whatif.json" | sed -n 's/.*"delta":{"area_um2":\(-\{0,1\}[0-9.]*\).*/\1/p')
case $AREA_DELTA in
'' | -*) die "substitute OR2_1->OR2_2 area delta '$AREA_DELTA', want positive" ;;
esac
say "what-if ok: full_analyses=1, area delta +$AREA_DELTA um2"

# The api/2 error envelope, spot-checked on each failure class.
BADLIB=$(curl -sS -o /dev/null -w '%{http_code}' -X POST -d "$GROUPQ" "$BASE/v2/libraries/sha256:nope/query")
[ "$BADLIB" = "404" ] || die "query on absent library answered $BADLIB, want 404"
curl -sS -X POST -d "$GROUPQ" "$BASE/v2/libraries/sha256:nope/query" | grep -q '"code": "not_found"' || die "absent-library error lacks not_found code"
curl -sS -X POST -d '{"schema":"stdcelltune-query/1","from":"nonsense"}' "$BASE/v2/libraries/$DIG/query" | grep -q '"code": "bad_query"' || die "bad query lacks bad_query code"
curl -sS "$BASE/v2/jobs/nope" | grep -q '"request_id"' || die "v2 404 envelope lacks request_id"
say "error envelope ok"

# Graceful drain: SIGTERM must end the process cleanly (exit 0).
kill -TERM "$STCD_PID"
i=0
while kill -0 "$STCD_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "stcd did not exit after SIGTERM"
    sleep 0.1
done
trap - EXIT
wait "$STCD_PID" 2>/dev/null && :
RC=$?
[ "$RC" -eq 0 ] || die "stcd exited $RC after SIGTERM"

say "OK (workdir $DIR)"
