#!/bin/sh
# cluster_smoke.sh — end-to-end smoke of sharded cluster
# characterization, the assertion half being cmd/obscheck. Three phases
# against real stcd processes on ephemeral ports:
#
#   1. reference: a coordinator (-cluster) plus two workers run a
#      32-instance characterize; the job completes as a cache miss, the
#      shard stats balance (enqueued == completed, queue drained), the
#      retained shard set validates (obscheck -shard: fixed merge
#      order, tiling, counts summing to N), and the artifact hashes are
#      recorded as the reference;
#   2. chaos: a fresh coordinator with one worker; the worker is
#      SIGKILLed mid-shard, a second worker joins, and the job must
#      still complete with artifact hashes identical to phase 1 —
#      work stealing made the crash invisible to the result. Recovery
#      is asserted in the metrics: lease_expiries >= 1 and steals >= 1
#      on /v1/cluster and the shard_* series on /metrics;
#   3. peer tier: a third node with -peers pointing at the phase-2
#      coordinator resolves the same spec as cache_outcome "peer" with
#      identical hashes — no recomputation, SHA-256-verified fill.
#
# The second worker of phase 2 joins only after the kill so the lease
# holder's identity is deterministic: the victim provably dies holding
# a lease, and the survivor's first lease of that task is a steal.
#
# Usage: scripts/cluster_smoke.sh [workdir]  (defaults to a mktemp dir)
set -eu

GO=${GO:-go}
DIR=${1:-$(mktemp -d /tmp/cluster-smoke.XXXXXX)}
mkdir -p "$DIR"
SPEC='{"design":"mcu-small","instances":32,"seed":7,"method":"sigma-ceiling","bound":0.02,"clock_ns":6}'
SHARDSIZE=4
LEASE=2s

say() { echo "cluster-smoke: $*"; }
die() {
    say "FAIL: $*"
    for f in "$DIR"/*.log; do
        [ -f "$f" ] && tail -5 "$f" | sed "s|^|cluster-smoke:   $(basename "$f"): |" >&2
    done
    exit 1
}

$GO build -o "$DIR/stcd" ./cmd/stcd
$GO build -o "$DIR/obscheck" ./cmd/obscheck

PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done' EXIT

# start_node <tag> <extra flags...>: boot an stcd, wait for its bound
# address, and set $BASE. Every node gets its own cachedir.
start_node() {
    tag=$1
    shift
    "$DIR/stcd" -addr 127.0.0.1:0 -addrfile "$DIR/$tag.addr" -cachedir "$DIR/$tag.cache" \
        -log debug "$@" >"$DIR/$tag.log" 2>&1 &
    pid=$!
    PIDS="$PIDS $pid"
    i=0
    while [ ! -s "$DIR/$tag.addr" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && die "$tag did not write its address"
        kill -0 "$pid" 2>/dev/null || die "$tag exited early"
        sleep 0.1
    done
    BASE="http://$(tr -d '[:space:]' <"$DIR/$tag.addr")"
    eval "${tag}_PID=$pid"
    eval "${tag}_BASE=\$BASE"
    say "$tag up at $BASE (pid $pid)"
}

# start_worker <tag> <coordinator base> <per-instance latency>
start_worker() {
    "$DIR/stcd" -worker -join "$2" -name "$1" -simcharlatency "$3" >"$DIR/$1.log" 2>&1 &
    pid=$!
    PIDS="$PIDS $pid"
    eval "${1}_PID=$pid"
    say "worker $1 joined $2 (pid $pid)"
}

# stat <base> <json key>: one integer field from GET /v1/cluster.
stat() { curl -fsS "$1/v1/cluster" | sed -n "s/.*\"$2\": \([0-9-]*\).*/\1/p"; }

# wait_stat <base> <key> <min> <what>
wait_stat() {
    i=0
    while :; do
        v=$(stat "$1" "$2")
        [ -n "$v" ] && [ "$v" -ge "$3" ] && break
        i=$((i + 1))
        [ "$i" -gt 300 ] && die "$4 ($2=$v, want >= $3)"
        sleep 0.1
    done
}

# submit <base>: POST the spec, echo the job id.
submit() {
    id=$(curl -fsS -X POST -d "$SPEC" "$1/v1/jobs" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
    [ -n "$id" ] || die "job submission to $1 returned no id"
    echo "$id"
}

# await <base> <id> <outfile>: poll until terminal, keep the final doc.
await() {
    i=0
    while :; do
        curl -fsS "$1/v1/jobs/$2" >"$3"
        case $(sed -n 's/.*"status": "\([^"]*\)".*/\1/p' "$3") in
        done) return 0 ;;
        failed | cancelled) die "job $2 did not succeed: $(cat "$3")" ;;
        esac
        i=$((i + 1))
        [ "$i" -gt 600 ] && die "job $2 did not finish"
        sleep 0.1
    done
}

outcome() { sed -n 's/.*"cache_outcome": "\([^"]*\)".*/\1/p' "$1"; }
digest() { sed -n 's/.*"digest": "\([^"]*\)".*/\1/p' "$1" | head -1; }
# hashes <base> <digest>: sorted name:sha256 lines of the artifact set.
hashes() {
    curl -fsS "$1/v1/artifacts/$2" | tr -d ' \n' |
        grep -o '"name":"[^"]*","sha256":"[0-9a-f]*"' | sort
}

# --- Phase 1: reference fleet run -------------------------------------
say "phase 1: coordinator + 2 workers, reference run"
start_node n1 -cluster -shardsize "$SHARDSIZE" -leasetimeout "$LEASE"
start_worker w11 "$n1_BASE" 10ms
start_worker w12 "$n1_BASE" 10ms
wait_stat "$n1_BASE" workers 2 "workers did not register"

JOB1=$(submit "$n1_BASE")
await "$n1_BASE" "$JOB1" "$DIR/job1.json"
[ "$(outcome "$DIR/job1.json")" = "miss" ] || die "phase-1 outcome $(outcome "$DIR/job1.json"), want miss"
DIG=$(digest "$DIR/job1.json")
hashes "$n1_BASE" "$DIG" >"$DIR/ref.hashes"
[ -s "$DIR/ref.hashes" ] || die "no reference artifact hashes"
say "phase 1: job $JOB1 done, digest $DIG, $(wc -l <"$DIR/ref.hashes") artifacts"

ENQ=$(stat "$n1_BASE" tasks_enqueued)
DONE=$(stat "$n1_BASE" tasks_completed)
DEPTH=$(stat "$n1_BASE" queue_depth)
{ [ "$ENQ" -gt 0 ] && [ "$ENQ" = "$DONE" ] && [ "$DEPTH" = 0 ]; } ||
    die "phase-1 queue did not balance (enqueued=$ENQ completed=$DONE depth=$DEPTH)"

curl -fsS "$n1_BASE/v1/cluster/shards/$DIG" >"$DIR/shards1.json" || die "no retained shard set"
"$DIR/obscheck" -shard "$DIR/shards1.json" -apijob "$DIR/job1.json" || die "phase-1 documents invalid"
curl -fsS "$n1_BASE/healthz" | grep '"cluster"' >/dev/null || die "healthz has no cluster section"

kill "$w11_PID" "$w12_PID" "$n1_PID" 2>/dev/null || true

# --- Phase 2: SIGKILL a worker mid-shard ------------------------------
say "phase 2: kill a worker mid-characterize, prove stealing recovers it"
start_node n2 -cluster -shardsize "$SHARDSIZE" -leasetimeout "$LEASE"
start_worker w21 "$n2_BASE" 100ms # 400ms per shard: a wide kill window
wait_stat "$n2_BASE" workers 1 "victim worker did not register"

JOB2=$(submit "$n2_BASE")
wait_stat "$n2_BASE" leased 1 "victim never leased a shard"
kill -9 "$w21_PID"
say "phase 2: SIGKILLed w21 holding a lease"
start_worker w22 "$n2_BASE" 10ms

await "$n2_BASE" "$JOB2" "$DIR/job2.json"
[ "$(digest "$DIR/job2.json")" = "$DIG" ] || die "phase-2 digest $(digest "$DIR/job2.json") != $DIG"
hashes "$n2_BASE" "$DIG" >"$DIR/chaos.hashes"
cmp -s "$DIR/ref.hashes" "$DIR/chaos.hashes" ||
    die "artifact hashes diverged after worker kill: $(diff "$DIR/ref.hashes" "$DIR/chaos.hashes" || true)"

EXP=$(stat "$n2_BASE" lease_expiries)
STEALS=$(stat "$n2_BASE" steals)
[ "$EXP" -ge 1 ] || die "no lease expiry recorded after SIGKILL (lease_expiries=$EXP)"
[ "$STEALS" -ge 1 ] || die "no steal recorded after SIGKILL (steals=$STEALS)"
say "phase 2: recovered (lease_expiries=$EXP steals=$STEALS), hashes identical"

curl -fsS "$n2_BASE/v1/cluster/shards/$DIG" >"$DIR/shards2.json" || die "no retained shard set after chaos"
"$DIR/obscheck" -shard "$DIR/shards2.json" -apijob "$DIR/job2.json" || die "phase-2 documents invalid"
curl -fsS "$n2_BASE/metrics" >"$DIR/metrics2.prom"
grep -q '^shard_lease_expiries' "$DIR/metrics2.prom" || die "no shard_lease_expiries series on /metrics"
grep -q '^shard_steals' "$DIR/metrics2.prom" || die "no shard_steals series on /metrics"

# --- Phase 3: peer cache tier -----------------------------------------
say "phase 3: fresh node fills from the phase-2 peer"
start_node n3 -peers "$n2_BASE"
JOB3=$(submit "$n3_BASE")
await "$n3_BASE" "$JOB3" "$DIR/job3.json"
[ "$(outcome "$DIR/job3.json")" = "peer" ] || die "phase-3 outcome $(outcome "$DIR/job3.json"), want peer"
[ "$(digest "$DIR/job3.json")" = "$DIG" ] || die "phase-3 digest diverged"
hashes "$n3_BASE" "$DIG" >"$DIR/peer.hashes"
cmp -s "$DIR/ref.hashes" "$DIR/peer.hashes" || die "peer-filled artifact hashes diverged"
"$DIR/obscheck" -apijob "$DIR/job3.json" || die "phase-3 job document invalid"
curl -fsS "$n3_BASE/metrics" | grep '^cache_peer_hits' >/dev/null || die "no cache_peer_hits series on /metrics"
say "phase 3: peer fill verified, hashes identical"

say "OK (workdir $DIR)"
