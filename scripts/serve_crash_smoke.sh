#!/bin/sh
# serve_crash_smoke.sh — kill-9-and-recover end-to-end proof of the
# daemon's crash-safety contract. Three acts:
#
#   1. Reference: a clean daemon computes the spec once; its artifact
#      hashes are the ground truth.
#   2. Crash: a fresh daemon runs with the chaos harness armed
#      (-chaos journal.done.write=torn): the accepted record is fsynced,
#      the pipeline runs, the artifacts persist — and the process dies
#      with exit 137 mid-way through writing the job's terminal journal
#      record, leaving a torn tail. Deterministic, no race against an
#      external kill.
#   3. Recover: the same statedir/cachedir boot a chaos-free daemon. It
#      must truncate the torn tail, re-enqueue the journaled job under
#      its original id, serve it as a warm cache hit (no recompute), and
#      produce byte-identical artifacts to the reference run. Admission
#      control is spot-checked (429 + Retry-After past the rate limit),
#      the journal validates via obscheck -journal, and a clean SIGTERM
#      leaves a manifest recording jobs_recovered=1.
#
# Usage: scripts/serve_crash_smoke.sh [workdir]  (defaults to mktemp)
set -eu

GO=${GO:-go}
DIR=${1:-$(mktemp -d /tmp/crash-smoke.XXXXXX)}
mkdir -p "$DIR"
SPEC='{"design":"mcu-small","instances":3,"seed":1,"method":"sigma-ceiling","bound":0.02,"clock_ns":6}'

say() { echo "crash-smoke: $*"; }
die() {
    say "FAIL: $*"
    for f in "$DIR"/*.log; do [ -f "$f" ] && sed "s|^|crash-smoke:   $(basename "$f"): |" "$f" >&2; done
    exit 1
}

$GO build -o "$DIR/stcd" ./cmd/stcd
$GO build -o "$DIR/obscheck" ./cmd/obscheck

# wait_addr <addrfile> <pid>: block until the daemon writes its address.
wait_addr() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && die "stcd did not write $1"
        kill -0 "$2" 2>/dev/null || die "stcd (pid $2) exited before listening"
        sleep 0.1
    done
    echo "http://$(tr -d '[:space:]' <"$1")"
}

# wait_job <base> <id> <outfile>: poll until the job is terminal.
wait_job() {
    i=0
    while :; do
        curl -fsS "$1/v1/jobs/$2" >"$3" || die "GET /v1/jobs/$2 failed"
        case $(sed -n 's/.*"status": "\([^"]*\)".*/\1/p' "$3") in
        done) return 0 ;;
        failed | cancelled) die "job $2 did not succeed: $(cat "$3")" ;;
        esac
        i=$((i + 1))
        [ "$i" -gt 600 ] && die "job $2 did not finish"
        sleep 0.1
    done
}

outcome() { sed -n 's/.*"cache_outcome": "\([^"]*\)".*/\1/p' "$1"; }
digest() { sed -n 's/.*"digest": "\([^"]*\)".*/\1/p' "$1" | head -1; }
windows_sha() { tr -d ' \n' <"$1" | sed -n 's/.*"name":"windows.json","sha256":"\([0-9a-f]*\)".*/\1/p'; }

# --- Act 1: reference run, clean daemon, ground-truth bytes. ---
"$DIR/stcd" -addr 127.0.0.1:0 -addrfile "$DIR/ref.addr" \
    -cachedir "$DIR/refcache" -statedir "$DIR/refstate" >"$DIR/ref.log" 2>&1 &
REF_PID=$!
trap 'kill "$REF_PID" 2>/dev/null || true' EXIT
BASE=$(wait_addr "$DIR/ref.addr" "$REF_PID")
REF_ID=$(curl -fsS -X POST -d "$SPEC" "$BASE/v1/jobs" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$REF_ID" ] || die "reference submission returned no id"
wait_job "$BASE" "$REF_ID" "$DIR/ref-job.json"
REF_DIG=$(digest "$DIR/ref-job.json")
curl -fsS "$BASE/v1/artifacts/$REF_DIG" >"$DIR/ref-index.json"
REF_SHA=$(windows_sha "$DIR/ref-index.json")
[ -n "$REF_SHA" ] || die "reference run produced no windows.json hash"
kill -TERM "$REF_PID" && wait "$REF_PID" 2>/dev/null || true
say "reference run done: $REF_DIG windows.json=$REF_SHA"

# --- Act 2: the crash. Chaos tears the terminal journal write. ---
"$DIR/stcd" -addr 127.0.0.1:0 -addrfile "$DIR/crash.addr" \
    -cachedir "$DIR/cache" -statedir "$DIR/state" \
    -chaos 'journal.done.write=torn' -chaosseed 7 >"$DIR/crash.log" 2>&1 &
CRASH_PID=$!
trap 'kill "$CRASH_PID" 2>/dev/null || true' EXIT
BASE=$(wait_addr "$DIR/crash.addr" "$CRASH_PID")
JOB_ID=$(curl -fsS -X POST -d "$SPEC" "$BASE/v1/jobs" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$JOB_ID" ] || die "crash-run submission returned no id"
say "job $JOB_ID accepted (journaled); waiting for the armed crash"

i=0
while kill -0 "$CRASH_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 600 ] && die "chaos crash never fired"
    sleep 0.1
done
set +e
wait "$CRASH_PID" 2>/dev/null
CRASH_RC=$?
set -e
[ "$CRASH_RC" -eq 137 ] || die "crashed daemon exited $CRASH_RC, want 137"
[ -s "$DIR/state/jobs.wal" ] || die "no journal survived the crash"
say "daemon died with exit 137, journal left behind"

# The torn journal must still validate: warn on the tail, pass overall.
"$DIR/obscheck" -journal "$DIR/state/jobs.wal" || die "obscheck rejected the post-crash journal"

# --- Act 3: recovery. Same dirs, no chaos. ---
"$DIR/stcd" -addr 127.0.0.1:0 -addrfile "$DIR/rec.addr" \
    -cachedir "$DIR/cache" -statedir "$DIR/state" \
    -maxrps 1 -burst 1 >"$DIR/rec.log" 2>&1 &
REC_PID=$!
trap 'kill "$REC_PID" 2>/dev/null || true' EXIT
BASE=$(wait_addr "$DIR/rec.addr" "$REC_PID")

grep -q "recovered jobs re-enqueued" "$DIR/rec.log" || die "recovery daemon re-enqueued nothing"
curl -fsS "$BASE/healthz" >"$DIR/healthz.json"
grep -q '"recovered": 1' "$DIR/healthz.json" || die "healthz does not report 1 recovered job: $(cat "$DIR/healthz.json")"

# The recovered job keeps its original id and must finish as a warm
# cache hit: the artifacts persisted before the crash, so no recompute.
wait_job "$BASE" "$JOB_ID" "$DIR/rec-job.json"
[ "$(outcome "$DIR/rec-job.json")" = "hit" ] || die "recovered job outcome $(outcome "$DIR/rec-job.json"), want hit (warm replay)"
REC_DIG=$(digest "$DIR/rec-job.json")
[ "$REC_DIG" = "$REF_DIG" ] || die "recovered digest $REC_DIG != reference $REF_DIG"
curl -fsS "$BASE/v1/artifacts/$REC_DIG" >"$DIR/rec-index.json"
REC_SHA=$(windows_sha "$DIR/rec-index.json")
[ "$REC_SHA" = "$REF_SHA" ] || die "recovered windows.json hash $REC_SHA != reference $REF_SHA (bytes diverged across crash)"
say "job $JOB_ID recovered: warm hit, bytes identical to reference"

# Admission spot check: the second submission inside the same 1 rps
# budget is refused 429 with a Retry-After hint.
RATE_SPEC='{"design":"mcu-small","instances":3,"seed":2,"method":"sigma-ceiling","bound":0.02,"clock_ns":6}'
curl -fsS -X POST -d "$RATE_SPEC" "$BASE/v1/jobs" >/dev/null || die "first rate-budget submission refused"
HTTP_CODE=$(curl -s -o "$DIR/429.json" -w '%{http_code}' -D "$DIR/429.headers" -X POST -d "$RATE_SPEC" "$BASE/v1/jobs")
[ "$HTTP_CODE" = "429" ] || die "over-rate submission got $HTTP_CODE, want 429"
grep -qi '^retry-after:' "$DIR/429.headers" || die "429 carried no Retry-After header"
say "admission control live: 429 + Retry-After past the rate limit"

# Clean shutdown: drain, manifest beside the journal, valid final WAL.
kill -TERM "$REC_PID"
i=0
while kill -0 "$REC_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "recovery daemon did not exit after SIGTERM"
    sleep 0.1
done
trap - EXIT
wait "$REC_PID" 2>/dev/null && :
RC=$?
[ "$RC" -eq 0 ] || die "recovery daemon exited $RC after SIGTERM"
grep -q "drained cleanly" "$DIR/rec.log" || die "no clean-drain log line"
"$DIR/obscheck" -journal "$DIR/state/jobs.wal" || die "obscheck rejected the final journal"
[ -s "$DIR/state/stcd.manifest.json" ] || die "no shutdown manifest written"
grep -q '"jobs_recovered": 1' "$DIR/state/stcd.manifest.json" || die "manifest does not record jobs_recovered=1"
grep -q '"drain_clean": true' "$DIR/state/stcd.manifest.json" || die "manifest does not record a clean drain"

say "OK (workdir $DIR)"
