#!/bin/sh
# load_smoke.sh — serving-tier observability smoke, the assertion half
# being cmd/obscheck. Boots stcd on an ephemeral port, drives a small
# open-loop warm/cold mix through cmd/stcload, and proves:
#
#   1. the stdcelltune-load/1 report validates (obscheck -loadreport):
#      non-zero warm AND cold samples, accounting adds up, monotone
#      p50 <= p90 <= p99 <= p99.9 per class;
#   2. GET /metrics parses as Prometheus text format 0.0.4 and carries
#      the per-route RED series — request counters labeled by route
#      pattern ("POST /v1/jobs", "GET /v1/jobs/{id}"), latency
#      histograms with +Inf buckets, in-flight gauges
#      (obscheck -metrics);
#   3. the daemon still drains cleanly on SIGTERM after the burst.
#
# Usage: scripts/load_smoke.sh [workdir]  (defaults to a fresh mktemp dir)
set -eu

GO=${GO:-go}
DIR=${1:-$(mktemp -d /tmp/load-smoke.XXXXXX)}
mkdir -p "$DIR"
ADDRFILE="$DIR/addr"
LOG="$DIR/stcd.log"

say() { echo "load-smoke: $*"; }
die() { say "FAIL: $*"; [ -f "$LOG" ] && sed 's/^/load-smoke:   stcd: /' "$LOG" >&2; exit 1; }

$GO build -o "$DIR/stcd" ./cmd/stcd
$GO build -o "$DIR/stcload" ./cmd/stcload
$GO build -o "$DIR/obscheck" ./cmd/obscheck

"$DIR/stcd" -addr 127.0.0.1:0 -addrfile "$ADDRFILE" -workers 2 >"$LOG" 2>&1 &
STCD_PID=$!
trap 'kill "$STCD_PID" 2>/dev/null || true' EXIT

i=0
while [ ! -s "$ADDRFILE" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "stcd did not write $ADDRFILE"
    kill -0 "$STCD_PID" 2>/dev/null || die "stcd exited early"
    sleep 0.1
done
BASE="http://$(cat "$ADDRFILE" | tr -d '[:space:]')"
say "stcd up at $BASE"

# Small open-loop mix: ~20 requests at 4 rps, 30% unique-seed (cold)
# specs. The prime phase runs the warm spec to completion first, so
# warm requests are genuine content-addressed cache hits.
"$DIR/stcload" -target "$BASE" -rps 4 -duration 5s -coldfrac 0.3 \
    -out "$DIR/load.json" || die "stcload run failed"

"$DIR/obscheck" -loadreport "$DIR/load.json" || die "obscheck rejected the load report"

# Scrape the exposition after the burst and validate the RED series.
curl -fsS "$BASE/metrics" >"$DIR/metrics.prom" || die "GET /metrics unreachable"
"$DIR/obscheck" -metrics "$DIR/metrics.prom" || die "obscheck rejected /metrics"

# Graceful drain still works after load.
kill -TERM "$STCD_PID"
i=0
while kill -0 "$STCD_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "stcd did not exit after SIGTERM"
    sleep 0.1
done
trap - EXIT
wait "$STCD_PID" 2>/dev/null && :
RC=$?
[ "$RC" -eq 0 ] || die "stcd exited $RC after SIGTERM"
grep -q "drained cleanly" "$LOG" || die "no clean-drain log line"

say "OK (workdir $DIR)"
