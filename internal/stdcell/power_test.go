package stdcell

import (
	"testing"
	"testing/quick"
)

func TestInternalEnergyMonotone(t *testing.T) {
	c := catTT()
	for _, name := range []string{"INV_1", "ND2_4", "XNR2_8", "DFQ_2", "MUX2_6"} {
		s := c.Spec(name)
		axis := s.LoadAxis()
		for i := 1; i < len(axis); i++ {
			if s.InternalEnergy(axis[i], 0.064, Typical) <= s.InternalEnergy(axis[i-1], 0.064, Typical) {
				t.Errorf("%s: energy not increasing in load", name)
			}
		}
		for j := 1; j < len(SlewAxis); j++ {
			if s.InternalEnergy(axis[3], SlewAxis[j], Typical) <= s.InternalEnergy(axis[3], SlewAxis[j-1], Typical) {
				t.Errorf("%s: energy not increasing in slew (short-circuit)", name)
			}
		}
	}
}

func TestEnergyScalesWithVoltage(t *testing.T) {
	s := catTT().Spec("INV_4")
	eTyp := s.InternalEnergy(0.05, 0.064, Typical)
	eFast := s.InternalEnergy(0.05, 0.064, Fast)
	eSlow := s.InternalEnergy(0.05, 0.064, Slow)
	if !(eSlow < eTyp && eTyp < eFast) {
		t.Errorf("V^2 scaling broken: slow %g typ %g fast %g", eSlow, eTyp, eFast)
	}
}

func TestLeakageBehaviour(t *testing.T) {
	c := catTT()
	// Leakage grows with drive within a family.
	fam := c.Families["ND2"]
	for i := 1; i < len(fam); i++ {
		if fam[i].LeakagePower(Typical) <= fam[i-1].LeakagePower(Typical) {
			t.Errorf("ND2 leakage not increasing with drive at %s", fam[i].Name)
		}
	}
	// Fast corner leaks hardest, slow corner least.
	s := c.Spec("INV_8")
	if !(s.LeakagePower(Slow) < s.LeakagePower(Typical) && s.LeakagePower(Typical) < s.LeakagePower(Fast)) {
		t.Error("corner leakage ordering broken")
	}
	// Everything leaks at least a little.
	for _, spec := range c.Specs {
		if spec.LeakagePower(Typical) <= 0 {
			t.Fatalf("%s: non-positive leakage", spec.Name)
		}
	}
}

func TestPowerSigmaPelgrom(t *testing.T) {
	c := catTT()
	// Relative power sigma shrinks with drive strength.
	inv1, inv16 := c.Spec("INV_1"), c.Spec("INV_16")
	rel := func(s *Spec) float64 {
		l := s.MaxCap() / 4
		return s.PowerSigma(l, 0.064, Typical) / s.InternalEnergy(l, 0.064, Typical)
	}
	if rel(inv16) >= rel(inv1) {
		t.Errorf("relative power sigma: INV_16 %g not below INV_1 %g", rel(inv16), rel(inv1))
	}
	// Tie cells neither switch nor vary.
	tie := c.Spec("TIEH_1")
	if tie.InternalEnergy(0.01, 0.05, Typical) != 0 || tie.PowerSigma(0.01, 0.05, Typical) != 0 {
		t.Error("tie cell has switching power")
	}
}

// Property: power sigma is positive and well below the energy itself for
// every cell in the characterized window.
func TestPowerSigmaBoundedProperty(t *testing.T) {
	c := catTT()
	names := c.CellNames()
	f := func(ci uint16, lu, su uint8) bool {
		spec := c.Specs[names[int(ci)%len(names)]]
		if spec.Kind == KindTie {
			return true
		}
		axis := spec.LoadAxis()
		l := axis[0] + (axis[len(axis)-1]-axis[0])*float64(lu)/255
		s := SlewAxis[0] + (SlewAxis[len(SlewAxis)-1]-SlewAxis[0])*float64(su)/255
		e := spec.InternalEnergy(l, s, Typical)
		sg := spec.PowerSigma(l, s, Typical)
		return e > 0 && sg > 0 && sg < e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

func TestLibertyCarriesPower(t *testing.T) {
	c := catTT()
	cell := c.Lib.Cell("ND2_4")
	if cell.LeakagePower <= 0 {
		t.Error("liberty cell missing leakage")
	}
	y := cell.Pin("Y")
	if len(y.Power) != 2 { // arcs from A and B
		t.Fatalf("ND2_4 power arcs %d want 2", len(y.Power))
	}
	pa := y.PowerArc("A")
	if pa == nil || pa.RisePower == nil || pa.FallPower == nil {
		t.Fatal("power tables missing")
	}
	// Table matches the analytic model (with the rise skew).
	spec := c.Spec("ND2_4")
	want := spec.InternalEnergy(spec.LoadAxis()[2], SlewAxis[2], Typical) * 1.08
	got := pa.RisePower.Values[2][2]
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("rise power %g want %g", got, want)
	}
	if SupplyVoltage(Typical) != Typical.Voltage() {
		t.Error("SupplyVoltage helper broken")
	}
}
