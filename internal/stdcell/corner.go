package stdcell

import "fmt"

// Corner identifies a global process/voltage/temperature corner. The
// paper characterizes in the typical corner (TT, 1.1V, 25C) and validates
// on fast and slow corners in Section VII.C.
type Corner int

// Process corners.
const (
	Typical Corner = iota
	Fast
	Slow
)

// AllCorners lists the corners in fast-to-slow order as plotted in
// Fig. 15.
var AllCorners = []Corner{Fast, Typical, Slow}

// Name returns the foundry-style corner label, e.g. "TT1P1V25C".
func (c Corner) Name() string {
	switch c {
	case Fast:
		return "FF1P21V0C"
	case Slow:
		return "SS0P99V125C"
	default:
		return "TT1P1V25C"
	}
}

func (c Corner) String() string {
	switch c {
	case Fast:
		return "fast"
	case Slow:
		return "slow"
	default:
		return "typical"
	}
}

// DelayScale is the multiplicative factor the corner applies to every
// cell delay relative to typical. The paper's Section VII.C observation —
// mean and sigma scale by the same factor when moving corners — is built
// in: Sigma uses the same factor (validated experimentally in the
// pathmc package).
func (c Corner) DelayScale() float64 {
	switch c {
	case Fast:
		return 0.80
	case Slow:
		return 1.28
	default:
		return 1.0
	}
}

// Voltage returns the corner supply voltage in volts.
func (c Corner) Voltage() float64 {
	switch c {
	case Fast:
		return 1.21
	case Slow:
		return 0.99
	default:
		return 1.10
	}
}

// Temperature returns the corner temperature in Celsius.
func (c Corner) Temperature() float64 {
	switch c {
	case Fast:
		return 0
	case Slow:
		return 125
	default:
		return 25
	}
}

// ParseCorner converts a string (fast/typical/slow or a corner name) to a
// Corner.
func ParseCorner(s string) (Corner, error) {
	switch s {
	case "fast", "FF", Fast.Name():
		return Fast, nil
	case "typical", "TT", "typ", Typical.Name():
		return Typical, nil
	case "slow", "SS", Slow.Name():
		return Slow, nil
	}
	return Typical, fmt.Errorf("stdcell: unknown corner %q", s)
}
