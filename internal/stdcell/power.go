package stdcell

import "math"

// Power model. The paper's library file "also contains information about
// the power consumption of the cell for different transition stages"
// (Section II) and notes the tuning method "can also be adjusted to
// measure the influence of local variation on other properties, such as
// transition power" (Section III). This file provides that analytic
// model: internal (short-circuit + parasitic switching) energy per
// output transition, leakage, and the Pelgrom-style local-variation
// sigma of the internal energy.
//
// Units: energy pJ (pF times V^2), power nW, capacitance pF, time ns.

// powerParams returns the internal-energy and leakage coefficients of a
// spec, derived from its timing parameters: internal energy tracks the
// cell's parasitic capacitance (area) and grows with input slew
// (short-circuit current flows while the input traverses the threshold
// region); leakage tracks transistor width (drive strength and stack).
func (s *Spec) powerParams() (eBase, eSlew, eLoad, leakNW float64) {
	p := s.Params
	k := float64(s.Drive)
	v := Typical.Voltage()
	// Parasitic internal capacitance is proportional to the cell's own
	// input capacitance; every internal transition charges a fraction.
	cInt := 0.6 * p.CinPerDrive * k
	eBase = cInt * v * v
	// Short-circuit energy per ns of input slew, scaled by drive (wider
	// devices conduct more crowbar current).
	eSlew = 0.35 * p.CinPerDrive * k * v * v / 0.1
	// A small load-dependent internal component (driver crowbar under
	// slow output edges).
	eLoad = 0.05 * v * v
	// Leakage: ~2 nW per unit drive at the reference inverter, scaled by
	// transistor count via the area model.
	leakNW = 2.0 * k * (p.AreaBase/0.45 + p.AreaPerDrive/0.33 - 1)
	if leakNW < 0.5 {
		leakNW = 0.5
	}
	return eBase, eSlew, eLoad, leakNW
}

// InternalEnergy returns the internal energy (pJ) dissipated inside the
// cell per output transition at the given operating point. The load
// switching energy (0.5*C*V^2) is accounted separately by the power
// analyzer since it belongs to the net.
func (s *Spec) InternalEnergy(load, slew float64, corner Corner) float64 {
	if s.Kind == KindTie {
		return 0
	}
	eBase, eSlew, eLoad, _ := s.powerParams()
	// Fast corners run at higher voltage: energy scales with V^2
	// relative to typical.
	vr := corner.Voltage() / Typical.Voltage()
	return (eBase + eSlew*slew + eLoad*load) * vr * vr
}

// LeakagePower returns the cell's static leakage in nW. Leakage grows
// steeply toward the fast corner (low Vth, high temperature sensitivity
// folded into the corner factor).
func (s *Spec) LeakagePower(corner Corner) float64 {
	_, _, _, leak := s.powerParams()
	switch corner {
	case Fast:
		return leak * 3.2
	case Slow:
		return leak * 0.45
	default:
		return leak
	}
}

// PowerSigma returns the local-variation standard deviation of the
// internal energy (pJ) at an operating point. Like delay, transition
// power mismatch follows Pelgrom: relative sigma shrinks with device
// area (drive strength).
func (s *Spec) PowerSigma(load, slew float64, corner Corner) float64 {
	if s.Kind == KindTie {
		return 0
	}
	k := float64(s.Drive)
	e := s.InternalEnergy(load, slew, corner)
	// Energy mismatch is gentler than delay mismatch (charge averages
	// over the whole transition): 60% of the delay mismatch coefficient.
	return 0.6 * s.Params.Mismatch / math.Sqrt(k) * e
}

// SupplyVoltage returns the nominal supply of the corner — convenience
// for power reports.
func SupplyVoltage(corner Corner) float64 { return corner.Voltage() }
