// Package stdcell generates the synthetic 40nm-class standard cell
// library the reproduction characterizes and tunes. The catalogue matches
// the paper's appendix inventory exactly — 304 cells: 19 inverters, 36
// OR, 46 NAND, 43 NOR, 29 XNOR, 34 adders, 27 multiplexers, 51
// flip-flops, 12 latches and 7 other cells — across realistic drive
// strength ladders.
//
// Timing follows an analytic logical-effort-style NLDM model: the delay
// of an arc grows linearly in output load with slope R/k (k = drive
// strength), carries a parasitic term and an input-slew term, and the
// local-variation sigma follows Pelgrom's law — sigma scales with
// delay/sqrt(k), so large cells both vary less and have flatter sigma
// surfaces, reproducing Figs. 4 and 5 of the paper.
package stdcell

// Kind classifies the logic function of a cell family.
type Kind int

// Cell function kinds.
const (
	KindInv Kind = iota
	KindBuf
	KindOr
	KindNand
	KindNor
	KindXnor
	KindAddFull  // full adder: S, CO
	KindAddHalf  // half adder: S, CO
	KindAddCarry // full adder with inverted carry: S, CON
	KindMux
	KindDFF
	KindLatch
	KindTie
)

func (k Kind) String() string {
	switch k {
	case KindInv:
		return "inv"
	case KindBuf:
		return "buf"
	case KindOr:
		return "or"
	case KindNand:
		return "nand"
	case KindNor:
		return "nor"
	case KindXnor:
		return "xnor"
	case KindAddFull:
		return "addf"
	case KindAddHalf:
		return "addh"
	case KindAddCarry:
		return "addc"
	case KindMux:
		return "mux"
	case KindDFF:
		return "dff"
	case KindLatch:
		return "latch"
	case KindTie:
		return "tie"
	}
	return "unknown"
}

// ModelParams are the analytic NLDM coefficients of one cell family.
// Units: time ns, capacitance pF, area um^2.
type ModelParams struct {
	// Parasitic (intrinsic) delay at zero load and zero slew, ns.
	Parasitic float64
	// Effective drive resistance at drive strength 1, ns/pF. Per-cell
	// resistance is Resistance/k.
	Resistance float64
	// Delay added per ns of input slew (slew sensitivity).
	SlewCoeff float64
	// Slew-load interaction coefficient: extra delay per (ns * pF/k).
	Interact float64
	// Output transition: base transition ns and ns/pF slope at drive 1.
	TransBase  float64
	TransSlope float64
	// Fraction of the input slew that feeds through to the output slew.
	TransFeed float64
	// Pelgrom mismatch coefficient: sigma = Mismatch/sqrt(k) * delay-ish
	// operating-point factor (see Sigma in nldm.go).
	Mismatch float64
	// Input pin capacitance per unit drive strength, pF (logical effort:
	// stacked inputs present more capacitance).
	CinPerDrive float64
	// Maximum output load per unit drive strength, pF.
	CmaxPerDrive float64
	// Area model: AreaBase + AreaPerDrive*k, um^2.
	AreaBase     float64
	AreaPerDrive float64
	// Setup/hold for sequential cells (ns at nominal slews); zero for
	// combinational families.
	Setup float64
	Hold  float64
}

// famParams returns the model parameters of a family, derived from the
// inverter reference scaled by the family's logical effort and stack
// penalty. nIn is the number of (data) inputs of the family.
func famParams(kind Kind, nIn int) ModelParams {
	// Reference inverter, calibrated for a ~25ps FO4 at drive 1.
	p := ModelParams{
		Parasitic:    0.010,
		Resistance:   3.0,
		SlewCoeff:    0.085,
		Interact:     0.55,
		TransBase:    0.012,
		TransSlope:   4.2,
		TransFeed:    0.10,
		Mismatch:     0.075,
		CinPerDrive:  0.0012,
		CmaxPerDrive: 0.040,
		AreaBase:     0.45,
		AreaPerDrive: 0.33,
	}
	// Logical effort g and parasitic growth per family. NOR stacks PMOS
	// so it is slower and more mismatch-prone than NAND of equal fanin.
	var effort, parX, mmX, areaX float64
	switch kind {
	case KindInv:
		effort, parX, mmX, areaX = 1.0, 1.0, 1.0, 1.0
	case KindBuf:
		effort, parX, mmX, areaX = 1.1, 2.2, 0.8, 1.7
	case KindNand:
		effort = 1.0 + 0.25*float64(nIn)
		parX = 0.9 + 0.45*float64(nIn)
		mmX = 1.0 + 0.18*float64(nIn)
		areaX = 0.8 + 0.55*float64(nIn)
	case KindNor:
		effort = 1.0 + 0.45*float64(nIn)
		parX = 0.9 + 0.55*float64(nIn)
		mmX = 1.0 + 0.26*float64(nIn)
		areaX = 0.8 + 0.6*float64(nIn)
	case KindOr: // NOR + output inverter
		effort = 1.1 + 0.4*float64(nIn)
		parX = 1.6 + 0.55*float64(nIn)
		mmX = 1.05 + 0.2*float64(nIn)
		areaX = 1.2 + 0.6*float64(nIn)
	case KindXnor:
		effort = 1.5 + 0.5*float64(nIn)
		parX = 1.2 + 0.6*float64(nIn)
		mmX = 1.3 + 0.3*float64(nIn)
		areaX = 1.6 + 1.0*float64(nIn)
	case KindAddFull:
		effort, parX, mmX, areaX = 2.6, 2.8, 1.9, 5.2
	case KindAddHalf:
		effort, parX, mmX, areaX = 2.2, 2.1, 1.6, 3.6
	case KindAddCarry:
		effort, parX, mmX, areaX = 2.5, 2.7, 1.85, 5.0
	case KindMux:
		effort = 1.5 + 0.25*float64(nIn)
		parX = 1.5 + 0.35*float64(nIn)
		mmX = 1.3 + 0.12*float64(nIn)
		areaX = 1.8 + 0.8*float64(nIn)
	case KindDFF:
		effort, parX, mmX, areaX = 1.8, 5.0, 1.5, 7.5
		p.Setup = 0.045
		p.Hold = 0.004
	case KindLatch:
		effort, parX, mmX, areaX = 1.6, 4.0, 1.4, 4.5
		p.Setup = 0.030
		p.Hold = 0.006
	case KindTie:
		effort, parX, mmX, areaX = 1, 1, 1, 1.2
	}
	p.Resistance *= effort
	p.TransSlope *= effort
	p.Parasitic *= parX
	p.TransBase *= parX
	p.Mismatch *= mmX
	p.CinPerDrive *= 0.9 + 0.25*effort
	// Heavily-stacked cells cannot drive as much load per unit drive.
	p.CmaxPerDrive /= 0.8 + 0.2*effort
	p.AreaBase *= areaX
	p.AreaPerDrive *= 0.7 + 0.3*areaX
	return p
}
