package stdcell

import (
	"sync"

	"stdcelltune/internal/liberty"
)

// arcCache resolves, once per spec, the Liberty timing arcs the timing
// engines evaluate: per output pin of the spec, one arc slot per data
// input (or a single clock-arc slot for sequential cells), in the
// spec's pin order. Specs are immutable after catalogue construction
// and the catalogue's Liberty view never changes, so the resolution is
// computed once and shared — including across concurrently running
// engines, which is why the map is lock-protected.
type arcCache struct {
	mu sync.RWMutex
	m  map[*Spec][][]*liberty.TimingArc
}

// TimingArcs returns the resolved timing arcs of the spec, indexed
// [output pin][input slot]. Combinational specs have one slot per entry
// of spec.Inputs (nil where the library has no such arc); sequential
// specs have a single clock-arc slot. The returned slices are shared
// and must be treated as read-only.
func (c *Catalogue) TimingArcs(spec *Spec) [][]*liberty.TimingArc {
	c.arcs.mu.RLock()
	arcs, ok := c.arcs.m[spec]
	c.arcs.mu.RUnlock()
	if ok {
		return arcs
	}
	arcs = c.resolveArcs(spec)
	c.arcs.mu.Lock()
	if c.arcs.m == nil {
		c.arcs.m = make(map[*Spec][][]*liberty.TimingArc)
	}
	// A racing resolver computed the identical value; either wins.
	if prior, ok := c.arcs.m[spec]; ok {
		arcs = prior
	} else {
		c.arcs.m[spec] = arcs
	}
	c.arcs.mu.Unlock()
	return arcs
}

func (c *Catalogue) resolveArcs(spec *Spec) [][]*liberty.TimingArc {
	arcIn := func(p *liberty.Pin, related string) *liberty.TimingArc {
		if p == nil {
			return nil
		}
		for _, a := range p.Timing {
			if a.RelatedPin == related {
				return a
			}
		}
		return nil
	}
	cell := c.Lib.Cell(spec.Name)
	out := make([][]*liberty.TimingArc, len(spec.Outputs))
	for pi, outPin := range spec.Outputs {
		var lp *liberty.Pin
		if cell != nil {
			lp = cell.Pin(outPin)
		}
		if spec.IsSequential() {
			out[pi] = []*liberty.TimingArc{arcIn(lp, spec.Clock)}
			continue
		}
		slots := make([]*liberty.TimingArc, len(spec.Inputs))
		for i, in := range spec.Inputs {
			slots[i] = arcIn(lp, in)
		}
		out[pi] = slots
	}
	return out
}
