package stdcell

import (
	"math"
	"testing"
	"testing/quick"

	"stdcelltune/internal/liberty"
)

func catTT() *Catalogue { return NewCatalogue(Typical) }

// TestInventoryMatchesPaperAppendix pins the catalogue to the paper's
// Appendix VIII.A: 304 cells in the exact category counts.
func TestInventoryMatchesPaperAppendix(t *testing.T) {
	c := catTT()
	if got := len(c.Specs); got != 304 {
		t.Fatalf("total cells %d want 304", got)
	}
	count := func(fams ...string) int {
		n := 0
		for _, f := range fams {
			n += len(c.Families[f])
		}
		return n
	}
	cases := []struct {
		label string
		fams  []string
		want  int
	}{
		{"inverters", []string{"INV"}, 19},
		{"or", []string{"OR2", "OR3", "OR4"}, 36},
		{"nand", []string{"ND2", "ND3", "ND4", "ND2B"}, 46},
		{"nor", []string{"NR2", "NR3", "NR4", "NR2B"}, 43},
		{"xnor", []string{"XNR2", "XNR3"}, 29},
		{"adders", []string{"ADDF", "ADDH", "ADDC"}, 34},
		{"muxes", []string{"MUX2", "MUX4"}, 27},
		{"flip-flops", []string{"DFQ", "DFQN", "DFRQ", "DFSQ", "DFRSQ"}, 51},
		{"latches", []string{"LATQ", "LATRQ"}, 12},
		{"other", []string{"BUF", "TIEH", "TIEL"}, 7},
	}
	total := 0
	for _, cs := range cases {
		got := count(cs.fams...)
		if got != cs.want {
			t.Errorf("%s: %d cells want %d", cs.label, got, cs.want)
		}
		total += got
	}
	if total != 304 {
		t.Errorf("category total %d want 304", total)
	}
}

// TestPaperNamedCellsExist checks the specific cells the paper calls out:
// INV_1 and INV_32 (Fig. 4), NR4_6 and the drive-6 cluster (Fig. 5),
// NR2B_1/2/3 (Section VII.A).
func TestPaperNamedCellsExist(t *testing.T) {
	c := catTT()
	for _, name := range []string{"INV_1", "INV_32", "NR4_6", "NR2B_1", "NR2B_2", "NR2B_3"} {
		if c.Spec(name) == nil {
			t.Errorf("cell %s missing", name)
		}
	}
	if len(c.ByDrive[6]) < 10 {
		t.Errorf("drive-6 cluster has only %d cells", len(c.ByDrive[6]))
	}
}

func TestLibertyModelValid(t *testing.T) {
	c := catTT()
	if err := c.Lib.Validate(); err != nil {
		t.Fatalf("generated library invalid: %v", err)
	}
	if got := len(c.Lib.Cells); got != 304 {
		t.Errorf("liberty cells %d want 304", got)
	}
}

func TestLibertyRoundTrip(t *testing.T) {
	c := catTT()
	s, err := liberty.WriteString(c.Lib)
	if err != nil {
		t.Fatal(err)
	}
	got, err := liberty.Parse(s)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(got.Cells) != len(c.Lib.Cells) {
		t.Fatalf("round-trip cell count %d want %d", len(got.Cells), len(c.Lib.Cells))
	}
	inv := got.Cell("INV_4")
	if inv == nil {
		t.Fatal("INV_4 lost in round trip")
	}
	arc := inv.Pin("Y").Timing[0]
	spec := c.Spec("INV_4")
	wantRise := spec.Delay(spec.LoadAxis()[3], SlewAxis[3], Typical) * (1 + riseFallSkew)
	if got := arc.CellRise.Values[3][3]; math.Abs(got-wantRise) > 1e-9 {
		t.Errorf("cell_rise[3][3]=%g want %g", got, wantRise)
	}
}

func TestDelayMonotoneInLoadAndSlew(t *testing.T) {
	c := catTT()
	for _, name := range []string{"INV_1", "INV_32", "ND2_4", "NR4_6", "XNR2_2", "ADDF_8", "MUX2_16", "DFQ_1"} {
		s := c.Spec(name)
		axis := s.LoadAxis()
		for li := 1; li < len(axis); li++ {
			if s.Delay(axis[li], 0.1, Typical) <= s.Delay(axis[li-1], 0.1, Typical) {
				t.Errorf("%s: delay not increasing in load", name)
			}
			if s.Sigma(axis[li], 0.1, Typical) <= s.Sigma(axis[li-1], 0.1, Typical) {
				t.Errorf("%s: sigma not increasing in load", name)
			}
		}
		for si := 1; si < len(SlewAxis); si++ {
			if s.Delay(axis[3], SlewAxis[si], Typical) <= s.Delay(axis[3], SlewAxis[si-1], Typical) {
				t.Errorf("%s: delay not increasing in slew", name)
			}
			if s.Sigma(axis[3], SlewAxis[si], Typical) <= s.Sigma(axis[3], SlewAxis[si-1], Typical) {
				t.Errorf("%s: sigma not increasing in slew", name)
			}
		}
	}
}

// TestSigmaFallsWithDriveStrength reproduces the Fig. 4 observation: at
// the same relative operating point, higher drive cells have lower sigma
// and a flatter load gradient.
func TestSigmaFallsWithDriveStrength(t *testing.T) {
	c := catTT()
	fam := c.Families["INV"]
	for i := 1; i < len(fam); i++ {
		lo, hi := fam[i-1], fam[i]
		// Same relative point: half of max load, mid slew.
		sLo := lo.Sigma(lo.MaxCap()/2, 0.064, Typical)
		sHi := hi.Sigma(hi.MaxCap()/2, 0.064, Typical)
		if sHi >= sLo {
			t.Errorf("sigma(%s)=%g not below sigma(%s)=%g", hi.Name, sHi, lo.Name, sLo)
		}
		// Absolute load gradient must flatten with drive.
		gLo := lo.Sigma(0.01, 0.064, Typical) - lo.Sigma(0.005, 0.064, Typical)
		gHi := hi.Sigma(0.01, 0.064, Typical) - hi.Sigma(0.005, 0.064, Typical)
		if gHi >= gLo {
			t.Errorf("gradient(%s)=%g not below gradient(%s)=%g", hi.Name, gHi, lo.Name, gLo)
		}
	}
}

// TestLoadRangeGrowsWithDrive checks the Fig. 4 structure: low drive
// cells have smaller load ranges; the slew axis is shared.
func TestLoadRangeGrowsWithDrive(t *testing.T) {
	c := catTT()
	inv1, inv32 := c.Spec("INV_1"), c.Spec("INV_32")
	a1, a32 := inv1.LoadAxis(), inv32.LoadAxis()
	if a1[len(a1)-1] >= a32[len(a32)-1] {
		t.Error("INV_32 load range should exceed INV_1")
	}
	if a1[len(a1)-1] != inv1.MaxCap() {
		t.Error("load axis must end at MaxCap")
	}
	for i := 1; i < len(a1); i++ {
		if a1[i] <= a1[i-1] {
			t.Error("load axis not ascending")
		}
	}
}

func TestAreaGrowsWithDrive(t *testing.T) {
	c := catTT()
	for fam, specs := range c.Families {
		for i := 1; i < len(specs); i++ {
			if specs[i].Area() <= specs[i-1].Area() {
				t.Errorf("%s: area not increasing with drive", fam)
			}
		}
		if specs[0].Area() <= 0 {
			t.Errorf("%s: non-positive area", fam)
		}
	}
}

func TestCornerScaling(t *testing.T) {
	c := catTT()
	s := c.Spec("ND2_4")
	l, sl := s.MaxCap()/4, 0.064
	dTyp := s.Delay(l, sl, Typical)
	dFast := s.Delay(l, sl, Fast)
	dSlow := s.Delay(l, sl, Slow)
	if !(dFast < dTyp && dTyp < dSlow) {
		t.Errorf("corner ordering broken: fast=%g typ=%g slow=%g", dFast, dTyp, dSlow)
	}
	// Mean and sigma must scale by the same factor (paper Section VII.C).
	ratioD := dSlow / dTyp
	ratioS := s.Sigma(l, sl, Slow) / s.Sigma(l, sl, Typical)
	if math.Abs(ratioD-ratioS) > 1e-9 {
		t.Errorf("delay ratio %g != sigma ratio %g across corners", ratioD, ratioS)
	}
}

func TestSequentialCells(t *testing.T) {
	c := catTT()
	ff := c.Spec("DFQ_2")
	if !ff.IsSequential() {
		t.Fatal("DFQ_2 not sequential")
	}
	if ff.SetupTime(Typical) <= 0 || ff.HoldTime(Typical) <= 0 {
		t.Error("FF must have positive setup/hold")
	}
	if c.Spec("ND2_1").SetupTime(Typical) != 0 {
		t.Error("combinational cell must have zero setup")
	}
	// Liberty cell must carry the constraint arcs on D.
	lc := c.Lib.Cell("DFQ_2")
	d := lc.Pin("D")
	if len(d.Timing) != 2 {
		t.Fatalf("DFQ_2 D pin has %d constraint arcs, want 2", len(d.Timing))
	}
	for _, a := range d.Timing {
		if !a.IsConstraint() {
			t.Errorf("non-constraint arc %q on D pin", a.Type)
		}
	}
	// Q delay arc comes from CK.
	q := lc.Pin("Q")
	if len(q.Timing) != 1 || q.Timing[0].RelatedPin != "CK" {
		t.Fatalf("DFQ_2 Q arcs: %+v", q.Timing)
	}
	if q.Timing[0].Type != "rising_edge" {
		t.Errorf("CK->Q arc type %q", q.Timing[0].Type)
	}
}

func TestTieCellsHaveNoArcs(t *testing.T) {
	c := catTT()
	for _, name := range []string{"TIEH_1", "TIEL_1"} {
		lc := c.Lib.Cell(name)
		if lc == nil {
			t.Fatalf("%s missing", name)
		}
		if n := len(lc.Pin("Y").Timing); n != 0 {
			t.Errorf("%s has %d arcs, want 0", name, n)
		}
	}
}

func TestMultiOutputAdder(t *testing.T) {
	c := catTT()
	addf := c.Lib.Cell("ADDF_4")
	outs := addf.OutputPins()
	if len(outs) != 2 {
		t.Fatalf("ADDF_4 has %d outputs want 2 (S, CO)", len(outs))
	}
	for _, o := range outs {
		if len(o.Timing) != 3 {
			t.Errorf("ADDF_4 pin %s has %d arcs want 3 (A,B,CI)", o.Name, len(o.Timing))
		}
	}
}

func TestFamilyOfAndSizes(t *testing.T) {
	if FamilyOf("NR2B_16") != "NR2B" {
		t.Error("FamilyOf broken")
	}
	if FamilyOf("plain") != "plain" {
		t.Error("FamilyOf without underscore")
	}
	c := catTT()
	sizes := c.SizesOf("INV_4")
	if len(sizes) != 19 {
		t.Fatalf("INV sizes %d want 19", len(sizes))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i].Drive <= sizes[i-1].Drive {
			t.Error("sizes not sorted by drive")
		}
	}
}

func TestCornerParsing(t *testing.T) {
	for _, s := range []string{"fast", "typical", "slow", "TT", "FF", "SS", Fast.Name()} {
		if _, err := ParseCorner(s); err != nil {
			t.Errorf("ParseCorner(%q): %v", s, err)
		}
	}
	if _, err := ParseCorner("nope"); err == nil {
		t.Error("bad corner accepted")
	}
	if Fast.DelayScale() >= 1 || Slow.DelayScale() <= 1 || Typical.DelayScale() != 1 {
		t.Error("corner scales inconsistent")
	}
	for _, c := range AllCorners {
		if c.Name() == "" || c.String() == "" {
			t.Error("corner naming broken")
		}
		if c.Voltage() <= 0 {
			t.Error("corner voltage broken")
		}
	}
	if Fast.Temperature() >= Slow.Temperature() {
		t.Error("corner temperatures inverted")
	}
}

// Property: for every cell, sigma is strictly positive and below the
// delay itself anywhere in the characterized window.
func TestSigmaBoundedByDelayProperty(t *testing.T) {
	c := catTT()
	names := c.CellNames()
	f := func(ci uint16, lu, su uint8) bool {
		spec := c.Specs[names[int(ci)%len(names)]]
		if spec.Kind == KindTie {
			return true
		}
		axis := spec.LoadAxis()
		l := axis[0] + (axis[len(axis)-1]-axis[0])*float64(lu)/255
		s := SlewAxis[0] + (SlewAxis[len(SlewAxis)-1]-SlewAxis[0])*float64(su)/255
		sig := spec.Sigma(l, s, Typical)
		d := spec.Delay(l, s, Typical)
		return sig > 0 && sig < d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildLibraryWithPerturbation(t *testing.T) {
	c := catTT()
	bump := func(s *Spec, load, slew float64) float64 { return 0.001 }
	lib := c.BuildLibrary("mc_001", bump)
	if lib.Name != "mc_001" {
		t.Errorf("library name %q", lib.Name)
	}
	nom := c.Lib.Cell("INV_2").Pin("Y").Timing[0].CellRise
	per := lib.Cell("INV_2").Pin("Y").Timing[0].CellRise
	wantDiff := 0.001 * (1 + riseFallSkew)
	if d := per.Values[0][0] - nom.Values[0][0]; math.Abs(d-wantDiff) > 1e-12 {
		t.Errorf("perturbation delta %g want %g", d, wantDiff)
	}
	if err := lib.Validate(); err != nil {
		t.Fatalf("perturbed library invalid: %v", err)
	}
}

func TestSpecAllPins(t *testing.T) {
	c := catTT()
	pins := c.Spec("DFRSQ_4").AllPins()
	want := map[string]bool{"D": true, "CK": true, "RN": true, "SN": true, "Q": true}
	if len(pins) != len(want) {
		t.Fatalf("pins %v", pins)
	}
	for _, p := range pins {
		if !want[p] {
			t.Errorf("unexpected pin %s", p)
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindInv, KindBuf, KindOr, KindNand, KindNor, KindXnor,
		KindAddFull, KindAddHalf, KindAddCarry, KindMux, KindDFF, KindLatch, KindTie}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("Kind %d string %q", k, s)
		}
		seen[s] = true
	}
	if Kind(99).String() != "unknown" {
		t.Error("out-of-range kind")
	}
}

func TestClockCapBelowInputCap(t *testing.T) {
	s := catTT().Spec("DFQ_8")
	if s.ClockCap() >= s.InputCap() {
		t.Error("clock pin should be lighter than data pin")
	}
}
