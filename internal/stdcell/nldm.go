package stdcell

import (
	"math"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/lut"
)

// SlewAxis is the library-wide input transition axis in ns. The paper
// notes the slew range is identical for all cells (Fig. 4): from steep to
// shallow with an adequate number of slopes in between.
var SlewAxis = []float64{0.008, 0.016, 0.032, 0.064, 0.128, 0.256, 0.512}

// LoadAxisPoints is the number of load points per cell table.
const LoadAxisPoints = 7

// LoadAxis returns the cell's output load axis: geometric from
// MaxCap/2^(LoadAxisPoints-1) up to MaxCap, so low-drive cells get a
// small load range and high-drive cells a big one (Fig. 4).
func (s *Spec) LoadAxis() []float64 {
	cmax := s.MaxCap()
	axis := make([]float64, LoadAxisPoints)
	for i := range axis {
		axis[i] = cmax / float64(int(1)<<(LoadAxisPoints-1-i))
	}
	return axis
}

// InputCap returns the capacitance of one data input pin in pF.
func (s *Spec) InputCap() float64 {
	return s.Params.CinPerDrive * float64(s.Drive)
}

// ClockCap returns the clock/enable pin capacitance in pF; clock pins are
// smaller than data pins since they drive only the internal latch stage.
func (s *Spec) ClockCap() float64 { return 0.6 * s.Params.CinPerDrive * float64(s.Drive) }

// MaxCap returns the maximum load the output may drive in pF.
func (s *Spec) MaxCap() float64 { return s.Params.CmaxPerDrive * float64(s.Drive) }

// Area returns the cell area in um^2.
func (s *Spec) Area() float64 {
	return s.Params.AreaBase + s.Params.AreaPerDrive*float64(s.Drive)
}

// Delay evaluates the analytic propagation delay (ns) of the cell at the
// given output load (pF) and input slew (ns) in the given corner:
//
//	d = scale * (parasitic + a*slew + (R/k)*load + b*slew*load/(k*cmax0))
//
// a logical-effort style model: drive strength k divides the resistive
// term, slew adds linearly, and a slew-load cross term bends the far
// corner of the LUT upward.
func (s *Spec) Delay(load, slew float64, corner Corner) float64 {
	p := s.Params
	k := float64(s.Drive)
	rel := load / (k * p.CmaxPerDrive) // 0..1 position within the drive range
	d := p.Parasitic + p.SlewCoeff*slew + (p.Resistance/k)*load + p.Interact*slew*rel
	return d * corner.DelayScale()
}

// OutputTransition evaluates the output slew (ns) at the given operating
// point.
func (s *Spec) OutputTransition(load, slew float64, corner Corner) float64 {
	p := s.Params
	k := float64(s.Drive)
	tr := p.TransBase + (p.TransSlope/k)*load + p.TransFeed*slew
	return tr * corner.DelayScale()
}

// Sigma evaluates the local-variation standard deviation of the delay
// (ns) at the operating point. Pelgrom's law makes mismatch shrink with
// device width: sigma ∝ 1/sqrt(k). The load and cross terms carry extra
// weight so the sigma surface steepens toward high slew and load — the
// "steep sigma increase" regions the slope-bound tuning methods cut away.
func (s *Spec) Sigma(load, slew float64, corner Corner) float64 {
	p := s.Params
	k := float64(s.Drive)
	rel := load / (k * p.CmaxPerDrive)
	base := 0.5*p.Parasitic + 0.8*p.SlewCoeff*slew + 1.2*(p.Resistance/k)*load + 1.5*p.Interact*slew*rel
	return (p.Mismatch / math.Sqrt(k)) * base * corner.DelayScale()
}

// SetupTime returns the sequential setup constraint in ns (zero for
// combinational cells).
func (s *Spec) SetupTime(corner Corner) float64 {
	return s.Params.Setup * corner.DelayScale()
}

// HoldTime returns the sequential hold constraint in ns.
func (s *Spec) HoldTime(corner Corner) float64 {
	return s.Params.Hold * corner.DelayScale()
}

// riseFallSkew is the rise/fall asymmetry applied to delay tables:
// cell_rise = delay * (1 + skew), cell_fall = delay * (1 - skew).
const riseFallSkew = 0.05

// DelayTable builds the nominal cell delay LUT (before rise/fall skew).
func (s *Spec) DelayTable(corner Corner) *lut.Table {
	return lut.NewFilled(s.LoadAxis(), SlewAxis, func(l, sl float64) float64 {
		return s.Delay(l, sl, corner)
	})
}

// TransitionTable builds the nominal output transition LUT.
func (s *Spec) TransitionTable(corner Corner) *lut.Table {
	return lut.NewFilled(s.LoadAxis(), SlewAxis, func(l, sl float64) float64 {
		return s.OutputTransition(l, sl, corner)
	})
}

// SigmaTable builds the analytic local-variation sigma LUT — the ground
// truth the Monte-Carlo statistical library estimates.
func (s *Spec) SigmaTable(corner Corner) *lut.Table {
	return lut.NewFilled(s.LoadAxis(), SlewAxis, func(l, sl float64) float64 {
		return s.Sigma(l, sl, corner)
	})
}

// TemplateName is the shared lu_table_template name used by all emitted
// tables.
const TemplateName = "delay_template_7x7"

// buildLiberty renders the whole catalogue as a Liberty library at the
// catalogue corner with nominal (variation-free) tables.
func (c *Catalogue) buildLiberty() *liberty.Library {
	lib := &liberty.Library{
		Name:            "stc40_" + c.Corner.Name(),
		TimeUnit:        "1ns",
		CapacitiveUnit:  "1pf",
		VoltageUnit:     "1V",
		NominalVoltage:  c.Corner.Voltage(),
		NominalTemp:     c.Corner.Temperature(),
		NominalProcess:  1,
		OperatingCorner: c.Corner.Name(),
		Templates: []*liberty.Template{{
			Name:      TemplateName,
			Variable1: "total_output_net_capacitance",
			Variable2: "input_net_transition",
			Index2:    append([]float64(nil), SlewAxis...),
		}},
	}
	for _, name := range c.CellNames() {
		lib.AddCell(c.buildCell(c.Specs[name], nil))
	}
	return lib
}

// Perturb maps an operating point to a delay offset, used by the
// variation package to generate Monte-Carlo library instances. nil means
// no perturbation.
type Perturb func(s *Spec, load, slew float64) float64

// BuildLibrary renders a full Liberty library applying the given
// perturbation to every delay entry (the transition tables stay nominal;
// the paper's statistics are about the delay). A nil perturb yields the
// nominal library.
func (c *Catalogue) BuildLibrary(name string, perturb Perturb) *liberty.Library {
	lib := &liberty.Library{
		Name:            name,
		TimeUnit:        "1ns",
		CapacitiveUnit:  "1pf",
		VoltageUnit:     "1V",
		NominalVoltage:  c.Corner.Voltage(),
		NominalTemp:     c.Corner.Temperature(),
		NominalProcess:  1,
		OperatingCorner: c.Corner.Name(),
		Templates:       c.Lib.Templates,
	}
	for _, cellName := range c.CellNames() {
		lib.AddCell(c.buildCell(c.Specs[cellName], perturb))
	}
	return lib
}

func (c *Catalogue) buildCell(s *Spec, perturb Perturb) *liberty.Cell {
	cell := &liberty.Cell{
		Name:          s.Name,
		Area:          s.Area(),
		DriveStrength: s.Drive,
		Footprint:     s.Family,
		IsSequential:  s.IsSequential(),
		LeakagePower:  s.LeakagePower(c.Corner),
	}
	// Data inputs.
	for _, in := range s.Inputs {
		cell.Pins = append(cell.Pins, &liberty.Pin{
			Name: in, Direction: liberty.Input, Capacitance: s.InputCap(),
		})
	}
	// Control pins.
	for _, ctl := range []string{s.Clock, s.ResetN, s.SetN} {
		if ctl != "" {
			cell.Pins = append(cell.Pins, &liberty.Pin{
				Name: ctl, Direction: liberty.Input, Capacitance: s.ClockCap(),
			})
		}
	}
	// Setup/hold constraint arcs on D for sequential cells.
	if s.IsSequential() {
		d := cell.Pin("D")
		setup := constTable(s.SetupTime(c.Corner))
		hold := constTable(s.HoldTime(c.Corner))
		d.Timing = append(d.Timing,
			&liberty.TimingArc{RelatedPin: s.Clock, Type: "setup_rising",
				CellRise: setup, CellFall: setup.Clone(), Template: "scalar"},
			&liberty.TimingArc{RelatedPin: s.Clock, Type: "hold_rising",
				CellRise: hold, CellFall: hold.Clone(), Template: "scalar"},
		)
	}
	// Outputs with delay arcs.
	defs := c.functionsFor(s)
	for oi, out := range s.Outputs {
		pin := &liberty.Pin{
			Name:      out,
			Direction: liberty.Output,
			MaxCap:    s.MaxCap(),
		}
		if oi < len(defs) {
			pin.Function = defs[oi]
		}
		if s.Kind == KindTie {
			cell.Pins = append(cell.Pins, pin)
			continue
		}
		related := s.Inputs
		if s.IsSequential() {
			related = []string{s.Clock} // CK->Q / EN->Q arc
		}
		for _, from := range related {
			pin.Timing = append(pin.Timing, c.buildArc(s, from, perturb))
			pin.Power = append(pin.Power, c.buildPowerArc(s, from))
		}
		cell.Pins = append(cell.Pins, pin)
	}
	return cell
}

// functionsFor retrieves the Liberty function strings for the spec's
// outputs from the family definition table.
func (c *Catalogue) functionsFor(s *Spec) []string {
	for _, def := range catalogueDefs() {
		if def.family == s.Family {
			return def.functions
		}
	}
	return nil
}

func constTable(v float64) *lut.Table {
	t := lut.New([]float64{0.001}, []float64{0.05})
	t.Values[0][0] = v
	return t
}

func (c *Catalogue) buildArc(s *Spec, from string, perturb Perturb) *liberty.TimingArc {
	arc := &liberty.TimingArc{
		RelatedPin: from,
		Sense:      senseOf(s.Kind),
		Template:   TemplateName,
	}
	if s.IsSequential() {
		arc.Type = "rising_edge"
		arc.Sense = "non_unate"
	}
	delay := lut.NewFilled(s.LoadAxis(), SlewAxis, func(l, sl float64) float64 {
		d := s.Delay(l, sl, c.Corner)
		if perturb != nil {
			d += perturb(s, l, sl)
		}
		return d
	})
	trans := s.TransitionTable(c.Corner)
	arc.CellRise = delay.Clone().Scale(1 + riseFallSkew)
	arc.CellFall = delay.Scale(1 - riseFallSkew)
	arc.RiseTransition = trans.Clone().Scale(1 + riseFallSkew)
	arc.FallTransition = trans.Scale(1 - riseFallSkew)
	return arc
}

// buildPowerArc emits the internal_power group for one timing arc: the
// internal energy per transition over the same load/slew grid, with the
// rise transition slightly more expensive than the fall (PMOS stack).
func (c *Catalogue) buildPowerArc(s *Spec, from string) *liberty.PowerArc {
	energy := lut.NewFilled(s.LoadAxis(), SlewAxis, func(l, sl float64) float64 {
		return s.InternalEnergy(l, sl, c.Corner)
	})
	return &liberty.PowerArc{
		RelatedPin: from,
		Template:   TemplateName,
		RisePower:  energy.Clone().Scale(1.08),
		FallPower:  energy.Scale(0.92),
	}
}

func senseOf(k Kind) string {
	switch k {
	case KindInv, KindNand, KindNor:
		return "negative_unate"
	case KindBuf, KindOr:
		return "positive_unate"
	default:
		return "non_unate"
	}
}
