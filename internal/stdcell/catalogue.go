package stdcell

import (
	"fmt"
	"sort"
	"strings"

	"stdcelltune/internal/liberty"
)

// Spec describes one concrete cell: a family instantiated at a drive
// strength, together with its analytic model parameters.
type Spec struct {
	Name      string // e.g. "NR2B_6"
	Family    string // e.g. "NR2B"
	Kind      Kind
	NumInputs int // data inputs (excluding clock/enable/reset/set)
	Drive     int
	Params    ModelParams

	Inputs  []string // data input pin names
	Outputs []string // output pin names
	Clock   string   // clock/enable pin ("" for combinational)
	ResetN  string   // active-low async reset pin ("")
	SetN    string   // active-low async set pin ("")
}

// familyDef is a cell family before drive-strength expansion.
type familyDef struct {
	family  string
	kind    Kind
	nIn     int
	drives  []int
	inputs  []string
	outputs []string
	clock   string
	resetN  string
	setN    string
	// function per output pin, Liberty syntax
	functions []string
}

// catalogueDefs returns the family table whose expansion yields exactly
// the paper's 304-cell inventory (Appendix VIII.A).
func catalogueDefs() []familyDef {
	ladder := func(ds ...int) []int { return ds }
	return []familyDef{
		// 19 inverter cells.
		{family: "INV", kind: KindInv, nIn: 1,
			drives: ladder(1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48, 56, 64),
			inputs: []string{"A"}, outputs: []string{"Y"}, functions: []string{"!A"}},
		// 36 OR cells.
		{family: "OR2", kind: KindOr, nIn: 2,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32),
			inputs: []string{"A", "B"}, outputs: []string{"Y"}, functions: []string{"(A+B)"}},
		{family: "OR3", kind: KindOr, nIn: 3,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32),
			inputs: []string{"A", "B", "C"}, outputs: []string{"Y"}, functions: []string{"(A+B+C)"}},
		{family: "OR4", kind: KindOr, nIn: 4,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32),
			inputs: []string{"A", "B", "C", "D"}, outputs: []string{"Y"}, functions: []string{"(A+B+C+D)"}},
		// 46 NAND cells.
		{family: "ND2", kind: KindNand, nIn: 2,
			drives: ladder(1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 28, 32),
			inputs: []string{"A", "B"}, outputs: []string{"Y"}, functions: []string{"!(A*B)"}},
		{family: "ND3", kind: KindNand, nIn: 3,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20),
			inputs: []string{"A", "B", "C"}, outputs: []string{"Y"}, functions: []string{"!(A*B*C)"}},
		{family: "ND4", kind: KindNand, nIn: 4,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20),
			inputs: []string{"A", "B", "C", "D"}, outputs: []string{"Y"}, functions: []string{"!(A*B*C*D)"}},
		{family: "ND2B", kind: KindNand, nIn: 2,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32),
			inputs: []string{"AN", "B"}, outputs: []string{"Y"}, functions: []string{"!(!AN*B)"}},
		// 43 NOR cells.
		{family: "NR2", kind: KindNor, nIn: 2,
			drives: ladder(1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24),
			inputs: []string{"A", "B"}, outputs: []string{"Y"}, functions: []string{"!(A+B)"}},
		{family: "NR3", kind: KindNor, nIn: 3,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16),
			inputs: []string{"A", "B", "C"}, outputs: []string{"Y"}, functions: []string{"!(A+B+C)"}},
		{family: "NR4", kind: KindNor, nIn: 4,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12),
			inputs: []string{"A", "B", "C", "D"}, outputs: []string{"Y"}, functions: []string{"!(A+B+C+D)"}},
		{family: "NR2B", kind: KindNor, nIn: 2,
			drives: ladder(1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 28, 32),
			inputs: []string{"AN", "B"}, outputs: []string{"Y"}, functions: []string{"!(!AN+B)"}},
		// 29 XNOR cells.
		{family: "XNR2", kind: KindXnor, nIn: 2,
			drives: ladder(1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 28, 32, 40),
			inputs: []string{"A", "B"}, outputs: []string{"Y"}, functions: []string{"!(A^B)"}},
		{family: "XNR3", kind: KindXnor, nIn: 3,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48),
			inputs: []string{"A", "B", "C"}, outputs: []string{"Y"}, functions: []string{"!(A^B^C)"}},
		// 34 adder cells.
		{family: "ADDF", kind: KindAddFull, nIn: 3,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32),
			inputs: []string{"A", "B", "CI"}, outputs: []string{"S", "CO"},
			functions: []string{"(A^B)^CI", "(A*B)+(CI*(A^B))"}},
		{family: "ADDH", kind: KindAddHalf, nIn: 2,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20),
			inputs: []string{"A", "B"}, outputs: []string{"S", "CO"},
			functions: []string{"(A^B)", "(A*B)"}},
		{family: "ADDC", kind: KindAddCarry, nIn: 3,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32),
			inputs: []string{"A", "B", "CI"}, outputs: []string{"S", "CON"},
			functions: []string{"(A^B)^CI", "!((A*B)+(CI*(A^B)))"}},
		// 27 multiplexer cells.
		{family: "MUX2", kind: KindMux, nIn: 3,
			drives: ladder(1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 28, 32, 40),
			inputs: []string{"D0", "D1", "S"}, outputs: []string{"Y"},
			functions: []string{"(D0*!S)+(D1*S)"}},
		{family: "MUX4", kind: KindMux, nIn: 6,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32),
			inputs: []string{"D0", "D1", "D2", "D3", "S0", "S1"}, outputs: []string{"Y"},
			functions: []string{"(D0*!S0*!S1)+(D1*S0*!S1)+(D2*!S0*S1)+(D3*S0*S1)"}},
		// 51 flip-flop cells.
		{family: "DFQ", kind: KindDFF, nIn: 1,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32),
			inputs: []string{"D"}, outputs: []string{"Q"}, clock: "CK",
			functions: []string{"IQ"}},
		{family: "DFQN", kind: KindDFF, nIn: 1,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20),
			inputs: []string{"D"}, outputs: []string{"QN"}, clock: "CK",
			functions: []string{"!IQ"}},
		{family: "DFRQ", kind: KindDFF, nIn: 1,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32),
			inputs: []string{"D"}, outputs: []string{"Q"}, clock: "CK", resetN: "RN",
			functions: []string{"IQ"}},
		{family: "DFSQ", kind: KindDFF, nIn: 1,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12, 16),
			inputs: []string{"D"}, outputs: []string{"Q"}, clock: "CK", setN: "SN",
			functions: []string{"IQ"}},
		{family: "DFRSQ", kind: KindDFF, nIn: 1,
			drives: ladder(1, 2, 3, 4, 6, 8, 10, 12),
			inputs: []string{"D"}, outputs: []string{"Q"}, clock: "CK", resetN: "RN", setN: "SN",
			functions: []string{"IQ"}},
		// 12 latch cells.
		{family: "LATQ", kind: KindLatch, nIn: 1,
			drives: ladder(1, 2, 4, 6, 8, 12),
			inputs: []string{"D"}, outputs: []string{"Q"}, clock: "EN",
			functions: []string{"IQ"}},
		{family: "LATRQ", kind: KindLatch, nIn: 1,
			drives: ladder(1, 2, 4, 6, 8, 12),
			inputs: []string{"D"}, outputs: []string{"Q"}, clock: "EN", resetN: "RN",
			functions: []string{"IQ"}},
		// 7 other cells: buffers and tie cells.
		{family: "BUF", kind: KindBuf, nIn: 1,
			drives: ladder(2, 4, 6, 8, 16),
			inputs: []string{"A"}, outputs: []string{"Y"}, functions: []string{"A"}},
		{family: "TIEH", kind: KindTie, nIn: 0,
			drives: ladder(1), outputs: []string{"Y"}, functions: []string{"1"}},
		{family: "TIEL", kind: KindTie, nIn: 0,
			drives: ladder(1), outputs: []string{"Y"}, functions: []string{"0"}},
	}
}

// Catalogue is the full standard cell library: the Liberty model plus the
// analytic specs behind each cell.
type Catalogue struct {
	Lib      *liberty.Library
	Corner   Corner
	Specs    map[string]*Spec
	Families map[string][]*Spec // sorted by ascending drive strength
	// ByDrive groups combinational cells by drive strength (the paper's
	// strength-clustering axis, Fig. 5).
	ByDrive map[int][]*Spec

	// arcs lazily caches per-spec Liberty arc resolution for the timing
	// engines; see TimingArcs.
	arcs arcCache
}

// NewCatalogue builds the nominal 304-cell library characterized at the
// given corner.
func NewCatalogue(corner Corner) *Catalogue {
	c := &Catalogue{
		Corner:   corner,
		Specs:    make(map[string]*Spec),
		Families: make(map[string][]*Spec),
		ByDrive:  make(map[int][]*Spec),
	}
	for _, def := range catalogueDefs() {
		for _, k := range def.drives {
			s := &Spec{
				Name:      fmt.Sprintf("%s_%d", def.family, k),
				Family:    def.family,
				Kind:      def.kind,
				NumInputs: def.nIn,
				Drive:     k,
				Params:    famParams(def.kind, def.nIn),
				Inputs:    def.inputs,
				Outputs:   def.outputs,
				Clock:     def.clock,
				ResetN:    def.resetN,
				SetN:      def.setN,
			}
			c.Specs[s.Name] = s
			c.Families[s.Family] = append(c.Families[s.Family], s)
			c.ByDrive[k] = append(c.ByDrive[k], s)
		}
	}
	for _, fam := range c.Families {
		sort.Slice(fam, func(i, j int) bool { return fam[i].Drive < fam[j].Drive })
	}
	for _, cluster := range c.ByDrive {
		sort.Slice(cluster, func(i, j int) bool { return cluster[i].Name < cluster[j].Name })
	}
	c.Lib = c.buildLiberty()
	return c
}

// Spec returns the spec of the named cell, or nil.
func (c *Catalogue) Spec(name string) *Spec { return c.Specs[name] }

// CellNames returns all cell names sorted.
func (c *Catalogue) CellNames() []string {
	names := make([]string, 0, len(c.Specs))
	for n := range c.Specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FamilyOf extracts the family prefix from a cell name ("NR2B_6" →
// "NR2B").
func FamilyOf(cellName string) string {
	if i := strings.LastIndex(cellName, "_"); i >= 0 {
		return cellName[:i]
	}
	return cellName
}

// SizesOf returns the specs of the cell's family sorted by ascending
// drive, i.e. the alternatives synthesis may size between.
func (c *Catalogue) SizesOf(cellName string) []*Spec {
	return c.Families[FamilyOf(cellName)]
}

// IsSequential reports whether the spec is a flip-flop or latch.
func (s *Spec) IsSequential() bool { return s.Kind == KindDFF || s.Kind == KindLatch }

// AllPins returns every pin name of the cell: data inputs, control pins,
// then outputs.
func (s *Spec) AllPins() []string {
	var pins []string
	pins = append(pins, s.Inputs...)
	if s.Clock != "" {
		pins = append(pins, s.Clock)
	}
	if s.ResetN != "" {
		pins = append(pins, s.ResetN)
	}
	if s.SetN != "" {
		pins = append(pins, s.SetN)
	}
	pins = append(pins, s.Outputs...)
	return pins
}
