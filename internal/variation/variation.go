// Package variation models the two variation components of the paper:
//
//   - Local (intra-die, mismatch) variation: independent per cell
//     instance, scaled by Pelgrom's law through the catalogue's Sigma
//     model. Used to generate the N Monte-Carlo library instances the
//     statistical library is distilled from (Section IV).
//   - Global (inter-die) variation: one correlated factor per die that
//     scales every cell's delay together, on top of the process corner
//     (Section VII.C).
//
// All sampling is deterministic given a seed.
package variation

import (
	"context"
	"fmt"
	"strconv"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/liberty"
	"stdcelltune/internal/robust"
	"stdcelltune/internal/stdcell"
)

// Config parameterizes Monte-Carlo library generation.
type Config struct {
	// N is the number of library instances (the paper uses 50; the
	// central limit theorem wants at least 30).
	N int
	// Seed makes the run reproducible.
	Seed int64
	// GlobalSigma is the relative standard deviation of the global
	// (inter-die) delay factor. Zero disables global variation, which is
	// the setting for building the local-variation statistical library.
	GlobalSigma float64
	// CharNoise adds a small independent per-entry measurement noise
	// (relative to the entry's local sigma), mimicking finite-precision
	// characterization. The paper attributes part of its statistical
	// library error to exactly this kind of noise.
	CharNoise float64
}

// DefaultConfig mirrors the paper's characterization setup: 50 instances,
// local variation only, a little characterization noise.
func DefaultConfig() Config {
	return Config{N: 50, Seed: 1, GlobalSigma: 0, CharNoise: 0.02}
}

// DefaultGlobalSigma is the inter-die sigma used by the path Monte-Carlo
// experiments (Figs. 15/16) where global variation is enabled.
const DefaultGlobalSigma = 0.035

// CellSample holds the per-cell local mismatch draws of one Monte-Carlo
// instance. Two components mimic threshold-voltage and current-factor
// mismatch; their squared weights sum to one so the per-entry delay
// standard deviation equals the catalogue's Sigma model exactly.
type CellSample struct {
	Vth, Beta float64
}

const (
	wVth  = 0.8
	wBeta = 0.6
)

// Delta returns the delay offset this sample induces at an operating
// point of the given cell.
func (cs CellSample) Delta(s *stdcell.Spec, load, slew float64, corner stdcell.Corner) float64 {
	return s.Sigma(load, slew, corner) * (wVth*cs.Vth + wBeta*cs.Beta)
}

// Sampler draws deterministic local-variation samples keyed by instance
// and cell name.
type Sampler struct {
	rng *dist.RNG
}

// NewSampler creates a sampler for the given seed.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: dist.NewRNG(seed)}
}

// Cell returns the mismatch sample of the named cell in the given
// Monte-Carlo instance. The draw depends only on (seed, instance, name).
//
// The fork key is assembled with append/strconv into a stack buffer
// instead of fmt.Sprintf: this runs once per (instance, cell) across
// every Monte-Carlo fold, and the Sprintf allocation dominated the
// sampler's profile. The byte stream is identical to the previous
// "mc%d/%s" key, so every draw stays bit-identical; the buffer must be
// per-call (not a Sampler field) because InstancesCtx shares one
// Sampler across the worker pool.
func (sm *Sampler) Cell(instance int, name string) CellSample {
	var buf [48]byte
	key := append(buf[:0], "mc"...)
	key = strconv.AppendInt(key, int64(instance), 10)
	key = append(key, '/')
	key = append(key, name...)
	g := sm.rng.ForkNamedBytes(key)
	return CellSample{Vth: g.StandardNormal(), Beta: g.StandardNormal()}
}

// Global returns the die-level delay factor of the given instance,
// centred on 1.0. The fork key matches the previous "global%d" bytes
// exactly (see Cell for why it is built without Sprintf).
func (sm *Sampler) Global(instance int, sigma float64) float64 {
	var buf [32]byte
	key := append(buf[:0], "global"...)
	key = strconv.AppendInt(key, int64(instance), 10)
	g := sm.rng.ForkNamedBytes(key)
	return 1 + sigma*g.StandardNormal()
}

// Instances generates cfg.N Monte-Carlo Liberty libraries from the
// catalogue. Each instance perturbs every cell's delay tables by that
// cell's local mismatch sample (plus optional characterization noise and
// global factor). This is the input of the Fig. 2 statistical library
// construction.
func Instances(cat *stdcell.Catalogue, cfg Config) []*liberty.Library {
	libs, _ := InstancesCtx(context.Background(), cat, cfg)
	return libs
}

// InstancesCtx is Instances on the shared worker pool: the N instances
// generate in parallel (each instance's streams are named by (seed,
// instance, cell), so the result is bit-identical to the sequential
// order) and the context cancels generation between instances. On
// cancellation the partial slice is discarded and ctx's error returned.
func InstancesCtx(ctx context.Context, cat *stdcell.Catalogue, cfg Config) ([]*liberty.Library, error) {
	sm := NewSampler(cfg.Seed)
	libs := make([]*liberty.Library, cfg.N)
	err := robust.ForEachNamed(ctx, "variation.instances", robust.DefaultWorkers(), cfg.N, func(ctx context.Context, i int) error {
		libs[i] = Instance(cat, sm, i, cfg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return libs, nil
}

// Instance generates the i-th Monte-Carlo library.
func Instance(cat *stdcell.Catalogue, sm *Sampler, i int, cfg Config) *liberty.Library {
	global := 1.0
	if cfg.GlobalSigma > 0 {
		global = sm.Global(i, cfg.GlobalSigma)
	}
	var nbuf [32]byte
	nkey := append(nbuf[:0], "noise"...)
	nkey = strconv.AppendInt(nkey, int64(i), 10)
	noise := dist.NewRNG(cfg.Seed).ForkNamedBytes(nkey)
	samples := make(map[string]CellSample, len(cat.Specs))
	perturb := func(s *stdcell.Spec, load, slew float64) float64 {
		cs, ok := samples[s.Name]
		if !ok {
			cs = sm.Cell(i, s.Name)
			samples[s.Name] = cs
		}
		d := cs.Delta(s, load, slew, cat.Corner)
		if cfg.CharNoise > 0 {
			d += cfg.CharNoise * s.Sigma(load, slew, cat.Corner) * noise.StandardNormal()
		}
		if global != 1 {
			d += (global - 1) * s.Delay(load, slew, cat.Corner)
		}
		return d
	}
	return cat.BuildLibrary(fmt.Sprintf("%s_mc%03d", cat.Lib.Name, i), perturb)
}

// CellDelay evaluates the perturbed delay of one cell instance at an
// operating point — the path Monte-Carlo (Figs. 15/16) uses this directly
// instead of materializing whole libraries.
func CellDelay(s *stdcell.Spec, cs CellSample, global float64, load, slew float64, corner stdcell.Corner) float64 {
	return global*s.Delay(load, slew, corner) + cs.Delta(s, load, slew, corner)
}
