package variation

import (
	"fmt"
	"math"
	"testing"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/stdcell"
)

func TestDeterminism(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	cfg := Config{N: 2, Seed: 7, CharNoise: 0.02}
	a := Instances(cat, cfg)
	b := Instances(cat, cfg)
	for i := range a {
		ca := a[i].Cell("INV_1").Pin("Y").Timing[0].CellRise
		cb := b[i].Cell("INV_1").Pin("Y").Timing[0].CellRise
		for r := range ca.Values {
			for c := range ca.Values[r] {
				if ca.Values[r][c] != cb.Values[r][c] {
					t.Fatalf("instance %d not deterministic", i)
				}
			}
		}
	}
	if a[0].Name == a[1].Name {
		t.Error("instances should have distinct names")
	}
}

func TestInstancesDiffer(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	libs := Instances(cat, Config{N: 2, Seed: 3})
	t0 := libs[0].Cell("ND2_2").Pin("Y").Timing[0].CellRise
	t1 := libs[1].Cell("ND2_2").Pin("Y").Timing[0].CellRise
	if t0.Values[3][3] == t1.Values[3][3] {
		t.Error("two MC instances produced identical entries")
	}
}

// TestPerEntryStdMatchesSigmaModel: the standard deviation of one LUT
// entry across many instances must approach the catalogue's analytic
// Sigma at that operating point (this is the property the statistical
// library construction relies on).
func TestPerEntryStdMatchesSigmaModel(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	spec := cat.Spec("INV_2")
	sm := NewSampler(11)
	load, slew := spec.MaxCap()/4, 0.128
	want := spec.Sigma(load, slew, stdcell.Typical)
	const n = 3000
	samples := make([]float64, n)
	for i := 0; i < n; i++ {
		cs := sm.Cell(i, spec.Name)
		samples[i] = spec.Delay(load, slew, stdcell.Typical) + cs.Delta(spec, load, slew, stdcell.Typical)
	}
	mu, sg := dist.MeanStdDev(samples)
	if math.Abs(mu-spec.Delay(load, slew, stdcell.Typical)) > 0.05*want {
		t.Errorf("sample mean %g drifted from nominal", mu)
	}
	if math.Abs(sg-want)/want > 0.08 {
		t.Errorf("sample sigma %g want %g (±8%%)", sg, want)
	}
}

func TestDeltaWeightsAreUnitNorm(t *testing.T) {
	if math.Abs(wVth*wVth+wBeta*wBeta-1) > 1e-12 {
		t.Fatalf("mismatch component weights %g,%g not unit norm", wVth, wBeta)
	}
}

func TestSamplerKeying(t *testing.T) {
	sm := NewSampler(5)
	a := sm.Cell(0, "INV_1")
	b := sm.Cell(0, "INV_1")
	if a != b {
		t.Error("same key must give same sample")
	}
	if sm.Cell(1, "INV_1") == a {
		t.Error("different instance must differ")
	}
	if sm.Cell(0, "INV_2") == a {
		t.Error("different cell must differ")
	}
	if NewSampler(6).Cell(0, "INV_1") == a {
		t.Error("different seed must differ")
	}
}

func TestGlobalFactor(t *testing.T) {
	sm := NewSampler(9)
	if g := sm.Global(0, 0); g != 1 {
		t.Errorf("zero-sigma global factor %g want 1", g)
	}
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = sm.Global(i, 0.05)
	}
	mu, sg := dist.MeanStdDev(samples)
	if math.Abs(mu-1) > 0.01 {
		t.Errorf("global mean %g want ~1", mu)
	}
	if math.Abs(sg-0.05) > 0.01 {
		t.Errorf("global sigma %g want ~0.05", sg)
	}
}

func TestGlobalVariationShiftsWholeLibrary(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	sm := NewSampler(21)
	cfg := Config{N: 1, Seed: 21, GlobalSigma: 0.2}
	inst := Instance(cat, sm, 0, cfg)
	g := sm.Global(0, 0.2)
	spec := cat.Spec("BUF_4")
	got := inst.Cell("BUF_4").Pin("Y").Timing[0].CellRise.Values[3][3]
	load, slew := spec.LoadAxis()[3], stdcell.SlewAxis[3]
	nominal := spec.Delay(load, slew, stdcell.Typical)
	cs := sm.Cell(0, spec.Name)
	want := (nominal + (g-1)*nominal + cs.Delta(spec, load, slew, stdcell.Typical)) * 1.05
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("global-perturbed entry %g want %g", got, want)
	}
}

func TestCellDelay(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	spec := cat.Spec("INV_8")
	cs := CellSample{Vth: 1, Beta: -0.5}
	load, slew := 0.05, 0.1
	got := CellDelay(spec, cs, 1.1, load, slew, stdcell.Typical)
	want := 1.1*spec.Delay(load, slew, stdcell.Typical) + cs.Delta(spec, load, slew, stdcell.Typical)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("CellDelay=%g want %g", got, want)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.N != 50 {
		t.Errorf("default N=%d want 50 (paper)", cfg.N)
	}
	if cfg.GlobalSigma != 0 {
		t.Error("statistical library characterization must be local-only")
	}
	if DefaultGlobalSigma <= 0 {
		t.Error("DefaultGlobalSigma must be positive")
	}
}

// TestSamplerKeysMatchSprintf pins the zero-allocation fork keys to the
// exact draws the fmt.Sprintf keys produced: the statistical library's
// bit-identity depends on the byte stream fed to ForkNamed not changing.
func TestSamplerKeysMatchSprintf(t *testing.T) {
	sm := NewSampler(42)
	ref := dist.NewRNG(42)
	for _, instance := range []int{0, 1, 9, 10, 123, 9999} {
		for _, name := range []string{"INV_X1", "NAND2_X4", "DFF_X2"} {
			g := ref.ForkNamed(fmt.Sprintf("mc%d/%s", instance, name))
			want := CellSample{Vth: g.StandardNormal(), Beta: g.StandardNormal()}
			if got := sm.Cell(instance, name); got != want {
				t.Fatalf("Cell(%d, %s) = %+v, want %+v", instance, name, got, want)
			}
		}
		gg := ref.ForkNamed(fmt.Sprintf("global%d", instance))
		want := 1 + 0.035*gg.StandardNormal()
		if got := sm.Global(instance, 0.035); got != want {
			t.Fatalf("Global(%d) = %v, want %v", instance, got, want)
		}
	}
}

// TestSamplerCellAllocFree: the per-(instance, cell) draw must not
// allocate for the fork key (the whole point of the append/strconv
// path). The RNG construction itself allocates; assert we stay at that
// floor rather than zero.
func TestSamplerCellAllocFree(t *testing.T) {
	sm := NewSampler(7)
	base := testing.AllocsPerRun(200, func() {
		dist.NewRNG(7).ForkNamedBytes([]byte("mc3/NAND2_X4"))
	})
	got := testing.AllocsPerRun(200, func() {
		sm.Cell(3, "NAND2_X4")
	})
	// Cell = key build (must be free) + one ForkNamedBytes; allow the
	// NewRNG(7) of the baseline as slack, so key building is provably 0.
	if got > base {
		t.Fatalf("Cell allocates %.1f/op, fork baseline %.1f/op — key building is allocating", got, base)
	}
}
