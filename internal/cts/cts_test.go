package cts

import (
	"sync"
	"testing"

	"stdcelltune/internal/core"
	"stdcelltune/internal/netlist"
	"stdcelltune/internal/place"
	"stdcelltune/internal/restrict"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/synth"
	"stdcelltune/internal/variation"
)

var (
	envOnce sync.Once
	cat     *stdcell.Catalogue
	stat    *statlib.Library
	plc     *place.Placement
	envErr  error
)

func env(t *testing.T) (*stdcell.Catalogue, *statlib.Library, *place.Placement) {
	t.Helper()
	envOnce.Do(func() {
		cat = stdcell.NewCatalogue(stdcell.Typical)
		libs := variation.Instances(cat, variation.Config{N: 20, Seed: 4})
		stat, envErr = statlib.Build("stat", libs)
		if envErr != nil {
			return
		}
		var m *rtlgen.MCU
		m, envErr = rtlgen.Build(rtlgen.SmallConfig())
		if envErr != nil {
			return
		}
		var nl *netlist.Netlist
		nl, envErr = synth.Map("mcu", m.Net, cat)
		if envErr != nil {
			return
		}
		plc, envErr = place.Place(nl, place.DefaultConfig())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return cat, stat, plc
}

func TestBuildStructure(t *testing.T) {
	c, _, p := env(t)
	tree, err := Build(p, c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ffCount := len(p.Nl.Sequentials())
	// Every FF appears exactly once as a sink.
	seen := make(map[int]int)
	var walk func(n *Node)
	var leafCount int
	walk = func(n *Node) {
		if n.Spec == nil {
			t.Fatal("unsized buffer")
		}
		if n.Spec.Family != "BUF" {
			t.Fatalf("clock node is %s, want BUF", n.Spec.Name)
		}
		for _, ff := range n.Sinks {
			seen[ff.ID]++
		}
		if len(n.Children) == 0 {
			leafCount++
			if len(n.Sinks) == 0 {
				t.Error("leaf buffer with no sinks")
			}
			if len(n.Sinks) > tree.Cfg.MaxFanout {
				t.Errorf("leaf drives %d sinks over fanout %d", len(n.Sinks), tree.Cfg.MaxFanout)
			}
		}
		for _, ch := range n.Children {
			if ch.Parent != n {
				t.Error("parent pointer broken")
			}
			if ch.Level != n.Level+1 {
				t.Error("level bookkeeping broken")
			}
			walk(ch)
		}
	}
	walk(tree.Root)
	if len(seen) != ffCount {
		t.Fatalf("tree covers %d FFs want %d", len(seen), ffCount)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("FF %d driven %d times", id, n)
		}
	}
	if tree.BufferCount() == 0 || tree.BufferArea() <= 0 {
		t.Error("no buffers")
	}
	if tree.Levels < 2 {
		t.Errorf("tree of %d FFs has only %d levels", ffCount, tree.Levels)
	}
}

func TestBuildErrors(t *testing.T) {
	c, _, p := env(t)
	bad := DefaultConfig()
	bad.MaxFanout = 1
	if _, err := Build(p, c, bad); err == nil {
		t.Error("fanout 1 accepted")
	}
	// Placement of a netlist with no FFs.
	nl := netlist.New("comb", c)
	in := nl.AddInput("a")
	inv := nl.AddInstance("u", c.Spec("INV_1"))
	nl.Connect(inv, "A", in)
	o := nl.AddNet("")
	nl.Drive(inv, "Y", o)
	nl.MarkOutput("y", o)
	pc, err := place.Place(nl, place.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(pc, c, DefaultConfig()); err == nil {
		t.Error("FF-less design accepted")
	}
}

func TestAnalyze(t *testing.T) {
	c, s, p := env(t)
	tree, err := Build(p, c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := tree.Analyze(c, s)
	if err != nil {
		t.Fatal(err)
	}
	if a.InsertionMax <= 0 || a.InsertionMin <= 0 {
		t.Fatal("non-positive insertion delay")
	}
	if a.InsertionMax < a.InsertionMin {
		t.Fatal("insertion min/max inverted")
	}
	if a.NominalSkew() < 0 {
		t.Fatal("negative skew")
	}
	if a.WorstSkewSigma <= 0 {
		t.Fatal("no skew sigma")
	}
	if a.MeanStageSigma <= 0 {
		t.Fatal("no stage sigma")
	}
	if a.Violations != 0 {
		t.Errorf("unrestricted tree reports %d violations", a.Violations)
	}
	// Per-node operating data filled.
	for _, n := range tree.Nodes {
		if n.Load <= 0 || n.Delay <= 0 || n.Sigma <= 0 {
			t.Fatalf("node %d not analyzed: %+v", n.ID, n)
		}
	}
}

// TestTuningReducesSkewSigma is the extension experiment in miniature:
// a tree built under sigma-ceiling windows must have a lower worst-case
// skew sigma than the unrestricted tree.
func TestTuningReducesSkewSigma(t *testing.T) {
	c, s, p := env(t)
	baseTree, baseA, err := BuildLegal(p, c, s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Buffers are a low-sigma family (Pelgrom-friendly two-stage cells),
	// so the ceiling must be tight before their windows bind.
	set, _, err := core.NewTuner(s).Tune(core.ParamsFor(core.SigmaCeiling, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Windows = set
	tunedTree, tunedA, err := BuildLegal(p, c, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: %d buffers, skew sigma %.5f; tuned: %d buffers, skew sigma %.5f (violations %d)",
		baseTree.BufferCount(), baseA.WorstSkewSigma,
		tunedTree.BufferCount(), tunedA.WorstSkewSigma, tunedA.Violations)
	if tunedA.WorstSkewSigma >= baseA.WorstSkewSigma {
		t.Errorf("tuned skew sigma %.5f not below baseline %.5f",
			tunedA.WorstSkewSigma, baseA.WorstSkewSigma)
	}
}

func TestWindowViolationDetection(t *testing.T) {
	c, s, p := env(t)
	// Impossible windows: every buffer is out of range.
	set := restrict.NewSet("impossible")
	for _, b := range c.Families["BUF"] {
		set.Put(b.Name, "Y", restrict.Window{MaxLoad: 1e-9, MaxSlew: 1e-9})
	}
	cfg := DefaultConfig()
	cfg.Windows = set
	tree, err := Build(p, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tree.Analyze(c, s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violations == 0 {
		t.Error("impossible windows produced no violations")
	}
}
