// Package cts implements clock tree synthesis — the paper's explicitly
// named future work ("the effectiveness of the method on the clock tree
// in particular needs further investigation"). It builds a geometrically
// balanced buffer tree over the placed flip-flops (recursive median
// bisection, H-tree style), sizes each buffer for its stage load under
// optional tuning windows, and computes the clock skew statistics the
// paper asks about: since local variation is independent per buffer, the
// skew between two sinks accumulates the sigma of the non-shared buffers
// on their two clock paths.
package cts

import (
	"fmt"
	"math"
	"sort"

	"stdcelltune/internal/netlist"
	"stdcelltune/internal/place"
	"stdcelltune/internal/restrict"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
)

// Config controls tree construction.
type Config struct {
	// MaxFanout limits the sinks (buffers or FFs) one buffer drives.
	MaxFanout int
	// RootSlew is the transition at the clock root (ns).
	RootSlew float64
	// CapPerMicron is the clock-wire capacitance per um of Manhattan
	// distance from buffer to sink (pF/um).
	CapPerMicron float64
	// Windows restricts buffer operating points (nil = unrestricted).
	Windows *restrict.Set
}

// DefaultConfig is the standard CTS setup.
func DefaultConfig() Config {
	return Config{MaxFanout: 12, RootSlew: 0.05, CapPerMicron: 0.0002}
}

// Node is one buffer of the clock tree.
type Node struct {
	ID       int
	Spec     *stdcell.Spec
	X, Y     float64
	Parent   *Node
	Children []*Node             // child buffers
	Sinks    []*netlist.Instance // leaf FFs driven directly
	Level    int                 // root = 0

	// Computed by Analyze:
	Load  float64 // capacitive load driven (pF)
	Slew  float64 // input transition (ns)
	Delay float64 // buffer delay at the operating point (ns)
	Sigma float64 // local-variation sigma at the operating point (ns)
}

// Tree is a synthesized clock tree.
type Tree struct {
	Cfg    Config
	Root   *Node
	Nodes  []*Node
	Levels int
}

// BufferCount returns the number of clock buffers.
func (t *Tree) BufferCount() int { return len(t.Nodes) }

// BufferArea returns the total clock-buffer area in um^2.
func (t *Tree) BufferArea() float64 {
	a := 0.0
	for _, n := range t.Nodes {
		a += n.Spec.Area()
	}
	return a
}

// Build synthesizes a clock tree over the placed flip-flops.
func Build(p *place.Placement, cat *stdcell.Catalogue, cfg Config) (*Tree, error) {
	if cfg.MaxFanout < 2 {
		return nil, fmt.Errorf("cts: MaxFanout must be >= 2")
	}
	ffs := p.Nl.Sequentials()
	if len(ffs) == 0 {
		return nil, fmt.Errorf("cts: no sequential cells to clock")
	}
	b := &builder{p: p, cat: cat, cfg: cfg}
	root := b.cluster(ffs, 0)
	t := &Tree{Cfg: cfg, Root: root, Nodes: b.nodes}
	for _, n := range b.nodes {
		if n.Level+1 > t.Levels {
			t.Levels = n.Level + 1
		}
	}
	if err := t.size(cat); err != nil {
		return nil, err
	}
	return t, nil
}

type builder struct {
	p     *place.Placement
	cat   *stdcell.Catalogue
	cfg   Config
	nodes []*Node
}

// cluster recursively bisects the sink set at the median of the wider
// axis until a single buffer can drive it, placing each buffer at its
// cluster centroid.
func (b *builder) cluster(ffs []*netlist.Instance, level int) *Node {
	node := &Node{ID: len(b.nodes), Level: level}
	b.nodes = append(b.nodes, node)
	cx, cy := b.centroid(ffs)
	node.X, node.Y = cx, cy
	if len(ffs) <= b.cfg.MaxFanout {
		node.Sinks = append(node.Sinks, ffs...)
		return node
	}
	// Split along the wider spread axis at the median.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, ff := range ffs {
		x, y := b.p.X[ff.ID], b.p.Y[ff.ID]
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	byX := maxX-minX >= maxY-minY
	sorted := append([]*netlist.Instance(nil), ffs...)
	sort.Slice(sorted, func(i, j int) bool {
		if byX {
			return b.p.X[sorted[i].ID] < b.p.X[sorted[j].ID]
		}
		return b.p.Y[sorted[i].ID] < b.p.Y[sorted[j].ID]
	})
	mid := len(sorted) / 2
	left := b.cluster(sorted[:mid], level+1)
	right := b.cluster(sorted[mid:], level+1)
	left.Parent, right.Parent = node, node
	node.Children = []*Node{left, right}
	return node
}

func (b *builder) centroid(ffs []*netlist.Instance) (float64, float64) {
	var sx, sy float64
	for _, ff := range ffs {
		sx += b.p.X[ff.ID]
		sy += b.p.Y[ff.ID]
	}
	n := float64(len(ffs))
	return sx / n, sy / n
}

// size picks, bottom-up, the smallest buffer per node whose binding load
// limit (max_capacitance or tuning window) covers the stage load.
func (t *Tree) size(cat *stdcell.Catalogue) error {
	bufs := cat.Families["BUF"]
	if len(bufs) == 0 {
		return fmt.Errorf("cts: catalogue has no BUF family")
	}
	// Children must be sized before parents (load depends on child cin):
	// process by descending level.
	nodes := append([]*Node(nil), t.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Level > nodes[j].Level })
	for _, n := range nodes {
		load := t.stageWireCap(n)
		for _, ff := range n.Sinks {
			load += ff.Spec.ClockCap()
		}
		for _, c := range n.Children {
			load += c.Spec.InputCap()
		}
		spec := bufs[len(bufs)-1]
		for _, b := range bufs {
			limit := t.Cfg.Windows.MaxLoad(b.Name, "Y", b.MaxCap())
			if load <= limit {
				spec = b
				break
			}
		}
		n.Spec = spec
		n.Load = load
	}
	return nil
}

// stageWireCap sums the clock-wire capacitance from a buffer to each of
// its direct consumers.
func (t *Tree) stageWireCap(n *Node) float64 {
	cap := 0.0
	for _, c := range n.Children {
		cap += (math.Abs(n.X-c.X) + math.Abs(n.Y-c.Y)) * t.Cfg.CapPerMicron
	}
	// Sinks are near the cluster centroid; approximate each with the
	// cluster radius (distance buffer->sink is small after bisection).
	for range n.Sinks {
		cap += 2 * t.Cfg.CapPerMicron // ~2 um of local routing per leaf
	}
	return cap
}

// BuildLegal synthesizes a tree that respects the configured tuning
// windows by tightening the fanout limit until no buffer operates
// outside its window (restricted libraries force deeper, finer trees —
// exactly the mechanism the data-path tuning uses). Returns the tree and
// its analysis.
func BuildLegal(p *place.Placement, cat *stdcell.Catalogue, stat *statlib.Library, cfg Config) (*Tree, *Analysis, error) {
	var lastTree *Tree
	var lastA *Analysis
	for fo := cfg.MaxFanout; fo >= 2; fo-- {
		c := cfg
		c.MaxFanout = fo
		t, err := Build(p, cat, c)
		if err != nil {
			return nil, nil, err
		}
		a, err := t.Analyze(cat, stat)
		if err != nil {
			return nil, nil, err
		}
		lastTree, lastA = t, a
		if a.Violations == 0 {
			return t, a, nil
		}
	}
	return lastTree, lastA, nil
}

// Analysis is the timing and variation report of a clock tree.
type Analysis struct {
	Tree *Tree
	// InsertionMin/Max are the earliest and latest nominal clock arrival
	// across sinks; their difference is the nominal skew.
	InsertionMin, InsertionMax float64
	// WorstSkewSigma is the largest pairwise local-variation sigma of
	// the skew between any two sinks (independent buffers on the
	// non-shared path segments).
	WorstSkewSigma float64
	// MeanStageSigma averages the per-buffer sigma.
	MeanStageSigma float64
	// Violations counts buffers operating outside their tuning window.
	Violations int
}

// NominalSkew returns max-min insertion delay.
func (a *Analysis) NominalSkew() float64 { return a.InsertionMax - a.InsertionMin }

// Analyze propagates slew/delay down the tree, evaluates each buffer's
// sigma from the statistical library, and computes the skew statistics.
func (t *Tree) Analyze(cat *stdcell.Catalogue, stat *statlib.Library) (*Analysis, error) {
	a := &Analysis{Tree: t, InsertionMin: math.Inf(1), InsertionMax: math.Inf(-1)}
	var walk func(n *Node, slew, insertion, pathVar float64) error
	totalSigma := 0.0
	walk = func(n *Node, slew, insertion, pathVar float64) error {
		n.Slew = slew
		cell := stat.Cell(n.Spec.Name)
		if cell == nil || len(cell.Pins) == 0 {
			return fmt.Errorf("cts: %s missing from statistical library", n.Spec.Name)
		}
		arc := cell.Pins[0].Arcs[0]
		st := arc.Stats(n.Load, slew)
		n.Delay = st.Mu
		n.Sigma = st.Sigma
		totalSigma += st.Sigma
		if t.Cfg.Windows != nil {
			if !t.Cfg.Windows.Allows(n.Spec.Name, "Y", n.Load, slew) {
				a.Violations++
			}
		}
		ins := insertion + st.Mu
		pv := pathVar + st.Sigma*st.Sigma
		outSlew := n.Spec.OutputTransition(n.Load, slew, cat.Corner)
		if len(n.Children) == 0 {
			if ins < a.InsertionMin {
				a.InsertionMin = ins
			}
			if ins > a.InsertionMax {
				a.InsertionMax = ins
			}
			if pv > 0 {
				// Two deepest sinks through different root children share
				// no buffers in the worst case except the root; the
				// conservative pairwise skew sigma doubles the one-path
				// variance minus the shared root contribution.
				rootVar := t.Root.Sigma * t.Root.Sigma
				sk := math.Sqrt(2 * math.Max(pv-rootVar, 0))
				if sk > a.WorstSkewSigma {
					a.WorstSkewSigma = sk
				}
			}
			return nil
		}
		for _, c := range n.Children {
			if err := walk(c, outSlew, ins, pv); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root, t.Cfg.RootSlew, 0, 0); err != nil {
		return nil, err
	}
	if len(t.Nodes) > 0 {
		a.MeanStageSigma = totalSigma / float64(len(t.Nodes))
	}
	return a, nil
}
