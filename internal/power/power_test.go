package power

import (
	"testing"

	"stdcelltune/internal/netlist"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/synth"
)

var cat = stdcell.NewCatalogue(stdcell.Typical)

func synthSmall(t *testing.T, clock float64) *synth.Result {
	t.Helper()
	m, err := rtlgen.Build(rtlgen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize("mcu", m.Net, cat, synth.DefaultOptions(clock))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEstimateBasics(t *testing.T) {
	res := synthSmall(t, 4)
	rep, err := Estimate(res.Netlist, res.Timing, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Switching <= 0 || rep.Internal <= 0 || rep.Leakage <= 0 {
		t.Fatalf("zero power component: %+v", rep)
	}
	if rep.Total() != rep.Switching+rep.Internal+rep.Leakage {
		t.Error("Total inconsistent")
	}
	if rep.SigmaInternal <= 0 || rep.SigmaInternal >= rep.Internal {
		t.Errorf("power sigma %g implausible vs internal %g", rep.SigmaInternal, rep.Internal)
	}
	if rep.MeanActivity <= 0 || rep.MeanActivity > 1 {
		t.Errorf("mean activity %g out of range", rep.MeanActivity)
	}
	t.Logf("power: switching %.3f + internal %.3f + leakage %.3f = %.3f mW (sigma %.4f, activity %.3f)",
		rep.Switching, rep.Internal, rep.Leakage, rep.Total(), rep.SigmaInternal, rep.MeanActivity)
}

func TestEstimateDeterministic(t *testing.T) {
	res := synthSmall(t, 4)
	a, err := Estimate(res.Netlist, res.Timing, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(res.Netlist, res.Timing, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != b.Total() || a.MeanActivity != b.MeanActivity {
		t.Error("estimation not deterministic")
	}
}

// TestFrequencyScaling: halving the clock period doubles dynamic power
// for the same activity (leakage unchanged).
func TestFrequencyScaling(t *testing.T) {
	res := synthSmall(t, 4)
	fast, err := Estimate(res.Netlist, res.Timing, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Estimate(res.Netlist, res.Timing, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	ratio := fast.Switching / slow.Switching
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("switching ratio %g want 2", ratio)
	}
	if fast.Leakage != slow.Leakage {
		t.Error("leakage must not depend on frequency")
	}
}

// TestStimulusScaling: more input activity means more dynamic power.
func TestStimulusScaling(t *testing.T) {
	res := synthSmall(t, 4)
	quiet := DefaultConfig(4)
	quiet.InputToggleProb = 0.02
	busy := DefaultConfig(4)
	busy.InputToggleProb = 0.5
	q, err := Estimate(res.Netlist, res.Timing, quiet)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(res.Netlist, res.Timing, busy)
	if err != nil {
		t.Fatal(err)
	}
	if b.Switching <= q.Switching {
		t.Errorf("busy switching %g not above quiet %g", b.Switching, q.Switching)
	}
	if b.MeanActivity <= q.MeanActivity {
		t.Error("activity did not rise with stimulus")
	}
}

func TestEstimateErrors(t *testing.T) {
	res := synthSmall(t, 4)
	if _, err := Estimate(res.Netlist, res.Timing, Config{Cycles: 1, ClockPeriod: 4}); err == nil {
		t.Error("1 cycle accepted")
	}
	if _, err := Estimate(res.Netlist, res.Timing, Config{Cycles: 16, ClockPeriod: 0}); err == nil {
		t.Error("zero clock accepted")
	}
}

func TestLeakageByFamily(t *testing.T) {
	res := synthSmall(t, 4)
	doms := LeakageByFamily(res.Netlist)
	if len(doms) < 5 {
		t.Fatalf("only %d families", len(doms))
	}
	total := 0.0
	cells := 0
	for i, d := range doms {
		if d.Leakage <= 0 || d.Cells <= 0 {
			t.Errorf("family %s empty", d.Family)
		}
		if i > 0 && d.Family < doms[i-1].Family {
			t.Error("families not sorted")
		}
		total += d.Leakage
		cells += d.Cells
	}
	if cells != len(res.Netlist.Instances) {
		t.Errorf("breakdown covers %d cells want %d", cells, len(res.Netlist.Instances))
	}
	rep, err := Estimate(res.Netlist, res.Timing, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if diff := total - rep.Leakage; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("family breakdown %g disagrees with total %g", total, rep.Leakage)
	}
}

// TestBiggerCellsBurnMore: an upsized copy of the design must leak more
// and spend more internal power.
func TestBiggerCellsBurnMore(t *testing.T) {
	res := synthSmall(t, 4)
	base, err := Estimate(res.Netlist, res.Timing, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range res.Netlist.Instances {
		fam := cat.Families[inst.Spec.Family]
		if err := res.Netlist.Resize(inst, fam[len(fam)-1]); err != nil {
			t.Fatal(err)
		}
	}
	timing, err := sta.Analyze(res.Netlist, res.Opts.STA)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Estimate(res.Netlist, timing, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if big.Leakage <= base.Leakage {
		t.Errorf("max-size leakage %g not above baseline %g", big.Leakage, base.Leakage)
	}
	if big.Internal <= base.Internal {
		t.Errorf("max-size internal %g not above baseline %g", big.Internal, base.Internal)
	}
	// But the relative power sigma shrinks (Pelgrom on energy).
	if big.SigmaInternal/big.Internal >= base.SigmaInternal/base.Internal {
		t.Errorf("relative power sigma did not shrink with device size")
	}
	_ = netlist.Sink{} // keep the import for the helper types
}
