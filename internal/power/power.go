// Package power estimates the power of a synthesized design — the
// library-file dimension the paper mentions but does not evaluate
// (Section II), built out so the power cost of variability tolerance can
// be measured: tuned designs use bigger, lower-sigma cells, which burn
// more leakage and internal power.
//
// Dynamic power comes from activity-based estimation: the mapped netlist
// is simulated with random input vectors, per-net toggle rates feed
// 0.5*C*V^2*alpha*f switching power plus LUT-interpolated internal
// energy per transition; leakage sums the per-cell static numbers.
// The local-variation sigma of the switching power aggregates the
// per-cell Pelgrom power mismatch (independent cells, RSS).
package power

import (
	"fmt"
	"math"
	"sort"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/netlist"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/stdcell"
)

// Config controls the estimation.
type Config struct {
	// Cycles of random stimulus for activity extraction.
	Cycles int
	// Seed for the stimulus.
	Seed int64
	// ClockPeriod in ns; switching power scales with 1/period.
	ClockPeriod float64
	// InputToggleProb is the per-cycle probability an input flips.
	InputToggleProb float64
}

// DefaultConfig estimates over 256 cycles.
func DefaultConfig(clock float64) Config {
	return Config{Cycles: 256, Seed: 1, ClockPeriod: clock, InputToggleProb: 0.25}
}

// Report is the power breakdown of a design, all in mW.
type Report struct {
	Cfg Config

	Switching float64 // net charging: 0.5*C*V^2*alpha*f
	Internal  float64 // cell internal energy per output transition
	Leakage   float64 // static
	// SigmaInternal is the local-variation standard deviation of the
	// internal component (independent per-cell mismatch, RSS).
	SigmaInternal float64

	// MeanActivity is the average per-net toggle rate (toggles/cycle).
	MeanActivity float64
}

// Total returns switching + internal + leakage.
func (r *Report) Total() float64 { return r.Switching + r.Internal + r.Leakage }

// Estimate runs activity extraction and sums the components. The timing
// result supplies per-net loads and slews (the power LUT operating
// points).
func Estimate(nl *netlist.Netlist, timing *sta.Result, cfg Config) (*Report, error) {
	if cfg.Cycles < 2 {
		return nil, fmt.Errorf("power: need at least 2 cycles")
	}
	if cfg.ClockPeriod <= 0 {
		return nil, fmt.Errorf("power: non-positive clock period")
	}
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		return nil, err
	}
	rng := dist.NewRNG(cfg.Seed)
	toggles := make(map[int]int)
	prev := make(map[int]bool)
	inputs := make(map[string]bool)
	var names []string
	for _, n := range nl.PrimaryInputs() {
		names = append(names, n.Name)
	}
	sort.Strings(names) // deterministic stimulus order
	for _, name := range names {
		inputs[name] = rng.Float64() < 0.5
	}
	for cyc := 0; cyc < cfg.Cycles; cyc++ {
		for _, name := range names {
			if rng.Float64() < cfg.InputToggleProb {
				inputs[name] = !inputs[name]
			}
		}
		if _, err := sim.Step(inputs); err != nil {
			return nil, err
		}
		for _, n := range nl.Nets {
			v := sim.NetValue(n)
			if cyc > 0 && v != prev[n.ID] {
				toggles[n.ID]++
			}
			prev[n.ID] = v
		}
	}
	denom := float64(cfg.Cycles - 1)
	freqGHz := 1.0 / cfg.ClockPeriod // 1/ns = GHz
	v := nl.Cat.Corner.Voltage()
	rep := &Report{Cfg: cfg}
	var actSum float64
	var varInternal float64
	for _, n := range nl.Nets {
		alpha := float64(toggles[n.ID]) / denom
		actSum += alpha
		if n.ID >= len(timing.Load) {
			continue
		}
		load := timing.Load[n.ID]
		// Net switching power: pJ * GHz = mW.
		rep.Switching += 0.5 * load * v * v * alpha * freqGHz
		// Internal energy of the driving cell at its operating point.
		if n.Driver != nil {
			spec := n.Driver.Spec
			slew := worstInputSlew(n.Driver, timing)
			e := spec.InternalEnergy(load, slew, nl.Cat.Corner)
			rep.Internal += e * alpha * freqGHz
			sg := spec.PowerSigma(load, slew, nl.Cat.Corner) * alpha * freqGHz
			varInternal += sg * sg
		}
	}
	// Leakage is activity-independent.
	for _, inst := range nl.Instances {
		rep.Leakage += inst.Spec.LeakagePower(nl.Cat.Corner) * 1e-6 // nW -> mW
	}
	rep.SigmaInternal = math.Sqrt(varInternal)
	if len(nl.Nets) > 0 {
		rep.MeanActivity = actSum / float64(len(nl.Nets))
	}
	return rep, nil
}

func worstInputSlew(inst *netlist.Instance, timing *sta.Result) float64 {
	worst := timing.Cfg.InputSlew
	for _, pin := range inst.Spec.Inputs {
		if n := inst.In[pin]; n != nil && n.ID < len(timing.Slew) && timing.Slew[n.ID] > worst {
			worst = timing.Slew[n.ID]
		}
	}
	return worst
}

// CellDomain breaks the report down per cell family.
type CellDomain struct {
	Family  string
	Leakage float64 // mW
	Cells   int
}

// LeakageByFamily returns the leakage breakdown sorted by family name.
func LeakageByFamily(nl *netlist.Netlist) []CellDomain {
	m := make(map[string]*CellDomain)
	for _, inst := range nl.Instances {
		fam := stdcell.FamilyOf(inst.Spec.Name)
		d := m[fam]
		if d == nil {
			d = &CellDomain{Family: fam}
			m[fam] = d
		}
		d.Leakage += inst.Spec.LeakagePower(nl.Cat.Corner) * 1e-6
		d.Cells++
	}
	out := make([]CellDomain, 0, len(m))
	for _, d := range m {
		out = append(out, *d)
	}
	sortDomains(out)
	return out
}

func sortDomains(ds []CellDomain) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Family < ds[j-1].Family; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
