package loadreport

import (
	"path/filepath"
	"strings"
	"testing"
)

func goodReport() *Report {
	return &Report{
		Schema: Schema, Target: "http://127.0.0.1:1", Mode: "open",
		RPS: 5, Concurrency: 2, DurationSec: 10, ColdFrac: 0.3,
		Requests: 50, Succeeded: 45, Failed: 1,
		Rejected:      map[string]int64{"429": 3, "503": 1},
		ThroughputRPS: 4.5,
		Overall:       LatencyStats{Count: 45, MeanMS: 20, P50MS: 5, P90MS: 40, P99MS: 80, P999MS: 90, MaxMS: 95},
		Warm:          LatencyStats{Count: 30, MeanMS: 2, P50MS: 1, P90MS: 3, P99MS: 5, P999MS: 6, MaxMS: 7},
		Cold:          LatencyStats{Count: 15, MeanMS: 60, P50MS: 50, P90MS: 70, P99MS: 85, P999MS: 90, MaxMS: 95},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := goodReport().Validate(); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"wrong schema", func(r *Report) { r.Schema = "stdcelltune-load/0" }, "schema"},
		{"bad mode", func(r *Report) { r.Mode = "sideways" }, "mode"},
		{"no target", func(r *Report) { r.Target = "" }, "target"},
		{"zero duration", func(r *Report) { r.DurationSec = 0 }, "duration"},
		{"coldfrac range", func(r *Report) { r.ColdFrac = 1.5 }, "cold_fraction"},
		{"zero requests", func(r *Report) { r.Requests = 0 }, "requests"},
		{"accounting", func(r *Report) { r.Failed = 2 }, "!="},
		{"no successes", func(r *Report) { r.Succeeded = 0; r.Failed = 46 }, "succeeded"},
		{"zero throughput", func(r *Report) { r.ThroughputRPS = 0 }, "throughput"},
		{"no warm", func(r *Report) { r.Warm.Count = 0; r.Overall.Count = 15 }, "warm"},
		{"no cold", func(r *Report) { r.Cold.Count = 0; r.Overall.Count = 30 }, "cold"},
		{"count split", func(r *Report) { r.Overall.Count = 44 }, "overall count"},
		{"percentile inversion", func(r *Report) { r.Cold.P99MS = 1 }, "monotone"},
		{"max below p999", func(r *Report) { r.Warm.MaxMS = 0.1 }, "max"},
		{"empty target entry", func(r *Report) { r.Targets = []string{"http://a", ""} }, "targets[1]"},
		{"per-target without targets", func(r *Report) {
			r.PerTarget = map[string]int64{"http://a": 50}
		}, "per_target_requests"},
		{"per-target sum", func(r *Report) {
			r.Targets = []string{"http://a", "http://b"}
			r.PerTarget = map[string]int64{"http://a": 25, "http://b": 24}
		}, "per-target"},
	}
	for _, tc := range cases {
		r := goodReport()
		tc.mutate(r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateFleet: a fleet report with targets and exact per-target
// accounting passes.
func TestValidateFleet(t *testing.T) {
	r := goodReport()
	r.Target = "http://a,http://b"
	r.Targets = []string{"http://a", "http://b"}
	r.PerTarget = map[string]int64{"http://a": 25, "http://b": 25}
	if err := r.Validate(); err != nil {
		t.Fatalf("fleet report rejected: %v", err)
	}
}

func TestReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	want := goodReport()
	if err := want.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Requests != want.Requests || got.Warm.Count != want.Warm.Count || got.Rejected["429"] != 3 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if _, err := Read(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file read without error")
	}
}
