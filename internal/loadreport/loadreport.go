// Package loadreport defines the versioned JSON document the stcload
// harness emits — stdcelltune-load/1 — and its validation. The schema
// is API surface the same way the job document is: `obscheck
// -loadreport` gates CI on it, and checked-in baselines (LOAD_PR8.json)
// are read back by humans and tools alike.
package loadreport

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema is the versioned identifier of the load-report document.
const Schema = "stdcelltune-load/1"

// LatencyStats summarizes one latency population (all requests, warm
// hits, cold misses) in milliseconds, quantiles from the HDR histogram
// (<=1/32 relative error).
type LatencyStats struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p99_9_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// monotone reports whether the quantiles are ordered; an inversion
// means the histogram or the merge is broken, so Validate fails on it.
func (s LatencyStats) monotone() bool {
	return s.P50MS <= s.P90MS && s.P90MS <= s.P99MS && s.P99MS <= s.P999MS
}

// Report is the stdcelltune-load/1 document: one load-generation run
// against a live stcd, with the mix, the error breakdown and the
// latency percentiles per cache-outcome class.
type Report struct {
	Schema string `json:"schema"`
	Target string `json:"target"` // base URL of the daemon under load (comma-joined for a fleet)
	// Targets lists the individual daemons of a fleet run (stcload
	// -targets). Requests round-robin across them and the latency blocks
	// below are fleet aggregates: per-target HDR snapshots merged
	// bucketwise before quantiling, so the percentiles describe the
	// combined population rather than an average of averages.
	Targets     []string         `json:"targets,omitempty"`
	PerTarget   map[string]int64 `json:"per_target_requests,omitempty"`
	Mode        string           `json:"mode"`          // "open" (fixed-RPS) or "closed" (fixed-concurrency)
	RPS         float64          `json:"rps,omitempty"` // open-loop target rate
	Concurrency int              `json:"concurrency,omitempty"`
	DurationSec float64          `json:"duration_sec"`
	ColdFrac    float64          `json:"cold_fraction"`

	Requests  int64            `json:"requests"`
	Succeeded int64            `json:"succeeded"`
	Failed    int64            `json:"failed"`
	Rejected  map[string]int64 `json:"rejected,omitempty"` // HTTP status -> count (429/503 backpressure)

	ThroughputRPS float64 `json:"throughput_rps"`

	// Overall covers every completed request; Warm and Cold split by the
	// observed cache outcome (hit vs miss/shared). In open-loop mode all
	// latencies are measured from the scheduled send time, so queueing
	// delay from a stalled generator is charged to the service
	// (coordinated-omission-safe).
	Overall LatencyStats `json:"overall"`
	Warm    LatencyStats `json:"warm"`
	Cold    LatencyStats `json:"cold"`
}

// Validate checks the structural contract CI relies on: right schema,
// non-trivial sample counts in both cache classes, accounting that adds
// up, and monotone percentiles.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("loadreport: schema %q, want %q", r.Schema, Schema)
	}
	if r.Mode != "open" && r.Mode != "closed" {
		return fmt.Errorf("loadreport: mode %q, want open or closed", r.Mode)
	}
	if r.Target == "" {
		return fmt.Errorf("loadreport: empty target")
	}
	for i, tgt := range r.Targets {
		if tgt == "" {
			return fmt.Errorf("loadreport: targets[%d] is empty", i)
		}
	}
	if len(r.PerTarget) > 0 {
		if len(r.Targets) == 0 {
			return fmt.Errorf("loadreport: per_target_requests without targets")
		}
		var perTarget int64
		for tgt, n := range r.PerTarget {
			if n < 0 {
				return fmt.Errorf("loadreport: negative per-target count %d for %s", n, tgt)
			}
			perTarget += n
		}
		if perTarget != r.Requests {
			return fmt.Errorf("loadreport: per-target requests sum %d != requests %d", perTarget, r.Requests)
		}
	}
	if r.DurationSec <= 0 {
		return fmt.Errorf("loadreport: duration_sec %g not positive", r.DurationSec)
	}
	if r.ColdFrac < 0 || r.ColdFrac > 1 {
		return fmt.Errorf("loadreport: cold_fraction %g outside [0,1]", r.ColdFrac)
	}
	if r.Requests <= 0 {
		return fmt.Errorf("loadreport: requests %d, want > 0", r.Requests)
	}
	var rejected int64
	for status, n := range r.Rejected {
		if n < 0 {
			return fmt.Errorf("loadreport: negative rejection count %d for status %s", n, status)
		}
		rejected += n
	}
	if r.Succeeded+r.Failed+rejected != r.Requests {
		return fmt.Errorf("loadreport: succeeded %d + failed %d + rejected %d != requests %d",
			r.Succeeded, r.Failed, rejected, r.Requests)
	}
	if r.Succeeded <= 0 {
		return fmt.Errorf("loadreport: no succeeded requests")
	}
	if r.ThroughputRPS <= 0 {
		return fmt.Errorf("loadreport: throughput_rps %g not positive", r.ThroughputRPS)
	}
	if r.Warm.Count <= 0 {
		return fmt.Errorf("loadreport: no warm (cache-hit) samples")
	}
	if r.Cold.Count <= 0 {
		return fmt.Errorf("loadreport: no cold (cache-miss) samples")
	}
	if r.Overall.Count != r.Warm.Count+r.Cold.Count {
		return fmt.Errorf("loadreport: overall count %d != warm %d + cold %d",
			r.Overall.Count, r.Warm.Count, r.Cold.Count)
	}
	for _, c := range []struct {
		name  string
		stats LatencyStats
	}{{"overall", r.Overall}, {"warm", r.Warm}, {"cold", r.Cold}} {
		if !c.stats.monotone() {
			return fmt.Errorf("loadreport: %s percentiles not monotone: %+v", c.name, c.stats)
		}
		if c.stats.MaxMS < c.stats.P999MS {
			return fmt.Errorf("loadreport: %s max %g below p99.9 %g", c.name, c.stats.MaxMS, c.stats.P999MS)
		}
	}
	return nil
}

// Read loads and validates a report file.
func Read(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("loadreport: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// Write serializes the report (indented, trailing newline) to path.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
