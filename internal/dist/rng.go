package dist

import "math/rand"

// RNG is a deterministic random source for Monte Carlo characterization
// and path simulation. All stochastic stages of the reproduction draw
// from an RNG seeded from the experiment configuration so every table and
// figure regenerates bit-identically.
type RNG struct {
	r    *rand.Rand
	seed int64
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Fork derives an independent child generator from this one. Children
// created in the same order are identical across runs, which lets
// per-cell / per-instance sampling be order-independent of unrelated
// draws.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// ForkNamed derives a child generator whose stream depends only on the
// parent's seed and the given name — not on how much of the parent's
// stream has been consumed — so adding a new named consumer does not
// shift the streams of existing ones.
func (g *RNG) ForkNamed(name string) *RNG {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= int64(name[i])
		h *= 1099511628211
	}
	return NewRNG(h ^ g.seed)
}

// ForkNamedBytes is ForkNamed for a key assembled in a caller-owned
// byte buffer, hashing the identical FNV-1a stream: for any name,
// ForkNamedBytes([]byte(name)) derives the same child as
// ForkNamed(name). Hot paths (the per-(instance, cell) mismatch draws)
// build keys with strconv.AppendInt into a stack buffer and fork here
// without the fmt.Sprintf allocation. The buffer is not retained.
func (g *RNG) ForkNamedBytes(name []byte) *RNG {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= int64(name[i])
		h *= 1099511628211
	}
	return NewRNG(h ^ g.seed)
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Normal returns a sample from N(mu, sigma).
func (g *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// StandardNormal returns a sample from N(0, 1).
func (g *RNG) StandardNormal() float64 { return g.r.NormFloat64() }

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }
