package dist

import "math"

// Welford is a streaming mean/variance accumulator implementing
// Welford's online algorithm with the Chan et al. parallel merge. It
// consumes one sample at a time in O(1) memory, so folds over N≫50
// Monte-Carlo instances never materialize an N-length buffer, and
// shards accumulated on different workers combine exactly like one
// sequential stream (up to float rounding).
//
// Float contract (documented because the statistical library's
// bit-identity guarantee depends on knowing it precisely):
//
//   - Add maintains mean and the centered second moment M2 via
//     d := x − mean; mean += d/n; M2 += d·(x − mean). Both are free of
//     the catastrophic cancellation that the one-pass E[x²]−mean²
//     formula suffers on near-constant data: relative error stays
//     O(n·eps) in the variance regardless of the mean's magnitude.
//   - The results are NOT bitwise-identical to the two-pass
//     Mean/StdDev formulas: the division-per-sample rounding differs
//     from summing first and dividing once. Agreement is to a few ulps
//     of relative error. Consumers pinned to the recorded two-pass
//     numbers (statlib.Build, the zero-flag pipeline) therefore keep
//     the two-pass accumulation order and stream it without a buffer;
//     Welford is for single-pass consumers — streamed characterization
//     (statlib.BuildStream) and future sharded folds — whose outputs
//     are tolerance-, not bit-, specified.
//   - Variance is the unbiased (N−1) estimator, matching Variance;
//     fewer than two samples report zero variance, matching the
//     package's slice-based functions.
//   - NaN or ±Inf samples poison the accumulator (mean and M2 become
//     non-finite), exactly as they would a slice sum; callers that
//     filter bad samples must do so before Add.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into this one (Chan et al.), as if
// this accumulator had also consumed every sample o consumed.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	// w.n updates last: the mean update above needs the pre-merge count.
	w.n = n
}

// N returns the number of samples folded in.
func (w Welford) N() int64 { return w.n }

// Mean returns the running sample mean (0 before any sample).
func (w Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased (N−1) sample variance; fewer than two
// samples have zero variance, matching Variance on slices. The centered
// second moment is non-negative in exact arithmetic; float rounding on
// near-constant data can leave it a few ulps below zero, which is
// clamped so Variance (and StdDev via its square root) never report a
// negative or NaN spread for finite inputs.
func (w Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	v := w.m2 / float64(w.n-1)
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the unbiased sample standard deviation.
func (w Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Normal fits a Normal to the accumulated samples, the streaming
// counterpart of Estimate.
func (w Welford) Normal() Normal { return Normal{Mu: w.Mean(), Sigma: w.StdDev()} }

// WelfordState is the serializable snapshot of a Welford accumulator:
// the exact (count, mean, M2) triple, nothing derived. It is the wire
// form of the stdcelltune-shard/1 partial-moments documents — a worker
// folds its shard, ships State(), and the coordinator rebuilds the
// accumulator with WelfordFromState and Merges in fixed shard order.
// The round trip is bitwise exact: State/WelfordFromState copy the
// three fields without arithmetic, and encoding/json round-trips
// float64 values exactly.
type WelfordState struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// State snapshots the accumulator for serialization.
func (w Welford) State() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2}
}

// WelfordFromState rebuilds an accumulator from a snapshot. For any w,
// WelfordFromState(w.State()) == w bitwise.
func WelfordFromState(s WelfordState) Welford {
	return Welford{n: s.N, mean: s.Mean, m2: s.M2}
}
