package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Errorf("Mean=%g want 5", m)
	}
	// Unbiased variance of this classic set is 32/7.
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance=%g want %g", v, 32.0/7.0)
	}
	if s := StdDev(xs); !almostEq(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev=%g", s)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Error("degenerate inputs must give zero moments")
	}
}

func TestCoefficientOfVariationPaperFig1(t *testing.T) {
	// Fig. 1: (mu=0.5, sigma=0.01) and (mu=5, sigma=0.1) both have
	// variability 0.02 — the paper's argument for using sigma instead.
	left := Normal{Mu: 0.5, Sigma: 0.01}
	right := Normal{Mu: 5, Sigma: 0.1}
	if v := left.Variability(); !almostEq(v, 0.02, 1e-12) {
		t.Errorf("left variability %g want 0.02", v)
	}
	if v := right.Variability(); !almostEq(v, 0.02, 1e-12) {
		t.Errorf("right variability %g want 0.02", v)
	}
	if left.Sigma >= right.Sigma {
		t.Error("sigma metric must distinguish the two distributions")
	}
	if !math.IsInf(CoefficientOfVariation(0, 1), 1) {
		t.Error("zero mean nonzero sigma should be +Inf")
	}
	if CoefficientOfVariation(0, 0) != 0 {
		t.Error("0/0 should be 0")
	}
}

func TestNormalPDFCDF(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	if p := n.PDF(0); !almostEq(p, 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Errorf("standard normal PDF(0)=%g", p)
	}
	if c := n.CDF(0); !almostEq(c, 0.5, 1e-12) {
		t.Errorf("CDF(0)=%g want 0.5", c)
	}
	if c := n.CDF(1.96); !almostEq(c, 0.975, 1e-3) {
		t.Errorf("CDF(1.96)=%g want ~0.975", c)
	}
	d := Normal{Mu: 2, Sigma: 0}
	if d.CDF(1.9) != 0 || d.CDF(2.1) != 1 {
		t.Error("degenerate CDF must be a step at mu")
	}
	if d.PDF(3) != 0 || !math.IsInf(d.PDF(2), 1) {
		t.Error("degenerate PDF must be a spike at mu")
	}
}

func TestThreeSigmaUpper(t *testing.T) {
	n := Normal{Mu: 2.0, Sigma: 0.05}
	if got := n.ThreeSigmaUpper(); !almostEq(got, 2.15, 1e-12) {
		t.Errorf("mu+3sigma=%g want 2.15", got)
	}
}

func TestEstimateRecovers(t *testing.T) {
	g := NewRNG(123)
	want := Normal{Mu: 3.5, Sigma: 0.25}
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = g.Normal(want.Mu, want.Sigma)
	}
	got := Estimate(samples)
	if !almostEq(got.Mu, want.Mu, 0.01) {
		t.Errorf("estimated mu %g want %g", got.Mu, want.Mu)
	}
	if !almostEq(got.Sigma, want.Sigma, 0.01) {
		t.Errorf("estimated sigma %g want %g", got.Sigma, want.Sigma)
	}
}

func TestConvolvePathRSS(t *testing.T) {
	cells := []Normal{
		{Mu: 1, Sigma: 0.3},
		{Mu: 2, Sigma: 0.4},
	}
	p, err := ConvolvePath(cells)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p.Mu, 3, 1e-12) {
		t.Errorf("path mean %g want 3", p.Mu)
	}
	if !almostEq(p.Sigma, 0.5, 1e-12) { // 3-4-5 triangle
		t.Errorf("path sigma %g want 0.5", p.Sigma)
	}
	if _, err := ConvolvePath(nil); err == nil {
		t.Error("empty path must error")
	}
}

func TestConvolveCorrelatedEndpoints(t *testing.T) {
	cells := []Normal{{Mu: 1, Sigma: 0.2}, {Mu: 1, Sigma: 0.3}, {Mu: 1, Sigma: 0.5}}
	// rho = 1: sigmas add linearly.
	p1, err := ConvolvePathCorrelated(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p1.Sigma, 1.0, 1e-12) {
		t.Errorf("rho=1 sigma %g want 1.0", p1.Sigma)
	}
	// rho = 0 matches ConvolvePath.
	p0, _ := ConvolvePathCorrelated(cells, 0)
	pr, _ := ConvolvePath(cells)
	if !almostEq(p0.Sigma, pr.Sigma, 1e-12) {
		t.Errorf("rho=0 disagrees with RSS: %g vs %g", p0.Sigma, pr.Sigma)
	}
	if _, err := ConvolvePathCorrelated(cells, 1.5); err == nil {
		t.Error("rho outside [-1,1] must error")
	}
}

// Property: for rho in [0,1], path sigma is monotone in rho and bounded by
// the RSS (rho=0) and linear-sum (rho=1) extremes.
func TestConvolveCorrelationMonotoneProperty(t *testing.T) {
	f := func(r8 uint8, s1, s2, s3 uint8) bool {
		rho := float64(r8) / 255
		cells := []Normal{
			{Mu: 1, Sigma: float64(s1)/255 + 0.01},
			{Mu: 1, Sigma: float64(s2)/255 + 0.01},
			{Mu: 1, Sigma: float64(s3)/255 + 0.01},
		}
		p, err := ConvolvePathCorrelated(cells, rho)
		if err != nil {
			return false
		}
		lo, _ := ConvolvePathCorrelated(cells, 0)
		hi, _ := ConvolvePathCorrelated(cells, 1)
		return p.Sigma >= lo.Sigma-1e-12 && p.Sigma <= hi.Sigma+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolvePathMatrix(t *testing.T) {
	cells := []Normal{{Mu: 1, Sigma: 0.3}, {Mu: 2, Sigma: 0.4}}
	id := [][]float64{{1, 0}, {0, 1}}
	p, err := ConvolvePathMatrix(cells, id)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p.Sigma, 0.5, 1e-12) {
		t.Errorf("identity matrix sigma %g want 0.5", p.Sigma)
	}
	full := [][]float64{{1, 1}, {1, 1}}
	pf, err := ConvolvePathMatrix(cells, full)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(pf.Sigma, 0.7, 1e-12) {
		t.Errorf("full correlation sigma %g want 0.7", pf.Sigma)
	}
	if _, err := ConvolvePathMatrix(cells, [][]float64{{1}}); err == nil {
		t.Error("dimension mismatch must error")
	}
	if _, err := ConvolvePathMatrix(cells, [][]float64{{1, 0}, {0}}); err == nil {
		t.Error("ragged matrix must error")
	}
	if _, err := ConvolvePathMatrix(nil, nil); err == nil {
		t.Error("empty cells must error")
	}
}

// Property: matrix convolution with a constant off-diagonal rho equals the
// scalar-rho convolution (eq. 8 specializes to eq. 9).
func TestMatrixMatchesScalarRhoProperty(t *testing.T) {
	f := func(r8 uint8, sigs [4]uint8) bool {
		rho := float64(r8) / 255
		cells := make([]Normal, 4)
		for i, s := range sigs {
			cells[i] = Normal{Mu: float64(i), Sigma: float64(s)/255 + 0.01}
		}
		m := make([][]float64, 4)
		for i := range m {
			m[i] = make([]float64, 4)
			for j := range m[i] {
				if i == j {
					m[i][j] = 1
				} else {
					m[i][j] = rho
				}
			}
		}
		a, err1 := ConvolvePathMatrix(cells, m)
		b, err2 := ConvolvePathCorrelated(cells, rho)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEq(a.Sigma, b.Sigma, 1e-9) && almostEq(a.Mu, b.Mu, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveDesign(t *testing.T) {
	paths := []Normal{{Mu: 1, Sigma: 3}, {Mu: 2, Sigma: 4}}
	d, err := ConvolveDesign(paths)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d.Mu, 3, 1e-12) || !almostEq(d.Sigma, 5, 1e-12) {
		t.Errorf("design %+v want mu=3 sigma=5", d)
	}
	if _, err := ConvolveDesign(nil); err == nil {
		t.Error("empty design must error")
	}
}

func TestNormalSum(t *testing.T) {
	a := Normal{Mu: 1, Sigma: 3}
	b := Normal{Mu: 2, Sigma: 4}
	s := a.Sum(b)
	if !almostEq(s.Mu, 3, 1e-12) || !almostEq(s.Sigma, 5, 1e-12) {
		t.Errorf("Sum=%+v", s)
	}
}

// Property: identical-cell paths follow the sqrt(n) law of eq. (10): a
// path of n identical cells has sigma = sqrt(n) * cellSigma.
func TestSqrtNLawProperty(t *testing.T) {
	f := func(nRaw uint8, sRaw uint8) bool {
		n := int(nRaw%30) + 1
		sig := float64(sRaw)/255 + 0.01
		cells := make([]Normal, n)
		for i := range cells {
			cells[i] = Normal{Mu: 1, Sigma: sig}
		}
		p, err := ConvolvePath(cells)
		if err != nil {
			return false
		}
		return almostEq(p.Sigma, math.Sqrt(float64(n))*sig, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	fa, fb := NewRNG(99).ForkNamed("x"), NewRNG(99).ForkNamed("x")
	if fa.Float64() != fb.Float64() {
		t.Fatal("same-named forks diverged")
	}
	if NewRNG(99).ForkNamed("x").Float64() == NewRNG(99).ForkNamed("y").Float64() {
		t.Fatal("differently-named forks should (almost surely) differ")
	}
}

func TestForkNamedIgnoresConsumption(t *testing.T) {
	a := NewRNG(5)
	a.Float64()
	a.Float64()
	b := NewRNG(5)
	if a.ForkNamed("cell").Float64() != b.ForkNamed("cell").Float64() {
		t.Fatal("ForkNamed must not depend on parent stream position")
	}
}

func TestRNGHelpers(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 100; i++ {
		if v := g.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	p := g.Perm(5)
	seen := make(map[int]bool)
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Perm not a permutation: %v", p)
	}
	if g.StandardNormal() == g.StandardNormal() {
		t.Error("successive normals identical (vanishingly unlikely)")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d count %d want 1", i, c)
		}
	}
	h.Add(-5) // clamps to first bin
	h.Add(50) // clamps to last bin
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("clamping failed: %v", h.Counts)
	}
	if h.N != 12 {
		t.Errorf("N=%d want 12", h.N)
	}
	if c := h.BinCenter(0); !almostEq(c, 0.5, 1e-12) {
		t.Errorf("BinCenter(0)=%g want 0.5", c)
	}
}

func TestHistogramOf(t *testing.T) {
	h, err := HistogramOf([]float64{1, 2, 3, 4, 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 5 {
		t.Errorf("N=%d", h.N)
	}
	if h.Lo != 1 || h.Hi != 5 {
		t.Errorf("range [%g,%g] want [1,5]", h.Lo, h.Hi)
	}
	// Degenerate all-equal samples.
	d, err := HistogramOf([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 3 {
		t.Errorf("degenerate N=%d", d.N)
	}
	e, err := HistogramOf(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.N != 0 {
		t.Errorf("empty N=%d", e.N)
	}
}

func TestHistogramInvalidInputs(t *testing.T) {
	// Input validation returns errors, never panics (robustness PR).
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("bins=0 must error")
	}
	if _, err := NewHistogram(5, 5, 4); err == nil {
		t.Error("empty range must error")
	}
	if _, err := NewHistogram(7, 2, 4); err == nil {
		t.Error("inverted range must error")
	}
	if _, err := NewHistogram(math.NaN(), 1, 4); err == nil {
		t.Error("NaN bound must error")
	}
	if _, err := HistogramOf([]float64{1, math.NaN(), 3}, 4); err == nil {
		t.Error("NaN sample must error")
	}
	if _, err := HistogramOf([]float64{1, 2, 3}, -1); err == nil {
		t.Error("negative bins must error")
	}
}

func TestHistogramModeAndRender(t *testing.T) {
	h, err := NewHistogram(0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1.5)
	h.Add(1.6)
	h.Add(0.5)
	if m := h.Mode(); !almostEq(m, 1.5, 1e-12) {
		t.Errorf("Mode=%g want 1.5", m)
	}
	r := h.Render(20)
	if len(r) == 0 {
		t.Error("empty render")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0=%g", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1=%g", q)
	}
	if q := Quantile(xs, 0.5); !almostEq(q, 3, 1e-12) {
		t.Errorf("median=%g want 3", q)
	}
	if q := Quantile(xs, 0.25); !almostEq(q, 2, 1e-12) {
		t.Errorf("q25=%g want 2", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated input")
	}
}
