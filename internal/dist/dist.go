// Package dist provides the probability and statistics substrate of the
// reproduction: descriptive statistics, the coefficient-of-variation
// metric the paper argues against (Section III, Fig. 1), deterministic
// Gaussian sampling for Monte Carlo characterization, histograms, and the
// convolution of cell timing distributions into path and design
// distributions (paper eqs. 5-11).
package dist

import (
	"errors"
	"math"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (N-1) sample variance of xs; slices with
// fewer than two elements have zero variance.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanStdDev returns the sample mean and the unbiased sample standard
// deviation, computed with the classic two-pass formulas: mean first,
// then the sum of squared deviations from it. The accumulation order is
// slice order in both passes. That order is a contract: the statistical
// library fold (statlib) streams the exact same two passes without a
// buffer, and the pipeline's bit-identity guarantee depends on the sums
// associating identically. The two-pass form is numerically safe on
// near-constant samples (large mean, tiny sigma) where the textbook
// one-pass E[x²]−mean² formula cancels catastrophically; see the
// Welford accumulator for the single-pass streaming alternative.
func MeanStdDev(xs []float64) (mean, sigma float64) {
	return Mean(xs), StdDev(xs)
}

// CoefficientOfVariation returns sigma/mean (paper eq. 1), the
// "variability" metric used in industry for gate delay variation. The
// paper shows (Fig. 1) that it is the wrong selection metric for library
// tuning: two distributions with identical variability can have very
// different absolute dispersion. Returns +Inf for a zero mean with
// nonzero sigma and 0 for a degenerate zero/zero case.
func CoefficientOfVariation(mean, sigma float64) float64 {
	if mean == 0 {
		if sigma == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sigma / mean
}

// Normal is a normal (Gaussian) distribution parameterized by its mean
// and standard deviation.
type Normal struct {
	Mu    float64
	Sigma float64
}

// Variability returns the distribution's coefficient of variation (eq. 1).
func (n Normal) Variability() float64 { return CoefficientOfVariation(n.Mu, n.Sigma) }

// PDF evaluates the probability density function at x.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x == n.Mu {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF evaluates the cumulative distribution function at x.
func (n Normal) CDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// ThreeSigmaUpper returns mu + 3*sigma, the worst-case delay bound the
// paper plots in Fig. 14.
func (n Normal) ThreeSigmaUpper() float64 { return n.Mu + 3*n.Sigma }

// Estimate fits a Normal to samples by the sample mean and unbiased
// standard deviation.
func Estimate(samples []float64) Normal {
	m, s := MeanStdDev(samples)
	return Normal{Mu: m, Sigma: s}
}

// Sum returns the distribution of the sum of two independent normals.
func (n Normal) Sum(o Normal) Normal {
	return Normal{Mu: n.Mu + o.Mu, Sigma: math.Hypot(n.Sigma, o.Sigma)}
}

// ErrNoCells is returned when a path convolution is requested over zero
// cells.
var ErrNoCells = errors.New("dist: convolution over zero distributions")

// ConvolvePath combines per-cell delay distributions into a path delay
// distribution under the paper's model: means add (eq. 5) and, with the
// correlation between distinct cells assumed zero (the paper's ρ=0
// simplification), variances add (eq. 10).
func ConvolvePath(cells []Normal) (Normal, error) {
	return ConvolvePathCorrelated(cells, 0)
}

// ConvolvePathCorrelated implements the general eq. (9): all distinct cell
// pairs share a single correlation coefficient rho. rho must lie in
// [-1, 1]. With rho=0 this reduces to the root-sum-square of eq. (10);
// with rho=1 sigmas add linearly.
func ConvolvePathCorrelated(cells []Normal, rho float64) (Normal, error) {
	if len(cells) == 0 {
		return Normal{}, ErrNoCells
	}
	if rho < -1 || rho > 1 {
		return Normal{}, errors.New("dist: correlation outside [-1,1]")
	}
	mu := 0.0
	sumVar := 0.0
	sumSigma := 0.0
	for _, c := range cells {
		mu += c.Mu
		sumVar += c.Sigma * c.Sigma
		sumSigma += c.Sigma
	}
	// eq. (9): var = sum(sigma_i^2) + rho * sum_{i != j} sigma_i*sigma_j
	//        = sum(sigma_i^2) + rho * ((sum sigma_i)^2 - sum sigma_i^2)
	v := sumVar + rho*(sumSigma*sumSigma-sumVar)
	if v < 0 {
		v = 0 // negative rho can drive tiny negative rounding residue
	}
	return Normal{Mu: mu, Sigma: math.Sqrt(v)}, nil
}

// ConvolvePathMatrix implements eq. (8) with a full correlation matrix:
// var = sum_i sum_j sigma_i * sigma_j * rho_ij. The matrix must be square
// with dimension len(cells); its diagonal is taken as 1 regardless of the
// stored values (cii is the covariance of a cell with itself, eq. 7).
func ConvolvePathMatrix(cells []Normal, rho [][]float64) (Normal, error) {
	n := len(cells)
	if n == 0 {
		return Normal{}, ErrNoCells
	}
	if len(rho) != n {
		return Normal{}, errors.New("dist: correlation matrix dimension mismatch")
	}
	mu := 0.0
	v := 0.0
	for i := 0; i < n; i++ {
		if len(rho[i]) != n {
			return Normal{}, errors.New("dist: correlation matrix not square")
		}
		mu += cells[i].Mu
		for j := 0; j < n; j++ {
			r := rho[i][j]
			if i == j {
				r = 1
			}
			v += cells[i].Sigma * cells[j].Sigma * r
		}
	}
	if v < 0 {
		v = 0
	}
	return Normal{Mu: mu, Sigma: math.Sqrt(v)}, nil
}

// ConvolveDesign combines per-path distributions into the design-level
// distribution of eq. (11): the design mean is the sum of path means and
// the design sigma the root-sum-square of path sigmas. Like the paths in
// eq. (11) the inputs are treated as independent.
func ConvolveDesign(paths []Normal) (Normal, error) {
	if len(paths) == 0 {
		return Normal{}, ErrNoCells
	}
	mu := 0.0
	v := 0.0
	for _, p := range paths {
		mu += p.Mu
		v += p.Sigma * p.Sigma
	}
	return Normal{Mu: mu, Sigma: math.Sqrt(v)}, nil
}
