package dist

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over a float range, used to render
// the Monte Carlo path-delay distributions of Figs. 15 and 16.
type Histogram struct {
	Lo, Hi float64 // range covered; samples outside are clamped to edge bins
	Counts []int
	N      int // total samples accumulated
}

// NewHistogram creates a histogram of the given number of bins spanning
// [lo, hi]. It errors when bins < 1 or the range is empty or non-finite.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("dist: histogram needs at least one bin, got %d", bins)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return nil, fmt.Errorf("dist: histogram range [%g,%g] is not a number", lo, hi)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("dist: histogram range must satisfy hi > lo, got [%g,%g]", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// HistogramOf builds a histogram that spans the sample range with the
// given number of bins. A degenerate all-equal sample set gets a unit
// span centred on the value; non-finite samples make the range invalid
// and error.
func HistogramOf(samples []float64, bins int) (*Histogram, error) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if len(samples) == 0 {
		lo, hi = 0, 1
	} else if lo == hi {
		lo, hi = lo-0.5, hi+0.5
	}
	h, err := NewHistogram(lo, hi, bins)
	if err != nil {
		return nil, err
	}
	for _, s := range samples {
		h.Add(s)
	}
	return h, nil
}

// Add accumulates one sample.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.N++
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best, bestC := 0, -1
	for i, c := range h.Counts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	return h.BinCenter(best)
}

// Render draws the histogram as ASCII rows, one per bin, scaled to the
// given maximum bar width.
func (h *Histogram) Render(width int) string {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%10.4f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Quantile returns the q-th sample quantile (0<=q<=1) of xs using linear
// interpolation between order statistics; used by the flow reports.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i] + frac*(s[i+1]-s[i])
}
