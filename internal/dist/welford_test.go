package dist

import (
	"math"
	"testing"
)

// naiveOnePass is the textbook E[x²]−mean² variance formula — the
// numerically unsafe single-pass alternative the package deliberately
// does not use. It exists here only to demonstrate the failure mode the
// regression inputs below provoke.
func naiveOnePass(xs []float64) (mean, sigma float64) {
	n := float64(len(xs))
	var s, sq float64
	for _, x := range xs {
		s += x
		sq += x * x
	}
	mean = s / n
	v := (sq - n*mean*mean) / (n - 1)
	return mean, math.Sqrt(v)
}

// cancellationSamples builds the catastrophic-cancellation regression
// input: 50 samples (the characterization default) with a huge mean and
// a tiny spread, the shape of a delay entry measured in femtoseconds
// with picosecond-scale mismatch.
func cancellationSamples() []float64 {
	// mean/spread = 1e9: far past where E[x²]−mean² cancels (x² needs
	// ~18 extra digits), while x−mean still resolves the offsets to
	// ~1e-7 relative, so the stable algorithms stay accurate.
	const mean, spread = 1e6, 1e-3
	xs := make([]float64, 50)
	for i := range xs {
		// Deterministic, symmetric offsets in [-spread, +spread].
		xs[i] = mean + spread*(float64(i%11)-5)/5
	}
	return xs
}

func TestMeanStdDevCancellationProne(t *testing.T) {
	xs := cancellationSamples()

	// Exact sigma of the offset pattern, computed at small scale where
	// float64 has plenty of headroom.
	small := make([]float64, len(xs))
	for i, x := range xs {
		small[i] = x - 1e6
	}
	wantMean, want := MeanStdDev(small)
	wantMean += 1e6
	if want <= 0 {
		t.Fatalf("degenerate reference sigma %g", want)
	}

	m, s := MeanStdDev(xs)
	if math.Abs(m-wantMean) > 1e-12*wantMean {
		t.Errorf("two-pass mean = %v, want %v", m, wantMean)
	}
	if rel := math.Abs(s-want) / want; rel > 1e-9 {
		t.Errorf("two-pass sigma = %v, want %v (rel err %g)", s, want, rel)
	}

	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if rel := math.Abs(w.StdDev()-want) / want; rel > 1e-6 {
		t.Errorf("welford sigma = %v, want %v (rel err %g)", w.StdDev(), want, rel)
	}
	if rel := math.Abs(w.Mean()-m) / m; rel > 1e-12 {
		t.Errorf("welford mean = %v, two-pass mean = %v", w.Mean(), m)
	}

	// The one-pass formula must actually fail on this input — otherwise
	// the regression test isn't exercising the cancellation regime.
	if _, naive := naiveOnePass(xs); math.Abs(naive-want)/want < 0.5 {
		t.Errorf("naive one-pass sigma %v unexpectedly close to %v; inputs no longer cancellation-prone", naive, want)
	}
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	cases := [][]float64{
		{1, 2, 3, 4, 5},
		{0.125, 0.125, 0.125},
		{3.5},
		{},
		{-2, 7, 0.001, 1e6, -42.5, 3.25},
	}
	for _, xs := range cases {
		m, s := MeanStdDev(xs)
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		if w.N() != int64(len(xs)) {
			t.Fatalf("N = %d, want %d", w.N(), len(xs))
		}
		if math.Abs(w.Mean()-m) > 1e-12*(1+math.Abs(m)) {
			t.Errorf("%v: mean %v want %v", xs, w.Mean(), m)
		}
		if math.Abs(w.StdDev()-s) > 1e-12*(1+s) {
			t.Errorf("%v: sigma %v want %v", xs, w.StdDev(), s)
		}
	}
}

func TestWelfordMerge(t *testing.T) {
	xs := cancellationSamples()
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	// Every split point, including the degenerate empty shards.
	for cut := 0; cut <= len(xs); cut++ {
		var a, b Welford
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("cut %d: N %d want %d", cut, a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-6*whole.Mean() {
			t.Errorf("cut %d: mean %v want %v", cut, a.Mean(), whole.Mean())
		}
		if rel := math.Abs(a.StdDev()-whole.StdDev()) / whole.StdDev(); rel > 1e-6 {
			t.Errorf("cut %d: sigma %v want %v", cut, a.StdDev(), whole.StdDev())
		}
	}
}

func TestWelfordFewSamples(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.StdDev() != 0 || w.Mean() != 0 {
		t.Errorf("empty accumulator: got mean %v sigma %v", w.Mean(), w.StdDev())
	}
	w.Add(7)
	if w.Variance() != 0 {
		t.Errorf("single sample variance = %v, want 0", w.Variance())
	}
	if w.Mean() != 7 {
		t.Errorf("single sample mean = %v, want 7", w.Mean())
	}
	n := w.Normal()
	if n.Mu != 7 || n.Sigma != 0 {
		t.Errorf("Normal() = %+v", n)
	}
}
