package dist

import (
	"encoding/json"
	"math"
	"testing"
)

// naiveOnePass is the textbook E[x²]−mean² variance formula — the
// numerically unsafe single-pass alternative the package deliberately
// does not use. It exists here only to demonstrate the failure mode the
// regression inputs below provoke.
func naiveOnePass(xs []float64) (mean, sigma float64) {
	n := float64(len(xs))
	var s, sq float64
	for _, x := range xs {
		s += x
		sq += x * x
	}
	mean = s / n
	v := (sq - n*mean*mean) / (n - 1)
	return mean, math.Sqrt(v)
}

// cancellationSamples builds the catastrophic-cancellation regression
// input: 50 samples (the characterization default) with a huge mean and
// a tiny spread, the shape of a delay entry measured in femtoseconds
// with picosecond-scale mismatch.
func cancellationSamples() []float64 {
	// mean/spread = 1e9: far past where E[x²]−mean² cancels (x² needs
	// ~18 extra digits), while x−mean still resolves the offsets to
	// ~1e-7 relative, so the stable algorithms stay accurate.
	const mean, spread = 1e6, 1e-3
	xs := make([]float64, 50)
	for i := range xs {
		// Deterministic, symmetric offsets in [-spread, +spread].
		xs[i] = mean + spread*(float64(i%11)-5)/5
	}
	return xs
}

func TestMeanStdDevCancellationProne(t *testing.T) {
	xs := cancellationSamples()

	// Exact sigma of the offset pattern, computed at small scale where
	// float64 has plenty of headroom.
	small := make([]float64, len(xs))
	for i, x := range xs {
		small[i] = x - 1e6
	}
	wantMean, want := MeanStdDev(small)
	wantMean += 1e6
	if want <= 0 {
		t.Fatalf("degenerate reference sigma %g", want)
	}

	m, s := MeanStdDev(xs)
	if math.Abs(m-wantMean) > 1e-12*wantMean {
		t.Errorf("two-pass mean = %v, want %v", m, wantMean)
	}
	if rel := math.Abs(s-want) / want; rel > 1e-9 {
		t.Errorf("two-pass sigma = %v, want %v (rel err %g)", s, want, rel)
	}

	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if rel := math.Abs(w.StdDev()-want) / want; rel > 1e-6 {
		t.Errorf("welford sigma = %v, want %v (rel err %g)", w.StdDev(), want, rel)
	}
	if rel := math.Abs(w.Mean()-m) / m; rel > 1e-12 {
		t.Errorf("welford mean = %v, two-pass mean = %v", w.Mean(), m)
	}

	// The one-pass formula must actually fail on this input — otherwise
	// the regression test isn't exercising the cancellation regime.
	if _, naive := naiveOnePass(xs); math.Abs(naive-want)/want < 0.5 {
		t.Errorf("naive one-pass sigma %v unexpectedly close to %v; inputs no longer cancellation-prone", naive, want)
	}
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	cases := [][]float64{
		{1, 2, 3, 4, 5},
		{0.125, 0.125, 0.125},
		{3.5},
		{},
		{-2, 7, 0.001, 1e6, -42.5, 3.25},
	}
	for _, xs := range cases {
		m, s := MeanStdDev(xs)
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		if w.N() != int64(len(xs)) {
			t.Fatalf("N = %d, want %d", w.N(), len(xs))
		}
		if math.Abs(w.Mean()-m) > 1e-12*(1+math.Abs(m)) {
			t.Errorf("%v: mean %v want %v", xs, w.Mean(), m)
		}
		if math.Abs(w.StdDev()-s) > 1e-12*(1+s) {
			t.Errorf("%v: sigma %v want %v", xs, w.StdDev(), s)
		}
	}
}

func TestWelfordMerge(t *testing.T) {
	xs := cancellationSamples()
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	// Every split point, including the degenerate empty shards.
	for cut := 0; cut <= len(xs); cut++ {
		var a, b Welford
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("cut %d: N %d want %d", cut, a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-6*whole.Mean() {
			t.Errorf("cut %d: mean %v want %v", cut, a.Mean(), whole.Mean())
		}
		if rel := math.Abs(a.StdDev()-whole.StdDev()) / whole.StdDev(); rel > 1e-6 {
			t.Errorf("cut %d: sigma %v want %v", cut, a.StdDev(), whole.StdDev())
		}
	}
}

func TestWelfordFewSamples(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.StdDev() != 0 || w.Mean() != 0 {
		t.Errorf("empty accumulator: got mean %v sigma %v", w.Mean(), w.StdDev())
	}
	w.Add(7)
	if w.Variance() != 0 {
		t.Errorf("single sample variance = %v, want 0", w.Variance())
	}
	if w.Mean() != 7 {
		t.Errorf("single sample mean = %v, want 7", w.Mean())
	}
	n := w.Normal()
	if n.Mu != 7 || n.Sigma != 0 {
		t.Errorf("Normal() = %+v", n)
	}
}

// shardSamples splits xs into k contiguous shards, mimicking how the
// cluster tier tiles [0, N) Monte-Carlo instances across workers.
func shardSamples(xs []float64, k int) [][]float64 {
	shards := make([][]float64, k)
	for i := range shards {
		lo, hi := i*len(xs)/k, (i+1)*len(xs)/k
		shards[i] = xs[lo:hi]
	}
	return shards
}

// TestWelfordMergeOrderInvariance pins the determinism argument of the
// sharded characterization tier: merging the same partials in the same
// (fixed shard) order is bitwise reproducible run-to-run, whatever
// order the partials arrived in. Different merge orders are allowed to
// differ — but only by ulps, which is also checked so the fixed-order
// requirement stays a determinism contract, not an accuracy one.
func TestWelfordMergeOrderInvariance(t *testing.T) {
	xs := cancellationSamples()
	const k = 4
	parts := make([]Welford, k)
	for i, shard := range shardSamples(xs, k) {
		for _, x := range shard {
			parts[i].Add(x)
		}
	}

	foldInOrder := func(order []int) Welford {
		var w Welford
		for _, i := range order {
			w.Merge(parts[i])
		}
		return w
	}

	fixed := foldInOrder([]int{0, 1, 2, 3})
	// Re-merging in the fixed order must reproduce the exact bits, from
	// copies, any number of times.
	for trial := 0; trial < 3; trial++ {
		if again := foldInOrder([]int{0, 1, 2, 3}); again != fixed {
			t.Fatalf("trial %d: fixed-order merge not reproducible: %+v vs %+v", trial, again.State(), fixed.State())
		}
	}

	// Arrival orders differ; sorting back to shard order before merging
	// (what statlib.MergeShards does) must land on the same bits.
	arrivals := [][]int{{3, 1, 0, 2}, {2, 3, 1, 0}, {1, 0, 3, 2}}
	for _, arrival := range arrivals {
		sorted := append([]int(nil), arrival...)
		for i := range sorted {
			sorted[i] = i // shard index order, independent of arrival
		}
		if got := foldInOrder(sorted); got != fixed {
			t.Fatalf("arrival %v: sorted merge diverged: %+v vs %+v", arrival, got.State(), fixed.State())
		}
		// The unsorted merge may differ, but only at ulp scale.
		perm := foldInOrder(arrival)
		if perm.N() != fixed.N() {
			t.Fatalf("arrival %v: N %d want %d", arrival, perm.N(), fixed.N())
		}
		if rel := math.Abs(perm.StdDev()-fixed.StdDev()) / fixed.StdDev(); rel > 1e-6 {
			t.Errorf("arrival %v: permuted sigma off by rel %g", arrival, rel)
		}
	}
}

// TestWelfordStateRoundTrip: serialize -> deserialize -> Merge must
// match the in-process fold exactly (bitwise), including through JSON —
// the stdcelltune-shard/1 wire format.
func TestWelfordStateRoundTrip(t *testing.T) {
	xs := cancellationSamples()
	shards := shardSamples(xs, 3)

	var inProcess Welford
	parts := make([]Welford, len(shards))
	for i, shard := range shards {
		for _, x := range shard {
			parts[i].Add(x)
		}
	}
	for _, p := range parts {
		inProcess.Merge(p)
	}

	var wire Welford
	for _, p := range parts {
		s := p.State()
		if back := WelfordFromState(s); back != p {
			t.Fatalf("State/WelfordFromState not bitwise: %+v vs %+v", back.State(), s)
		}
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got WelfordState
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Fatalf("JSON round trip changed state: %+v vs %+v", got, s)
		}
		wire.Merge(WelfordFromState(got))
	}
	if wire != inProcess {
		t.Fatalf("wire fold %+v != in-process fold %+v", wire.State(), inProcess.State())
	}
}

// TestWelfordShardEdgeCases: N=0 and N=1 shards — a worker can
// legitimately return an empty or single-sample partial (quarantined
// entries, tiny tail shard) and the merge must treat them exactly like
// the sequential stream would.
func TestWelfordShardEdgeCases(t *testing.T) {
	// N=0 shard merged into anything is the identity, both ways.
	var empty, some Welford
	some.Add(2.5)
	some.Add(4.5)
	before := some
	some.Merge(empty)
	if some != before {
		t.Fatalf("merging empty shard changed accumulator: %+v vs %+v", some.State(), before.State())
	}
	var lhs Welford
	lhs.Merge(before)
	if lhs != before {
		t.Fatalf("merging into empty accumulator not a copy: %+v vs %+v", lhs.State(), before.State())
	}

	// A run split into N=1 shards folds to the same moments as the
	// sequential stream (tolerance: Merge and Add round differently).
	xs := []float64{3, 1, 4, 1.5, 9, 2.6}
	var seq Welford
	for _, x := range xs {
		seq.Add(x)
	}
	var merged Welford
	for _, x := range xs {
		var one Welford
		one.Add(x)
		if one.N() != 1 || one.Variance() != 0 {
			t.Fatalf("single-sample shard: N=%d var=%g", one.N(), one.Variance())
		}
		merged.Merge(one)
	}
	if merged.N() != seq.N() {
		t.Fatalf("N %d want %d", merged.N(), seq.N())
	}
	if math.Abs(merged.Mean()-seq.Mean()) > 1e-12*(1+math.Abs(seq.Mean())) {
		t.Errorf("mean %v want %v", merged.Mean(), seq.Mean())
	}
	if math.Abs(merged.StdDev()-seq.StdDev()) > 1e-12*(1+seq.StdDev()) {
		t.Errorf("sigma %v want %v", merged.StdDev(), seq.StdDev())
	}
}
