// Package place implements the post-synthesis step the paper lists as
// future work ("the next steps in IC design"): a standard-cell placement
// of the mapped netlist and a wirelength-based wire-load model that
// replaces the synthesis-time fanout heuristic. Placement is a levelized
// seeding followed by force-directed (barycenter) refinement on a fixed
// row grid — a deliberately small but structurally faithful placer: cells
// on tightly connected nets end up close, so half-perimeter wirelength
// (HPWL) behaves like a real floorplan's.
package place

import (
	"fmt"
	"math"
	"sort"

	"stdcelltune/internal/netlist"
)

// Config sizes the placement fabric.
type Config struct {
	// RowHeight is the standard cell row pitch in um.
	RowHeight float64
	// TargetUtilization fraction of row area filled with cells.
	TargetUtilization float64
	// Iterations of barycenter refinement.
	Iterations int
	// CapPerMicron is the wire capacitance per um of HPWL (pF/um).
	CapPerMicron float64
	// CellPitch approximates a cell's width from its area (um^2 / RowHeight).
	// Zero derives width from area automatically.
	CellPitch float64
}

// DefaultConfig is a 40nm-class placement setup: 1.4 um rows, 70%
// utilization, 0.2 fF/um wire capacitance.
func DefaultConfig() Config {
	return Config{
		RowHeight:         1.4,
		TargetUtilization: 0.70,
		Iterations:        12,
		CapPerMicron:      0.0002,
	}
}

// Placement maps every instance to a legalized location.
type Placement struct {
	Cfg  Config
	Nl   *netlist.Netlist
	X    map[int]float64 // instance ID -> x (um)
	Y    map[int]float64 // instance ID -> y (row center, um)
	Rows int
	// Width is the die width in um; Height = Rows * RowHeight.
	Width float64
}

// Height returns the die height in um.
func (p *Placement) Height() float64 { return float64(p.Rows) * p.Cfg.RowHeight }

// Place placs the netlist on a near-square die.
func Place(nl *netlist.Netlist, cfg Config) (*Placement, error) {
	if len(nl.Instances) == 0 {
		return nil, fmt.Errorf("place: empty netlist")
	}
	if cfg.RowHeight <= 0 || cfg.TargetUtilization <= 0 || cfg.TargetUtilization > 1 {
		return nil, fmt.Errorf("place: invalid config %+v", cfg)
	}
	totalArea := nl.Area() / cfg.TargetUtilization
	side := math.Sqrt(totalArea)
	rows := int(math.Ceil(side / cfg.RowHeight))
	if rows < 1 {
		rows = 1
	}
	width := totalArea / (float64(rows) * cfg.RowHeight)

	p := &Placement{
		Cfg: cfg, Nl: nl,
		X:    make(map[int]float64, len(nl.Instances)),
		Y:    make(map[int]float64, len(nl.Instances)),
		Rows: rows, Width: width,
	}
	p.seed()
	for it := 0; it < cfg.Iterations; it++ {
		p.barycenterPass()
		p.legalize()
	}
	return p, nil
}

// seed places instances in topological order along a serpentine through
// the rows, so connected logic starts out nearby.
func (p *Placement) seed() {
	order, err := p.Nl.TopoOrder()
	if err != nil {
		order = p.Nl.Instances
	}
	perRow := (len(order) + p.Rows - 1) / p.Rows
	for i, inst := range order {
		row := i / perRow
		col := i % perRow
		x := (float64(col) + 0.5) * p.Width / float64(perRow)
		if row%2 == 1 {
			x = p.Width - x // serpentine
		}
		p.X[inst.ID] = x
		p.Y[inst.ID] = (float64(row) + 0.5) * p.Cfg.RowHeight
	}
}

// barycenterPass moves every instance to the average position of the
// pins it connects to.
func (p *Placement) barycenterPass() {
	for _, inst := range p.Nl.Instances {
		var sx, sy float64
		n := 0
		visit := func(net *netlist.Net) {
			if net == nil {
				return
			}
			if net.Driver != nil && net.Driver != inst {
				sx += p.X[net.Driver.ID]
				sy += p.Y[net.Driver.ID]
				n++
			}
			for _, s := range net.Sinks {
				if s.Inst != nil && s.Inst != inst {
					sx += p.X[s.Inst.ID]
					sy += p.Y[s.Inst.ID]
					n++
				}
			}
		}
		for _, net := range inst.In {
			visit(net)
		}
		for _, net := range inst.Out {
			visit(net)
		}
		if n == 0 {
			continue
		}
		p.X[inst.ID] = clamp(sx/float64(n), 0, p.Width)
		p.Y[inst.ID] = clamp(sy/float64(n), 0, p.Height())
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// legalize snaps instances to rows and spreads overlapping cells along
// each row in x order.
func (p *Placement) legalize() {
	rows := make([][]*netlist.Instance, p.Rows)
	for _, inst := range p.Nl.Instances {
		r := int(p.Y[inst.ID] / p.Cfg.RowHeight)
		if r < 0 {
			r = 0
		}
		if r >= p.Rows {
			r = p.Rows - 1
		}
		rows[r] = append(rows[r], inst)
	}
	for r, cells := range rows {
		sort.Slice(cells, func(i, j int) bool {
			return p.X[cells[i].ID] < p.X[cells[j].ID]
		})
		// Sum the row's cell widths and spread proportionally.
		total := 0.0
		for _, c := range cells {
			total += p.widthOf(c)
		}
		scale := 1.0
		if total > p.Width {
			scale = p.Width / total
		}
		cursor := 0.0
		for _, c := range cells {
			w := p.widthOf(c) * scale
			p.X[c.ID] = cursor + w/2
			p.Y[c.ID] = (float64(r) + 0.5) * p.Cfg.RowHeight
			cursor += w
		}
		// Centre a sparse row's cells around their barycenter order
		// rather than packing left: shift by the slack evenly.
		if slack := p.Width - cursor; slack > 0 && len(cells) > 0 {
			shift := slack / 2
			for _, c := range cells {
				p.X[c.ID] += shift
			}
		}
	}
}

func (p *Placement) widthOf(inst *netlist.Instance) float64 {
	if p.Cfg.CellPitch > 0 {
		return p.Cfg.CellPitch
	}
	return inst.Spec.Area() / p.Cfg.RowHeight
}

// HPWL returns the half-perimeter wirelength of a net in um.
func (p *Placement) HPWL(net *netlist.Net) float64 {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	touch := func(id int) {
		minX = math.Min(minX, p.X[id])
		maxX = math.Max(maxX, p.X[id])
		minY = math.Min(minY, p.Y[id])
		maxY = math.Max(maxY, p.Y[id])
	}
	n := 0
	if net.Driver != nil {
		touch(net.Driver.ID)
		n++
	}
	for _, s := range net.Sinks {
		if s.Inst != nil {
			touch(s.Inst.ID)
			n++
		}
	}
	if n < 2 {
		return 0
	}
	return (maxX - minX) + (maxY - minY)
}

// TotalHPWL sums the wirelength of all nets.
func (p *Placement) TotalHPWL() float64 {
	t := 0.0
	for _, net := range p.Nl.Nets {
		t += p.HPWL(net)
	}
	return t
}

// WireCaps returns per-net-ID wire capacitance derived from placement
// wirelength — the post-placement replacement for the fanout-based wire
// load model (index by net ID; nets beyond the slice keep the default).
func (p *Placement) WireCaps() []float64 {
	maxID := 0
	for _, n := range p.Nl.Nets {
		if n.ID > maxID {
			maxID = n.ID
		}
	}
	caps := make([]float64, maxID+1)
	for _, n := range p.Nl.Nets {
		caps[n.ID] = p.HPWL(n) * p.Cfg.CapPerMicron
	}
	return caps
}

// Distance returns the Manhattan distance between two placed instances.
func (p *Placement) Distance(a, b *netlist.Instance) float64 {
	return math.Abs(p.X[a.ID]-p.X[b.ID]) + math.Abs(p.Y[a.ID]-p.Y[b.ID])
}
