package place

import (
	"math"
	"testing"

	"stdcelltune/internal/netlist"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/synth"
)

var cat = stdcell.NewCatalogue(stdcell.Typical)

func mappedMCU(t *testing.T) *netlist.Netlist {
	t.Helper()
	m, err := rtlgen.Build(rtlgen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	nl, err := synth.Map("mcu", m.Net, cat)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestPlaceBasics(t *testing.T) {
	nl := mappedMCU(t)
	p, err := Place(nl, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows < 2 {
		t.Errorf("rows %d", p.Rows)
	}
	if p.Width <= 0 || p.Height() <= 0 {
		t.Fatal("degenerate die")
	}
	// Every instance is inside the die.
	for _, inst := range nl.Instances {
		x, okX := p.X[inst.ID]
		y, okY := p.Y[inst.ID]
		if !okX || !okY {
			t.Fatalf("instance %s unplaced", inst.Name)
		}
		if x < 0 || x > p.Width+1e-9 || y < 0 || y > p.Height()+1e-9 {
			t.Fatalf("instance %s at (%g,%g) outside die %gx%g", inst.Name, x, y, p.Width, p.Height())
		}
	}
	// Rows are legal: y snapped to row centers.
	for _, inst := range nl.Instances {
		y := p.Y[inst.ID]
		frac := math.Mod(y, p.Cfg.RowHeight) / p.Cfg.RowHeight
		if math.Abs(frac-0.5) > 1e-9 {
			t.Fatalf("instance %s not on a row center: y=%g", inst.Name, y)
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := Place(netlist.New("empty", cat), DefaultConfig()); err == nil {
		t.Error("empty netlist accepted")
	}
	nl := mappedMCU(t)
	bad := DefaultConfig()
	bad.TargetUtilization = 0
	if _, err := Place(nl, bad); err == nil {
		t.Error("zero utilization accepted")
	}
	bad2 := DefaultConfig()
	bad2.RowHeight = -1
	if _, err := Place(nl, bad2); err == nil {
		t.Error("negative row height accepted")
	}
}

// TestRefinementReducesWirelength: barycenter iterations must reduce the
// total HPWL compared to the raw seeding.
func TestRefinementReducesWirelength(t *testing.T) {
	nl := mappedMCU(t)
	cfg := DefaultConfig()
	cfg.Iterations = 0
	p0, err := Place(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Iterations = 12
	p12, err := Place(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w0, w12 := p0.TotalHPWL(), p12.TotalHPWL()
	t.Logf("HPWL: seed %.0f um, refined %.0f um (-%.0f%%)", w0, w12, 100*(w0-w12)/w0)
	if w12 >= w0 {
		t.Errorf("refinement did not reduce wirelength: %g -> %g", w0, w12)
	}
}

func TestHPWLAndWireCaps(t *testing.T) {
	nl := mappedMCU(t)
	p, err := Place(nl, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	caps := p.WireCaps()
	total := 0.0
	for _, n := range nl.Nets {
		h := p.HPWL(n)
		if h < 0 {
			t.Fatal("negative wirelength")
		}
		if got := caps[n.ID]; math.Abs(got-h*p.Cfg.CapPerMicron) > 1e-12 {
			t.Fatalf("wire cap mismatch for net %s", n.Name)
		}
		total += h
	}
	if math.Abs(total-p.TotalHPWL()) > 1e-6 {
		t.Error("TotalHPWL disagrees with sum")
	}
	// Single-pin and PI-only nets have zero wirelength.
	for _, n := range nl.Nets {
		pins := len(n.Sinks)
		if n.Driver != nil {
			pins++
		}
		if pins < 2 && p.HPWL(n) != 0 {
			t.Fatalf("net %s with %d pins has wirelength", n.Name, pins)
		}
	}
}

func TestDistance(t *testing.T) {
	nl := mappedMCU(t)
	p, err := Place(nl, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := nl.Instances[0], nl.Instances[1]
	if p.Distance(a, a) != 0 {
		t.Error("self distance nonzero")
	}
	if p.Distance(a, b) != p.Distance(b, a) {
		t.Error("distance not symmetric")
	}
}

func TestDeterministic(t *testing.T) {
	nl := mappedMCU(t)
	p1, err := Place(nl, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Place(nl, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for id := range p1.X {
		if p1.X[id] != p2.X[id] || p1.Y[id] != p2.Y[id] {
			t.Fatal("placement not deterministic")
		}
	}
}
