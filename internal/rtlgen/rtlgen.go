// Package rtlgen generates the synthetic microcontroller design used as
// the evaluation workload — the stand-in for the paper's "widely used
// microprocessor design" (32-bit CPU, AHB bus, 32KB SRAM, ~20k gates).
//
// The design is a single-issue 32-bit CPU with a register file, an ALU
// with an array multiplier, a barrel shifter, branch logic, an AHB-lite
// style bus fabric with address decoding, a timer and GPIO peripheral,
// and an external-SRAM interface (the SRAM macro itself, like in the
// paper, is not synthesized — it appears as ports).
//
// Everything is built from technology-independent logic primitives so
// the technology mapper (internal/synth) can cover it with the 304-cell
// library.
package rtlgen

import (
	"fmt"

	"stdcelltune/internal/logic"
)

// Config sizes the generated microcontroller.
type Config struct {
	Width     int // datapath width in bits
	Registers int // register-file depth (power of two)
	MulWidth  int // multiplier operand width (<= Width)
	Timers    int // number of timer peripherals
}

// DefaultConfig yields the ~20k-gate configuration used by the paper
// experiments.
func DefaultConfig() Config {
	return Config{Width: 32, Registers: 32, MulWidth: 16, Timers: 2}
}

// SmallConfig is a scaled-down MCU for fast unit tests.
func SmallConfig() Config {
	return Config{Width: 12, Registers: 4, MulWidth: 4, Timers: 1}
}

// MCU is the generated design plus handles to interesting internal words
// (used by tests and the path-extraction experiments).
type MCU struct {
	Net *logic.Network
	Cfg Config

	// Debug handles (combinational words inside the datapath).
	ALUResult []*logic.Node
	PC        []*logic.Node
}

func log2(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}

// Build generates the microcontroller network.
func Build(cfg Config) (*MCU, error) {
	if cfg.Width < 4 || cfg.Registers < 2 || cfg.MulWidth < 2 || cfg.MulWidth > cfg.Width {
		return nil, fmt.Errorf("rtlgen: invalid config %+v", cfg)
	}
	if cfg.Registers&(cfg.Registers-1) != 0 {
		return nil, fmt.Errorf("rtlgen: register count %d not a power of two", cfg.Registers)
	}
	n := logic.New()
	w := cfg.Width
	regBits := log2(cfg.Registers)
	shiftBits := log2(w)

	// ------------------------------------------------------------ ports
	instr := n.InputBus("instr", w)        // fetched instruction word
	memRData := n.InputBus("mem_rdata", w) // load data from the bus
	gpioIn := n.InputBus("gpio_in", w)     // external GPIO inputs
	sramRData := n.InputBus("sram_rdata", w)
	irq := n.Input("irq")

	// ------------------------------------------------- pipeline: fetch
	// Instruction register and program counter.
	ir := n.DFFWord(instr, "u_fetch_ir")
	pcReg := n.DFFWord(n.ConstWord(0, w), "u_fetch_pc") // fanin fixed below

	// ------------------------------------------------------ decode
	// Custom compact ISA carved out of the IR.
	op := ir[w-4:]            // top 4 bits: opcode
	opHot := n.Decode(op, 16) // one-hot op lines
	rd := ir[w-4-regBits : w-4]
	rs1 := ir[w-4-2*regBits : w-4-regBits]
	rs2 := ir[w-4-3*regBits : w-4-2*regBits]
	immBits := w - 4 - 3*regBits
	imm := make([]*logic.Node, w) // sign-extended immediate
	copy(imm, ir[:immBits])
	for i := immBits; i < w; i++ {
		imm[i] = ir[immBits-1]
	}

	const (
		opAdd = iota
		opSub
		opAnd
		opOr
		opXor
		opShl
		opShr
		opMul
		opMulH
		opLd
		opSt
		opBeq
		opBne
		opJal
		opLui
		opAddI
	)

	// ------------------------------------------------- register file
	rf := make([][]*logic.Node, cfg.Registers)
	rdHot := n.Decode(rd, cfg.Registers)
	// Write-back data is defined later; allocate the FFs first and patch
	// their fanin afterwards (feedback through state is allowed).
	for r := range rf {
		rf[r] = n.DFFWord(n.ConstWord(0, w), fmt.Sprintf("u_rf_r%d", r))
	}
	rs1Hot := n.Decode(rs1, cfg.Registers)
	rs2Hot := n.Decode(rs2, cfg.Registers)
	srcA := n.SelectWord(rs1Hot, rf)
	srcB := n.SelectWord(rs2Hot, rf)

	// Operand B: immediate for I-type ops.
	useImm := n.Or(n.Or(opHot[opAddI], opHot[opLui]), n.Or(opHot[opLd], opHot[opSt]))
	opB := n.MuxWord(useImm, srcB, imm)

	// ------------------------------------------------------------- ALU
	sum, _ := n.RippleAdd(srcA, opB, n.Const(false))
	diff, _ := n.Subtract(srcA, opB)
	andW := n.AndWord(srcA, opB)
	orW := n.OrWord(srcA, opB)
	xorW := n.XorWord(srcA, opB)
	shl := n.ShiftLeft(srcA, opB[:shiftBits])
	shr := n.ShiftRight(srcA, opB[:shiftBits])
	prod := n.Multiply(srcA[:cfg.MulWidth], opB[:cfg.MulWidth])
	mulLo := make([]*logic.Node, w)
	mulHi := make([]*logic.Node, w)
	zero := n.Const(false)
	for i := 0; i < w; i++ {
		if i < len(prod) {
			mulLo[i] = prod[i]
		} else {
			mulLo[i] = zero
		}
		if i+cfg.MulWidth < len(prod) {
			mulHi[i] = prod[i+cfg.MulWidth]
		} else {
			mulHi[i] = zero
		}
	}
	lui := make([]*logic.Node, w)
	for i := 0; i < w; i++ {
		if i >= w/2 {
			lui[i] = imm[i-w/2]
		} else {
			lui[i] = zero
		}
	}
	// Result selection (one-hot select word).
	aluSel := []*logic.Node{
		opHot[opAdd], opHot[opSub], opHot[opAnd], opHot[opOr], opHot[opXor],
		opHot[opShl], opHot[opShr], opHot[opMul], opHot[opMulH], opHot[opLui],
		opHot[opAddI],
	}
	aluWords := [][]*logic.Node{sum, diff, andW, orW, xorW, shl, shr, mulLo, mulHi, lui, sum}
	aluOut := n.SelectWord(aluSel, aluWords)

	// ------------------------------------------------------- branches
	eq := n.Equal(srcA, srcB)
	takeBeq := n.And(opHot[opBeq], eq)
	takeBne := n.And(opHot[opBne], n.Not(eq))
	branch := n.Or(n.Or(takeBeq, takeBne), opHot[opJal])

	// -------------------------------------------------------------- PC
	pcInc, _ := n.Increment(pcReg)
	branchTarget, _ := n.RippleAdd(pcReg, imm, n.Const(false))
	pcNext := n.MuxWord(branch, pcInc, branchTarget)
	// IRQ vectors to a fixed address.
	vector := n.ConstWord(0x40, w)
	pcNext = n.MuxWord(irq, pcNext, vector)
	for i, ff := range pcReg {
		n.SetFaninLater(ff, pcNext[i])
	}

	// ------------------------------------------------------- bus fabric
	// AHB-lite flavoured: address from ALU (reg+imm), top 2 bits select
	// the slave: 00 SRAM, 01 ROM(instr), 10 timer block, 11 GPIO.
	haddr := n.DFFWord(sum, "u_bus_haddr")
	hwdata := n.DFFWord(srcB, "u_bus_hwdata")
	hwrite := n.DFF(opHot[opSt], "u_bus_hwrite")
	region := n.Decode(haddr[w-2:], 4)

	// Timer peripherals: free-running counters with compare registers.
	timerRead := n.ConstWord(0, w)
	var timerMatches []*logic.Node
	for tmr := 0; tmr < cfg.Timers; tmr++ {
		cnt := n.DFFWord(n.ConstWord(0, w), fmt.Sprintf("u_timer%d_cnt", tmr))
		cntInc, _ := n.Increment(cnt)
		// Counter restarts on bus write to its address (low bit selects
		// the timer registers).
		writeThis := n.And(n.And(hwrite, region[2]), biteq(n, haddr[2+tmr], true))
		for i, ff := range cnt {
			n.SetFaninLater(ff, n.Mux(writeThis, cntInc[i], hwdata[i]))
		}
		cmp := n.DFFWord(n.ConstWord(0, w), fmt.Sprintf("u_timer%d_cmp", tmr))
		writeCmp := n.And(writeThis, haddr[1])
		for i, ff := range cmp {
			n.SetFaninLater(ff, n.Mux(writeCmp, ff, hwdata[i]))
		}
		match := n.DFF(n.Equal(cnt, cmp), fmt.Sprintf("u_timer%d_match", tmr))
		timerMatches = append(timerMatches, match)
		timerRead = n.MuxWord(biteq(n, haddr[2+tmr], true), timerRead, cnt)
	}

	// GPIO peripheral: output register plus input synchronizer.
	gpioWrite := n.And(hwrite, region[3])
	gpioOut := n.DFFWord(n.ConstWord(0, w), "u_gpio_out")
	for i, ff := range gpioOut {
		n.SetFaninLater(ff, n.Mux(gpioWrite, ff, hwdata[i]))
	}
	gpioSync := n.DFFWord(gpioIn, "u_gpio_sync")

	// Read-data mux back to the CPU.
	hrdata := n.SelectWord(region, [][]*logic.Node{sramRData, instr, timerRead, gpioSync})

	// -------------------------------------------------- write-back
	isLoad := opHot[opLd]
	wbData := n.MuxWord(isLoad, aluOut, memRData)
	linkData := pcInc
	wbData = n.MuxWord(opHot[opJal], wbData, linkData)
	writesReg := n.Not(n.Or(n.Or(opHot[opSt], opHot[opBeq]), opHot[opBne]))
	for r := range rf {
		wen := n.And(writesReg, rdHot[r])
		if r == 0 {
			wen = n.Const(false) // r0 is hard-wired zero
		}
		for i, ff := range rf[r] {
			n.SetFaninLater(ff, n.Mux(wen, ff, wbData[i]))
		}
	}

	// ----------------------------------------------------- control FSM
	// Four states one-hot: FETCH -> EXEC -> MEM -> WB -> FETCH, with MEM
	// skipped for non-memory ops (kept simple; exercises NOR/NAND
	// random logic).
	stFetch := n.DFF(n.Const(true), "u_ctl_fetch")
	stExec := n.DFF(n.Const(false), "u_ctl_exec")
	stMem := n.DFF(n.Const(false), "u_ctl_mem")
	stWB := n.DFF(n.Const(false), "u_ctl_wb")
	isMem := n.Or(opHot[opLd], opHot[opSt])
	n.SetFaninLater(stFetch, n.Or(stWB, n.And(stMem, n.Not(isMem))))
	n.SetFaninLater(stExec, stFetch)
	n.SetFaninLater(stMem, n.And(stExec, isMem))
	n.SetFaninLater(stWB, n.Or(n.And(stExec, n.Not(isMem)), stMem))

	// ------------------------------------------------------------ outputs
	outWord := func(name string, word []*logic.Node) {
		for i, b := range word {
			n.Output(fmt.Sprintf("%s[%d]", name, i), b)
		}
	}
	outWord("imem_addr", pcReg)
	outWord("haddr", haddr)
	outWord("hwdata", hwdata)
	outWord("gpio_out", gpioOut)
	outWord("sram_addr", haddr[:w-2])
	outWord("sram_wdata", hwdata)
	n.Output("sram_we", n.And(hwrite, region[0]))
	n.Output("hwrite", hwrite)
	for i, m := range timerMatches {
		n.Output(fmt.Sprintf("timer_match[%d]", i), m)
	}
	n.Output("busy", n.Not(stFetch))
	outWord("dbg_alu", aluOut)
	n.Output("dbg_branch", branch)
	outWord("dbg_hrdata", hrdata)

	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("rtlgen: generated network invalid: %w", err)
	}
	return &MCU{Net: n, Cfg: cfg, ALUResult: aluOut, PC: pcReg}, nil
}

// biteq returns the node itself or its inverse so that the result is true
// when the bit equals want.
func biteq(n *logic.Network, b *logic.Node, want bool) *logic.Node {
	if want {
		return b
	}
	return n.Not(b)
}
