package rtlgen

import (
	"fmt"

	"stdcelltune/internal/logic"
)

// Additional evaluation workloads beyond the microcontroller. The paper
// evaluates one design; shipping more lets the tuning method's
// generalization be measured across very different cell mixes: the FIR
// filter is multiplier/adder dominated, the parallel CRC is XOR
// dominated.

// FIRConfig sizes the FIR filter generator.
type FIRConfig struct {
	Taps       int // number of filter taps
	Width      int // sample width in bits
	CoeffWidth int // coefficient width in bits
}

// DefaultFIRConfig is an 8-tap 16-bit filter (~6k gates).
func DefaultFIRConfig() FIRConfig {
	return FIRConfig{Taps: 8, Width: 16, CoeffWidth: 8}
}

// SmallFIRConfig keeps unit tests fast.
func SmallFIRConfig() FIRConfig {
	return FIRConfig{Taps: 4, Width: 8, CoeffWidth: 4}
}

// BuildFIR generates a direct-form FIR filter: a sample shift register,
// one multiplier per tap against a programmable coefficient port, an
// adder tree, and a registered output.
func BuildFIR(cfg FIRConfig) (*logic.Network, error) {
	if cfg.Taps < 2 || cfg.Width < 2 || cfg.CoeffWidth < 2 {
		return nil, fmt.Errorf("rtlgen: invalid FIR config %+v", cfg)
	}
	n := logic.New()
	sample := n.InputBus("sample", cfg.Width)
	coeffs := make([][]*logic.Node, cfg.Taps)
	for t := range coeffs {
		coeffs[t] = n.InputBus(fmt.Sprintf("coeff%d", t), cfg.CoeffWidth)
	}
	// Delay line: tap 0 sees the newest sample.
	taps := make([][]*logic.Node, cfg.Taps)
	taps[0] = sample
	prev := sample
	for t := 1; t < cfg.Taps; t++ {
		reg := n.DFFWord(prev, fmt.Sprintf("u_dline%d", t))
		taps[t] = reg
		prev = reg
	}
	// Products, accumulated in a balanced adder tree.
	outW := cfg.Width + cfg.CoeffWidth
	terms := make([][]*logic.Node, cfg.Taps)
	for t := 0; t < cfg.Taps; t++ {
		p := n.Multiply(taps[t], coeffs[t])
		terms[t] = p[:outW]
	}
	for len(terms) > 1 {
		var next [][]*logic.Node
		for i := 0; i+1 < len(terms); i += 2 {
			s, _ := n.RippleAdd(terms[i], terms[i+1], n.Const(false))
			next = append(next, s)
		}
		if len(terms)%2 == 1 {
			next = append(next, terms[len(terms)-1])
		}
		terms = next
	}
	acc := n.DFFWord(terms[0], "u_acc")
	for i, b := range acc {
		n.Output(fmt.Sprintf("y[%d]", i), b)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// CRCConfig sizes the parallel CRC generator.
type CRCConfig struct {
	Width     int    // CRC register width
	Poly      uint64 // generator polynomial (without the top bit)
	DataWidth int    // input bits consumed per cycle
}

// DefaultCRCConfig is CRC-32 (IEEE 802.3) over 32-bit words.
func DefaultCRCConfig() CRCConfig {
	return CRCConfig{Width: 32, Poly: 0x04C11DB7, DataWidth: 32}
}

// SmallCRCConfig is CRC-8 over bytes for fast tests.
func SmallCRCConfig() CRCConfig {
	return CRCConfig{Width: 8, Poly: 0x07, DataWidth: 8}
}

// BuildCRC generates a parallel (one word per cycle) CRC circuit by
// unrolling the serial LFSR DataWidth times — a deep XOR-only cone in
// front of the state register, the opposite cell mix of the MCU.
func BuildCRC(cfg CRCConfig) (*logic.Network, error) {
	if cfg.Width < 2 || cfg.DataWidth < 1 {
		return nil, fmt.Errorf("rtlgen: invalid CRC config %+v", cfg)
	}
	n := logic.New()
	data := n.InputBus("data", cfg.DataWidth)
	en := n.Input("en")
	// State register (fanin patched after the cone is built).
	state := make([]*logic.Node, cfg.Width)
	for i := range state {
		state[i] = n.DFF(data[0], fmt.Sprintf("u_crc[%d]", i))
	}
	// Unroll the serial LFSR: per input bit, fb = msb ^ d; shift left;
	// xor the polynomial taps with fb.
	cur := make([]*logic.Node, cfg.Width)
	copy(cur, state)
	for k := cfg.DataWidth - 1; k >= 0; k-- {
		fb := n.Xor(cur[cfg.Width-1], data[k])
		next := make([]*logic.Node, cfg.Width)
		for i := cfg.Width - 1; i >= 1; i-- {
			if cfg.Poly&(1<<uint(i)) != 0 {
				next[i] = n.Xor(cur[i-1], fb)
			} else {
				next[i] = cur[i-1]
			}
		}
		if cfg.Poly&1 != 0 {
			next[0] = fb
		} else {
			next[0] = n.Const(false)
		}
		cur = next
	}
	for i, ff := range state {
		n.SetFaninLater(ff, n.Mux(en, ff, cur[i]))
		n.Output(fmt.Sprintf("crc[%d]", i), ff)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
