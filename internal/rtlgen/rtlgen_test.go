package rtlgen

import (
	"fmt"
	"testing"

	"stdcelltune/internal/logic"
)

func TestBuildDefaultValid(t *testing.T) {
	m, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	gates := m.Net.GateCount()
	t.Logf("default MCU: %d gate nodes, %d FFs, max level %d",
		gates, len(m.Net.FFs), m.Net.MaxLevel())
	if gates < 8000 || gates > 60000 {
		t.Errorf("gate count %d outside the ~20k-gate design class", gates)
	}
	if len(m.Net.FFs) < 500 {
		t.Errorf("FF count %d too small for a 32-bit MCU with register file", len(m.Net.FFs))
	}
	// Long ripple paths exist (paper's deepest path is ~57 cells).
	if lvl := m.Net.MaxLevel(); lvl < 40 {
		t.Errorf("max combinational level %d; expected deep datapath paths", lvl)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Net.Nodes) != len(b.Net.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(a.Net.Nodes), len(b.Net.Nodes))
	}
	for i := range a.Net.Nodes {
		na, nb := a.Net.Nodes[i], b.Net.Nodes[i]
		if na.Op != nb.Op || na.Name != nb.Name || len(na.Fanin) != len(nb.Fanin) {
			t.Fatalf("node %d differs", i)
		}
	}
}

func TestBadConfigs(t *testing.T) {
	bad := []Config{
		{Width: 2, Registers: 4, MulWidth: 2, Timers: 1},
		{Width: 32, Registers: 3, MulWidth: 8, Timers: 1},  // not power of two
		{Width: 32, Registers: 8, MulWidth: 64, Timers: 1}, // mul wider than datapath
		{Width: 32, Registers: 1, MulWidth: 8, Timers: 1},
	}
	for _, cfg := range bad {
		if _, err := Build(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// buildInstr assembles an instruction for the small config:
// [op:4][rd:2][rs1:2][rs2:2][imm:2] over 12 bits.
func smallInstr(op, rd, rs1, rs2, imm int) uint64 {
	return uint64(op&15)<<8 | uint64(rd&3)<<6 | uint64(rs1&3)<<4 | uint64(rs2&3)<<2 | uint64(imm&3)
}

func setWord(in map[string]bool, name string, v uint64, width int) {
	for i := 0; i < width; i++ {
		in[fmt.Sprintf("%s[%d]", name, i)] = v&(1<<uint(i)) != 0
	}
}

func getWord(out map[string]bool, name string, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		if out[fmt.Sprintf("%s[%d]", name, i)] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// TestCPUExecutesALUOps drives real instructions through the small MCU
// and watches the ALU result: the datapath is functionally alive, not
// just a timing skeleton.
func TestCPUExecutesALUOps(t *testing.T) {
	m, err := Build(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := m.Cfg.Width
	sim := logic.NewSimulator(m.Net)
	// Preload register file state directly: r1=5, r2=3.
	for i := 0; i < w; i++ {
		sim.SetState(fmt.Sprintf("u_rf_r1[%d]", i), 5&(1<<uint(i)) != 0)
		sim.SetState(fmt.Sprintf("u_rf_r2[%d]", i), 3&(1<<uint(i)) != 0)
	}
	const (
		opAdd = 0
		opSub = 1
		opAnd = 2
		opOr  = 3
		opXor = 4
		opMul = 7
	)
	cases := []struct {
		op   int
		want uint64
	}{
		{opAdd, 8}, {opSub, 2}, {opAnd, 1}, {opOr, 7}, {opXor, 6}, {opMul, 15},
	}
	for _, c := range cases {
		in := make(map[string]bool)
		setWord(in, "instr", smallInstr(c.op, 3, 1, 2, 0), w)
		sim.Step(in) // latch IR
		// Re-seed registers (the WB stage may have clobbered them) and
		// evaluate the decode+execute combinationally in the next cycle.
		for i := 0; i < w; i++ {
			sim.SetState(fmt.Sprintf("u_rf_r1[%d]", i), 5&(1<<uint(i)) != 0)
			sim.SetState(fmt.Sprintf("u_rf_r2[%d]", i), 3&(1<<uint(i)) != 0)
		}
		out := sim.Step(in)
		if got := getWord(out, "dbg_alu", w); got != c.want {
			t.Errorf("op %d: alu=%d want %d", c.op, got, c.want)
		}
	}
}

// TestPCAdvances: with no branch, the PC increments by one each cycle.
func TestPCAdvances(t *testing.T) {
	m, err := Build(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := m.Cfg.Width
	sim := logic.NewSimulator(m.Net)
	in := make(map[string]bool)
	setWord(in, "instr", smallInstr(0, 3, 1, 2, 0), w) // plain ADD
	prev := uint64(0)
	for cyc := 0; cyc < 5; cyc++ {
		out := sim.Step(in)
		got := getWord(out, "imem_addr", w)
		if got != prev {
			t.Fatalf("cycle %d: pc=%d want %d", cyc, got, prev)
		}
		prev++
	}
}

// TestBranchRedirectsPC: a BEQ with equal operands rewrites the PC with
// the branch target.
func TestBranchRedirectsPC(t *testing.T) {
	m, err := Build(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := m.Cfg.Width
	sim := logic.NewSimulator(m.Net)
	const opBeq = 11
	in := make(map[string]bool)
	setWord(in, "instr", smallInstr(opBeq, 0, 1, 2, 1), w) // r1==r2? both zero-init: yes
	sim.Step(in)                                           // latch
	out := sim.Step(in)
	if !out["dbg_branch"] {
		t.Fatal("branch not taken for equal registers")
	}
	// PC was 1 at branch evaluation; the 2-bit imm=1 stays +1 after sign
	// extension, so the next PC is 1+1=2.
	out = sim.Step(in)
	if got := getWord(out, "imem_addr", w); got != 2 {
		t.Errorf("pc after branch %d want 2", got)
	}
}

// TestTimerCounts: the free-running timer counter increments and the
// match output fires when counter equals the (zero) compare register —
// i.e. immediately after wrap/start.
func TestTimerCounts(t *testing.T) {
	m, err := Build(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := m.Cfg.Width
	sim := logic.NewSimulator(m.Net)
	in := make(map[string]bool)
	setWord(in, "instr", smallInstr(0, 3, 1, 2, 0), w)
	// Cycle 0: cnt=0, cmp=0 -> eq true -> match DFF set next cycle.
	sim.Step(in)
	out := sim.Step(in)
	if !out["timer_match[0]"] {
		t.Error("timer match should fire one cycle after cnt==cmp")
	}
	// Counter has advanced: match clears.
	out = sim.Step(in)
	if out["timer_match[0]"] {
		t.Error("timer match should clear once counter advances")
	}
}

// TestGPIOOutputsStable: gpio_out register holds unless written via bus.
func TestGPIOHoldsValue(t *testing.T) {
	m, err := Build(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := m.Cfg.Width
	sim := logic.NewSimulator(m.Net)
	sim.SetState("u_gpio_out[0]", true)
	in := make(map[string]bool)
	setWord(in, "instr", smallInstr(0, 3, 1, 2, 0), w) // ADD, no store
	for i := 0; i < 3; i++ {
		out := sim.Step(in)
		if !out["gpio_out[0]"] {
			t.Fatal("gpio_out lost its value without a bus write")
		}
	}
}

func TestOutputsPresent(t *testing.T) {
	m, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	names := m.Net.SortedOutputNames()
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	for _, want := range []string{"imem_addr[0]", "haddr[31]", "sram_we", "timer_match[0]", "timer_match[1]", "busy", "gpio_out[7]"} {
		if !set[want] {
			t.Errorf("output %s missing", want)
		}
	}
	if len(m.ALUResult) != 32 || len(m.PC) != 32 {
		t.Error("debug handles wrong width")
	}
}
