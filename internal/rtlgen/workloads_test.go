package rtlgen

import (
	"fmt"
	"testing"

	"stdcelltune/internal/logic"
)

func TestBuildFIRValid(t *testing.T) {
	n, err := BuildFIR(DefaultFIRConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.GateCount() < 2000 {
		t.Errorf("FIR too small: %d gates", n.GateCount())
	}
	if len(n.FFs) < 8*16 {
		t.Errorf("delay line missing: %d FFs", len(n.FFs))
	}
}

func TestBuildFIRErrors(t *testing.T) {
	for _, cfg := range []FIRConfig{{Taps: 1, Width: 8, CoeffWidth: 4}, {Taps: 4, Width: 1, CoeffWidth: 4}} {
		if _, err := BuildFIR(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestFIRComputes drives an impulse through the small filter and
// expects the coefficients to appear at the output tap by tap.
func TestFIRComputes(t *testing.T) {
	cfg := SmallFIRConfig()
	n, err := BuildFIR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := logic.NewSimulator(n)
	coeffVals := []uint64{3, 5, 7, 11}
	in := make(map[string]bool)
	for tp, v := range coeffVals {
		setWord(in, fmt.Sprintf("coeff%d", tp), v, cfg.CoeffWidth)
	}
	outW := cfg.Width + cfg.CoeffWidth
	// Impulse: sample=1 for one cycle, then zero.
	setWord(in, "sample", 1, cfg.Width)
	sim.Step(in) // acc <- c0*1 (taps empty)
	setWord(in, "sample", 0, cfg.Width)
	// After the impulse, the registered output should walk the
	// coefficient sequence as the 1 travels the delay line.
	for tp := 0; tp < cfg.Taps; tp++ {
		out := sim.Step(in)
		if got := getWord(out, "y", outW); got != coeffVals[tp] {
			t.Fatalf("tap %d: y=%d want %d", tp, got, coeffVals[tp])
		}
	}
	// Line drained: output falls back to zero.
	out := sim.Step(in)
	if got := getWord(out, "y", outW); got != 0 {
		t.Fatalf("drained output %d want 0", got)
	}
}

func TestBuildCRCValid(t *testing.T) {
	n, err := BuildCRC(DefaultCRCConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := n.Counts()
	// XOR-dominated cone.
	if counts[logic.OpXor] < counts[logic.OpAnd] {
		t.Errorf("CRC should be XOR-heavy: xor=%d and=%d", counts[logic.OpXor], counts[logic.OpAnd])
	}
	if _, err := BuildCRC(CRCConfig{Width: 1, DataWidth: 8}); err == nil {
		t.Error("bad config accepted")
	}
}

// crcRef is a bitwise software CRC matching the hardware's convention.
func crcRef(state uint64, data uint64, cfg CRCConfig) uint64 {
	mask := uint64(1)<<uint(cfg.Width) - 1
	for k := cfg.DataWidth - 1; k >= 0; k-- {
		d := (data >> uint(k)) & 1
		fb := ((state >> uint(cfg.Width-1)) & 1) ^ d
		state = (state << 1) & mask
		if fb == 1 {
			state ^= cfg.Poly & mask
			// The top-bit feedback also sets bit 0 only through the
			// polynomial; poly bit 0 handles it.
		}
	}
	return state
}

func TestCRCMatchesSoftware(t *testing.T) {
	cfg := SmallCRCConfig()
	n, err := BuildCRC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := logic.NewSimulator(n)
	state := uint64(0)
	words := []uint64{0xA5, 0x3C, 0xFF, 0x00, 0x81, 0x7E}
	for i, w := range words {
		in := make(map[string]bool)
		in["en"] = true
		setWord(in, "data", w, cfg.DataWidth)
		out := sim.Step(in)
		if got := getWord(out, "crc", cfg.Width); got != state {
			t.Fatalf("word %d: visible crc %02x want %02x", i, got, state)
		}
		state = crcRef(state, w, cfg)
	}
	// Final state lands after the last clock.
	in := make(map[string]bool)
	in["en"] = false
	out := sim.Step(in)
	if got := getWord(out, "crc", cfg.Width); got != state {
		t.Fatalf("final crc %02x want %02x", got, state)
	}
	// With en low the state holds.
	out = sim.Step(in)
	if got := getWord(out, "crc", cfg.Width); got != state {
		t.Fatalf("hold broken: %02x want %02x", got, state)
	}
}
