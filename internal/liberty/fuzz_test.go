package liberty

import (
	"strings"
	"testing"
)

// FuzzParseLiberty drives the parser with arbitrary text. The contract
// under fuzz: Parse returns (library, nil) or (nil, error) — it must
// never panic, and anything it accepts must survive a write/re-parse
// cycle without crashing either side. The seed corpus mixes the
// writer's own output (the richest valid input we can make) with the
// malformed-header shapes real truncated .lib files produce.
func FuzzParseLiberty(f *testing.F) {
	valid, err := WriteString(sampleLibrary())
	if err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		valid,
		valid[:len(valid)/2],          // truncated mid-cell
		valid[:strings.Index(valid, "{")+1], // header only, body missing
		"",
		"library",
		"library (",
		"library (x) {",
		"library (x) { }",
		"library () { cell () { } }",
		"cell (X) { }", // wrong top-level group
		"library (x) { cell (INV_1) { pin (Y) { direction : output ; } } } trailing",
		"library (x) { lu_table_template (t) { index_1 (\"0.1, 0.2\"); } }",
		"library (x) { cell (C_1) { pin (Y) { timing () { cell_rise (t) { values (\"1, 2\", \"3\"); } } } } }",
		"library (x) { /* unterminated comment",
		"library (x) { \"unterminated string",
		strings.Replace(valid, "values", "VALUES", 1),
		strings.Replace(valid, "0.001", "1e999", 1),  // overflow literal
		strings.Replace(valid, "0.001", "not_a_number", 1),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		lib, err := Parse(src)
		if err != nil {
			if lib != nil {
				t.Fatal("non-nil library alongside an error")
			}
			return
		}
		if lib == nil {
			t.Fatal("nil library without an error")
		}
		// Whatever the parser accepts, the writer must be able to
		// serialize (or reject cleanly), and its output must parse back.
		out, werr := WriteString(lib)
		if werr != nil {
			return
		}
		if _, rerr := Parse(out); rerr != nil {
			t.Fatalf("writer output does not re-parse: %v", rerr)
		}
	})
}
