package liberty

import (
	"fmt"
	"strconv"
	"strings"

	"stdcelltune/internal/lut"
)

// Parse reads Liberty text and builds the library model for the subset
// this package emits (library/cell/pin/timing groups, lu_table_template,
// NLDM value tables, LVF sigma tables). Unknown attributes and groups are
// skipped so libraries with extra content still load.
func Parse(src string) (*Library, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("liberty: trailing tokens after library group (at %s)", p.toks[p.pos])
	}
	if g.kind != "library" {
		return nil, fmt.Errorf("liberty: top-level group is %q, want library", g.kind)
	}
	return interpretLibrary(g)
}

// ---------------------------------------------------------------- lexer

type tokKind int

const (
	tokIdent tokKind = iota
	tokString
	tokPunct // one of (){};:,
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string { return fmt.Sprintf("%q (line %d)", t.text, t.line) }

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r' || c == '\\':
			// Backslash only appears as a line continuation; treat as space.
			i++
		case c == '/' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("liberty: unterminated comment at line %d", line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '"':
			j := i + 1
			for j < n && src[j] != '"' {
				if src[j] == '\n' {
					line++
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("liberty: unterminated string at line %d", line)
			}
			toks = append(toks, token{tokString, src[i+1 : j], line})
			i = j + 1
		case strings.IndexByte("(){};:,", c) >= 0:
			toks = append(toks, token{tokPunct, string(c), line})
			i++
		default:
			j := i
			for j < n && !isDelim(src[j]) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("liberty: unexpected character %q at line %d", c, line)
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		}
	}
	return toks, nil
}

func isDelim(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\\' ||
		c == '"' || strings.IndexByte("(){};:,", c) >= 0
}

// ----------------------------------------------------------------- AST

type group struct {
	kind  string
	args  []string
	attrs []attr
	subs  []*group
}

type attr struct {
	name   string
	values []string // simple attrs have one value; complex attrs several
}

func (g *group) attrValue(name string) (string, bool) {
	for _, a := range g.attrs {
		if a.name == name && len(a.values) > 0 {
			return a.values[0], true
		}
	}
	return "", false
}

func (g *group) attrAll(name string) []string {
	for _, a := range g.attrs {
		if a.name == name {
			return a.values
		}
	}
	return nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, error) {
	t, ok := p.peek()
	if !ok {
		return token{}, fmt.Errorf("liberty: unexpected end of input")
	}
	p.pos++
	return t, nil
}

func (p *parser) expectPunct(s string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("liberty: expected %q, got %s", s, t)
	}
	return nil
}

// parseGroup parses: IDENT '(' args ')' '{' body '}'.
func (p *parser) parseGroup() (*group, error) {
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	if t.kind != tokIdent {
		return nil, fmt.Errorf("liberty: expected group name, got %s", t)
	}
	g := &group{kind: t.text}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	g.args, err = p.parseValueList(")")
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("liberty: unterminated group %q", g.kind)
		}
		if t.kind == tokPunct && t.text == "}" {
			p.pos++
			return g, nil
		}
		if err := p.parseStatement(g); err != nil {
			return nil, err
		}
	}
}

// parseStatement parses one of: sub-group, simple attribute, complex
// attribute, and appends it to g.
func (p *parser) parseStatement(g *group) error {
	name, err := p.next()
	if err != nil {
		return err
	}
	if name.kind != tokIdent {
		return fmt.Errorf("liberty: expected statement, got %s", name)
	}
	t, ok := p.peek()
	if !ok {
		return fmt.Errorf("liberty: dangling identifier %s", name)
	}
	switch {
	case t.kind == tokPunct && t.text == ":":
		p.pos++
		vals, err := p.parseValueList(";")
		if err != nil {
			return err
		}
		g.attrs = append(g.attrs, attr{name: name.text, values: vals})
		return nil
	case t.kind == tokPunct && t.text == "(":
		// Look ahead past the matching ')' to decide group vs complex attr.
		depth := 0
		j := p.pos
		for ; j < len(p.toks); j++ {
			if p.toks[j].kind != tokPunct {
				continue
			}
			if p.toks[j].text == "(" {
				depth++
			} else if p.toks[j].text == ")" {
				depth--
				if depth == 0 {
					break
				}
			}
		}
		if j >= len(p.toks) {
			return fmt.Errorf("liberty: unbalanced parentheses after %s", name)
		}
		if j+1 < len(p.toks) && p.toks[j+1].kind == tokPunct && p.toks[j+1].text == "{" {
			p.pos-- // rewind to group name
			sub, err := p.parseGroup()
			if err != nil {
				return err
			}
			g.subs = append(g.subs, sub)
			return nil
		}
		p.pos++ // consume '('
		vals, err := p.parseValueList(")")
		if err != nil {
			return err
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		g.attrs = append(g.attrs, attr{name: name.text, values: vals})
		return nil
	default:
		return fmt.Errorf("liberty: unexpected token %s after %s", t, name)
	}
}

// parseValueList reads comma/space separated idents and strings until the
// closing punctuation (consumed).
func (p *parser) parseValueList(closer string) ([]string, error) {
	var vals []string
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch {
		case t.kind == tokPunct && t.text == closer:
			return vals, nil
		case t.kind == tokPunct && t.text == ",":
			// separator
		case t.kind == tokIdent || t.kind == tokString:
			vals = append(vals, t.text)
		default:
			return nil, fmt.Errorf("liberty: unexpected %s in value list", t)
		}
	}
}

// --------------------------------------------------------- interpretation

func interpretLibrary(g *group) (*Library, error) {
	l := &Library{Name: firstArg(g)}
	if v, ok := g.attrValue("time_unit"); ok {
		l.TimeUnit = v
	}
	if v, ok := g.attrValue("voltage_unit"); ok {
		l.VoltageUnit = v
	}
	if v, ok := g.attrValue("nom_voltage"); ok {
		l.NominalVoltage, _ = strconv.ParseFloat(v, 64)
	}
	if v, ok := g.attrValue("nom_temperature"); ok {
		l.NominalTemp, _ = strconv.ParseFloat(v, 64)
	}
	if v, ok := g.attrValue("nom_process"); ok {
		l.NominalProcess, _ = strconv.ParseFloat(v, 64)
	}
	if v, ok := g.attrValue("default_operating_conditions"); ok {
		l.OperatingCorner = v
	}
	if vs := g.attrAll("capacitive_load_unit"); len(vs) == 2 {
		l.CapacitiveUnit = vs[0] + vs[1]
	}
	for _, sub := range g.subs {
		switch sub.kind {
		case "lu_table_template":
			t, err := interpretTemplate(sub)
			if err != nil {
				return nil, err
			}
			l.Templates = append(l.Templates, t)
		case "cell":
			c, err := interpretCell(sub)
			if err != nil {
				return nil, err
			}
			l.AddCell(c)
		}
	}
	return l, nil
}

func firstArg(g *group) string {
	if len(g.args) > 0 {
		return g.args[0]
	}
	return ""
}

func interpretTemplate(g *group) (*Template, error) {
	t := &Template{Name: firstArg(g)}
	t.Variable1, _ = g.attrValue("variable_1")
	t.Variable2, _ = g.attrValue("variable_2")
	var err error
	if v, ok := g.attrValue("index_1"); ok {
		if t.Index1, err = parseFloats(v); err != nil {
			return nil, fmt.Errorf("template %q index_1: %w", t.Name, err)
		}
	}
	if v, ok := g.attrValue("index_2"); ok {
		if t.Index2, err = parseFloats(v); err != nil {
			return nil, fmt.Errorf("template %q index_2: %w", t.Name, err)
		}
	}
	return t, nil
}

func parseFloats(s string) ([]float64, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' || r == '\n' })
	out := make([]float64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func interpretCell(g *group) (*Cell, error) {
	c := &Cell{Name: firstArg(g)}
	if v, ok := g.attrValue("area"); ok {
		c.Area, _ = strconv.ParseFloat(v, 64)
	}
	if v, ok := g.attrValue("drive_strength"); ok {
		c.DriveStrength, _ = strconv.Atoi(v)
	}
	if v, ok := g.attrValue("cell_footprint"); ok {
		c.Footprint = v
	}
	if v, ok := g.attrValue("is_sequential"); ok {
		c.IsSequential = v == "true"
	}
	if v, ok := g.attrValue("cell_leakage_power"); ok {
		c.LeakagePower, _ = strconv.ParseFloat(v, 64)
	}
	for _, sub := range g.subs {
		if sub.kind != "pin" {
			continue
		}
		p, err := interpretPin(sub)
		if err != nil {
			return nil, fmt.Errorf("cell %q: %w", c.Name, err)
		}
		c.Pins = append(c.Pins, p)
	}
	return c, nil
}

func interpretPin(g *group) (*Pin, error) {
	p := &Pin{Name: firstArg(g)}
	if v, ok := g.attrValue("direction"); ok && v == "output" {
		p.Direction = Output
	}
	if v, ok := g.attrValue("capacitance"); ok {
		p.Capacitance, _ = strconv.ParseFloat(v, 64)
	}
	if v, ok := g.attrValue("max_capacitance"); ok {
		p.MaxCap, _ = strconv.ParseFloat(v, 64)
	}
	if v, ok := g.attrValue("function"); ok {
		p.Function = v
	}
	for _, sub := range g.subs {
		switch sub.kind {
		case "timing":
			a, err := interpretArc(sub)
			if err != nil {
				return nil, fmt.Errorf("pin %q: %w", p.Name, err)
			}
			p.Timing = append(p.Timing, a)
		case "internal_power":
			a, err := interpretPowerArc(sub)
			if err != nil {
				return nil, fmt.Errorf("pin %q: %w", p.Name, err)
			}
			p.Power = append(p.Power, a)
		}
	}
	return p, nil
}

func interpretPowerArc(g *group) (*PowerArc, error) {
	a := &PowerArc{}
	a.RelatedPin, _ = g.attrValue("related_pin")
	for _, sub := range g.subs {
		tb, err := interpretTable(sub)
		if err != nil {
			return nil, fmt.Errorf("power arc from %q: %w", a.RelatedPin, err)
		}
		if a.Template == "" {
			a.Template = firstArg(sub)
		}
		switch sub.kind {
		case "rise_power":
			a.RisePower = tb
		case "fall_power":
			a.FallPower = tb
		}
	}
	return a, nil
}

func interpretArc(g *group) (*TimingArc, error) {
	a := &TimingArc{}
	a.RelatedPin, _ = g.attrValue("related_pin")
	a.Sense, _ = g.attrValue("timing_sense")
	a.Type, _ = g.attrValue("timing_type")
	for _, sub := range g.subs {
		tb, err := interpretTable(sub)
		if err != nil {
			return nil, fmt.Errorf("arc from %q: %w", a.RelatedPin, err)
		}
		if a.Template == "" {
			a.Template = firstArg(sub)
		}
		switch sub.kind {
		case "cell_rise":
			a.CellRise = tb
		case "cell_fall":
			a.CellFall = tb
		case "rise_transition":
			a.RiseTransition = tb
		case "fall_transition":
			a.FallTransition = tb
		case "ocv_sigma_cell_rise":
			a.SigmaRise = tb
		case "ocv_sigma_cell_fall":
			a.SigmaFall = tb
		}
	}
	return a, nil
}

func interpretTable(g *group) (*lut.Table, error) {
	i1, ok := g.attrValue("index_1")
	if !ok {
		return nil, fmt.Errorf("table %q missing index_1", g.kind)
	}
	i2, ok := g.attrValue("index_2")
	if !ok {
		return nil, fmt.Errorf("table %q missing index_2", g.kind)
	}
	loads, err := parseFloats(i1)
	if err != nil {
		return nil, err
	}
	slews, err := parseFloats(i2)
	if err != nil {
		return nil, err
	}
	rows := g.attrAll("values")
	if len(rows) != len(loads) {
		return nil, fmt.Errorf("table %q has %d value rows for %d loads", g.kind, len(rows), len(loads))
	}
	t := lut.New(loads, slews)
	for i, r := range rows {
		vals, err := parseFloats(r)
		if err != nil {
			return nil, err
		}
		if len(vals) != len(slews) {
			return nil, fmt.Errorf("table %q row %d has %d values for %d slews", g.kind, i, len(vals), len(slews))
		}
		copy(t.Values[i], vals)
	}
	return t, nil
}
