package liberty

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"stdcelltune/internal/lut"
)

// Write serializes the library as Liberty text. Cells and pins are
// emitted in their stored order; call SortCells first for a canonical
// file. The emitted subset round-trips through Parse.
func Write(w io.Writer, l *Library) error {
	p := &printer{w: w}
	p.openGroup("library", l.Name)
	p.attr("time_unit", quoted(orDefault(l.TimeUnit, "1ns")))
	// Complex attribute form: capacitive_load_unit (1, pf);
	p.printf("capacitive_load_unit (1, %s);\n", strings.TrimPrefix(orDefault(l.CapacitiveUnit, "1pf"), "1"))
	p.attr("voltage_unit", quoted(orDefault(l.VoltageUnit, "1V")))
	p.attr("nom_voltage", formatFloat(l.NominalVoltage))
	p.attr("nom_temperature", formatFloat(l.NominalTemp))
	p.attr("nom_process", formatFloat(l.NominalProcess))
	if l.OperatingCorner != "" {
		p.attr("default_operating_conditions", l.OperatingCorner)
	}
	for _, t := range l.Templates {
		p.writeTemplate(t)
	}
	for _, c := range l.Cells {
		p.writeCell(c)
	}
	p.closeGroup()
	return p.err
}

// WriteString serializes the library to a string.
func WriteString(l *Library) (string, error) {
	var b strings.Builder
	if err := Write(&b, l); err != nil {
		return "", err
	}
	return b.String(), nil
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

type printer struct {
	w      io.Writer
	indent int
	err    error
}

func (p *printer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, strings.Repeat("  ", p.indent)+format, args...)
}

func (p *printer) openGroup(kind, name string) {
	p.printf("%s (%s) {\n", kind, name)
	p.indent++
}

func (p *printer) closeGroup() {
	p.indent--
	p.printf("}\n")
}

func (p *printer) attr(name, value string) {
	p.printf("%s : %s;\n", name, value)
}

func quoted(s string) string { return `"` + s + `"` }

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func formatFloats(fs []float64) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = formatFloat(f)
	}
	return strings.Join(parts, ", ")
}

func (p *printer) writeTemplate(t *Template) {
	p.openGroup("lu_table_template", t.Name)
	p.attr("variable_1", t.Variable1)
	p.attr("variable_2", t.Variable2)
	p.attr("index_1", quoted(formatFloats(t.Index1)))
	p.attr("index_2", quoted(formatFloats(t.Index2)))
	p.closeGroup()
}

func (p *printer) writeCell(c *Cell) {
	p.openGroup("cell", c.Name)
	p.attr("area", formatFloat(c.Area))
	if c.DriveStrength > 0 {
		p.attr("drive_strength", strconv.Itoa(c.DriveStrength))
	}
	if c.Footprint != "" {
		p.attr("cell_footprint", quoted(c.Footprint))
	}
	if c.IsSequential {
		p.attr("is_sequential", "true")
	}
	if c.LeakagePower > 0 {
		p.attr("cell_leakage_power", formatFloat(c.LeakagePower))
	}
	for _, pin := range c.Pins {
		p.writePin(pin)
	}
	p.closeGroup()
}

func (p *printer) writePin(pin *Pin) {
	p.openGroup("pin", pin.Name)
	p.attr("direction", pin.Direction.String())
	if pin.Direction == Input {
		p.attr("capacitance", formatFloat(pin.Capacitance))
	} else {
		if pin.MaxCap > 0 {
			p.attr("max_capacitance", formatFloat(pin.MaxCap))
		}
		if pin.Function != "" {
			p.attr("function", quoted(pin.Function))
		}
	}
	for _, arc := range pin.Timing {
		p.writeArc(arc)
	}
	for _, pw := range pin.Power {
		p.writePowerArc(pw)
	}
	p.closeGroup()
}

func (p *printer) writePowerArc(a *PowerArc) {
	p.openGroup("internal_power", "")
	p.attr("related_pin", quoted(a.RelatedPin))
	if a.RisePower != nil {
		p.writeTable("rise_power", a.Template, a.RisePower)
	}
	if a.FallPower != nil {
		p.writeTable("fall_power", a.Template, a.FallPower)
	}
	p.closeGroup()
}

func (p *printer) writeArc(a *TimingArc) {
	p.openGroup("timing", "")
	p.attr("related_pin", quoted(a.RelatedPin))
	if a.Sense != "" {
		p.attr("timing_sense", a.Sense)
	}
	if a.Type != "" {
		p.attr("timing_type", a.Type)
	}
	// Stable order for deterministic output.
	order := []struct {
		kind string
		tb   *lut.Table
	}{
		{"cell_rise", a.CellRise},
		{"cell_fall", a.CellFall},
		{"rise_transition", a.RiseTransition},
		{"fall_transition", a.FallTransition},
		{"ocv_sigma_cell_rise", a.SigmaRise},
		{"ocv_sigma_cell_fall", a.SigmaFall},
	}
	for _, e := range order {
		if e.tb != nil {
			p.writeTable(e.kind, a.Template, e.tb)
		}
	}
	p.closeGroup()
}

func (p *printer) writeTable(kind, template string, t *lut.Table) {
	p.openGroup(kind, orDefault(template, "delay_template"))
	p.attr("index_1", quoted(formatFloats(t.Loads)))
	p.attr("index_2", quoted(formatFloats(t.Slews)))
	rows := make([]string, len(t.Values))
	for i, row := range t.Values {
		rows[i] = quoted(formatFloats(row))
	}
	p.printf("values (%s);\n", strings.Join(rows, ", \\\n"+strings.Repeat("  ", p.indent+1)))
	p.closeGroup()
}
