// Package liberty implements the subset of the Liberty (.lib) standard
// cell library format the reproduction needs: non-linear delay model
// (NLDM) timing tables per timing arc, pin capacitances and limits, cell
// area and drive strength, and the LVF-style ocv_sigma tables the
// statistical library is serialized with.
//
// The package provides a typed in-memory model, a writer producing
// Liberty text, and a parser for the same subset; Write followed by Parse
// round-trips the model (property-tested).
package liberty

import (
	"fmt"
	"sort"
	"strings"

	"stdcelltune/internal/lut"
)

// Library is the root of a .lib file.
type Library struct {
	Name string

	// Unit annotations. The reproduction uses ns and pF throughout.
	TimeUnit        string // e.g. "1ns"
	CapacitiveUnit  string // e.g. "1pf"
	VoltageUnit     string // e.g. "1V"
	NominalVoltage  float64
	NominalTemp     float64
	NominalProcess  float64
	OperatingCorner string // e.g. "TT1P1V25C"

	Templates []*Template
	Cells     []*Cell

	cellIndex map[string]*Cell
}

// Template is a lu_table_template: named axes shared by many tables.
// Variable1 indexes the rows (output load in this reproduction) and
// Variable2 the columns (input slew).
type Template struct {
	Name      string
	Variable1 string // "total_output_net_capacitance"
	Variable2 string // "input_net_transition"
	Index1    []float64
	Index2    []float64
}

// Cell is one standard cell.
type Cell struct {
	Name          string
	Area          float64
	DriveStrength int    // parsed from the trailing _<k> of the cell name
	Footprint     string // cells sharing a footprint are swap-compatible sizes
	IsSequential  bool
	LeakagePower  float64 // static leakage, nW
	Pins          []*Pin
}

// Pin is an input or output pin of a cell.
type Pin struct {
	Name        string
	Direction   Direction
	Capacitance float64 // input pin capacitance, pF
	MaxCap      float64 // output pin max load, pF
	Function    string  // boolean function for outputs, Liberty syntax
	Timing      []*TimingArc
	Power       []*PowerArc // internal_power groups
}

// PowerArc carries the internal-power tables of one output pin relative
// to an input pin (Liberty internal_power group). Values are energy per
// transition in pJ, over the same load/slew axes as the timing tables.
type PowerArc struct {
	RelatedPin string
	RisePower  *lut.Table
	FallPower  *lut.Table
	Template   string
}

// PowerArc returns the power arc related to an input pin, or nil.
func (p *Pin) PowerArc(related string) *PowerArc {
	for _, a := range p.Power {
		if a.RelatedPin == related {
			return a
		}
	}
	return nil
}

// Direction distinguishes input from output pins.
type Direction int

// Pin directions.
const (
	Input Direction = iota
	Output
)

func (d Direction) String() string {
	if d == Output {
		return "output"
	}
	return "input"
}

// TimingArc carries the NLDM tables from one related (input) pin to the
// owning output pin.
type TimingArc struct {
	RelatedPin string
	Sense      string // positive_unate | negative_unate | non_unate
	Type       string // "" (combinational) | rising_edge | setup_rising ...

	CellRise       *lut.Table
	CellFall       *lut.Table
	RiseTransition *lut.Table
	FallTransition *lut.Table

	// LVF-style local-variation sigma of the delay tables. Populated in
	// statistical libraries (Section IV of the paper); nil in nominal
	// instances.
	SigmaRise *lut.Table
	SigmaFall *lut.Table

	Template string // name of the lu_table_template the tables use
}

// IsConstraint reports whether the arc is a timing check (setup/hold)
// rather than a delay arc. Constraint arcs live on input pins (e.g. the
// setup of a flip-flop D pin against CK) and their CellRise/CellFall
// tables hold the constraint values.
func (a *TimingArc) IsConstraint() bool {
	return strings.HasPrefix(a.Type, "setup") || strings.HasPrefix(a.Type, "hold")
}

// Tables returns the non-nil delay/transition/sigma tables of the arc
// with stable naming, for code that iterates "all LUTs of an arc".
func (a *TimingArc) Tables() map[string]*lut.Table {
	m := make(map[string]*lut.Table, 6)
	put := func(k string, t *lut.Table) {
		if t != nil {
			m[k] = t
		}
	}
	put("cell_rise", a.CellRise)
	put("cell_fall", a.CellFall)
	put("rise_transition", a.RiseTransition)
	put("fall_transition", a.FallTransition)
	put("ocv_sigma_cell_rise", a.SigmaRise)
	put("ocv_sigma_cell_fall", a.SigmaFall)
	return m
}

// DelayTables returns the cell_rise and cell_fall tables that exist.
func (a *TimingArc) DelayTables() []*lut.Table {
	var ts []*lut.Table
	if a.CellRise != nil {
		ts = append(ts, a.CellRise)
	}
	if a.CellFall != nil {
		ts = append(ts, a.CellFall)
	}
	return ts
}

// SigmaTables returns the sigma tables that exist.
func (a *TimingArc) SigmaTables() []*lut.Table {
	var ts []*lut.Table
	if a.SigmaRise != nil {
		ts = append(ts, a.SigmaRise)
	}
	if a.SigmaFall != nil {
		ts = append(ts, a.SigmaFall)
	}
	return ts
}

// Cell returns the named cell, or nil.
func (l *Library) Cell(name string) *Cell {
	if l.cellIndex == nil {
		l.reindex()
	}
	return l.cellIndex[name]
}

// AddCell appends a cell and keeps the name index current.
func (l *Library) AddCell(c *Cell) {
	l.Cells = append(l.Cells, c)
	if l.cellIndex == nil {
		l.reindex()
	} else {
		l.cellIndex[c.Name] = c
	}
}

func (l *Library) reindex() {
	l.cellIndex = make(map[string]*Cell, len(l.Cells))
	for _, c := range l.Cells {
		l.cellIndex[c.Name] = c
	}
}

// SortCells orders cells by name for deterministic serialization.
func (l *Library) SortCells() {
	sort.Slice(l.Cells, func(i, j int) bool { return l.Cells[i].Name < l.Cells[j].Name })
}

// OutputPins returns the output pins of the cell in declaration order.
func (c *Cell) OutputPins() []*Pin {
	var out []*Pin
	for _, p := range c.Pins {
		if p.Direction == Output {
			out = append(out, p)
		}
	}
	return out
}

// InputPins returns the input pins of the cell in declaration order.
func (c *Cell) InputPins() []*Pin {
	var in []*Pin
	for _, p := range c.Pins {
		if p.Direction == Input {
			in = append(in, p)
		}
	}
	return in
}

// Pin returns the named pin of the cell, or nil.
func (c *Cell) Pin(name string) *Pin {
	for _, p := range c.Pins {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Validate checks structural consistency of the library: unique cell
// names, valid tables, arcs that reference existing input pins.
func (l *Library) Validate() error {
	if l.Name == "" {
		return fmt.Errorf("liberty: library has no name")
	}
	seen := make(map[string]bool, len(l.Cells))
	for _, c := range l.Cells {
		if seen[c.Name] {
			return fmt.Errorf("liberty: duplicate cell %q", c.Name)
		}
		seen[c.Name] = true
		if err := c.Validate(); err != nil {
			return fmt.Errorf("cell %q: %w", c.Name, err)
		}
	}
	return nil
}

// Validate checks one cell: positive area, pins present, arcs reference
// existing input pins and carry valid tables.
func (c *Cell) Validate() error {
	if c.Area <= 0 {
		return fmt.Errorf("non-positive area %g", c.Area)
	}
	if len(c.Pins) == 0 {
		return fmt.Errorf("no pins")
	}
	pinNames := make(map[string]Direction, len(c.Pins))
	for _, p := range c.Pins {
		if _, dup := pinNames[p.Name]; dup {
			return fmt.Errorf("duplicate pin %q", p.Name)
		}
		pinNames[p.Name] = p.Direction
	}
	for _, p := range c.Pins {
		for _, a := range p.Timing {
			if p.Direction != Output && !a.IsConstraint() {
				return fmt.Errorf("delay arc on non-output pin %q", p.Name)
			}
			d, ok := pinNames[a.RelatedPin]
			if !ok {
				return fmt.Errorf("arc references unknown pin %q", a.RelatedPin)
			}
			if d != Input {
				return fmt.Errorf("arc related_pin %q is not an input", a.RelatedPin)
			}
			for name, tb := range a.Tables() {
				if err := tb.Validate(); err != nil {
					return fmt.Errorf("pin %q arc from %q table %s: %w", p.Name, a.RelatedPin, name, err)
				}
			}
		}
		for _, a := range p.Power {
			if p.Direction != Output {
				return fmt.Errorf("internal_power on non-output pin %q", p.Name)
			}
			if d, ok := pinNames[a.RelatedPin]; !ok || d != Input {
				return fmt.Errorf("power arc references bad pin %q", a.RelatedPin)
			}
			for _, tb := range []*lut.Table{a.RisePower, a.FallPower} {
				if tb == nil {
					continue
				}
				if err := tb.Validate(); err != nil {
					return fmt.Errorf("pin %q power arc from %q: %w", p.Name, a.RelatedPin, err)
				}
			}
		}
	}
	return nil
}
