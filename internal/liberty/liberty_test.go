package liberty

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"stdcelltune/internal/lut"
)

func sampleTable(k float64) *lut.Table {
	return lut.NewFilled(
		[]float64{0.001, 0.004, 0.016},
		[]float64{0.01, 0.05, 0.2},
		func(l, s float64) float64 { return k * (0.02 + 3*l + 0.4*s) },
	)
}

func sampleLibrary() *Library {
	l := &Library{
		Name:            "tt_test",
		TimeUnit:        "1ns",
		CapacitiveUnit:  "1pf",
		VoltageUnit:     "1V",
		NominalVoltage:  1.1,
		NominalTemp:     25,
		NominalProcess:  1,
		OperatingCorner: "TT1P1V25C",
		Templates: []*Template{{
			Name:      "delay_template",
			Variable1: "total_output_net_capacitance",
			Variable2: "input_net_transition",
			Index1:    []float64{0.001, 0.004, 0.016},
			Index2:    []float64{0.01, 0.05, 0.2},
		}},
	}
	inv := &Cell{
		Name:          "INV_2",
		Area:          1.4,
		DriveStrength: 2,
		Footprint:     "INV",
		Pins: []*Pin{
			{Name: "A", Direction: Input, Capacitance: 0.0021},
			{Name: "Y", Direction: Output, MaxCap: 0.08, Function: "!A",
				Timing: []*TimingArc{{
					RelatedPin:     "A",
					Sense:          "negative_unate",
					Template:       "delay_template",
					CellRise:       sampleTable(1),
					CellFall:       sampleTable(0.9),
					RiseTransition: sampleTable(0.5),
					FallTransition: sampleTable(0.45),
					SigmaRise:      sampleTable(0.05),
					SigmaFall:      sampleTable(0.04),
				}},
			},
		},
	}
	nand := &Cell{
		Name:          "ND2_1",
		Area:          1.1,
		DriveStrength: 1,
		Footprint:     "ND2",
		Pins: []*Pin{
			{Name: "A", Direction: Input, Capacitance: 0.0018},
			{Name: "B", Direction: Input, Capacitance: 0.0018},
			{Name: "Y", Direction: Output, MaxCap: 0.05, Function: "!(A B)",
				Timing: []*TimingArc{
					{RelatedPin: "A", Sense: "negative_unate", Template: "delay_template",
						CellRise: sampleTable(1.2), CellFall: sampleTable(1.1),
						RiseTransition: sampleTable(0.6), FallTransition: sampleTable(0.55)},
					{RelatedPin: "B", Sense: "negative_unate", Template: "delay_template",
						CellRise: sampleTable(1.25), CellFall: sampleTable(1.15),
						RiseTransition: sampleTable(0.62), FallTransition: sampleTable(0.57)},
				},
			},
		},
	}
	ff := &Cell{
		Name:          "DFQ_1",
		Area:          4.2,
		DriveStrength: 1,
		IsSequential:  true,
		Pins: []*Pin{
			{Name: "D", Direction: Input, Capacitance: 0.002},
			{Name: "CK", Direction: Input, Capacitance: 0.0025},
			{Name: "Q", Direction: Output, MaxCap: 0.06,
				Timing: []*TimingArc{{
					RelatedPin: "CK", Sense: "non_unate", Type: "rising_edge",
					Template: "delay_template",
					CellRise: sampleTable(2), CellFall: sampleTable(1.9),
					RiseTransition: sampleTable(0.7), FallTransition: sampleTable(0.66),
				}},
			},
		},
	}
	l.AddCell(inv)
	l.AddCell(nand)
	l.AddCell(ff)
	return l
}

func TestValidateSample(t *testing.T) {
	if err := sampleLibrary().Validate(); err != nil {
		t.Fatalf("sample library invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	l := sampleLibrary()
	l.Name = ""
	if err := l.Validate(); err == nil {
		t.Error("unnamed library accepted")
	}

	l = sampleLibrary()
	l.AddCell(&Cell{Name: "INV_2", Area: 1, Pins: []*Pin{{Name: "A"}}})
	if err := l.Validate(); err == nil {
		t.Error("duplicate cell accepted")
	}

	l = sampleLibrary()
	l.Cell("INV_2").Area = 0
	if err := l.Validate(); err == nil {
		t.Error("zero-area cell accepted")
	}

	l = sampleLibrary()
	l.Cell("INV_2").Pins[1].Timing[0].RelatedPin = "NOPE"
	if err := l.Validate(); err == nil {
		t.Error("arc to unknown pin accepted")
	}

	l = sampleLibrary()
	l.Cell("INV_2").Pins[0].Timing = l.Cell("INV_2").Pins[1].Timing
	if err := l.Validate(); err == nil {
		t.Error("timing arc on input pin accepted")
	}

	l = sampleLibrary()
	// Arc whose related pin is an output.
	y := l.Cell("ND2_1").Pin("Y")
	y.Timing[0].RelatedPin = "Y"
	if err := l.Validate(); err == nil {
		t.Error("arc related to output pin accepted")
	}
}

func TestCellAccessors(t *testing.T) {
	l := sampleLibrary()
	c := l.Cell("ND2_1")
	if c == nil {
		t.Fatal("ND2_1 missing")
	}
	if got := len(c.InputPins()); got != 2 {
		t.Errorf("inputs %d want 2", got)
	}
	if got := len(c.OutputPins()); got != 1 {
		t.Errorf("outputs %d want 1", got)
	}
	if c.Pin("B") == nil || c.Pin("ZZZ") != nil {
		t.Error("Pin lookup broken")
	}
	if l.Cell("missing") != nil {
		t.Error("missing cell should be nil")
	}
}

func TestArcTables(t *testing.T) {
	l := sampleLibrary()
	arc := l.Cell("INV_2").Pin("Y").Timing[0]
	m := arc.Tables()
	for _, k := range []string{"cell_rise", "cell_fall", "rise_transition", "fall_transition", "ocv_sigma_cell_rise", "ocv_sigma_cell_fall"} {
		if m[k] == nil {
			t.Errorf("missing table %s", k)
		}
	}
	if n := len(arc.DelayTables()); n != 2 {
		t.Errorf("DelayTables len %d want 2", n)
	}
	if n := len(arc.SigmaTables()); n != 2 {
		t.Errorf("SigmaTables len %d want 2", n)
	}
	nom := l.Cell("ND2_1").Pin("Y").Timing[0]
	if n := len(nom.SigmaTables()); n != 0 {
		t.Errorf("nominal arc has %d sigma tables", n)
	}
}

func TestWriteContainsStructure(t *testing.T) {
	s, err := WriteString(sampleLibrary())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"library (tt_test)",
		"lu_table_template (delay_template)",
		"cell (INV_2)",
		`related_pin : "A"`,
		"ocv_sigma_cell_rise",
		"timing_type : rising_edge",
		"capacitive_load_unit (1, pf);",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func tablesEqual(a, b *lut.Table) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if !lut.SameAxes(a, b) {
		return false
	}
	for i := range a.Values {
		for j := range a.Values[i] {
			if math.Abs(a.Values[i][j]-b.Values[i][j]) > 1e-12 {
				return false
			}
		}
	}
	return true
}

func librariesEqual(t *testing.T, a, b *Library) {
	t.Helper()
	if a.Name != b.Name || a.TimeUnit != b.TimeUnit || a.CapacitiveUnit != b.CapacitiveUnit {
		t.Fatalf("header mismatch: %+v vs %+v", a, b)
	}
	if a.NominalVoltage != b.NominalVoltage || a.NominalTemp != b.NominalTemp || a.OperatingCorner != b.OperatingCorner {
		t.Fatalf("conditions mismatch")
	}
	if len(a.Templates) != len(b.Templates) {
		t.Fatalf("template count %d vs %d", len(a.Templates), len(b.Templates))
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell count %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i, ca := range a.Cells {
		cb := b.Cells[i]
		if ca.Name != cb.Name || ca.Area != cb.Area || ca.DriveStrength != cb.DriveStrength ||
			ca.Footprint != cb.Footprint || ca.IsSequential != cb.IsSequential {
			t.Fatalf("cell %q header mismatch: %+v vs %+v", ca.Name, ca, cb)
		}
		if len(ca.Pins) != len(cb.Pins) {
			t.Fatalf("cell %q pin count", ca.Name)
		}
		for j, pa := range ca.Pins {
			pb := cb.Pins[j]
			if pa.Name != pb.Name || pa.Direction != pb.Direction ||
				pa.Capacitance != pb.Capacitance || pa.MaxCap != pb.MaxCap || pa.Function != pb.Function {
				t.Fatalf("cell %q pin %q mismatch: %+v vs %+v", ca.Name, pa.Name, pa, pb)
			}
			if len(pa.Timing) != len(pb.Timing) {
				t.Fatalf("cell %q pin %q arc count", ca.Name, pa.Name)
			}
			for k, aa := range pa.Timing {
				ab := pb.Timing[k]
				if aa.RelatedPin != ab.RelatedPin || aa.Sense != ab.Sense || aa.Type != ab.Type {
					t.Fatalf("arc header mismatch")
				}
				ta, tb := aa.Tables(), ab.Tables()
				if len(ta) != len(tb) {
					t.Fatalf("arc table count mismatch")
				}
				for name := range ta {
					if !tablesEqual(ta[name], tb[name]) {
						t.Fatalf("cell %q pin %q arc %d table %s differs", ca.Name, pa.Name, k, name)
					}
				}
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	orig := sampleLibrary()
	s, err := WriteString(orig)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(s)
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, s)
	}
	librariesEqual(t, orig, parsed)
	if err := parsed.Validate(); err != nil {
		t.Fatalf("parsed library invalid: %v", err)
	}
}

// Property: random libraries round-trip through Write/Parse.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := &Library{
			Name:           "rnd",
			TimeUnit:       "1ns",
			CapacitiveUnit: "1pf",
			VoltageUnit:    "1V",
			NominalVoltage: 1.1,
			NominalTemp:    25,
		}
		nCells := rng.Intn(4) + 1
		for c := 0; c < nCells; c++ {
			nin := rng.Intn(3) + 1
			cell := &Cell{
				Name:          "C" + string(rune('A'+c)) + "_1",
				Area:          1 + rng.Float64()*10,
				DriveStrength: rng.Intn(8) + 1,
			}
			var arcs []*TimingArc
			for i := 0; i < nin; i++ {
				pin := &Pin{Name: "I" + string(rune('0'+i)), Direction: Input, Capacitance: rng.Float64() * 0.01}
				cell.Pins = append(cell.Pins, pin)
				tb := lut.NewFilled(
					[]float64{0.001, 0.01},
					[]float64{0.02, 0.2, 0.8},
					func(l, s float64) float64 { return rng.Float64() },
				)
				arcs = append(arcs, &TimingArc{
					RelatedPin: pin.Name, Sense: "negative_unate",
					CellRise: tb, CellFall: tb.Clone(),
					RiseTransition: tb.Clone(), FallTransition: tb.Clone(),
				})
			}
			cell.Pins = append(cell.Pins, &Pin{Name: "Y", Direction: Output, MaxCap: 0.1, Function: "!I0", Timing: arcs})
			l.AddCell(cell)
		}
		s, err := WriteString(l)
		if err != nil {
			return false
		}
		got, err := Parse(s)
		if err != nil {
			t.Logf("parse error: %v", err)
			return false
		}
		st := &testing.T{}
		librariesEqual(st, l, got)
		return !st.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"not library", "cell (X) { }"},
		{"unterminated group", "library (l) { cell (c) {"},
		{"unterminated string", `library (l) { time_unit : "1ns`},
		{"unterminated comment", "library (l) { /* foo }"},
		{"trailing tokens", "library (l) { } extra"},
		{"bad float in index", `library (l) { cell (c) { area : 1; pin (Y) { direction : output; timing () { related_pin : "A"; cell_rise (t) { index_1 ("x"); index_2 ("1"); values ("1"); } } } } }`},
		{"row count mismatch", `library (l) { cell (c) { area : 1; pin (Y) { direction : output; timing () { related_pin : "A"; cell_rise (t) { index_1 ("1, 2"); index_2 ("1"); values ("1"); } } } } }`},
		{"col count mismatch", `library (l) { cell (c) { area : 1; pin (Y) { direction : output; timing () { related_pin : "A"; cell_rise (t) { index_1 ("1"); index_2 ("1, 2"); values ("1"); } } } } }`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseSkipsUnknownContent(t *testing.T) {
	src := `
/* header comment */
library (weird) {
  time_unit : "1ns";
  some_unknown_attr : 42;
  operating_conditions (fast) {
    process : 1;
  }
  cell (BUF_1) {
    area : 2.0;
    unknown_complex (a, b, c);
    pin (A) { direction : input; capacitance : 0.003; }
    pin (Y) {
      direction : output;
      function : "A";
      timing () {
        related_pin : "A";
        cell_rise (tpl) {
          index_1 ("0.001, 0.01");
          index_2 ("0.02, 0.2");
          values ("0.1, 0.2", "0.3, 0.4");
        }
      }
    }
  }
}
`
	l, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name != "weird" {
		t.Errorf("name %q", l.Name)
	}
	c := l.Cell("BUF_1")
	if c == nil {
		t.Fatal("cell missing")
	}
	cr := c.Pin("Y").Timing[0].CellRise
	if cr == nil || cr.Values[1][1] != 0.4 {
		t.Fatalf("table not parsed: %+v", cr)
	}
}

func TestDirectionString(t *testing.T) {
	if Input.String() != "input" || Output.String() != "output" {
		t.Error("Direction.String broken")
	}
}

func TestPowerGroupsRoundTrip(t *testing.T) {
	l := sampleLibrary()
	c := l.Cell("INV_2")
	c.LeakagePower = 3.25
	y := c.Pin("Y")
	y.Power = append(y.Power, &PowerArc{
		RelatedPin: "A",
		Template:   "delay_template",
		RisePower:  sampleTable(0.02),
		FallPower:  sampleTable(0.018),
	})
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	text, err := WriteString(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cell_leakage_power : 3.25", "internal_power ()", "rise_power", "fall_power"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	bc := back.Cell("INV_2")
	if bc.LeakagePower != 3.25 {
		t.Errorf("leakage lost: %g", bc.LeakagePower)
	}
	pa := bc.Pin("Y").PowerArc("A")
	if pa == nil {
		t.Fatal("power arc lost")
	}
	if !tablesEqual(pa.RisePower, y.Power[0].RisePower) || !tablesEqual(pa.FallPower, y.Power[0].FallPower) {
		t.Error("power tables corrupted in round trip")
	}
	if bc.Pin("Y").PowerArc("NOPE") != nil {
		t.Error("unknown power arc found")
	}
}

func TestPowerValidation(t *testing.T) {
	l := sampleLibrary()
	c := l.Cell("INV_2")
	// Power arc on an input pin is invalid.
	c.Pin("A").Power = append(c.Pin("A").Power, &PowerArc{RelatedPin: "A"})
	if err := l.Validate(); err == nil {
		t.Error("internal_power on input pin accepted")
	}
	l2 := sampleLibrary()
	c2 := l2.Cell("INV_2")
	c2.Pin("Y").Power = append(c2.Pin("Y").Power, &PowerArc{RelatedPin: "NOPE"})
	if err := l2.Validate(); err == nil {
		t.Error("power arc to unknown pin accepted")
	}
}

// TestParserNeverPanics feeds random byte soup and mutated valid
// libraries to the parser: errors are fine, panics are not.
func TestParserNeverPanics(t *testing.T) {
	valid, err := WriteString(sampleLibrary())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("library(cel){}:;,\"\\ \n\t/*0.19-eXy_")
	for i := 0; i < 500; i++ {
		var src string
		switch i % 3 {
		case 0: // pure noise
			b := make([]byte, rng.Intn(200))
			for j := range b {
				b[j] = alphabet[rng.Intn(len(alphabet))]
			}
			src = string(b)
		case 1: // truncated valid library
			src = valid[:rng.Intn(len(valid))]
		default: // valid with a corrupted window
			b := []byte(valid)
			for k := 0; k < 5; k++ {
				b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
			}
			src = string(b)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on input %d: %v", i, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}
