// Package synth is the timing-driven synthesis substrate: it covers the
// technology-independent logic network with cells from the 304-cell
// catalogue (phase-aware pattern matching: NAND/NOR/XNOR forms, B-input
// variants, full/half adder inference, mux mapping), then sizes gates,
// repairs slew/load legality and recovers area against a clock
// constraint — honoring the per-pin slew/load windows produced by the
// library tuner, which is exactly the mechanism the paper uses to bind
// synthesis to the robust region of each cell's LUT.
package synth

import (
	"fmt"

	"stdcelltune/internal/logic"
	"stdcelltune/internal/netlist"
	"stdcelltune/internal/stdcell"
)

// mapper converts a logic.Network into a netlist.Netlist of
// minimum-drive cells.
type mapper struct {
	src    *logic.Network
	nl     *netlist.Netlist
	cat    *stdcell.Catalogue
	fanout []int

	// memo[2*id+phase] -> net (phase 1 = inverted).
	memo map[int]*netlist.Net
	// Full-adder instances by fanin-ID triple.
	fa map[[3]int]*netlist.Instance
	// Half-adder pairing: XOR/AND nodes with identical fanin pairs.
	xorByPair map[[2]int]*logic.Node
	andByPair map[[2]int]*logic.Node
	ha        map[[2]int]*netlist.Instance

	ffNet map[int]*netlist.Net // DFF logic node ID -> Q net
	tieH  *netlist.Net
	tieL  *netlist.Net
}

// Map covers the logic network with minimum-drive standard cells.
func Map(name string, src *logic.Network, cat *stdcell.Catalogue) (*netlist.Netlist, error) {
	if err := src.Validate(); err != nil {
		return nil, fmt.Errorf("synth: source network invalid: %w", err)
	}
	m := &mapper{
		src:       src,
		nl:        netlist.New(name, cat),
		cat:       cat,
		fanout:    src.FanoutCounts(),
		memo:      make(map[int]*netlist.Net),
		fa:        make(map[[3]int]*netlist.Instance),
		xorByPair: make(map[[2]int]*logic.Node),
		andByPair: make(map[[2]int]*logic.Node),
		ha:        make(map[[2]int]*netlist.Instance),
		ffNet:     make(map[int]*netlist.Net),
	}
	// Index XOR/AND pairs for half-adder inference.
	for _, n := range src.Nodes {
		if len(n.Fanin) == 2 {
			k := [2]int{n.Fanin[0].ID, n.Fanin[1].ID}
			switch n.Op {
			case logic.OpXor:
				m.xorByPair[k] = n
			case logic.OpAnd:
				m.andByPair[k] = n
			}
		}
	}
	// Primary inputs.
	for _, in := range src.Inputs {
		m.memo[2*in.ID] = m.nl.AddInput(in.Name)
	}
	// Flip-flops: allocate instances up front (Q nets are sources), wire
	// D afterwards.
	dff := cat.Spec("DFQ_1")
	for _, ff := range src.FFs {
		inst := m.nl.AddInstance(ff.Name, dff)
		q := m.nl.AddNet(ff.Name + "_q")
		m.nl.Drive(inst, "Q", q)
		m.ffNet[ff.ID] = q
		m.memo[2*ff.ID] = q
	}
	// Outputs pull the reachable cone.
	for _, p := range src.Outputs {
		m.nl.MarkOutput(p.Name, m.net(p.Node, false))
	}
	// FF D inputs pull their cones too.
	for i, ff := range src.FFs {
		inst := m.nl.Instances[i] // FFs were added first, in order
		m.nl.Connect(inst, "D", m.net(ff.Fanin[0], false))
	}
	if err := m.nl.Validate(); err != nil {
		return nil, fmt.Errorf("synth: mapped netlist invalid: %w", err)
	}
	return m.nl, nil
}

func phaseKey(n *logic.Node, neg bool) int {
	k := 2 * n.ID
	if neg {
		k++
	}
	return k
}

// cheapNeg reports whether the inverted phase of n is (almost) free.
func (m *mapper) cheapNeg(n *logic.Node) bool {
	if n.Op == logic.OpInv || n.Op == logic.OpConst0 || n.Op == logic.OpConst1 {
		return true
	}
	_, ok := m.memo[phaseKey(n, true)]
	return ok
}

// net returns the net computing node n in the requested phase, mapping
// cells on demand.
func (m *mapper) net(n *logic.Node, neg bool) *netlist.Net {
	if got, ok := m.memo[phaseKey(n, neg)]; ok {
		return got
	}
	var out *netlist.Net
	switch n.Op {
	case logic.OpInput:
		// Positive phase pre-seeded; negative needs an inverter.
		out = m.inverterOf(m.net(n, false))
	case logic.OpConst0:
		if neg {
			out = m.tieHigh()
		} else {
			out = m.tieLow()
		}
	case logic.OpConst1:
		if neg {
			out = m.tieLow()
		} else {
			out = m.tieHigh()
		}
	case logic.OpDFF:
		out = m.inverterOf(m.net(n, false)) // positive pre-seeded
	case logic.OpBuf:
		out = m.net(n.Fanin[0], neg)
	case logic.OpInv:
		out = m.net(n.Fanin[0], !neg)
	case logic.OpAnd:
		out = m.mapAnd(n, neg)
	case logic.OpOr:
		out = m.mapOr(n, neg)
	case logic.OpXor:
		out = m.mapXor(n, neg)
	case logic.OpMux:
		out = m.mapMux(n, neg)
	case logic.OpSum3:
		out = m.mapSum3(n, neg)
	case logic.OpMaj3:
		out = m.mapMaj3(n, neg)
	default:
		panic(fmt.Sprintf("synth: cannot map op %v", n.Op))
	}
	m.memo[phaseKey(n, neg)] = out
	return out
}

// newCell places the named cell, connecting inputs in pin order, and
// returns its (first) output net.
func (m *mapper) newCell(cellName string, pins []string, nets []*netlist.Net) *netlist.Net {
	spec := m.cat.Spec(cellName)
	if spec == nil {
		panic("synth: unknown cell " + cellName)
	}
	inst := m.nl.AddInstance("", spec)
	for i, p := range pins {
		m.nl.Connect(inst, p, nets[i])
	}
	out := m.nl.AddNet("")
	m.nl.Drive(inst, spec.Outputs[0], out)
	return out
}

func (m *mapper) inverterOf(in *netlist.Net) *netlist.Net {
	return m.newCell("INV_1", []string{"A"}, []*netlist.Net{in})
}

func (m *mapper) tieHigh() *netlist.Net {
	if m.tieH == nil {
		m.tieH = m.newCell("TIEH_1", nil, nil)
	}
	return m.tieH
}

func (m *mapper) tieLow() *netlist.Net {
	if m.tieL == nil {
		m.tieL = m.newCell("TIEL_1", nil, nil)
	}
	return m.tieL
}

// leaves collects the fanin frontier of a same-op tree rooted at n: the
// direct fanins, repeatedly expanding any frontier node of the same op
// whose only consumer is this tree, as long as the frontier stays within
// max leaves. This is what lets an AND-chain become a single ND3/ND4.
func (m *mapper) leaves(n *logic.Node, op logic.Op, max int) []*logic.Node {
	out := append([]*logic.Node(nil), n.Fanin...)
	for {
		expanded := false
		for i, x := range out {
			if x.Op != op || m.fanout[x.ID] != 1 {
				continue
			}
			if len(out)-1+len(x.Fanin) > max {
				continue
			}
			repl := append([]*logic.Node(nil), out[:i]...)
			repl = append(repl, x.Fanin...)
			repl = append(repl, out[i+1:]...)
			out = repl
			expanded = true
			break
		}
		if !expanded {
			return out
		}
	}
}

// mapAnd covers an AND(-tree). neg=true yields the NAND form.
func (m *mapper) mapAnd(n *logic.Node, neg bool) *netlist.Net {
	// Half-adder pairing first: AND(a,b) with a sibling XOR(a,b) -> ADDH.CO.
	if !neg {
		if inst := m.halfAdder(n); inst != nil {
			return m.faOutput(inst, "CO")
		}
	}
	lv := m.leaves(n, logic.OpAnd, 4)
	if !neg && len(lv) == 2 {
		a, b := lv[0], lv[1]
		switch {
		case a.Op == logic.OpInv && b.Op == logic.OpInv:
			// !x * !y = NR2(x, y)
			return m.newCell("NR2_1", []string{"A", "B"},
				[]*netlist.Net{m.net(a.Fanin[0], false), m.net(b.Fanin[0], false)})
		case b.Op == logic.OpInv:
			// a * !y = NR2B(AN=a, B=y)
			return m.newCell("NR2B_1", []string{"AN", "B"},
				[]*netlist.Net{m.net(a, false), m.net(b.Fanin[0], false)})
		case a.Op == logic.OpInv:
			return m.newCell("NR2B_1", []string{"AN", "B"},
				[]*netlist.Net{m.net(b, false), m.net(a.Fanin[0], false)})
		}
	}
	if neg && len(lv) == 2 {
		a, b := lv[0], lv[1]
		if b.Op == logic.OpInv {
			// !(a * !y) = ND2B... ND2B(AN,B) = !(!AN * B); want !(a*!y) =
			// ND2B(AN=y? ) -> !(!y * a): AN=y, B=a.
			return m.newCell("ND2B_1", []string{"AN", "B"},
				[]*netlist.Net{m.net(b.Fanin[0], false), m.net(a, false)})
		}
		if a.Op == logic.OpInv {
			return m.newCell("ND2B_1", []string{"AN", "B"},
				[]*netlist.Net{m.net(a.Fanin[0], false), m.net(b, false)})
		}
	}
	// NAND-k over positive leaves.
	nets := make([]*netlist.Net, len(lv))
	for i, l := range lv {
		nets[i] = m.net(l, false)
	}
	nand := m.newCell(fmt.Sprintf("ND%d_1", len(lv)), nandPins(len(lv)), nets)
	if neg {
		return nand
	}
	// Positive AND: NOR over cheap negations beats NAND+INV when all
	// leaves invert for free.
	allCheap := len(lv) <= 4
	for _, l := range lv {
		if !m.cheapNeg(l) {
			allCheap = false
			break
		}
	}
	if allCheap {
		negNets := make([]*netlist.Net, len(lv))
		for i, l := range lv {
			negNets[i] = m.net(l, true)
		}
		return m.newCell(fmt.Sprintf("NR%d_1", len(lv)), nandPins(len(lv)), negNets)
	}
	return m.inverterOf(nand)
}

// mapOr covers an OR(-tree). neg=true yields the NOR form.
func (m *mapper) mapOr(n *logic.Node, neg bool) *netlist.Net {
	lv := m.leaves(n, logic.OpOr, 4)
	if len(lv) == 2 {
		a, b := lv[0], lv[1]
		if !neg {
			switch {
			case a.Op == logic.OpInv && b.Op == logic.OpInv:
				// !x + !y = ND2(x, y)
				return m.newCell("ND2_1", []string{"A", "B"},
					[]*netlist.Net{m.net(a.Fanin[0], false), m.net(b.Fanin[0], false)})
			case b.Op == logic.OpInv:
				// a + !y = ND2B(AN=a, B=y): !( !a * y ) = a + !y
				return m.newCell("ND2B_1", []string{"AN", "B"},
					[]*netlist.Net{m.net(a, false), m.net(b.Fanin[0], false)})
			case a.Op == logic.OpInv:
				return m.newCell("ND2B_1", []string{"AN", "B"},
					[]*netlist.Net{m.net(b, false), m.net(a.Fanin[0], false)})
			}
		} else {
			if b.Op == logic.OpInv {
				// !(a + !y) = NR2B... NR2B(AN,B)=!(!AN+B); want !(!y + a):
				// AN=y, B=a.
				return m.newCell("NR2B_1", []string{"AN", "B"},
					[]*netlist.Net{m.net(b.Fanin[0], false), m.net(a, false)})
			}
			if a.Op == logic.OpInv {
				return m.newCell("NR2B_1", []string{"AN", "B"},
					[]*netlist.Net{m.net(a.Fanin[0], false), m.net(b, false)})
			}
		}
	}
	nets := make([]*netlist.Net, len(lv))
	for i, l := range lv {
		nets[i] = m.net(l, false)
	}
	if neg {
		return m.newCell(fmt.Sprintf("NR%d_1", len(lv)), nandPins(len(lv)), nets)
	}
	return m.newCell(fmt.Sprintf("OR%d_1", len(lv)), nandPins(len(lv)), nets)
}

// mapXor covers XOR(-trees) with XNOR cells.
func (m *mapper) mapXor(n *logic.Node, neg bool) *netlist.Net {
	// Half-adder pairing first: XOR(a,b) with a sibling AND(a,b) -> ADDH.S.
	if !neg {
		if inst := m.halfAdder(n); inst != nil {
			return m.faOutput(inst, "S")
		}
	}
	lv := m.leaves(n, logic.OpXor, 3)
	// Absorb an inverted leaf: a ^ !b = !(a ^ b).
	for i, l := range lv {
		if l.Op == logic.OpInv {
			lv[i] = l.Fanin[0]
			neg = !neg
		}
	}
	nets := make([]*netlist.Net, len(lv))
	for i, l := range lv {
		nets[i] = m.net(l, false)
	}
	var xnr *netlist.Net
	if len(lv) == 3 {
		xnr = m.newCell("XNR3_1", []string{"A", "B", "C"}, nets)
	} else {
		xnr = m.newCell("XNR2_1", []string{"A", "B"}, nets)
	}
	if neg {
		return xnr
	}
	return m.inverterOf(xnr)
}

func (m *mapper) mapMux(n *logic.Node, neg bool) *netlist.Net {
	sel, d0, d1 := n.Fanin[0], n.Fanin[1], n.Fanin[2]
	if neg && m.cheapNeg(d0) && m.cheapNeg(d1) {
		return m.newCell("MUX2_1", []string{"S", "D0", "D1"},
			[]*netlist.Net{m.net(sel, false), m.net(d0, true), m.net(d1, true)})
	}
	pos := m.newCell("MUX2_1", []string{"S", "D0", "D1"},
		[]*netlist.Net{m.net(sel, false), m.net(d0, false), m.net(d1, false)})
	if neg {
		return m.inverterOf(pos)
	}
	return pos
}

func (m *mapper) mapSum3(n *logic.Node, neg bool) *netlist.Net {
	if neg {
		// !(a^b^c) = XNR3.
		nets := []*netlist.Net{
			m.net(n.Fanin[0], false), m.net(n.Fanin[1], false), m.net(n.Fanin[2], false),
		}
		return m.newCell("XNR3_1", []string{"A", "B", "C"}, nets)
	}
	inst := m.fullAdder(n.Fanin)
	return m.faOutput(inst, "S")
}

func (m *mapper) mapMaj3(n *logic.Node, neg bool) *netlist.Net {
	inst := m.fullAdder(n.Fanin)
	if !neg {
		if inst.Spec.Family == "ADDC" {
			// Invert the inverted carry.
			return m.inverterOf(m.faOutput(inst, "CON"))
		}
		return m.faOutput(inst, "CO")
	}
	if inst.Spec.Family == "ADDC" {
		return m.faOutput(inst, "CON")
	}
	return m.inverterOf(m.faOutput(inst, "CO"))
}

// fullAdder returns the shared ADDF/ADDC instance for a fanin triple.
func (m *mapper) fullAdder(fanin []*logic.Node) *netlist.Instance {
	k := [3]int{fanin[0].ID, fanin[1].ID, fanin[2].ID}
	if inst, ok := m.fa[k]; ok {
		return inst
	}
	spec := m.cat.Spec("ADDF_1")
	inst := m.nl.AddInstance("", spec)
	m.nl.Connect(inst, "A", m.net(fanin[0], false))
	m.nl.Connect(inst, "B", m.net(fanin[1], false))
	m.nl.Connect(inst, "CI", m.net(fanin[2], false))
	m.fa[k] = inst
	return inst
}

// halfAdder returns a shared ADDH instance when both XOR(a,b) and
// AND(a,b) exist in the source network; nil otherwise.
func (m *mapper) halfAdder(n *logic.Node) *netlist.Instance {
	k := [2]int{n.Fanin[0].ID, n.Fanin[1].ID}
	if m.xorByPair[k] == nil || m.andByPair[k] == nil {
		return nil
	}
	if inst, ok := m.ha[k]; ok {
		return inst
	}
	inst := m.nl.AddInstance("", m.cat.Spec("ADDH_1"))
	m.nl.Connect(inst, "A", m.net(n.Fanin[0], false))
	m.nl.Connect(inst, "B", m.net(n.Fanin[1], false))
	m.ha[k] = inst
	return inst
}

// faOutput returns (creating on demand) the net of an adder output pin.
func (m *mapper) faOutput(inst *netlist.Instance, pin string) *netlist.Net {
	if n, ok := inst.Out[pin]; ok {
		return n
	}
	n := m.nl.AddNet("")
	m.nl.Drive(inst, pin, n)
	return n
}

func nandPins(k int) []string {
	return []string{"A", "B", "C", "D"}[:k]
}
