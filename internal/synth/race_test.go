package synth

import (
	"math"
	"sync"
	"testing"

	"stdcelltune/internal/rtlgen"
)

// Concurrent synthesis runs share the catalogue (and its RWMutex-guarded
// timing-arc cache) but nothing else: every run owns its engine, and the
// engine's pooled buffers — snapshot free list, pin-value arenas, heap
// scratch — must never leak between units. Under -race this test fails
// on any cross-engine sharing; in any mode it fails if concurrency
// perturbs the (deterministic) result.
func TestConcurrentSynthesisSharesNoEngineBuffers(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis too heavy for -short")
	}
	build := func() *rtlgen.MCU {
		m, err := rtlgen.Build(rtlgen.SmallConfig())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref, err := Synthesize("mcu", build().Net, cat, DefaultOptions(6))
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	results := make([]*Result, workers)
	errs := make([]error, workers)
	nets := make([]*rtlgen.MCU, workers)
	for i := range nets {
		nets[i] = build() // netlists are per-unit; only the catalogue is shared
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Synthesize("mcu", nets[i].Net, cat, DefaultOptions(6))
		}(i)
	}
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		r := results[i]
		if math.Float64bits(r.Timing.WNS()) != math.Float64bits(ref.Timing.WNS()) {
			t.Errorf("worker %d WNS %g differs from serial reference %g", i, r.Timing.WNS(), ref.Timing.WNS())
		}
		if got, want := r.Area(), ref.Area(); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("worker %d area %g differs from serial reference %g", i, got, want)
		}
		if r.Met != ref.Met || r.Iterations != ref.Iterations || r.Downsized != ref.Downsized {
			t.Errorf("worker %d (met=%v iter=%d down=%d) differs from reference (met=%v iter=%d down=%d)",
				i, r.Met, r.Iterations, r.Downsized, ref.Met, ref.Iterations, ref.Downsized)
		}
		// Worker snapshots must be backed by the worker's own engine:
		// per-net arrays of distinct runs may be equal in value but must
		// be distinct storage.
		for j := 0; j < i; j++ {
			if sameBacking(r.Timing.Arrival, results[j].Timing.Arrival) {
				t.Errorf("workers %d and %d share snapshot backing arrays", i, j)
			}
		}
	}
}

func sameBacking(a, b []float64) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}
