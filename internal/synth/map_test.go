package synth

import (
	"fmt"
	"testing"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/logic"
	"stdcelltune/internal/netlist"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/stdcell"
)

var cat = stdcell.NewCatalogue(stdcell.Typical)

// equivCheck simulates the logic network and the mapped netlist side by
// side on random inputs for several cycles and requires identical
// outputs and identical per-cycle behaviour (state included).
func equivCheck(t *testing.T, src *logic.Network, nl *netlist.Netlist, cycles int, seed int64) {
	t.Helper()
	ls := logic.NewSimulator(src)
	ns, err := netlist.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(seed)
	for cyc := 0; cyc < cycles; cyc++ {
		in := make(map[string]bool)
		for _, p := range src.Inputs {
			in[p.Name] = rng.Float64() < 0.5
		}
		lo := ls.Step(in)
		no, err := ns.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		for name, want := range lo {
			if no[name] != want {
				t.Fatalf("cycle %d output %s: mapped=%v logic=%v", cyc, name, no[name], want)
			}
		}
	}
}

// miniNetwork exercises every op the mapper handles, including inverted
// fanins (ND2B/NR2B paths), trees (ND3/ND4/OR3), XNOR forms, muxes,
// adders and state.
func miniNetwork() *logic.Network {
	n := logic.New()
	a, b, c, d := n.Input("a"), n.Input("b"), n.Input("c"), n.Input("d")
	n.Output("and2", n.And(a, b))
	n.Output("and_binv", n.And(a, n.Not(b)))
	n.Output("and_ainv", n.And(n.Not(a), b))
	n.Output("and_bothinv", n.And(n.Not(a), n.Not(b)))
	n.Output("or2", n.Or(a, b))
	n.Output("or_binv", n.Or(a, n.Not(b)))
	n.Output("or_bothinv", n.Or(n.Not(a), n.Not(b)))
	n.Output("xor2", n.Xor(a, b))
	n.Output("xnor2", n.Not(n.Xor(a, b)))
	n.Output("xor_binv", n.Xor(a, n.Not(b)))
	n.Output("nand3", n.Not(n.And(n.And(a, b), c)))
	n.Output("and4", n.And(n.And(a, b), n.And(c, d)))
	n.Output("nor3", n.Not(n.Or(n.Or(a, b), c)))
	n.Output("or4", n.Or(n.Or(a, b), n.Or(c, d)))
	n.Output("mux", n.Mux(a, b, c))
	n.Output("muxinv", n.Not(n.Mux(a, b, c)))
	n.Output("sum3", n.Sum3(a, b, c))
	n.Output("maj3", n.Maj3(a, b, c))
	n.Output("sum3inv", n.Not(n.Sum3(a, b, d)))
	n.Output("maj3inv", n.Not(n.Maj3(a, b, d)))
	// Half adder pair.
	n.Output("ha_s", n.Xor(c, d))
	n.Output("ha_c", n.And(c, d))
	// Constants.
	n.Output("k1", n.Const(true))
	n.Output("k0", n.Const(false))
	n.Output("k0inv", n.Not(n.Const(false)))
	// State: toggle register.
	ff := n.DFF(a, "tff")
	n.SetFaninLater(ff, n.Xor(ff, a))
	n.Output("tq", ff)
	n.Output("tqn", n.Not(ff))
	// Word arithmetic for adder chains.
	w1 := []*logic.Node{a, b, c, d}
	w2 := []*logic.Node{d, c, b, a}
	sum, cout := n.RippleAdd(w1, w2, n.Const(false))
	for i, s := range sum {
		n.Output(fmt.Sprintf("sum[%d]", i), s)
	}
	n.Output("cout", cout)
	inc, _ := n.Increment(w1)
	for i, s := range inc {
		n.Output(fmt.Sprintf("inc[%d]", i), s)
	}
	return n
}

func TestMapMiniEquivalence(t *testing.T) {
	src := miniNetwork()
	nl, err := Map("mini", src, cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	equivCheck(t, src, nl, 64, 7)
}

func TestMapUsesExpectedCells(t *testing.T) {
	src := miniNetwork()
	nl, err := Map("mini", src, cat)
	if err != nil {
		t.Fatal(err)
	}
	use := nl.CellUse()
	for _, want := range []string{"ND2_1", "NR2_1", "ND2B_1", "NR2B_1", "XNR2_1", "MUX2_1", "ADDF_1", "ADDH_1", "INV_1", "DFQ_1", "TIEH_1", "TIEL_1"} {
		if use[want] == 0 {
			t.Errorf("expected cell %s in mapped design; use map: %v", want, use)
		}
	}
	// Tree collapse must produce at least one 3/4-input gate.
	if use["ND3_1"]+use["ND4_1"] == 0 {
		t.Errorf("no ND3/ND4 from AND-tree collapse: %v", use)
	}
	if use["NR3_1"]+use["NR4_1"] == 0 {
		t.Errorf("no NR3/NR4 from OR-tree collapse: %v", use)
	}
}

func TestMapSmallMCUEquivalence(t *testing.T) {
	mcu, err := rtlgen.Build(rtlgen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Map("mcu_small", mcu.Net, cat)
	if err != nil {
		t.Fatal(err)
	}
	equivCheck(t, mcu.Net, nl, 50, 11)
}

func TestMapDefaultMCU(t *testing.T) {
	if testing.Short() {
		t.Skip("full MCU mapping in -short mode")
	}
	mcu, err := rtlgen.Build(rtlgen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Map("mcu", mcu.Net, cat)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mapped MCU: %d instances, area %.0f um^2", len(nl.Instances), nl.Area())
	if got := len(nl.Instances); got < 10000 || got > 40000 {
		t.Errorf("instance count %d outside the 20k-gate class", got)
	}
	equivCheck(t, mcu.Net, nl, 10, 13)
}
