package synth

import (
	"context"
	"math"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/logic"
	"stdcelltune/internal/netlist"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/restrict"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/stdcell"
)

// Options configures a synthesis run.
type Options struct {
	Clock    float64       // target clock period, ns
	STA      sta.Config    // timing context; zero value derives from Clock
	Restrict *restrict.Set // per-pin LUT windows (nil = unrestricted)
	MaxIter  int           // optimization iteration budget (0 = default)
}

// DefaultOptions returns the standard synthesis setup at a clock period.
func DefaultOptions(clock float64) Options {
	return Options{Clock: clock, STA: sta.DefaultConfig(clock), MaxIter: 60}
}

func (o Options) normalized() Options {
	if o.STA.ClockPeriod == 0 {
		o.STA = sta.DefaultConfig(o.Clock)
	}
	if o.MaxIter == 0 {
		o.MaxIter = 60
	}
	return o
}

// Result is a completed synthesis run.
type Result struct {
	Netlist *netlist.Netlist
	Timing  *sta.Result
	Opts    Options

	Met        bool // timing met and all legality satisfied
	Iterations int
	Buffered   int // repeater pairs inserted
	Upsized    int
	Downsized  int

	// Timing-analysis accounting for this run: how many whole-design
	// propagations the incremental engine ran versus dirty-cone updates.
	// Surfaced in exp.Flow's manifest outcomes so the perf trajectory is
	// auditable from artifacts alone.
	FullAnalyses       int
	IncrementalUpdates int
}

// Area returns the total cell area of the synthesized design.
func (r *Result) Area() float64 { return r.Netlist.Area() }

// Violations recounts the legality violations of the final solution:
// loads above the binding limit (max_capacitance or window) and input
// slews above the window bound.
func (r *Result) Violations() int {
	o := &optimizer{nl: r.Netlist, cat: r.Netlist.Cat, opts: r.Opts}
	return o.legal(r.Timing)
}

// Violation describes one remaining legality problem.
type Violation struct {
	Cell, Pin string
	Kind      string // "load" or "slew"
	Value     float64
	Limit     float64
}

// ViolationList enumerates remaining legality problems for diagnostics.
func (r *Result) ViolationList() []Violation {
	o := &optimizer{nl: r.Netlist, cat: r.Netlist.Cat, opts: r.Opts}
	var out []Violation
	for _, op := range r.Timing.OperatingPoints() {
		if lim := o.loadLimit(op.Inst.Spec, op.OutPin); op.Load > lim+1e-12 {
			out = append(out, Violation{Cell: op.Inst.Spec.Name, Pin: op.OutPin, Kind: "load", Value: op.Load, Limit: lim})
		}
		if lim := o.slewLimit(op.Inst.Spec, op.OutPin); op.WorstIn > lim+1e-12 {
			out = append(out, Violation{Cell: op.Inst.Spec.Name, Pin: op.OutPin, Kind: "slew", Value: op.WorstIn, Limit: lim})
		}
	}
	return out
}

// optimizer carries the state of one synthesis optimization.
type optimizer struct {
	nl   *netlist.Netlist
	cat  *stdcell.Catalogue
	opts Options
	res  *Result
	eng  *sta.Engine

	// limits memoizes (loadLimit, slewLimit) per spec output pin — the
	// legality scan hits every instance on every snapshot, and the
	// restriction-window lookup behind loadLimit/slewLimit concatenates
	// a map key per call.
	limits map[*stdcell.Spec][]limitPair

	// batchScratch backs collectDownsizes' move list, reused across the
	// ~50 margin-ladder calls per recovery pass. Only one batch is alive
	// at a time: tryBatch consumes it fully before the next collection.
	batchScratch []sizeMove
}

// limitPair is the cached legality bound of one output pin.
type limitPair struct{ load, slew float64 }

func (o *optimizer) limitsFor(spec *stdcell.Spec) []limitPair {
	if l, ok := o.limits[spec]; ok {
		return l
	}
	l := make([]limitPair, len(spec.Outputs))
	for i, pin := range spec.Outputs {
		l[i] = limitPair{load: o.loadLimit(spec, pin), slew: o.slewLimit(spec, pin)}
	}
	if o.limits == nil {
		o.limits = make(map[*stdcell.Spec][]limitPair)
	}
	o.limits[spec] = l
	return l
}

// Optimize sizes, legalizes and area-recovers an already mapped netlist
// in place.
func Optimize(nl *netlist.Netlist, opts Options) (*Result, error) {
	return OptimizeCtx(context.Background(), nl, opts)
}

// OptimizeCtx is Optimize with a context carrying the observability
// tracer: when tracing is on, every sizing iteration becomes a span, so
// the trace shows where the optimization loop spends its time.
func OptimizeCtx(ctx context.Context, nl *netlist.Netlist, opts Options) (*Result, error) {
	opts = opts.normalized()
	o := &optimizer{nl: nl, cat: nl.Cat, opts: opts, res: &Result{Netlist: nl, Opts: opts}}
	o.eng = sta.NewEngine(nl, opts.STA)
	defer o.eng.Close()
	if err := o.run(ctx); err != nil {
		return nil, err
	}
	o.res.FullAnalyses, o.res.IncrementalUpdates = o.eng.Counts()
	return o.res, nil
}

func (o *optimizer) run(ctx context.Context) error {
	tr := obs.TracerFrom(ctx)
	var r, prevR *sta.Result
	var err error
	stuck := 0
	lastWNS := math.Inf(-1)
	for iter := 0; iter < o.opts.MaxIter; iter++ {
		o.res.Iterations = iter + 1
		var span *obs.Span
		if tr != nil {
			span = tr.Start("size-iter", "synth-iter", "iter", iter+1)
		}
		r, err = o.eng.Analyze()
		if err != nil {
			span.End()
			return err
		}
		// The previous iteration's snapshot is dead once a new one
		// replaces it; Recycle's guards keep the engine's own live
		// snapshots out of the pool.
		if prevR != nil && prevR != r {
			o.eng.Recycle(prevR)
		}
		prevR = r
		fixes := o.fixLegality(r)
		if span != nil {
			span.Set("wns", r.WNS())
			span.Set("fixes", fixes)
		}
		if fixes > 0 {
			span.End()
			continue
		}
		if r.WNS() >= 0 {
			span.End()
			break
		}
		moves := o.timingStep(r)
		if span != nil {
			span.Set("moves", moves)
		}
		span.End()
		if moves == 0 {
			break // nothing more to do; timing unmet
		}
		// Stop when WNS stalls.
		if r.WNS() <= lastWNS+1e-9 {
			stuck++
			if stuck >= 5 {
				break
			}
		} else {
			stuck = 0
		}
		lastWNS = r.WNS()
	}
	// Area recovery only when timing has margin.
	r, err = o.eng.Analyze()
	if err != nil {
		return err
	}
	if r.WNS() >= 0 && o.legal(r) == 0 {
		var span *obs.Span
		if tr != nil {
			span = tr.Start("area-recovery", "synth-iter")
		}
		r, err = o.areaRecovery(r)
		span.End()
		if err != nil {
			return err
		}
	}
	o.res.Timing = r
	o.res.Met = r.MeetsTiming() && o.legal(r) == 0
	return nil
}

// loadLimit returns the binding load limit of a driver output pin: the
// smaller of its max_capacitance and the restriction window bound.
func (o *optimizer) loadLimit(spec *stdcell.Spec, pin string) float64 {
	return o.opts.Restrict.MaxLoad(spec.Name, pin, spec.MaxCap())
}

// slewLimit returns the binding input-slew limit of a cell (per output
// pin window; the LUT slew axis is the input transition).
func (o *optimizer) slewLimit(spec *stdcell.Spec, pin string) float64 {
	last := stdcell.SlewAxis[len(stdcell.SlewAxis)-1]
	return o.opts.Restrict.MaxSlew(spec.Name, pin, last)
}

// legal counts remaining legality violations (load over limit or input
// slew over window).
func (o *optimizer) legal(r *sta.Result) int {
	n := 0
	r.EachOperatingPoint(func(op sta.OperatingPoint) {
		lim := o.limitsFor(op.Inst.Spec)[op.OutIdx]
		if op.Load > lim.load+1e-12 {
			n++
		}
		if op.WorstIn > lim.slew+1e-12 {
			n++
		}
	})
	return n
}

// fixLegality repairs load and slew violations; returns the number of
// repairs applied.
func (o *optimizer) fixLegality(r *sta.Result) int {
	fixes := 0
	// Load violations: upsize the driver or split the fanout.
	for _, n := range o.nl.Nets {
		if n.Driver == nil {
			continue
		}
		spec := n.Driver.Spec
		limit := o.loadLimit(spec, n.DrvPin)
		load := r.Load[n.ID]
		if load <= limit+1e-12 {
			continue
		}
		if up := o.nextSizeFor(spec, n.DrvPin, load); up != nil {
			if err := o.nl.Resize(n.Driver, up); err == nil {
				o.res.Upsized++
				fixes++
				continue
			}
		}
		if o.shedLoad(n, load, limit) {
			o.res.Buffered++
			fixes++
		}
	}
	if fixes > 0 {
		return fixes
	}
	// Slew violations: a net whose transition exceeds the tightest window
	// of any sink must be made faster — upsize the driver, else shed load
	// by splitting the fanout. (A repeater in front of one sink cannot
	// help: its own first stage would see the same slow edge.)
	for _, n := range o.nl.Nets {
		if n.Driver == nil {
			continue
		}
		limit := math.Inf(1)
		for _, s := range n.Sinks {
			if s.Inst == nil {
				continue
			}
			var outPin string
			for p := range s.Inst.Out {
				outPin = p
				break
			}
			if outPin == "" {
				continue
			}
			if l := o.slewLimit(s.Inst.Spec, outPin); l < limit {
				limit = l
			}
		}
		if r.Slew[n.ID] <= limit+1e-12 {
			continue
		}
		if up := o.upsizeOneStep(n.Driver.Spec); up != nil {
			if o.nl.Resize(n.Driver, up) == nil {
				o.res.Upsized++
				fixes++
				continue
			}
		}
		if len(n.Sinks) > 1 {
			o.splitFanout(n)
			o.res.Buffered++
			fixes++
		}
		// Single-sink net with a maxed driver and still-slow edge: the
		// window is unattainable here; reported as unmet.
	}
	return fixes
}

// nextSizeFor returns the smallest same-family spec able to drive load
// within its own limit, or nil.
func (o *optimizer) nextSizeFor(spec *stdcell.Spec, pin string, load float64) *stdcell.Spec {
	for _, s := range o.cat.Families[spec.Family] {
		if s.Drive <= spec.Drive {
			continue
		}
		if load <= o.loadLimit(s, pin) {
			return s
		}
	}
	return nil
}

// upsizeOneStep returns the next size up in the family, or nil.
func (o *optimizer) upsizeOneStep(spec *stdcell.Spec) *stdcell.Spec {
	fam := o.cat.Families[spec.Family]
	for i, s := range fam {
		if s.Drive == spec.Drive && i+1 < len(fam) {
			return fam[i+1]
		}
	}
	return nil
}

// downsizeOneStep returns the next size down, or nil.
func (o *optimizer) downsizeOneStep(spec *stdcell.Spec) *stdcell.Spec {
	fam := o.cat.Families[spec.Family]
	for i, s := range fam {
		if s.Drive == spec.Drive && i > 0 {
			return fam[i-1]
		}
	}
	return nil
}

// shedLoad moves the heaviest sinks of an overloaded net behind an
// inverter-pair repeater until the remaining load fits the limit (the
// paper observes restricted designs gain inverters used as buffers to
// restore signal integrity). Returns false when nothing useful can move.
func (o *optimizer) shedLoad(n *netlist.Net, load, limit float64) bool {
	sinks := append([]netlist.Sink(nil), n.Sinks...)
	sortSinksByCapDesc(sinks, o.opts.STA)
	var moved []netlist.Sink
	remaining := load
	for _, s := range sinks {
		if remaining <= limit {
			break
		}
		moved = append(moved, s)
		remaining -= sinkCap(s, o.opts.STA)
	}
	if len(moved) == 0 {
		return false
	}
	o.insertRepeater(n, moved)
	return true
}

// splitFanout sheds the heavier half of a net's sinks behind a repeater,
// used to speed up a slow transition.
func (o *optimizer) splitFanout(n *netlist.Net) {
	sinks := append([]netlist.Sink(nil), n.Sinks...)
	sortSinksByCapDesc(sinks, o.opts.STA)
	o.insertRepeater(n, sinks[:(len(sinks)+1)/2])
}

func sinkCap(s netlist.Sink, cfg sta.Config) float64 {
	if s.Inst == nil {
		return cfg.OutputLoad
	}
	return s.Inst.Spec.InputCap()
}

func sortSinksByCapDesc(sinks []netlist.Sink, cfg sta.Config) {
	for i := 1; i < len(sinks); i++ {
		for j := i; j > 0 && sinkCap(sinks[j], cfg) > sinkCap(sinks[j-1], cfg); j-- {
			sinks[j], sinks[j-1] = sinks[j-1], sinks[j]
		}
	}
}

// insertRepeater drives the given sinks through an inverter pair so
// polarity is preserved. The second stage is sized for the moved load;
// the first stage is a small inverter sized only to drive the second —
// so the capacitance presented back to the original net is tiny and the
// repair strictly reduces the driver's load.
func (o *optimizer) insertRepeater(n *netlist.Net, moved []netlist.Sink) {
	load := o.opts.STA.WireCapPerFanout * float64(len(moved))
	for _, s := range moved {
		if s.Inst == nil {
			load += o.opts.STA.OutputLoad
		} else {
			load += s.Inst.Spec.InputCap()
		}
	}
	spec2 := o.smallestInvFor(load, 2)
	spec1 := o.smallestInvFor(spec2.InputCap()+o.opts.STA.WireCapPerFanout, 1)
	i1 := o.nl.AddInstance("", spec1)
	o.nl.Connect(i1, "A", n)
	mid := o.nl.AddNet("")
	o.nl.Drive(i1, "Y", mid)
	i2 := o.nl.AddInstance("", spec2)
	o.nl.Connect(i2, "A", mid)
	out := o.nl.AddNet("")
	o.nl.Drive(i2, "Y", out)
	o.nl.MoveSinks(n, out, moved)
}

// smallestInvFor picks the smallest inverter of at least minDrive that
// can legally drive the load.
func (o *optimizer) smallestInvFor(load float64, minDrive int) *stdcell.Spec {
	fam := o.cat.Families["INV"]
	for _, s := range fam {
		if s.Drive < minDrive {
			continue
		}
		if load <= o.loadLimit(s, "Y") {
			return s
		}
	}
	return fam[len(fam)-1]
}

// timingStep upsizes cells on negative-slack nets; returns the number of
// moves applied.
func (o *optimizer) timingStep(r *sta.Result) int {
	slacks := r.NetSlacks()
	moves := 0
	// Focus on the critical half of the negative-slack population; the
	// tail often heals by itself once the worst drivers strengthen, and
	// indiscriminate upsizing bloats the design.
	threshold := 0.5 * r.WNS()
	for _, n := range o.nl.Nets {
		if n.Driver == nil || slacks[n.ID] >= threshold {
			continue
		}
		inst := n.Driver
		up := o.upsizeOneStep(inst.Spec)
		if up == nil {
			// Driver maxed out: a critical high-fanout net gains from a
			// buffer split instead (the moved half trades two repeater
			// delays for a halved load on the critical driver).
			if len(n.Sinks) > 4 {
				o.splitFanout(n)
				o.res.Buffered++
				moves++
			}
			continue
		}
		// The bigger cell must itself be legal at this operating point.
		if r.Load[n.ID] > o.loadLimit(up, n.DrvPin) {
			continue
		}
		if !o.windowAllowsSlew(up, n.DrvPin, r, inst) {
			continue
		}
		if o.nl.Resize(inst, up) == nil {
			o.res.Upsized++
			moves++
		}
	}
	return moves
}

// windowAllowsSlew checks the candidate spec's slew window against the
// instance's current worst input slew.
func (o *optimizer) windowAllowsSlew(cand *stdcell.Spec, pin string, r *sta.Result, inst *netlist.Instance) bool {
	limit := o.slewLimit(cand, pin)
	for _, p := range inst.Spec.Inputs {
		in := inst.In[p]
		if in == nil || in.ID >= len(r.Slew) {
			continue // net created after this STA pass; checked next pass
		}
		if r.Slew[in.ID] > limit {
			return false
		}
	}
	return true
}

// areaRecovery downsizes cells with generous slack in batches, reverting
// (with one bisection retry) any batch that breaks timing or legality.
// The margin ladder repeats until a full pass yields no accepted batch,
// so a heavily oversized solution shrinks step by step.
func (o *optimizer) areaRecovery(r *sta.Result) (*sta.Result, error) {
	margins := []float64{0.5, 0.3, 0.2, 0.12, 0.08, 0.05, 0.03, 0.02, 0.01}
	// rExact tracks whether r is known to describe the netlist exactly.
	// It turns false when a bisection round accepts one half and reverts
	// the other: a multi-output instance collected once per driven net
	// can straddle the halves, and reverting the rejected half clobbers
	// its accepted duplicate, leaving r slightly stale (the pre-engine
	// code had the same semantics and healed at the next full analysis).
	// The engine may only Rewind to exact snapshots.
	rExact := true
	for pass := 0; pass < 6; pass++ {
		changed := false
		for _, frac := range margins {
			margin := frac * o.opts.STA.ClockPeriod
			batch := o.collectDownsizes(r, margin)
			if len(batch) == 0 {
				continue
			}
			nr, accepted, exact, err := o.tryBatch(r, batch, rExact)
			if err != nil {
				return nil, err
			}
			if accepted > 0 {
				o.res.Downsized += accepted
				if nr != r {
					o.eng.Recycle(r) // superseded by the accepted snapshot
				}
				r = nr
				rExact = exact
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return r, nil
}

type sizeMove struct {
	inst *netlist.Instance
	from *stdcell.Spec
	to   *stdcell.Spec
}

// collectDownsizes gathers one-step downsize candidates whose output net
// has at least margin slack and whose estimated delay increase fits
// comfortably inside that slack.
func (o *optimizer) collectDownsizes(r *sta.Result, margin float64) []sizeMove {
	slacks := r.NetSlacks()
	batch := o.batchScratch[:0]
	defer func() { o.batchScratch = batch }()
	for _, n := range o.nl.Nets {
		if n.Driver == nil || n.ID >= len(slacks) {
			continue
		}
		inst := n.Driver
		slack := slacks[n.ID]
		if slack < margin {
			continue
		}
		down := o.downsizeOneStep(inst.Spec)
		if down == nil {
			continue
		}
		if r.Load[n.ID] > o.loadLimit(down, n.DrvPin) {
			continue
		}
		if !o.windowAllowsSlew(down, n.DrvPin, r, inst) {
			continue
		}
		if !math.IsInf(slack, 1) {
			if delta := o.resizeDelayDelta(r, inst, n, down); delta > 0.4*slack {
				continue
			}
		}
		batch = append(batch, sizeMove{inst: inst, from: inst.Spec, to: down})
	}
	return batch
}

// resizeDelayDelta estimates how much slower the instance's worst arc
// into this net becomes when swapped to cand, at the frozen operating
// point.
func (o *optimizer) resizeDelayDelta(r *sta.Result, inst *netlist.Instance, n *netlist.Net, cand *stdcell.Spec) float64 {
	oldCell := o.cat.Lib.Cell(inst.Spec.Name)
	newCell := o.cat.Lib.Cell(cand.Name)
	if oldCell == nil || newCell == nil {
		return math.Inf(1)
	}
	op := oldCell.Pin(n.DrvPin)
	np := newCell.Pin(n.DrvPin)
	if op == nil || np == nil {
		return math.Inf(1)
	}
	worst := 0.0
	for i, arc := range op.Timing {
		if i >= len(np.Timing) {
			break
		}
		inNet := inst.In[arc.RelatedPin]
		slew := o.opts.STA.InputSlew
		if inNet != nil && inNet.ID < len(r.Slew) {
			slew = r.Slew[inNet.ID]
		}
		dOld, _ := evalArcDelay(arc, r.Load[n.ID], slew)
		dNew, _ := evalArcDelay(np.Timing[i], r.Load[n.ID], slew)
		if d := dNew - dOld; d > worst {
			worst = d
		}
	}
	return worst
}

func evalArcDelay(arc *liberty.TimingArc, load, slew float64) (float64, float64) {
	d := math.Max(arc.CellRise.Lookup(load, slew), arc.CellFall.Lookup(load, slew))
	tr := math.Max(arc.RiseTransition.Lookup(load, slew), arc.FallTransition.Lookup(load, slew))
	return d, tr
}

// tryBatch applies a downsize batch; if the result breaks timing or
// legality it reverts and retries each half once (a single bisection
// level), returning the accepted move count and the current STA. rExact
// says whether r exactly describes the netlist; only then can a revert
// be followed by an engine Rewind to r (zero cost) — otherwise the
// revert's dirty marks are left pending and the next Analyze resolves
// them incrementally. The returned exact flag reports the same property
// for the returned Result: it turns false when an accepted half is
// followed by a rejected one, whose revert may clobber a duplicate
// move of a multi-output instance straddling the halves (matching the
// pre-engine semantics, which healed at the next fresh analysis).
func (o *optimizer) tryBatch(r *sta.Result, batch []sizeMove, rExact bool) (*sta.Result, int, bool, error) {
	apply := func(moves []sizeMove) error {
		for _, mv := range moves {
			if err := o.nl.Resize(mv.inst, mv.to); err != nil {
				return err
			}
		}
		return nil
	}
	revert := func(moves []sizeMove) error {
		for _, mv := range moves {
			if err := o.nl.Resize(mv.inst, mv.from); err != nil {
				return err
			}
		}
		return nil
	}
	if err := apply(batch); err != nil {
		return nil, 0, false, err
	}
	nr, err := o.eng.Analyze()
	if err != nil {
		return nil, 0, false, err
	}
	if nr.WNS() >= 0 && o.legal(nr) == 0 {
		return nr, len(batch), true, nil
	}
	if err := revert(batch); err != nil {
		return nil, 0, false, err
	}
	if rExact {
		if err := o.eng.Rewind(r); err != nil {
			return nil, 0, false, err
		}
	}
	// The rejected probe snapshot is dead either way: the edits are
	// reverted (and rewound when r was exact) and nothing escaped with
	// it. Its slices back the next snapshot.
	o.eng.Recycle(nr)
	if len(batch) < 2 {
		return r, 0, rExact, nil
	}
	accepted := 0
	cur := r
	curExact := rExact
	for _, half := range [][]sizeMove{batch[:len(batch)/2], batch[len(batch)/2:]} {
		if err := apply(half); err != nil {
			return nil, 0, false, err
		}
		nr, err := o.eng.Analyze()
		if err != nil {
			return nil, 0, false, err
		}
		if nr.WNS() >= 0 && o.legal(nr) == 0 {
			accepted += len(half)
			if cur != r {
				o.eng.Recycle(cur) // superseded first-half snapshot
			}
			cur = nr
			curExact = true
			continue
		}
		if err := revert(half); err != nil {
			return nil, 0, false, err
		}
		if accepted == 0 {
			// Nothing accepted yet: the revert provably restored cur's
			// exact state, so the rewind (when cur is exact) is sound.
			if curExact {
				if err := o.eng.Rewind(cur); err != nil {
					return nil, 0, false, err
				}
			}
		} else {
			// The rejected half may share a multi-output instance with
			// the accepted one; its revert clobbers that duplicate, so
			// cur no longer exactly describes the netlist.
			curExact = false
		}
		// The rejected half's probe snapshot is dead in every branch.
		o.eng.Recycle(nr)
	}
	return cur, accepted, curExact, nil
}

// Synthesize maps the logic network onto the catalogue and optimizes it
// against the options — the full front-end flow of the paper's
// experiments.
func Synthesize(name string, src *logic.Network, cat *stdcell.Catalogue, opts Options) (*Result, error) {
	return SynthesizeCtx(context.Background(), name, src, cat, opts)
}

// SynthesizeCtx is Synthesize with a context carrying the observability
// tracer for per-iteration optimization spans.
func SynthesizeCtx(ctx context.Context, name string, src *logic.Network, cat *stdcell.Catalogue, opts Options) (*Result, error) {
	nl, err := Map(name, src, cat)
	if err != nil {
		return nil, err
	}
	return OptimizeCtx(ctx, nl, opts)
}
