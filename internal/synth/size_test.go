package synth

import (
	"testing"

	"stdcelltune/internal/restrict"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/stdcell"
)

func smallMCU(t *testing.T) *rtlgen.MCU {
	t.Helper()
	m, err := rtlgen.Build(rtlgen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSynthesizeRelaxedMeetsTiming(t *testing.T) {
	m := smallMCU(t)
	res, err := Synthesize("mcu", m.Net, cat, DefaultOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("relaxed 6ns synthesis missed timing: WNS=%g violations=%d",
			res.Timing.WNS(), res.Violations())
	}
	if res.Violations() != 0 {
		t.Errorf("legality violations remain: %d", res.Violations())
	}
	if res.Area() <= 0 {
		t.Error("area must be positive")
	}
}

func TestImpossibleClockFails(t *testing.T) {
	m := smallMCU(t)
	res, err := Synthesize("mcu", m.Net, cat, DefaultOptions(0.35)) // 50ps effective
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Error("0.35ns clock should be unattainable")
	}
	if res.Timing.WNS() >= 0 {
		t.Error("expected negative WNS")
	}
}

// TestTighterClockCostsArea reproduces the Fig. 8 trend: decreasing the
// clock period increases cell area.
func TestTighterClockCostsArea(t *testing.T) {
	m := smallMCU(t)
	relaxed, err := Synthesize("mcu", m.Net, cat, DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Synthesize("mcu", m.Net, cat, DefaultOptions(1.4))
	if err != nil {
		t.Fatal(err)
	}
	if !relaxed.Met {
		t.Fatal("relaxed run missed timing")
	}
	t.Logf("area: 8ns=%.0f (met=%v)  1.4ns=%.0f (met=%v, wns=%.3f)",
		relaxed.Area(), relaxed.Met, tight.Area(), tight.Met, tight.Timing.WNS())
	if tight.Area() <= relaxed.Area() {
		t.Errorf("tight-clock area %.0f not above relaxed %.0f", tight.Area(), relaxed.Area())
	}
	if tight.Upsized == 0 {
		t.Error("tight clock should force upsizing")
	}
}

func TestOptimizePreservesFunction(t *testing.T) {
	m := smallMCU(t)
	res, err := Synthesize("mcu", m.Net, cat, DefaultOptions(1.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Netlist.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sizing and buffering must not change behaviour.
	equivCheck(t, m.Net, res.Netlist, 30, 5)
}

func TestRestrictionsAreHonored(t *testing.T) {
	m := smallMCU(t)
	// Build a binding restriction: every cell's LUT is confined to its
	// lower-left quadrant (half the load range, half the slew range).
	rs := restrict.NewSet("quadrant")
	for name, spec := range cat.Specs {
		if spec.Kind == stdcell.KindTie {
			continue
		}
		axis := spec.LoadAxis()
		for _, out := range spec.Outputs {
			rs.Put(name, out, restrict.Window{
				MaxLoad: axis[len(axis)-1] / 2,
				MaxSlew: stdcell.SlewAxis[len(stdcell.SlewAxis)-1] / 2,
			})
		}
	}
	opts := DefaultOptions(6)
	opts.Restrict = rs
	res, err := Synthesize("mcu", m.Net, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("restricted synthesis missed: WNS=%g violations=%d", res.Timing.WNS(), res.Violations())
	}
	if res.Violations() != 0 {
		t.Fatalf("%d window violations remain", res.Violations())
	}
	// Every operating point must sit inside its window.
	for _, op := range res.Timing.OperatingPoints() {
		if w, ok := rs.Window(op.Inst.Spec.Name, op.OutPin); ok {
			if op.Load > w.MaxLoad+1e-12 {
				t.Fatalf("%s load %g over window %g", op.Inst.Spec.Name, op.Load, w.MaxLoad)
			}
			if op.WorstIn > w.MaxSlew+1e-12 {
				t.Fatalf("%s slew %g over window %g", op.Inst.Spec.Name, op.WorstIn, w.MaxSlew)
			}
		}
	}
	// Function still intact under restriction.
	equivCheck(t, m.Net, res.Netlist, 20, 3)
	// Restriction should cost area against the unrestricted baseline.
	base, err := Synthesize("mcu", m.Net, cat, DefaultOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("area: baseline=%.0f restricted=%.0f buffers=%d upsized=%d",
		base.Area(), res.Area(), res.Buffered, res.Upsized)
	if res.Area() < base.Area() {
		t.Errorf("restricted area %.0f below baseline %.0f", res.Area(), base.Area())
	}
}

func TestAreaRecoveryActsOnRelaxedDesigns(t *testing.T) {
	m := smallMCU(t)
	res, err := Synthesize("mcu", m.Net, cat, DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	// At a relaxed clock everything is already minimum size, so recovery
	// may have nothing to do — but the pass must at least run and leave a
	// legal, met design.
	if !res.Met {
		t.Error("relaxed design missed timing")
	}
	// Force oversizing then re-optimize: recovery must bring area down.
	for _, inst := range res.Netlist.Instances {
		fam := cat.Families[inst.Spec.Family]
		if err := res.Netlist.Resize(inst, fam[len(fam)-1]); err != nil {
			t.Fatal(err)
		}
	}
	bloated := res.Netlist.Area()
	res2, err := Optimize(res.Netlist, DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Met {
		t.Fatal("re-optimized design missed timing")
	}
	t.Logf("area: bloated=%.0f recovered=%.0f downsized=%d", bloated, res2.Area(), res2.Downsized)
	if res2.Area() >= bloated {
		t.Error("area recovery failed to shrink an oversized design")
	}
	if res2.Downsized == 0 {
		t.Error("no downsizing recorded")
	}
}

func TestDefaultOptionsNormalization(t *testing.T) {
	o := Options{Clock: 3}.normalized()
	if o.STA.ClockPeriod != 3 {
		t.Error("STA config not derived from clock")
	}
	if o.MaxIter == 0 {
		t.Error("MaxIter not defaulted")
	}
}
