package netlist

import (
	"strings"
	"testing"

	"stdcelltune/internal/stdcell"
)

var cat = stdcell.NewCatalogue(stdcell.Typical)

// buildXorViaNandInv builds y = a ^ b as XNR2 + INV plus a registered
// copy, exercising instances, nets, outputs and a flip-flop.
func buildXorViaNandInv(t *testing.T) *Netlist {
	t.Helper()
	nl := New("txor", cat)
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	xnr := nl.AddInstance("u_xnr", cat.Spec("XNR2_1"))
	nl.Connect(xnr, "A", a)
	nl.Connect(xnr, "B", b)
	nxn := nl.AddNet("")
	nl.Drive(xnr, "Y", nxn)
	inv := nl.AddInstance("u_inv", cat.Spec("INV_1"))
	nl.Connect(inv, "A", nxn)
	ny := nl.AddNet("y_net")
	nl.Drive(inv, "Y", ny)
	nl.MarkOutput("y", ny)
	ff := nl.AddInstance("u_ff", cat.Spec("DFQ_1"))
	nl.Connect(ff, "D", ny)
	q := nl.AddNet("")
	nl.Drive(ff, "Q", q)
	nl.MarkOutput("q", q)
	return nl
}

func TestValidateAndBasics(t *testing.T) {
	nl := buildXorViaNandInv(t)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(nl.PrimaryInputs()); got != 2 {
		t.Errorf("PIs %d want 2", got)
	}
	if got := len(nl.PrimaryOutputs()); got != 2 {
		t.Errorf("POs %d want 2", got)
	}
	if nl.OutputNet("y") == nil || nl.OutputNet("zzz") != nil {
		t.Error("OutputNet lookup broken")
	}
	if got := len(nl.Sequentials()); got != 1 {
		t.Errorf("sequentials %d want 1", got)
	}
	use := nl.CellUse()
	if use["XNR2_1"] != 1 || use["INV_1"] != 1 || use["DFQ_1"] != 1 {
		t.Errorf("cell use %v", use)
	}
	wantArea := cat.Spec("XNR2_1").Area() + cat.Spec("INV_1").Area() + cat.Spec("DFQ_1").Area()
	if got := nl.Area(); got != wantArea {
		t.Errorf("area %g want %g", got, wantArea)
	}
}

func TestValidateCatchesDangling(t *testing.T) {
	nl := New("bad", cat)
	inst := nl.AddInstance("u0", cat.Spec("ND2_1"))
	n := nl.AddNet("")
	nl.Drive(inst, "Y", n)
	// inputs A and B unconnected
	if err := nl.Validate(); err == nil {
		t.Error("dangling inputs accepted")
	}
}

func TestTopoOrder(t *testing.T) {
	nl := buildXorViaNandInv(t)
	order, err := nl.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, inst := range order {
		pos[inst.Name] = i
	}
	if pos["u_xnr"] > pos["u_inv"] {
		t.Error("xnr must precede inv")
	}
	if pos["u_ff"] != 0 {
		t.Error("sequential must be first")
	}
}

func TestTopoCycleDetection(t *testing.T) {
	nl := New("cyc", cat)
	a := nl.AddInstance("a", cat.Spec("INV_1"))
	b := nl.AddInstance("b", cat.Spec("INV_1"))
	n1, n2 := nl.AddNet(""), nl.AddNet("")
	nl.Drive(a, "Y", n1)
	nl.Connect(b, "A", n1)
	nl.Drive(b, "Y", n2)
	nl.Connect(a, "A", n2)
	if _, err := nl.TopoOrder(); err == nil {
		t.Error("combinational cycle not detected")
	}
}

func TestSimulatorTruthTable(t *testing.T) {
	nl := buildXorViaNandInv(t)
	sim, err := NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	prevY := false
	for v := 0; v < 4; v++ {
		av, bv := v&1 != 0, v&2 != 0
		out, err := sim.Step(map[string]bool{"a": av, "b": bv})
		if err != nil {
			t.Fatal(err)
		}
		if out["y"] != (av != bv) {
			t.Errorf("y(%v,%v)=%v", av, bv, out["y"])
		}
		if v > 0 && out["q"] != prevY {
			t.Errorf("q should lag y by one cycle")
		}
		prevY = out["y"]
	}
}

func TestEvalCellAllKinds(t *testing.T) {
	cases := []struct {
		cell string
		in   map[string]bool
		want map[string]bool
	}{
		{"INV_1", map[string]bool{"A": true}, map[string]bool{"Y": false}},
		{"BUF_2", map[string]bool{"A": true}, map[string]bool{"Y": true}},
		{"OR3_1", map[string]bool{"A": false, "B": false, "C": true}, map[string]bool{"Y": true}},
		{"ND2_1", map[string]bool{"A": true, "B": true}, map[string]bool{"Y": false}},
		{"ND2B_1", map[string]bool{"AN": false, "B": true}, map[string]bool{"Y": false}}, // !(!0 * 1) = !(1) = 0
		{"NR2_1", map[string]bool{"A": false, "B": false}, map[string]bool{"Y": true}},
		{"NR2B_1", map[string]bool{"AN": true, "B": false}, map[string]bool{"Y": true}}, // !(!1 + 0) = !(0) = 1
		{"NR4_1", map[string]bool{"A": false, "B": false, "C": false, "D": true}, map[string]bool{"Y": false}},
		{"XNR2_1", map[string]bool{"A": true, "B": true}, map[string]bool{"Y": true}},
		{"XNR3_1", map[string]bool{"A": true, "B": true, "C": true}, map[string]bool{"Y": false}},
		{"ADDF_1", map[string]bool{"A": true, "B": true, "CI": false}, map[string]bool{"S": false, "CO": true}},
		{"ADDC_1", map[string]bool{"A": true, "B": true, "CI": true}, map[string]bool{"S": true, "CON": false}},
		{"ADDH_1", map[string]bool{"A": true, "B": false}, map[string]bool{"S": true, "CO": false}},
		{"MUX2_1", map[string]bool{"D0": false, "D1": true, "S": true}, map[string]bool{"Y": true}},
		{"MUX4_1", map[string]bool{"D0": false, "D1": false, "D2": true, "D3": false, "S0": false, "S1": true}, map[string]bool{"Y": true}},
		{"TIEH_1", map[string]bool{}, map[string]bool{"Y": true}},
		{"TIEL_1", map[string]bool{}, map[string]bool{"Y": false}},
		{"DFQ_1", map[string]bool{"__state": true}, map[string]bool{"Q": true}},
		{"DFQN_1", map[string]bool{"__state": true}, map[string]bool{"QN": false}},
	}
	for _, c := range cases {
		spec := cat.Spec(c.cell)
		if spec == nil {
			t.Fatalf("cell %s missing", c.cell)
		}
		got, err := EvalCell(spec, c.in)
		if err != nil {
			t.Fatal(err)
		}
		for pin, want := range c.want {
			if got[pin] != want {
				t.Errorf("%s %v: pin %s = %v want %v", c.cell, c.in, pin, got[pin], want)
			}
		}
	}
}

func TestResize(t *testing.T) {
	nl := buildXorViaNandInv(t)
	inv := nl.Instances[1]
	if err := nl.Resize(inv, cat.Spec("INV_8")); err != nil {
		t.Fatal(err)
	}
	if inv.Spec.Drive != 8 {
		t.Error("resize did not stick")
	}
	if err := nl.Resize(inv, cat.Spec("ND2_4")); err == nil {
		t.Error("cross-footprint resize accepted")
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBuffer(t *testing.T) {
	nl := buildXorViaNandInv(t)
	ny := nl.OutputNet("y")
	// Move the FF sink and the primary output behind a buffer.
	var ffSink Sink
	for _, s := range ny.Sinks {
		if s.Inst != nil && s.Inst.Name == "u_ff" {
			ffSink = s
		}
	}
	buf, out := nl.InsertBuffer(ny, cat.Spec("BUF_2"), []Sink{ffSink})
	if buf.Spec.Family != "BUF" {
		t.Error("buffer spec wrong")
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	// The FF is now fed by the buffer output.
	ff := nl.Instances[2]
	if ff.In["D"] != out {
		t.Error("FF not rewired to buffer output")
	}
	// Functionality unchanged.
	sim, err := NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	o1, _ := sim.Step(map[string]bool{"a": true, "b": false})
	o2, _ := sim.Step(map[string]bool{"a": true, "b": false})
	if !o1["y"] || !o2["q"] {
		t.Error("buffered netlist misbehaves")
	}
}

func TestInsertBufferOnPrimaryOutput(t *testing.T) {
	nl := buildXorViaNandInv(t)
	ny := nl.OutputNet("y")
	var po Sink
	for _, s := range ny.Sinks {
		if s.Inst == nil {
			po = s
		}
	}
	_, out := nl.InsertBuffer(ny, cat.Spec("BUF_2"), []Sink{po})
	if nl.OutputNet("y") != out {
		t.Error("primary output not re-pointed to buffer output")
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDepths(t *testing.T) {
	nl := buildXorViaNandInv(t)
	d, err := nl.Depths()
	if err != nil {
		t.Fatal(err)
	}
	// xnr at depth 1, inv at 2, ff at 0.
	if d[nl.Instances[0].ID] != 1 || d[nl.Instances[1].ID] != 2 || d[nl.Instances[2].ID] != 0 {
		t.Errorf("depths %v", d)
	}
}

func TestVerilogRoundTrip(t *testing.T) {
	nl := buildXorViaNandInv(t)
	var sb strings.Builder
	if err := WriteVerilog(&sb, nl); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"module txor", "XNR2_1", "INV_1 u_inv", ".D(y_net)", "endmodule"} {
		if !strings.Contains(text, want) {
			t.Errorf("verilog missing %q:\n%s", want, text)
		}
	}
	back, err := ParseVerilog(text, cat)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(back.Instances) != len(nl.Instances) {
		t.Fatalf("instances %d want %d", len(back.Instances), len(nl.Instances))
	}
	// Same truth table.
	s1, _ := NewSimulator(nl)
	s2, _ := NewSimulator(back)
	for v := 0; v < 4; v++ {
		in := map[string]bool{"a": v&1 != 0, "b": v&2 != 0}
		o1, _ := s1.Step(in)
		o2, _ := s2.Step(in)
		if o1["y"] != o2["y"] || o1["q"] != o2["q"] {
			t.Fatalf("round-trip functional mismatch at %02b", v)
		}
	}
}

func TestVerilogEscapedIdentifiers(t *testing.T) {
	nl := New("esc", cat)
	a := nl.AddInput("bus[3]")
	inv := nl.AddInstance("u_inv", cat.Spec("INV_1"))
	nl.Connect(inv, "A", a)
	y := nl.AddNet("out[0]")
	nl.Drive(inv, "Y", y)
	nl.MarkOutput("out[0]", y)
	var sb strings.Builder
	if err := WriteVerilog(&sb, nl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `\bus[3] `) {
		t.Errorf("escaped identifier missing:\n%s", sb.String())
	}
	back, err := ParseVerilog(sb.String(), cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.PrimaryInputs()) != 1 || back.PrimaryInputs()[0].Name != "bus[3]" {
		t.Error("escaped input lost")
	}
}

func TestParseVerilogErrors(t *testing.T) {
	bad := []string{
		"",
		"module ; endmodule",
		"module m ( input a ); UNKNOWN_CELL u0 (.A(a)); endmodule",
		"module m ( input a ); wire w endmodule", // missing semicolon
	}
	for _, src := range bad {
		if _, err := ParseVerilog(src, cat); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestConnectRewires(t *testing.T) {
	nl := New("rw", cat)
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	inv := nl.AddInstance("u", cat.Spec("INV_1"))
	nl.Connect(inv, "A", a)
	nl.Connect(inv, "A", b) // rewire
	if len(a.Sinks) != 0 {
		t.Error("old net still has the sink")
	}
	if inv.In["A"] != b || len(b.Sinks) != 1 {
		t.Error("rewire failed")
	}
}

func TestClone(t *testing.T) {
	nl := buildXorViaNandInv(t)
	cp := nl.Clone()
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cp.Instances) != len(nl.Instances) || len(cp.Nets) != len(nl.Nets) {
		t.Fatal("structure size mismatch")
	}
	// Same behaviour.
	s1, _ := NewSimulator(nl)
	s2, _ := NewSimulator(cp)
	for v := 0; v < 4; v++ {
		in := map[string]bool{"a": v&1 != 0, "b": v&2 != 0}
		o1, _ := s1.Step(in)
		o2, _ := s2.Step(in)
		if o1["y"] != o2["y"] || o1["q"] != o2["q"] {
			t.Fatalf("clone behaves differently at %02b", v)
		}
	}
	// Mutating the clone must not touch the original.
	inv := cp.Instances[1]
	if err := cp.Resize(inv, cat.Spec("INV_16")); err != nil {
		t.Fatal(err)
	}
	if nl.Instances[1].Spec.Drive == 16 {
		t.Fatal("resize leaked into original")
	}
	// Buffer insertion on the clone leaves the original net intact.
	ny := cp.OutputNet("y")
	cp.InsertBuffer(ny, cat.Spec("BUF_2"), []Sink{ny.Sinks[0]})
	if len(nl.Instances) == len(cp.Instances) {
		t.Fatal("instance count should diverge after clone mutation")
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("original corrupted: %v", err)
	}
}

// TestVerilogParserNeverPanics: noise and truncations must error, not
// panic.
func TestVerilogParserNeverPanics(t *testing.T) {
	nl := buildXorViaNandInv(t)
	var sb strings.Builder
	if err := WriteVerilog(&sb, nl); err != nil {
		t.Fatal(err)
	}
	valid := sb.String()
	alphabet := []byte("module endwire assign().,;=\\ \n\tINV_1uxy0")
	seed := int64(7)
	next := func() int64 { seed = seed*6364136223846793005 + 1442695040888963407; return seed }
	for i := 0; i < 400; i++ {
		var src string
		switch i % 3 {
		case 0:
			n := int(uint64(next()) % 150)
			b := make([]byte, n)
			for j := range b {
				b[j] = alphabet[uint64(next())%uint64(len(alphabet))]
			}
			src = string(b)
		case 1:
			src = valid[:uint64(next())%uint64(len(valid))]
		default:
			b := []byte(valid)
			for k := 0; k < 4; k++ {
				b[uint64(next())%uint64(len(b))] = alphabet[uint64(next())%uint64(len(alphabet))]
			}
			src = string(b)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("verilog parser panicked on input %d: %v\n%s", i, r, src)
				}
			}()
			_, _ = ParseVerilog(src, cat)
		}()
	}
}

// recObserver records every journal notification as a compact string.
type recObserver struct{ events []string }

func (r *recObserver) OnResize(inst *Instance, from, to *stdcell.Spec) {
	r.events = append(r.events, "resize "+inst.Name+" "+from.Name+"->"+to.Name)
}
func (r *recObserver) OnConnect(inst *Instance, pin string, old, n *Net) {
	o := "<nil>"
	if old != nil {
		o = old.Name
	}
	r.events = append(r.events, "connect "+inst.Name+"."+pin+" "+o+"->"+n.Name)
}
func (r *recObserver) OnDrive(inst *Instance, pin string, n *Net) {
	r.events = append(r.events, "drive "+inst.Name+"."+pin+" "+n.Name)
}
func (r *recObserver) OnNewNet(n *Net)            { r.events = append(r.events, "newnet "+n.Name) }
func (r *recObserver) OnNewInstance(inst *Instance) {
	r.events = append(r.events, "newinst "+inst.Name)
}
func (r *recObserver) OnSinksChanged(n *Net) { r.events = append(r.events, "sinks "+n.Name) }

func TestJournalNotifications(t *testing.T) {
	nl := buildXorViaNandInv(t)
	rec := &recObserver{}
	nl.Observe(rec)

	inv := nl.Instances[1]
	if err := nl.Resize(inv, cat.Spec("INV_4")); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 1 || rec.events[0] != "resize u_inv INV_1->INV_4" {
		t.Fatalf("resize events %v", rec.events)
	}

	// InsertBuffer must journal the new instance/net, the drive, the
	// moved sink's reconnection, and the PO move on the source net.
	rec.events = nil
	ny := nl.OutputNet("y")
	var ffSink Sink
	for _, s := range ny.Sinks {
		if s.Inst != nil && s.Inst.Name == "u_ff" {
			ffSink = s
		}
	}
	nl.InsertBuffer(ny, cat.Spec("BUF_2"), []Sink{ffSink})
	var hasNewInst, hasDrive, hasConnect bool
	for _, e := range rec.events {
		hasNewInst = hasNewInst || strings.HasPrefix(e, "newinst ")
		hasDrive = hasDrive || strings.HasPrefix(e, "drive ")
		hasConnect = hasConnect || strings.HasPrefix(e, "connect u_ff.D ")
	}
	if !hasNewInst || !hasDrive || !hasConnect {
		t.Fatalf("buffer insertion journal incomplete: %v", rec.events)
	}

	// A detached observer hears nothing.
	rec2 := &recObserver{}
	nl.Observe(rec2)
	nl.Unobserve(rec2)
	before := len(rec.events)
	if err := nl.Resize(inv, cat.Spec("INV_2")); err != nil {
		t.Fatal(err)
	}
	if len(rec2.events) != 0 {
		t.Errorf("unobserved recorder got %v", rec2.events)
	}
	if len(rec.events) != before+1 {
		t.Errorf("active recorder missed the resize")
	}
}

func TestTopoCacheInvalidation(t *testing.T) {
	nl := buildXorViaNandInv(t)
	gen := nl.TopoGen()
	o1, err := nl.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	idx1, err := nl.TopoIndexes()
	if err != nil {
		t.Fatal(err)
	}
	for i, inst := range o1 {
		if idx1[inst.ID] != i {
			t.Fatalf("index[%s]=%d, want %d", inst.Name, idx1[inst.ID], i)
		}
	}

	// Resizes keep the DAG: same generation, same cached slice.
	if err := nl.Resize(nl.Instances[1], cat.Spec("INV_4")); err != nil {
		t.Fatal(err)
	}
	if nl.TopoGen() != gen {
		t.Error("resize bumped the topology generation")
	}
	o2, _ := nl.TopoOrder()
	if &o1[0] != &o2[0] {
		t.Error("resize invalidated the cached topo order")
	}

	// A topology edit bumps the generation and rebuilds the cache.
	ny := nl.OutputNet("y")
	var ffSink Sink
	for _, s := range ny.Sinks {
		if s.Inst != nil && s.Inst.Name == "u_ff" {
			ffSink = s
		}
	}
	nl.InsertBuffer(ny, cat.Spec("BUF_2"), []Sink{ffSink})
	if nl.TopoGen() == gen {
		t.Error("topology edit did not bump the generation")
	}
	o3, err := nl.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(o3) != len(o1)+1 {
		t.Errorf("rebuilt order has %d instances, want %d", len(o3), len(o1)+1)
	}
	idx3, _ := nl.TopoIndexes()
	for i, inst := range o3 {
		if idx3[inst.ID] != i {
			t.Fatalf("rebuilt index[%s]=%d, want %d", inst.Name, idx3[inst.ID], i)
		}
	}
}
