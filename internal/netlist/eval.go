package netlist

import (
	"fmt"

	"stdcelltune/internal/stdcell"
)

// EvalCell evaluates the boolean function of a combinational cell (or the
// output of a sequential cell given its captured state in ins["__state"]).
// ins maps input pin names to values; the result maps output pin names to
// values.
func EvalCell(spec *stdcell.Spec, ins map[string]bool) (map[string]bool, error) {
	out := make(map[string]bool, len(spec.Outputs))
	get := func(pin string) bool { return ins[pin] }
	switch spec.Kind {
	case stdcell.KindInv:
		out["Y"] = !get("A")
	case stdcell.KindBuf:
		out["Y"] = get("A")
	case stdcell.KindOr:
		v := false
		for _, p := range spec.Inputs {
			v = v || get(p)
		}
		out["Y"] = v
	case stdcell.KindNand:
		v := true
		for _, p := range spec.Inputs {
			b := get(p)
			if p == "AN" {
				b = !b
			}
			v = v && b
		}
		out["Y"] = !v
	case stdcell.KindNor:
		v := false
		for _, p := range spec.Inputs {
			b := get(p)
			if p == "AN" {
				b = !b
			}
			v = v || b
		}
		out["Y"] = !v
	case stdcell.KindXnor:
		v := false
		for _, p := range spec.Inputs {
			v = v != get(p)
		}
		out["Y"] = !v
	case stdcell.KindAddFull, stdcell.KindAddCarry:
		a, b, ci := get("A"), get("B"), get("CI")
		out["S"] = a != b != ci
		co := (a && b) || (ci && (a != b))
		if spec.Kind == stdcell.KindAddCarry {
			out["CON"] = !co
		} else {
			out["CO"] = co
		}
	case stdcell.KindAddHalf:
		a, b := get("A"), get("B")
		out["S"] = a != b
		out["CO"] = a && b
	case stdcell.KindMux:
		if spec.Family == "MUX4" {
			idx := 0
			if get("S0") {
				idx |= 1
			}
			if get("S1") {
				idx |= 2
			}
			out["Y"] = get(fmt.Sprintf("D%d", idx))
		} else {
			if get("S") {
				out["Y"] = get("D1")
			} else {
				out["Y"] = get("D0")
			}
		}
	case stdcell.KindDFF, stdcell.KindLatch:
		q := ins["__state"]
		for _, o := range spec.Outputs {
			if o == "QN" {
				out[o] = !q
			} else {
				out[o] = q
			}
		}
	case stdcell.KindTie:
		out["Y"] = spec.Family == "TIEH"
	default:
		return nil, fmt.Errorf("netlist: cannot evaluate kind %v", spec.Kind)
	}
	return out, nil
}

// Simulator evaluates a mapped netlist cycle by cycle, for equivalence
// checking against the source logic network.
type Simulator struct {
	nl    *Netlist
	order []*Instance
	state map[int]bool // per sequential-instance captured value
	nets  map[int]bool // per net value after the last Step
}

// NewSimulator builds a simulator; all state elements start at zero.
func NewSimulator(nl *Netlist) (*Simulator, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	s := &Simulator{nl: nl, order: order, state: make(map[int]bool), nets: make(map[int]bool)}
	return s, nil
}

// SetState forces the captured value of a sequential instance by name.
func (s *Simulator) SetState(instName string, v bool) {
	for _, inst := range s.nl.Instances {
		if inst.Name == instName {
			s.state[inst.ID] = v
			return
		}
	}
}

// Step applies primary-input values (by net name), settles combinational
// logic, samples primary outputs, then clocks every sequential element.
func (s *Simulator) Step(inputs map[string]bool) (map[string]bool, error) {
	for _, n := range s.nl.Nets {
		if n.PrimaryIn {
			s.nets[n.ID] = inputs[n.Name]
		}
	}
	for _, inst := range s.order {
		ins := make(map[string]bool, len(inst.Spec.Inputs)+1)
		for _, pin := range inst.Spec.Inputs {
			if n := inst.In[pin]; n != nil {
				ins[pin] = s.nets[n.ID]
			}
		}
		if inst.Spec.IsSequential() {
			ins["__state"] = s.state[inst.ID]
		}
		outs, err := EvalCell(inst.Spec, ins)
		if err != nil {
			return nil, err
		}
		for pin, n := range inst.Out {
			s.nets[n.ID] = outs[pin]
		}
	}
	result := make(map[string]bool)
	for _, n := range s.nl.Nets {
		for _, snk := range n.Sinks {
			if snk.Inst == nil {
				result[snk.Pin] = s.nets[n.ID]
			}
		}
	}
	// Clock edge: capture D.
	for _, inst := range s.nl.Instances {
		if inst.Spec.IsSequential() {
			if d := inst.In["D"]; d != nil {
				s.state[inst.ID] = s.nets[d.ID]
			}
		}
	}
	return result, nil
}

// NetValue returns the value of a net after the last Step.
func (s *Simulator) NetValue(n *Net) bool { return s.nets[n.ID] }
