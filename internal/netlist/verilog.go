package netlist

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"stdcelltune/internal/stdcell"
)

// WriteVerilog serializes the netlist as a flat structural Verilog
// module: one wire per net, one cell instantiation per instance with
// named port connections. Bus-style port names like "instr[3]" are
// escaped Verilog identifiers.
func WriteVerilog(w io.Writer, nl *Netlist) error {
	var inputs, outputs []string
	for _, n := range nl.Nets {
		if n.PrimaryIn {
			inputs = append(inputs, n.Name)
		}
	}
	for _, s := range nl.PrimaryOutputs() {
		outputs = append(outputs, s.Pin)
	}
	sort.Strings(inputs)
	sort.Strings(outputs)

	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n", escape(nl.Name))
	for _, in := range inputs {
		fmt.Fprintf(&b, "  input %s,\n", escape(in))
	}
	for i, out := range outputs {
		comma := ","
		if i == len(outputs)-1 {
			comma = ""
		}
		fmt.Fprintf(&b, "  output %s%s\n", escape(out), comma)
	}
	b.WriteString(");\n")
	for _, n := range nl.Nets {
		if !n.PrimaryIn {
			fmt.Fprintf(&b, "  wire %s;\n", escape(n.Name))
		}
	}
	for _, inst := range nl.Instances {
		var conns []string
		pins := make([]string, 0, len(inst.In)+len(inst.Out))
		for p := range inst.In {
			pins = append(pins, p)
		}
		for p := range inst.Out {
			pins = append(pins, p)
		}
		sort.Strings(pins)
		for _, p := range pins {
			n := inst.In[p]
			if n == nil {
				n = inst.Out[p]
			}
			conns = append(conns, fmt.Sprintf(".%s(%s)", p, escape(n.Name)))
		}
		fmt.Fprintf(&b, "  %s %s (%s);\n", inst.Spec.Name, escape(inst.Name), strings.Join(conns, ", "))
	}
	// Primary output assigns.
	for _, n := range nl.Nets {
		for _, s := range n.Sinks {
			if s.Inst == nil && s.Pin != n.Name {
				fmt.Fprintf(&b, "  assign %s = %s;\n", escape(s.Pin), escape(n.Name))
			}
		}
	}
	b.WriteString("endmodule\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// escape renders a name as a Verilog identifier, using escaped-identifier
// syntax when it contains characters like '[' that plain identifiers
// disallow.
func escape(name string) string {
	plain := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '$') {
			plain = false
			break
		}
	}
	if plain && len(name) > 0 && !(name[0] >= '0' && name[0] <= '9') {
		return name
	}
	return "\\" + name + " " // escaped identifier: backslash..space
}

// ParseVerilog reads a flat structural module written by WriteVerilog
// back into a netlist over the given catalogue.
func ParseVerilog(src string, cat *stdcell.Catalogue) (*Netlist, error) {
	toks, err := vlex(src)
	if err != nil {
		return nil, err
	}
	p := &vparser{toks: toks, cat: cat}
	return p.parseModule()
}

func vlex(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '\\': // escaped identifier, ends at whitespace
			j := i + 1
			for j < len(src) && src[j] != ' ' && src[j] != '\t' && src[j] != '\n' {
				j++
			}
			toks = append(toks, src[i+1:j])
			i = j
		case strings.IndexByte("(),.;=", c) >= 0:
			toks = append(toks, string(c))
			i++
		default:
			j := i
			for j < len(src) && !isVDelim(src[j]) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("verilog: unexpected byte %q", c)
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}

func isVDelim(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\\' ||
		strings.IndexByte("(),.;=", c) >= 0
}

type vparser struct {
	toks []string
	pos  int
	cat  *stdcell.Catalogue
}

func (p *vparser) next() (string, error) {
	if p.pos >= len(p.toks) {
		return "", fmt.Errorf("verilog: unexpected end of input")
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

func (p *vparser) expect(s string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t != s {
		return fmt.Errorf("verilog: expected %q got %q", s, t)
	}
	return nil
}

func (p *vparser) parseModule() (*Netlist, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name, err := p.next()
	if err != nil {
		return nil, err
	}
	nl := New(name, p.cat)
	nets := make(map[string]*Net)
	getNet := func(n string) *Net {
		if x, ok := nets[n]; ok {
			return x
		}
		x := nl.AddNet(n)
		nets[n] = x
		return x
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var outputs []string
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t == ")" {
			break
		}
		if t == "," {
			continue
		}
		id, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t {
		case "input":
			n := getNet(id)
			n.PrimaryIn = true
		case "output":
			outputs = append(outputs, id)
		default:
			return nil, fmt.Errorf("verilog: unexpected port class %q", t)
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	outputNets := make(map[string]*Net)
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t {
		case "endmodule":
			// Any output without an assign is driven by a same-named net.
			for _, o := range outputs {
				if outputNets[o] == nil {
					nl.MarkOutput(o, getNet(o))
				}
			}
			return nl, nil
		case "wire":
			id, err := p.next()
			if err != nil {
				return nil, err
			}
			getNet(id)
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		case "assign":
			lhs, err := p.next()
			if err != nil {
				return nil, err
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			rhs, err := p.next()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			n := getNet(rhs)
			nl.MarkOutput(lhs, n)
			outputNets[lhs] = n
		default:
			// Cell instantiation: CELL instname ( .pin(net), ... );
			spec := p.cat.Spec(t)
			if spec == nil {
				return nil, fmt.Errorf("verilog: unknown cell %q", t)
			}
			iname, err := p.next()
			if err != nil {
				return nil, err
			}
			inst := nl.AddInstance(iname, spec)
			if err := p.expect("("); err != nil {
				return nil, err
			}
			outPins := make(map[string]bool, len(spec.Outputs))
			for _, o := range spec.Outputs {
				outPins[o] = true
			}
			for {
				t, err := p.next()
				if err != nil {
					return nil, err
				}
				if t == ")" {
					break
				}
				if t == "," {
					continue
				}
				if t != "." {
					return nil, fmt.Errorf("verilog: expected .pin, got %q", t)
				}
				pin, err := p.next()
				if err != nil {
					return nil, err
				}
				if err := p.expect("("); err != nil {
					return nil, err
				}
				netName, err := p.next()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				n := getNet(netName)
				if outPins[pin] {
					nl.Drive(inst, pin, n)
				} else {
					nl.Connect(inst, pin, n)
				}
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	}
}
