package netlist

import "stdcelltune/internal/stdcell"

// Observer receives edit notifications from a netlist. The incremental
// STA engine registers one to maintain a dirty frontier; a netlist with
// no observers pays only a nil-slice length check per mutation.
//
// Notifications fire after the netlist state has changed, so an observer
// always sees the post-edit connectivity.
type Observer interface {
	// OnResize fires when an instance swaps to a different drive
	// strength. Resizes never change the DAG, only arc delays and the
	// input capacitance presented to the instance's input nets.
	OnResize(inst *Instance, from, to *stdcell.Spec)
	// OnConnect fires when an instance input pin is (re)wired to a net;
	// old is the previously connected net (nil on first connection).
	OnConnect(inst *Instance, pin string, old, n *Net)
	// OnDrive fires when an instance output pin becomes the driver of a
	// net.
	OnDrive(inst *Instance, pin string, n *Net)
	// OnNewNet / OnNewInstance fire when the netlist grows.
	OnNewNet(n *Net)
	OnNewInstance(inst *Instance)
	// OnSinksChanged fires when a net's primary-output sink membership
	// changes (instance sinks are covered by OnConnect).
	OnSinksChanged(n *Net)
}

// Observe registers an observer for subsequent edits.
func (nl *Netlist) Observe(o Observer) {
	nl.observers = append(nl.observers, o)
}

// Unobserve removes a previously registered observer.
func (nl *Netlist) Unobserve(o Observer) {
	for i, cur := range nl.observers {
		if cur == o {
			nl.observers = append(nl.observers[:i], nl.observers[i+1:]...)
			return
		}
	}
}

func (nl *Netlist) notifyResize(inst *Instance, from, to *stdcell.Spec) {
	for _, o := range nl.observers {
		o.OnResize(inst, from, to)
	}
}

func (nl *Netlist) notifyConnect(inst *Instance, pin string, old, n *Net) {
	for _, o := range nl.observers {
		o.OnConnect(inst, pin, old, n)
	}
}

func (nl *Netlist) notifyDrive(inst *Instance, pin string, n *Net) {
	for _, o := range nl.observers {
		o.OnDrive(inst, pin, n)
	}
}

func (nl *Netlist) notifyNewNet(n *Net) {
	for _, o := range nl.observers {
		o.OnNewNet(n)
	}
}

func (nl *Netlist) notifyNewInstance(inst *Instance) {
	for _, o := range nl.observers {
		o.OnNewInstance(inst)
	}
}

func (nl *Netlist) notifySinksChanged(n *Net) {
	for _, o := range nl.observers {
		o.OnSinksChanged(n)
	}
}

// bumpTopo invalidates the cached topological order. Only topology edits
// (Connect, Drive, AddInstance) call it; resizes and primary-output
// moves leave the instance DAG — and therefore the cache — intact.
func (nl *Netlist) bumpTopo() {
	nl.topoGen++
	nl.topoOrder = nil
	nl.topoIndex = nil
}

// TopoGen returns a generation counter that increments on every topology
// edit. Two calls returning the same value bracket a window in which the
// instance DAG (and any cached TopoOrder) was stable.
func (nl *Netlist) TopoGen() uint64 { return nl.topoGen }

// TopoIndexes returns, per instance ID, the instance's position in
// TopoOrder() — the levelized schedule incremental timing propagates in.
// Cached together with the order and invalidated only by topology edits.
// The returned slice is shared with the cache; callers must not mutate
// it.
func (nl *Netlist) TopoIndexes() ([]int, error) {
	if nl.topoIndex == nil {
		if _, err := nl.TopoOrder(); err != nil {
			return nil, err
		}
	}
	return nl.topoIndex, nil
}
