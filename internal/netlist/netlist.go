// Package netlist models the mapped gate-level design: instances of
// standard cells from the catalogue connected by nets, with primary
// inputs/outputs and an implicit ideal clock. It supports the operations
// synthesis needs — resizing instances within a footprint, inserting
// buffers, topological traversal — plus functional evaluation for
// equivalence checking and structural Verilog serialization.
package netlist

import (
	"fmt"
	"strconv"

	"stdcelltune/internal/stdcell"
)

// Netlist is a mapped design.
type Netlist struct {
	Name      string
	Cat       *stdcell.Catalogue
	Instances []*Instance
	Nets      []*Net

	nextInst int
	nextNet  int

	// Edit journal: registered observers get notified after each
	// mutation (see journal.go). The cached topological order is
	// invalidated only by topology edits; resizes never change the DAG.
	observers []Observer
	topoGen   uint64
	topoOrder []*Instance
	topoIndex []int // per instance ID, position in topoOrder
}

// Instance is one placed cell.
type Instance struct {
	ID   int
	Name string
	Spec *stdcell.Spec
	// In maps input pin name -> net; Out maps output pin name -> net.
	In  map[string]*Net
	Out map[string]*Net
}

// Sink is a net consumer: an instance input pin, or a primary output when
// Inst is nil.
type Sink struct {
	Inst *Instance
	Pin  string // pin name, or the primary-output name when Inst is nil
}

// Net connects one driver to its sinks.
type Net struct {
	ID     int
	Name   string
	Driver *Instance // nil when driven by a primary input
	DrvPin string    // driver output pin ("" for primary inputs)
	Sinks  []Sink

	PrimaryIn bool
}

// New creates an empty netlist over a catalogue.
func New(name string, cat *stdcell.Catalogue) *Netlist {
	return &Netlist{Name: name, Cat: cat}
}

// AddNet creates a floating net.
func (nl *Netlist) AddNet(name string) *Net {
	if name == "" {
		name = "n" + strconv.Itoa(nl.nextNet)
	}
	n := &Net{ID: nl.nextNet, Name: name}
	nl.nextNet++
	nl.Nets = append(nl.Nets, n)
	if len(nl.observers) != 0 {
		nl.notifyNewNet(n)
	}
	return n
}

// AddInput creates a primary-input net.
func (nl *Netlist) AddInput(name string) *Net {
	n := nl.AddNet(name)
	n.PrimaryIn = true
	return n
}

// MarkOutput registers the net as a primary output with the given name.
func (nl *Netlist) MarkOutput(name string, n *Net) {
	n.Sinks = append(n.Sinks, Sink{Inst: nil, Pin: name})
	if len(nl.observers) != 0 {
		nl.notifySinksChanged(n)
	}
}

// AddInstance places a cell. Connections are made with Connect/Drive.
func (nl *Netlist) AddInstance(name string, spec *stdcell.Spec) *Instance {
	if name == "" {
		name = "u" + strconv.Itoa(nl.nextInst)
	}
	inst := &Instance{
		ID:   nl.nextInst,
		Name: name,
		Spec: spec,
		In:   make(map[string]*Net),
		Out:  make(map[string]*Net),
	}
	nl.nextInst++
	nl.Instances = append(nl.Instances, inst)
	nl.bumpTopo()
	if len(nl.observers) != 0 {
		nl.notifyNewInstance(inst)
	}
	return inst
}

// Connect wires an instance input pin to a net.
func (nl *Netlist) Connect(inst *Instance, pin string, n *Net) {
	old := inst.In[pin]
	if old != nil {
		nl.removeSink(old, inst, pin)
	}
	inst.In[pin] = n
	n.Sinks = append(n.Sinks, Sink{Inst: inst, Pin: pin})
	nl.bumpTopo()
	if len(nl.observers) != 0 {
		nl.notifyConnect(inst, pin, old, n)
	}
}

// Drive wires an instance output pin as the driver of a net.
func (nl *Netlist) Drive(inst *Instance, pin string, n *Net) {
	inst.Out[pin] = n
	n.Driver = inst
	n.DrvPin = pin
	nl.bumpTopo()
	if len(nl.observers) != 0 {
		nl.notifyDrive(inst, pin, n)
	}
}

func (nl *Netlist) removeSink(n *Net, inst *Instance, pin string) {
	for i, s := range n.Sinks {
		if s.Inst == inst && s.Pin == pin {
			n.Sinks = append(n.Sinks[:i], n.Sinks[i+1:]...)
			return
		}
	}
}

// Resize swaps an instance to a different drive strength of the same
// footprint. The new spec must belong to the same family.
func (nl *Netlist) Resize(inst *Instance, to *stdcell.Spec) error {
	if to.Family != inst.Spec.Family {
		return fmt.Errorf("netlist: resize %s across footprints %s -> %s", inst.Name, inst.Spec.Family, to.Family)
	}
	from := inst.Spec
	inst.Spec = to
	if len(nl.observers) != 0 {
		nl.notifyResize(inst, from, to)
	}
	return nil
}

// InsertBuffer splits net n: the given sinks move behind a new buffer
// instance driven by n. Returns the buffer instance and its output net.
func (nl *Netlist) InsertBuffer(n *Net, spec *stdcell.Spec, sinks []Sink) (*Instance, *Net) {
	buf := nl.AddInstance("", spec)
	out := nl.AddNet("")
	nl.Drive(buf, spec.Outputs[0], out)
	for _, s := range sinks {
		if s.Inst == nil {
			// Re-point a primary output.
			nl.removeSinkPO(n, s.Pin)
			out.Sinks = append(out.Sinks, Sink{Inst: nil, Pin: s.Pin})
			if len(nl.observers) != 0 {
				nl.notifySinksChanged(out)
			}
			continue
		}
		nl.Connect(s.Inst, s.Pin, out)
	}
	nl.Connect(buf, spec.Inputs[0], n)
	return buf, out
}

// MoveSinks reattaches the given sinks of net from onto net to.
func (nl *Netlist) MoveSinks(from, to *Net, sinks []Sink) {
	for _, s := range sinks {
		if s.Inst == nil {
			nl.removeSinkPO(from, s.Pin)
			to.Sinks = append(to.Sinks, Sink{Inst: nil, Pin: s.Pin})
			if len(nl.observers) != 0 {
				nl.notifySinksChanged(to)
			}
			continue
		}
		nl.Connect(s.Inst, s.Pin, to)
	}
}

func (nl *Netlist) removeSinkPO(n *Net, name string) {
	for i, s := range n.Sinks {
		if s.Inst == nil && s.Pin == name {
			n.Sinks = append(n.Sinks[:i], n.Sinks[i+1:]...)
			if len(nl.observers) != 0 {
				nl.notifySinksChanged(n)
			}
			return
		}
	}
}

// PrimaryInputs returns the primary-input nets in creation order.
func (nl *Netlist) PrimaryInputs() []*Net {
	var out []*Net
	for _, n := range nl.Nets {
		if n.PrimaryIn {
			out = append(out, n)
		}
	}
	return out
}

// PrimaryOutputs returns (name, net) pairs for all primary outputs.
func (nl *Netlist) PrimaryOutputs() []Sink {
	var out []Sink
	for _, n := range nl.Nets {
		for _, s := range n.Sinks {
			if s.Inst == nil {
				out = append(out, Sink{Inst: nil, Pin: s.Pin})
			}
		}
	}
	return out
}

// OutputNet returns the net driving the named primary output, or nil.
func (nl *Netlist) OutputNet(name string) *Net {
	for _, n := range nl.Nets {
		for _, s := range n.Sinks {
			if s.Inst == nil && s.Pin == name {
				return n
			}
		}
	}
	return nil
}

// Clone deep-copies the netlist: instances, nets and connectivity are
// duplicated (preserving IDs and names); specs are shared (immutable).
// Used by ECO-style passes that must not mutate a cached design.
func (nl *Netlist) Clone() *Netlist {
	cp := &Netlist{
		Name: nl.Name, Cat: nl.Cat,
		nextInst: nl.nextInst, nextNet: nl.nextNet,
	}
	nets := make(map[*Net]*Net, len(nl.Nets))
	for _, n := range nl.Nets {
		nn := &Net{ID: n.ID, Name: n.Name, PrimaryIn: n.PrimaryIn}
		nets[n] = nn
		cp.Nets = append(cp.Nets, nn)
	}
	insts := make(map[*Instance]*Instance, len(nl.Instances))
	for _, inst := range nl.Instances {
		ni := &Instance{
			ID: inst.ID, Name: inst.Name, Spec: inst.Spec,
			In:  make(map[string]*Net, len(inst.In)),
			Out: make(map[string]*Net, len(inst.Out)),
		}
		insts[inst] = ni
		cp.Instances = append(cp.Instances, ni)
	}
	for _, inst := range nl.Instances {
		ni := insts[inst]
		for pin, n := range inst.In {
			ni.In[pin] = nets[n]
		}
		for pin, n := range inst.Out {
			ni.Out[pin] = nets[n]
		}
	}
	for _, n := range nl.Nets {
		nn := nets[n]
		if n.Driver != nil {
			nn.Driver = insts[n.Driver]
			nn.DrvPin = n.DrvPin
		}
		for _, s := range n.Sinks {
			ns := Sink{Pin: s.Pin}
			if s.Inst != nil {
				ns.Inst = insts[s.Inst]
			}
			nn.Sinks = append(nn.Sinks, ns)
		}
	}
	return cp
}

// Area sums the cell area of all instances (um^2).
func (nl *Netlist) Area() float64 {
	a := 0.0
	for _, inst := range nl.Instances {
		a += inst.Spec.Area()
	}
	return a
}

// CellUse returns instance counts per cell name — the Fig. 9 histogram
// data.
func (nl *Netlist) CellUse() map[string]int {
	m := make(map[string]int)
	for _, inst := range nl.Instances {
		m[inst.Spec.Name]++
	}
	return m
}

// Sequentials returns all flip-flop and latch instances.
func (nl *Netlist) Sequentials() []*Instance {
	var out []*Instance
	for _, inst := range nl.Instances {
		if inst.Spec.IsSequential() {
			out = append(out, inst)
		}
	}
	return out
}

// TopoOrder returns the combinational instances in topological order:
// every instance appears after the drivers of its data inputs.
// Sequential instances are sources (their outputs are cycle boundaries)
// and are listed first. Returns an error on a combinational cycle.
//
// The order is cached and invalidated only by topology edits (Connect,
// Drive, AddInstance); resizes reuse it untouched. The returned slice is
// shared with the cache — callers must not mutate it.
func (nl *Netlist) TopoOrder() ([]*Instance, error) {
	if nl.topoOrder != nil {
		return nl.topoOrder, nil
	}
	state := make([]int8, len(nl.Instances)) // 0 unvisited, 1 visiting, 2 done
	order := make([]*Instance, 0, len(nl.Instances))
	var visit func(inst *Instance) error
	visit = func(inst *Instance) error {
		switch state[inst.ID] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("netlist: combinational cycle through %s", inst.Name)
		}
		state[inst.ID] = 1
		if !inst.Spec.IsSequential() {
			for _, pin := range inst.Spec.Inputs {
				n := inst.In[pin]
				if n == nil || n.Driver == nil {
					continue
				}
				if n.Driver.Spec.IsSequential() {
					continue
				}
				if err := visit(n.Driver); err != nil {
					return err
				}
			}
		}
		state[inst.ID] = 2
		order = append(order, inst)
		return nil
	}
	// Sequentials first (sources), then everything reachable.
	for _, inst := range nl.Instances {
		if inst.Spec.IsSequential() {
			state[inst.ID] = 2
			order = append(order, inst)
		}
	}
	for _, inst := range nl.Instances {
		if state[inst.ID] == 0 {
			if err := visit(inst); err != nil {
				return nil, err
			}
		}
	}
	nl.topoOrder = order
	nl.topoIndex = make([]int, len(nl.Instances))
	for i, inst := range order {
		nl.topoIndex[inst.ID] = i
	}
	return order, nil
}

// Validate checks structural sanity: every instance input pin connected,
// every output pin driving a net, every net with at most one driver, and
// no dangling non-PI nets used as inputs.
func (nl *Netlist) Validate() error {
	for _, inst := range nl.Instances {
		spec := inst.Spec
		for _, pin := range spec.Inputs {
			if inst.In[pin] == nil {
				return fmt.Errorf("netlist: %s input %s unconnected", inst.Name, pin)
			}
		}
		// Clock/reset pins are ideal and may be left implicit; outputs
		// must drive something only if connected at all.
		for pin, n := range inst.Out {
			if n.Driver != inst || n.DrvPin != pin {
				return fmt.Errorf("netlist: %s output %s driver mismatch", inst.Name, pin)
			}
		}
		if len(inst.Out) == 0 {
			return fmt.Errorf("netlist: %s has no outputs connected", inst.Name)
		}
	}
	for _, n := range nl.Nets {
		if n.PrimaryIn && n.Driver != nil {
			return fmt.Errorf("netlist: net %s is both primary input and driven", n.Name)
		}
		for _, s := range n.Sinks {
			if s.Inst != nil && s.Inst.In[s.Pin] != n {
				return fmt.Errorf("netlist: net %s sink %s.%s back-pointer broken", n.Name, s.Inst.Name, s.Pin)
			}
		}
	}
	return nil
}

// Depths returns, per instance ID, the combinational cell depth: number
// of combinational cells on the longest path from any source (PI or
// sequential output) up to and including the instance. Sequential cells
// have depth 0.
func (nl *Netlist) Depths() (map[int]int, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	d := make(map[int]int, len(order))
	for _, inst := range order {
		if inst.Spec.IsSequential() {
			d[inst.ID] = 0
			continue
		}
		m := 0
		for _, pin := range inst.Spec.Inputs {
			n := inst.In[pin]
			if n == nil || n.Driver == nil || n.Driver.Spec.IsSequential() {
				continue
			}
			if d[n.Driver.ID] > m {
				m = d[n.Driver.ID]
			}
		}
		d[inst.ID] = m + 1
	}
	return d, nil
}
