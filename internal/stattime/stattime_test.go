package stattime

import (
	"math"
	"sync"
	"testing"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/netlist"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

var (
	once sync.Once
	cat  *stdcell.Catalogue
	slib *statlib.Library
)

func env(t *testing.T) (*stdcell.Catalogue, *statlib.Library) {
	t.Helper()
	once.Do(func() {
		cat = stdcell.NewCatalogue(stdcell.Typical)
		libs := variation.Instances(cat, variation.Config{N: 25, Seed: 2})
		var err error
		slib, err = statlib.Build("stat", libs)
		if err != nil {
			t.Fatal(err)
		}
	})
	return cat, slib
}

// invChainNetlist builds FF -> n INVs -> FF.
func invChainNetlist(t *testing.T, n int) *netlist.Netlist {
	t.Helper()
	c, _ := env(t)
	nl := netlist.New("chain", c)
	in := nl.AddInput("si")
	ff1 := nl.AddInstance("launch", c.Spec("DFQ_2"))
	nl.Connect(ff1, "D", in)
	cur := nl.AddNet("")
	nl.Drive(ff1, "Q", cur)
	for i := 0; i < n; i++ {
		inv := nl.AddInstance("", c.Spec("INV_2"))
		nl.Connect(inv, "A", cur)
		next := nl.AddNet("")
		nl.Drive(inv, "Y", next)
		cur = next
	}
	ff2 := nl.AddInstance("capture", c.Spec("DFQ_2"))
	nl.Connect(ff2, "D", cur)
	q := nl.AddNet("")
	nl.Drive(ff2, "Q", q)
	nl.MarkOutput("so", q)
	return nl
}

func TestPathDistAgainstManualConvolution(t *testing.T) {
	_, sl := env(t)
	nl := invChainNetlist(t, 4)
	r, err := sta.Analyze(nl, sta.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	// Endpoint "capture" path: launch FF + 4 INVs.
	var ep sta.Endpoint
	for _, e := range r.Endpoints {
		if e.Name == "capture" {
			ep = e
		}
	}
	path := r.WorstPath(ep)
	if path.Depth() != 5 {
		t.Fatalf("depth %d want 5", path.Depth())
	}
	ps, err := PathDist(path, sl, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Manual: sum of means, RSS of sigmas via the same arc lookups.
	var mu, varsum float64
	for _, step := range path.Steps {
		n, err := StepStats(step, sl)
		if err != nil {
			t.Fatal(err)
		}
		mu += n.Mu
		varsum += n.Sigma * n.Sigma
	}
	if math.Abs(ps.Dist.Mu-mu) > 1e-12 {
		t.Errorf("mu %g want %g", ps.Dist.Mu, mu)
	}
	if math.Abs(ps.Dist.Sigma-math.Sqrt(varsum)) > 1e-12 {
		t.Errorf("sigma %g want %g", ps.Dist.Sigma, math.Sqrt(varsum))
	}
	// The statistical-library mean must be close to the STA arrival
	// (same tables, modulo MC estimation error).
	if rel := math.Abs(ps.Dist.Mu-ep.Arrival) / ep.Arrival; rel > 0.05 {
		t.Errorf("statistical mean %g far from STA arrival %g", ps.Dist.Mu, ep.Arrival)
	}
}

// TestSqrtDepthScaling: for identical cells, path sigma grows like
// sqrt(depth) (eq. 10).
func TestSqrtDepthScaling(t *testing.T) {
	_, sl := env(t)
	sigmaOf := func(n int) float64 {
		nl := invChainNetlist(t, n)
		r, err := sta.Analyze(nl, sta.DefaultConfig(10))
		if err != nil {
			t.Fatal(err)
		}
		var worst sta.Path
		for _, p := range r.WorstPaths() {
			if p.Depth() > worst.Depth() {
				worst = p
			}
		}
		// Strip the launch FF so only the identical inverters remain —
		// the clean eq. (10) setting.
		comb := worst
		comb.Steps = comb.Steps[1:]
		ps, err := PathDist(comb, sl, 0)
		if err != nil {
			t.Fatal(err)
		}
		return ps.Dist.Sigma
	}
	s4, s16 := sigmaOf(4), sigmaOf(16)
	ratio := s16 / s4
	// Identical cells: sigma scales as sqrt(16/4) = 2 (eq. 10); the
	// differing last-stage load leaves a little wiggle.
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("sigma ratio 16/4 = %g, want ~2 (sqrt growth)", ratio)
	}
}

func TestAnalyzeDesignConvolution(t *testing.T) {
	_, sl := env(t)
	nl := invChainNetlist(t, 3)
	r, err := sta.Analyze(nl, sta.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Analyze(r, sl, 0)
	if err != nil {
		t.Fatal(err)
	}
	// eq. (11): design sigma = RSS of path sigmas; mean = sum of means.
	var mu, varsum float64
	for _, p := range ds.Paths {
		mu += p.Dist.Mu
		varsum += p.Dist.Sigma * p.Dist.Sigma
	}
	if math.Abs(ds.Design.Mu-mu) > 1e-12 || math.Abs(ds.Design.Sigma-math.Sqrt(varsum)) > 1e-12 {
		t.Errorf("design convolution mismatch")
	}
	if ds.MaxDepth() != 4 {
		t.Errorf("max depth %d want 4", ds.MaxDepth())
	}
	h := ds.DepthHistogram()
	if h[4] != 1 {
		t.Errorf("depth histogram %v", h)
	}
	if ds.WorstMeanPlus3Sigma() <= ds.Design.Mu/float64(len(ds.Paths)) {
		t.Error("worst mu+3sigma implausible")
	}
}

func TestRhoRaisesPathSigma(t *testing.T) {
	_, sl := env(t)
	nl := invChainNetlist(t, 6)
	r, err := sta.Analyze(nl, sta.DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	d0, err := Analyze(r, sl, 0)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Analyze(r, sl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var s0, s1 float64
	for _, p := range d0.Paths {
		if p.Dist.Sigma > s0 {
			s0 = p.Dist.Sigma
		}
	}
	for _, p := range d1.Paths {
		if p.Dist.Sigma > s1 {
			s1 = p.Dist.Sigma
		}
	}
	if s1 <= s0 {
		t.Errorf("rho=0.5 sigma %g not above rho=0 %g (eq. 9 vs eq. 10)", s1, s0)
	}
}

func TestCompareArithmetic(t *testing.T) {
	c := Compare{BaselineSigma: 0.049, TunedSigma: 0.031, BaselineArea: 5.39e4, TunedArea: 5.77e4}
	if r := c.SigmaReduction(); math.Abs(r-0.367) > 0.01 {
		t.Errorf("sigma reduction %g", r)
	}
	if a := c.AreaIncrease(); math.Abs(a-0.0705) > 0.01 {
		t.Errorf("area increase %g", a)
	}
	zero := Compare{}
	if zero.SigmaReduction() != 0 || zero.AreaIncrease() != 0 {
		t.Error("zero baseline should not divide by zero")
	}
}

func TestSortByDepthAndCorrelation(t *testing.T) {
	_, sl := env(t)
	nl := invChainNetlist(t, 5)
	r, err := sta.Analyze(nl, sta.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Analyze(r, sl, 0)
	if err != nil {
		t.Fatal(err)
	}
	ds.SortByDepth()
	for i := 1; i < len(ds.Paths); i++ {
		if ds.Paths[i].Depth < ds.Paths[i-1].Depth {
			t.Fatal("not sorted by depth")
		}
	}
	depths, sigmas := ds.SigmaVsDepth()
	if len(depths) != len(ds.Paths) || len(sigmas) != len(depths) {
		t.Fatal("scatter dimensions")
	}
	corr := ds.DepthSigmaCorrelation()
	if corr < -1-1e-9 || corr > 1+1e-9 {
		t.Errorf("correlation %g outside [-1,1]", corr)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	c, sl := env(t)
	// Netlist whose only endpoint is a PI-driven PO: no cell paths.
	nl := netlist.New("empty", c)
	in := nl.AddInput("a")
	nl.MarkOutput("y", in)
	r, err := sta.Analyze(nl, sta.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(r, sl, 0); err == nil {
		t.Error("design with no cell paths accepted")
	}
}

// TestAnalyzeDegradesQuarantinedCell: a step through a quarantined cell
// falls back to its nominal STA delay with zero sigma and is tallied,
// while a cell missing for any other reason stays a hard error.
func TestAnalyzeDegradesQuarantinedCell(t *testing.T) {
	c, _ := env(t)
	libs := variation.Instances(c, variation.Config{N: 5, Seed: 9})
	sl, err := statlib.Build("q", libs)
	if err != nil {
		t.Fatal(err)
	}
	nl := invChainNetlist(t, 6)
	r, err := sta.Analyze(nl, sta.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Analyze(r, sl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if clean.DegradedSteps() != 0 {
		t.Fatalf("clean run reports %d degraded steps", clean.DegradedSteps())
	}
	// Quarantine the chain's inverter out of the statistical library.
	sl.Quarantine.Add("INV_2", "test: degenerate statistics")
	delete(sl.Cells, "INV_2")
	ds, err := Analyze(r, sl, 0)
	if err != nil {
		t.Fatalf("quarantined cell must degrade, not fail: %v", err)
	}
	if ds.Degraded["INV_2"] == 0 {
		t.Fatal("inverter steps not tallied as degraded")
	}
	if ds.DegradedSteps() < 6 {
		t.Errorf("degraded steps %d, chain has 6 inverters", ds.DegradedSteps())
	}
	// Zero-sigma fallback: design sigma must shrink, mean must stay finite
	// and in the same ballpark (nominal delay replaces the statistical mean).
	if ds.Design.Sigma >= clean.Design.Sigma {
		t.Errorf("degraded sigma %g not below clean %g", ds.Design.Sigma, clean.Design.Sigma)
	}
	if math.IsNaN(ds.Design.Mu) || ds.Design.Mu <= 0 {
		t.Errorf("degraded mean %g not finite-positive", ds.Design.Mu)
	}
	// Missing without quarantine is still fatal.
	delete(sl.Cells, "DFQ_2")
	if _, err := Analyze(r, sl, 0); err == nil {
		t.Error("unquarantined missing cell accepted")
	}
}

// analyzeSerial reproduces the seed's sequential Analyze exactly: one
// pathDist per worst path in endpoint order, no worker pool, no
// interning. The concurrent AnalyzeCtx must match it bit for bit.
func analyzeSerial(t *testing.T, r *sta.Result, stat *statlib.Library, rho float64) *DesignStats {
	t.Helper()
	ds := &DesignStats{Rho: rho, Degraded: make(map[string]int)}
	var pathDists []dist.Normal
	for _, path := range r.WorstPaths() {
		if len(path.Steps) == 0 {
			continue
		}
		an := &analyzer{stat: stat, rho: rho}
		ps, err := an.pathDist(path, ds.Degraded)
		if err != nil {
			t.Fatal(err)
		}
		ds.Paths = append(ds.Paths, ps)
		pathDists = append(pathDists, ps.Dist)
	}
	design, err := dist.ConvolveDesign(pathDists)
	if err != nil {
		t.Fatal(err)
	}
	ds.Design = design
	return ds
}

// TestAnalyzeConcurrentMatchesSerial: the pooled, interned AnalyzeCtx
// must reproduce the serial analysis exactly — same path order, every
// distribution bit-identical, same design convolution, same Degraded
// tallies — including when quarantined cells degrade mid-path.
func TestAnalyzeConcurrentMatchesSerial(t *testing.T) {
	c, _ := env(t)
	libs := variation.Instances(c, variation.Config{N: 8, Seed: 11})
	sl, err := statlib.Build("cmp", libs)
	if err != nil {
		t.Fatal(err)
	}
	nl := invChainNetlist(t, 9)
	r, err := sta.Analyze(nl, sta.DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string) {
		t.Helper()
		want := analyzeSerial(t, r, sl, 0.25)
		for run := 0; run < 5; run++ { // several runs: scheduling must not matter
			got, err := Analyze(r, sl, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Paths) != len(want.Paths) {
				t.Fatalf("%s: %d paths want %d", name, len(got.Paths), len(want.Paths))
			}
			for i := range got.Paths {
				g, w := got.Paths[i], want.Paths[i]
				if g.Path.Endpoint.Name != w.Path.Endpoint.Name || g.Depth != w.Depth {
					t.Fatalf("%s: path %d is %s/%d want %s/%d (ordering)",
						name, i, g.Path.Endpoint.Name, g.Depth, w.Path.Endpoint.Name, w.Depth)
				}
				if g.Dist != w.Dist {
					t.Fatalf("%s: path %d dist %+v want %+v (bit-identical)", name, i, g.Dist, w.Dist)
				}
			}
			if got.Design != want.Design {
				t.Fatalf("%s: design %+v want %+v", name, got.Design, want.Design)
			}
			if len(got.Degraded) != len(want.Degraded) {
				t.Fatalf("%s: degraded %v want %v", name, got.Degraded, want.Degraded)
			}
			for cell, n := range want.Degraded {
				if got.Degraded[cell] != n {
					t.Fatalf("%s: degraded[%s]=%d want %d", name, cell, got.Degraded[cell], n)
				}
			}
		}
	}
	check("clean")
	sl.Quarantine.Add("INV_2", "test: degenerate statistics")
	delete(sl.Cells, "INV_2")
	check("quarantined")
}

func TestYield(t *testing.T) {
	_, sl := env(t)
	nl := invChainNetlist(t, 5)
	r, err := sta.Analyze(nl, sta.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Analyze(r, sl, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Yield is monotone in the clock and spans (0,1).
	if y := ds.Yield(1e-6); y > 1e-6 {
		t.Errorf("yield at ~zero clock %g", y)
	}
	if y := ds.Yield(100); y < 0.999999 {
		t.Errorf("yield at huge clock %g", y)
	}
	prev := -1.0
	for _, clk := range []float64{0.05, 0.1, 0.2, 0.5, 1, 2} {
		y := ds.Yield(clk)
		if y < prev {
			t.Fatalf("yield not monotone at %g", clk)
		}
		prev = y
	}
	// MinClockForYield inverts Yield.
	for _, target := range []float64{0.5, 0.99, 0.999} {
		mc := ds.MinClockForYield(target)
		if y := ds.Yield(mc); y < target-1e-6 {
			t.Errorf("Yield(MinClock(%g)) = %g below target", target, y)
		}
		if y := ds.Yield(mc * 0.99); y > target {
			t.Errorf("min clock for %g not tight", target)
		}
	}
}
