// Package stattime computes the local-variation statistics of a
// synthesized design (Section V of the paper): every cell on a worst
// path contributes a delay mean and sigma interpolated from the
// statistical library at its operating point (bilinear, eqs. 2-4); cells
// convolve into path distributions (eqs. 5-10, correlation rho
// configurable, paper uses rho = 0) and paths into the design
// distribution (eq. 11). The design sigma is the figure of merit the
// library tuning minimizes.
package stattime

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/robust"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
)

// PathStats is the statistical timing of one worst path.
type PathStats struct {
	Path  sta.Path
	Dist  dist.Normal // path delay distribution (eqs. 5, 10)
	Depth int         // number of cells on the path
}

// MeanPlus3Sigma returns the mu+3sigma worst-case bound (Fig. 14).
func (p PathStats) MeanPlus3Sigma() float64 { return p.Dist.ThreeSigmaUpper() }

// DesignStats aggregates a whole design.
type DesignStats struct {
	Paths  []PathStats
	Design dist.Normal // eq. (11) over all paths
	Rho    float64

	// Degraded counts, per cell name, the path steps that fell back to
	// the nominal STA delay with zero sigma because the cell was
	// quarantined out of the statistical library. Empty on a clean run.
	Degraded map[string]int
}

// WorstMeanPlus3Sigma returns the largest mu+3sigma across paths — the
// value that must stay below the effective clock period.
func (d *DesignStats) WorstMeanPlus3Sigma() float64 {
	w := 0.0
	for _, p := range d.Paths {
		if v := p.MeanPlus3Sigma(); v > w {
			w = v
		}
	}
	return w
}

// MaxDepth returns the deepest path.
func (d *DesignStats) MaxDepth() int {
	m := 0
	for _, p := range d.Paths {
		if p.Depth > m {
			m = p.Depth
		}
	}
	return m
}

// DepthHistogram counts paths per depth (Fig. 12).
func (d *DesignStats) DepthHistogram() map[int]int {
	h := make(map[int]int)
	for _, p := range d.Paths {
		h[p.Depth]++
	}
	return h
}

// SortByDepth orders the paths by depth then endpoint name, the x-axis
// ordering of Fig. 14.
func (d *DesignStats) SortByDepth() {
	sort.Slice(d.Paths, func(i, j int) bool {
		if d.Paths[i].Depth != d.Paths[j].Depth {
			return d.Paths[i].Depth < d.Paths[j].Depth
		}
		return d.Paths[i].Path.Endpoint.Name < d.Paths[j].Path.Endpoint.Name
	})
}

// Analyze computes the statistics of every worst path (one per unique
// endpoint, as in the paper) and the design-level convolution. Steps
// through cells the statistical library quarantined degrade to their
// nominal STA delay with zero sigma and are tallied in Degraded; a cell
// missing for any other reason is still a hard error.
func Analyze(r *sta.Result, stat *statlib.Library, rho float64) (*DesignStats, error) {
	return AnalyzeCtx(context.Background(), r, stat, rho)
}

// AnalyzeCtx is Analyze bound to a context. The per-path analysis fans
// out over the robust worker pool: every path's distribution lands at
// its path's index and the per-worker degradation tallies merge by
// summation, so the result — path order, every distribution, the
// design convolution and the Degraded counts — is identical to a
// serial run. Repeated (cell, arc, load, slew) step lookups within the
// call are interned, which collapses the bilinear interpolation work on
// designs where many paths share cell instances. On a single-CPU
// machine (robust.DefaultWorkers() == 1) the same loop runs inline —
// the pool would cost goroutine churn and buy no parallelism.
func AnalyzeCtx(ctx context.Context, r *sta.Result, stat *statlib.Library, rho float64) (*DesignStats, error) {
	all, err := r.WorstPathsCtx(ctx)
	if err != nil {
		return nil, err
	}
	paths := make([]sta.Path, 0, len(all))
	for _, path := range all {
		if len(path.Steps) == 0 {
			continue // endpoint fed directly by a primary input
		}
		paths = append(paths, path)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("stattime: design has no cell paths")
	}
	span := obs.TracerFrom(ctx).Start("stattime.analyze", "analyze", "paths", len(paths))
	defer span.End()
	results := make([]PathStats, len(paths))
	tallies := make([]map[string]int, len(paths))
	if workers := robust.DefaultWorkers(); workers > 1 {
		an := &analyzer{stat: stat, rho: rho, intern: &syncIntern{}}
		err = robust.ForEachNamed(ctx, "stattime.paths", workers, len(paths), func(_ context.Context, i int) error {
			deg := make(map[string]int)
			ps, err := an.pathDist(paths[i], deg)
			if err != nil {
				return err
			}
			results[i] = ps
			if len(deg) > 0 {
				tallies[i] = deg
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		// One worker means no parallelism to win: run the same loop
		// inline, with an unsynchronized intern table. Identical results,
		// none of the pool or sync.Map overhead.
		an := &analyzer{stat: stat, rho: rho, intern: mapIntern{}, scratch: make([]dist.Normal, 0, 64)}
		deg := make(map[string]int) // one tally for the whole loop: merging is summation anyway
		for i := range paths {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			ps, err := an.pathDist(paths[i], deg)
			if err != nil {
				return nil, err
			}
			results[i] = ps
		}
		if len(deg) > 0 {
			tallies[0] = deg
		}
	}
	ds := &DesignStats{Rho: rho, Degraded: make(map[string]int), Paths: results}
	pathDists := make([]dist.Normal, len(results))
	for i, ps := range results {
		pathDists[i] = ps.Dist
	}
	for _, deg := range tallies {
		for cell, n := range deg {
			ds.Degraded[cell] += n
		}
	}
	design, err := dist.ConvolveDesign(pathDists)
	if err != nil {
		return nil, err
	}
	ds.Design = design
	return ds, nil
}

// DegradedSteps returns the total number of path steps that fell back
// to nominal timing because their cell was quarantined.
func (d *DesignStats) DegradedSteps() int {
	n := 0
	for _, c := range d.Degraded {
		n += c
	}
	return n
}

// PathDist computes the delay distribution of one path: per-step
// statistics interpolated from the statistical library at the step's
// operating point, convolved along the path.
func PathDist(path sta.Path, stat *statlib.Library, rho float64) (PathStats, error) {
	an := &analyzer{stat: stat, rho: rho}
	return an.pathDist(path, nil)
}

// analyzer carries the shared state of one Analyze call: the library,
// the correlation, and (when non-nil) the intern table of resolved
// step statistics, keyed by (cell, out pin, in pin, load, slew). A
// given key always resolves to the same statistics, so sharing the
// table across workers cannot change any result — only skip repeated
// name resolution and bilinear interpolation.
type analyzer struct {
	stat   *statlib.Library
	rho    float64
	intern internTable // nil disables interning (exported PathDist)

	// scratch, when non-nil, is the per-path step buffer reused across
	// pathDist calls. Only the serial analysis sets it: the concurrent
	// fan-out shares one analyzer across workers, where a shared buffer
	// would race, so those calls allocate per path as before.
	scratch []dist.Normal
}

type stepKey struct {
	cell, out, from string
	load, slew      float64
}

type stepStats struct {
	n   dist.Normal
	err error
}

// internTable memoizes resolved step statistics. The concurrent
// analysis shares a syncIntern across workers; the serial path uses a
// plain map and skips the synchronization entirely.
type internTable interface {
	load(stepKey) (stepStats, bool)
	store(stepKey, stepStats)
}

type mapIntern map[stepKey]stepStats

func (m mapIntern) load(k stepKey) (stepStats, bool) { s, ok := m[k]; return s, ok }
func (m mapIntern) store(k stepKey, s stepStats)     { m[k] = s }

type syncIntern struct{ m sync.Map }

func (si *syncIntern) load(k stepKey) (stepStats, bool) {
	v, ok := si.m.Load(k)
	if !ok {
		return stepStats{}, false
	}
	return v.(stepStats), true
}

func (si *syncIntern) store(k stepKey, s stepStats) { si.m.Store(k, s) }

func (a *analyzer) pathDist(path sta.Path, degraded map[string]int) (PathStats, error) {
	var cells []dist.Normal
	if a.scratch != nil {
		cells = a.scratch[:0]
		defer func() { a.scratch = cells[:0] }()
	} else {
		cells = make([]dist.Normal, 0, len(path.Steps))
	}
	for _, step := range path.Steps {
		if step.Inst.Spec.Kind == stdcell.KindTie {
			continue // tie cells have no timing arcs and no variation
		}
		n, err := a.stepStats(step)
		if err != nil {
			if !a.stat.Quarantined(step.Inst.Spec.Name) {
				return PathStats{}, err
			}
			// Quarantined cell: its statistics were degenerate, so take
			// the step's nominal STA delay as a zero-sigma contribution
			// instead of killing the analysis.
			if degraded != nil {
				degraded[step.Inst.Spec.Name]++
			}
			n = dist.Normal{Mu: step.Delay}
		}
		cells = append(cells, n)
	}
	if len(cells) == 0 {
		return PathStats{Path: path, Depth: len(path.Steps)}, nil
	}
	d, err := dist.ConvolvePathCorrelated(cells, a.rho)
	if err != nil {
		return PathStats{}, err
	}
	return PathStats{Path: path, Dist: d, Depth: len(path.Steps)}, nil
}

// stepStats resolves one step through the intern table when one is
// attached. NaN loads or slews never intern (NaN keys miss every map
// probe), which is fine: they are pathological and rare by definition.
func (a *analyzer) stepStats(step sta.PathStep) (dist.Normal, error) {
	if a.intern == nil {
		return StepStats(step, a.stat)
	}
	key := stepKey{
		cell: step.Inst.Spec.Name, out: step.OutPin, from: step.FromPin,
		load: step.Load, slew: step.Slew,
	}
	if s, ok := a.intern.load(key); ok {
		return s.n, s.err
	}
	n, err := StepStats(step, a.stat)
	a.intern.store(key, stepStats{n: n, err: err})
	return n, err
}

// StepStats interpolates the statistical library for one path step.
func StepStats(step sta.PathStep, stat *statlib.Library) (dist.Normal, error) {
	cell := stat.Cell(step.Inst.Spec.Name)
	if cell == nil {
		return dist.Normal{}, fmt.Errorf("stattime: cell %s missing from statistical library", step.Inst.Spec.Name)
	}
	pin := cell.Pin(step.OutPin)
	if pin == nil {
		return dist.Normal{}, fmt.Errorf("stattime: pin %s/%s missing", step.Inst.Spec.Name, step.OutPin)
	}
	arc := pin.Arc(step.FromPin)
	if arc == nil {
		return dist.Normal{}, fmt.Errorf("stattime: arc %s/%s<-%s missing", step.Inst.Spec.Name, step.OutPin, step.FromPin)
	}
	return arc.Stats(step.Load, step.Slew), nil
}

// Compare summarizes a tuned design against a baseline: the relative
// sigma decrease and area increase the paper reports in Figs. 10 and 11.
type Compare struct {
	BaselineSigma float64
	TunedSigma    float64
	BaselineArea  float64
	TunedArea     float64
}

// SigmaReduction returns the fractional sigma decrease (0.37 = 37%).
func (c Compare) SigmaReduction() float64 {
	if c.BaselineSigma == 0 {
		return 0
	}
	return (c.BaselineSigma - c.TunedSigma) / c.BaselineSigma
}

// AreaIncrease returns the fractional area increase (0.07 = 7%).
func (c Compare) AreaIncrease() float64 {
	if c.BaselineArea == 0 {
		return 0
	}
	return (c.TunedArea - c.BaselineArea) / c.BaselineArea
}

// Yield returns the parametric timing yield at an effective clock
// period: the probability that every worst path meets timing, with each
// path delay normal (mu_i, sigma_i) and paths treated as independent —
// the same independence eq. (11) assumes. This quantifies the paper's
// motivation: lower sigma lets the clock uncertainty shrink, which buys
// either yield or frequency.
func (d *DesignStats) Yield(effectiveClock float64) float64 {
	y := 1.0
	for _, p := range d.Paths {
		if p.Dist.Sigma == 0 {
			if p.Dist.Mu > effectiveClock {
				return 0
			}
			continue
		}
		y *= p.Dist.CDF(effectiveClock)
		if y == 0 {
			return 0
		}
	}
	return y
}

// MinClockForYield returns the smallest effective clock period achieving
// the target yield (bisection; target in (0,1)).
func (d *DesignStats) MinClockForYield(target float64) float64 {
	lo, hi := 0.0, 1.0
	for d.Yield(hi) < target {
		hi *= 2
		if hi > 1e6 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if d.Yield(mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// SigmaVsDepth returns (depth, sigma) pairs for the Fig. 13 scatter.
func (d *DesignStats) SigmaVsDepth() (depths []int, sigmas []float64) {
	for _, p := range d.Paths {
		depths = append(depths, p.Depth)
		sigmas = append(sigmas, p.Dist.Sigma)
	}
	return depths, sigmas
}

// DepthSigmaCorrelation returns the Pearson correlation between path
// depth and path sigma — the paper's Fig. 13 point is that this is weak
// ("no direct relation between the path depth and the local variation").
func (d *DesignStats) DepthSigmaCorrelation() float64 {
	depths, sigmas := d.SigmaVsDepth()
	if len(depths) < 2 {
		return 0
	}
	n := float64(len(depths))
	var sx, sy float64
	for i := range depths {
		sx += float64(depths[i])
		sy += sigmas[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range depths {
		dx := float64(depths[i]) - mx
		dy := sigmas[i] - my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
