// Package stattime computes the local-variation statistics of a
// synthesized design (Section V of the paper): every cell on a worst
// path contributes a delay mean and sigma interpolated from the
// statistical library at its operating point (bilinear, eqs. 2-4); cells
// convolve into path distributions (eqs. 5-10, correlation rho
// configurable, paper uses rho = 0) and paths into the design
// distribution (eq. 11). The design sigma is the figure of merit the
// library tuning minimizes.
package stattime

import (
	"fmt"
	"math"
	"sort"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
)

// PathStats is the statistical timing of one worst path.
type PathStats struct {
	Path  sta.Path
	Dist  dist.Normal // path delay distribution (eqs. 5, 10)
	Depth int         // number of cells on the path
}

// MeanPlus3Sigma returns the mu+3sigma worst-case bound (Fig. 14).
func (p PathStats) MeanPlus3Sigma() float64 { return p.Dist.ThreeSigmaUpper() }

// DesignStats aggregates a whole design.
type DesignStats struct {
	Paths  []PathStats
	Design dist.Normal // eq. (11) over all paths
	Rho    float64

	// Degraded counts, per cell name, the path steps that fell back to
	// the nominal STA delay with zero sigma because the cell was
	// quarantined out of the statistical library. Empty on a clean run.
	Degraded map[string]int
}

// WorstMeanPlus3Sigma returns the largest mu+3sigma across paths — the
// value that must stay below the effective clock period.
func (d *DesignStats) WorstMeanPlus3Sigma() float64 {
	w := 0.0
	for _, p := range d.Paths {
		if v := p.MeanPlus3Sigma(); v > w {
			w = v
		}
	}
	return w
}

// MaxDepth returns the deepest path.
func (d *DesignStats) MaxDepth() int {
	m := 0
	for _, p := range d.Paths {
		if p.Depth > m {
			m = p.Depth
		}
	}
	return m
}

// DepthHistogram counts paths per depth (Fig. 12).
func (d *DesignStats) DepthHistogram() map[int]int {
	h := make(map[int]int)
	for _, p := range d.Paths {
		h[p.Depth]++
	}
	return h
}

// SortByDepth orders the paths by depth then endpoint name, the x-axis
// ordering of Fig. 14.
func (d *DesignStats) SortByDepth() {
	sort.Slice(d.Paths, func(i, j int) bool {
		if d.Paths[i].Depth != d.Paths[j].Depth {
			return d.Paths[i].Depth < d.Paths[j].Depth
		}
		return d.Paths[i].Path.Endpoint.Name < d.Paths[j].Path.Endpoint.Name
	})
}

// Analyze computes the statistics of every worst path (one per unique
// endpoint, as in the paper) and the design-level convolution. Steps
// through cells the statistical library quarantined degrade to their
// nominal STA delay with zero sigma and are tallied in Degraded; a cell
// missing for any other reason is still a hard error.
func Analyze(r *sta.Result, stat *statlib.Library, rho float64) (*DesignStats, error) {
	ds := &DesignStats{Rho: rho, Degraded: make(map[string]int)}
	var pathDists []dist.Normal
	for _, path := range r.WorstPaths() {
		if len(path.Steps) == 0 {
			continue // endpoint fed directly by a primary input
		}
		ps, err := pathDist(path, stat, rho, ds.Degraded)
		if err != nil {
			return nil, err
		}
		ds.Paths = append(ds.Paths, ps)
		pathDists = append(pathDists, ps.Dist)
	}
	if len(pathDists) == 0 {
		return nil, fmt.Errorf("stattime: design has no cell paths")
	}
	design, err := dist.ConvolveDesign(pathDists)
	if err != nil {
		return nil, err
	}
	ds.Design = design
	return ds, nil
}

// DegradedSteps returns the total number of path steps that fell back
// to nominal timing because their cell was quarantined.
func (d *DesignStats) DegradedSteps() int {
	n := 0
	for _, c := range d.Degraded {
		n += c
	}
	return n
}

// PathDist computes the delay distribution of one path: per-step
// statistics interpolated from the statistical library at the step's
// operating point, convolved along the path.
func PathDist(path sta.Path, stat *statlib.Library, rho float64) (PathStats, error) {
	return pathDist(path, stat, rho, nil)
}

func pathDist(path sta.Path, stat *statlib.Library, rho float64, degraded map[string]int) (PathStats, error) {
	cells := make([]dist.Normal, 0, len(path.Steps))
	for _, step := range path.Steps {
		if step.Inst.Spec.Kind == stdcell.KindTie {
			continue // tie cells have no timing arcs and no variation
		}
		n, err := StepStats(step, stat)
		if err != nil {
			if !stat.Quarantined(step.Inst.Spec.Name) {
				return PathStats{}, err
			}
			// Quarantined cell: its statistics were degenerate, so take
			// the step's nominal STA delay as a zero-sigma contribution
			// instead of killing the analysis.
			if degraded != nil {
				degraded[step.Inst.Spec.Name]++
			}
			n = dist.Normal{Mu: step.Delay}
		}
		cells = append(cells, n)
	}
	if len(cells) == 0 {
		return PathStats{Path: path, Depth: len(path.Steps)}, nil
	}
	d, err := dist.ConvolvePathCorrelated(cells, rho)
	if err != nil {
		return PathStats{}, err
	}
	return PathStats{Path: path, Dist: d, Depth: len(path.Steps)}, nil
}

// StepStats interpolates the statistical library for one path step.
func StepStats(step sta.PathStep, stat *statlib.Library) (dist.Normal, error) {
	cell := stat.Cell(step.Inst.Spec.Name)
	if cell == nil {
		return dist.Normal{}, fmt.Errorf("stattime: cell %s missing from statistical library", step.Inst.Spec.Name)
	}
	pin := cell.Pin(step.OutPin)
	if pin == nil {
		return dist.Normal{}, fmt.Errorf("stattime: pin %s/%s missing", step.Inst.Spec.Name, step.OutPin)
	}
	arc := pin.Arc(step.FromPin)
	if arc == nil {
		return dist.Normal{}, fmt.Errorf("stattime: arc %s/%s<-%s missing", step.Inst.Spec.Name, step.OutPin, step.FromPin)
	}
	return arc.Stats(step.Load, step.Slew), nil
}

// Compare summarizes a tuned design against a baseline: the relative
// sigma decrease and area increase the paper reports in Figs. 10 and 11.
type Compare struct {
	BaselineSigma float64
	TunedSigma    float64
	BaselineArea  float64
	TunedArea     float64
}

// SigmaReduction returns the fractional sigma decrease (0.37 = 37%).
func (c Compare) SigmaReduction() float64 {
	if c.BaselineSigma == 0 {
		return 0
	}
	return (c.BaselineSigma - c.TunedSigma) / c.BaselineSigma
}

// AreaIncrease returns the fractional area increase (0.07 = 7%).
func (c Compare) AreaIncrease() float64 {
	if c.BaselineArea == 0 {
		return 0
	}
	return (c.TunedArea - c.BaselineArea) / c.BaselineArea
}

// Yield returns the parametric timing yield at an effective clock
// period: the probability that every worst path meets timing, with each
// path delay normal (mu_i, sigma_i) and paths treated as independent —
// the same independence eq. (11) assumes. This quantifies the paper's
// motivation: lower sigma lets the clock uncertainty shrink, which buys
// either yield or frequency.
func (d *DesignStats) Yield(effectiveClock float64) float64 {
	y := 1.0
	for _, p := range d.Paths {
		if p.Dist.Sigma == 0 {
			if p.Dist.Mu > effectiveClock {
				return 0
			}
			continue
		}
		y *= p.Dist.CDF(effectiveClock)
		if y == 0 {
			return 0
		}
	}
	return y
}

// MinClockForYield returns the smallest effective clock period achieving
// the target yield (bisection; target in (0,1)).
func (d *DesignStats) MinClockForYield(target float64) float64 {
	lo, hi := 0.0, 1.0
	for d.Yield(hi) < target {
		hi *= 2
		if hi > 1e6 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if d.Yield(mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// SigmaVsDepth returns (depth, sigma) pairs for the Fig. 13 scatter.
func (d *DesignStats) SigmaVsDepth() (depths []int, sigmas []float64) {
	for _, p := range d.Paths {
		depths = append(depths, p.Depth)
		sigmas = append(sigmas, p.Dist.Sigma)
	}
	return depths, sigmas
}

// DepthSigmaCorrelation returns the Pearson correlation between path
// depth and path sigma — the paper's Fig. 13 point is that this is weak
// ("no direct relation between the path depth and the local variation").
func (d *DesignStats) DepthSigmaCorrelation() float64 {
	depths, sigmas := d.SigmaVsDepth()
	if len(depths) < 2 {
		return 0
	}
	n := float64(len(depths))
	var sx, sy float64
	for i := range depths {
		sx += float64(depths[i])
		sy += sigmas[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range depths {
		dx := float64(depths[i]) - mx
		dy := sigmas[i] - my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
