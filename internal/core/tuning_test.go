package core

import (
	"math"
	"sync"
	"testing"

	"stdcelltune/internal/lut"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

var (
	statOnce sync.Once
	statCat  *stdcell.Catalogue
	statLib  *statlib.Library
)

// sharedStat builds one 30-sample statistical library for all tests.
func sharedStat(t *testing.T) (*stdcell.Catalogue, *statlib.Library) {
	t.Helper()
	statOnce.Do(func() {
		statCat = stdcell.NewCatalogue(stdcell.Typical)
		libs := variation.Instances(statCat, variation.Config{N: 30, Seed: 1, CharNoise: 0.02})
		var err error
		statLib, err = statlib.Build("stat", libs)
		if err != nil {
			t.Fatal(err)
		}
	})
	return statCat, statLib
}

func TestMethodPresets(t *testing.T) {
	if len(Methods) != 5 {
		t.Fatalf("paper defines five tuning methods, got %d", len(Methods))
	}
	seen := map[string]bool{}
	for _, m := range Methods {
		if s := m.String(); s == "unknown" || seen[s] {
			t.Errorf("method %d name %q", m, s)
		} else {
			seen[m.String()] = true
		}
	}
	if Method(99).String() != "unknown" {
		t.Error("out-of-range method name")
	}
	// Clustering split: two strength-based, three cell-based.
	if !CellStrengthLoadSlope.ByStrength() || !CellStrengthSlewSlope.ByStrength() {
		t.Error("strength methods misclassified")
	}
	if CellLoadSlope.ByStrength() || CellSlewSlope.ByStrength() || SigmaCeiling.ByStrength() {
		t.Error("cell methods misclassified")
	}
}

func TestParamsForDefaults(t *testing.T) {
	// Paper Table 2: varying one parameter keeps the others at defaults
	// (load=1, slew=0.06, sigma=100).
	p := ParamsFor(CellLoadSlope, 0.03)
	if p.LoadSlopeBound != 0.03 || p.SlewSlopeBound != DefaultSlewSlopeBound || p.SigmaCeiling != DefaultSigmaCeiling {
		t.Errorf("load sweep params %+v", p)
	}
	p = ParamsFor(CellStrengthSlewSlope, 0.01)
	if p.SlewSlopeBound != 0.01 || p.LoadSlopeBound != DefaultLoadSlopeBound {
		t.Errorf("slew sweep params %+v", p)
	}
	p = ParamsFor(SigmaCeiling, 0.02)
	if p.SigmaCeiling != 0.02 || p.LoadSlopeBound != DefaultLoadSlopeBound || p.SlewSlopeBound != DefaultSlewSlopeBound {
		t.Errorf("ceiling params %+v", p)
	}
}

func TestSweepBoundsMatchTable2(t *testing.T) {
	want := []float64{1, 0.05, 0.03, 0.01}
	for _, m := range []Method{CellStrengthLoadSlope, CellStrengthSlewSlope, CellLoadSlope, CellSlewSlope} {
		got := SweepBounds(m)
		if len(got) != 4 {
			t.Fatalf("%v sweep len %d", m, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v sweep %v want %v", m, got, want)
			}
		}
	}
	ceil := SweepBounds(SigmaCeiling)
	wantC := []float64{0.04, 0.03, 0.02, 0.01}
	for i := range wantC {
		if ceil[i] != wantC[i] {
			t.Errorf("ceiling sweep %v want %v", ceil, wantC)
		}
	}
}

func TestSigmaCeilingWindows(t *testing.T) {
	_, sl := sharedStat(t)
	tuner := NewTuner(sl)
	set, rep, err := tuner.Tune(ParamsFor(SigmaCeiling, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 {
		t.Fatal("no windows produced")
	}
	// Every cluster threshold is the ceiling itself.
	for _, c := range rep.Clusters {
		if c.Threshold != 0.02 {
			t.Errorf("cluster %s threshold %g want 0.02", c.Name, c.Threshold)
		}
	}
	// Stage-2 invariant: inside every window, the pin's worst-case sigma
	// stays below the ceiling at all grid points within the rectangle.
	for _, pr := range rep.Pins {
		if pr.Excluded {
			continue
		}
		cell := sl.Cells[pr.Cell]
		pin := cell.Pin(pr.Pin)
		maxEq, err := pin.MaxSigmaTable()
		if err != nil {
			t.Fatal(err)
		}
		for i := pr.Rect.L1; i <= pr.Rect.L2; i++ {
			for j := pr.Rect.S1; j <= pr.Rect.S2; j++ {
				if maxEq.Values[i][j] > 0.02 {
					t.Fatalf("%s/%s: sigma %g inside window above ceiling", pr.Cell, pr.Pin, maxEq.Values[i][j])
				}
			}
		}
	}
}

// TestCeilingMonotonicity: tightening the ceiling can only shrink (never
// grow) each pin's usable window.
func TestCeilingMonotonicity(t *testing.T) {
	_, sl := sharedStat(t)
	tuner := NewTuner(sl)
	var prev *Report
	for _, bound := range []float64{0.04, 0.03, 0.02, 0.01} {
		_, rep, err := tuner.Tune(ParamsFor(SigmaCeiling, bound))
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			prevArea := make(map[string]int, len(prev.Pins))
			for _, p := range prev.Pins {
				prevArea[p.Cell+"/"+p.Pin] = p.Rect.Area()
			}
			for _, p := range rep.Pins {
				if pa, ok := prevArea[p.Cell+"/"+p.Pin]; ok && p.Rect.Area() > pa {
					t.Fatalf("window of %s/%s grew when ceiling tightened", p.Cell, p.Pin)
				}
			}
		}
		prev = rep
	}
}

// TestHighDriveKeepsMoreLUT: under a ceiling, high-drive cells (lower
// sigma by Pelgrom) retain a larger usable fraction of their LUT than
// their drive-1 siblings — the Fig. 4 mechanism the tuning exploits.
func TestHighDriveKeepsMoreLUT(t *testing.T) {
	_, sl := sharedStat(t)
	tuner := NewTuner(sl)
	_, rep, err := tuner.Tune(ParamsFor(SigmaCeiling, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	retained := make(map[string]float64)
	for _, p := range rep.Pins {
		retained[p.Cell+"/"+p.Pin] = p.Retained
	}
	if retained["INV_32/Y"] <= retained["INV_1/Y"] {
		t.Errorf("INV_32 retained %.2f not above INV_1 %.2f",
			retained["INV_32/Y"], retained["INV_1/Y"])
	}
}

func TestUnrestrictiveBoundsKeepFullLUT(t *testing.T) {
	_, sl := sharedStat(t)
	tuner := NewTuner(sl)
	// Bound 1 on load slope plus defaults elsewhere: nothing binds, the
	// rectangle covers the full LUT and windows span the whole axis.
	set, rep, err := tuner.Tune(ParamsFor(CellLoadSlope, 1))
	if err != nil {
		t.Fatal(err)
	}
	full, total := 0, 0
	for _, p := range rep.Pins {
		total++
		if p.Retained == 1 {
			full++
		}
	}
	if float64(full) < 0.9*float64(total) {
		t.Errorf("only %d/%d pins keep their full LUT under non-binding bounds", full, total)
	}
	// Windows must allow the full characterized range for e.g. INV_4.
	cell := sl.Cells["INV_4"]
	maxEq, _ := cell.Pins[0].MaxSigmaTable()
	w, ok := set.Window("INV_4", "Y")
	if !ok {
		t.Fatal("INV_4 window missing")
	}
	lastLoad := maxEq.Loads[len(maxEq.Loads)-1]
	if w.MaxLoad < lastLoad {
		t.Errorf("MaxLoad %g below last axis point %g", w.MaxLoad, lastLoad)
	}
}

// TestSlopeMethodsTightenWithBound: smaller slope bounds restrict at
// least as much as larger ones (total retained area is non-increasing).
func TestSlopeMethodsTightenWithBound(t *testing.T) {
	_, sl := sharedStat(t)
	tuner := NewTuner(sl)
	for _, m := range []Method{CellLoadSlope, CellSlewSlope, CellStrengthLoadSlope, CellStrengthSlewSlope} {
		prevTotal := math.Inf(1)
		for _, bound := range SweepBounds(m) {
			_, rep, err := tuner.Tune(ParamsFor(m, bound))
			if err != nil {
				t.Fatal(err)
			}
			total := 0.0
			for _, p := range rep.Pins {
				total += p.Retained
			}
			if total > prevTotal+1e-9 {
				t.Errorf("%v: retained area grew when bound tightened to %g", m, bound)
			}
			prevTotal = total
		}
	}
}

func TestStrengthClustering(t *testing.T) {
	_, sl := sharedStat(t)
	tuner := NewTuner(sl)
	_, rep, err := tuner.Tune(ParamsFor(CellStrengthLoadSlope, 0.03))
	if err != nil {
		t.Fatal(err)
	}
	// Clusters are drive strengths, so far fewer clusters than cells.
	if len(rep.Clusters) >= len(rep.Pins) {
		t.Errorf("strength clustering made %d clusters for %d pins", len(rep.Clusters), len(rep.Pins))
	}
	// The drive-6 cluster of Fig. 5 exists and has several member cells.
	var found *ClusterReport
	for i := range rep.Clusters {
		if rep.Clusters[i].Name == "drive 6" {
			found = &rep.Clusters[i]
		}
	}
	if found == nil {
		t.Fatal("drive 6 cluster missing")
	}
	if len(found.Cells) < 10 {
		t.Errorf("drive 6 cluster has only %d cells", len(found.Cells))
	}
	// Per-cell method: clusters == cells with pins.
	_, repCell, err := tuner.Tune(ParamsFor(CellLoadSlope, 0.03))
	if err != nil {
		t.Fatal(err)
	}
	if len(repCell.Clusters) <= len(rep.Clusters) {
		t.Error("per-cell clustering should have more clusters than strength clustering")
	}
}

func TestExcludedPins(t *testing.T) {
	_, sl := sharedStat(t)
	tuner := NewTuner(sl)
	// An absurdly low ceiling excludes essentially everything.
	set, rep, err := tuner.Tune(ParamsFor(SigmaCeiling, 1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExcludedPins() == 0 {
		t.Fatal("nothing excluded under a 1e-9 ceiling")
	}
	// Excluded pins get windows that allow no operating point.
	for _, pr := range rep.Pins {
		if !pr.Excluded {
			continue
		}
		w, ok := set.Window(pr.Cell, pr.Pin)
		if !ok {
			t.Fatalf("excluded pin %s/%s missing window", pr.Cell, pr.Pin)
		}
		if w.Allows(0.001, 0.01) {
			t.Fatalf("excluded pin %s/%s still allows operation", pr.Cell, pr.Pin)
		}
	}
}

// TestTunerQuarantinesDegenerateCell: a cell whose sigma data went
// non-finite must be skipped (left unrestricted) and reported, without
// poisoning its cluster's threshold or failing the run.
func TestTunerQuarantinesDegenerateCell(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	libs := variation.Instances(cat, variation.Config{N: 5, Seed: 3, CharNoise: 0.02})
	sl, err := statlib.Build("x", libs)
	if err != nil {
		t.Fatal(err)
	}
	victim := "ND2_2"
	sl.Cell(victim).Pins[0].Arcs[0].SigmaRise.Values[1][1] = math.NaN()
	win, rep, err := NewTuner(sl).Tune(ParamsFor(SigmaCeiling, 0.02))
	if err != nil {
		t.Fatalf("one degenerate cell must degrade, not fail: %v", err)
	}
	if !rep.Quarantine.Has(victim) {
		t.Fatalf("%s not quarantined: %s", victim, rep.Quarantine.Render())
	}
	if rep.Quarantine.Len() != 1 {
		t.Errorf("quarantine %d cells, want 1", rep.Quarantine.Len())
	}
	// A quarantined cell stays unrestricted; a healthy sibling at the
	// same drive is still tuned.
	if w, ok := win.Window(victim, sl.Cell(victim).Pins[0].Name); ok {
		t.Errorf("quarantined cell got a window: %+v", w)
	}
	healthy := "ND2_4"
	if _, ok := win.Window(healthy, sl.Cell(healthy).Pins[0].Name); !ok {
		t.Errorf("healthy cell %s lost its window", healthy)
	}
}

func TestWindowFromRectInteriorAnchor(t *testing.T) {
	_, sl := sharedStat(t)
	// A rectangle anchored away from the origin must produce nonzero
	// minimums. Build synthetically via windowFromRect.
	cell := sl.Cells["INV_4"]
	maxEq, _ := cell.Pins[0].MaxSigmaTable()
	w := windowFromRect(maxEq, rectAt(1, 2, 3, 4))
	if w.MinLoad != maxEq.Loads[1] || w.MinSlew != maxEq.Slews[2] {
		t.Errorf("interior rect minimums wrong: %+v", w)
	}
	if w.MaxLoad != maxEq.Loads[3] || w.MaxSlew != maxEq.Slews[4] {
		t.Errorf("interior rect maximums wrong: %+v", w)
	}
	worigin := windowFromRect(maxEq, rectAt(0, 0, 2, 2))
	if worigin.MinLoad != 0 || worigin.MinSlew != 0 {
		t.Errorf("origin rect should leave minimums at zero: %+v", worigin)
	}
}

func rectAt(l1, s1, l2, s2 int) lut.Rect {
	return lut.Rect{L1: l1, S1: s1, L2: l2, S2: s2}
}
