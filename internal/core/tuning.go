// Package core implements the paper's contribution: statistical library
// tuning. Instead of excluding whole cells, the tuner confines each
// cell's look-up table to the slew/load region where its delay sigma is
// acceptable and emits per-pin operating windows for synthesis
// (Section VI of the paper).
//
// The tuning method is a two-stage process:
//
//  1. Threshold extraction. Cells are clustered either per drive
//     strength or individually. Per cluster a maximum-equivalent sigma
//     LUT is built, converted to load/slew slope tables (eqs. 12-13),
//     thresholded by the slope bounds into a binary LUT, and the largest
//     all-ones rectangle anchored at the origin (Algorithm 1) yields the
//     sigma threshold — the sigma value at the rectangle corner furthest
//     from the origin. The sigma-ceiling method uses its bound as the
//     threshold directly.
//
//  2. LUT restriction. Per output pin, a maximum-equivalent LUT over all
//     of the pin's sigma tables is thresholded by the extracted sigma
//     threshold and the largest rectangle again picks the usable region;
//     its axis extents become the pin's min/max load and slew window.
package core

import (
	"fmt"
	"math"
	"sort"

	"stdcelltune/internal/lut"
	"stdcelltune/internal/restrict"
	"stdcelltune/internal/robust"
	"stdcelltune/internal/statlib"
)

// Method enumerates the paper's five tuning methods (Section VI.A).
type Method int

// The five tuning methods.
const (
	CellStrengthLoadSlope Method = iota // drive-strength clusters, load slope bound swept
	CellStrengthSlewSlope               // drive-strength clusters, slew slope bound swept
	CellLoadSlope                       // per-cell, load slope bound swept
	CellSlewSlope                       // per-cell, slew slope bound swept
	SigmaCeiling                        // per-cell, sigma ceiling as direct threshold
)

// Methods lists all five in paper order.
var Methods = []Method{
	CellStrengthLoadSlope, CellStrengthSlewSlope,
	CellLoadSlope, CellSlewSlope, SigmaCeiling,
}

func (m Method) String() string {
	switch m {
	case CellStrengthLoadSlope:
		return "cell-strength load slope"
	case CellStrengthSlewSlope:
		return "cell-strength slew slope"
	case CellLoadSlope:
		return "cell load slope"
	case CellSlewSlope:
		return "cell slew slope"
	case SigmaCeiling:
		return "sigma ceiling"
	}
	return "unknown"
}

// ByStrength reports whether the method clusters cells per drive
// strength.
func (m Method) ByStrength() bool {
	return m == CellStrengthLoadSlope || m == CellStrengthSlewSlope
}

// Default constraint parameters (paper Table 2, "Default" column).
const (
	DefaultLoadSlopeBound = 1.0
	DefaultSlewSlopeBound = 0.06
	DefaultSigmaCeiling   = 100.0
)

// Params is a full constraint-parameter assignment. The paper varies one
// parameter per method while the other two stay at their defaults.
type Params struct {
	Method         Method
	LoadSlopeBound float64
	SlewSlopeBound float64
	SigmaCeiling   float64
}

// ParamsFor builds the parameter set of a method with the swept bound
// set to the given value and the other two parameters at defaults
// (Table 2).
func ParamsFor(m Method, bound float64) Params {
	p := Params{
		Method:         m,
		LoadSlopeBound: DefaultLoadSlopeBound,
		SlewSlopeBound: DefaultSlewSlopeBound,
		SigmaCeiling:   DefaultSigmaCeiling,
	}
	switch m {
	case CellStrengthLoadSlope, CellLoadSlope:
		p.LoadSlopeBound = bound
	case CellStrengthSlewSlope, CellSlewSlope:
		p.SlewSlopeBound = bound
	case SigmaCeiling:
		p.SigmaCeiling = bound
	}
	return p
}

// SweepBounds returns the paper's Table 2 sweep values for a method.
func SweepBounds(m Method) []float64 {
	if m == SigmaCeiling {
		return []float64{0.04, 0.03, 0.02, 0.01}
	}
	return []float64{1, 0.05, 0.03, 0.01}
}

// ClusterReport records the threshold extraction of one cluster.
type ClusterReport struct {
	Name      string // drive strength ("drive 6") or cell name
	Cells     []string
	Rect      lut.Rect
	Threshold float64
}

// PinReport records the restriction of one cell output pin.
type PinReport struct {
	Cell, Pin string
	Rect      lut.Rect
	Window    restrict.Window
	// Retained is the fraction of LUT entries still usable.
	Retained float64
	Excluded bool // empty rectangle: the pin is unusable under this tuning
}

// Report summarizes a tuning run.
type Report struct {
	Params   Params
	Clusters []ClusterReport
	Pins     []PinReport

	// Quarantine lists cells the tuner skipped because their sigma
	// statistics were degenerate (non-finite values, mismatched table
	// structure). Skipped cells get no operating window — synthesis
	// treats them as unrestricted, the baseline behaviour.
	Quarantine *robust.Quarantine
}

// ExcludedPins counts pins whose restriction removed the entire LUT.
func (r *Report) ExcludedPins() int {
	n := 0
	for _, p := range r.Pins {
		if p.Excluded {
			n++
		}
	}
	return n
}

// Tuner runs tuning methods against a statistical library.
type Tuner struct {
	Stat *statlib.Library
}

// NewTuner wraps a statistical library.
func NewTuner(stat *statlib.Library) *Tuner { return &Tuner{Stat: stat} }

// Tune runs stage 1 and stage 2 and returns the per-pin windows plus the
// full report. Cells whose sigma statistics are degenerate are skipped
// into the report's Quarantine (left unrestricted) rather than failing
// the run; Tune errors hard only when the quarantined fraction exceeds
// robust.DefaultQuarantineLimit.
func (t *Tuner) Tune(p Params) (*restrict.Set, *Report, error) {
	rep := &Report{Params: p, Quarantine: robust.NewQuarantine("tuner")}
	rep.Quarantine.Total = len(t.Stat.CellOrder)
	for _, name := range t.Stat.CellOrder {
		if reason := degenerateStats(t.Stat.Cells[name]); reason != "" {
			rep.Quarantine.Add(name, reason)
		}
	}
	if err := rep.Quarantine.Check(robust.DefaultQuarantineLimit); err != nil {
		return nil, nil, err
	}
	thresholds, err := t.extractThresholds(p, rep)
	if err != nil {
		return nil, nil, err
	}
	set := restrict.NewSet(fmt.Sprintf("%s", p.Method))
	// Stage 2: per-pin LUT restriction against the cluster threshold.
	names := append([]string(nil), t.Stat.CellOrder...)
	sort.Strings(names)
	for _, name := range names {
		cell := t.Stat.Cells[name]
		if rep.Quarantine.Has(name) {
			continue
		}
		thr, ok := thresholds[t.clusterKey(p.Method, cell)]
		if !ok {
			continue
		}
		for _, pin := range cell.Pins {
			maxEq, err := pin.MaxSigmaTable()
			if err != nil {
				return nil, nil, fmt.Errorf("core: cell %s pin %s: %w", name, pin.Name, err)
			}
			bin := maxEq.ThresholdLE(thr)
			rect := bin.LargestRectangleFast()
			pr := PinReport{Cell: name, Pin: pin.Name, Rect: rect}
			if rect.Empty() {
				pr.Excluded = true
				// An empty window forbids every operating point.
				set.Put(name, pin.Name, restrict.Window{MaxLoad: -1, MaxSlew: -1})
			} else {
				w := windowFromRect(maxEq, rect)
				pr.Window = w
				nl, ns := maxEq.Dims()
				pr.Retained = float64(rect.Area()) / float64(nl*ns)
				set.Put(name, pin.Name, w)
			}
			rep.Pins = append(rep.Pins, pr)
		}
	}
	return set, rep, nil
}

// windowFromRect converts rectangle indices to axis bounds. A rectangle
// touching the origin leaves the minimum unconstrained (zero) since
// values below the first characterized point are edge-clamped anyway.
func windowFromRect(t *lut.Table, r lut.Rect) restrict.Window {
	w := restrict.Window{
		MaxLoad: t.Loads[r.L2],
		MaxSlew: t.Slews[r.S2],
	}
	if r.L1 > 0 {
		w.MinLoad = t.Loads[r.L1]
	}
	if r.S1 > 0 {
		w.MinSlew = t.Slews[r.S1]
	}
	return w
}

// clusterKey names the cluster a cell belongs to under the method.
func (t *Tuner) clusterKey(m Method, c *statlib.Cell) string {
	if m.ByStrength() {
		return fmt.Sprintf("drive %d", c.DriveStrength)
	}
	return c.Name
}

// degenerateStats checks one cell's sigma statistics for values the
// threshold extraction cannot digest. It returns an empty string for a
// usable cell, else the quarantine reason. (Libraries built by
// statlib.Build are pre-screened; this guards hand-written or parsed
// LVF libraries fed to the tuner directly.)
func degenerateStats(c *statlib.Cell) string {
	for _, pin := range c.Pins {
		for _, tb := range pin.SigmaTables() {
			if tb == nil {
				return fmt.Sprintf("pin %s missing sigma table", pin.Name)
			}
			if err := tb.Validate(); err != nil {
				return fmt.Sprintf("pin %s: %v", pin.Name, err)
			}
			for i := range tb.Values {
				for _, v := range tb.Values[i] {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						return fmt.Sprintf("pin %s sigma table non-finite", pin.Name)
					}
				}
			}
		}
		if _, err := pin.MaxSigmaTable(); err != nil {
			return fmt.Sprintf("pin %s: %v", pin.Name, err)
		}
	}
	return ""
}

// extractThresholds runs stage 1 for every cluster.
func (t *Tuner) extractThresholds(p Params, rep *Report) (map[string]float64, error) {
	// Group sigma tables per cluster.
	clusters := make(map[string][]*lut.Table)
	members := make(map[string][]string)
	names := append([]string(nil), t.Stat.CellOrder...)
	sort.Strings(names)
	for _, name := range names {
		cell := t.Stat.Cells[name]
		if rep.Quarantine.Has(name) {
			continue // degenerate sigma data must not poison the cluster
		}
		key := t.clusterKey(p.Method, cell)
		for _, pin := range cell.Pins {
			clusters[key] = append(clusters[key], pin.SigmaTables()...)
		}
		if len(cell.Pins) > 0 {
			members[key] = append(members[key], name)
		}
	}
	out := make(map[string]float64, len(clusters))
	keys := make([]string, 0, len(clusters))
	for k := range clusters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		tables := clusters[key]
		cr := ClusterReport{Name: key, Cells: members[key]}
		if p.Method == SigmaCeiling {
			// The ceiling is the threshold on its own (Section VI.B).
			cr.Threshold = p.SigmaCeiling
			out[key] = p.SigmaCeiling
			rep.Clusters = append(rep.Clusters, cr)
			continue
		}
		eq, err := maxEquivalentByIndex(tables)
		if err != nil {
			return nil, fmt.Errorf("core: cluster %s: %w", key, err)
		}
		// Slope tables per eqs. (12)-(13): per index step, first
		// row/column zero.
		binLoad := eq.IndexLoadSlope().Threshold(p.LoadSlopeBound)
		binSlew := eq.IndexSlewSlope().Threshold(p.SlewSlopeBound)
		bin := binLoad.And(binSlew)
		rect := bin.LargestRectangleFast()
		cr.Rect = rect
		if rect.Empty() {
			// No flat region at all: fall back to the smallest sigma in
			// the cluster so stage 2 excludes aggressively.
			cr.Threshold = eq.Min()
		} else {
			cr.Threshold = eq.ThresholdValue(rect)
		}
		out[key] = cr.Threshold
		rep.Clusters = append(rep.Clusters, cr)
	}
	return out, nil
}

// maxEquivalentByIndex folds tables entry-by-index (cells in a cluster
// have different absolute load axes but identical 7x7 index grids —
// exactly how the paper folds a whole cluster into one equivalent LUT).
// The axes of the first table are kept as the nominal coordinates.
func maxEquivalentByIndex(tables []*lut.Table) (*lut.Table, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("empty cluster")
	}
	ref := tables[0]
	nl, ns := ref.Dims()
	out := ref.Clone()
	for _, tb := range tables[1:] {
		l2, s2 := tb.Dims()
		if l2 != nl || s2 != ns {
			return nil, fmt.Errorf("cluster tables have different index dimensions %dx%d vs %dx%d", l2, s2, nl, ns)
		}
		for i := 0; i < nl; i++ {
			for j := 0; j < ns; j++ {
				out.Values[i][j] = math.Max(out.Values[i][j], tb.Values[i][j])
			}
		}
	}
	return out, nil
}
