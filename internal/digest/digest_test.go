package digest

import (
	"math"
	"testing"
)

func TestDomainSeparation(t *testing.T) {
	a := New("a")
	a.Str("k", "v")
	b := New("b")
	b.Str("k", "v")
	if a.Sum() == b.Sum() {
		t.Fatal("different domains produced the same digest")
	}
}

func TestFramingCollisionResistance(t *testing.T) {
	a := New("d")
	a.Str("x", "ab")
	a.Str("y", "c")
	b := New("d")
	b.Str("x", "a")
	b.Str("y", "bc")
	if a.Sum() == b.Sum() {
		t.Fatal("length prefix failed: shifted field split collided")
	}
}

func TestFloatExactness(t *testing.T) {
	// 0.1 and the nearest-but-one double must hash differently; decimal
	// %g formatting at low precision would conflate them.
	v := 0.1
	w := math.Nextafter(v, 1)
	a := New("d")
	a.Float("f", v)
	b := New("d")
	b.Float("f", w)
	if a.Sum() == b.Sum() {
		t.Fatal("adjacent doubles collided")
	}
}

func TestStability(t *testing.T) {
	// Golden value: if this changes, every cached artifact re-keys and
	// old caches silently go cold. Bump only with a schema version bump.
	c := New("stdcelltune-test/1")
	c.Str("corner", "TT1P1V25C")
	c.Int("instances", 50)
	c.Int("seed", 1)
	c.Float("threshold", 0.02)
	c.Bool("small", false)
	const want = "sha256:9d1008bc982af2b1ad84edc646b5083e83366f86686ae8e57595548cc67c5384"
	got := c.Sum()
	// Recompute from scratch to prove run-to-run stability.
	c2 := New("stdcelltune-test/1")
	c2.Str("corner", "TT1P1V25C")
	c2.Int("instances", 50)
	c2.Int("seed", 1)
	c2.Float("threshold", 0.02)
	c2.Bool("small", false)
	if got != c2.Sum() {
		t.Fatalf("digest not deterministic: %s vs %s", got, c2.Sum())
	}
	if got != want {
		t.Fatalf("digest drifted:\n got %s\nwant %s", got, want)
	}
}

func TestBytes(t *testing.T) {
	if Bytes(nil) != Bytes([]byte{}) {
		t.Fatal("nil and empty slice should hash identically")
	}
	if len(Bytes([]byte("x"))) != 64 {
		t.Fatal("want 64 hex chars")
	}
}
