// Package digest computes canonical, drift-free content hashes of
// request and configuration specs. The artifact cache of the service
// daemon, the run manifest, and the experiment flow all key on these
// digests, so two constraints drive the encoding:
//
//   - Field ordering is fixed by the call site, not by reflection or
//     map iteration: a spec's Digest method appends its fields in one
//     hard-coded order, so the hash can never depend on Go runtime
//     behaviour.
//   - Floats are encoded in hexadecimal ('x' format), which round-trips
//     the exact bit pattern. Decimal formatting ("%g", "%v") is banned
//     here: its shortest-representation rules have changed across Go
//     releases and would silently re-key every cached artifact.
//
// Every value is written as "key=<len>:<value>\n" with the value
// length-prefixed, so no concatenation of fields can collide with a
// different field split ("ab"+"c" vs "a"+"bc").
package digest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"strconv"
)

// Canonical accumulates key/value fields into a SHA-256 hash. The zero
// value is unusable; construct with New so every digest is domain
// separated.
type Canonical struct {
	h hash.Hash
}

// New starts a canonical digest for the given domain (e.g.
// "stdcelltune-api/1"). Different domains can never collide, even over
// identical field sequences.
func New(domain string) *Canonical {
	c := &Canonical{h: sha256.New()}
	c.write("domain", domain)
	return c
}

func (c *Canonical) write(key, val string) {
	// key=<len>:<value>\n — the length prefix makes the framing
	// unambiguous for values containing '=' or '\n'.
	fmt.Fprintf(c.h, "%s=%d:%s\n", key, len(val), val)
}

// Str appends a string field.
func (c *Canonical) Str(key, val string) { c.write(key, val) }

// Int appends an integer field.
func (c *Canonical) Int(key string, v int64) { c.write(key, strconv.FormatInt(v, 10)) }

// Bool appends a boolean field.
func (c *Canonical) Bool(key string, v bool) { c.write(key, strconv.FormatBool(v)) }

// Float appends a float64 field using the exact hexadecimal
// representation, immune to decimal-formatting drift. NaN and the
// infinities encode to their strconv spellings, which are stable.
func (c *Canonical) Float(key string, v float64) {
	c.write(key, strconv.FormatFloat(v, 'x', -1, 64))
}

// Sum finalizes the digest as "sha256:<hex>". The Canonical must not be
// written to afterwards.
func (c *Canonical) Sum() string {
	return "sha256:" + hex.EncodeToString(c.h.Sum(nil))
}

// Bytes hashes a raw artifact body, for content addressing of stored
// blobs (plain hex, no prefix — it names file content, not a spec).
func Bytes(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}
