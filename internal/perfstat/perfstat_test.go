package perfstat

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

var allocSink []byte

func TestCollectorAccumulates(t *testing.T) {
	c := New()
	for i := 0; i < 3; i++ {
		stop := c.Start("fold")
		allocSink = make([]byte, 1<<16) // escapes: charged to the phase
		stop()
	}
	c.Start("synth")()
	phases := c.Phases()
	if len(phases) != 2 {
		t.Fatalf("got %d phases want 2", len(phases))
	}
	if phases[0].Name != "fold" || phases[0].Count != 3 {
		t.Errorf("phase 0 = %+v, want fold x3 (first-start order)", phases[0])
	}
	if phases[0].WallNS <= 0 {
		t.Errorf("fold wall %d not positive", phases[0].WallNS)
	}
	if phases[0].Allocs <= 0 || phases[0].Bytes < 1<<16 {
		t.Errorf("fold allocs=%d bytes=%d implausibly low", phases[0].Allocs, phases[0].Bytes)
	}
	rep := c.Report()
	if !strings.Contains(rep, "fold") || !strings.Contains(rep, "synth") {
		t.Errorf("report missing phases:\n%s", rep)
	}
}

func TestCollectorConcurrentUse(t *testing.T) {
	c := New()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				c.Start("p")()
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if got := c.Phases()[0].Count; got != 400 {
		t.Errorf("count %d want 400", got)
	}
}

// Sequential windows must stay exact; windows that overlap another open
// window must be flagged AllocsApprox — ReadMemStats deltas are
// process-global, so overlapping windows absorb each other's
// allocations and their alloc columns are only an upper bound.
func TestCollectorOverlapMarksAllocsApprox(t *testing.T) {
	c := New()
	c.Start("alone")()

	stopOuter := c.Start("outer")
	stopInner := c.Start("inner")
	stopInner()
	stopOuter()

	// A window is also approximate when another opens before it closes,
	// even though it was alone at start.
	stopFirst := c.Start("first")
	c.Start("late")()
	stopFirst()

	approx := map[string]bool{}
	for _, p := range c.Phases() {
		approx[p.Name] = p.AllocsApprox
	}
	if approx["alone"] {
		t.Error("sequential window marked approximate")
	}
	for _, name := range []string{"outer", "inner", "first", "late"} {
		if !approx[name] {
			t.Errorf("%s overlapped but not marked approximate", name)
		}
	}
	rep := c.Report()
	if !strings.Contains(rep, "~ alloc columns approximate") {
		t.Errorf("report missing approximation footnote:\n%s", rep)
	}
}

// A double-closed window must not corrupt the open-window count. Before
// the closer was idempotent, the second call drove c.open negative, and
// every later overlap was silently reported exact — the regression this
// test pins: after a double close, a genuinely nested pair must still
// both be flagged, and the double-closed phase must count one run.
func TestCollectorDoubleCloseKeepsOverlapDetection(t *testing.T) {
	c := New()
	stop := c.Start("twice")
	stop()
	stop() // early-return path also closed it

	stopOuter := c.Start("outer")
	c.Start("inner")()
	stopOuter()

	approx := map[string]bool{}
	counts := map[string]int64{}
	for _, p := range c.Phases() {
		approx[p.Name] = p.AllocsApprox
		counts[p.Name] = p.Count
	}
	if counts["twice"] != 1 {
		t.Errorf("double-closed phase counted %d runs, want 1", counts["twice"])
	}
	if approx["twice"] {
		t.Error("sequential double-closed window marked approximate")
	}
	for _, name := range []string{"outer", "inner"} {
		if !approx[name] {
			t.Errorf("%s overlapped after a double close but was not marked approximate", name)
		}
	}
}

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: stdcelltune
BenchmarkFig3Bilinear-8         363550      3401 ns/op     640 B/op      14 allocs/op
--- BENCH: BenchmarkFig3Bilinear
    bench_test.go:51: noise
BenchmarkAnalyzeDesign-8          1893    668686 ns/op  420784 B/op     993 allocs/op
BenchmarkLUTBilinearLookup-8  85385416        13.89 ns/op       0 B/op       0 allocs/op
PASS
`
	got := ParseGoBench(out)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks want 3: %+v", len(got), got)
	}
	fig3 := got["BenchmarkFig3Bilinear"]
	if fig3.NsPerOp != 3401 || fig3.BytesPerOp != 640 || fig3.AllocsPerOp != 14 {
		t.Errorf("fig3 = %+v", fig3)
	}
	if math.Abs(got["BenchmarkLUTBilinearLookup"].NsPerOp-13.89) > 1e-9 {
		t.Errorf("lookup ns = %g", got["BenchmarkLUTBilinearLookup"].NsPerOp)
	}
}

// ParseGoBench must survive the ways real `go test -bench` output goes
// wrong: truncated lines, non-numeric ops columns, and runs without
// -benchmem (no B/op / allocs/op columns).
func TestParseGoBenchEdgeCases(t *testing.T) {
	out := `BenchmarkNoBenchmem-8   1000000       1234 ns/op
BenchmarkTruncated-8
BenchmarkShort-8   55
BenchmarkBadNumber-8   1000   garbage ns/op
Benchmark
BenchmarkNoDash   500   42.5 ns/op
not a benchmark line at all
BenchmarkTrailingPair-8   10   99 ns/op   7
`
	got := ParseGoBench(out)
	if r, ok := got["BenchmarkNoBenchmem"]; !ok || r.NsPerOp != 1234 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("no-benchmem line = %+v ok=%v, want ns only", r, ok)
	}
	if _, ok := got["BenchmarkTruncated"]; ok {
		t.Error("truncated line produced a result")
	}
	if _, ok := got["BenchmarkShort"]; ok {
		t.Error("line without ns/op produced a result")
	}
	if _, ok := got["BenchmarkBadNumber"]; ok {
		t.Error("non-numeric ns column produced a result")
	}
	if r, ok := got["BenchmarkNoDash"]; !ok || r.NsPerOp != 42.5 {
		t.Errorf("undashed name = %+v ok=%v", r, ok)
	}
	if r := got["BenchmarkTrailingPair"]; r.NsPerOp != 99 {
		t.Errorf("trailing unpaired field corrupted parse: %+v", r)
	}
	if len(got) != 3 {
		t.Errorf("parsed %d benchmarks want 3: %+v", len(got), got)
	}
}

func TestBenchFileMergeAndRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f, err := ReadBenchFile(path) // missing file -> empty
	if err != nil {
		t.Fatal(err)
	}
	f.Merge(map[string]BenchResult{"BenchmarkX": {NsPerOp: 200, AllocsPerOp: 10}}, true)
	f.Merge(map[string]BenchResult{"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 4}}, false)
	f.Phases = []Phase{{Name: "synth", Count: 2, WallNS: 5e8}}
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r := back.Benchmarks["BenchmarkX"]
	if r.BaselineNsPerOp != 200 || r.NsPerOp != 100 {
		t.Errorf("round trip lost numbers: %+v", r)
	}
	if math.Abs(r.Speedup-2) > 1e-12 {
		t.Errorf("speedup %g want 2", r.Speedup)
	}
	if len(back.Phases) != 1 || back.Phases[0].Name != "synth" {
		t.Errorf("phases lost: %+v", back.Phases)
	}
	if back.Schema != Schema {
		t.Errorf("schema %q", back.Schema)
	}
	if names := back.Names(); len(names) != 1 || names[0] != "BenchmarkX" {
		t.Errorf("names %v", names)
	}
}

// Merging current numbers before any baseline exists must not divide by
// zero or fabricate a speedup.
func TestMergeWithoutBaseline(t *testing.T) {
	f := NewBenchFile()
	f.Merge(map[string]BenchResult{"BenchmarkY": {NsPerOp: 50}}, false)
	if s := f.Benchmarks["BenchmarkY"].Speedup; s != 0 {
		t.Errorf("speedup %g without baseline", s)
	}
}
