// Package perfstat instruments the experiment pipeline with per-phase
// wall-time and allocation counters and defines the benchmark JSON
// schema (BENCH_PR3.json) the perf trajectory is tracked in. The
// collector is cheap enough to stay always-on in exp.Flow; the JSON
// file is the artifact later scaling PRs are judged against.
package perfstat

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase is one accumulated pipeline phase.
type Phase struct {
	Name   string `json:"name"`
	Count  int64  `json:"count"`   // times the phase ran
	WallNS int64  `json:"wall_ns"` // total wall time
	Allocs int64  `json:"allocs"`  // heap objects allocated during the phase
	Bytes  int64  `json:"bytes"`   // heap bytes allocated during the phase

	// AllocsApprox marks phases whose windows overlapped another open
	// window at least once. runtime.ReadMemStats deltas are
	// process-global, so concurrently open phases each absorb the
	// other's allocations — the wall column stays exact, the alloc
	// columns become an upper bound. Report() flags these rows.
	AllocsApprox bool `json:"allocs_approx,omitempty"`
}

// WallSeconds returns the accumulated wall time in seconds.
func (p Phase) WallSeconds() float64 { return float64(p.WallNS) / 1e9 }

// Collector accumulates named phases. It is safe for concurrent use;
// overlapping phases each get the full wall time of their own window.
// Allocation deltas are process-wide (runtime.ReadMemStats), so two
// windows open at the same time double-count each other's allocations;
// the collector detects exactly this and marks every window that ever
// overlapped another as AllocsApprox, so Report() and the bench JSON
// distinguish exact rows from upper bounds instead of silently mixing
// them.
type Collector struct {
	mu     sync.Mutex
	phases map[string]*Phase
	order  []string
	open   int   // windows currently open
	opens  int64 // windows ever opened (overlap detection epoch)
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{phases: make(map[string]*Phase)}
}

// Start opens a phase window and returns the function that closes it,
// folding the elapsed wall time and allocation deltas into the named
// phase:
//
//	defer c.Start("synth")()
//
// The closer is idempotent: calls after the first are no-ops. Without
// that guard a double-closed window (a `defer stop()` paired with an
// explicit stop() on an early-return path) would drive the open-window
// count negative and every later overlap would silently go unflagged —
// alloc columns reported exact when they are upper bounds.
func (c *Collector) Start(name string) func() {
	c.mu.Lock()
	overlapAtStart := c.open > 0
	c.open++
	c.opens++
	epoch := c.opens
	c.mu.Unlock()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	closed := false
	return func() {
		wall := time.Since(t0)
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		c.mu.Lock()
		defer c.mu.Unlock()
		if closed {
			return
		}
		closed = true
		c.open--
		// The window overlapped if another was already open when it
		// started, or any window opened before it closed.
		overlapped := overlapAtStart || c.opens != epoch
		p, ok := c.phases[name]
		if !ok {
			p = &Phase{Name: name}
			c.phases[name] = p
			c.order = append(c.order, name)
		}
		p.Count++
		p.WallNS += wall.Nanoseconds()
		p.Allocs += int64(m1.Mallocs - m0.Mallocs)
		p.Bytes += int64(m1.TotalAlloc - m0.TotalAlloc)
		if overlapped {
			p.AllocsApprox = true
		}
	}
}

// Phases returns a copy of the accumulated phases in first-start order.
func (c *Collector) Phases() []Phase {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Phase, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, *c.phases[name])
	}
	return out
}

// Report renders the phases as an aligned text table.
func (c *Collector) Report() string {
	phases := c.Phases()
	if len(phases) == 0 {
		return "perfstat: no phases recorded\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %7s %12s %14s %14s\n", "phase", "runs", "wall", "allocs", "bytes")
	anyApprox := false
	for _, p := range phases {
		mark := " "
		if p.AllocsApprox {
			mark, anyApprox = "~", true
		}
		fmt.Fprintf(&b, "%-16s %7d %11.3fs %13d%s %13d%s\n",
			p.Name, p.Count, p.WallSeconds(), p.Allocs, mark, p.Bytes, mark)
	}
	if anyApprox {
		b.WriteString("~ alloc columns approximate: windows overlapped concurrent phases (ReadMemStats deltas are process-global)\n")
	}
	return b.String()
}

// Schema identifies the benchmark JSON (BENCH_PR3.json) layout.
const Schema = "stdcelltune-bench/1"

// BenchResult is one benchmark's numbers, with the optional seed
// baseline it is compared against.
type BenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	// Baseline* hold the same metrics measured at the seed (pre-PR)
	// implementation; Speedup is baseline/current ns. Zero when no
	// baseline was recorded.
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineBytesPerOp  float64 `json:"baseline_bytes_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
}

// BenchFile is the serialized benchmark trajectory.
type BenchFile struct {
	Schema     string                 `json:"schema"`
	Note       string                 `json:"note,omitempty"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
	Phases     []Phase                `json:"phases,omitempty"`
}

// NewBenchFile returns an empty file with the current schema tag.
func NewBenchFile() *BenchFile {
	return &BenchFile{Schema: Schema, Benchmarks: make(map[string]BenchResult)}
}

// ReadBenchFile loads a benchmark file; a missing path returns an empty
// file so callers can merge unconditionally.
func ReadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewBenchFile(), nil
	}
	if err != nil {
		return nil, err
	}
	f := NewBenchFile()
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("perfstat: %s: %w", path, err)
	}
	if f.Benchmarks == nil {
		f.Benchmarks = make(map[string]BenchResult)
	}
	return f, nil
}

// Write serializes the file as stable, indented JSON (map keys sort, so
// regeneration is diff-friendly).
func (f *BenchFile) Write(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Merge folds parsed benchmark numbers into the file. With baseline
// true the numbers land in the Baseline* fields (preserving any current
// numbers); otherwise they become the current numbers and Speedup is
// recomputed against whatever baseline is already recorded.
func (f *BenchFile) Merge(results map[string]BenchResult, baseline bool) {
	for name, r := range results {
		cur := f.Benchmarks[name]
		if baseline {
			cur.BaselineNsPerOp = r.NsPerOp
			cur.BaselineBytesPerOp = r.BytesPerOp
			cur.BaselineAllocsPerOp = r.AllocsPerOp
		} else {
			cur.NsPerOp = r.NsPerOp
			cur.BytesPerOp = r.BytesPerOp
			cur.AllocsPerOp = r.AllocsPerOp
		}
		if cur.BaselineNsPerOp > 0 && cur.NsPerOp > 0 {
			cur.Speedup = cur.BaselineNsPerOp / cur.NsPerOp
		}
		f.Benchmarks[name] = cur
	}
}

// ParseGoBench extracts per-benchmark numbers from `go test -bench
// -benchmem` output. Lines that are not benchmark results are ignored;
// the trailing -N GOMAXPROCS suffix is stripped from the name. A
// benchmark that appears more than once keeps its last line.
func ParseGoBench(output string) map[string]BenchResult {
	out := make(map[string]BenchResult)
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		var r BenchResult
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := parseFloat(fields[i])
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp, ok = v, true
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		if ok {
			out[name] = r
		}
	}
	return out
}

func parseFloat(s string) (float64, error) {
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	return v, err
}

// Names returns the benchmark names in sorted order, for stable output.
func (f *BenchFile) Names() []string {
	names := make([]string, 0, len(f.Benchmarks))
	for n := range f.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
