package logic

import "fmt"

// State holds the DFF values of a network between cycles.
type State map[string]bool

// Simulator evaluates a network cycle by cycle; used to equivalence-check
// the mapped netlist against the source network.
type Simulator struct {
	net   *Network
	state State
	vals  []bool
}

// NewSimulator creates a simulator with all flip-flops initialized to
// zero.
func NewSimulator(n *Network) *Simulator {
	s := &Simulator{net: n, state: make(State), vals: make([]bool, len(n.Nodes))}
	for _, ff := range n.FFs {
		s.state[ff.Name] = false
	}
	return s
}

// SetState forces a flip-flop value.
func (s *Simulator) SetState(name string, v bool) { s.state[name] = v }

// State returns a copy of the current flip-flop state.
func (s *Simulator) State() State {
	cp := make(State, len(s.state))
	for k, v := range s.state {
		cp[k] = v
	}
	return cp
}

// Step evaluates one clock cycle: combinational logic settles from the
// given inputs and current state, outputs are sampled, then every DFF
// captures its D input. Missing input names default to false.
func (s *Simulator) Step(inputs map[string]bool) map[string]bool {
	for _, node := range s.net.Nodes {
		switch node.Op {
		case OpInput:
			s.vals[node.ID] = inputs[node.Name]
		case OpConst0:
			s.vals[node.ID] = false
		case OpConst1:
			s.vals[node.ID] = true
		case OpDFF:
			s.vals[node.ID] = s.state[node.Name]
		case OpInv:
			s.vals[node.ID] = !s.vals[node.Fanin[0].ID]
		case OpBuf:
			s.vals[node.ID] = s.vals[node.Fanin[0].ID]
		case OpAnd:
			s.vals[node.ID] = s.vals[node.Fanin[0].ID] && s.vals[node.Fanin[1].ID]
		case OpOr:
			s.vals[node.ID] = s.vals[node.Fanin[0].ID] || s.vals[node.Fanin[1].ID]
		case OpXor:
			s.vals[node.ID] = s.vals[node.Fanin[0].ID] != s.vals[node.Fanin[1].ID]
		case OpMux:
			if s.vals[node.Fanin[0].ID] {
				s.vals[node.ID] = s.vals[node.Fanin[2].ID]
			} else {
				s.vals[node.ID] = s.vals[node.Fanin[1].ID]
			}
		case OpSum3:
			a, b, c := s.vals[node.Fanin[0].ID], s.vals[node.Fanin[1].ID], s.vals[node.Fanin[2].ID]
			s.vals[node.ID] = a != b != c
		case OpMaj3:
			a, b, c := s.vals[node.Fanin[0].ID], s.vals[node.Fanin[1].ID], s.vals[node.Fanin[2].ID]
			s.vals[node.ID] = (a && b) || (b && c) || (a && c)
		default:
			panic(fmt.Sprintf("logic: cannot simulate op %v", node.Op))
		}
	}
	outs := make(map[string]bool, len(s.net.Outputs))
	for _, p := range s.net.Outputs {
		outs[p.Name] = s.vals[p.Node.ID]
	}
	for _, ff := range s.net.FFs {
		s.state[ff.Name] = s.vals[ff.Fanin[0].ID]
	}
	return outs
}

// Value returns the combinational value of a node after the latest Step.
func (s *Simulator) Value(node *Node) bool { return s.vals[node.ID] }
