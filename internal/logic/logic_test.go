package logic

import (
	"testing"
	"testing/quick"
)

func TestConstantFolding(t *testing.T) {
	n := New()
	a := n.Input("a")
	one := n.Const(true)
	zero := n.Const(false)
	if n.And(a, one) != a || n.And(one, a) != a {
		t.Error("AND identity fold")
	}
	if n.And(a, zero).Op != OpConst0 {
		t.Error("AND zero fold")
	}
	if n.Or(a, zero) != a || n.Or(zero, a) != a {
		t.Error("OR identity fold")
	}
	if n.Or(a, one).Op != OpConst1 {
		t.Error("OR one fold")
	}
	if n.Xor(a, zero) != a {
		t.Error("XOR zero fold")
	}
	if n.Xor(a, one).Op != OpInv {
		t.Error("XOR one should invert")
	}
	if n.Not(n.Not(a)) != a {
		t.Error("double inversion fold")
	}
	if n.Mux(one, a, zero) != zero || n.Mux(zero, a, one) != a {
		t.Error("MUX constant-select fold")
	}
	if n.Mux(n.Input("s"), a, a) != a {
		t.Error("MUX identical-branch fold")
	}
}

func TestValidate(t *testing.T) {
	n := New()
	a := n.Input("a")
	b := n.Input("b")
	x := n.And(a, b)
	n.Output("y", x)
	ff := n.DFF(x, "ff0")
	n.Output("q", ff)
	if err := n.Validate(); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	// Feedback through DFF is legal.
	n2 := New()
	d := n2.Input("d")
	ff2 := n2.DFF(d, "st")
	n2.SetFaninLater(ff2, n2.Xor(ff2, d))
	if err := n2.Validate(); err != nil {
		t.Fatalf("DFF feedback rejected: %v", err)
	}
	// Duplicate names are rejected.
	n3 := New()
	n3.Input("x")
	n3.Input("x")
	if err := n3.Validate(); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestSetFaninLaterPanicsOnGate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n := New()
	a := n.Input("a")
	g := n.Not(a)
	n.SetFaninLater(g, a)
}

func TestSimulateGates(t *testing.T) {
	n := New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	n.Output("and", n.And(a, b))
	n.Output("or", n.Or(a, b))
	n.Output("xor", n.Xor(a, b))
	n.Output("inv", n.Not(a))
	n.Output("mux", n.Mux(a, b, c))
	n.Output("sum", n.Sum3(a, b, c))
	n.Output("maj", n.Maj3(a, b, c))
	sim := NewSimulator(n)
	for v := 0; v < 8; v++ {
		av, bv, cv := v&1 != 0, v&2 != 0, v&4 != 0
		out := sim.Step(map[string]bool{"a": av, "b": bv, "c": cv})
		if out["and"] != (av && bv) || out["or"] != (av || bv) || out["xor"] != (av != bv) {
			t.Fatalf("basic gates wrong at %03b", v)
		}
		if out["inv"] != !av {
			t.Fatalf("inv wrong")
		}
		wantMux := bv
		if av {
			wantMux = cv
		}
		if out["mux"] != wantMux {
			t.Fatalf("mux wrong at %03b", v)
		}
		if out["sum"] != (av != bv != cv) {
			t.Fatalf("sum3 wrong at %03b", v)
		}
		if out["maj"] != ((av && bv) || (bv && cv) || (av && cv)) {
			t.Fatalf("maj3 wrong at %03b", v)
		}
	}
}

func TestSimulateStateMachine(t *testing.T) {
	// Toggle flip-flop: q' = q ^ en.
	n := New()
	en := n.Input("en")
	ff := n.DFF(en, "q") // placeholder fanin
	n.SetFaninLater(ff, n.Xor(ff, en))
	n.Output("q", ff)
	sim := NewSimulator(n)
	seq := []bool{true, true, false, true}
	want := []bool{false, true, false, false} // q before each toggle applies
	for i, e := range seq {
		out := sim.Step(map[string]bool{"en": e})
		if out["q"] != want[i] {
			t.Fatalf("cycle %d: q=%v want %v", i, out["q"], want[i])
		}
	}
	if !sim.State()["q"] {
		t.Error("final state should be true (3 toggles)")
	}
	sim.SetState("q", false)
	if sim.State()["q"] {
		t.Error("SetState failed")
	}
}

func wordVal(t *testing.T, sim *Simulator, w []*Node) uint64 {
	t.Helper()
	var v uint64
	for i, node := range w {
		if sim.Value(node) {
			v |= 1 << uint(i)
		}
	}
	return v
}

func inputsFor(name string, v uint64, width int, into map[string]bool) {
	for i := 0; i < width; i++ {
		into[keyBit(name, i)] = v&(1<<uint(i)) != 0
	}
}

func keyBit(name string, i int) string { return name + "[" + itoa(i) + "]" }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestArithmeticProperty drives the word-level builders with random
// operands and checks them against machine arithmetic.
func TestArithmeticProperty(t *testing.T) {
	const w = 16
	n := New()
	a := n.InputBus("a", w)
	b := n.InputBus("b", w)
	sum, _ := n.RippleAdd(a, b, n.Const(false))
	diff, _ := n.Subtract(a, b)
	inc, _ := n.Increment(a)
	prod := n.Multiply(a, b)
	shl := n.ShiftLeft(a, b[:4])
	shr := n.ShiftRight(a, b[:4])
	eq := n.Equal(a, b)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(n)
	f := func(av, bv uint16) bool {
		in := make(map[string]bool)
		inputsFor("a", uint64(av), w, in)
		inputsFor("b", uint64(bv), w, in)
		sim.Step(in)
		mask := uint64(1<<w) - 1
		if wordVal(t, sim, sum) != (uint64(av)+uint64(bv))&mask {
			t.Logf("add %d+%d", av, bv)
			return false
		}
		if wordVal(t, sim, diff) != (uint64(av)-uint64(bv))&mask {
			t.Logf("sub %d-%d", av, bv)
			return false
		}
		if wordVal(t, sim, inc) != (uint64(av)+1)&mask {
			return false
		}
		if wordVal(t, sim, prod) != uint64(av)*uint64(bv) {
			t.Logf("mul %d*%d got %d", av, bv, wordVal(t, sim, prod))
			return false
		}
		sh := uint(bv & 15)
		if wordVal(t, sim, shl) != (uint64(av)<<sh)&mask {
			t.Logf("shl %d<<%d", av, sh)
			return false
		}
		if wordVal(t, sim, shr) != uint64(av)>>sh {
			return false
		}
		if sim.Value(eq) != (av == bv) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitwiseWords(t *testing.T) {
	const w = 8
	n := New()
	a := n.InputBus("a", w)
	b := n.InputBus("b", w)
	andW := n.AndWord(a, b)
	orW := n.OrWord(a, b)
	xorW := n.XorWord(a, b)
	notW := n.NotWord(a)
	sel := n.Input("sel")
	muxW := n.MuxWord(sel, a, b)
	sim := NewSimulator(n)
	in := make(map[string]bool)
	inputsFor("a", 0xC5, w, in)
	inputsFor("b", 0x3A, w, in)
	in["sel"] = true
	sim.Step(in)
	if wordVal(t, sim, andW) != 0xC5&0x3A {
		t.Error("AndWord")
	}
	if wordVal(t, sim, orW) != 0xC5|0x3A {
		t.Error("OrWord")
	}
	if wordVal(t, sim, xorW) != 0xC5^0x3A {
		t.Error("XorWord")
	}
	if wordVal(t, sim, notW) != 0xFF&^0xC5 {
		t.Error("NotWord")
	}
	if wordVal(t, sim, muxW) != 0x3A {
		t.Error("MuxWord sel=1")
	}
}

func TestReduceAndDecode(t *testing.T) {
	const w = 5
	n := New()
	a := n.InputBus("a", w)
	ro, ra, rx := n.ReduceOr(a), n.ReduceAnd(a), n.ReduceXor(a)
	dec := n.Decode(a[:3], 8)
	sim := NewSimulator(n)
	for v := 0; v < 32; v++ {
		in := make(map[string]bool)
		inputsFor("a", uint64(v), w, in)
		sim.Step(in)
		if sim.Value(ro) != (v != 0) {
			t.Fatalf("ReduceOr(%05b)", v)
		}
		if sim.Value(ra) != (v == 31) {
			t.Fatalf("ReduceAnd(%05b)", v)
		}
		pop := 0
		for i := 0; i < w; i++ {
			if v&(1<<i) != 0 {
				pop++
			}
		}
		if sim.Value(rx) != (pop%2 == 1) {
			t.Fatalf("ReduceXor(%05b)", v)
		}
		for d := 0; d < 8; d++ {
			if sim.Value(dec[d]) != (v&7 == d) {
				t.Fatalf("Decode bit %d at %05b", d, v)
			}
		}
	}
}

func TestSelectAndMuxTree(t *testing.T) {
	n := New()
	sel := n.InputBus("sel", 2)
	words := make([][]*Node, 4)
	for i := range words {
		words[i] = n.InputBus("w"+itoa(i), 4)
	}
	onehot := n.Decode(sel, 4)
	selW := n.SelectWord(onehot, words)
	treeW := n.MuxTree(sel, words)
	sim := NewSimulator(n)
	vals := []uint64{0x3, 0x7, 0xC, 0x9}
	for s := 0; s < 4; s++ {
		in := make(map[string]bool)
		inputsFor("sel", uint64(s), 2, in)
		for i, v := range vals {
			inputsFor("w"+itoa(i), v, 4, in)
		}
		sim.Step(in)
		if got := wordVal(t, sim, selW); got != vals[s] {
			t.Errorf("SelectWord sel=%d got %x want %x", s, got, vals[s])
		}
		if got := wordVal(t, sim, treeW); got != vals[s] {
			t.Errorf("MuxTree sel=%d got %x want %x", s, got, vals[s])
		}
	}
}

func TestDFFWordAndCounts(t *testing.T) {
	n := New()
	d := n.InputBus("d", 4)
	q := n.DFFWord(d, "reg")
	n.Output("q0", q[0])
	if len(n.FFs) != 4 {
		t.Fatalf("FFs %d want 4", len(n.FFs))
	}
	if n.Find("reg[2]") == nil || n.Find("d[0]") == nil {
		t.Error("Find by name broken")
	}
	counts := n.Counts()
	if counts[OpDFF] != 4 || counts[OpInput] != 4 {
		t.Errorf("counts %v", counts)
	}
	if n.GateCount() != 0 {
		t.Errorf("GateCount %d want 0 (only FFs and inputs)", n.GateCount())
	}
}

func TestLevelsAndFanout(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	x := n.And(a, b)    // level 1
	y := n.Or(x, a)     // level 2
	z := n.Xor(y, x)    // level 3
	ff := n.DFF(z, "f") // level 0 output
	w := n.Not(ff)      // level 1
	n.Output("w", w)
	lv := n.Levels()
	if lv[x.ID] != 1 || lv[y.ID] != 2 || lv[z.ID] != 3 || lv[ff.ID] != 0 || lv[w.ID] != 1 {
		t.Errorf("levels %v", lv)
	}
	if n.MaxLevel() != 3 {
		t.Errorf("MaxLevel %d", n.MaxLevel())
	}
	fo := n.FanoutCounts()
	if fo[a.ID] != 2 { // x and y
		t.Errorf("fanout(a)=%d want 2", fo[a.ID])
	}
	if fo[x.ID] != 2 { // y and z
		t.Errorf("fanout(x)=%d want 2", fo[x.ID])
	}
	if fo[w.ID] != 1 { // primary output counts
		t.Errorf("fanout(w)=%d want 1", fo[w.ID])
	}
}

func TestOpStringAndArity(t *testing.T) {
	ops := []Op{OpInput, OpConst0, OpConst1, OpInv, OpBuf, OpAnd, OpOr, OpXor, OpMux, OpSum3, OpMaj3, OpDFF}
	for _, o := range ops {
		if o.String() == "?" {
			t.Errorf("op %d has no name", o)
		}
	}
	if Op(99).String() != "?" || Op(99).NumFanin() != -1 {
		t.Error("unknown op handling")
	}
	if OpMux.NumFanin() != 3 || OpAnd.NumFanin() != 2 || OpInv.NumFanin() != 1 || OpInput.NumFanin() != 0 {
		t.Error("arity table wrong")
	}
}

func TestSortedOutputNames(t *testing.T) {
	n := New()
	a := n.Input("a")
	n.Output("zz", a)
	n.Output("aa", a)
	got := n.SortedOutputNames()
	if got[0] != "aa" || got[1] != "zz" {
		t.Errorf("sorted outputs %v", got)
	}
}
