// Package logic models the technology-independent gate network that the
// RTL generator emits and the technology mapper (internal/synth) covers
// with standard cells. Nodes are simple logic primitives plus composite
// adder ops (sum/majority) that let the mapper recognize full/half adder
// cells, mirroring how commercial synthesis infers datapath cells.
package logic

import (
	"fmt"
	"sort"
)

// Op is the function of a node.
type Op int

// Node operations.
const (
	OpInput Op = iota // primary input (no fanin)
	OpConst0
	OpConst1
	OpInv  // 1 fanin
	OpBuf  // 1 fanin (explicit repeater, rarely emitted by RTL)
	OpAnd  // 2 fanin
	OpOr   // 2 fanin
	OpXor  // 2 fanin
	OpMux  // 3 fanin: sel, d0, d1 -> sel ? d1 : d0
	OpSum3 // 3 fanin: a ^ b ^ c (full-adder sum)
	OpMaj3 // 3 fanin: majority(a,b,c) (full-adder carry)
	OpDFF  // 1 fanin: d (state element, clocked by the single clock)
)

func (o Op) String() string {
	switch o {
	case OpInput:
		return "input"
	case OpConst0:
		return "const0"
	case OpConst1:
		return "const1"
	case OpInv:
		return "inv"
	case OpBuf:
		return "buf"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	case OpMux:
		return "mux"
	case OpSum3:
		return "sum3"
	case OpMaj3:
		return "maj3"
	case OpDFF:
		return "dff"
	}
	return "?"
}

// NumFanin returns the required fanin count of the op, or -1 if any.
func (o Op) NumFanin() int {
	switch o {
	case OpInput, OpConst0, OpConst1:
		return 0
	case OpInv, OpBuf, OpDFF:
		return 1
	case OpAnd, OpOr, OpXor:
		return 2
	case OpMux, OpSum3, OpMaj3:
		return 3
	}
	return -1
}

// Node is one vertex of the network.
type Node struct {
	ID    int
	Op    Op
	Name  string // set for inputs, DFFs and named outputs
	Fanin []*Node
}

// Network is a single-clock synchronous gate network.
type Network struct {
	Nodes   []*Node
	Inputs  []*Node
	Outputs []Port // named primary outputs
	FFs     []*Node

	byName map[string]*Node
}

// Port names a primary output and the node that drives it.
type Port struct {
	Name string
	Node *Node
}

// New creates an empty network.
func New() *Network {
	return &Network{byName: make(map[string]*Node)}
}

func (n *Network) add(op Op, name string, fanin ...*Node) *Node {
	node := &Node{ID: len(n.Nodes), Op: op, Name: name, Fanin: fanin}
	n.Nodes = append(n.Nodes, node)
	return node
}

// Input declares a named primary input.
func (n *Network) Input(name string) *Node {
	node := n.add(OpInput, name)
	n.Inputs = append(n.Inputs, node)
	n.byName[name] = node
	return node
}

// InputBus declares width named inputs "name[0]"..."name[width-1]".
func (n *Network) InputBus(name string, width int) []*Node {
	bus := make([]*Node, width)
	for i := range bus {
		bus[i] = n.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return bus
}

// Const returns a constant node.
func (n *Network) Const(v bool) *Node {
	if v {
		return n.add(OpConst1, "")
	}
	return n.add(OpConst0, "")
}

// Not returns !a, folding double inversion.
func (n *Network) Not(a *Node) *Node {
	if a.Op == OpInv {
		return a.Fanin[0]
	}
	if a.Op == OpConst0 {
		return n.Const(true)
	}
	if a.Op == OpConst1 {
		return n.Const(false)
	}
	return n.add(OpInv, "", a)
}

// And returns a & b with constant folding.
func (n *Network) And(a, b *Node) *Node {
	if a.Op == OpConst0 || b.Op == OpConst0 {
		return n.Const(false)
	}
	if a.Op == OpConst1 {
		return b
	}
	if b.Op == OpConst1 {
		return a
	}
	return n.add(OpAnd, "", a, b)
}

// Or returns a | b with constant folding.
func (n *Network) Or(a, b *Node) *Node {
	if a.Op == OpConst1 || b.Op == OpConst1 {
		return n.Const(true)
	}
	if a.Op == OpConst0 {
		return b
	}
	if b.Op == OpConst0 {
		return a
	}
	return n.add(OpOr, "", a, b)
}

// Xor returns a ^ b with constant folding.
func (n *Network) Xor(a, b *Node) *Node {
	if a.Op == OpConst0 {
		return b
	}
	if b.Op == OpConst0 {
		return a
	}
	if a.Op == OpConst1 {
		return n.Not(b)
	}
	if b.Op == OpConst1 {
		return n.Not(a)
	}
	return n.add(OpXor, "", a, b)
}

// Mux returns sel ? d1 : d0.
func (n *Network) Mux(sel, d0, d1 *Node) *Node {
	if sel.Op == OpConst0 {
		return d0
	}
	if sel.Op == OpConst1 {
		return d1
	}
	if d0 == d1 {
		return d0
	}
	return n.add(OpMux, "", sel, d0, d1)
}

// Sum3 returns a ^ b ^ c as a full-adder sum node.
func (n *Network) Sum3(a, b, c *Node) *Node { return n.add(OpSum3, "", a, b, c) }

// Maj3 returns majority(a, b, c) as a full-adder carry node.
func (n *Network) Maj3(a, b, c *Node) *Node { return n.add(OpMaj3, "", a, b, c) }

// DFF declares a named state element capturing d on the (implicit) clock.
func (n *Network) DFF(d *Node, name string) *Node {
	ff := n.add(OpDFF, name, d)
	n.FFs = append(n.FFs, ff)
	n.byName[name] = ff
	return ff
}

// SetFaninLater rewires the fanin of a DFF after creation, enabling
// feedback loops (state machines, counters). Only DFF fanin may be
// rewired — combinational cycles stay impossible by construction.
func (n *Network) SetFaninLater(ff, d *Node) {
	if ff.Op != OpDFF {
		panic("logic: SetFaninLater on non-DFF")
	}
	ff.Fanin = []*Node{d}
}

// Output marks node as the named primary output.
func (n *Network) Output(name string, node *Node) {
	n.Outputs = append(n.Outputs, Port{Name: name, Node: node})
}

// Find returns the named input or DFF node.
func (n *Network) Find(name string) *Node { return n.byName[name] }

// GateCount returns the number of combinational gate nodes (excludes
// inputs, constants and DFFs).
func (n *Network) GateCount() int {
	c := 0
	for _, node := range n.Nodes {
		switch node.Op {
		case OpInput, OpConst0, OpConst1, OpDFF:
		default:
			c++
		}
	}
	return c
}

// Counts returns the node count per op.
func (n *Network) Counts() map[Op]int {
	m := make(map[Op]int)
	for _, node := range n.Nodes {
		m[node.Op]++
	}
	return m
}

// Validate checks structural invariants: correct fanin arity, fanin IDs
// below node ID except through DFFs (combinational acyclicity), and
// unique names.
func (n *Network) Validate() error {
	names := make(map[string]bool)
	for _, node := range n.Nodes {
		if want := node.Op.NumFanin(); want >= 0 && len(node.Fanin) != want {
			return fmt.Errorf("logic: node %d op %s has %d fanin, want %d", node.ID, node.Op, len(node.Fanin), want)
		}
		if node.Name != "" {
			if names[node.Name] {
				return fmt.Errorf("logic: duplicate name %q", node.Name)
			}
			names[node.Name] = true
		}
		if node.Op != OpDFF {
			for _, f := range node.Fanin {
				if f.ID >= node.ID {
					return fmt.Errorf("logic: combinational node %d has forward fanin %d", node.ID, f.ID)
				}
			}
		}
	}
	for _, p := range n.Outputs {
		if p.Node == nil {
			return fmt.Errorf("logic: output %q has no driver", p.Name)
		}
	}
	return nil
}

// Levels returns the combinational depth of every node: inputs, constants
// and DFF outputs are level 0; every other node is 1 + max(fanin levels).
// DFF D-fanin contributes to the level of downstream logic only through
// the level of the logic feeding the DFF, not through the DFF itself.
func (n *Network) Levels() []int {
	lv := make([]int, len(n.Nodes))
	for _, node := range n.Nodes {
		switch node.Op {
		case OpInput, OpConst0, OpConst1, OpDFF:
			lv[node.ID] = 0
		default:
			m := 0
			for _, f := range node.Fanin {
				if lv[f.ID] > m {
					m = lv[f.ID]
				}
			}
			lv[node.ID] = m + 1
		}
	}
	return lv
}

// MaxLevel returns the deepest combinational level in the network.
func (n *Network) MaxLevel() int {
	m := 0
	for _, l := range n.Levels() {
		if l > m {
			m = l
		}
	}
	return m
}

// FanoutCounts returns, per node ID, how many fanin references point at
// the node (including DFF D pins and primary outputs).
func (n *Network) FanoutCounts() []int {
	fo := make([]int, len(n.Nodes))
	for _, node := range n.Nodes {
		for _, f := range node.Fanin {
			fo[f.ID]++
		}
	}
	for _, p := range n.Outputs {
		fo[p.Node.ID]++
	}
	return fo
}

// SortedOutputNames returns the output port names sorted (for stable
// reports).
func (n *Network) SortedOutputNames() []string {
	names := make([]string, len(n.Outputs))
	for i, p := range n.Outputs {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}
