package logic

import "fmt"

// Word-level construction helpers used by the RTL generator. A word is a
// little-endian slice of nodes: w[0] is the LSB.

// ConstWord returns a width-bit constant word.
func (n *Network) ConstWord(v uint64, width int) []*Node {
	w := make([]*Node, width)
	for i := range w {
		w[i] = n.Const(v&(1<<uint(i)) != 0)
	}
	return w
}

// NotWord inverts every bit.
func (n *Network) NotWord(a []*Node) []*Node {
	w := make([]*Node, len(a))
	for i := range w {
		w[i] = n.Not(a[i])
	}
	return w
}

// AndWord / OrWord / XorWord apply bitwise ops to equal-width words.
func (n *Network) AndWord(a, b []*Node) []*Node { return n.zipWord(a, b, n.And) }

// OrWord applies bitwise OR.
func (n *Network) OrWord(a, b []*Node) []*Node { return n.zipWord(a, b, n.Or) }

// XorWord applies bitwise XOR.
func (n *Network) XorWord(a, b []*Node) []*Node { return n.zipWord(a, b, n.Xor) }

func (n *Network) zipWord(a, b []*Node, f func(x, y *Node) *Node) []*Node {
	if len(a) != len(b) {
		panic(fmt.Sprintf("logic: word width mismatch %d vs %d", len(a), len(b)))
	}
	w := make([]*Node, len(a))
	for i := range w {
		w[i] = f(a[i], b[i])
	}
	return w
}

// MuxWord selects d1 when sel else d0, bitwise.
func (n *Network) MuxWord(sel *Node, d0, d1 []*Node) []*Node {
	if len(d0) != len(d1) {
		panic("logic: mux word width mismatch")
	}
	w := make([]*Node, len(d0))
	for i := range w {
		w[i] = n.Mux(sel, d0[i], d1[i])
	}
	return w
}

// RippleAdd builds a ripple-carry adder using full-adder sum/majority
// nodes (so the mapper can cover it with ADDF cells). Returns the sum
// word and carry out.
func (n *Network) RippleAdd(a, b []*Node, cin *Node) (sum []*Node, cout *Node) {
	if len(a) != len(b) {
		panic("logic: adder width mismatch")
	}
	sum = make([]*Node, len(a))
	c := cin
	for i := range a {
		sum[i] = n.Sum3(a[i], b[i], c)
		c = n.Maj3(a[i], b[i], c)
	}
	return sum, c
}

// Increment builds a +1 circuit out of half-adder pairs (XOR/AND), which
// the mapper covers with ADDH cells.
func (n *Network) Increment(a []*Node) (sum []*Node, cout *Node) {
	sum = make([]*Node, len(a))
	c := n.Const(true)
	for i := range a {
		sum[i] = n.Xor(a[i], c)
		c = n.And(a[i], c)
	}
	return sum, c
}

// Subtract computes a - b via two's complement (a + ~b + 1).
func (n *Network) Subtract(a, b []*Node) (diff []*Node, borrowN *Node) {
	return n.RippleAdd(a, n.NotWord(b), n.Const(true))
}

// ShiftLeft builds a logarithmic barrel shifter: amount is a word of
// selector bits (LSB shifts by 1, next by 2, ...). Vacated bits fill
// with zero.
func (n *Network) ShiftLeft(a []*Node, amount []*Node) []*Node {
	cur := a
	zero := n.Const(false)
	for s, sel := range amount {
		step := 1 << uint(s)
		if step >= len(a) {
			break
		}
		next := make([]*Node, len(cur))
		for i := range cur {
			var shifted *Node
			if i-step >= 0 {
				shifted = cur[i-step]
			} else {
				shifted = zero
			}
			next[i] = n.Mux(sel, cur[i], shifted)
		}
		cur = next
	}
	return cur
}

// ShiftRight is the logical right companion of ShiftLeft.
func (n *Network) ShiftRight(a []*Node, amount []*Node) []*Node {
	cur := a
	zero := n.Const(false)
	for s, sel := range amount {
		step := 1 << uint(s)
		if step >= len(a) {
			break
		}
		next := make([]*Node, len(cur))
		for i := range cur {
			var shifted *Node
			if i+step < len(cur) {
				shifted = cur[i+step]
			} else {
				shifted = zero
			}
			next[i] = n.Mux(sel, cur[i], shifted)
		}
		cur = next
	}
	return cur
}

// ReduceOr ORs all bits together in a balanced tree.
func (n *Network) ReduceOr(a []*Node) *Node { return n.reduce(a, n.Or) }

// ReduceAnd ANDs all bits together in a balanced tree.
func (n *Network) ReduceAnd(a []*Node) *Node { return n.reduce(a, n.And) }

// ReduceXor XORs all bits together in a balanced tree (parity).
func (n *Network) ReduceXor(a []*Node) *Node { return n.reduce(a, n.Xor) }

func (n *Network) reduce(a []*Node, f func(x, y *Node) *Node) *Node {
	if len(a) == 0 {
		panic("logic: reduce of empty word")
	}
	for len(a) > 1 {
		next := make([]*Node, 0, (len(a)+1)/2)
		for i := 0; i+1 < len(a); i += 2 {
			next = append(next, f(a[i], a[i+1]))
		}
		if len(a)%2 == 1 {
			next = append(next, a[len(a)-1])
		}
		a = next
	}
	return a[0]
}

// Equal compares two words for equality.
func (n *Network) Equal(a, b []*Node) *Node {
	return n.Not(n.ReduceOr(n.XorWord(a, b)))
}

// Decode builds a one-hot decoder: out[i] is true when the input word
// equals i. size may be less than 2^len(sel).
func (n *Network) Decode(sel []*Node, size int) []*Node {
	out := make([]*Node, size)
	for v := range out {
		term := n.Const(true)
		for i, s := range sel {
			bit := s
			if v&(1<<uint(i)) == 0 {
				bit = n.Not(s)
			}
			term = n.And(term, bit)
		}
		out[v] = term
	}
	return out
}

// SelectWord builds a one-hot read multiplexer: out = words[i] where
// onehot[i] is the (single) asserted select.
func (n *Network) SelectWord(onehot []*Node, words [][]*Node) []*Node {
	if len(onehot) != len(words) {
		panic("logic: select width mismatch")
	}
	width := len(words[0])
	out := make([]*Node, width)
	terms := make([]*Node, len(words))
	for bit := 0; bit < width; bit++ {
		for i := range words {
			terms[i] = n.And(onehot[i], words[i][bit])
		}
		out[bit] = n.ReduceOr(terms)
	}
	return out
}

// MuxTree selects among words by a binary select word (LSB first),
// building a balanced mux tree. len(words) must be a power of two and
// match 2^len(sel).
func (n *Network) MuxTree(sel []*Node, words [][]*Node) []*Node {
	if len(words) == 1 {
		return words[0]
	}
	if len(sel) == 0 || len(words)%2 != 0 {
		panic("logic: mux tree shape")
	}
	half := len(words) / 2
	next := make([][]*Node, half)
	for i := 0; i < half; i++ {
		next[i] = n.MuxWord(sel[0], words[2*i], words[2*i+1])
	}
	return n.MuxTree(sel[1:], next)
}

// DFFWord registers a word, creating named flip-flops "name[i]".
func (n *Network) DFFWord(d []*Node, name string) []*Node {
	q := make([]*Node, len(d))
	for i := range d {
		q[i] = n.DFF(d[i], fmt.Sprintf("%s[%d]", name, i))
	}
	return q
}

func tooTall(columns [][]*Node) bool {
	for _, c := range columns {
		if len(c) > 2 {
			return true
		}
	}
	return false
}

// Multiply builds an unsigned array multiplier: aw x bw partial products
// summed with half/full adder rows. The result has len(a)+len(b) bits.
// This is the biggest single datapath block of the synthetic MCU.
func (n *Network) Multiply(a, b []*Node) []*Node {
	width := len(a) + len(b)
	// columns[c] collects the partial product bits of weight c.
	columns := make([][]*Node, width)
	for i, ab := range a {
		for j, bb := range b {
			columns[i+j] = append(columns[i+j], n.And(ab, bb))
		}
	}
	// Wallace-style layered carry-save reduction: each round compresses
	// every column's bits in groups of three with full adders (depth one
	// per round), so the reduction tree is O(log height) deep instead of
	// the serial O(height) a per-column loop would give.
	for tooTall(columns) {
		next := make([][]*Node, width)
		for c := 0; c < width; c++ {
			bits := columns[c]
			i := 0
			for ; i+2 < len(bits); i += 3 {
				next[c] = append(next[c], n.Sum3(bits[i], bits[i+1], bits[i+2]))
				if c+1 < width {
					next[c+1] = append(next[c+1], n.Maj3(bits[i], bits[i+1], bits[i+2]))
				}
			}
			next[c] = append(next[c], bits[i:]...)
		}
		columns = next
	}
	// Final carry-propagate row.
	out := make([]*Node, width)
	carry := n.Const(false)
	for c := 0; c < width; c++ {
		switch len(columns[c]) {
		case 0:
			out[c] = carry
			carry = n.Const(false)
		case 1:
			out[c] = n.Xor(columns[c][0], carry)
			carry = n.And(columns[c][0], carry)
		default:
			out[c] = n.Sum3(columns[c][0], columns[c][1], carry)
			carry = n.Maj3(columns[c][0], columns[c][1], carry)
		}
	}
	return out
}
