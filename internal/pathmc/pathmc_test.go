package pathmc

import (
	"math"
	"testing"

	"stdcelltune/internal/netlist"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/stdcell"
)

var cat = stdcell.NewCatalogue(stdcell.Typical)

// chainPath builds FF -> n INV_2 -> FF and returns the capture path.
func chainPath(t *testing.T, n int) sta.Path {
	t.Helper()
	nl := netlist.New("chain", cat)
	in := nl.AddInput("si")
	ff1 := nl.AddInstance("launch", cat.Spec("DFQ_2"))
	nl.Connect(ff1, "D", in)
	cur := nl.AddNet("")
	nl.Drive(ff1, "Q", cur)
	for i := 0; i < n; i++ {
		inv := nl.AddInstance("", cat.Spec("INV_2"))
		nl.Connect(inv, "A", cur)
		next := nl.AddNet("")
		nl.Drive(inv, "Y", next)
		cur = next
	}
	ff2 := nl.AddInstance("capture", cat.Spec("DFQ_2"))
	nl.Connect(ff2, "D", cur)
	q := nl.AddNet("")
	nl.Drive(ff2, "Q", q)
	nl.MarkOutput("so", q)
	r, err := sta.Analyze(nl, sta.DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range r.Endpoints {
		if ep.Name == "capture" {
			return r.WorstPath(ep)
		}
	}
	t.Fatal("capture endpoint missing")
	return sta.Path{}
}

func TestSimulateDeterministic(t *testing.T) {
	p := chainPath(t, 5)
	cfg := DefaultConfig(3)
	a, err := Simulate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed diverged")
		}
	}
	if len(a.Samples) != 200 {
		t.Errorf("samples %d want 200 (paper)", len(a.Samples))
	}
}

func TestSimulateMeanMatchesSTA(t *testing.T) {
	p := chainPath(t, 8)
	cfg := DefaultConfig(5)
	r, err := Simulate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The MC mean must sit near the deterministic sum of step delays at
	// the same operating points (CellDelay is unskewed; STA arrivals use
	// the worst rise skew, so compare against the raw model sum).
	want := 0.0
	for _, s := range p.Steps {
		want += s.Inst.Spec.Delay(s.Load, s.Slew, stdcell.Typical)
	}
	if rel := math.Abs(r.Stats.Mu-want) / want; rel > 0.05 {
		t.Errorf("MC mean %g vs deterministic %g (rel %g)", r.Stats.Mu, want, rel)
	}
	if r.Stats.Sigma <= 0 {
		t.Error("no variation in MC")
	}
}

func TestNoVariationNoSpread(t *testing.T) {
	p := chainPath(t, 4)
	cfg := Config{N: 50, Seed: 1, Corner: stdcell.Typical}
	r, err := Simulate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Sigma > 1e-12 {
		t.Errorf("sigma %g with all variation disabled", r.Stats.Sigma)
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(sta.Path{}, DefaultConfig(1)); err == nil {
		t.Error("empty path accepted")
	}
	p := chainPath(t, 2)
	if _, err := Simulate(p, Config{N: 1, Seed: 1}); err == nil {
		t.Error("N=1 accepted")
	}
}

// TestCornerScaling reproduces Fig. 15: mean and sigma scale by the same
// factor when moving to fast/slow corners.
func TestCornerScaling(t *testing.T) {
	p := chainPath(t, 10)
	cfg := DefaultConfig(7)
	cfg.N = 400
	pts, err := CornerSweep(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("corners %d want 3", len(pts))
	}
	for _, pt := range pts {
		wantScale := pt.Corner.DelayScale()
		if math.Abs(pt.RelMean-wantScale) > 0.03 {
			t.Errorf("%v: rel mean %g want ~%g", pt.Corner, pt.RelMean, wantScale)
		}
		// The paper's claim: sigma scales like the mean.
		if math.Abs(pt.RelSigma-pt.RelMean) > 0.12*pt.RelMean {
			t.Errorf("%v: rel sigma %g diverges from rel mean %g", pt.Corner, pt.RelSigma, pt.RelMean)
		}
	}
}

// TestLocalShareDecaysWithDepth reproduces the Fig. 16 trend: the local
// contribution to total variation is large for short paths and decays as
// paths get deeper (global variation accumulates linearly, local only as
// sqrt(n)).
func TestLocalShareDecaysWithDepth(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.N = 500
	shares := make([]float64, 0, 3)
	for _, depth := range []int{2, 12, 40} {
		p := chainPath(t, depth)
		d, err := Decompose(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d.LocalShare <= 0 || d.LocalShare > 1.1 {
			t.Fatalf("depth %d: local share %g out of range", depth, d.LocalShare)
		}
		if d.LocalOnly.Sigma >= d.Total.Sigma {
			t.Errorf("depth %d: local-only sigma above total", depth)
		}
		shares = append(shares, d.LocalShare)
	}
	if !(shares[0] > shares[1] && shares[1] > shares[2]) {
		t.Errorf("local share not decaying with depth: %v", shares)
	}
	t.Logf("local shares short/medium/long: %.2f %.2f %.2f", shares[0], shares[1], shares[2])
}

func TestHistogram(t *testing.T) {
	p := chainPath(t, 6)
	r, err := Simulate(p, DefaultConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.Histogram(20)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != len(r.Samples) {
		t.Errorf("histogram N %d want %d", h.N, len(r.Samples))
	}
	if _, err := r.Histogram(0); err == nil {
		t.Error("zero-bin histogram must error")
	}
}

func TestPickPaths(t *testing.T) {
	paths := []sta.Path{chainPath(t, 2), chainPath(t, 10), chainPath(t, 30)}
	picked := PickPaths(paths, 3, 18, 57)
	if picked[0].Depth() != 3 { // 2 INVs + launch FF
		t.Errorf("short pick depth %d", picked[0].Depth())
	}
	if picked[1].Depth() != 11 {
		t.Errorf("medium pick depth %d", picked[1].Depth())
	}
	if picked[2].Depth() != 31 {
		t.Errorf("long pick depth %d", picked[2].Depth())
	}
}
