// Package pathmc Monte-Carlo simulates extracted timing paths under
// global and local variation across process corners — the validation
// experiments of Section VII.C (Figs. 15 and 16). Instead of SPICE, each
// sample evaluates the analytic cell model with a sampled global die
// factor and per-cell local mismatch.
package pathmc

import (
	"fmt"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

// Config controls a path Monte-Carlo run.
type Config struct {
	N           int // samples (the paper uses 200)
	Seed        int64
	Local       bool    // include local (per-cell) variation
	Global      bool    // include global (die-wide) variation
	GlobalSigma float64 // die factor sigma; default variation.DefaultGlobalSigma
	Corner      stdcell.Corner
}

// DefaultConfig mirrors the paper's 200-sample runs with both variation
// components in the typical corner.
func DefaultConfig(seed int64) Config {
	return Config{
		N: 200, Seed: seed,
		Local: true, Global: true,
		GlobalSigma: variation.DefaultGlobalSigma,
		Corner:      stdcell.Typical,
	}
}

// Result is one Monte-Carlo run over one path.
type Result struct {
	Cfg     Config
	Samples []float64
	Stats   dist.Normal
}

// Histogram bins the samples (Figs. 15/16 are histograms).
func (r *Result) Histogram(bins int) (*dist.Histogram, error) {
	return dist.HistogramOf(r.Samples, bins)
}

// Simulate runs the Monte Carlo over one extracted path. Each sample
// draws one global die factor (shared by every cell — global variation
// is fully correlated across a die) and an independent mismatch sample
// per path cell, then sums the per-step delays at the operating points
// frozen from the STA solution.
func Simulate(path sta.Path, cfg Config) (*Result, error) {
	if len(path.Steps) == 0 {
		return nil, fmt.Errorf("pathmc: empty path")
	}
	if cfg.N < 2 {
		return nil, fmt.Errorf("pathmc: need at least 2 samples")
	}
	sm := variation.NewSampler(cfg.Seed)
	samples := make([]float64, cfg.N)
	for i := 0; i < cfg.N; i++ {
		g := 1.0
		if cfg.Global {
			sigma := cfg.GlobalSigma
			if sigma == 0 {
				sigma = variation.DefaultGlobalSigma
			}
			g = sm.Global(i, sigma)
		}
		total := 0.0
		for si, step := range path.Steps {
			cs := variation.CellSample{}
			if cfg.Local {
				// Key by instance name and position so every cell on the
				// path varies independently.
				cs = sm.Cell(i, fmt.Sprintf("%s#%d", step.Inst.Name, si))
			}
			total += variation.CellDelay(step.Inst.Spec, cs, g, step.Load, step.Slew, cfg.Corner)
		}
		samples[i] = total
	}
	return &Result{Cfg: cfg, Samples: samples, Stats: dist.Estimate(samples)}, nil
}

// CornerPoint is one corner's statistics relative to typical (Fig. 15
// annotations).
type CornerPoint struct {
	Corner   stdcell.Corner
	Stats    dist.Normal
	RelMean  float64 // mean / typical mean
	RelSigma float64 // sigma / typical sigma
}

// CornerSweep simulates the path in fast/typical/slow corners and
// reports mean and sigma relative to typical — the paper's finding is
// that both scale by (about) the same factor.
func CornerSweep(path sta.Path, cfg Config) ([]CornerPoint, error) {
	base := cfg
	base.Corner = stdcell.Typical
	typ, err := Simulate(path, base)
	if err != nil {
		return nil, err
	}
	var out []CornerPoint
	for _, c := range stdcell.AllCorners {
		cc := cfg
		cc.Corner = c
		r, err := Simulate(path, cc)
		if err != nil {
			return nil, err
		}
		out = append(out, CornerPoint{
			Corner:   c,
			Stats:    r.Stats,
			RelMean:  r.Stats.Mu / typ.Stats.Mu,
			RelSigma: r.Stats.Sigma / typ.Stats.Sigma,
		})
	}
	return out, nil
}

// Decomposition splits the total variation of a path into its local
// share (Fig. 16): the same path is simulated with global+local and with
// local only, and the contribution is sigma_local / sigma_total.
type Decomposition struct {
	Total     dist.Normal // global + local
	LocalOnly dist.Normal
	// LocalShare = sigma(local) / sigma(global+local).
	LocalShare float64
}

// Decompose runs both simulations on the path.
func Decompose(path sta.Path, cfg Config) (*Decomposition, error) {
	both := cfg
	both.Local, both.Global = true, true
	total, err := Simulate(path, both)
	if err != nil {
		return nil, err
	}
	loc := cfg
	loc.Local, loc.Global = true, false
	localOnly, err := Simulate(path, loc)
	if err != nil {
		return nil, err
	}
	d := &Decomposition{Total: total.Stats, LocalOnly: localOnly.Stats}
	if total.Stats.Sigma > 0 {
		d.LocalShare = localOnly.Stats.Sigma / total.Stats.Sigma
	}
	return d, nil
}

// PickPaths selects a short, medium and long path from the worst-path
// population, approximating the paper's 3/18/57-cell extraction. It
// returns the paths closest to the requested depths.
func PickPaths(paths []sta.Path, wantDepths ...int) []sta.Path {
	out := make([]sta.Path, 0, len(wantDepths))
	for _, want := range wantDepths {
		best := paths[0]
		for _, p := range paths[1:] {
			if abs(p.Depth()-want) < abs(best.Depth()-want) {
				best = p
			}
		}
		out = append(out, best)
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
