// Package sdf writes Standard Delay Format (SDF 2.1 subset) annotation
// for a timed netlist: one CELL entry per instance with IOPATH delays at
// the operating points the STA solved — the artifact a downstream
// gate-level simulator consumes. The optional third triple value carries
// the local-variation sigma-derated delay (mu + 3*sigma) when a
// statistical library is supplied, so the annotation reflects the
// paper's variation model.
package sdf

import (
	"fmt"
	"io"
	"math"
	"strings"

	"stdcelltune/internal/netlist"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/statlib"
)

// Options controls annotation.
type Options struct {
	DesignName string
	// Stat, when non-nil, fills the max corner of each triple with
	// mu + 3*sigma from the statistical library.
	Stat *statlib.Library
}

// Write emits the SDF file for the netlist using the STA solution's
// loads and slews.
func Write(w io.Writer, nl *netlist.Netlist, r *sta.Result, opts Options) error {
	name := opts.DesignName
	if name == "" {
		name = nl.Name
	}
	var b strings.Builder
	b.WriteString("(DELAYFILE\n")
	fmt.Fprintf(&b, "  (SDFVERSION \"2.1\")\n  (DESIGN \"%s\")\n", name)
	b.WriteString("  (TIMESCALE 1ns)\n")
	for _, inst := range nl.Instances {
		entries := iopaths(nl, r, inst, opts.Stat)
		if len(entries) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  (CELL (CELLTYPE \"%s\") (INSTANCE %s)\n    (DELAY (ABSOLUTE\n",
			inst.Spec.Name, sdfName(inst.Name))
		for _, e := range entries {
			b.WriteString("      " + e + "\n")
		}
		b.WriteString("    ))\n  )\n")
	}
	b.WriteString(")\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// iopaths builds the IOPATH lines of one instance.
func iopaths(nl *netlist.Netlist, r *sta.Result, inst *netlist.Instance, stat *statlib.Library) []string {
	cell := nl.Cat.Lib.Cell(inst.Spec.Name)
	if cell == nil {
		return nil
	}
	var out []string
	for outPin, outNet := range inst.Out {
		if outNet.ID >= len(r.Load) {
			continue
		}
		load := r.Load[outNet.ID]
		p := cell.Pin(outPin)
		if p == nil {
			continue
		}
		for _, arc := range p.Timing {
			slew := r.Cfg.InputSlew
			if in := inst.In[arc.RelatedPin]; in != nil && in.ID < len(r.Slew) {
				slew = r.Slew[in.ID]
			}
			rise := arc.CellRise.Lookup(load, slew)
			fall := arc.CellFall.Lookup(load, slew)
			riseMax, fallMax := rise, fall
			if stat != nil {
				if sc := stat.Cell(inst.Spec.Name); sc != nil {
					if sp := sc.Pin(outPin); sp != nil {
						if sa := sp.Arc(arc.RelatedPin); sa != nil {
							riseMax = rise + 3*sa.SigmaRise.Lookup(load, slew)
							fallMax = fall + 3*sa.SigmaFall.Lookup(load, slew)
						}
					}
				}
			}
			from := arc.RelatedPin
			if inst.Spec.IsSequential() {
				from = "(posedge " + arc.RelatedPin + ")"
			}
			out = append(out, fmt.Sprintf("(IOPATH %s %s (%s) (%s))",
				from, outPin, triple(rise, rise, riseMax), triple(fall, fall, fallMax)))
		}
	}
	return out
}

// triple renders min:typ:max with sane precision.
func triple(min, typ, max float64) string {
	return fmt.Sprintf("%s:%s:%s", num(min), num(typ), num(max))
}

func num(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "0.000"
	}
	return fmt.Sprintf("%.4f", v)
}

// sdfName escapes instance names for SDF (bus brackets etc.).
func sdfName(name string) string {
	if strings.ContainsAny(name, "[]$ ") {
		r := strings.NewReplacer("[", `\[`, "]", `\]`)
		return r.Replace(name)
	}
	return name
}
