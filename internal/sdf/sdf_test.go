package sdf

import (
	"strings"
	"testing"

	"stdcelltune/internal/netlist"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

var cat = stdcell.NewCatalogue(stdcell.Typical)

func smallDesign(t *testing.T) (*netlist.Netlist, *sta.Result) {
	t.Helper()
	nl := netlist.New("tiny", cat)
	in := nl.AddInput("a")
	ff := nl.AddInstance("u_ff", cat.Spec("DFQ_1"))
	nl.Connect(ff, "D", in)
	q := nl.AddNet("")
	nl.Drive(ff, "Q", q)
	inv := nl.AddInstance("u_inv", cat.Spec("INV_2"))
	nl.Connect(inv, "A", q)
	y := nl.AddNet("")
	nl.Drive(inv, "Y", y)
	nl.MarkOutput("z", y)
	r, err := sta.Analyze(nl, sta.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	return nl, r
}

func TestWriteStructure(t *testing.T) {
	nl, r := smallDesign(t)
	var sb strings.Builder
	if err := Write(&sb, nl, r, Options{DesignName: "tiny_top"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"(DELAYFILE",
		`(SDFVERSION "2.1")`,
		`(DESIGN "tiny_top")`,
		"(TIMESCALE 1ns)",
		`(CELLTYPE "DFQ_1")`,
		"(INSTANCE u_ff)",
		"(IOPATH (posedge CK) Q",
		`(CELLTYPE "INV_2")`,
		"(IOPATH A Y",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SDF missing %q:\n%s", want, out)
		}
	}
	// Balanced parentheses.
	if strings.Count(out, "(") != strings.Count(out, ")") {
		t.Error("unbalanced parentheses")
	}
}

func TestTriplesMatchSTA(t *testing.T) {
	nl, r := smallDesign(t)
	var sb strings.Builder
	if err := Write(&sb, nl, r, Options{}); err != nil {
		t.Fatal(err)
	}
	// The INV arc delay at its operating point must appear in the file.
	inv := nl.Instances[1]
	y := inv.Out["Y"]
	arc := cat.Lib.Cell("INV_2").Pin("Y").Timing[0]
	q := inv.In["A"]
	rise := arc.CellRise.Lookup(r.Load[y.ID], r.Slew[q.ID])
	want := num(rise)
	if !strings.Contains(sb.String(), want) {
		t.Errorf("SDF missing interpolated delay %s:\n%s", want, sb.String())
	}
}

func TestSigmaDeratedMaxCorner(t *testing.T) {
	nl, r := smallDesign(t)
	libs := variation.Instances(cat, variation.Config{N: 10, Seed: 3})
	stat, err := statlib.Build("stat", libs)
	if err != nil {
		t.Fatal(err)
	}
	var plain, derated strings.Builder
	if err := Write(&plain, nl, r, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Write(&derated, nl, r, Options{Stat: stat}); err != nil {
		t.Fatal(err)
	}
	if plain.String() == derated.String() {
		t.Error("statistical derating had no effect")
	}
	// Max corner >= typ corner on every triple in the derated file.
	for _, line := range strings.Split(derated.String(), "\n") {
		if !strings.Contains(line, "IOPATH") {
			continue
		}
		for _, tok := range strings.Split(line, "(") {
			if !strings.Contains(tok, ":") {
				continue
			}
			parts := strings.Split(strings.TrimRight(strings.TrimSpace(tok), ") "), ":")
			if len(parts) != 3 {
				continue
			}
			if parts[2] < parts[1] { // same width fixed-point strings compare lexically
				t.Errorf("max below typ in %q", line)
			}
		}
	}
}

func TestNameEscaping(t *testing.T) {
	if sdfName("u_rf_r1[3]") != `u_rf_r1\[3\]` {
		t.Errorf("escape: %q", sdfName("u_rf_r1[3]"))
	}
	if sdfName("plain") != "plain" {
		t.Error("plain name mangled")
	}
}
