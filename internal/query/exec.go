package query

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SchemaResult is the wire schema of a query result document.
const SchemaResult = "stdcelltune-query-result/1"

// Result is the full (unpaginated) execution outcome of a table query.
// Rows hold values in Columns order. The document marshals
// deterministically: fixed column order, stable row order.
type Result struct {
	Schema  string  `json:"schema"`
	Library string  `json:"library"`
	From    string  `json:"from"`
	Columns []Col   `json:"columns"`
	Rows    [][]any `json:"rows"`
	Total   int     `json:"total_rows"`
}

// Col is one result column header.
type Col struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Execute runs a normalized table query to completion. What-if queries
// are dispatched by the caller (see Substitute/Widen) — Execute rejects
// them so the two paths can't be confused.
func (s *Store) Execute(q *Query) (*Result, error) {
	if q.WhatIf != nil {
		return nil, fmt.Errorf("%w: what_if query passed to Execute", ErrBadQuery)
	}
	base, ok := s.Tables[q.From]
	if !ok {
		return nil, fmt.Errorf("%w: unknown table %q (have %s)", ErrBadQuery, q.From, strings.Join(s.TableNames(), ", "))
	}
	var joinT *Table
	if q.Join != nil {
		joinT, ok = s.Tables[q.Join.Table]
		if !ok {
			return nil, fmt.Errorf("%w: unknown join table %q", ErrBadQuery, q.Join.Table)
		}
	}

	// Filter: predicates over base columns run before the join;
	// predicates naming joined columns run after.
	var basePreds, joinPreds []compiledPred
	for i := range q.Where {
		p := &q.Where[i]
		ref, err := resolveCol(p.Col, base, joinT)
		if err != nil {
			return nil, err
		}
		cp, err := compilePred(p, ref)
		if err != nil {
			return nil, err
		}
		if ref.joined {
			joinPreds = append(joinPreds, cp)
		} else {
			basePreds = append(basePreds, cp)
		}
	}

	rows := make([]rowIdx, 0, base.Rows())
	for i := 0; i < base.Rows(); i++ {
		ok := true
		for _, p := range basePreds {
			if !p.eval(i) {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, rowIdx{base: i, join: -1})
		}
	}

	if joinT != nil {
		rows, ok = s.execJoin(q.Join, base, joinT, rows)
		if !ok {
			return nil, fmt.Errorf("%w: join columns %q/%q are incompatible", ErrBadQuery, q.Join.LeftCol, q.Join.RightCol)
		}
		if len(joinPreds) > 0 {
			kept := rows[:0]
			for _, r := range rows {
				ok := true
				for _, p := range joinPreds {
					if !p.eval(r.join) {
						ok = false
						break
					}
				}
				if ok {
					kept = append(kept, r)
				}
			}
			rows = kept
		}
	} else if len(joinPreds) > 0 {
		// resolveCol only marks joined=true when a join table exists, so
		// this is unreachable; keep the guard for safety.
		return nil, fmt.Errorf("%w: predicate on joined column without join", ErrBadQuery)
	}

	if len(q.Aggregate) > 0 {
		return s.execAggregate(q, base, joinT, rows)
	}
	return s.execSelect(q, base, joinT, rows)
}

// rowIdx addresses one logical result row: an index into the base
// table, plus (post-join) an index into the joined table.
type rowIdx struct {
	base, join int
}

// execJoin inner-joins the filtered base rows against the join table by
// building a hash index over the right column. One base row may match
// many join rows; matches append in join-table row order, keeping the
// result deterministic.
func (s *Store) execJoin(j *Join, base, joinT *Table, rows []rowIdx) ([]rowIdx, bool) {
	left := base.Col(j.LeftCol)
	right := joinT.Col(j.RightCol)
	if left == nil || right == nil {
		return nil, false
	}
	// Join keys compare via a canonical string form so int 4 matches
	// int 4 across tables; string↔number joins simply never match.
	if (left.Type == TString) != (right.Type == TString) {
		return nil, false
	}
	index := make(map[string][]int, joinT.Rows())
	for i := 0; i < joinT.Rows(); i++ {
		k := joinKey(right, i)
		index[k] = append(index[k], i)
	}
	out := make([]rowIdx, 0, len(rows))
	for _, r := range rows {
		for _, ji := range index[joinKey(left, r.base)] {
			out = append(out, rowIdx{base: r.base, join: ji})
		}
	}
	return out, true
}

func joinKey(c *Column, i int) string {
	switch c.Type {
	case TString:
		return c.S[i]
	case TInt:
		return strconv.FormatInt(c.I[i], 10)
	case TFloat:
		return strconv.FormatFloat(c.F[i], 'g', -1, 64)
	default:
		return strconv.FormatBool(c.B[i])
	}
}

// compiledPred is a predicate specialized against its column.
type compiledPred struct {
	ref  colRef
	op   string
	str  string
	num  float64
	b    bool
	set  map[string]bool // for "in" over strings
	nums []float64       // for "in" over numbers
}

func compilePred(p *Pred, ref colRef) (compiledPred, error) {
	cp := compiledPred{ref: ref, op: p.Op}
	var v any
	if err := json.Unmarshal(p.Value, &v); err != nil {
		return cp, fmt.Errorf("%w: predicate value for %q: %v", ErrBadQuery, p.Col, err)
	}
	switch p.Op {
	case "in":
		list, ok := v.([]any)
		if !ok {
			return cp, fmt.Errorf("%w: op \"in\" needs an array value", ErrBadQuery)
		}
		if ref.col.Type == TString {
			cp.set = make(map[string]bool, len(list))
			for _, e := range list {
				s, ok := e.(string)
				if !ok {
					return cp, fmt.Errorf("%w: op \"in\" over string column %q needs string elements", ErrBadQuery, p.Col)
				}
				cp.set[s] = true
			}
		} else {
			for _, e := range list {
				n, ok := e.(float64)
				if !ok {
					return cp, fmt.Errorf("%w: op \"in\" over numeric column %q needs number elements", ErrBadQuery, p.Col)
				}
				cp.nums = append(cp.nums, n)
			}
		}
		return cp, nil
	case "contains", "prefix":
		if ref.col.Type != TString {
			return cp, fmt.Errorf("%w: op %q requires a string column, %q is %s", ErrBadQuery, p.Op, p.Col, ref.col.Type)
		}
	}
	switch val := v.(type) {
	case string:
		if ref.col.Type != TString {
			return cp, fmt.Errorf("%w: string value against %s column %q", ErrBadQuery, ref.col.Type, p.Col)
		}
		cp.str = val
	case float64:
		switch ref.col.Type {
		case TInt, TFloat:
			cp.num = val
		default:
			return cp, fmt.Errorf("%w: number value against %s column %q", ErrBadQuery, ref.col.Type, p.Col)
		}
	case bool:
		if ref.col.Type != TBool {
			return cp, fmt.Errorf("%w: bool value against %s column %q", ErrBadQuery, ref.col.Type, p.Col)
		}
		if p.Op != "eq" && p.Op != "ne" {
			return cp, fmt.Errorf("%w: op %q not supported on bool column %q", ErrBadQuery, p.Op, p.Col)
		}
		cp.b = val
	default:
		return cp, fmt.Errorf("%w: unsupported predicate value type for %q", ErrBadQuery, p.Col)
	}
	return cp, nil
}

func (p *compiledPred) eval(i int) bool {
	c := p.ref.col
	switch c.Type {
	case TString:
		s := c.S[i]
		switch p.op {
		case "eq":
			return s == p.str
		case "ne":
			return s != p.str
		case "lt":
			return s < p.str
		case "le":
			return s <= p.str
		case "gt":
			return s > p.str
		case "ge":
			return s >= p.str
		case "in":
			return p.set[s]
		case "contains":
			return strings.Contains(s, p.str)
		case "prefix":
			return strings.HasPrefix(s, p.str)
		}
	case TBool:
		b := c.B[i]
		if p.op == "eq" {
			return b == p.b
		}
		return b != p.b
	default:
		n, _ := c.number(i)
		switch p.op {
		case "eq":
			return n == p.num
		case "ne":
			return n != p.num
		case "lt":
			return n < p.num
		case "le":
			return n <= p.num
		case "gt":
			return n > p.num
		case "ge":
			return n >= p.num
		case "in":
			for _, v := range p.nums {
				if n == v {
					return true
				}
			}
			return false
		}
	}
	return false
}

// execSelect projects the surviving rows, applies order_by, and renders
// the result document.
func (s *Store) execSelect(q *Query, base, joinT *Table, rows []rowIdx) (*Result, error) {
	names := q.Select
	if len(names) == 0 {
		names = base.Columns()
		if joinT != nil {
			for _, c := range joinT.Columns() {
				names = append(names, joinT.Name+"."+c)
			}
		}
	}
	refs := make([]colRef, len(names))
	cols := make([]Col, len(names))
	for i, n := range names {
		ref, err := resolveCol(n, base, joinT)
		if err != nil {
			return nil, err
		}
		refs[i] = ref
		cols[i] = Col{Name: n, Type: ref.col.Type.String()}
	}
	if err := s.orderRows(q, base, joinT, rows); err != nil {
		return nil, err
	}
	out := make([][]any, len(rows))
	for ri, r := range rows {
		row := make([]any, len(refs))
		for ci, ref := range refs {
			idx := r.base
			if ref.joined {
				idx = r.join
			}
			row[ci] = ref.col.value(idx)
		}
		out[ri] = row
	}
	return &Result{
		Schema:  SchemaResult,
		Library: s.Library,
		From:    q.From,
		Columns: cols,
		Rows:    out,
		Total:   len(out),
	}, nil
}

// orderRows sorts rows by the query's order_by keys (stable; ties keep
// scan order). Without order_by, scan order — already deterministic —
// is kept.
func (s *Store) orderRows(q *Query, base, joinT *Table, rows []rowIdx) error {
	if len(q.OrderBy) == 0 {
		return nil
	}
	refs := make([]colRef, len(q.OrderBy))
	for i, o := range q.OrderBy {
		ref, err := resolveCol(o.Col, base, joinT)
		if err != nil {
			return err
		}
		refs[i] = ref
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i, ref := range refs {
			ia, ib := rows[a].base, rows[b].base
			if ref.joined {
				ia, ib = rows[a].join, rows[b].join
			}
			cmp := compareCol(ref.col, ia, ib)
			if cmp == 0 {
				continue
			}
			if q.OrderBy[i].Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	return nil
}

func compareCol(c *Column, a, b int) int {
	switch c.Type {
	case TString:
		return strings.Compare(c.S[a], c.S[b])
	case TBool:
		x, y := 0, 0
		if c.B[a] {
			x = 1
		}
		if c.B[b] {
			y = 1
		}
		return x - y
	default:
		x, _ := c.number(a)
		y, _ := c.number(b)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count int
	sum   float64
	min   float64
	max   float64
	seen  map[string]bool // count_distinct
}

// execAggregate groups the surviving rows by the group_by keys and
// folds each aggregate. Groups are emitted sorted ascending by key
// tuple for determinism; order_by may re-sort over output columns.
func (s *Store) execAggregate(q *Query, base, joinT *Table, rows []rowIdx) (*Result, error) {
	keyRefs := make([]colRef, len(q.GroupBy))
	for i, g := range q.GroupBy {
		ref, err := resolveCol(g, base, joinT)
		if err != nil {
			return nil, err
		}
		keyRefs[i] = ref
	}
	aggRefs := make([]colRef, len(q.Aggregate))
	for i, a := range q.Aggregate {
		if a.Col == "" {
			continue // plain count
		}
		ref, err := resolveCol(a.Col, base, joinT)
		if err != nil {
			return nil, err
		}
		switch a.Op {
		case "sum", "avg", "min", "max":
			if ref.col.Type != TInt && ref.col.Type != TFloat {
				return nil, fmt.Errorf("%w: aggregate %s needs a numeric column, %q is %s", ErrBadQuery, a.Op, a.Col, ref.col.Type)
			}
		}
		aggRefs[i] = ref
	}

	type group struct {
		key  []any
		aggs []*aggState
	}
	groups := make(map[string]*group)
	var order []string
	idxOf := func(r rowIdx, ref colRef) int {
		if ref.joined {
			return r.join
		}
		return r.base
	}
	for _, r := range rows {
		var kb strings.Builder
		key := make([]any, len(keyRefs))
		for i, ref := range keyRefs {
			idx := idxOf(r, ref)
			key[i] = ref.col.value(idx)
			kb.WriteString(joinKey(ref.col, idx))
			kb.WriteByte(0)
		}
		ks := kb.String()
		g, ok := groups[ks]
		if !ok {
			g = &group{key: key, aggs: make([]*aggState, len(q.Aggregate))}
			for i := range g.aggs {
				g.aggs[i] = &aggState{min: math.Inf(1), max: math.Inf(-1)}
			}
			groups[ks] = g
			order = append(order, ks)
		}
		for i, a := range q.Aggregate {
			st := g.aggs[i]
			st.count++
			if a.Col == "" {
				continue
			}
			ref := aggRefs[i]
			idx := idxOf(r, ref)
			if a.Op == "count_distinct" {
				if st.seen == nil {
					st.seen = make(map[string]bool)
				}
				st.seen[joinKey(ref.col, idx)] = true
				continue
			}
			if n, ok := ref.col.number(idx); ok {
				st.sum += n
				if n < st.min {
					st.min = n
				}
				if n > st.max {
					st.max = n
				}
			}
		}
	}
	sort.Strings(order)

	cols := make([]Col, 0, len(q.GroupBy)+len(q.Aggregate))
	for i, g := range q.GroupBy {
		cols = append(cols, Col{Name: g, Type: keyRefs[i].col.Type.String()})
	}
	for i, a := range q.Aggregate {
		ty := "float"
		if a.Op == "count" || a.Op == "count_distinct" {
			ty = "int"
		} else if a.Op != "avg" && aggRefs[i].col != nil && aggRefs[i].col.Type == TInt {
			ty = "int"
		}
		cols = append(cols, Col{Name: a.As, Type: ty})
	}

	out := make([][]any, 0, len(order))
	for _, ks := range order {
		g := groups[ks]
		row := make([]any, 0, len(cols))
		row = append(row, g.key...)
		for i, a := range q.Aggregate {
			st := g.aggs[i]
			switch a.Op {
			case "count":
				row = append(row, int64(st.count))
			case "count_distinct":
				row = append(row, int64(len(st.seen)))
			case "sum":
				row = append(row, numOut(st.sum, aggRefs[i]))
			case "avg":
				row = append(row, st.sum/float64(st.count))
			case "min":
				if st.count == 0 || math.IsInf(st.min, 1) {
					row = append(row, nil)
				} else {
					row = append(row, numOut(st.min, aggRefs[i]))
				}
			case "max":
				if st.count == 0 || math.IsInf(st.max, -1) {
					row = append(row, nil)
				} else {
					row = append(row, numOut(st.max, aggRefs[i]))
				}
			}
		}
		out = append(out, row)
	}

	res := &Result{
		Schema:  SchemaResult,
		Library: s.Library,
		From:    q.From,
		Columns: cols,
		Rows:    out,
		Total:   len(out),
	}
	if len(q.OrderBy) > 0 {
		if err := orderResult(res, q.OrderBy); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func numOut(v float64, ref colRef) any {
	if ref.col != nil && ref.col.Type == TInt {
		return int64(v)
	}
	return v
}

// orderResult re-sorts an aggregate result by output column names.
func orderResult(r *Result, keys []Order) error {
	idx := make([]int, len(keys))
	for i, k := range keys {
		found := -1
		for ci, c := range r.Columns {
			if c.Name == k.Col {
				found = ci
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("%w: order_by column %q is not in the result", ErrBadQuery, k.Col)
		}
		idx[i] = found
	}
	sort.SliceStable(r.Rows, func(a, b int) bool {
		for i, ci := range idx {
			cmp := compareAny(r.Rows[a][ci], r.Rows[b][ci])
			if cmp == 0 {
				continue
			}
			if keys[i].Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	return nil
}

func compareAny(a, b any) int {
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		return strings.Compare(as, bs)
	}
	return 0
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case int64:
		return float64(n), true
	case float64:
		return n, true
	case bool:
		if n {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// Page slices a full result according to limit/cursor, returning the
// window and the cursor addressing the next window ("" when exhausted).
// Cursors are opaque base64url offsets; a cursor from a different query
// still decodes (offsets are positional), matching the API contract
// that cursors are only meaningful with the query that produced them.
func Page(r *Result, limit int, cursor string) (*Result, string, error) {
	start := 0
	if cursor != "" {
		off, err := DecodeCursor(cursor)
		if err != nil {
			return nil, "", err
		}
		start = off
	}
	if start > len(r.Rows) {
		start = len(r.Rows)
	}
	end := len(r.Rows)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	page := *r
	page.Rows = r.Rows[start:end]
	next := ""
	if end < len(r.Rows) {
		next = EncodeCursor(end)
	}
	return &page, next, nil
}

// EncodeCursor renders a row offset as an opaque cursor token.
func EncodeCursor(offset int) string {
	return base64.RawURLEncoding.EncodeToString([]byte("r:" + strconv.Itoa(offset)))
}

// DecodeCursor parses a cursor token back to a row offset.
func DecodeCursor(cursor string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(cursor)
	if err != nil {
		return 0, fmt.Errorf("%w: bad cursor", ErrBadQuery)
	}
	s, ok := strings.CutPrefix(string(raw), "r:")
	if !ok {
		return 0, fmt.Errorf("%w: bad cursor", ErrBadQuery)
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%w: bad cursor", ErrBadQuery)
	}
	return n, nil
}
