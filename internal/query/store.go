// Package query is the library-as-a-database layer: a columnar
// in-memory store populated from pipeline artifacts — cells, arcs and
// tuned windows from the statistical library, instances and nets from
// the synthesized netlist, per-unit synthesis outcomes — plus a small
// typed query language (filter / project / aggregate / group-by / join)
// and two what-if evaluators (cell substitution and window widening)
// that drive the incremental STA engine, so "what does tuning this
// library buy me?" questions are answered without re-running the
// pipeline.
//
// The store is immutable once built: concurrent queries share it
// freely, and what-if evaluators clone the netlist before mutating.
// Execution is deterministic — fixed column order, stable sorts, group
// keys ordered by value — so identical queries over the same library
// render byte-identical results, which is what makes them cacheable in
// the service's content-addressed artifact cache.
package query

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"stdcelltune/internal/lut"
	"stdcelltune/internal/netlist"
	"stdcelltune/internal/restrict"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stattime"
	"stdcelltune/internal/stdcell"
)

// Type is a column's value type.
type Type uint8

const (
	TString Type = iota
	TInt
	TFloat
	TBool
)

// String returns the wire name of the type, used in result documents.
func (t Type) String() string {
	switch t {
	case TString:
		return "string"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	}
	return "unknown"
}

// Column is one typed column: exactly one of the value slices is
// populated, matching Type.
type Column struct {
	Name string
	Type Type
	S    []string
	I    []int64
	F    []float64
	B    []bool
}

// value returns row i as a JSON-marshalable Go value.
func (c *Column) value(i int) any {
	switch c.Type {
	case TString:
		return c.S[i]
	case TInt:
		return c.I[i]
	case TFloat:
		return c.F[i]
	default:
		return c.B[i]
	}
}

// number returns row i as a float64 for numeric columns.
func (c *Column) number(i int) (float64, bool) {
	switch c.Type {
	case TInt:
		return float64(c.I[i]), true
	case TFloat:
		return c.F[i], true
	}
	return 0, false
}

// Table is a named set of equal-length columns.
type Table struct {
	Name string
	Cols []*Column
	rows int

	byName map[string]*Column
}

// Rows returns the row count.
func (t *Table) Rows() int { return t.rows }

// Col returns the named column, nil if absent.
func (t *Table) Col(name string) *Column { return t.byName[name] }

// Columns lists the column names in declaration order.
func (t *Table) Columns() []string {
	out := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = c.Name
	}
	return out
}

// tableBuilder accumulates rows column-wise.
type tableBuilder struct {
	t *Table
}

func newTable(name string) *tableBuilder {
	return &tableBuilder{t: &Table{Name: name, byName: make(map[string]*Column)}}
}

func (b *tableBuilder) col(name string, ty Type) *Column {
	c := &Column{Name: name, Type: ty}
	b.t.Cols = append(b.t.Cols, c)
	b.t.byName[name] = c
	return c
}

func (b *tableBuilder) finish() *Table {
	if len(b.t.Cols) > 0 {
		c := b.t.Cols[0]
		switch c.Type {
		case TString:
			b.t.rows = len(c.S)
		case TInt:
			b.t.rows = len(c.I)
		case TFloat:
			b.t.rows = len(c.F)
		case TBool:
			b.t.rows = len(c.B)
		}
	}
	return b.t
}

// SynthUnit is one synthesis outcome row of the Source — the service
// pipeline has one unit per job; exp.Flow-style batches may have many.
type SynthUnit struct {
	Unit               string
	Design             string
	ClockNS            float64
	Met                bool
	AreaUM2            float64
	WNS                float64
	TNS                float64
	Iterations         int
	Buffered           int
	Upsized            int
	Downsized          int
	FullAnalyses       int
	IncrementalUpdates int
}

// Source carries the pipeline artifacts a Store is built from. Library
// is the content digest addressing the artifact set; Netlist may be nil
// when no synthesized design is available (the design-side tables and
// what-ifs are then absent).
type Source struct {
	Library string // artifact-set digest, e.g. "sha256:..."
	Stat    *statlib.Library
	Windows *restrict.Set
	Netlist *netlist.Netlist
	STA     sta.Config
	Rho     float64
	Synth   []SynthUnit
}

// Store is the queryable columnar image of one characterized library
// and its synthesized design. Immutable after Build.
type Store struct {
	Library string
	Tables  map[string]*Table

	// What-if inputs: the shared read-only netlist (cloned per
	// evaluation), the statistical library, the tuned windows and the
	// timing context the design was synthesized under.
	stat    *statlib.Library
	windows *restrict.Set
	nl      *netlist.Netlist
	staCfg  sta.Config
	rho     float64
}

// TableNames lists the store's tables sorted.
func (s *Store) TableNames() []string {
	names := make([]string, 0, len(s.Tables))
	for n := range s.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// tableMax scans a LUT for its largest finite value (0 for nil/empty
// tables), guarding against poisoning a column with NaN — JSON cannot
// carry it.
func tableMax(t *lut.Table) float64 {
	if t == nil {
		return 0
	}
	m := 0.0
	for _, row := range t.Values {
		for _, v := range row {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v > m {
				m = v
			}
		}
	}
	return m
}

// Build assembles the columnar store from a source. Table row order is
// deterministic: library order for cells/arcs, sorted keys for windows,
// creation order for instances/nets, endpoint order for paths.
func Build(src Source) (*Store, error) {
	if src.Stat == nil {
		return nil, fmt.Errorf("query: source has no statistical library")
	}
	s := &Store{
		Library: src.Library,
		Tables:  make(map[string]*Table),
		stat:    src.Stat,
		windows: src.Windows,
		nl:      src.Netlist,
		staCfg:  src.STA,
		rho:     src.Rho,
	}
	s.buildCellTables(src.Stat)
	s.buildWindowTable(src.Windows)
	s.buildSynthTable(src.Synth)
	if src.Netlist != nil {
		if err := s.buildDesignTables(src.Netlist, src.Stat, src.STA, src.Rho); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) buildCellTables(stat *statlib.Library) {
	cb := newTable("cells")
	cName := cb.col("cell", TString)
	cFam := cb.col("family", TString)
	cDrive := cb.col("drive", TInt)
	cArea := cb.col("area_um2", TFloat)
	cSeq := cb.col("is_sequential", TBool)
	cPins := cb.col("pins", TInt)
	cArcs := cb.col("arcs", TInt)
	cMean := cb.col("max_mean_ns", TFloat)
	cSigma := cb.col("max_sigma_ns", TFloat)
	cQuar := cb.col("quarantined", TBool)

	ab := newTable("arcs")
	aCell := ab.col("cell", TString)
	aPin := ab.col("pin", TString)
	aRel := ab.col("related_pin", TString)
	aMean := ab.col("max_mean_ns", TFloat)
	aSigma := ab.col("max_sigma_ns", TFloat)

	addCell := func(name string) {
		c := stat.Cells[name]
		cName.S = append(cName.S, c.Name)
		cFam.S = append(cFam.S, stdcell.FamilyOf(c.Name))
		cDrive.I = append(cDrive.I, int64(c.DriveStrength))
		cArea.F = append(cArea.F, c.Area)
		// The statistical library does not carry the Kind; sequential
		// cells are recognizable by their footprint-family prefix via the
		// nominal catalogue naming ("DFF..."/"LAT...").
		cSeq.B = append(cSeq.B, isSequentialName(c.Name))
		nArcs, maxMean, maxSigma := 0, 0.0, 0.0
		for _, p := range c.Pins {
			for _, a := range p.Arcs {
				nArcs++
				am := math.Max(tableMax(a.MeanRise), tableMax(a.MeanFall))
				as := math.Max(tableMax(a.SigmaRise), tableMax(a.SigmaFall))
				if am > maxMean {
					maxMean = am
				}
				if as > maxSigma {
					maxSigma = as
				}
				aCell.S = append(aCell.S, c.Name)
				aPin.S = append(aPin.S, p.Name)
				aRel.S = append(aRel.S, a.RelatedPin)
				aMean.F = append(aMean.F, am)
				aSigma.F = append(aSigma.F, as)
			}
		}
		cPins.I = append(cPins.I, int64(len(c.Pins)))
		cArcs.I = append(cArcs.I, int64(nArcs))
		cMean.F = append(cMean.F, maxMean)
		cSigma.F = append(cSigma.F, maxSigma)
		cQuar.B = append(cQuar.B, false)
	}
	for _, name := range stat.CellOrder {
		addCell(name)
	}
	// Quarantined cells appear as rows too — an analyst asking "what got
	// dropped?" should not need a separate endpoint — with zeroed
	// statistics and the flag set.
	if stat.Quarantine != nil {
		for _, e := range stat.Quarantine.Entries() {
			cName.S = append(cName.S, e.Name)
			cFam.S = append(cFam.S, stdcell.FamilyOf(e.Name))
			cDrive.I = append(cDrive.I, 0)
			cArea.F = append(cArea.F, 0)
			cSeq.B = append(cSeq.B, isSequentialName(e.Name))
			cPins.I = append(cPins.I, 0)
			cArcs.I = append(cArcs.I, 0)
			cMean.F = append(cMean.F, 0)
			cSigma.F = append(cSigma.F, 0)
			cQuar.B = append(cQuar.B, true)
		}
	}
	s.Tables["cells"] = cb.finish()
	s.Tables["arcs"] = ab.finish()
}

// isSequentialName recognizes the catalogue's sequential families by
// name prefix ("DFQ"/"DFRQ"/... flip-flops, "LATQ"/"LATRQ" latches);
// statlib cells don't carry the Kind enum.
func isSequentialName(cell string) bool {
	fam := stdcell.FamilyOf(cell)
	return strings.HasPrefix(fam, "DF") || strings.HasPrefix(fam, "LAT")
}

func (s *Store) buildWindowTable(set *restrict.Set) {
	wb := newTable("windows")
	wCell := wb.col("cell", TString)
	wPin := wb.col("pin", TString)
	wMinL := wb.col("min_load_pf", TFloat)
	wMaxL := wb.col("max_load_pf", TFloat)
	wMinS := wb.col("min_slew_ns", TFloat)
	wMaxS := wb.col("max_slew_ns", TFloat)
	wSpanL := wb.col("load_span_pf", TFloat)
	wSpanS := wb.col("slew_span_ns", TFloat)
	if set != nil {
		for _, k := range set.Keys() {
			cell, pin := splitKey(k)
			w, _ := set.Window(cell, pin)
			wCell.S = append(wCell.S, cell)
			wPin.S = append(wPin.S, pin)
			wMinL.F = append(wMinL.F, w.MinLoad)
			wMaxL.F = append(wMaxL.F, w.MaxLoad)
			wMinS.F = append(wMinS.F, w.MinSlew)
			wMaxS.F = append(wMaxS.F, w.MaxSlew)
			wSpanL.F = append(wSpanL.F, w.MaxLoad-w.MinLoad)
			wSpanS.F = append(wSpanS.F, w.MaxSlew-w.MinSlew)
		}
	}
	s.Tables["windows"] = wb.finish()
}

func splitKey(k string) (cell, pin string) {
	for i := 0; i < len(k); i++ {
		if k[i] == '/' {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}

func (s *Store) buildSynthTable(units []SynthUnit) {
	sb := newTable("synthesis")
	uName := sb.col("unit", TString)
	uDesign := sb.col("design", TString)
	uClock := sb.col("clock_ns", TFloat)
	uMet := sb.col("met", TBool)
	uArea := sb.col("area_um2", TFloat)
	uWNS := sb.col("wns_ns", TFloat)
	uTNS := sb.col("tns_ns", TFloat)
	uIter := sb.col("iterations", TInt)
	uBuf := sb.col("buffered", TInt)
	uUp := sb.col("upsized", TInt)
	uDown := sb.col("downsized", TInt)
	uFull := sb.col("full_analyses", TInt)
	uInc := sb.col("incremental_updates", TInt)
	for _, u := range units {
		uName.S = append(uName.S, u.Unit)
		uDesign.S = append(uDesign.S, u.Design)
		uClock.F = append(uClock.F, u.ClockNS)
		uMet.B = append(uMet.B, u.Met)
		uArea.F = append(uArea.F, u.AreaUM2)
		uWNS.F = append(uWNS.F, u.WNS)
		uTNS.F = append(uTNS.F, u.TNS)
		uIter.I = append(uIter.I, int64(u.Iterations))
		uBuf.I = append(uBuf.I, int64(u.Buffered))
		uUp.I = append(uUp.I, int64(u.Upsized))
		uDown.I = append(uDown.I, int64(u.Downsized))
		uFull.I = append(uFull.I, int64(u.FullAnalyses))
		uInc.I = append(uInc.I, int64(u.IncrementalUpdates))
	}
	s.Tables["synthesis"] = sb.finish()
}

func (s *Store) buildDesignTables(nl *netlist.Netlist, stat *statlib.Library, cfg sta.Config, rho float64) error {
	depths, err := nl.Depths()
	if err != nil {
		return fmt.Errorf("query: design depths: %w", err)
	}

	ib := newTable("instances")
	iName := ib.col("inst", TString)
	iCell := ib.col("cell", TString)
	iFam := ib.col("family", TString)
	iDrive := ib.col("drive", TInt)
	iArea := ib.col("area_um2", TFloat)
	iSeq := ib.col("is_sequential", TBool)
	iFanout := ib.col("fanout", TInt)
	iDepth := ib.col("depth", TInt)
	for _, inst := range nl.Instances {
		fanout := 0
		for _, n := range inst.Out {
			fanout += len(n.Sinks)
		}
		iName.S = append(iName.S, inst.Name)
		iCell.S = append(iCell.S, inst.Spec.Name)
		iFam.S = append(iFam.S, inst.Spec.Family)
		iDrive.I = append(iDrive.I, int64(inst.Spec.Drive))
		iArea.F = append(iArea.F, inst.Spec.Area())
		iSeq.B = append(iSeq.B, inst.Spec.IsSequential())
		iFanout.I = append(iFanout.I, int64(fanout))
		iDepth.I = append(iDepth.I, int64(depths[inst.ID]))
	}
	s.Tables["instances"] = ib.finish()

	nb := newTable("nets")
	nName := nb.col("net", TString)
	nDrvI := nb.col("driver_inst", TString)
	nDrvC := nb.col("driver_cell", TString)
	nFan := nb.col("fanout", TInt)
	nPI := nb.col("primary_in", TBool)
	nPO := nb.col("primary_out", TBool)
	for _, n := range nl.Nets {
		drvI, drvC := "", ""
		if n.Driver != nil {
			drvI, drvC = n.Driver.Name, n.Driver.Spec.Name
		}
		po := false
		for _, snk := range n.Sinks {
			if snk.Inst == nil {
				po = true
				break
			}
		}
		nName.S = append(nName.S, n.Name)
		nDrvI.S = append(nDrvI.S, drvI)
		nDrvC.S = append(nDrvC.S, drvC)
		nFan.I = append(nFan.I, int64(len(n.Sinks)))
		nPI.B = append(nPI.B, n.PrimaryIn)
		nPO.B = append(nPO.B, po)
	}
	s.Tables["nets"] = nb.finish()

	// The paths table is computed, not parsed: one full STA pass plus
	// the statistical per-path analysis — the cheap reanalysis that the
	// whole query layer exists to exploit (no synthesis involved).
	r, err := sta.Analyze(nl, cfg)
	if err != nil {
		return fmt.Errorf("query: design timing: %w", err)
	}
	ds, err := stattime.Analyze(r, stat, rho)
	if err != nil {
		return fmt.Errorf("query: design statistics: %w", err)
	}
	pb := newTable("paths")
	pEnd := pb.col("endpoint", TString)
	pFF := pb.col("is_ff", TBool)
	pDepth := pb.col("depth", TInt)
	pSlack := pb.col("slack_ns", TFloat)
	pMu := pb.col("mu_ns", TFloat)
	pSigma := pb.col("sigma_ns", TFloat)
	pUpper := pb.col("mu_plus_3sigma_ns", TFloat)
	for _, p := range ds.Paths {
		pEnd.S = append(pEnd.S, p.Path.Endpoint.Name)
		pFF.B = append(pFF.B, p.Path.Endpoint.IsFF)
		pDepth.I = append(pDepth.I, int64(p.Depth))
		pSlack.F = append(pSlack.F, p.Path.Endpoint.Slack)
		pMu.F = append(pMu.F, p.Dist.Mu)
		pSigma.F = append(pSigma.F, p.Dist.Sigma)
		pUpper.F = append(pUpper.F, p.Dist.ThreeSigmaUpper())
	}
	s.Tables["paths"] = pb.finish()
	return nil
}
