package query

import (
	"errors"
	"fmt"
	"math"

	"stdcelltune/internal/netlist"
	"stdcelltune/internal/restrict"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/stattime"
	"stdcelltune/internal/stdcell"
)

// SchemaWhatIf is the wire schema of a what-if result document.
const SchemaWhatIf = "stdcelltune-whatif/1"

// ErrNoDesign marks a what-if against a library whose artifact set has
// no synthesized netlist to evaluate on.
var ErrNoDesign = errors.New("library has no synthesized design")

// Metrics is one timing/area snapshot of the design.
type Metrics struct {
	AreaUM2        float64 `json:"area_um2"`
	WNSNS          float64 `json:"wns_ns"`
	TNSNS          float64 `json:"tns_ns"`
	MuNS           float64 `json:"mu_ns"`
	SigmaNS        float64 `json:"sigma_ns"`
	MuPlus3SigmaNS float64 `json:"mu_plus_3sigma_ns"`
}

func (m Metrics) sub(o Metrics) Metrics {
	return Metrics{
		AreaUM2:        m.AreaUM2 - o.AreaUM2,
		WNSNS:          m.WNSNS - o.WNSNS,
		TNSNS:          m.TNSNS - o.TNSNS,
		MuNS:           m.MuNS - o.MuNS,
		SigmaNS:        m.SigmaNS - o.SigmaNS,
		MuPlus3SigmaNS: m.MuPlus3SigmaNS - o.MuPlus3SigmaNS,
	}
}

// Change records one netlist edit a what-if applied.
type Change struct {
	Inst string `json:"inst"`
	From string `json:"from"`
	To   string `json:"to"`
}

// maxReportedChanges bounds the change list in the result document;
// Changed always carries the true count.
const maxReportedChanges = 100

// WhatIfResult is the outcome of a what-if evaluation: the baseline and
// mutated design metrics, their delta, and the incremental-STA
// accounting proving no re-synthesis happened.
type WhatIfResult struct {
	Schema  string  `json:"schema"`
	Library string  `json:"library"`
	Op      string  `json:"op"`
	From    string  `json:"from,omitempty"`
	To      string  `json:"to,omitempty"`
	Factor  float64 `json:"factor,omitempty"`

	Changed  int     `json:"changed"`
	Baseline Metrics `json:"baseline"`
	Result   Metrics `json:"result"`
	Delta    Metrics `json:"delta"`

	// Engine accounting for this evaluation: one full pass to establish
	// the baseline, then incremental updates only.
	FullAnalyses       int `json:"full_analyses"`
	IncrementalUpdates int `json:"incremental_updates"`

	Changes []Change `json:"changes,omitempty"`
}

// EvalWhatIf dispatches a normalized what-if clause.
func (s *Store) EvalWhatIf(w *WhatIf) (*WhatIfResult, error) {
	switch w.Op {
	case "substitute":
		return s.Substitute(w.From, w.To)
	case "widen":
		return s.Widen(w.Factor)
	}
	return nil, fmt.Errorf("%w: unknown what_if op %q", ErrBadQuery, w.Op)
}

// metrics folds one STA result plus its statistical analysis into a
// snapshot.
func (s *Store) metrics(nl *netlist.Netlist, r *sta.Result) (Metrics, error) {
	ds, err := stattime.Analyze(r, s.stat, s.rho)
	if err != nil {
		return Metrics{}, fmt.Errorf("query: what-if statistics: %w", err)
	}
	return Metrics{
		AreaUM2:        nl.Area(),
		WNSNS:          r.WNS(),
		TNSNS:          r.TNS(),
		MuNS:           ds.Design.Mu,
		SigmaNS:        ds.Design.Sigma,
		MuPlus3SigmaNS: ds.Design.ThreeSigmaUpper(),
	}, nil
}

// Substitute evaluates "swap every instance of cell `from` for cell
// `to`" with one baseline full analysis and a single batched
// incremental reanalysis — no synthesis. Cross-footprint swaps are
// rejected: pin names and logic function only line up within a family.
func (s *Store) Substitute(from, to string) (*WhatIfResult, error) {
	if s.nl == nil {
		return nil, ErrNoDesign
	}
	cat := s.nl.Cat
	fromSpec, toSpec := cat.Spec(from), cat.Spec(to)
	if fromSpec == nil {
		return nil, fmt.Errorf("%w: unknown cell %q", ErrBadQuery, from)
	}
	if toSpec == nil {
		return nil, fmt.Errorf("%w: unknown cell %q", ErrBadQuery, to)
	}
	if fromSpec.Family != toSpec.Family {
		return nil, fmt.Errorf("%w: cannot substitute across footprints %s -> %s", ErrBadQuery, fromSpec.Family, toSpec.Family)
	}

	nl := s.nl.Clone()
	eng := sta.NewEngine(nl, s.staCfg)
	defer eng.Close()
	r, err := eng.Analyze()
	if err != nil {
		return nil, fmt.Errorf("query: baseline analysis: %w", err)
	}
	base, err := s.metrics(nl, r)
	if err != nil {
		return nil, err
	}

	res := &WhatIfResult{
		Schema:  SchemaWhatIf,
		Library: s.Library,
		Op:      "substitute",
		From:    from,
		To:      to,
	}
	for _, inst := range nl.Instances {
		if inst.Spec.Name != from {
			continue
		}
		if err := nl.Resize(inst, toSpec); err != nil {
			return nil, fmt.Errorf("query: substitute %s: %w", inst.Name, err)
		}
		res.Changed++
		if len(res.Changes) < maxReportedChanges {
			res.Changes = append(res.Changes, Change{Inst: inst.Name, From: from, To: to})
		}
	}
	if res.Changed == 0 {
		res.Baseline, res.Result = base, base
		res.FullAnalyses, res.IncrementalUpdates = eng.Counts()
		return res, nil
	}
	nr, err := eng.Analyze()
	if err != nil {
		return nil, fmt.Errorf("query: substituted analysis: %w", err)
	}
	after, err := s.metrics(nl, nr)
	if err != nil {
		return nil, err
	}
	res.Baseline, res.Result, res.Delta = base, after, after.sub(base)
	res.FullAnalyses, res.IncrementalUpdates = eng.Counts()
	return res, nil
}

// Widen evaluates "what if every tuned window were wider by factor f":
// each window expands about its center (half-spans scaled by f, lower
// bounds clamped at 0), then a greedy topological downsize pass
// recovers area wherever the widened windows newly permit a smaller
// drive, accepting only moves that keep timing and window legality.
// factor > 1 widens, factor < 1 narrows. The report is the classic
// tuning trade: area recovered vs sigma cost, with no synthesis run.
func (s *Store) Widen(factor float64) (*WhatIfResult, error) {
	if s.nl == nil {
		return nil, ErrNoDesign
	}
	if s.windows == nil || s.windows.Len() == 0 {
		return nil, fmt.Errorf("%w: library has no restriction windows to widen", ErrBadQuery)
	}
	widened := widenSet(s.windows, factor)

	nl := s.nl.Clone()
	cat := nl.Cat
	eng := sta.NewEngine(nl, s.staCfg)
	defer eng.Close()
	r, err := eng.Analyze()
	if err != nil {
		return nil, fmt.Errorf("query: baseline analysis: %w", err)
	}
	base, err := s.metrics(nl, r)
	if err != nil {
		return nil, err
	}
	baseWNS := r.WNS()

	res := &WhatIfResult{
		Schema:  SchemaWhatIf,
		Library: s.Library,
		Op:      "widen",
		Factor:  factor,
	}

	order, err := nl.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("query: what-if topo order: %w", err)
	}
	// Probe one step down per instance: apply, reanalyze incrementally,
	// keep if timing holds (never worse than the baseline WNS) and the
	// widened windows stay satisfied; otherwise revert. A reverted
	// probe's dirty marks resolve in the next probe's analysis.
	dirty := false
	for _, inst := range order {
		down := downsizeStep(cat, inst.Spec)
		if down == nil {
			continue
		}
		prev := inst.Spec
		if err := nl.Resize(inst, down); err != nil {
			continue
		}
		dirty = true
		nr, err := eng.Analyze()
		if err != nil {
			return nil, fmt.Errorf("query: widen probe: %w", err)
		}
		ok := nr.WNS() >= math.Min(0, baseWNS)-1e-9 && legalUnder(nl, nr, widened) == 0
		if ok {
			res.Changed++
			if len(res.Changes) < maxReportedChanges {
				res.Changes = append(res.Changes, Change{Inst: inst.Name, From: prev.Name, To: down.Name})
			}
			r = nr
			dirty = false
			continue
		}
		if err := nl.Resize(inst, prev); err != nil {
			return nil, fmt.Errorf("query: widen revert %s: %w", inst.Name, err)
		}
	}
	if dirty {
		r, err = eng.Analyze()
		if err != nil {
			return nil, fmt.Errorf("query: widen final analysis: %w", err)
		}
	}
	after, err := s.metrics(nl, r)
	if err != nil {
		return nil, err
	}
	res.Baseline, res.Result, res.Delta = base, after, after.sub(base)
	res.FullAnalyses, res.IncrementalUpdates = eng.Counts()
	return res, nil
}

// widenSet scales every window's half-spans by factor about the window
// center, clamping lower bounds at zero.
func widenSet(set *restrict.Set, factor float64) *restrict.Set {
	out := restrict.NewSet(set.Name + "-widened")
	for _, k := range set.Keys() {
		cell, pin := splitKey(k)
		w, _ := set.Window(cell, pin)
		cl, cs := (w.MinLoad+w.MaxLoad)/2, (w.MinSlew+w.MaxSlew)/2
		hl, hs := (w.MaxLoad-w.MinLoad)/2*factor, (w.MaxSlew-w.MinSlew)/2*factor
		out.Put(cell, pin, restrict.Window{
			MinLoad: math.Max(0, cl-hl), MaxLoad: cl + hl,
			MinSlew: math.Max(0, cs-hs), MaxSlew: cs + hs,
		})
	}
	return out
}

// downsizeStep returns the next size down in the instance's family, or
// nil at the smallest drive.
func downsizeStep(cat *stdcell.Catalogue, spec *stdcell.Spec) *stdcell.Spec {
	fam := cat.Families[spec.Family]
	for i, c := range fam {
		if c.Drive == spec.Drive && i > 0 {
			return fam[i-1]
		}
	}
	return nil
}

// legalUnder counts load/slew violations of the design against a
// restriction set — the same legality the synthesizer enforces, but
// parameterized over the candidate (widened) windows.
func legalUnder(nl *netlist.Netlist, r *sta.Result, set *restrict.Set) int {
	lastSlew := stdcell.SlewAxis[len(stdcell.SlewAxis)-1]
	n := 0
	for _, net := range nl.Nets {
		if net.Driver != nil {
			spec := net.Driver.Spec
			if net.ID < len(r.Load) && r.Load[net.ID] > set.MaxLoad(spec.Name, net.DrvPin, spec.MaxCap())+1e-12 {
				n++
			}
		}
		// The slew bound of a net is the tightest input-slew window of
		// any cell it feeds.
		limit := math.Inf(1)
		for _, snk := range net.Sinks {
			if snk.Inst == nil {
				continue
			}
			for _, outPin := range snk.Inst.Spec.Outputs {
				if l := set.MaxSlew(snk.Inst.Spec.Name, outPin, lastSlew); l < limit {
					limit = l
				}
			}
		}
		if net.ID < len(r.Slew) && r.Slew[net.ID] > limit+1e-12 {
			n++
		}
	}
	return n
}
