package query

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"

	"stdcelltune/internal/netlist"
	"stdcelltune/internal/restrict"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stattime"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

var (
	envOnce sync.Once
	envCat  *stdcell.Catalogue
	envStat *statlib.Library
)

func env(t *testing.T) (*stdcell.Catalogue, *statlib.Library) {
	t.Helper()
	envOnce.Do(func() {
		envCat = stdcell.NewCatalogue(stdcell.Typical)
		libs := variation.Instances(envCat, variation.Config{N: 25, Seed: 2})
		var err error
		envStat, err = statlib.Build("stat", libs)
		if err != nil {
			panic(err)
		}
	})
	return envCat, envStat
}

// testNetlist builds FF -> INV_4 -> INV_4 -> ND2_2(second input from a
// second FF) -> FF: enough cell diversity for group-bys and a
// substitutable INV population.
func testNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	c, _ := env(t)
	nl := netlist.New("whatif", c)
	in := nl.AddInput("si")
	in2 := nl.AddInput("sb")
	ff1 := nl.AddInstance("launch", c.Spec("DFQ_2"))
	nl.Connect(ff1, "D", in)
	ff2 := nl.AddInstance("launch2", c.Spec("DFQ_2"))
	nl.Connect(ff2, "D", in2)
	cur := nl.AddNet("")
	nl.Drive(ff1, "Q", cur)
	for i := 0; i < 2; i++ {
		inv := nl.AddInstance("", c.Spec("INV_4"))
		nl.Connect(inv, "A", cur)
		next := nl.AddNet("")
		nl.Drive(inv, "Y", next)
		cur = next
	}
	b := nl.AddNet("")
	nl.Drive(ff2, "Q", b)
	nd := nl.AddInstance("mix", c.Spec("ND2_2"))
	nl.Connect(nd, "A", cur)
	nl.Connect(nd, "B", b)
	out := nl.AddNet("")
	nl.Drive(nd, "Y", out)
	ffo := nl.AddInstance("capture", c.Spec("DFQ_2"))
	nl.Connect(ffo, "D", out)
	q := nl.AddNet("")
	nl.Drive(ffo, "Q", q)
	nl.MarkOutput("so", q)
	return nl
}

func testWindows() *restrict.Set {
	set := restrict.NewSet("test")
	set.Put("INV_4", "Y", restrict.Window{MinLoad: 0, MaxLoad: 0.2, MinSlew: 0, MaxSlew: 0.8})
	set.Put("ND2_2", "Y", restrict.Window{MinLoad: 0, MaxLoad: 0.15, MinSlew: 0, MaxSlew: 0.8})
	return set
}

func testStore(t *testing.T) *Store {
	t.Helper()
	_, sl := env(t)
	s, err := Build(Source{
		Library: "sha256:test",
		Stat:    sl,
		Windows: testWindows(),
		Netlist: testNetlist(t),
		STA:     sta.DefaultConfig(6),
		Rho:     0,
		Synth: []SynthUnit{
			{Unit: "u0", Design: "whatif", ClockNS: 6, Met: true, AreaUM2: 10, WNS: 0.5, TNS: 0, Iterations: 3, FullAnalyses: 1, IncrementalUpdates: 7},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustParse(t *testing.T, doc string) *Query {
	t.Helper()
	q, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("parse %s: %v", doc, err)
	}
	return q
}

func TestStoreTables(t *testing.T) {
	s := testStore(t)
	want := []string{"arcs", "cells", "instances", "nets", "paths", "synthesis", "windows"}
	got := s.TableNames()
	if len(got) != len(want) {
		t.Fatalf("tables %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tables %v want %v", got, want)
		}
	}
	if s.Tables["cells"].Rows() == 0 || s.Tables["arcs"].Rows() == 0 {
		t.Fatal("empty library tables")
	}
	if n := s.Tables["instances"].Rows(); n != 6 {
		t.Fatalf("instances rows %d want 6", n)
	}
	if n := s.Tables["windows"].Rows(); n != 2 {
		t.Fatalf("windows rows %d want 2", n)
	}
	if n := s.Tables["paths"].Rows(); n == 0 {
		t.Fatal("no paths rows")
	}
	// No NaN anywhere: every table must marshal.
	for name, tab := range s.Tables {
		for _, c := range tab.Cols {
			for _, v := range c.F {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("table %s col %s has non-finite value", name, c.Name)
				}
			}
		}
	}
}

func TestFilterAndSelect(t *testing.T) {
	s := testStore(t)
	q := mustParse(t, `{"from": "instances", "where": [{"col": "cell", "op": "eq", "value": "INV_4"}], "select": ["inst", "cell", "area_um2"]}`)
	r, err := s.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total != 2 {
		t.Fatalf("total %d want 2", r.Total)
	}
	if len(r.Columns) != 3 || r.Columns[2].Name != "area_um2" || r.Columns[2].Type != "float" {
		t.Fatalf("columns %+v", r.Columns)
	}
	for _, row := range r.Rows {
		if row[1].(string) != "INV_4" {
			t.Fatalf("row %v", row)
		}
	}
}

func TestGroupByAggregate(t *testing.T) {
	s := testStore(t)
	q := mustParse(t, `{"from": "instances", "group_by": ["family"], "aggregate": [{"op": "count"}, {"op": "sum", "col": "area_um2"}]}`)
	r, err := s.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	// Families sorted ascending: DFQ, INV, ND2.
	if r.Total != 3 {
		t.Fatalf("groups %d want 3: %+v", r.Total, r.Rows)
	}
	if r.Rows[0][0].(string) != "DFQ" || r.Rows[0][1].(int64) != 3 {
		t.Fatalf("first group %v", r.Rows[0])
	}
	if r.Rows[1][0].(string) != "INV" || r.Rows[1][1].(int64) != 2 {
		t.Fatalf("second group %v", r.Rows[1])
	}
	if r.Columns[2].Name != "sum_area_um2" {
		t.Fatalf("agg name %q", r.Columns[2].Name)
	}
}

func TestJoinInstancesCells(t *testing.T) {
	s := testStore(t)
	q := mustParse(t, `{"from": "instances", "join": {"table": "cells", "left_col": "cell", "right_col": "cell"}, "select": ["inst", "cell", "cells.max_sigma_ns"]}`)
	r, err := s.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total != 6 {
		t.Fatalf("joined rows %d want 6", r.Total)
	}
	for _, row := range r.Rows {
		if row[2].(float64) <= 0 {
			t.Fatalf("joined sigma not positive: %v", row)
		}
	}
}

func TestDistinctCellsDesignVsLibrary(t *testing.T) {
	// The ChipXplore headline question: distinct cells used by the
	// design vs available in the library.
	s := testStore(t)
	qd := mustParse(t, `{"from": "instances", "aggregate": [{"op": "count_distinct", "col": "cell"}]}`)
	rd, err := s.Execute(qd)
	if err != nil {
		t.Fatal(err)
	}
	if got := rd.Rows[0][0].(int64); got != 3 {
		t.Fatalf("distinct design cells %d want 3", got)
	}
	ql := mustParse(t, `{"from": "cells", "aggregate": [{"op": "count"}]}`)
	rl, err := s.Execute(ql)
	if err != nil {
		t.Fatal(err)
	}
	if got := rl.Rows[0][0].(int64); got < 300 {
		t.Fatalf("library cells %d want >= 300", got)
	}
}

func TestOrderByAndOps(t *testing.T) {
	s := testStore(t)
	q := mustParse(t, `{"from": "cells", "where": [{"col": "family", "op": "eq", "value": "INV"}, {"col": "drive", "op": "ge", "value": 4}], "select": ["cell", "drive"], "order_by": [{"col": "drive", "desc": true}]}`)
	r, err := s.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total == 0 {
		t.Fatal("no rows")
	}
	prev := int64(1 << 40)
	for _, row := range r.Rows {
		d := row[1].(int64)
		if d < 4 || d > prev {
			t.Fatalf("order violated: %v", r.Rows)
		}
		prev = d
	}
	// prefix / contains / in.
	q2 := mustParse(t, `{"from": "cells", "where": [{"col": "cell", "op": "in", "value": ["INV_1", "INV_2"]}], "select": ["cell"]}`)
	r2, err := s.Execute(q2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Total != 2 {
		t.Fatalf("in: %d rows", r2.Total)
	}
}

func TestPagination(t *testing.T) {
	s := testStore(t)
	q := mustParse(t, `{"from": "cells", "select": ["cell"]}`)
	full, err := s.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	cursor := ""
	pages := 0
	for {
		page, next, err := Page(full, 100, cursor)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range page.Rows {
			got = append(got, row[0].(string))
		}
		pages++
		if next == "" {
			break
		}
		cursor = next
	}
	if pages < 3 {
		t.Fatalf("expected >= 3 pages, got %d", pages)
	}
	if len(got) != full.Total {
		t.Fatalf("paged %d rows, want %d", len(got), full.Total)
	}
	for i, row := range full.Rows {
		if got[i] != row[0].(string) {
			t.Fatalf("page order diverges at %d", i)
		}
	}
	if _, _, err := Page(full, 10, "not-base64!"); err == nil {
		t.Fatal("bad cursor accepted")
	}
}

func TestNormalizationDigest(t *testing.T) {
	a := mustParse(t, `{"from": "cells", "where": [{"col": "drive", "op": "EQ", "value": 4}], "select": ["cell"]}`)
	b := mustParse(t, `{
		"select": ["cell"],
		"where":  [{"value": 4.0, "op": "eq", "col": "drive"}],
		"from":   "cells"
	}`)
	da, err := a.Digest("sha256:lib")
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest("sha256:lib")
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatalf("normalized digests differ:\n%s\n%s", da, db)
	}
	// Pagination must not perturb the key.
	c := mustParse(t, `{"from": "cells", "where": [{"col": "drive", "op": "eq", "value": 4}], "select": ["cell"], "limit": 5, "cursor": "cg"}`)
	dc, err := c.Digest("sha256:lib")
	if err != nil {
		t.Fatal(err)
	}
	if dc != da {
		t.Fatal("limit/cursor changed the digest")
	}
	// A different library digest must miss.
	dd, err := a.Digest("sha256:other")
	if err != nil {
		t.Fatal(err)
	}
	if dd == da {
		t.Fatal("library digest not part of the key")
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		`{"from": "cells", "bogus": 1}`,
		`{"from": ""}`,
		`{}`,
		`{"from": "cells", "where": [{"col": "x", "op": "like", "value": "a"}]}`,
		`{"from": "cells", "group_by": ["family"]}`,
		`{"from": "cells", "select": ["cell"], "aggregate": [{"op": "count"}]}`,
		`{"from": "cells", "limit": -1}`,
		`{"what_if": {"op": "substitute", "from": "INV_2"}}`,
		`{"what_if": {"op": "widen"}}`,
		`{"what_if": {"op": "widen", "factor": 2}, "from": "cells"}`,
		`{"what_if": {"op": "widen", "factor": 2}, "limit": 3}`,
		`{"schema": "bogus/9", "from": "cells"}`,
	}
	for _, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("accepted %s", doc)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	s := testStore(t)
	for _, doc := range []string{
		`{"from": "nope"}`,
		`{"from": "cells", "select": ["nope"]}`,
		`{"from": "cells", "where": [{"col": "cell", "op": "eq", "value": 4}]}`,
		`{"from": "cells", "where": [{"col": "area_um2", "op": "contains", "value": "x"}]}`,
		`{"from": "cells", "aggregate": [{"op": "sum", "col": "cell"}]}`,
		`{"from": "cells", "join": {"table": "instances", "left_col": "cell", "right_col": "fanout"}}`,
	} {
		q, err := Parse([]byte(doc))
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := s.Execute(q); err == nil {
			t.Errorf("executed %s", doc)
		}
	}
}

func TestDeterministicExecution(t *testing.T) {
	s := testStore(t)
	doc := `{"from": "instances", "join": {"table": "cells", "left_col": "cell", "right_col": "cell"}, "group_by": ["family"], "aggregate": [{"op": "count"}, {"op": "max", "col": "cells.max_sigma_ns"}]}`
	var first []byte
	for i := 0; i < 5; i++ {
		r, err := s.Execute(mustParse(t, doc))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Fatalf("run %d differs:\n%s\n%s", i, first, b)
		}
	}
}

func TestSubstituteMatchesFromScratch(t *testing.T) {
	s := testStore(t)
	fullBefore := sta.FullAnalyses()
	incBefore := sta.IncrementalUpdates()

	wr, err := s.Substitute("INV_4", "INV_8")
	if err != nil {
		t.Fatal(err)
	}
	if wr.Changed != 2 {
		t.Fatalf("changed %d want 2", wr.Changed)
	}
	if wr.FullAnalyses != 1 {
		t.Fatalf("engine full analyses %d want 1 (baseline only)", wr.FullAnalyses)
	}
	if wr.IncrementalUpdates == 0 {
		t.Fatal("no incremental updates recorded")
	}
	// Global counters: the evaluation added exactly the engine's own
	// work — full baseline plus incremental — and nothing synthesized.
	if got := sta.FullAnalyses() - fullBefore; got != int64(wr.FullAnalyses) {
		t.Fatalf("global full analyses grew by %d, engine says %d", got, wr.FullAnalyses)
	}
	if got := sta.IncrementalUpdates() - incBefore; got != int64(wr.IncrementalUpdates) {
		t.Fatalf("global incremental updates grew by %d, engine says %d", got, wr.IncrementalUpdates)
	}

	// From-scratch cross-check: mutate an independent clone, run a full
	// analysis + statistical pass, and compare deltas exactly — the
	// incremental engine is bit-identical to full analysis by contract.
	c, sl := env(t)
	nl := testNetlist(t)
	to := c.Spec("INV_8")
	for _, inst := range nl.Instances {
		if inst.Spec.Name == "INV_4" {
			if err := nl.Resize(inst, to); err != nil {
				t.Fatal(err)
			}
		}
	}
	r, err := sta.Analyze(nl, sta.DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := stattime.Analyze(r, sl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Result.AreaUM2 != nl.Area() {
		t.Fatalf("area %v want %v", wr.Result.AreaUM2, nl.Area())
	}
	if wr.Result.WNSNS != r.WNS() {
		t.Fatalf("wns %v want %v", wr.Result.WNSNS, r.WNS())
	}
	if wr.Result.SigmaNS != ds.Design.Sigma {
		t.Fatalf("sigma %v want %v", wr.Result.SigmaNS, ds.Design.Sigma)
	}
	if wr.Result.MuNS != ds.Design.Mu {
		t.Fatalf("mu %v want %v", wr.Result.MuNS, ds.Design.Mu)
	}
	// Upsizing strictly grows area.
	if wr.Delta.AreaUM2 <= 0 {
		t.Fatalf("upsizing should grow area, delta %v", wr.Delta.AreaUM2)
	}
}

func TestSubstituteRejects(t *testing.T) {
	s := testStore(t)
	if _, err := s.Substitute("INV_4", "ND2_2"); err == nil {
		t.Fatal("cross-family substitution accepted")
	}
	if _, err := s.Substitute("NOPE_1", "INV_2"); err == nil {
		t.Fatal("unknown source cell accepted")
	}
	if _, err := s.Substitute("INV_2", "NOPE_1"); err == nil {
		t.Fatal("unknown target cell accepted")
	}
	// Zero matching instances is not an error — it is a zero-delta answer.
	wr, err := s.Substitute("INV_16", "INV_8")
	if err != nil {
		t.Fatal(err)
	}
	if wr.Changed != 0 || wr.Delta.AreaUM2 != 0 {
		t.Fatalf("no-op substitution: %+v", wr)
	}
}

func TestWiden(t *testing.T) {
	s := testStore(t)
	fullBefore := sta.FullAnalyses()
	wr, err := s.Widen(2)
	if err != nil {
		t.Fatal(err)
	}
	if wr.FullAnalyses != 1 {
		t.Fatalf("engine full analyses %d want 1", wr.FullAnalyses)
	}
	if got := sta.FullAnalyses() - fullBefore; got != int64(wr.FullAnalyses) {
		t.Fatalf("global full analyses grew by %d, engine says %d", got, wr.FullAnalyses)
	}
	// Downsizing can only shrink (or hold) area.
	if wr.Delta.AreaUM2 > 0 {
		t.Fatalf("widen grew area: %+v", wr.Delta)
	}
	if wr.Changed > 0 && wr.Delta.AreaUM2 >= 0 {
		t.Fatalf("changed %d but area delta %v", wr.Changed, wr.Delta.AreaUM2)
	}
	// Timing must not regress below the baseline contract.
	if wr.Result.WNSNS < math.Min(0, wr.Baseline.WNSNS)-1e-9 {
		t.Fatalf("widen broke timing: %+v", wr)
	}
}

func TestWidenNoWindows(t *testing.T) {
	_, sl := env(t)
	s, err := Build(Source{Library: "sha256:x", Stat: sl, Netlist: testNetlist(t), STA: sta.DefaultConfig(6)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Widen(2); err == nil {
		t.Fatal("widen without windows accepted")
	}
}

func TestWhatIfNoDesign(t *testing.T) {
	_, sl := env(t)
	s, err := Build(Source{Library: "sha256:x", Stat: sl, Windows: testWindows()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Substitute("INV_2", "INV_4"); err == nil {
		t.Fatal("substitute without design accepted")
	}
	if tab := s.Tables["instances"]; tab != nil {
		t.Fatal("instances table without netlist")
	}
}
