package query

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"stdcelltune/internal/digest"
)

// SchemaQuery is the wire schema of a query document.
const SchemaQuery = "stdcelltune-query/1"

// ErrBadQuery marks a malformed or unexecutable query; the service maps
// it to 400.
var ErrBadQuery = errors.New("bad query")

// Pred is one filter predicate: column op value.
type Pred struct {
	Col   string          `json:"col"`
	Op    string          `json:"op"`
	Value json.RawMessage `json:"value"`
}

// Join describes an inner join of the base table against another table.
// Joined columns appear as "table.col" in select/group_by/order_by.
type Join struct {
	Table    string `json:"table"`
	LeftCol  string `json:"left_col"`
	RightCol string `json:"right_col"`
}

// Agg is one aggregate output: op over col, emitted under name As.
type Agg struct {
	Op  string `json:"op"`
	Col string `json:"col,omitempty"`
	As  string `json:"as,omitempty"`
}

// Order is one sort key.
type Order struct {
	Col  string `json:"col"`
	Desc bool   `json:"desc,omitempty"`
}

// WhatIf requests an evaluator run instead of a table scan.
type WhatIf struct {
	Op     string  `json:"op"`             // "substitute" | "widen"
	From   string  `json:"from,omitempty"` // substitute: source cell
	To     string  `json:"to,omitempty"`   // substitute: target cell
	Factor float64 `json:"factor,omitempty"`
}

// Query is the typed form of a stdcelltune-query/1 document. Exactly
// one of (From, WhatIf) drives execution; Select and Aggregate are
// mutually exclusive.
type Query struct {
	Schema    string   `json:"schema"`
	From      string   `json:"from,omitempty"`
	Where     []Pred   `json:"where,omitempty"`
	Join      *Join    `json:"join,omitempty"`
	GroupBy   []string `json:"group_by,omitempty"`
	Aggregate []Agg    `json:"aggregate,omitempty"`
	Select    []string `json:"select,omitempty"`
	OrderBy   []Order  `json:"order_by,omitempty"`
	Limit     int      `json:"limit,omitempty"`
	Cursor    string   `json:"cursor,omitempty"`
	WhatIf    *WhatIf  `json:"what_if,omitempty"`
}

var validOps = map[string]bool{
	"eq": true, "ne": true, "lt": true, "le": true, "gt": true, "ge": true,
	"in": true, "contains": true, "prefix": true,
}

var validAggOps = map[string]bool{
	"count": true, "count_distinct": true, "sum": true, "avg": true,
	"min": true, "max": true,
}

// Parse strictly decodes a query document. Unknown fields are rejected
// so typos fail loudly instead of silently scanning a whole table.
func Parse(raw []byte) (*Query, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var q Query
	if err := dec.Decode(&q); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after query document", ErrBadQuery)
	}
	if err := q.normalize(); err != nil {
		return nil, err
	}
	return &q, nil
}

// normalize fills defaults, lowercases operator names, and validates
// structure. After normalize, two semantically-identical documents
// (whitespace, field order, case of ops) have identical typed forms.
func (q *Query) normalize() error {
	if q.Schema == "" {
		q.Schema = SchemaQuery
	}
	if q.Schema != SchemaQuery {
		return fmt.Errorf("%w: unsupported schema %q (want %q)", ErrBadQuery, q.Schema, SchemaQuery)
	}
	if q.WhatIf != nil {
		if q.From != "" || q.Join != nil || len(q.Where) > 0 || len(q.GroupBy) > 0 ||
			len(q.Aggregate) > 0 || len(q.Select) > 0 || len(q.OrderBy) > 0 {
			return fmt.Errorf("%w: what_if cannot be combined with table query clauses", ErrBadQuery)
		}
		w := q.WhatIf
		w.Op = strings.ToLower(w.Op)
		switch w.Op {
		case "substitute":
			if w.From == "" || w.To == "" {
				return fmt.Errorf("%w: substitute needs from and to cells", ErrBadQuery)
			}
			if w.Factor != 0 {
				return fmt.Errorf("%w: substitute takes no factor", ErrBadQuery)
			}
		case "widen":
			if w.Factor <= 0 {
				return fmt.Errorf("%w: widen needs factor > 0", ErrBadQuery)
			}
			if w.From != "" || w.To != "" {
				return fmt.Errorf("%w: widen takes no from/to", ErrBadQuery)
			}
		default:
			return fmt.Errorf("%w: unknown what_if op %q", ErrBadQuery, w.Op)
		}
		if q.Limit != 0 || q.Cursor != "" {
			return fmt.Errorf("%w: what_if results are not paginated", ErrBadQuery)
		}
		return nil
	}
	if q.From == "" {
		return fmt.Errorf("%w: missing from table", ErrBadQuery)
	}
	q.From = strings.ToLower(q.From)
	for i := range q.Where {
		q.Where[i].Op = strings.ToLower(q.Where[i].Op)
		if q.Where[i].Col == "" {
			return fmt.Errorf("%w: where[%d] missing col", ErrBadQuery, i)
		}
		if !validOps[q.Where[i].Op] {
			return fmt.Errorf("%w: where[%d] unknown op %q", ErrBadQuery, i, q.Where[i].Op)
		}
		if len(q.Where[i].Value) == 0 {
			return fmt.Errorf("%w: where[%d] missing value", ErrBadQuery, i)
		}
	}
	if q.Join != nil {
		q.Join.Table = strings.ToLower(q.Join.Table)
		if q.Join.Table == "" || q.Join.LeftCol == "" || q.Join.RightCol == "" {
			return fmt.Errorf("%w: join needs table, left_col, right_col", ErrBadQuery)
		}
		if q.Join.Table == q.From {
			return fmt.Errorf("%w: self-join is not supported", ErrBadQuery)
		}
	}
	if len(q.Select) > 0 && len(q.Aggregate) > 0 {
		return fmt.Errorf("%w: select and aggregate are mutually exclusive", ErrBadQuery)
	}
	if len(q.GroupBy) > 0 && len(q.Aggregate) == 0 {
		return fmt.Errorf("%w: group_by requires aggregate", ErrBadQuery)
	}
	for i := range q.Aggregate {
		a := &q.Aggregate[i]
		a.Op = strings.ToLower(a.Op)
		if !validAggOps[a.Op] {
			return fmt.Errorf("%w: aggregate[%d] unknown op %q", ErrBadQuery, i, a.Op)
		}
		if a.Op != "count" && a.Col == "" {
			return fmt.Errorf("%w: aggregate[%d] %s needs col", ErrBadQuery, i, a.Op)
		}
		if a.As == "" {
			if a.Col == "" {
				a.As = a.Op
			} else {
				a.As = a.Op + "_" + strings.ReplaceAll(a.Col, ".", "_")
			}
		}
	}
	seen := map[string]bool{}
	for _, a := range q.Aggregate {
		if seen[a.As] {
			return fmt.Errorf("%w: duplicate aggregate output name %q", ErrBadQuery, a.As)
		}
		seen[a.As] = true
	}
	for i, o := range q.OrderBy {
		if o.Col == "" {
			return fmt.Errorf("%w: order_by[%d] missing col", ErrBadQuery, i)
		}
	}
	if q.Limit < 0 {
		return fmt.Errorf("%w: negative limit", ErrBadQuery)
	}
	return nil
}

// Canonical renders the normalized query with pagination stripped:
// limit and cursor slice a cached full result at serve time, so they
// must not perturb the cache key. Predicate values are re-marshaled
// through any to erase formatting differences ("1e0" vs "1").
func (q *Query) Canonical() ([]byte, error) {
	c := *q
	c.Limit = 0
	c.Cursor = ""
	c.Where = make([]Pred, len(q.Where))
	for i, p := range q.Where {
		var v any
		if err := json.Unmarshal(p.Value, &v); err != nil {
			return nil, fmt.Errorf("%w: where[%d] value: %v", ErrBadQuery, i, err)
		}
		canon, err := canonicalValue(v)
		if err != nil {
			return nil, fmt.Errorf("%w: where[%d] value: %v", ErrBadQuery, i, err)
		}
		c.Where[i] = Pred{Col: p.Col, Op: p.Op, Value: canon}
	}
	return json.Marshal(&c)
}

// canonicalValue re-marshals a decoded JSON value deterministically
// (encoding/json already sorts map keys; this mainly normalizes number
// formatting).
func canonicalValue(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return json.RawMessage(b), nil
}

// Digest computes the cache key of this query against a library: two
// documents that normalize identically digest identically, and any
// change to the library's artifact digest changes the key.
func (q *Query) Digest(library string) (string, error) {
	canon, err := q.Canonical()
	if err != nil {
		return "", err
	}
	d := digest.New("stdcelltune-query-result/1")
	d.Str("library", library)
	d.Str("query", string(canon))
	return d.Sum(), nil
}

// columnsOf resolves the referenced column name against base and joined
// tables; joined columns are addressed "table.col".
type colRef struct {
	col    *Column
	joined bool // value comes from the joined table via the row's join index
}

func resolveCol(name string, base *Table, join *Table) (colRef, error) {
	if t, c, ok := strings.Cut(name, "."); ok {
		if join != nil && t == join.Name {
			if col := join.Col(c); col != nil {
				return colRef{col: col, joined: true}, nil
			}
			return colRef{}, fmt.Errorf("%w: no column %q in table %q", ErrBadQuery, c, t)
		}
		if t == base.Name {
			if col := base.Col(c); col != nil {
				return colRef{col: col}, nil
			}
			return colRef{}, fmt.Errorf("%w: no column %q in table %q", ErrBadQuery, c, t)
		}
		return colRef{}, fmt.Errorf("%w: unknown table %q in column ref %q", ErrBadQuery, t, name)
	}
	if col := base.Col(name); col != nil {
		return colRef{col: col}, nil
	}
	if join != nil {
		if col := join.Col(name); col != nil {
			return colRef{col: col, joined: true}, nil
		}
	}
	return colRef{}, fmt.Errorf("%w: unknown column %q", ErrBadQuery, name)
}

// sortedKeys is a tiny helper for deterministic map iteration in tests.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
