// Package restrict defines the per-pin operating windows that the
// library tuner emits and synthesis honors: for each output pin of a
// standard cell, minimum and maximum output-load and input-slew values
// that bind synthesis to a section of the cell's look-up table (paper
// Section VI: "for each pin of a standard cell a minimum and maximum slew
// and load value can be defined").
package restrict

import (
	"fmt"
	"sort"
	"strings"
)

// Window is the allowed LUT region of one output pin.
type Window struct {
	MinLoad, MaxLoad float64 // pF
	MinSlew, MaxSlew float64 // ns, input slew of the related pins
}

// Allows reports whether an operating point lies inside the window.
func (w Window) Allows(load, slew float64) bool {
	return load >= w.MinLoad && load <= w.MaxLoad &&
		slew >= w.MinSlew && slew <= w.MaxSlew
}

// Empty reports whether the window excludes every operating point.
func (w Window) Empty() bool { return w.MaxLoad < w.MinLoad || w.MaxSlew < w.MinSlew }

func (w Window) String() string {
	return fmt.Sprintf("load[%.4g,%.4g] slew[%.4g,%.4g]", w.MinLoad, w.MaxLoad, w.MinSlew, w.MaxSlew)
}

// Set is a collection of windows keyed by cell and output pin. A nil
// *Set means "unrestricted".
type Set struct {
	Name    string
	windows map[string]Window
}

// NewSet creates an empty restriction set.
func NewSet(name string) *Set {
	return &Set{Name: name, windows: make(map[string]Window)}
}

func key(cell, pin string) string { return cell + "/" + pin }

// Put stores the window of a cell output pin.
func (s *Set) Put(cell, pin string, w Window) { s.windows[key(cell, pin)] = w }

// Window returns the stored window and whether one exists.
func (s *Set) Window(cell, pin string) (Window, bool) {
	if s == nil {
		return Window{}, false
	}
	w, ok := s.windows[key(cell, pin)]
	return w, ok
}

// Allows reports whether the operating point of the given cell output pin
// is legal. Pins without a stored window are unrestricted. A nil set
// allows everything.
func (s *Set) Allows(cell, pin string, load, slew float64) bool {
	if s == nil {
		return true
	}
	w, ok := s.windows[key(cell, pin)]
	if !ok {
		return true
	}
	return w.Allows(load, slew)
}

// MaxLoad returns the effective maximum load of the pin: the window bound
// if present, otherwise fallback.
func (s *Set) MaxLoad(cell, pin string, fallback float64) float64 {
	if w, ok := s.Window(cell, pin); ok && w.MaxLoad < fallback {
		return w.MaxLoad
	}
	return fallback
}

// MaxSlew returns the effective maximum input slew of the pin: the
// window bound if present, otherwise fallback.
func (s *Set) MaxSlew(cell, pin string, fallback float64) float64 {
	if w, ok := s.Window(cell, pin); ok && w.MaxSlew < fallback {
		return w.MaxSlew
	}
	return fallback
}

// Len returns the number of stored windows.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.windows)
}

// Keys returns the sorted "cell/pin" keys, for reports.
func (s *Set) Keys() []string {
	if s == nil {
		return nil
	}
	ks := make([]string, 0, len(s.windows))
	for k := range s.windows {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// String summarizes the set.
func (s *Set) String() string {
	if s == nil {
		return "unrestricted"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "restriction set %q (%d windows)\n", s.Name, s.Len())
	for _, k := range s.Keys() {
		fmt.Fprintf(&b, "  %-14s %s\n", k, s.windows[k])
	}
	return b.String()
}
