package restrict

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestWindowAllows(t *testing.T) {
	w := Window{MinLoad: 0.001, MaxLoad: 0.02, MinSlew: 0.01, MaxSlew: 0.2}
	cases := []struct {
		load, slew float64
		want       bool
	}{
		{0.01, 0.1, true},
		{0.001, 0.01, true},  // inclusive lower bounds
		{0.02, 0.2, true},    // inclusive upper bounds
		{0.0005, 0.1, false}, // load below
		{0.03, 0.1, false},   // load above
		{0.01, 0.005, false}, // slew below
		{0.01, 0.3, false},   // slew above
	}
	for _, c := range cases {
		if got := w.Allows(c.load, c.slew); got != c.want {
			t.Errorf("Allows(%g,%g)=%v want %v", c.load, c.slew, got, c.want)
		}
	}
}

func TestWindowEmpty(t *testing.T) {
	if (Window{MaxLoad: 1, MaxSlew: 1}).Empty() {
		t.Error("valid window reported empty")
	}
	if !(Window{MinLoad: 2, MaxLoad: 1, MaxSlew: 1}).Empty() {
		t.Error("inverted load window not empty")
	}
	if !(Window{MaxLoad: 1, MinSlew: 2, MaxSlew: 1}).Empty() {
		t.Error("inverted slew window not empty")
	}
	if (Window{MaxLoad: -1, MaxSlew: -1}).Allows(0, 0) {
		t.Error("exclusion window allows the origin")
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet("test")
	if s.Len() != 0 {
		t.Error("new set not empty")
	}
	w := Window{MaxLoad: 0.05, MaxSlew: 0.1}
	s.Put("INV_1", "Y", w)
	got, ok := s.Window("INV_1", "Y")
	if !ok || got != w {
		t.Fatalf("Window lookup: %v %v", got, ok)
	}
	if _, ok := s.Window("INV_1", "Z"); ok {
		t.Error("wrong pin found")
	}
	if !s.Allows("INV_1", "Y", 0.01, 0.05) {
		t.Error("inside window rejected")
	}
	if s.Allows("INV_1", "Y", 0.06, 0.05) {
		t.Error("outside window allowed")
	}
	// Pins without a window are unrestricted.
	if !s.Allows("ND2_4", "Y", 99, 99) {
		t.Error("unwindowed pin restricted")
	}
}

func TestNilSetIsUnrestricted(t *testing.T) {
	var s *Set
	if !s.Allows("X", "Y", 1e9, 1e9) {
		t.Error("nil set restricted")
	}
	if s.Len() != 0 {
		t.Error("nil set length")
	}
	if _, ok := s.Window("X", "Y"); ok {
		t.Error("nil set has windows")
	}
	if s.MaxLoad("X", "Y", 0.5) != 0.5 {
		t.Error("nil MaxLoad fallback")
	}
	if s.MaxSlew("X", "Y", 0.5) != 0.5 {
		t.Error("nil MaxSlew fallback")
	}
	if s.Keys() != nil {
		t.Error("nil keys")
	}
	if s.String() != "unrestricted" {
		t.Errorf("nil String %q", s.String())
	}
}

func TestEffectiveLimits(t *testing.T) {
	s := NewSet("lims")
	s.Put("A_1", "Y", Window{MaxLoad: 0.01, MaxSlew: 0.05})
	// Window tighter than fallback: window wins.
	if got := s.MaxLoad("A_1", "Y", 0.04); got != 0.01 {
		t.Errorf("MaxLoad %g want 0.01", got)
	}
	if got := s.MaxSlew("A_1", "Y", 0.5); got != 0.05 {
		t.Errorf("MaxSlew %g want 0.05", got)
	}
	// Fallback tighter than window: fallback wins.
	if got := s.MaxLoad("A_1", "Y", 0.005); got != 0.005 {
		t.Errorf("MaxLoad %g want fallback 0.005", got)
	}
	// Unknown pin: fallback.
	if got := s.MaxLoad("B_1", "Y", 0.04); got != 0.04 {
		t.Errorf("unknown pin MaxLoad %g", got)
	}
}

func TestKeysSortedAndString(t *testing.T) {
	s := NewSet("str")
	s.Put("ZZ_1", "Y", Window{MaxLoad: 1, MaxSlew: 1})
	s.Put("AA_1", "Y", Window{MaxLoad: 1, MaxSlew: 1})
	s.Put("AA_1", "CO", Window{MaxLoad: 1, MaxSlew: 1})
	keys := s.Keys()
	if len(keys) != 3 {
		t.Fatalf("keys %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatalf("keys not sorted: %v", keys)
		}
	}
	out := s.String()
	for _, want := range []string{"str", "ZZ_1/Y", "AA_1/CO", "3 windows"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

// Property: Allows is consistent with the stored window bounds.
func TestAllowsConsistencyProperty(t *testing.T) {
	s := NewSet("prop")
	w := Window{MinLoad: 0.002, MaxLoad: 0.04, MinSlew: 0.01, MaxSlew: 0.3}
	s.Put("C_1", "Y", w)
	f := func(lu, su uint16) bool {
		load := float64(lu) / float64(1<<16) * 0.08
		slew := float64(su) / float64(1<<16) * 0.6
		want := load >= w.MinLoad && load <= w.MaxLoad && slew >= w.MinSlew && slew <= w.MaxSlew
		return s.Allows("C_1", "Y", load, slew) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
