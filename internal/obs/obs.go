// Package obs is the flow-wide observability layer: a context-propagated
// span tracer with Chrome trace-event export (trace.go), a dependency-free
// metrics registry (metrics.go), level-gated structured logging on
// log/slog (log.go), and the run manifest that makes every experiment
// self-describing (manifest.go). The -debugaddr HTTP surface lives in
// the obs/debughttp subpackage so that importing the instrumentation
// primitives never pulls net/http into a binary.
//
// The design contract, shared by every instrumented package:
//
//   - Disabled is free. A nil *Tracer is a valid tracer whose Start
//     compiles to a nil check; timing metrics are gated behind one
//     atomic bool; the default logger discards. The zero-flag pipeline
//     performs no clock reads on behalf of obs and stays bit-identical.
//   - Clocks are injected. A Tracer owns an explicit clock function, so
//     trace output is deterministic under test and the default pipeline
//     never consults the wall clock through obs.
//   - Propagation is by context. cmd binaries attach a tracer with
//     WithTracer; exp.Flow, the robust pool and stattime pull it back
//     out with TracerFrom and see nil (no-op) when tracing is off.
//
// Phase timing accumulation is backed by internal/perfstat: Run.Phase
// opens the perfstat window and the trace span together, so the
// BENCH JSON schema (stdcelltune-bench/1) and cmd/benchjson keep
// working unchanged on top of the obs layer.
package obs

import (
	"context"
	"sync/atomic"

	"stdcelltune/internal/perfstat"
)

type tracerKey struct{}

// WithTracer attaches a tracer to the context. Attaching nil is allowed
// and yields the same no-op behaviour as an unadorned context.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, tr)
}

// TracerFrom returns the tracer attached to ctx, or nil (the no-op
// tracer) when none is attached.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}

// timingEnabled gates the cheap-but-not-free observations (time.Now
// calls around pool queue waits and task bodies). Off by default so the
// zero-flag pipeline takes no clock reads for obs.
var timingEnabled atomic.Bool

// SetTimingEnabled switches the latency metrics (pool queue wait, task
// duration histograms) on or off process-wide. cmd binaries enable it
// together with -trace or -debugaddr.
func SetTimingEnabled(on bool) { timingEnabled.Store(on) }

// TimingEnabled reports whether latency metrics are being collected.
func TimingEnabled() bool { return timingEnabled.Load() }

// Run bundles the observability state of one pipeline run: the tracer
// (nil when tracing is disabled), the perfstat collector the phase
// timings accumulate into, and the metrics registry. exp.Flow owns one.
type Run struct {
	Tracer  *Tracer
	Perf    *perfstat.Collector
	Metrics *Registry
}

// NewRun builds a Run around the given tracer (nil for no tracing) with
// a fresh perfstat collector and the process-default metrics registry.
func NewRun(tr *Tracer) *Run {
	return &Run{Tracer: tr, Perf: perfstat.New(), Metrics: Default()}
}

// Phase opens a named pipeline phase: a perfstat wall/alloc window and,
// when tracing is on, a span carrying the given attributes. The
// returned function closes both:
//
//	defer run.Phase("synth", "clock", clk)()
func (r *Run) Phase(name string, args ...any) func() {
	stopPerf := r.Perf.Start(name)
	span := r.Tracer.Start(name, "phase", args...)
	return func() {
		span.End()
		stopPerf()
	}
}
