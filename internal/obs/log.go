package obs

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
)

// The obs logger is the single structured-logging chokepoint for the
// pipeline's progress messages. It defaults to a discard handler so the
// zero-flag run emits nothing (and pays one atomic pointer load plus an
// Enabled check per call site); cmd binaries install a real handler via
// InitLog when a log level is requested.

var logPtr atomic.Pointer[slog.Logger]

func init() { logPtr.Store(slog.New(discardHandler{})) }

// Log returns the current obs logger. Never nil.
func Log() *slog.Logger { return logPtr.Load() }

// SetLog installs a logger; nil restores the discarding default.
func SetLog(l *slog.Logger) {
	if l == nil {
		l = slog.New(discardHandler{})
	}
	logPtr.Store(l)
}

// InitLog installs (and returns) a text-handler logger writing to w at
// the given level — the shape cmd binaries want for a -loglevel flag.
func InitLog(w io.Writer, level slog.Level) *slog.Logger {
	l := slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
	SetLog(l)
	return l
}

// ParseLogLevel maps a flag string to a slog level; unknown strings
// (including "") report ok=false, which callers treat as logging off.
func ParseLogLevel(s string) (level slog.Level, ok bool) {
	switch s {
	case "debug":
		return slog.LevelDebug, true
	case "info":
		return slog.LevelInfo, true
	case "warn":
		return slog.LevelWarn, true
	case "error":
		return slog.LevelError, true
	}
	return 0, false
}

// discardHandler drops everything at every level. Written out by hand
// (rather than slog.DiscardHandler) so the module keeps building at its
// declared go 1.22 language version.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
