package obs

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest()
	if m.Schema != ManifestSchema {
		t.Errorf("schema %q", m.Schema)
	}
	if m.GoVersion != runtime.Version() || m.GOOS == "" || m.GOARCH == "" {
		t.Errorf("toolchain fields: %+v", m)
	}
	if m.Created == "" {
		t.Error("created timestamp missing")
	}
	m.Args = []string{"-small", "-trace", "t.json"}
	m.Samples, m.Seed, m.Small = 40, 7, true
	m.WallSeconds = 12.5
	m.Experiments = []string{"fig3", "fig5"}
	m.Quarantined = 2

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Samples != 40 || back.Seed != 7 || !back.Small || back.WallSeconds != 12.5 {
		t.Errorf("round trip lost config: %+v", back)
	}
	if len(back.Experiments) != 2 || back.Quarantined != 2 {
		t.Errorf("round trip lost outcome: %+v", back)
	}
}

func TestReadManifestRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := ReadManifest(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := ReadManifest(write("garbage.json", "{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	p := write("schema.json", `{"schema":"other/9","go_version":"go1.22"}`)
	if _, err := ReadManifest(p); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema accepted (err=%v)", err)
	}
	p = write("nogo.json", `{"schema":"`+ManifestSchema+`"}`)
	if _, err := ReadManifest(p); err == nil || !strings.Contains(err.Error(), "go_version") {
		t.Errorf("missing go_version accepted (err=%v)", err)
	}
}
