package obs

import (
	"math"
	"testing"
	"time"
)

func TestRegistryCountersGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("robust.pool_tasks")
	c.Add(3)
	if r.Counter("robust.pool_tasks") != c {
		t.Error("Counter not idempotent")
	}
	c.Add(2)
	if got := c.Value(); got != 5 {
		t.Errorf("counter %d want 5", got)
	}

	g := r.Gauge("queue.depth")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge %g want 2.5", got)
	}

	r.GaugeFunc("lut.hint_hit_ratio", func() float64 { return 0.75 })
	snap := r.Snapshot()
	if snap["robust.pool_tasks"] != int64(5) {
		t.Errorf("snapshot counter = %v", snap["robust.pool_tasks"])
	}
	if snap["queue.depth"] != 2.5 {
		t.Errorf("snapshot gauge = %v", snap["queue.depth"])
	}
	if snap["lut.hint_hit_ratio"] != 0.75 {
		t.Errorf("snapshot gauge func = %v", snap["lut.hint_hit_ratio"])
	}
}

// NaN/Inf from a computed gauge (e.g. a 0/0 hit ratio before any
// lookups) must not poison the JSON snapshot.
func TestSnapshotSanitizesNaN(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("nan", func() float64 { return math.NaN() })
	r.GaugeFunc("inf", func() float64 { return math.Inf(1) })
	snap := r.Snapshot()
	if snap["nan"] != -1.0 || snap["inf"] != -1.0 {
		t.Errorf("snapshot = %v, want NaN/Inf reported as -1", snap)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond) // ~2^20 ns bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond) // ~2^27 ns bucket
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Errorf("count %d want 100", s.Count)
	}
	if math.Abs(s.SumMS-(90+10*100)) > 1e-6 {
		t.Errorf("sum %g ms want 1090", s.SumMS)
	}
	// Quantiles interpolate inside the containing power-of-two bucket:
	// 1 ms lives in bucket 19 ([2^19, 2^20) ns ≈ [0.52, 1.05) ms), 100 ms
	// in bucket 26 ([2^26, 2^27) ns ≈ [67, 134) ms). The estimate must
	// land inside its bucket — no more upper-bound bias.
	if s.P50MS < 0.52 || s.P50MS > 1.05 {
		t.Errorf("p50 %g ms outside its bucket [0.52,1.05]", s.P50MS)
	}
	if s.P99MS < 67 || s.P99MS > 135 {
		t.Errorf("p99 %g ms outside its bucket [67,135]", s.P99MS)
	}
	if s.P50MS > s.P90MS || s.P90MS > s.P99MS {
		t.Errorf("quantiles not monotone: %g %g %g", s.P50MS, s.P90MS, s.P99MS)
	}
}

// Regression for the upper-bound bias: quantiles of known
// distributions must land inside the containing bucket (error bounded
// by the bucket width, i.e. within a factor of 2 of the true value),
// not at the bucket's upper bound.
func TestHistogramQuantileInterpolation(t *testing.T) {
	// Point mass: 1000 identical observations of 10 µs (10240 ns, bucket
	// 13 = [8192, 16384) ns). Every quantile must stay inside the bucket.
	point := &Histogram{}
	for i := 0; i < 1000; i++ {
		point.ObserveN(10240)
	}
	s := point.Summary()
	for _, q := range []float64{s.P50MS, s.P90MS, s.P99MS} {
		if q < 8192.0/1e6 || q >= 16384.0/1e6 {
			t.Errorf("point-mass quantile %g ms escaped bucket [0.008192, 0.016384)", q)
		}
	}

	// Uniform over [1, 4096] ns: true p50 = 2048, p90 = 3687, p99 = 4056.
	uni := &Histogram{}
	for v := int64(1); v <= 4096; v++ {
		uni.ObserveN(v)
	}
	u := uni.Summary()
	for _, tc := range []struct {
		name string
		got  float64 // ms
		want float64 // ns
	}{
		{"p50", u.P50MS, 2048}, {"p90", u.P90MS, 3687}, {"p99", u.P99MS, 4056},
	} {
		gotNS := tc.got * 1e6
		if gotNS < tc.want/2 || gotNS > tc.want*2 {
			t.Errorf("uniform %s = %.0f ns, want within 2x of %.0f", tc.name, gotNS, tc.want)
		}
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := &Histogram{}
	h.Observe(-time.Second)        // clamped to 0
	h.Observe(0)
	h.Observe(time.Hour)           // beyond the last bucket boundary
	if h.Count() != 3 {
		t.Errorf("count %d want 3", h.Count())
	}
	s := h.Summary()
	if math.IsNaN(s.P99MS) || math.IsInf(s.P99MS, 0) {
		t.Errorf("p99 %g not finite", s.P99MS)
	}
	if s.SumMS < 3_600_000-1 {
		t.Errorf("sum %g lost the hour", s.SumMS)
	}
}

func TestEmptyHistogramSummary(t *testing.T) {
	s := (&Histogram{}).Summary()
	if s.Count != 0 || s.P50MS != 0 || s.P99MS != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c")
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Errorf("names %v", names)
	}
}

func TestDefaultRegistrySingleton(t *testing.T) {
	if Default() != Default() {
		t.Error("Default() not a singleton")
	}
}
