package obs

import (
	"math"
	"testing"
	"time"
)

func TestRegistryCountersGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("robust.pool_tasks")
	c.Add(3)
	if r.Counter("robust.pool_tasks") != c {
		t.Error("Counter not idempotent")
	}
	c.Add(2)
	if got := c.Value(); got != 5 {
		t.Errorf("counter %d want 5", got)
	}

	g := r.Gauge("queue.depth")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge %g want 2.5", got)
	}

	r.GaugeFunc("lut.hint_hit_ratio", func() float64 { return 0.75 })
	snap := r.Snapshot()
	if snap["robust.pool_tasks"] != int64(5) {
		t.Errorf("snapshot counter = %v", snap["robust.pool_tasks"])
	}
	if snap["queue.depth"] != 2.5 {
		t.Errorf("snapshot gauge = %v", snap["queue.depth"])
	}
	if snap["lut.hint_hit_ratio"] != 0.75 {
		t.Errorf("snapshot gauge func = %v", snap["lut.hint_hit_ratio"])
	}
}

// NaN/Inf from a computed gauge (e.g. a 0/0 hit ratio before any
// lookups) must not poison the JSON snapshot.
func TestSnapshotSanitizesNaN(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("nan", func() float64 { return math.NaN() })
	r.GaugeFunc("inf", func() float64 { return math.Inf(1) })
	snap := r.Snapshot()
	if snap["nan"] != -1.0 || snap["inf"] != -1.0 {
		t.Errorf("snapshot = %v, want NaN/Inf reported as -1", snap)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond) // ~2^20 ns bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond) // ~2^27 ns bucket
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Errorf("count %d want 100", s.Count)
	}
	if math.Abs(s.SumMS-(90+10*100)) > 1e-6 {
		t.Errorf("sum %g ms want 1090", s.SumMS)
	}
	// Quantiles are upper bucket bounds: p50 lands in the 1 ms bucket
	// (bound 2^20 ns ≈ 2.1 ms), p99 in the 100 ms bucket (bound 2^27 ns
	// ≈ 268 ms, i.e. within [100, 537) ms).
	if s.P50MS < 1 || s.P50MS > 5 {
		t.Errorf("p50 %g ms outside [1,5]", s.P50MS)
	}
	if s.P99MS < 100 || s.P99MS > 537 {
		t.Errorf("p99 %g ms outside [100,537]", s.P99MS)
	}
	if s.P50MS > s.P90MS || s.P90MS > s.P99MS {
		t.Errorf("quantiles not monotone: %g %g %g", s.P50MS, s.P90MS, s.P99MS)
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := &Histogram{}
	h.Observe(-time.Second)        // clamped to 0
	h.Observe(0)
	h.Observe(time.Hour)           // beyond the last bucket boundary
	if h.Count() != 3 {
		t.Errorf("count %d want 3", h.Count())
	}
	s := h.Summary()
	if math.IsNaN(s.P99MS) || math.IsInf(s.P99MS, 0) {
		t.Errorf("p99 %g not finite", s.P99MS)
	}
	if s.SumMS < 3_600_000-1 {
		t.Errorf("sum %g lost the hour", s.SumMS)
	}
}

func TestEmptyHistogramSummary(t *testing.T) {
	s := (&Histogram{}).Summary()
	if s.Count != 0 || s.P50MS != 0 || s.P99MS != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c")
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Errorf("names %v", names)
	}
}

func TestDefaultRegistrySingleton(t *testing.T) {
	if Default() != Default() {
		t.Error("Default() not a singleton")
	}
}
