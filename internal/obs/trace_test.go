package obs

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock: the golden trace depends only on
// the Advance calls in the test, never on the wall clock.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock           { return &fakeClock{now: time.Unix(1000, 0)} }
func (c *fakeClock) Now() time.Time      { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

// buildGoldenTrace replays a fixed scenario with nested and overlapping
// spans: an outer flow span, a nested synth span that closes before two
// pool spans open concurrently. Lane assignment and timestamps are fully
// determined by the fake clock.
func buildGoldenTrace() *Tracer {
	clk := newFakeClock()
	tr := NewTracer(clk.Now)

	outer := tr.Start("flow", "phase", "samples", 40)
	clk.Advance(time.Millisecond)

	inner := tr.Start("synth", "phase") // nested: lane 2
	clk.Advance(2 * time.Millisecond)
	inner.End()

	clk.Advance(time.Millisecond)
	a := tr.Start("stattime.paths", "pool", "tasks", 3) // reuses lane 2
	b := tr.Start("variation.instances", "pool")        // overlaps: lane 3
	clk.Advance(5 * time.Millisecond)
	a.End()
	b.End()

	outer.Set("note", "done")
	clk.Advance(time.Millisecond)
	outer.End()
	return tr
}

func TestGoldenChromeTrace(t *testing.T) {
	tr := buildGoldenTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1 go test ./internal/obs)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace diverged from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// The lane allocator must give nested/overlapping spans distinct Chrome
// tids and hand freed lanes back lowest-first.
func TestLaneAssignment(t *testing.T) {
	tr := buildGoldenTrace()
	lanes := map[string]int{}
	for _, ev := range tr.events {
		lanes[ev.Name] = ev.TID
	}
	want := map[string]int{
		"flow":                1,
		"synth":               2,
		"stattime.paths":      2, // synth's lane, freed before it started
		"variation.instances": 3,
	}
	for name, lane := range want {
		if lanes[name] != lane {
			t.Errorf("%s on lane %d want %d", name, lanes[name], lane)
		}
	}
	if n := tr.EventCount(); n != 4 {
		t.Errorf("EventCount %d want 4", n)
	}
}

// A nil tracer (tracing off) must be safe everywhere and cost nothing:
// nil spans from TracerFrom on a bare context no-op End and Set.
func TestNilTracerIsNoOp(t *testing.T) {
	tr := TracerFrom(context.Background())
	if tr != nil {
		t.Fatalf("bare context yielded tracer %v", tr)
	}
	span := tr.Start("anything", "cat", "k", "v")
	if span != nil {
		t.Fatalf("nil tracer returned span %v", span)
	}
	span.Set("k", 1) // must not panic
	span.End()       // must not panic
	if tr.EventCount() != 0 {
		t.Error("nil tracer counted events")
	}
	if tr.Active() != nil {
		t.Error("nil tracer has active spans")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("WriteChromeTrace on nil tracer did not error")
	}
}

func TestWithTracerRoundTrip(t *testing.T) {
	tr := NewTracer(newFakeClock().Now)
	ctx := WithTracer(context.Background(), tr)
	if got := TracerFrom(ctx); got != tr {
		t.Errorf("TracerFrom = %p want %p", got, tr)
	}
	// Attaching nil explicitly behaves like no tracer.
	if got := TracerFrom(WithTracer(context.Background(), nil)); got != nil {
		t.Errorf("nil attachment yielded %p", got)
	}
}

func TestActiveOrdersLongestFirst(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracer(clk.Now)
	old := tr.Start("old", "phase")
	clk.Advance(10 * time.Millisecond)
	young := tr.Start("young", "phase")
	clk.Advance(time.Millisecond)

	act := tr.Active()
	if len(act) != 2 {
		t.Fatalf("%d active spans want 2", len(act))
	}
	if act[0].Name != "old" || act[1].Name != "young" {
		t.Errorf("order %s,%s want old,young", act[0].Name, act[1].Name)
	}
	if act[0].ElapsedMS != 11 || act[1].ElapsedMS != 1 {
		t.Errorf("elapsed %v,%v want 11,1", act[0].ElapsedMS, act[1].ElapsedMS)
	}
	young.End()
	old.End()
	if len(tr.Active()) != 0 {
		t.Error("spans still active after End")
	}
}

// Concurrent span traffic through one tracer must be race-free (run
// under -race) and lose no events.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(nil)
	done := make(chan struct{})
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				s := tr.Start("task", "pool")
				s.Set("i", i)
				s.End()
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if n := tr.EventCount(); n != workers*per {
		t.Errorf("EventCount %d want %d", n, workers*per)
	}
}

func TestArgMap(t *testing.T) {
	m := argMap([]any{"a", 1, 2, "b", "dangling"})
	if m["a"] != 1 {
		t.Errorf("a = %v", m["a"])
	}
	if m["2"] != "b" {
		t.Errorf("non-string key folded to %v", m["2"])
	}
	if v, ok := m["dangling"]; !ok || v != nil {
		t.Errorf("dangling key = %v ok=%v, want nil entry", v, ok)
	}
}
