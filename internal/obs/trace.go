package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Tracer records spans and exports them as Chrome trace-event JSON
// (load the file at chrome://tracing or https://ui.perfetto.dev). The
// clock is injected at construction so tests produce byte-stable
// traces; a nil *Tracer is the no-op tracer: Start returns a nil span
// and costs one pointer check.
//
// Overlapping spans are assigned to "lanes" (Chrome thread ids): a span
// takes the lowest lane that is free at its start and returns it at
// End, so concurrent work renders as parallel rows instead of one
// unreadable pile.
type Tracer struct {
	clock func() time.Time
	start time.Time

	mu     sync.Mutex
	events []chromeEvent
	lanes  []bool // lanes[i]: lane i+1 currently occupied
	active map[*Span]struct{}
	sink   func(SpanEvent)
}

// SpanEvent is one completed span as delivered to an event sink: the
// live-streaming mirror of the Chrome trace event the tracer records.
// The service daemon forwards these over SSE as job progress.
type SpanEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	TS   int64          `json:"ts_us"`  // start, µs since tracer epoch
	Dur  int64          `json:"dur_us"` // duration, µs
	Args map[string]any `json:"args,omitempty"`
}

// SetSink registers a callback receiving every span as it ends, in End
// order. The sink runs outside the tracer lock but on the ending span's
// goroutine, so it must be cheap and non-blocking (buffer and return).
// A nil fn removes the sink. Streaming does not replace recording: sunk
// spans still appear in the exported Chrome trace.
func (t *Tracer) SetSink(fn func(SpanEvent)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// Span is one open span. Methods on a nil span are no-ops, mirroring
// the nil tracer.
type Span struct {
	tr   *Tracer
	name string
	cat  string
	lane int
	t0   time.Duration
	args map[string]any
}

// NewTracer creates a tracer reading the given clock; nil means
// time.Now. The first clock read anchors ts zero of the exported trace.
func NewTracer(clock func() time.Time) *Tracer {
	if clock == nil {
		clock = time.Now
	}
	return &Tracer{clock: clock, start: clock(), active: make(map[*Span]struct{})}
}

// Start opens a span with a name, a category (rendered as the Chrome
// event category, e.g. "phase" or "pool"), and alternating key/value
// attribute pairs. Safe for concurrent use; returns nil on a nil
// tracer.
func (t *Tracer) Start(name, cat string, args ...any) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, cat: cat, t0: t.clock().Sub(t.start)}
	if len(args) > 0 {
		s.args = argMap(args)
	}
	t.mu.Lock()
	s.lane = t.acquireLane()
	t.active[s] = struct{}{}
	t.mu.Unlock()
	return s
}

// Set attaches (or overwrites) one attribute on an open span.
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.args == nil {
		s.args = make(map[string]any, 1)
	}
	s.args[key] = v
	s.tr.mu.Unlock()
}

// End closes the span, emitting one complete ("ph":"X") trace event.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	end := t.clock().Sub(t.start)
	t.mu.Lock()
	t.releaseLane(s.lane)
	delete(t.active, s)
	t.events = append(t.events, chromeEvent{
		Name: s.name, Cat: s.cat, Ph: "X",
		TS: s.t0.Microseconds(), Dur: (end - s.t0).Microseconds(),
		PID: 1, TID: s.lane, Args: s.args,
	})
	sink := t.sink
	t.mu.Unlock()
	// The sink is invoked outside the lock so a slow consumer cannot
	// stall concurrent Start/End calls.
	if sink != nil {
		sink(SpanEvent{Name: s.name, Cat: s.cat, TS: s.t0.Microseconds(), Dur: (end - s.t0).Microseconds(), Args: s.args})
	}
}

// acquireLane returns the lowest free lane id (1-based). Caller holds mu.
func (t *Tracer) acquireLane() int {
	for i, used := range t.lanes {
		if !used {
			t.lanes[i] = true
			return i + 1
		}
	}
	t.lanes = append(t.lanes, true)
	return len(t.lanes)
}

// releaseLane frees a lane id. Caller holds mu.
func (t *Tracer) releaseLane(lane int) {
	if lane >= 1 && lane <= len(t.lanes) {
		t.lanes[lane-1] = false
	}
}

// ActiveSpan is a snapshot of one span still open, for the debug
// endpoint's "what is the pipeline doing right now".
type ActiveSpan struct {
	Name      string  `json:"name"`
	Cat       string  `json:"cat"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Active returns the currently open spans, longest-running first.
func (t *Tracer) Active() []ActiveSpan {
	if t == nil {
		return nil
	}
	now := t.clock().Sub(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ActiveSpan, 0, len(t.active))
	for s := range t.active {
		out = append(out, ActiveSpan{Name: s.name, Cat: s.cat, ElapsedMS: float64((now - s.t0).Microseconds()) / 1e3})
	}
	// Longest elapsed first; ties broken by name so the order is stable.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].ElapsedMS > out[j-1].ElapsedMS ||
			(out[j].ElapsedMS == out[j-1].ElapsedMS && out[j].Name < out[j-1].Name)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event format ("X" =
// complete event with explicit duration; "M" = metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavour of the format; the top-level
// keys beyond traceEvents are ignored by the viewer but make the file
// self-describing.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes every ended span (spans still open are
// skipped — End them first) as indented Chrome trace-event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteChromeTrace on nil tracer")
	}
	t.mu.Lock()
	events := make([]chromeEvent, 0, len(t.events)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "stdcelltune"},
	})
	events = append(events, t.events...)
	t.mu.Unlock()
	data, err := json.MarshalIndent(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteChromeTraceFile is WriteChromeTrace to a file path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// EventCount returns the number of completed spans recorded so far.
func (t *Tracer) EventCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// argMap folds alternating key/value pairs into a map; a trailing
// half-pair keeps the key with a nil value rather than panicking.
func argMap(kv []any) map[string]any {
	m := make(map[string]any, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			k = fmt.Sprint(kv[i])
		}
		if i+1 < len(kv) {
			m[k] = kv[i+1]
		} else {
			m[k] = nil
		}
	}
	return m
}
