package obs

import (
	"bytes"
	"log/slog"
	"testing"
	"time"
)

// Run.Phase must open the perfstat window and the trace span together
// and close both, so bench JSON and trace describe the same work.
func TestRunPhase(t *testing.T) {
	clk := newFakeClock()
	run := NewRun(NewTracer(clk.Now))
	stop := run.Phase("synth", "clock", 2.8)
	clk.Advance(3 * time.Millisecond)
	stop()

	if n := run.Tracer.EventCount(); n != 1 {
		t.Fatalf("%d trace events want 1", n)
	}
	ev := run.Tracer.events[0]
	if ev.Name != "synth" || ev.Cat != "phase" || ev.Dur != 3000 {
		t.Errorf("event %+v, want synth/phase with dur 3000µs", ev)
	}
	phases := run.Perf.Phases()
	if len(phases) != 1 || phases[0].Name != "synth" || phases[0].Count != 1 {
		t.Errorf("perfstat phases %+v", phases)
	}
}

// With tracing off (nil tracer), Phase still accumulates perfstat so
// -benchjson works without -trace.
func TestRunPhaseNilTracer(t *testing.T) {
	run := NewRun(nil)
	run.Phase("fold")()
	if got := run.Perf.Phases(); len(got) != 1 || got[0].Name != "fold" {
		t.Errorf("perfstat phases %+v", got)
	}
	if run.Tracer.EventCount() != 0 {
		t.Error("nil tracer recorded events")
	}
}

func TestTimingEnabledToggle(t *testing.T) {
	if TimingEnabled() {
		t.Fatal("timing enabled by default")
	}
	SetTimingEnabled(true)
	if !TimingEnabled() {
		t.Error("enable did not stick")
	}
	SetTimingEnabled(false)
	if TimingEnabled() {
		t.Error("disable did not stick")
	}
}

func TestLogDefaultDiscardsAndInitInstalls(t *testing.T) {
	defer SetLog(nil)
	if Log() == nil {
		t.Fatal("Log() nil")
	}
	if Log().Enabled(nil, slog.LevelError) {
		t.Error("default logger not discarding")
	}
	var buf bytes.Buffer
	InitLog(&buf, slog.LevelInfo)
	Log().Debug("hidden")
	Log().Info("shown", "k", "v")
	out := buf.String()
	if bytes.Contains(buf.Bytes(), []byte("hidden")) {
		t.Errorf("debug leaked below level: %q", out)
	}
	if !bytes.Contains(buf.Bytes(), []byte("shown")) || !bytes.Contains(buf.Bytes(), []byte("k=v")) {
		t.Errorf("info line missing attrs: %q", out)
	}
	SetLog(nil)
	if Log().Enabled(nil, slog.LevelError) {
		t.Error("SetLog(nil) did not restore discard")
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]struct {
		level slog.Level
		ok    bool
	}{
		"debug": {slog.LevelDebug, true},
		"info":  {slog.LevelInfo, true},
		"warn":  {slog.LevelWarn, true},
		"error": {slog.LevelError, true},
		"":      {0, false},
		"loud":  {0, false},
	}
	for s, want := range cases {
		level, ok := ParseLogLevel(s)
		if ok != want.ok || (ok && level != want.level) {
			t.Errorf("ParseLogLevel(%q) = %v,%v want %v,%v", s, level, ok, want.level, want.ok)
		}
	}
}
