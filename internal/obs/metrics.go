package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a flat, dependency-free metrics namespace: counters
// (monotonic int64), gauges (float64, settable), gauge funcs (computed
// on read — ratios live here), and log2-bucketed duration histograms.
// Get-or-create accessors make instrumentation sites declaration-free
// and idempotent. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
	hdrs       map[string]*HDRHistogram

	// Labeled families (prom.go): get-or-create vecs whose children are
	// keyed by label values. Exposition renders them as Prometheus
	// series; Snapshot flattens them as name{k="v"} entries.
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	hdrVecs     map[string]*HDRVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		gaugeFuncs:  make(map[string]func() float64),
		hists:       make(map[string]*Histogram),
		hdrs:        make(map[string]*HDRHistogram),
		counterVecs: make(map[string]*CounterVec),
		gaugeVecs:   make(map[string]*GaugeVec),
		hdrVecs:     make(map[string]*HDRVec),
	}
}

var (
	defaultRegistry     *Registry
	defaultRegistryOnce sync.Once
)

// Default returns the process-wide registry every instrumented package
// records into.
func Default() *Registry {
	defaultRegistryOnce.Do(func() { defaultRegistry = NewRegistry() })
	return defaultRegistry
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers (or replaces) a computed gauge evaluated at
// snapshot time — the natural shape for ratios like lut.hint_hit_ratio.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	r.mu.Lock()
	r.gaugeFuncs[name] = f
	r.mu.Unlock()
}

// Histogram returns (creating on first use) the named duration
// histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HDR returns (creating on first use) the named high-resolution
// log-linear histogram (hdr.go) — the serving-path latency shape.
func (r *Registry) HDR(name string) *HDRHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hdrs[name]
	if !ok {
		h = &HDRHistogram{}
		r.hdrs[name] = h
	}
	return h
}

// Snapshot renders every metric into a plain JSON-marshalable map:
// counters and gauges by value, histograms as {count, sum_ms, p50_ms,
// p90_ms, p99_ms}. Computed gauges are evaluated here; a NaN result is
// reported as -1 so the snapshot stays valid JSON.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.gaugeFuncs)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, f := range r.gaugeFuncs {
		v := f()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = -1
		}
		out[name] = v
	}
	for name, h := range r.hists {
		out[name] = h.Summary()
	}
	for name, h := range r.hdrs {
		out[name] = h.Summary()
	}
	for _, v := range r.counterVecs {
		v.each(func(series string, c *Counter) { out[series] = c.Value() })
	}
	for _, v := range r.gaugeVecs {
		v.each(func(series string, g *Gauge) { out[series] = g.Value() })
	}
	for _, v := range r.hdrVecs {
		v.each(func(series string, h *HDRHistogram) { out[series] = h.Summary() })
	}
	return out
}

// Names returns every metric name in sorted order.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (negative to decrement) — the
// in-flight-request shape. Lock-free via compare-and-swap.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the bucket count of Histogram: bucket i counts
// observations with floor(log2(ns)) == i, covering 1 ns up to ~9.2 s in
// the last bucket.
const histBuckets = 64

// Histogram accumulates durations into power-of-two nanosecond buckets.
// Observe is lock-free (one atomic add per bucket); quantiles are
// approximate (upper bucket bound), which is plenty for "where does the
// time go" debugging.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveN(d.Nanoseconds()) }

// ObserveN records one unitless observation of magnitude n — e.g. the
// dirty-cone size of an incremental timing update. Magnitudes share the
// log2 bucket layout with durations; a unitless histogram's Summary
// quantiles are then plain powers of two scaled by 1e-6 in the *MS
// fields (the sta.dirty_cone consumer in cmd/obscheck only checks
// counts, which are unit-free).
func (h *Histogram) ObserveN(n int64) {
	if n < 0 {
		n = 0
	}
	h.count.Add(1)
	h.sumNS.Add(n)
	b := 0
	for v := n; v > 1 && b < histBuckets-1; v >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistSummary is the JSON rendering of a histogram.
type HistSummary struct {
	Count int64   `json:"count"`
	SumMS float64 `json:"sum_ms"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Summary renders counts and approximate quantiles. A quantile is
// interpolated linearly inside its power-of-two bucket (bucket b >= 1
// covers [2^b, 2^(b+1)) ns; bucket 0 covers [0, 2)), so the reported
// value always lies inside the containing bucket: the error is bounded
// by the bucket width (a factor of 2 in the value), with no systematic
// upper-bound bias. For tighter error on serving paths use
// HDRHistogram, whose sub-bucketed buckets bound the relative error at
// 1/32.
func (h *Histogram) Summary() HistSummary {
	var counts [histBuckets]int64
	total := int64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistSummary{Count: h.count.Load(), SumMS: float64(h.sumNS.Load()) / 1e6}
	if total == 0 {
		return s
	}
	q := func(p float64) float64 {
		target := int64(math.Ceil(p * float64(total)))
		if target < 1 {
			target = 1
		}
		seen := int64(0)
		for i, c := range counts {
			if seen+c >= target {
				low := 0.0
				if i > 0 {
					low = math.Pow(2, float64(i))
				}
				high := math.Pow(2, float64(i+1))
				frac := float64(target-seen) / float64(c)
				return (low + frac*(high-low)) / 1e6 // interpolated within the bucket, in ms
			}
			seen += c
		}
		return math.Pow(2, histBuckets) / 1e6
	}
	s.P50MS, s.P90MS, s.P99MS = q(0.50), q(0.90), q(0.99)
	return s
}
