package obs

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// The bucket index and bounds must agree: every value lands in a
// bucket whose [low, high) range contains it, contiguously.
func TestHDRIndexBoundsAgree(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<20 + 12345, 1 << 40, hdrMaxValue}
	for i := int64(0); i < 4096; i++ {
		vals = append(vals, i)
	}
	for _, v := range vals {
		i := hdrIndex(v)
		low, high := hdrBounds(i)
		if v < low || v >= high {
			t.Fatalf("value %d -> bucket %d [%d,%d) does not contain it", v, i, low, high)
		}
	}
	// Buckets tile the axis up to the clamped maximum: bucket i+1 starts
	// where bucket i ends. (Buckets above hdrMaxValue are unreachable;
	// their bounds may overflow and are excluded.)
	for i := 0; i < hdrIndex(hdrMaxValue); i++ {
		_, high := hdrBounds(i)
		low, _ := hdrBounds(i + 1)
		if high != low {
			t.Fatalf("gap between bucket %d (high %d) and %d (low %d)", i, high, i+1, low)
		}
	}
}

// Quantiles of a known uniform distribution must land within the
// documented relative error bound (1/hdrSubCount plus interpolation
// slack within one sub-bucket).
func TestHDRQuantileAccuracy(t *testing.T) {
	h := &HDRHistogram{}
	const n = 100000
	rng := rand.New(rand.NewSource(42))
	samples := make([]int64, n)
	for i := range samples {
		// Log-uniform over [1us, 1s) to exercise many octaves.
		v := int64(math.Exp(rng.Float64()*math.Log(1e9/1e3)) * 1e3)
		samples[i] = v
		h.Record(v)
	}
	exact := append([]int64(nil), samples...)
	sortInt64(exact)
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		idx := int(math.Ceil(p*float64(n))) - 1
		want := float64(exact[idx])
		got := h.Quantile(p)
		relErr := math.Abs(got-want) / want
		if relErr > 2.0/hdrSubCount {
			t.Errorf("p%.3f: got %.0f want %.0f (rel err %.4f > %.4f)", p, got, want, relErr, 2.0/hdrSubCount)
		}
	}
}

func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestHDRQuantileSmallExact(t *testing.T) {
	h := &HDRHistogram{}
	for v := int64(1); v <= 10; v++ {
		h.Record(v)
	}
	// Values below hdrSubCount sit in unit-width buckets: quantiles are
	// exact up to the +1 interpolation inside the unit bucket.
	if q := h.Quantile(0.5); q < 5 || q > 6 {
		t.Errorf("p50 = %g, want in [5,6]", q)
	}
	if q := h.Quantile(1.0); q < 10 || q > 11 {
		t.Errorf("p100 = %g, want in [10,11]", q)
	}
}

func TestHDRMergeEquivalence(t *testing.T) {
	a, b, both := &HDRHistogram{}, &HDRHistogram{}, &HDRHistogram{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 30)
		both.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := both.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum {
		t.Fatalf("merged count/sum %d/%d, want %d/%d", merged.Count, merged.Sum, want.Count, want.Sum)
	}
	for i := range want.Counts {
		if merged.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: merged %d want %d", i, merged.Counts[i], want.Counts[i])
		}
	}
	for _, p := range []float64{0.5, 0.99} {
		if g, w := merged.Quantile(p), want.Quantile(p); g != w {
			t.Errorf("p%g: merged %g, combined %g", p, g, w)
		}
	}
}

func TestHDREdgeCases(t *testing.T) {
	h := &HDRHistogram{}
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile %g, want 0", q)
	}
	h.Observe(-time.Second) // clamps to 0
	h.Record(math.MaxInt64)
	if h.Count() != 2 {
		t.Errorf("count %d want 2", h.Count())
	}
	s := h.Summary()
	if s.Count != 2 || math.IsNaN(s.P999MS) || math.IsInf(s.P999MS, 0) {
		t.Errorf("summary %+v not finite", s)
	}
	if s.P50MS > s.P90MS || s.P90MS > s.P99MS || s.P99MS > s.P999MS {
		t.Errorf("quantiles not monotone: %+v", s)
	}
}

func TestHDRRegistryIntegration(t *testing.T) {
	r := NewRegistry()
	h := r.HDR("svc.latency")
	if r.HDR("svc.latency") != h {
		t.Fatal("HDR not idempotent")
	}
	h.Observe(2 * time.Millisecond)
	snap := r.Snapshot()
	sum, ok := snap["svc.latency"].(HDRSummary)
	if !ok {
		t.Fatalf("snapshot entry %T, want HDRSummary", snap["svc.latency"])
	}
	if sum.Count != 1 || sum.P50MS < 1.9 || sum.P50MS > 2.2 {
		t.Errorf("summary %+v", sum)
	}
}
