// Package debughttp serves the -debugaddr surface: expvar, pprof and
// the live obs snapshot. It lives in its own package so that importing
// the obs instrumentation primitives (which every pipeline package
// does) never drags net/http into a binary that didn't ask for the
// debug server.
package debughttp

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"stdcelltune/internal/obs"
)

// DebugState is what the debug server needs from the running pipeline.
// Tracer may be nil (the "current phase" list is then empty).
type DebugState struct {
	Tracer  *obs.Tracer
	Metrics *obs.Registry
	// Extra is merged into the /debug/obs JSON (run identity, flags).
	Extra map[string]any
}

// Serve binds addr and serves the debug surface in a background
// goroutine:
//
//	/debug/vars          expvar (includes the "obs" metrics map)
//	/debug/pprof/...     net/http/pprof profiles
//	/debug/obs           JSON: current phase (open spans) + metric snapshot
//	/metrics             Prometheus text exposition (format 0.0.4)
//
// The registry is published to expvar as a side effect. The listener is
// bound synchronously so the caller learns the real address (addr may
// use port 0) and a bad address fails fast; the server itself runs
// until the process exits.
func Serve(addr string, st DebugState) (*http.Server, string, error) {
	if st.Metrics == nil {
		st.Metrics = obs.Default()
	}
	publishExpvar(st.Metrics)

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		snap := map[string]any{
			"active_spans": st.Tracer.Active(),
			"metrics":      st.Metrics.Snapshot(),
			"time":         time.Now().Format(time.RFC3339),
		}
		for k, v := range st.Extra {
			snap[k] = v
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		st.Metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("stdcelltune debug server\n\n/debug/obs\n/debug/vars\n/debug/pprof/\n/metrics\n"))
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// expvar.Publish panics on duplicate names, so the registry is exported
// once per process regardless of how many servers are started.
var publishOnce sync.Once

func publishExpvar(r *obs.Registry) {
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any { return r.Snapshot() }))
	})
}
