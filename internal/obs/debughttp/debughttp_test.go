package debughttp

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"stdcelltune/internal/obs"
	"stdcelltune/internal/sta"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestServeDebugSurface(t *testing.T) {
	reg := obs.Default()
	reg.Counter("robust.quarantined_cells").Add(2)
	reg.GaugeFunc("lut.hint_hit_ratio", func() float64 { return 0.5 })
	reg.GaugeFunc("sta.incremental_ratio", sta.IncrementalRatio)
	tr := obs.NewTracer(nil)
	span := tr.Start("synth", "phase")
	defer span.End()

	srv, addr, err := Serve("127.0.0.1:0", DebugState{
		Tracer:  tr,
		Metrics: reg,
		Extra:   map[string]any{"args": []string{"-small"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// /debug/vars: expvar JSON with the "obs" map carrying our metrics.
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get(t, "http://"+addr+"/debug/vars"), &vars); err != nil {
		t.Fatal(err)
	}
	obsVar, ok := vars["obs"]
	if !ok {
		t.Fatalf("expvar missing obs map; have %v", keys(vars))
	}
	var metrics map[string]any
	if err := json.Unmarshal(obsVar, &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics["robust.quarantined_cells"] != 2.0 {
		t.Errorf("quarantined_cells = %v", metrics["robust.quarantined_cells"])
	}
	if metrics["lut.hint_hit_ratio"] != 0.5 {
		t.Errorf("hint_hit_ratio = %v", metrics["lut.hint_hit_ratio"])
	}
	// The incremental-STA ratio gauge must be served and in range —
	// cmd/experiments registers it next to the LUT hint ratio.
	if r, ok := metrics["sta.incremental_ratio"].(float64); !ok || r < 0 || r > 1 {
		t.Errorf("sta.incremental_ratio = %v, want float64 in [0,1]", metrics["sta.incremental_ratio"])
	}

	// /debug/obs: live snapshot with the open span and the extras.
	var snap struct {
		ActiveSpans []obs.ActiveSpan `json:"active_spans"`
		Metrics     map[string]any   `json:"metrics"`
		Args        []string         `json:"args"`
	}
	if err := json.Unmarshal(get(t, "http://"+addr+"/debug/obs"), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.ActiveSpans) != 1 || snap.ActiveSpans[0].Name != "synth" {
		t.Errorf("active spans %+v", snap.ActiveSpans)
	}
	if len(snap.Args) != 1 || snap.Args[0] != "-small" {
		t.Errorf("extra args %+v", snap.Args)
	}

	// /metrics: Prometheus text exposition of the same registry.
	prom := string(get(t, "http://"+addr+"/metrics"))
	if !strings.Contains(prom, "# TYPE robust_quarantined_cells counter") ||
		!strings.Contains(prom, "robust_quarantined_cells 2") {
		t.Errorf("/metrics missing counter exposition:\n%s", prom)
	}
	if samples, _, err := obs.ParsePrometheusText(strings.NewReader(prom)); err != nil {
		t.Errorf("/metrics does not parse: %v", err)
	} else if len(samples) == 0 {
		t.Error("/metrics parsed to zero samples")
	}

	// /debug/pprof/ index and the plain-text front page.
	if body := get(t, "http://"+addr+"/debug/pprof/"); !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index missing profiles")
	}
	if body := get(t, "http://"+addr+"/"); !strings.Contains(string(body), "/debug/obs") {
		t.Error("index page missing endpoint list")
	}
}

func TestServeBadAddrFailsFast(t *testing.T) {
	if _, _, err := Serve("127.0.0.1:-1", DebugState{}); err == nil {
		t.Error("invalid address accepted")
	}
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
