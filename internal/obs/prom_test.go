package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden exposition files")

// buildPromRegistry populates a registry with one of everything, with
// fixed values, so the exposition bytes are reproducible.
func buildPromRegistry() *Registry {
	r := NewRegistry()
	r.Counter("service.jobs_done").Add(7)
	r.Gauge("queue.depth").Set(2.5)
	r.GaugeFunc("lut.hint_hit_ratio", func() float64 { return 0.75 })

	h := r.Histogram("pool.task_time")
	h.Observe(900 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(3 * time.Microsecond)

	hdr := r.HDR("service.job_time")
	hdr.Observe(2 * time.Millisecond)
	hdr.Observe(40 * time.Millisecond)

	req := r.CounterVec("http_requests_total", "route", "code")
	req.With("POST /v1/jobs", "2xx").Add(10)
	req.With("POST /v1/jobs", "4xx").Add(2)
	req.With("GET /v1/jobs/{id}", "2xx").Add(31)

	r.GaugeVec("http_in_flight_requests", "route").With("POST /v1/jobs").Add(1)

	lat := r.HDRVec("http_request_duration_seconds", "route")
	lat.With("POST /v1/jobs").Observe(1500 * time.Microsecond)
	lat.With("POST /v1/jobs").Observe(2500 * time.Microsecond)
	return r
}

// TestPromGolden pins the exact exposition bytes: format 0.0.4, sorted
// families, cumulative buckets, sanitized names.
func TestPromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildPromRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_metrics.prom")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
	// Twice in a row must render identical bytes (map-order independence).
	var buf2 bytes.Buffer
	if err := buildPromRegistry().WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two renderings of identical registry state differ")
	}
}

// TestPromRoundTrip: everything WritePrometheus emits must come back
// through ParsePrometheusText, with types and key series intact.
func TestPromRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := buildPromRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, types, err := ParsePrometheusText(&buf)
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	if types["http_requests_total"] != "counter" {
		t.Errorf("http_requests_total type %q", types["http_requests_total"])
	}
	if types["http_request_duration_seconds"] != "histogram" {
		t.Errorf("duration type %q", types["http_request_duration_seconds"])
	}
	if types["service_jobs_done"] != "counter" {
		t.Errorf("sanitized dotted counter type %q", types["service_jobs_done"])
	}
	find := func(name string, labels map[string]string) (float64, bool) {
		for _, s := range samples {
			if s.Name != name {
				continue
			}
			ok := true
			for k, v := range labels {
				if s.Labels[k] != v {
					ok = false
					break
				}
			}
			if ok {
				return s.Value, true
			}
		}
		return 0, false
	}
	if v, ok := find("http_requests_total", map[string]string{"route": "POST /v1/jobs", "code": "2xx"}); !ok || v != 10 {
		t.Errorf("http_requests_total{POST,2xx} = %v, %v", v, ok)
	}
	if v, ok := find("http_request_duration_seconds_count", map[string]string{"route": "POST /v1/jobs"}); !ok || v != 2 {
		t.Errorf("duration count = %v, %v", v, ok)
	}
	if v, ok := find("http_request_duration_seconds_bucket", map[string]string{"route": "POST /v1/jobs", "le": "+Inf"}); !ok || v != 2 {
		t.Errorf("duration +Inf bucket = %v, %v", v, ok)
	}
	if v, ok := find("service_job_time_count", nil); !ok || v != 2 {
		t.Errorf("service_job_time_count = %v, %v", v, ok)
	}
}

// Histogram buckets must be cumulative and monotonically
// non-decreasing in le order, ending at the +Inf count == _count.
func TestPromBucketsCumulative(t *testing.T) {
	var buf bytes.Buffer
	if err := buildPromRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, _, err := ParsePrometheusText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Group bucket samples per (family, non-le labels) in emission order;
	// emission order is ascending le by construction.
	type state struct {
		last float64
		inf  float64
	}
	groups := map[string]*state{}
	counts := map[string]float64{}
	for _, s := range samples {
		if strings.HasSuffix(s.Name, "_count") {
			key := strings.TrimSuffix(s.Name, "_count") + flatLabels(s.Labels, "le")
			counts[key] = s.Value
			continue
		}
		if !strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		key := strings.TrimSuffix(s.Name, "_bucket") + flatLabels(s.Labels, "le")
		g, ok := groups[key]
		if !ok {
			g = &state{}
			groups[key] = g
		}
		if s.Value < g.last {
			t.Errorf("%s: bucket count %g below previous %g (not cumulative)", key, s.Value, g.last)
		}
		g.last = s.Value
		if s.Labels["le"] == "+Inf" {
			g.inf = s.Value
		}
	}
	if len(groups) == 0 {
		t.Fatal("no histogram buckets found")
	}
	for key, g := range groups {
		if g.inf != counts[key] {
			t.Errorf("%s: +Inf bucket %g != _count %g", key, g.inf, counts[key])
		}
	}
}

func flatLabels(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sortStrings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString("|" + k + "=" + labels[k])
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_metric\n",
		"name{unterminated=\"x\n} 1\n",
		"name{le=} 1\n",
		"2bad_name 1\n",
		"name{l=\"v\"} notanumber\n",
		"# TYPE x sideways\n",
	} {
		if _, _, err := ParsePrometheusText(strings.NewReader(bad)); err == nil {
			t.Errorf("parsed %q without error", bad)
		}
	}
	// Comments, HELP, blank lines and timestamps are all legal.
	ok := "# HELP x something\n# TYPE x counter\nx 5 1700000000\n\nx_total{a=\"b c\",d=\"e\\\"f\"} 1\n"
	samples, _, err := ParsePrometheusText(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("legal input rejected: %v", err)
	}
	if len(samples) != 2 || samples[1].Labels["d"] != `e"f` {
		t.Errorf("samples %+v", samples)
	}
}
