package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HDRHistogram is a fixed-memory log-linear histogram in the spirit of
// HdrHistogram: values (nanoseconds, or any non-negative int64
// magnitude) land in one of hdrBuckets buckets laid out as hdrSubCount
// linear sub-buckets per power-of-two octave. Quantile interpolates
// inside the containing sub-bucket, so the relative error of any
// reported quantile is bounded by the sub-bucket width over the bucket
// base: 1/hdrSubCount (~3.1%) for values >= hdrSubCount ns, exact below
// that (the first hdrSubCount buckets are unit-width). Contrast with
// the coarse power-of-two Histogram, whose buckets are a full octave
// wide (up to 2x error) — serving-path latency SLOs use this type.
//
// Observe/Record are lock-free: one atomic add per bucket plus count
// and sum. Snapshot copies the counts for merging across shards or
// processes (the load harness merges per-worker histograms).
const (
	hdrSubBits  = 5               // log2 of sub-buckets per octave
	hdrSubCount = 1 << hdrSubBits // 32 sub-buckets -> <=1/32 relative error
	hdrBuckets  = (63 - hdrSubBits + 1) * hdrSubCount
	// hdrMaxValue caps recorded values (~146 years in ns) so bucket
	// bounds never overflow int64.
	hdrMaxValue = int64(1) << 62
)

type HDRHistogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [hdrBuckets]atomic.Int64
}

// hdrIndex maps a non-negative value to its bucket.
func hdrIndex(v int64) int {
	if v < hdrSubCount {
		return int(v)
	}
	o := bits.Len64(uint64(v)) - 1 // position of the leading bit, >= hdrSubBits
	sub := int(v>>(uint(o)-hdrSubBits)) & (hdrSubCount - 1)
	return (o-hdrSubBits)*hdrSubCount + hdrSubCount + sub
}

// hdrBounds returns the half-open value range [low, high) of bucket i.
func hdrBounds(i int) (low, high int64) {
	if i < hdrSubCount {
		return int64(i), int64(i) + 1
	}
	block := i / hdrSubCount // >= 1
	o := uint(block - 1 + hdrSubBits)
	sub := int64(i % hdrSubCount)
	width := int64(1) << (o - hdrSubBits)
	low = (hdrSubCount + sub) << (o - hdrSubBits)
	return low, low + width
}

// Observe records one duration.
func (h *HDRHistogram) Observe(d time.Duration) { h.Record(d.Nanoseconds()) }

// Record records one non-negative magnitude (negative clamps to 0,
// values beyond hdrMaxValue clamp down to it).
func (h *HDRHistogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if v > hdrMaxValue {
		v = hdrMaxValue
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[hdrIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *HDRHistogram) Count() int64 { return h.count.Load() }

// Quantile returns the interpolated p-quantile (p in [0,1]) of the
// recorded values, in the recorded unit (nanoseconds for Observe).
// Returns 0 on an empty histogram.
func (h *HDRHistogram) Quantile(p float64) float64 {
	s := h.Snapshot()
	return s.Quantile(p)
}

// Snapshot copies the histogram state into a mergeable value.
func (h *HDRHistogram) Snapshot() HDRSnapshot {
	s := HDRSnapshot{Counts: make([]int64, hdrBuckets)}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
		s.Count += s.Counts[i]
	}
	// Count is derived from the buckets (not the count field) so a
	// snapshot taken mid-Record stays internally consistent.
	s.Sum = h.sum.Load()
	return s
}

// HDRSnapshot is a point-in-time copy of an HDRHistogram, mergeable
// across instances (shards, workers, processes) with Merge.
type HDRSnapshot struct {
	Count  int64
	Sum    int64
	Counts []int64
}

// Merge folds another snapshot into this one. Snapshots from any
// HDRHistogram share the fixed bucket layout, so merging is a
// bucketwise add.
func (s *HDRSnapshot) Merge(o HDRSnapshot) {
	if s.Counts == nil {
		s.Counts = make([]int64, hdrBuckets)
	}
	for i := range o.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile returns the interpolated p-quantile of the snapshot.
func (s *HDRSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var seen int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if seen+c >= target {
			low, high := hdrBounds(i)
			frac := float64(target-seen) / float64(c)
			return float64(low) + frac*float64(high-low)
		}
		seen += c
	}
	_, high := hdrBounds(hdrBuckets - 1)
	return float64(high)
}

// Max returns the upper bound of the highest non-empty bucket (within
// one sub-bucket width of the true maximum), 0 when empty.
func (s *HDRSnapshot) Max() float64 {
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			_, high := hdrBounds(i)
			return float64(high)
		}
	}
	return 0
}

// Mean returns the arithmetic mean of the recorded values, 0 when
// empty.
func (s *HDRSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// HDRSummary is the JSON rendering of an HDR histogram, in
// milliseconds (the unit convention of HistSummary).
type HDRSummary struct {
	Count  int64   `json:"count"`
	SumMS  float64 `json:"sum_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p99_9_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Summary renders counts and interpolated quantiles, assuming the
// recorded unit was nanoseconds.
func (h *HDRHistogram) Summary() HDRSummary {
	s := h.Snapshot()
	return s.Summary()
}

// Summary renders a snapshot's counts and interpolated quantiles,
// assuming the recorded unit was nanoseconds. Summarizing a merged
// snapshot is how fleet-aggregate percentiles are produced: quantiles
// of merged bucket counts are the quantiles of the combined population
// (within the histogram's 1/32 relative error), which averaging
// per-node percentiles would not be.
func (s *HDRSnapshot) Summary() HDRSummary {
	return HDRSummary{
		Count:  s.Count,
		SumMS:  float64(s.Sum) / 1e6,
		P50MS:  s.Quantile(0.50) / 1e6,
		P90MS:  s.Quantile(0.90) / 1e6,
		P99MS:  s.Quantile(0.99) / 1e6,
		P999MS: s.Quantile(0.999) / 1e6,
		MaxMS:  s.Max() / 1e6,
	}
}
