package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labeled metric families and Prometheus text exposition (format
// 0.0.4), dependency-free. A vec is a get-or-create family of children
// keyed by label values; the serving tier's RED metrics (request
// counters by route and status class, in-flight gauges, latency
// histograms) live here. Children are created on first use and never
// deleted, so instrumentation sites MUST only pass label values drawn
// from bounded sets (route patterns, status classes) — never raw
// request data like job ids. The cardinality regression test in
// internal/service pins this.

// labelSep joins label values into a child key; \x1f cannot appear in
// sane label values.
const labelSep = "\x1f"

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	name   string
	labels []string
	mu     sync.Mutex
	kids   map[string]*Counter
}

// CounterVec returns (creating on first use) the named counter family.
// Label names are fixed at first creation.
func (r *Registry) CounterVec(name string, labelNames ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = &CounterVec{name: name, labels: labelNames, kids: make(map[string]*Counter)}
		r.counterVecs[name] = v
	}
	return v
}

// With returns the child counter for the given label values (one per
// declared label name, in order).
func (v *CounterVec) With(values ...string) *Counter {
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[key]
	if !ok {
		c = &Counter{}
		v.kids[key] = c
	}
	return c
}

// Len reports the number of child series — the cardinality witness.
func (v *CounterVec) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.kids)
}

func (v *CounterVec) each(f func(series string, c *Counter)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for key, c := range v.kids {
		f(seriesName(v.name, v.labels, key), c)
	}
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct {
	name   string
	labels []string
	mu     sync.Mutex
	kids   map[string]*Gauge
}

// GaugeVec returns (creating on first use) the named gauge family.
func (r *Registry) GaugeVec(name string, labelNames ...string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = &GaugeVec{name: name, labels: labelNames, kids: make(map[string]*Gauge)}
		r.gaugeVecs[name] = v
	}
	return v
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.kids[key]
	if !ok {
		g = &Gauge{}
		v.kids[key] = g
	}
	return g
}

// Len reports the number of child series.
func (v *GaugeVec) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.kids)
}

func (v *GaugeVec) each(f func(series string, g *Gauge)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for key, g := range v.kids {
		f(seriesName(v.name, v.labels, key), g)
	}
}

// HDRVec is a family of high-resolution histograms distinguished by
// label values — per-route request latency.
type HDRVec struct {
	name   string
	labels []string
	mu     sync.Mutex
	kids   map[string]*HDRHistogram
}

// HDRVec returns (creating on first use) the named histogram family.
func (r *Registry) HDRVec(name string, labelNames ...string) *HDRVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.hdrVecs[name]
	if !ok {
		v = &HDRVec{name: name, labels: labelNames, kids: make(map[string]*HDRHistogram)}
		r.hdrVecs[name] = v
	}
	return v
}

// With returns the child histogram for the given label values.
func (v *HDRVec) With(values ...string) *HDRHistogram {
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.kids[key]
	if !ok {
		h = &HDRHistogram{}
		v.kids[key] = h
	}
	return h
}

// Len reports the number of child series.
func (v *HDRVec) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.kids)
}

func (v *HDRVec) each(f func(series string, h *HDRHistogram)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for key, h := range v.kids {
		f(seriesName(v.name, v.labels, key), h)
	}
}

// seriesName renders name{k="v",...} for Snapshot keys and exposition.
func seriesName(name string, labels []string, key string) string {
	return name + labelString(labels, key)
}

func labelString(labels []string, key string) string {
	if len(labels) == 0 {
		return ""
	}
	values := strings.Split(key, labelSep)
	var b strings.Builder
	b.WriteByte('{')
	for i, ln := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(ln)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promName sanitizes a registry metric name into a legal Prometheus
// metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Dotted names like
// service.jobs_done become service_jobs_done.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the whole registry in the Prometheus text
// exposition format 0.0.4: counters and gauges as single samples,
// labeled families as one series per child, and both histogram kinds
// as cumulative-bucket histograms with `le` bounds in seconds at the
// power-of-two octaves (sub-bucket resolution is collapsed for
// exposition; Quantile keeps the full resolution in-process). Output
// is sorted by metric name, so identical registry state renders
// identical bytes — the golden-test contract.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs))
	for n, g := range r.gauges {
		gauges[n] = g.Value()
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for n, f := range r.gaugeFuncs {
		funcs[n] = f
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	hdrs := make(map[string]*HDRHistogram, len(r.hdrs))
	for n, h := range r.hdrs {
		hdrs[n] = h
	}
	cvecs := make([]*CounterVec, 0, len(r.counterVecs))
	for _, v := range r.counterVecs {
		cvecs = append(cvecs, v)
	}
	gvecs := make([]*GaugeVec, 0, len(r.gaugeVecs))
	for _, v := range r.gaugeVecs {
		gvecs = append(gvecs, v)
	}
	hvecs := make([]*HDRVec, 0, len(r.hdrVecs))
	for _, v := range r.hdrVecs {
		hvecs = append(hvecs, v)
	}
	r.mu.Unlock()

	// Computed gauges are evaluated outside the registry lock: a gauge
	// func reading another metric must not deadlock.
	for n, f := range funcs {
		gauges[n] = f()
	}

	fams := make(map[string]*promFamily)
	fam := func(name, typ string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{typ: typ}
			fams[name] = f
		}
		return f
	}

	for n, v := range counters {
		f := fam(promName(n), "counter")
		f.lines = append(f.lines, fmt.Sprintf("%s %d", promName(n), v))
	}
	for n, v := range gauges {
		f := fam(promName(n), "gauge")
		f.lines = append(f.lines, fmt.Sprintf("%s %s", promName(n), promFloat(v)))
	}
	for _, v := range cvecs {
		f := fam(promName(v.name), "counter")
		v.mu.Lock()
		for key, c := range v.kids {
			f.lines = append(f.lines, fmt.Sprintf("%s%s %d", promName(v.name), labelString(v.labels, key), c.Value()))
		}
		v.mu.Unlock()
	}
	for _, v := range gvecs {
		f := fam(promName(v.name), "gauge")
		v.mu.Lock()
		for key, g := range v.kids {
			f.lines = append(f.lines, fmt.Sprintf("%s%s %s", promName(v.name), labelString(v.labels, key), promFloat(g.Value())))
		}
		v.mu.Unlock()
	}
	for n, h := range hists {
		writeLogHist(fam(promName(n), "histogram"), promName(n), "", h)
	}
	for n, h := range hdrs {
		writeHDRHist(fam(promName(n), "histogram"), promName(n), "", h.Snapshot())
	}
	for _, v := range hvecs {
		f := fam(promName(v.name), "histogram")
		v.mu.Lock()
		kids := make(map[string]*HDRHistogram, len(v.kids))
		for key, h := range v.kids {
			kids[key] = h
		}
		labels, name := v.labels, promName(v.name)
		v.mu.Unlock()
		keys := make([]string, 0, len(kids))
		for key := range kids {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			extra := strings.TrimSuffix(strings.TrimPrefix(labelString(labels, key), "{"), "}")
			writeHDRHist(f, name, extra, kids[key].Snapshot())
		}
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(bw, "# TYPE %s %s\n", n, f.typ)
		if f.typ != "histogram" {
			// Histogram lines keep their emission order: cumulative buckets
			// ascending per child, then +Inf, _sum, _count. Scalar families
			// sort for deterministic output.
			sort.Strings(f.lines)
		}
		for _, l := range f.lines {
			fmt.Fprintln(bw, l)
		}
	}
	return bw.Flush()
}

// promFamily collects the sample lines of one metric family during
// exposition.
type promFamily struct {
	typ   string
	lines []string
}

// histLine appends one sample line, merging extra labels (may be "")
// with the bucket label (may be "").
func (f *promFamily) histLine(name, suffix, extraLabels, bucketLabel, value string) {
	labels := extraLabels
	if bucketLabel != "" {
		if labels != "" {
			labels += ","
		}
		labels += bucketLabel
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	f.lines = append(f.lines, name+suffix+labels+" "+value)
}

// writeLogHist renders the legacy power-of-two Histogram as cumulative
// buckets with le bounds 2^(i+1) ns expressed in seconds.
func writeLogHist(f *promFamily, name, extraLabels string, h *Histogram) {
	var cum int64
	maxNonEmpty := -1
	counts := make([]int64, histBuckets)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			maxNonEmpty = i
		}
	}
	for i := 0; i <= maxNonEmpty; i++ {
		cum += counts[i]
		bound := math.Pow(2, float64(i+1)) / 1e9
		f.histLine(name, "_bucket", extraLabels, fmt.Sprintf("le=%q", promFloat(bound)), strconv.FormatInt(cum, 10))
	}
	f.histLine(name, "_bucket", extraLabels, `le="+Inf"`, strconv.FormatInt(h.Count(), 10))
	f.histLine(name, "_sum", extraLabels, "", promFloat(float64(h.sumNS.Load())/1e9))
	f.histLine(name, "_count", extraLabels, "", strconv.FormatInt(h.Count(), 10))
}

// writeHDRHist renders an HDR snapshot as cumulative buckets at the
// octave bounds 2^o ns (in seconds) up to the highest non-empty
// bucket. The in-process sub-bucket resolution (1/32 relative error)
// is collapsed to octaves for exposition, which keeps the series count
// bounded; scrape-side quantiles are octave-accurate, in-process
// Quantile stays at full resolution.
func writeHDRHist(f *promFamily, name, extraLabels string, s HDRSnapshot) {
	maxNonEmpty := -1
	for i, c := range s.Counts {
		if c > 0 {
			maxNonEmpty = i
		}
	}
	var cum int64
	i := 0
	for o := uint(0); o <= 62; o++ {
		bound := int64(1) << o
		for i < len(s.Counts) {
			_, high := hdrBounds(i)
			if high > bound {
				break
			}
			cum += s.Counts[i]
			i++
		}
		f.histLine(name, "_bucket", extraLabels, fmt.Sprintf("le=%q", promFloat(float64(bound)/1e9)), strconv.FormatInt(cum, 10))
		if i > maxNonEmpty {
			break
		}
	}
	f.histLine(name, "_bucket", extraLabels, `le="+Inf"`, strconv.FormatInt(s.Count, 10))
	f.histLine(name, "_sum", extraLabels, "", promFloat(float64(s.Sum)/1e9))
	f.histLine(name, "_count", extraLabels, "", strconv.FormatInt(s.Count, 10))
}

// PromSample is one parsed exposition sample.
type PromSample struct {
	Name   string            // metric name (with _bucket/_sum/_count suffix intact)
	Labels map[string]string // label set, nil when unlabeled
	Value  float64
}

// ParsePrometheusText parses text exposition format 0.0.4 — the
// validation half used by cmd/obscheck and the exposition tests. It
// understands comments, # TYPE lines, and sample lines with optional
// labels; it rejects structurally invalid lines. Returns the samples
// in input order plus the declared family types.
func ParsePrometheusText(r io.Reader) (samples []PromSample, types map[string]string, err error) {
	types = make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					types[fields[2]] = fields[3]
				default:
					return nil, nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo, fields[3])
				}
			}
			continue
		}
		s, perr := parsePromSample(line)
		if perr != nil {
			return nil, nil, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		samples = append(samples, s)
	}
	return samples, types, sc.Err()
}

func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		s.Labels, err = parsePromLabels(rest[i+1 : end])
		if err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("sample %q has no value", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	if s.Name == "" || !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	// Value (a possible trailing timestamp is taken as the second field).
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func parsePromLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", body)
		}
		name := strings.TrimSpace(body[i : i+eq])
		if !validPromName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", body)
		}
		i++
		var b strings.Builder
		for i < len(body) && body[i] != '"' {
			if body[i] == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(body[i])
				}
			} else {
				b.WriteByte(body[i])
			}
			i++
		}
		if i >= len(body) {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		i++ // closing quote
		labels[name] = b.String()
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return labels, nil
}

func validPromName(n string) bool {
	for i, c := range n {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return n != ""
}
