package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// ManifestSchema identifies the run-manifest JSON layout.
const ManifestSchema = "stdcelltune-manifest/1"

// Manifest makes one experiment run self-describing: everything needed
// to attribute or reproduce the numbers sitting next to it — sampling
// configuration, fault injection, toolchain, wall time, what failed —
// in one JSON file written beside the results.
type Manifest struct {
	Schema  string `json:"schema"`
	Created string `json:"created"` // RFC 3339, local time of the writer

	// Toolchain provenance.
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	ModulePath    string `json:"module_path,omitempty"`
	ModuleVersion string `json:"module_version,omitempty"`
	VCSRevision   string `json:"vcs_revision,omitempty"`
	VCSModified   bool   `json:"vcs_modified,omitempty"`

	// Invocation.
	Args []string `json:"args"`

	// SpecDigest is the canonical content hash of the flow configuration
	// (exp.FlowConfig.Digest / the service request-spec digest): the same
	// key the tuning daemon's artifact cache uses, so results written by
	// a batch run can be located in — or compared against — a warm cache.
	SpecDigest string `json:"spec_digest,omitempty"`

	// Sampling / flow configuration.
	Samples   int     `json:"samples"`
	Seed      int64   `json:"seed"`
	Corner    string  `json:"corner"`
	Small     bool    `json:"small"`
	FaultRate float64 `json:"fault_rate"`
	FaultSeed int64   `json:"fault_seed,omitempty"`

	// Outcome.
	WallSeconds float64  `json:"wall_seconds"`
	Experiments []string `json:"experiments,omitempty"`
	Failed      []string `json:"failed,omitempty"`
	Quarantined int      `json:"quarantined"`

	// Companion artifacts of the same run.
	TraceFile string `json:"trace_file,omitempty"`
	BenchFile string `json:"bench_file,omitempty"`
	OutDir    string `json:"out_dir,omitempty"`

	// Metrics is the registry snapshot at the end of the run (counters,
	// gauges, histogram summaries) — the same shape Registry.Snapshot
	// serves over the debug endpoint.
	Metrics map[string]any `json:"metrics,omitempty"`

	// SynthOutcomes records, per cached synthesis unit of the flow, what
	// the optimizer did — iteration count and how much timing analysis
	// the incremental engine avoided.
	SynthOutcomes []SynthOutcome `json:"synth_outcomes,omitempty"`

	// Service summarizes a tuning-daemon run: cmd/stcd writes one of
	// these beside its journal on clean shutdown, so a restart (or an
	// operator) can see what the previous life recovered, refused, and
	// tripped.
	Service *ServiceOutcome `json:"service,omitempty"`
}

// ServiceOutcome is the daemon half of the manifest: recovery,
// admission and breaker totals for one stcd process lifetime.
type ServiceOutcome struct {
	JobsSubmitted          int64 `json:"jobs_submitted"`
	JobsRecovered          int64 `json:"jobs_recovered"`
	JournalRecordsReplayed int64 `json:"journal_records_replayed"`
	TornTailsTruncated     int64 `json:"torn_tails_truncated"`
	RateLimited            int64 `json:"rate_limited"`
	QuotaRejected          int64 `json:"quota_rejected"`
	BreakerTrips           int64 `json:"breaker_trips"`
	CorruptCacheDropped    int64 `json:"corrupt_cache_dropped"`
	DrainClean             bool  `json:"drain_clean"`
}

// SynthOutcome is one flow synthesis unit in the manifest.
type SynthOutcome struct {
	Key                string  `json:"key"` // flow cache key (kind/params/clock)
	Clock              float64 `json:"clock"`
	Met                bool    `json:"met"`
	Area               float64 `json:"area"`
	Iterations         int     `json:"iterations"`
	FullAnalyses       int     `json:"full_analyses"`
	IncrementalUpdates int     `json:"incremental_updates"`
}

// NewManifest returns a manifest stamped with the schema, the current
// time, and the toolchain/build provenance read from the running
// binary.
func NewManifest() *Manifest {
	m := &Manifest{
		Schema:    ManifestSchema,
		Created:   time.Now().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.ModulePath = bi.Main.Path
		m.ModuleVersion = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// Write serializes the manifest as indented JSON.
func (m *Manifest) Write(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest loads and validates a manifest file: it must parse and
// carry the current schema tag. cmd/obscheck uses this as the smoke
// gate.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("obs: %s: schema %q, want %q", path, m.Schema, ManifestSchema)
	}
	if m.GoVersion == "" {
		return nil, fmt.Errorf("obs: %s: missing go_version", path)
	}
	return &m, nil
}
