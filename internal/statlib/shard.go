package statlib

import (
	"errors"
	"fmt"
	"sort"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/liberty"
	"stdcelltune/internal/lut"
	"stdcelltune/internal/robust"
)

// SchemaShard identifies the partial-moments documents the cluster tier
// exchanges: a worker folds a contiguous slice [Lo, Hi) of the N
// Monte-Carlo instances through the streaming Welford path and ships
// back one Partial — per-entry (count, mean, M2) triples instead of
// whole Liberty libraries, typically two orders of magnitude smaller
// than the instances it summarizes. The same schema string names the
// shard-set container the coordinator retains for obscheck -shard.
const SchemaShard = "stdcelltune-shard/1"

// Partial is one shard's contribution to a statistical library build.
// It carries only names (for congruence checks against the nominal
// catalogue structure) and raw moments; axes, areas and every other
// structural fact come from the coordinator's reference library, so a
// tampered or stale partial cannot silently reshape the result.
type Partial struct {
	Schema string `json:"schema"`
	// Name is the statistical library under construction; every partial
	// of a merge must agree on it.
	Name string `json:"name"`
	// N is the total instance count of the job; Shards the total shard
	// count; Index this shard's position in [0, Shards). The merge
	// requires the set to tile [0, N) exactly: Lo/Hi of consecutive
	// indexes must abut, shard 0 starting at 0 and the last ending at N.
	N      int `json:"instances"`
	Shards int `json:"shards"`
	Index  int `json:"shard"`
	Lo     int `json:"lo"`
	Hi     int `json:"hi"`
	// Cells follows the reference library's cell order. A cell that
	// failed structural agreement inside the shard reports Bad and no
	// pins; the merge quarantines it library-wide, exactly as a
	// single-node BuildStream would.
	Cells []PartialCell `json:"cells"`
}

// PartialCell is one cell's accumulated moments (or its quarantine
// reason).
type PartialCell struct {
	Name string       `json:"name"`
	Bad  string       `json:"bad,omitempty"`
	Pins []PartialPin `json:"pins,omitempty"`
}

// PartialPin covers one timed output pin, arcs in reference order.
type PartialPin struct {
	Name string       `json:"name"`
	Arcs []PartialArc `json:"arcs"`
}

// PartialArc holds the flattened row-major per-entry accumulators of
// one timing arc; an untabulated edge has an empty slice.
type PartialArc struct {
	RelatedPin string              `json:"related_pin"`
	Rise       []dist.WelfordState `json:"rise,omitempty"`
	Fall       []dist.WelfordState `json:"fall,omitempty"`
}

// FoldShard folds the contiguous instance range [lo, hi) of an N-instance
// Monte-Carlo characterization into a serializable Partial. gen(i) must
// produce instance i exactly as the single-node fold would (same seed,
// same per-instance named RNG forks), which is what makes the sharded
// result a pure re-bracketing of the sequential Welford stream: each
// instance's samples are bit-identical wherever they are generated, and
// only the fold order changes — bounded by the dist.Welford ulp
// contract. The first instance of the shard is the shard's structural
// reference; a cell disagreeing with it is marked Bad, mirroring
// BuildStream's quarantine, and the final verdict is left to the merge.
func FoldShard(name string, n, shards, index, lo, hi int, gen func(i int) (*liberty.Library, error)) (*Partial, error) {
	switch {
	case n < 2:
		return nil, errors.New("statlib: need at least two instances")
	case shards < 1 || index < 0 || index >= shards:
		return nil, fmt.Errorf("statlib: shard %d of %d out of range", index, shards)
	case lo < 0 || lo >= hi || hi > n:
		return nil, fmt.Errorf("statlib: shard range [%d,%d) invalid for n=%d", lo, hi, n)
	}
	ref, err := gen(lo)
	if err != nil {
		return nil, fmt.Errorf("statlib: instance %d: %w", lo, err)
	}
	acc := make([]*streamCell, 0, len(ref.Cells))
	bad := make(map[string]string)
	for _, refCell := range ref.Cells {
		sc := &streamCell{ref: refCell}
		sc.init()
		acc = append(acc, sc)
	}
	for i := lo + 1; i < hi; i++ {
		inst, err := gen(i)
		if err != nil {
			return nil, fmt.Errorf("statlib: instance %d: %w", i, err)
		}
		for _, sc := range acc {
			if sc.bad {
				continue
			}
			if err := sc.fold(inst, i); err != nil {
				bad[sc.ref.Name] = err.Error()
				sc.quarantine()
			}
		}
	}

	p := &Partial{Schema: SchemaShard, Name: name, N: n, Shards: shards, Index: index, Lo: lo, Hi: hi}
	for _, sc := range acc {
		pc := PartialCell{Name: sc.ref.Name}
		if sc.bad {
			pc.Bad = bad[sc.ref.Name]
		} else {
			for _, sp := range sc.pins {
				pp := PartialPin{Name: sp.name}
				for _, sa := range sp.arcs {
					pp.Arcs = append(pp.Arcs, PartialArc{
						RelatedPin: sa.relatedPin,
						Rise:       welfordStates(sa.rise),
						Fall:       welfordStates(sa.fall),
					})
				}
				pc.Pins = append(pc.Pins, pp)
			}
		}
		p.Cells = append(p.Cells, pc)
	}
	return p, nil
}

func welfordStates(ws []dist.Welford) []dist.WelfordState {
	if ws == nil {
		return nil
	}
	out := make([]dist.WelfordState, len(ws))
	for i, w := range ws {
		out[i] = w.State()
	}
	return out
}

// MergeShards combines a complete shard set into the statistical
// library. ref is the nominal (unperturbed) catalogue library, the
// source of the cell/pin/arc structure and table axes — every partial
// is checked for congruence against it before a single moment is
// folded. Partials are merged in ascending shard index regardless of
// the order they are passed in (or arrived over the network), so the
// result is run-to-run deterministic: same spec, same bytes, whichever
// worker computed which shard and however leases bounced. The merged
// library equals the single-node streaming fold of the same N instances
// up to the dist.Welford Merge ulp contract.
func MergeShards(name string, n int, ref *liberty.Library, parts []*Partial) (*Library, error) {
	if n < 2 {
		return nil, errors.New("statlib: need at least two instances")
	}
	if len(parts) == 0 {
		return nil, errors.New("statlib: no shards to merge")
	}
	ordered := append([]*Partial(nil), parts...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Index < ordered[j].Index })
	for k, p := range ordered {
		switch {
		case p == nil:
			return nil, fmt.Errorf("statlib: shard %d missing", k)
		case p.Schema != SchemaShard:
			return nil, fmt.Errorf("statlib: shard %d schema %q, want %q", k, p.Schema, SchemaShard)
		case p.Name != name:
			return nil, fmt.Errorf("statlib: shard %d is for library %q, want %q", k, p.Name, name)
		case p.N != n:
			return nil, fmt.Errorf("statlib: shard %d has N=%d, want %d", k, p.N, n)
		case p.Shards != len(ordered):
			return nil, fmt.Errorf("statlib: shard %d claims %d shards, set has %d", k, p.Shards, len(ordered))
		case p.Index != k:
			return nil, fmt.Errorf("statlib: shard index %d duplicated or missing (position %d)", p.Index, k)
		case k == 0 && p.Lo != 0:
			return nil, fmt.Errorf("statlib: first shard starts at %d, want 0", p.Lo)
		case k > 0 && p.Lo != ordered[k-1].Hi:
			return nil, fmt.Errorf("statlib: shard %d starts at %d, previous ended at %d", k, p.Lo, ordered[k-1].Hi)
		case p.Lo >= p.Hi:
			return nil, fmt.Errorf("statlib: shard %d range [%d,%d) empty", k, p.Lo, p.Hi)
		}
	}
	if last := ordered[len(ordered)-1]; last.Hi != n {
		return nil, fmt.Errorf("statlib: shards end at %d, want %d", last.Hi, n)
	}

	sl := &Library{
		Name: name, Samples: n, Cells: make(map[string]*Cell),
		Quarantine: robust.NewQuarantine("statlib"),
		slab:       lut.NewSlab(foldSlabHint(ref)),
	}
	sl.Quarantine.Total = len(ref.Cells)

	// Structure-only accumulators: unlike BuildStream's init, the
	// reference's own table values are NOT folded in — the nominal
	// library is axes and shape, every sample arrives via partials.
	acc := make([]*streamCell, 0, len(ref.Cells))
	for _, refCell := range ref.Cells {
		sc := &streamCell{ref: refCell}
		sc.initEmpty()
		acc = append(acc, sc)
	}

	for _, p := range ordered {
		if len(p.Cells) != len(acc) {
			return nil, fmt.Errorf("statlib: shard %d has %d cells, reference has %d", p.Index, len(p.Cells), len(acc))
		}
		for ci, pc := range p.Cells {
			sc := acc[ci]
			if pc.Name != sc.ref.Name {
				return nil, fmt.Errorf("statlib: shard %d cell %d is %q, reference has %q", p.Index, ci, pc.Name, sc.ref.Name)
			}
			if sc.bad {
				continue
			}
			if pc.Bad != "" {
				sl.Quarantine.Add(sc.ref.Name, fmt.Sprintf("shard %d: %s", p.Index, pc.Bad))
				sc.quarantine()
				continue
			}
			if err := sc.mergePartial(&pc); err != nil {
				return nil, fmt.Errorf("statlib: shard %d cell %s: %w", p.Index, pc.Name, err)
			}
		}
	}

	for _, sc := range acc {
		if sc.bad {
			continue
		}
		cell, err := sc.materialize(sl.slab, n)
		if err != nil {
			sl.Quarantine.Add(sc.ref.Name, err.Error())
			continue
		}
		if reason := degenerateCell(cell); reason != "" {
			sl.Quarantine.Add(sc.ref.Name, reason)
			continue
		}
		sl.Cells[cell.Name] = cell
		sl.CellOrder = append(sl.CellOrder, cell.Name)
	}
	if err := sl.Quarantine.Check(robust.DefaultQuarantineLimit); err != nil {
		return nil, err
	}
	return sl, nil
}

// initEmpty builds zero-valued accumulator grids from the reference
// cell without folding the reference's samples — MergeShards's variant
// of init, where every sample arrives through partial snapshots.
func (sc *streamCell) initEmpty() {
	for _, refPin := range sc.ref.Pins {
		if refPin.Direction != liberty.Output || len(refPin.Timing) == 0 {
			continue
		}
		sp := &streamPin{name: refPin.Name, maxCap: refPin.MaxCap}
		for _, arc := range refPin.Timing {
			sa := &streamArc{relatedPin: arc.RelatedPin}
			if t := arc.CellRise; t != nil {
				sa.riseRef = t
				sa.rise = make([]dist.Welford, len(t.Loads)*len(t.Slews))
			}
			if t := arc.CellFall; t != nil {
				sa.fallRef = t
				sa.fall = make([]dist.Welford, len(t.Loads)*len(t.Slews))
			}
			sp.arcs = append(sp.arcs, sa)
		}
		sc.pins = append(sc.pins, sp)
	}
}

// mergePartial folds one shard's moments for this cell into the
// accumulators, enforcing congruence with the reference structure.
func (sc *streamCell) mergePartial(pc *PartialCell) error {
	if len(pc.Pins) != len(sc.pins) {
		return fmt.Errorf("%d pins, reference has %d", len(pc.Pins), len(sc.pins))
	}
	for pi, pp := range pc.Pins {
		sp := sc.pins[pi]
		if pp.Name != sp.name {
			return fmt.Errorf("pin %d is %q, reference has %q", pi, pp.Name, sp.name)
		}
		if len(pp.Arcs) != len(sp.arcs) {
			return fmt.Errorf("pin %s has %d arcs, reference has %d", pp.Name, len(pp.Arcs), len(sp.arcs))
		}
		for ai, pa := range pp.Arcs {
			sa := sp.arcs[ai]
			if pa.RelatedPin != sa.relatedPin {
				return fmt.Errorf("pin %s arc %d related to %q, reference has %q", pp.Name, ai, pa.RelatedPin, sa.relatedPin)
			}
			for _, e := range []struct {
				label string
				state []dist.WelfordState
				w     []dist.Welford
			}{{"rise", pa.Rise, sa.rise}, {"fall", pa.Fall, sa.fall}} {
				if len(e.state) != len(e.w) {
					return fmt.Errorf("pin %s arc %s %s has %d entries, reference has %d",
						pp.Name, sa.relatedPin, e.label, len(e.state), len(e.w))
				}
				for k, s := range e.state {
					e.w[k].Merge(dist.WelfordFromState(s))
				}
			}
		}
	}
	return nil
}

// ShardRanges tiles [0, n) into contiguous shards of at most size
// instances — the pure split function both the coordinator and the
// local fallback use, so the shard layout (and therefore the merged
// bits) depends only on (n, size), never on worker count or timing.
func ShardRanges(n, size int) [][2]int {
	if size <= 0 {
		size = n
	}
	var out [][2]int
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}
