// Package statlib builds and queries the statistical library of Section
// IV of the paper: N Monte-Carlo library instances are folded into a
// single library whose tables hold, per (load, slew) entry, the mean and
// standard deviation of the cell delay across the instances (Fig. 2).
//
// The statistical library drives both the tuning methods (internal/core)
// and the statistical timing of synthesized designs (internal/stattime).
package statlib

import (
	"errors"
	"fmt"
	"math"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/liberty"
	"stdcelltune/internal/lut"
)

// Library is a statistical library: same cell/pin/arc structure as the
// source libraries, but every delay table is replaced by a mean table and
// a sigma table.
type Library struct {
	Name      string
	Samples   int // number of Monte-Carlo instances folded in
	Cells     map[string]*Cell
	CellOrder []string // original library order for deterministic output
}

// Cell is one cell's statistics.
type Cell struct {
	Name          string
	Area          float64
	DriveStrength int
	Footprint     string
	Pins          []*Pin
}

// Pin is one output pin with its statistical arcs.
type Pin struct {
	Name   string
	MaxCap float64
	Arcs   []*Arc
}

// Arc carries the per-entry statistics of one timing arc. MeanRise/Fall
// estimate the nominal delay; SigmaRise/Fall the local-variation
// standard deviation.
type Arc struct {
	RelatedPin string
	MeanRise   *lut.Table
	MeanFall   *lut.Table
	SigmaRise  *lut.Table
	SigmaFall  *lut.Table
}

// Build folds N Monte-Carlo library instances into a statistical library
// (the Fig. 2 process): for every cell, every output pin, every arc and
// every table entry, the entry values across the N libraries form a
// temporary table whose mean and standard deviation land in the same
// position of the statistical library.
func Build(name string, instances []*liberty.Library) (*Library, error) {
	if len(instances) < 2 {
		return nil, errors.New("statlib: need at least two instances")
	}
	ref := instances[0]
	sl := &Library{Name: name, Samples: len(instances), Cells: make(map[string]*Cell)}
	for _, refCell := range ref.Cells {
		cells := make([]*liberty.Cell, len(instances))
		for i, inst := range instances {
			c := inst.Cell(refCell.Name)
			if c == nil {
				return nil, fmt.Errorf("statlib: cell %q missing from instance %d", refCell.Name, i)
			}
			cells[i] = c
		}
		sc, err := buildCell(cells)
		if err != nil {
			return nil, fmt.Errorf("statlib: cell %q: %w", refCell.Name, err)
		}
		sl.Cells[sc.Name] = sc
		sl.CellOrder = append(sl.CellOrder, sc.Name)
	}
	return sl, nil
}

func buildCell(cells []*liberty.Cell) (*Cell, error) {
	ref := cells[0]
	sc := &Cell{
		Name:          ref.Name,
		Area:          ref.Area,
		DriveStrength: ref.DriveStrength,
		Footprint:     ref.Footprint,
	}
	for pi, refPin := range ref.Pins {
		if refPin.Direction != liberty.Output || len(refPin.Timing) == 0 {
			continue
		}
		sp := &Pin{Name: refPin.Name, MaxCap: refPin.MaxCap}
		for ai := range refPin.Timing {
			rises := make([]*lut.Table, len(cells))
			falls := make([]*lut.Table, len(cells))
			for i, c := range cells {
				if pi >= len(c.Pins) || ai >= len(c.Pins[pi].Timing) {
					return nil, fmt.Errorf("pin/arc structure mismatch in instance %d", i)
				}
				arc := c.Pins[pi].Timing[ai]
				rises[i] = arc.CellRise
				falls[i] = arc.CellFall
			}
			mr, sr, err := foldTables(rises)
			if err != nil {
				return nil, err
			}
			mf, sf, err := foldTables(falls)
			if err != nil {
				return nil, err
			}
			sp.Arcs = append(sp.Arcs, &Arc{
				RelatedPin: refPin.Timing[ai].RelatedPin,
				MeanRise:   mr, SigmaRise: sr,
				MeanFall: mf, SigmaFall: sf,
			})
		}
		sc.Pins = append(sc.Pins, sp)
	}
	return sc, nil
}

// foldTables computes per-entry mean and sigma across the instance
// tables. This is the innermost step of Fig. 2: one entry is extracted
// from the N libraries into a temporary table of size N, whose mean and
// standard deviation are stored at the same position.
func foldTables(tables []*lut.Table) (mean, sigma *lut.Table, err error) {
	ref := tables[0]
	if ref == nil {
		return nil, nil, nil
	}
	for _, t := range tables[1:] {
		if t == nil || !lut.SameAxes(ref, t) {
			return nil, nil, errors.New("statlib: instance tables have mismatched axes")
		}
	}
	mean = lut.New(ref.Loads, ref.Slews)
	sigma = lut.New(ref.Loads, ref.Slews)
	tmp := make([]float64, len(tables))
	for i := range ref.Loads {
		for j := range ref.Slews {
			for k, t := range tables {
				tmp[k] = t.Values[i][j]
			}
			m, s := dist.MeanStdDev(tmp)
			mean.Values[i][j] = m
			sigma.Values[i][j] = s
		}
	}
	return mean, sigma, nil
}

// Cell returns the named cell or nil.
func (l *Library) Cell(name string) *Cell { return l.Cells[name] }

// Pin returns the named output pin or nil.
func (c *Cell) Pin(name string) *Pin {
	for _, p := range c.Pins {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Arc returns the arc related to the given input pin, or nil.
func (p *Pin) Arc(related string) *Arc {
	for _, a := range p.Arcs {
		if a.RelatedPin == related {
			return a
		}
	}
	return nil
}

// Stats returns the interpolated worst-case (max of rise/fall) mean and
// sigma of the arc at an operating point, via bilinear interpolation
// (Section V.A).
func (a *Arc) Stats(load, slew float64) dist.Normal {
	mu := math.Max(a.MeanRise.Lookup(load, slew), a.MeanFall.Lookup(load, slew))
	sg := math.Max(a.SigmaRise.Lookup(load, slew), a.SigmaFall.Lookup(load, slew))
	return dist.Normal{Mu: mu, Sigma: sg}
}

// SigmaTables returns all sigma tables of the pin (rise and fall of every
// arc) — the inputs to the per-pin max-equivalent LUT of Section VI.C.
func (p *Pin) SigmaTables() []*lut.Table {
	var ts []*lut.Table
	for _, a := range p.Arcs {
		ts = append(ts, a.SigmaRise, a.SigmaFall)
	}
	return ts
}

// MaxSigmaTable folds the pin's sigma tables into the worst-case
// equivalent table ("for every output pin of a cell, a maximum equivalent
// look-up table is created by taking the maximum value for each entry of
// the related tables").
func (p *Pin) MaxSigmaTable() (*lut.Table, error) {
	return lut.MaxEquivalent(p.SigmaTables()...)
}

// MaxSigma returns the library-wide maximum sigma value, used to scale
// Fig. 7 style summaries.
func (l *Library) MaxSigma() float64 {
	m := 0.0
	for _, c := range l.Cells {
		for _, p := range c.Pins {
			for _, t := range p.SigmaTables() {
				if v := t.Max(); v > m {
					m = v
				}
			}
		}
	}
	return m
}
