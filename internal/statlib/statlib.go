// Package statlib builds and queries the statistical library of Section
// IV of the paper: N Monte-Carlo library instances are folded into a
// single library whose tables hold, per (load, slew) entry, the mean and
// standard deviation of the cell delay across the instances (Fig. 2).
//
// The statistical library drives both the tuning methods (internal/core)
// and the statistical timing of synthesized designs (internal/stattime).
package statlib

import (
	"errors"
	"fmt"
	"math"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/liberty"
	"stdcelltune/internal/lut"
	"stdcelltune/internal/robust"
)

// Library is a statistical library: same cell/pin/arc structure as the
// source libraries, but every delay table is replaced by a mean table and
// a sigma table.
type Library struct {
	Name      string
	Samples   int // number of Monte-Carlo instances folded in
	Cells     map[string]*Cell
	CellOrder []string // original library order for deterministic output

	// Quarantine lists the cells Build skipped because their statistics
	// were degenerate (missing from an instance, mismatched structure,
	// non-finite or negative folded values). Consumers degrade: the
	// tuner leaves quarantined cells unrestricted and statistical timing
	// falls back to their nominal STA delay with zero sigma.
	Quarantine *robust.Quarantine

	// slab is the contiguous structure-of-arrays backing every table of
	// the library is carved from (nil for hand-assembled libraries): one
	// float64 slab per library, with the per-arc Mean/Sigma tables as
	// views into it in fold order, so a whole cell's statistics sit in
	// adjacent memory. Tables stay valid for the library's lifetime.
	slab *lut.Slab
}

// Quarantined reports whether Build skipped the named cell.
func (l *Library) Quarantined(name string) bool { return l.Quarantine.Has(name) }

// Cell is one cell's statistics.
type Cell struct {
	Name          string
	Area          float64
	DriveStrength int
	Footprint     string
	Pins          []*Pin
}

// Pin is one output pin with its statistical arcs.
type Pin struct {
	Name   string
	MaxCap float64
	Arcs   []*Arc
}

// Arc carries the per-entry statistics of one timing arc. MeanRise/Fall
// estimate the nominal delay; SigmaRise/Fall the local-variation
// standard deviation.
type Arc struct {
	RelatedPin string
	MeanRise   *lut.Table
	MeanFall   *lut.Table
	SigmaRise  *lut.Table
	SigmaFall  *lut.Table
}

// Build folds N Monte-Carlo library instances into a statistical library
// (the Fig. 2 process): for every cell, every output pin, every arc and
// every table entry, the entry values across the N libraries form a
// temporary table whose mean and standard deviation land in the same
// position of the statistical library.
//
// A cell whose data is degenerate — absent from an instance, arc/pin
// structure differing between instances, folded statistics non-finite
// or negative, non-monotone table axes — is skipped into the library's
// Quarantine report instead of failing the whole build. Build fails
// hard only when more than robust.DefaultQuarantineLimit of the cells
// are quarantined.
func Build(name string, instances []*liberty.Library) (*Library, error) {
	if len(instances) < 2 {
		return nil, errors.New("statlib: need at least two instances")
	}
	ref := instances[0]
	sl := &Library{
		Name: name, Samples: len(instances), Cells: make(map[string]*Cell),
		Quarantine: robust.NewQuarantine("statlib"),
		slab:       lut.NewSlab(foldSlabHint(ref)),
	}
	sl.Quarantine.Total = len(ref.Cells)
	cells := make([]*liberty.Cell, len(instances))
	for _, refCell := range ref.Cells {
		quarantined := false
		for i, inst := range instances {
			c := inst.Cell(refCell.Name)
			if c == nil {
				sl.Quarantine.Add(refCell.Name, fmt.Sprintf("missing from instance %d", i))
				quarantined = true
				break
			}
			cells[i] = c
		}
		if quarantined {
			continue
		}
		sc, err := buildCell(cells, sl.slab)
		if err != nil {
			sl.Quarantine.Add(refCell.Name, err.Error())
			continue
		}
		if reason := degenerateCell(sc); reason != "" {
			sl.Quarantine.Add(refCell.Name, reason)
			continue
		}
		sl.Cells[sc.Name] = sc
		sl.CellOrder = append(sl.CellOrder, sc.Name)
	}
	if err := sl.Quarantine.Check(robust.DefaultQuarantineLimit); err != nil {
		return nil, err
	}
	return sl, nil
}

// degenerateCell validates the folded statistics of one cell: every
// table must have valid ascending axes, finite values, non-negative
// mean delays and non-negative sigmas. It returns an empty string for a
// healthy cell, else the quarantine reason.
//
// The four tables are visited in a fixed order (mean_rise, mean_fall,
// sigma_rise, sigma_fall), so a cell with defects in more than one
// table always reports the same reason — quarantine reports must stay
// bit-identical run to run (the PR-1 determinism guarantee; a map
// literal here made the reason depend on iteration order).
func degenerateCell(c *Cell) string {
	for _, p := range c.Pins {
		for _, a := range p.Arcs {
			for _, nt := range []struct {
				name string
				tb   *lut.Table
			}{
				{"mean_rise", a.MeanRise}, {"mean_fall", a.MeanFall},
				{"sigma_rise", a.SigmaRise}, {"sigma_fall", a.SigmaFall},
			} {
				name, tb := nt.name, nt.tb
				if tb == nil {
					continue
				}
				if err := tb.Validate(); err != nil {
					return fmt.Sprintf("pin %s arc %s %s: %v", p.Name, a.RelatedPin, name, err)
				}
				for i := range tb.Values {
					for j, v := range tb.Values[i] {
						if math.IsNaN(v) || math.IsInf(v, 0) {
							return fmt.Sprintf("pin %s arc %s %s[%d][%d] non-finite", p.Name, a.RelatedPin, name, i, j)
						}
						if v < 0 {
							kind := "sigma"
							if name == "mean_rise" || name == "mean_fall" {
								kind = "mean delay"
							}
							return fmt.Sprintf("pin %s arc %s %s[%d][%d] negative %s (%g)", p.Name, a.RelatedPin, name, i, j, kind, v)
						}
					}
				}
			}
		}
	}
	return ""
}

// foldSlabHint pre-computes the float volume of the folded library —
// two stat tables (mean, sigma) per source rise and fall table — so the
// structure-of-arrays slab lands in one chunk. Quarantined cells make
// the hint a slight overestimate, which only leaves slab tail unused.
func foldSlabHint(ref *liberty.Library) int {
	dims := func(t *lut.Table) int {
		if t == nil {
			return 0
		}
		return len(t.Loads) * len(t.Slews)
	}
	total := 0
	for _, c := range ref.Cells {
		for _, p := range c.Pins {
			if p.Direction != liberty.Output {
				continue
			}
			for _, a := range p.Timing {
				total += 2 * (dims(a.CellRise) + dims(a.CellFall))
			}
		}
	}
	return total
}

func buildCell(cells []*liberty.Cell, slab *lut.Slab) (*Cell, error) {
	ref := cells[0]
	sc := &Cell{
		Name:          ref.Name,
		Area:          ref.Area,
		DriveStrength: ref.DriveStrength,
		Footprint:     ref.Footprint,
	}
	for pi, refPin := range ref.Pins {
		if refPin.Direction != liberty.Output {
			continue
		}
		// Structure must agree across every instance — a dropped or
		// extra arc anywhere (truncated .lib, fault injection) makes the
		// whole cell unusable for folding. The check runs even when the
		// reference pin has no arcs: an arc-less pin that other instances
		// disagree with means the *reference* lost its arcs, not that the
		// pin is legitimately untimed (tie cells agree everywhere).
		for i, c := range cells {
			if pi >= len(c.Pins) || c.Pins[pi].Name != refPin.Name {
				return nil, fmt.Errorf("pin structure mismatch in instance %d", i)
			}
			if got, want := len(c.Pins[pi].Timing), len(refPin.Timing); got != want {
				return nil, fmt.Errorf("pin %s has %d arcs in instance %d, want %d", refPin.Name, got, i, want)
			}
		}
		if len(refPin.Timing) == 0 {
			continue
		}
		sp := &Pin{Name: refPin.Name, MaxCap: refPin.MaxCap}
		for ai := range refPin.Timing {
			rises := make([]*lut.Table, len(cells))
			falls := make([]*lut.Table, len(cells))
			for i, c := range cells {
				arc := c.Pins[pi].Timing[ai]
				if arc.RelatedPin != refPin.Timing[ai].RelatedPin {
					return nil, fmt.Errorf("pin %s arc %d related to %s in instance %d, want %s",
						refPin.Name, ai, arc.RelatedPin, i, refPin.Timing[ai].RelatedPin)
				}
				rises[i] = arc.CellRise
				falls[i] = arc.CellFall
			}
			mr, sr, err := foldTables(slab, rises)
			if err != nil {
				return nil, err
			}
			mf, sf, err := foldTables(slab, falls)
			if err != nil {
				return nil, err
			}
			sp.Arcs = append(sp.Arcs, &Arc{
				RelatedPin: refPin.Timing[ai].RelatedPin,
				MeanRise:   mr, SigmaRise: sr,
				MeanFall: mf, SigmaFall: sf,
			})
		}
		sc.Pins = append(sc.Pins, sp)
	}
	return sc, nil
}

// usableSample reports whether one instance's table entry may enter
// the fold: non-finite and negative samples (a characterizer that
// failed to converge or mis-measured on one instance — a real delay is
// never below zero) are dropped per entry rather than poisoning it.
func usableSample(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// foldTables computes per-entry mean and sigma across the instance
// tables. This is the innermost step of Fig. 2: per (load, slew) entry,
// the values across the N libraries are reduced to their mean and
// unbiased standard deviation, stored at the same position of two
// slab-backed tables.
//
// The reduction streams the exact two-pass accumulation dist.MeanStdDev
// performs on a buffer — sum in instance order, divide once, then sum
// the squared deviations in the same order — without materializing the
// N-length buffer, so the fold is O(1) in N and still bitwise-identical
// to the buffered form (the pipeline's recorded outputs depend on the
// two-pass association order; see dist.Welford for why the single-pass
// streaming accumulator is not used here). An entry needs at least two
// usable samples (see usableSample) to have statistics at all.
func foldTables(slab *lut.Slab, tables []*lut.Table) (mean, sigma *lut.Table, err error) {
	ref := tables[0]
	if ref == nil {
		return nil, nil, nil
	}
	for _, t := range tables[1:] {
		if t == nil || !lut.SameAxes(ref, t) {
			return nil, nil, errors.New("statlib: instance tables have mismatched axes")
		}
	}
	mean = lut.NewIn(slab, ref.Loads, ref.Slews)
	sigma = lut.NewIn(slab, ref.Loads, ref.Slews)
	for i := range ref.Loads {
		for j := range ref.Slews {
			sum, n := 0.0, 0
			for _, t := range tables {
				if v := t.Values[i][j]; usableSample(v) {
					sum += v
					n++
				}
			}
			if n < 2 {
				return nil, nil, fmt.Errorf("statlib: entry [%d][%d] has %d usable samples of %d, need 2",
					i, j, n, len(tables))
			}
			m := sum / float64(n)
			sq := 0.0
			for _, t := range tables {
				if v := t.Values[i][j]; usableSample(v) {
					d := v - m
					sq += d * d
				}
			}
			mean.Values[i][j] = m
			sigma.Values[i][j] = math.Sqrt(sq / float64(n-1))
		}
	}
	return mean, sigma, nil
}

// Cell returns the named cell or nil.
func (l *Library) Cell(name string) *Cell { return l.Cells[name] }

// Pin returns the named output pin or nil.
func (c *Cell) Pin(name string) *Pin {
	for _, p := range c.Pins {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Arc returns the arc related to the given input pin, or nil.
func (p *Pin) Arc(related string) *Arc {
	for _, a := range p.Arcs {
		if a.RelatedPin == related {
			return a
		}
	}
	return nil
}

// Stats returns the interpolated worst-case (max of rise/fall) mean and
// sigma of the arc at an operating point, via bilinear interpolation
// (Section V.A).
func (a *Arc) Stats(load, slew float64) dist.Normal {
	mu := math.Max(a.MeanRise.Lookup(load, slew), a.MeanFall.Lookup(load, slew))
	sg := math.Max(a.SigmaRise.Lookup(load, slew), a.SigmaFall.Lookup(load, slew))
	return dist.Normal{Mu: mu, Sigma: sg}
}

// SigmaTables returns all sigma tables of the pin (rise and fall of every
// arc) — the inputs to the per-pin max-equivalent LUT of Section VI.C.
func (p *Pin) SigmaTables() []*lut.Table {
	var ts []*lut.Table
	for _, a := range p.Arcs {
		ts = append(ts, a.SigmaRise, a.SigmaFall)
	}
	return ts
}

// MaxSigmaTable folds the pin's sigma tables into the worst-case
// equivalent table ("for every output pin of a cell, a maximum equivalent
// look-up table is created by taking the maximum value for each entry of
// the related tables").
func (p *Pin) MaxSigmaTable() (*lut.Table, error) {
	return lut.MaxEquivalent(p.SigmaTables()...)
}

// MaxSigma returns the library-wide maximum sigma value, used to scale
// Fig. 7 style summaries.
func (l *Library) MaxSigma() float64 {
	m := 0.0
	for _, c := range l.Cells {
		for _, p := range c.Pins {
			for _, t := range p.SigmaTables() {
				if v := t.Max(); v > m {
					m = v
				}
			}
		}
	}
	return m
}
