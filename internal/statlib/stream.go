package statlib

import (
	"errors"
	"fmt"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/liberty"
	"stdcelltune/internal/lut"
	"stdcelltune/internal/robust"
)

// streamArc accumulates one timing arc's per-entry statistics across
// the instance stream: one Welford accumulator per (load, slew) entry,
// flattened row-major, for each of the rise and fall tables.
type streamArc struct {
	relatedPin       string
	riseRef, fallRef *lut.Table // axes reference from instance 0; nil = untabulated edge
	rise, fall       []dist.Welford
}

type streamPin struct {
	name   string
	maxCap float64
	arcs   []*streamArc
}

// streamCell is one cell's in-flight accumulation. A quarantined cell
// keeps its entry (so later instances skip it cheaply) but drops its
// accumulators.
type streamCell struct {
	ref  *liberty.Cell // instance-0 cell, the structural reference
	pins []*streamPin
	bad  bool
}

// BuildStream folds N Monte-Carlo library instances into a statistical
// library without ever holding more than one instance in memory: gen(i)
// produces instance i on demand (parse a .lib, run a characterizer, …),
// its entries are folded into streaming Welford accumulators, and the
// instance is released before the next is produced. Memory is O(library
// size), independent of N — Build, by contrast, needs all N instances
// materialized at once.
//
// The trade: BuildStream uses the single-pass Welford recurrence, whose
// results agree with Build's two-pass fold only to a few ulps (see the
// dist.Welford float contract), not bitwise. Flows pinned to recorded
// outputs keep Build; BuildStream is for tolerance-specified flows where
// N is large enough that materializing every instance is the bottleneck.
//
// Structure checking and quarantine behavior mirror Build: instance 0
// fixes the cell/pin/arc structure, any instance disagreeing with it
// quarantines the cell (not the build), and the build fails hard only
// past robust.DefaultQuarantineLimit. gen errors are fatal — a missing
// instance leaves every accumulator short one sample, which would skew
// all statistics rather than one cell's.
func BuildStream(name string, n int, gen func(i int) (*liberty.Library, error)) (*Library, error) {
	if n < 2 {
		return nil, errors.New("statlib: need at least two instances")
	}
	ref, err := gen(0)
	if err != nil {
		return nil, fmt.Errorf("statlib: instance 0: %w", err)
	}
	sl := &Library{
		Name: name, Samples: n, Cells: make(map[string]*Cell),
		Quarantine: robust.NewQuarantine("statlib"),
		slab:       lut.NewSlab(foldSlabHint(ref)),
	}
	sl.Quarantine.Total = len(ref.Cells)

	// Instance 0 seeds the accumulators and the structural reference.
	acc := make([]*streamCell, 0, len(ref.Cells))
	for _, refCell := range ref.Cells {
		sc := &streamCell{ref: refCell}
		sc.init()
		acc = append(acc, sc)
	}

	// Remaining instances are produced, folded, and released one at a
	// time; the loop body never retains inst.
	for i := 1; i < n; i++ {
		inst, err := gen(i)
		if err != nil {
			return nil, fmt.Errorf("statlib: instance %d: %w", i, err)
		}
		for _, sc := range acc {
			if sc.bad {
				continue
			}
			if err := sc.fold(inst, i); err != nil {
				sl.Quarantine.Add(sc.ref.Name, err.Error())
				sc.quarantine()
			}
		}
	}

	for _, sc := range acc {
		if sc.bad {
			continue
		}
		cell, err := sc.materialize(sl.slab, n)
		if err != nil {
			sl.Quarantine.Add(sc.ref.Name, err.Error())
			continue
		}
		if reason := degenerateCell(cell); reason != "" {
			sl.Quarantine.Add(sc.ref.Name, reason)
			continue
		}
		sl.Cells[cell.Name] = cell
		sl.CellOrder = append(sl.CellOrder, cell.Name)
	}
	if err := sl.Quarantine.Check(robust.DefaultQuarantineLimit); err != nil {
		return nil, err
	}
	return sl, nil
}

// init builds the accumulator grids from the reference cell and folds
// the reference's own samples in.
func (sc *streamCell) init() {
	for _, refPin := range sc.ref.Pins {
		if refPin.Direction != liberty.Output || len(refPin.Timing) == 0 {
			continue
		}
		sp := &streamPin{name: refPin.Name, maxCap: refPin.MaxCap}
		for _, arc := range refPin.Timing {
			sa := &streamArc{relatedPin: arc.RelatedPin}
			if t := arc.CellRise; t != nil {
				sa.riseRef = t
				sa.rise = make([]dist.Welford, len(t.Loads)*len(t.Slews))
				foldGrid(sa.rise, t)
			}
			if t := arc.CellFall; t != nil {
				sa.fallRef = t
				sa.fall = make([]dist.Welford, len(t.Loads)*len(t.Slews))
				foldGrid(sa.fall, t)
			}
			sp.arcs = append(sp.arcs, sa)
		}
		sc.pins = append(sc.pins, sp)
	}
}

// fold adds instance i's samples for this cell, enforcing the same
// structural agreement Build enforces.
func (sc *streamCell) fold(inst *liberty.Library, i int) error {
	c := inst.Cell(sc.ref.Name)
	if c == nil {
		return fmt.Errorf("missing from instance %d", i)
	}
	ap := 0 // index into sc.pins, which holds only timed output pins
	for pi, refPin := range sc.ref.Pins {
		if refPin.Direction != liberty.Output {
			continue
		}
		// Same structural agreement Build enforces, including on
		// arc-less output pins (see buildCell for why).
		if pi >= len(c.Pins) || c.Pins[pi].Name != refPin.Name {
			return fmt.Errorf("pin structure mismatch in instance %d", i)
		}
		if got, want := len(c.Pins[pi].Timing), len(refPin.Timing); got != want {
			return fmt.Errorf("pin %s has %d arcs in instance %d, want %d", refPin.Name, got, i, want)
		}
		if len(refPin.Timing) == 0 {
			continue
		}
		sp := sc.pins[ap]
		ap++
		for ai, arc := range c.Pins[pi].Timing {
			sa := sp.arcs[ai]
			if arc.RelatedPin != sa.relatedPin {
				return fmt.Errorf("pin %s arc %d related to %s in instance %d, want %s",
					refPin.Name, ai, arc.RelatedPin, i, sa.relatedPin)
			}
			for _, e := range []struct {
				ref *lut.Table
				t   *lut.Table
				w   []dist.Welford
			}{{sa.riseRef, arc.CellRise, sa.rise}, {sa.fallRef, arc.CellFall, sa.fall}} {
				if e.ref == nil {
					continue
				}
				if e.t == nil || !lut.SameAxes(e.ref, e.t) {
					return fmt.Errorf("pin %s arc %s: instance %d tables have mismatched axes",
						refPin.Name, sa.relatedPin, i)
				}
				foldGrid(e.w, e.t)
			}
		}
	}
	return nil
}

// foldGrid streams one instance table into the flat accumulator grid,
// dropping unusable samples exactly as foldTables does.
func foldGrid(w []dist.Welford, t *lut.Table) {
	cols := len(t.Slews)
	for i := range t.Values {
		row := t.Values[i]
		for j, v := range row {
			if usableSample(v) {
				w[i*cols+j].Add(v)
			}
		}
	}
}

// materialize turns the accumulators into slab-backed mean/sigma tables.
func (sc *streamCell) materialize(slab *lut.Slab, n int) (*Cell, error) {
	cell := &Cell{
		Name:          sc.ref.Name,
		Area:          sc.ref.Area,
		DriveStrength: sc.ref.DriveStrength,
		Footprint:     sc.ref.Footprint,
	}
	for _, sp := range sc.pins {
		p := &Pin{Name: sp.name, MaxCap: sp.maxCap}
		for _, sa := range sp.arcs {
			a := &Arc{RelatedPin: sa.relatedPin}
			var err error
			if a.MeanRise, a.SigmaRise, err = gridTables(slab, sa.riseRef, sa.rise, n); err != nil {
				return nil, err
			}
			if a.MeanFall, a.SigmaFall, err = gridTables(slab, sa.fallRef, sa.fall, n); err != nil {
				return nil, err
			}
			p.Arcs = append(p.Arcs, a)
		}
		cell.Pins = append(cell.Pins, p)
	}
	return cell, nil
}

func gridTables(slab *lut.Slab, ref *lut.Table, w []dist.Welford, n int) (mean, sigma *lut.Table, err error) {
	if ref == nil {
		return nil, nil, nil
	}
	mean = lut.NewIn(slab, ref.Loads, ref.Slews)
	sigma = lut.NewIn(slab, ref.Loads, ref.Slews)
	cols := len(ref.Slews)
	for i := range mean.Values {
		for j := range mean.Values[i] {
			acc := w[i*cols+j]
			if acc.N() < 2 {
				return nil, nil, fmt.Errorf("statlib: entry [%d][%d] has %d usable samples of %d, need 2",
					i, j, acc.N(), n)
			}
			mean.Values[i][j] = acc.Mean()
			sigma.Values[i][j] = acc.StdDev()
		}
	}
	return mean, sigma, nil
}

func (sc *streamCell) quarantine() {
	sc.bad = true
	sc.pins = nil
}
