package statlib

import (
	"strings"
	"testing"

	"stdcelltune/internal/liberty"
)

// TestFromLibertyQuarantinesSigmalessArc: one damaged cell (an arc with
// its ocv_sigma groups stripped) must land in quarantine with a reason
// naming the pin and arc, while every other cell loads normally. The
// old loader hard-failed the whole file, losing 303 good cells with no
// trace of which arc was at fault.
func TestFromLibertyQuarantinesSigmalessArc(t *testing.T) {
	_, sl := buildSmall(t, 5)
	lib := sl.ToLiberty()

	victim := lib.Cell("ND2_4")
	if victim == nil {
		t.Fatal("ND2_4 missing from serialization")
	}
	var pin, rel string
	for _, p := range victim.Pins {
		if p.Direction == liberty.Output && len(p.Timing) > 0 {
			p.Timing[0].SigmaRise = nil
			p.Timing[0].SigmaFall = nil
			pin, rel = p.Name, p.Timing[0].RelatedPin
			break
		}
	}
	if pin == "" {
		t.Fatal("no timed output pin on ND2_4")
	}

	back, err := FromLiberty(lib)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Quarantined("ND2_4") {
		t.Fatal("damaged cell not quarantined")
	}
	if back.Cell("ND2_4") != nil {
		t.Fatal("damaged cell loaded despite quarantine")
	}
	reason := back.Quarantine.Reason("ND2_4")
	if !strings.Contains(reason, pin) || !strings.Contains(reason, rel) {
		t.Errorf("reason %q does not name pin %s / arc %s", reason, pin, rel)
	}
	if want := len(sl.Cells) - 1; len(back.Cells) != want {
		t.Fatalf("loaded %d cells, want %d", len(back.Cells), want)
	}
	if back.Quarantine.Total != len(sl.Cells) {
		t.Errorf("Total = %d, want %d", back.Quarantine.Total, len(sl.Cells))
	}
}

// TestFromLibertyDoesNotAliasInput: the loaded library must survive the
// parsed input being mutated — its tables are slab-backed deep copies.
func TestFromLibertyDoesNotAliasInput(t *testing.T) {
	_, sl := buildSmall(t, 5)
	lib := sl.ToLiberty()
	back, err := FromLiberty(lib)
	if err != nil {
		t.Fatal(err)
	}
	src := lib.Cell("INV_4").Pins[0].Timing[0]
	got := back.Cell("INV_4").Pins[0].Arcs[0]
	before := got.SigmaRise.Values[0][0]
	src.SigmaRise.Values[0][0] = before + 1e9
	if got.SigmaRise.Values[0][0] != before {
		t.Fatal("loaded library aliases the parsed input tables")
	}
	if !got.SigmaRise.Contiguous() || !got.MeanRise.Contiguous() {
		t.Error("loaded tables not slab-backed")
	}
}
