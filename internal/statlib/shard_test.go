package statlib

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/lut"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

// foldParts runs FoldShard over every range of the given split,
// round-tripping each partial through JSON like the cluster wire does.
func foldParts(t *testing.T, name string, n, size int, libs []*liberty.Library) []*Partial {
	t.Helper()
	ranges := ShardRanges(n, size)
	parts := make([]*Partial, len(ranges))
	for k, r := range ranges {
		p, err := FoldShard(name, n, len(ranges), k, r[0], r[1], func(i int) (*liberty.Library, error) {
			return libs[i], nil
		})
		if err != nil {
			t.Fatalf("shard %d: %v", k, err)
		}
		raw, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back Partial
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		parts[k] = &back
	}
	return parts
}

func libsEqual(t *testing.T, label string, a, b *Library, tol float64) {
	t.Helper()
	if a.Samples != b.Samples || len(a.Cells) != len(b.Cells) || len(a.CellOrder) != len(b.CellOrder) {
		t.Fatalf("%s: structure %d cells/%d samples vs %d/%d", label, len(a.Cells), a.Samples, len(b.Cells), b.Samples)
	}
	for i := range a.CellOrder {
		if a.CellOrder[i] != b.CellOrder[i] {
			t.Fatalf("%s: cell order [%d] %s vs %s", label, i, a.CellOrder[i], b.CellOrder[i])
		}
	}
	for _, name := range a.CellOrder {
		ac, bc := a.Cell(name), b.Cell(name)
		for pi, ap := range ac.Pins {
			bp := bc.Pins[pi]
			for ai, aa := range ap.Arcs {
				ba := bp.Arcs[ai]
				for _, pair := range []struct {
					label string
					a, b  *lut.Table
				}{
					{"mean_rise", aa.MeanRise, ba.MeanRise},
					{"mean_fall", aa.MeanFall, ba.MeanFall},
					{"sigma_rise", aa.SigmaRise, ba.SigmaRise},
					{"sigma_fall", aa.SigmaFall, ba.SigmaFall},
				} {
					if (pair.a == nil) != (pair.b == nil) {
						t.Fatalf("%s: %s/%s %s nil mismatch", label, name, ap.Name, pair.label)
					}
					if pair.a == nil {
						continue
					}
					for i := range pair.a.Values {
						for j, av := range pair.a.Values[i] {
							bv := pair.b.Values[i][j]
							if tol == 0 {
								if av != bv {
									t.Fatalf("%s: %s/%s arc %s %s[%d][%d]: %v != %v (want bitwise)",
										label, name, ap.Name, aa.RelatedPin, pair.label, i, j, av, bv)
								}
								continue
							}
							if rel := math.Abs(av-bv) / (math.Abs(bv) + 1e-30); rel > tol {
								t.Fatalf("%s: %s/%s arc %s %s[%d][%d]: %g vs %g (rel %g)",
									label, name, ap.Name, aa.RelatedPin, pair.label, i, j, av, bv, rel)
							}
						}
					}
				}
			}
		}
	}
}

// TestMergeShardsMatchesBuild: the sharded fold-and-merge must agree
// with the buffered two-pass Build to the same tolerance BuildStream
// does — sharding is a re-bracketing of the Welford stream, bounded by
// the dist.Welford ulp contract, not a different computation.
func TestMergeShardsMatchesBuild(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	const n = 20
	libs := variation.Instances(cat, variation.Config{N: n, Seed: 1, CharNoise: 0.02})
	want, err := Build("stat", libs)
	if err != nil {
		t.Fatal(err)
	}

	ref := cat.BuildLibrary("ref", nil)
	for _, size := range []int{7, 4, 1} {
		parts := foldParts(t, "stat", n, size, libs)
		got, err := MergeShards("stat", n, ref, parts)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		libsEqual(t, fmt.Sprintf("size %d vs build", size), got, want, 1e-9)
	}
}

// TestMergeShardsArrivalOrderInvariant: merging the same partial set
// passed in any order produces bitwise-identical tables — the fixed
// shard-order determinism contract of the cluster tier.
func TestMergeShardsArrivalOrderInvariant(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	const n = 11
	libs := variation.Instances(cat, variation.Config{N: n, Seed: 3, CharNoise: 0.02})
	ref := cat.BuildLibrary("ref", nil)
	parts := foldParts(t, "stat", n, 3, libs)

	base, err := MergeShards("stat", n, ref, parts)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]int{{3, 1, 0, 2}, {2, 3, 0, 1}, {1, 0, 3, 2}} {
		shuffled := make([]*Partial, len(parts))
		for i, k := range order {
			shuffled[i] = parts[k]
		}
		got, err := MergeShards("stat", n, ref, shuffled)
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		libsEqual(t, "arrival order", got, base, 0)
	}
}

// TestMergeShardsValidation: an incomplete, overlapping, or
// inconsistent shard set must be rejected — a silently dropped or
// double-counted shard is exactly the corruption the cluster tier's
// kill-a-worker test guards against.
func TestMergeShardsValidation(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	const n = 8
	libs := variation.Instances(cat, variation.Config{N: n, Seed: 5, CharNoise: 0.02})
	ref := cat.BuildLibrary("ref", nil)
	parts := foldParts(t, "stat", n, 2, libs) // 4 shards

	cases := []struct {
		label  string
		mutate func([]*Partial) []*Partial
	}{
		{"missing shard", func(ps []*Partial) []*Partial { return ps[:3] }},
		{"duplicated shard", func(ps []*Partial) []*Partial { return []*Partial{ps[0], ps[1], ps[1], ps[3]} }},
		{"wrong N", func(ps []*Partial) []*Partial {
			q := *ps[2]
			q.N = n + 1
			return []*Partial{ps[0], ps[1], &q, ps[3]}
		}},
		{"wrong library", func(ps []*Partial) []*Partial {
			q := *ps[0]
			q.Name = "other"
			return []*Partial{&q, ps[1], ps[2], ps[3]}
		}},
		{"bad schema", func(ps []*Partial) []*Partial {
			q := *ps[0]
			q.Schema = "stdcelltune-shard/0"
			return []*Partial{&q, ps[1], ps[2], ps[3]}
		}},
		{"gap", func(ps []*Partial) []*Partial {
			q := *ps[1]
			q.Lo, q.Hi = 3, 4
			return []*Partial{ps[0], &q, ps[2], ps[3]}
		}},
		{"empty set", func(ps []*Partial) []*Partial { return nil }},
	}
	for _, tc := range cases {
		if _, err := MergeShards("stat", n, ref, tc.mutate(append([]*Partial(nil), parts...))); err == nil {
			t.Errorf("%s: merge accepted a corrupt shard set", tc.label)
		}
	}

	// The untouched set still merges — the cases above failed for the
	// injected corruption, not a broken fixture.
	if _, err := MergeShards("stat", n, ref, parts); err != nil {
		t.Fatalf("control merge failed: %v", err)
	}
}

// TestFoldShardSingleInstance: a tail shard can hold exactly one
// instance; its per-entry counts are 1 and the merge still reproduces
// the full-stream statistics.
func TestFoldShardSingleInstance(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	const n = 5
	libs := variation.Instances(cat, variation.Config{N: n, Seed: 2, CharNoise: 0.02})
	parts := foldParts(t, "stat", n, 2, libs) // [0,2) [2,4) [4,5)
	tail := parts[2]
	if tail.Lo != 4 || tail.Hi != 5 {
		t.Fatalf("tail shard range [%d,%d), want [4,5)", tail.Lo, tail.Hi)
	}
	// Every tail-shard accumulator saw exactly one sample.
	for _, pc := range tail.Cells {
		for _, pp := range pc.Pins {
			for _, pa := range pp.Arcs {
				for _, s := range pa.Rise {
					if s.N != 1 {
						t.Fatalf("tail shard rise count %d, want 1", s.N)
					}
				}
				for _, s := range pa.Fall {
					if s.N != 1 {
						t.Fatalf("tail shard fall count %d, want 1", s.N)
					}
				}
			}
		}
	}

	want, err := Build("stat", libs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeShards("stat", n, cat.BuildLibrary("ref", nil), parts)
	if err != nil {
		t.Fatal(err)
	}
	libsEqual(t, "single-instance tail", got, want, 1e-9)
}

func TestShardRanges(t *testing.T) {
	cases := []struct {
		n, size int
		want    [][2]int
	}{
		{10, 4, [][2]int{{0, 4}, {4, 8}, {8, 10}}},
		{10, 10, [][2]int{{0, 10}}},
		{10, 25, [][2]int{{0, 10}}},
		{10, 0, [][2]int{{0, 10}}},
		{3, 1, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{0, 4, nil},
	}
	for _, tc := range cases {
		got := ShardRanges(tc.n, tc.size)
		if len(got) != len(tc.want) {
			t.Fatalf("ShardRanges(%d,%d) = %v, want %v", tc.n, tc.size, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("ShardRanges(%d,%d) = %v, want %v", tc.n, tc.size, got, tc.want)
			}
		}
	}
}
