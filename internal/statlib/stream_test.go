package statlib

import (
	"fmt"
	"math"
	"testing"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/lut"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

// TestBuildStreamMatchesBuild: the streaming Welford fold must agree
// with the buffered two-pass fold to tight relative tolerance (not
// bitwise — see the dist.Welford contract) on every entry of every
// table, and must request each instance exactly once, in order.
func TestBuildStreamMatchesBuild(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	const n = 20
	libs := variation.Instances(cat, variation.Config{N: n, Seed: 1, CharNoise: 0.02})
	want, err := Build("stat", libs)
	if err != nil {
		t.Fatal(err)
	}

	calls := 0
	got, err := BuildStream("stat", n, func(i int) (*liberty.Library, error) {
		if i != calls {
			t.Fatalf("gen(%d) out of order, expected gen(%d)", i, calls)
		}
		calls++
		return libs[i], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != n {
		t.Fatalf("gen called %d times, want %d", calls, n)
	}

	if got.Samples != want.Samples || len(got.Cells) != len(want.Cells) {
		t.Fatalf("structure: %d cells/%d samples, want %d/%d",
			len(got.Cells), got.Samples, len(want.Cells), want.Samples)
	}
	if len(got.CellOrder) != len(want.CellOrder) {
		t.Fatalf("cell order %d want %d", len(got.CellOrder), len(want.CellOrder))
	}
	for i := range want.CellOrder {
		if got.CellOrder[i] != want.CellOrder[i] {
			t.Fatalf("cell order [%d] = %s, want %s", i, got.CellOrder[i], want.CellOrder[i])
		}
	}
	for _, name := range want.CellOrder {
		wc, gc := want.Cell(name), got.Cell(name)
		if len(gc.Pins) != len(wc.Pins) {
			t.Fatalf("%s: %d pins want %d", name, len(gc.Pins), len(wc.Pins))
		}
		for pi, wp := range wc.Pins {
			gp := gc.Pins[pi]
			for ai, wa := range wp.Arcs {
				ga := gp.Arcs[ai]
				for _, pair := range []struct {
					label string
					w, g  *lut.Table
				}{
					{"mean_rise", wa.MeanRise, ga.MeanRise},
					{"mean_fall", wa.MeanFall, ga.MeanFall},
					{"sigma_rise", wa.SigmaRise, ga.SigmaRise},
					{"sigma_fall", wa.SigmaFall, ga.SigmaFall},
				} {
					for i := range pair.w.Values {
						for j, w := range pair.w.Values[i] {
							g := pair.g.Values[i][j]
							if rel := math.Abs(g-w) / (math.Abs(w) + 1e-30); rel > 1e-9 {
								t.Fatalf("%s/%s arc %s %s[%d][%d]: stream %g vs build %g (rel %g)",
									name, wp.Name, wa.RelatedPin, pair.label, i, j, g, w, rel)
							}
						}
					}
				}
			}
		}
	}
}

// TestBuildStreamQuarantineParity: a cell that one instance lacks is
// quarantined by both folds, with the rest of the library intact.
func TestBuildStreamQuarantineParity(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	const n = 4
	libs := variation.Instances(cat, variation.Config{N: n, Seed: 7, CharNoise: 0.02})
	// Break one cell in instance 2: drop an arc from its first timed
	// output pin, so the structural check trips in both folds.
	var victim string
damage:
	for _, c := range libs[2].Cells {
		for _, p := range c.Pins {
			if p.Direction == liberty.Output && len(p.Timing) > 0 {
				p.Timing = p.Timing[:len(p.Timing)-1]
				victim = c.Name
				break damage
			}
		}
	}
	if victim == "" {
		t.Fatal("no timed cell to damage")
	}
	damaged := libs

	want, err := Build("stat", damaged)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildStream("stat", n, func(i int) (*liberty.Library, error) {
		return damaged[i], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sl := range []*Library{want, got} {
		if !sl.Quarantined(victim) {
			t.Fatalf("%s not quarantined", victim)
		}
		if sl.Cell(victim) != nil {
			t.Fatalf("%s present despite quarantine", victim)
		}
	}
	if w, g := len(want.Cells), len(got.Cells); w != g {
		t.Fatalf("cell count diverged: build %d, stream %d", w, g)
	}
}

// TestBuildStreamGenError: a generator failure is fatal (a missing
// instance would skew every accumulator), wrapped with the index.
func TestBuildStreamGenError(t *testing.T) {
	boom := fmt.Errorf("characterizer crashed")
	_, err := BuildStream("stat", 3, func(i int) (*liberty.Library, error) {
		if i == 1 {
			return nil, boom
		}
		cat := stdcell.NewCatalogue(stdcell.Typical)
		return variation.Instances(cat, variation.Config{N: 1, Seed: 1, CharNoise: 0.02})[0], nil
	})
	if err == nil {
		t.Fatal("gen error swallowed")
	}
	if want := "statlib: instance 1: characterizer crashed"; err.Error() != want {
		t.Fatalf("err = %q, want %q", err, want)
	}
}

// TestBuildSlabBacking pins the tentpole invariant: every table of a
// built library is a view into the library's contiguous slab, and the
// pre-computed size hint lands the whole fold in a single chunk.
func TestBuildSlabBacking(t *testing.T) {
	_, sl := buildSmall(t, 5)
	if sl.slab == nil {
		t.Fatal("built library has no slab")
	}
	tables, floats, chunks := sl.slab.Stats()
	if chunks != 1 {
		t.Errorf("slab spilled into %d chunks (hint under-estimated)", chunks)
	}
	if tables == 0 || floats == 0 {
		t.Fatalf("slab carved nothing: %d tables, %d floats", tables, floats)
	}
	wantTables, wantFloats := 0, 0
	for _, c := range sl.Cells {
		for _, p := range c.Pins {
			for _, a := range p.Arcs {
				for _, tb := range []*lut.Table{a.MeanRise, a.MeanFall, a.SigmaRise, a.SigmaFall} {
					if tb == nil {
						continue
					}
					if !tb.Contiguous() {
						t.Fatalf("%s/%s: non-contiguous table", c.Name, p.Name)
					}
					wantTables++
					wantFloats += len(tb.Loads) * len(tb.Slews)
				}
			}
		}
	}
	if tables != wantTables || floats != wantFloats {
		t.Errorf("slab stats (%d tables, %d floats) != library volume (%d, %d)",
			tables, floats, wantTables, wantFloats)
	}
}
