package statlib

import (
	"math"
	"strings"
	"testing"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/lut"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/variation"
)

// buildSmall builds a statistical library from N MC instances of the full
// catalogue. Shared across tests via sync-free package-level caching is
// avoided; tests that need it call this (it takes ~100ms for N=20).
func buildSmall(t *testing.T, n int) (*stdcell.Catalogue, *Library) {
	t.Helper()
	cat := stdcell.NewCatalogue(stdcell.Typical)
	libs := variation.Instances(cat, variation.Config{N: n, Seed: 1, CharNoise: 0.02})
	sl, err := Build("stat_"+cat.Corner.Name(), libs)
	if err != nil {
		t.Fatal(err)
	}
	return cat, sl
}

func TestBuildStructure(t *testing.T) {
	cat, sl := buildSmall(t, 5)
	if sl.Samples != 5 {
		t.Errorf("Samples=%d", sl.Samples)
	}
	if len(sl.Cells) != 304 {
		t.Fatalf("cells %d want 304", len(sl.Cells))
	}
	if len(sl.CellOrder) != 304 {
		t.Fatalf("cell order %d want 304", len(sl.CellOrder))
	}
	// Tie cells have no arcs; all others have output pins with arcs.
	for name, c := range sl.Cells {
		spec := cat.Spec(name)
		if spec.Kind == stdcell.KindTie {
			if len(c.Pins) != 0 {
				t.Errorf("%s: tie cell with statistical pins", name)
			}
			continue
		}
		if len(c.Pins) == 0 {
			t.Errorf("%s: no statistical pins", name)
		}
		for _, p := range c.Pins {
			if len(p.Arcs) == 0 {
				t.Errorf("%s/%s: no arcs", name, p.Name)
			}
			for _, a := range p.Arcs {
				if a.MeanRise == nil || a.SigmaRise == nil || a.MeanFall == nil || a.SigmaFall == nil {
					t.Fatalf("%s/%s arc from %s missing tables", name, p.Name, a.RelatedPin)
				}
			}
		}
	}
}

// TestRecoversAnalyticModel: with 50 samples (the paper's N) the
// statistical library's mean must sit within a few percent of the nominal
// delay and its sigma within ~35% of the analytic Pelgrom sigma — the
// same order of estimation error the paper reports for its own
// statistical library ("deviate to an upper-bound of two times").
func TestRecoversAnalyticModel(t *testing.T) {
	cat, sl := buildSmall(t, 50)
	for _, name := range []string{"INV_1", "INV_32", "ND2_4", "NR4_6", "XNR2_8", "DFQ_2"} {
		spec := cat.Spec(name)
		c := sl.Cell(name)
		pin := c.Pins[0]
		arc := pin.Arcs[0]
		axis := spec.LoadAxis()
		for _, li := range []int{0, 3, 6} {
			for _, sj := range []int{0, 3, 6} {
				load, slew := axis[li], stdcell.SlewAxis[sj]
				wantMu := spec.Delay(load, slew, stdcell.Typical) * 1.05 // rise skew
				gotMu := arc.MeanRise.Values[li][sj]
				if math.Abs(gotMu-wantMu)/wantMu > 0.05 {
					t.Errorf("%s mean[%d][%d]=%g want %g", name, li, sj, gotMu, wantMu)
				}
				wantSg := spec.Sigma(load, slew, stdcell.Typical) * 1.05
				gotSg := arc.SigmaRise.Values[li][sj]
				if rel := math.Abs(gotSg-wantSg) / wantSg; rel > 0.35 {
					t.Errorf("%s sigma[%d][%d]=%g want %g (rel err %.2f)", name, li, sj, gotSg, wantSg, rel)
				}
			}
		}
	}
}

// TestSigmaSurfaceShape verifies the Fig. 4/5 structure survives the MC
// estimation: within a family, higher drive ⇒ lower sigma at the same
// relative operating point.
func TestSigmaSurfaceShape(t *testing.T) {
	_, sl := buildSmall(t, 30)
	inv1 := sl.Cell("INV_1").Pins[0].Arcs[0].SigmaRise
	inv32 := sl.Cell("INV_32").Pins[0].Arcs[0].SigmaRise
	// Compare at the same LUT indices (same relative point).
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			if inv32.Values[i][j] >= inv1.Values[i][j] {
				t.Errorf("INV_32 sigma[%d][%d]=%g not below INV_1 %g",
					i, j, inv32.Values[i][j], inv1.Values[i][j])
			}
		}
	}
	// Sigma grows along both axes (allow small MC wiggle by comparing
	// corner to corner).
	s := sl.Cell("ND2_1").Pins[0].Arcs[0].SigmaRise
	if s.Values[6][6] <= s.Values[0][0] {
		t.Error("sigma surface not increasing toward far corner")
	}
}

func TestBuildErrors(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	one := variation.Instances(cat, variation.Config{N: 1, Seed: 1})
	if _, err := Build("x", one); err == nil {
		t.Error("single instance accepted")
	}
	libs := variation.Instances(cat, variation.Config{N: 2, Seed: 1})
	// Remove a cell from the second instance: the build must survive but
	// quarantine the damaged cell rather than silently folding a partial
	// sample set.
	gone := libs[1].Cells[0].Name
	libs[1].Cells = libs[1].Cells[1:]
	mut := &liberty.Library{Name: libs[1].Name, Cells: libs[1].Cells}
	sl, err := Build("x", []*liberty.Library{libs[0], mut})
	if err != nil {
		t.Fatalf("missing cell must quarantine, not fail: %v", err)
	}
	if !sl.Quarantined(gone) {
		t.Errorf("%s not quarantined", gone)
	}
	if sl.Cell(gone) != nil {
		t.Errorf("%s still present in folded library", gone)
	}
	if sl.Quarantine.Len() != 1 {
		t.Errorf("quarantine len %d want 1", sl.Quarantine.Len())
	}
}

func TestQueryHelpers(t *testing.T) {
	_, sl := buildSmall(t, 5)
	c := sl.Cell("ND2_4")
	if c == nil {
		t.Fatal("ND2_4 missing")
	}
	if sl.Cell("NOPE") != nil {
		t.Error("unknown cell should be nil")
	}
	p := c.Pin("Y")
	if p == nil {
		t.Fatal("pin Y missing")
	}
	if c.Pin("Z") != nil {
		t.Error("unknown pin should be nil")
	}
	if p.Arc("A") == nil || p.Arc("B") == nil {
		t.Error("arcs from A and B expected")
	}
	if p.Arc("Q") != nil {
		t.Error("unknown arc should be nil")
	}
	// Stats returns max(rise, fall) interpolation.
	a := p.Arc("A")
	n := a.Stats(a.MeanRise.Loads[2], a.MeanRise.Slews[2])
	if n.Mu < a.MeanFall.Values[2][2] || n.Mu < 0 {
		t.Error("Stats mean below fall table value")
	}
	if n.Sigma <= 0 {
		t.Error("Stats sigma must be positive")
	}
	// On-grid Stats equals the max of the two tables at that entry.
	wantMu := math.Max(a.MeanRise.Values[2][2], a.MeanFall.Values[2][2])
	if math.Abs(n.Mu-wantMu) > 1e-12 {
		t.Errorf("Stats mu %g want %g", n.Mu, wantMu)
	}
}

func TestMaxSigmaTable(t *testing.T) {
	_, sl := buildSmall(t, 5)
	p := sl.Cell("ADDF_4").Pin("S")
	maxT, err := p.MaxSigmaTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range p.SigmaTables() {
		for i := range tb.Values {
			for j := range tb.Values[i] {
				if maxT.Values[i][j] < tb.Values[i][j] {
					t.Fatalf("max-equivalent below member at (%d,%d)", i, j)
				}
			}
		}
	}
	if n := len(p.SigmaTables()); n != 6 { // 3 arcs x rise/fall
		t.Errorf("ADDF S pin sigma tables %d want 6", n)
	}
}

func TestMaxSigma(t *testing.T) {
	_, sl := buildSmall(t, 5)
	m := sl.MaxSigma()
	if m <= 0 {
		t.Fatal("MaxSigma must be positive")
	}
	// No table may exceed it.
	for _, c := range sl.Cells {
		for _, p := range c.Pins {
			for _, tb := range p.SigmaTables() {
				if tb.Max() > m {
					t.Fatal("table above MaxSigma")
				}
			}
		}
	}
}

func TestLibertyRoundTrip(t *testing.T) {
	_, sl := buildSmall(t, 5)
	lib := sl.ToLiberty()
	text, err := liberty.WriteString(lib)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := liberty.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromLiberty(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(sl.Cells) {
		t.Fatalf("cells %d want %d", len(back.Cells), len(sl.Cells))
	}
	a := sl.Cell("INV_4").Pins[0].Arcs[0]
	b := back.Cell("INV_4").Pins[0].Arcs[0]
	for i := range a.SigmaRise.Values {
		for j := range a.SigmaRise.Values[i] {
			if math.Abs(a.SigmaRise.Values[i][j]-b.SigmaRise.Values[i][j]) > 1e-12 {
				t.Fatalf("sigma entry (%d,%d) lost precision", i, j)
			}
		}
	}
	if back.Cell("INV_4").DriveStrength != 4 {
		t.Error("drive strength lost")
	}
}

func TestFromLibertyRejectsNominal(t *testing.T) {
	cat := stdcell.NewCatalogue(stdcell.Typical)
	if _, err := FromLiberty(cat.Lib); err == nil {
		t.Error("nominal library (no sigma tables) accepted as statistical")
	}
}

// TestDegenerateCellReasonDeterministic: a cell with defects in several
// of its four stat tables must always quarantine with the same reason.
// The checker used to iterate a map literal of the tables, so the
// reported reason was whichever defective table the runtime happened to
// visit first — breaking the bit-identical-report guarantee under fault
// injection.
func TestDegenerateCellReasonDeterministic(t *testing.T) {
	mk := func() *Cell {
		mkTab := func(corrupt float64) *lut.Table {
			tb := lut.New([]float64{1, 2}, []float64{1, 2})
			tb.Set(1, 1, corrupt)
			return tb
		}
		// Defects in all four tables: NaN means, negative sigmas.
		return &Cell{
			Name: "BAD_1",
			Pins: []*Pin{{Name: "Y", Arcs: []*Arc{{
				RelatedPin: "A",
				MeanRise:   mkTab(math.NaN()),
				MeanFall:   mkTab(math.NaN()),
				SigmaRise:  mkTab(-1),
				SigmaFall:  mkTab(-2),
			}}}},
		}
	}
	want := degenerateCell(mk())
	if want == "" {
		t.Fatal("multi-defect cell not flagged")
	}
	// The fixed visiting order puts mean_rise first.
	if !strings.Contains(want, "mean_rise") {
		t.Errorf("reason %q should name mean_rise (first table in fixed order)", want)
	}
	for i := 0; i < 100; i++ {
		if got := degenerateCell(mk()); got != want {
			t.Fatalf("run %d: reason %q differs from %q", i, got, want)
		}
	}
}

func TestFoldTablesMismatchedAxes(t *testing.T) {
	a := lut.New([]float64{1, 2}, []float64{1, 2})
	b := lut.New([]float64{1, 3}, []float64{1, 2})
	if _, _, err := foldTables(nil, []*lut.Table{a, b}); err == nil {
		t.Error("mismatched axes accepted")
	}
}

// TestConvergenceWithSamples is the DESIGN.md ablation: the sigma
// estimation error must shrink as N grows (the paper's future-work note
// about using more MC samples).
func TestConvergenceWithSamples(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence sweep skipped in -short mode")
	}
	cat := stdcell.NewCatalogue(stdcell.Typical)
	spec := cat.Spec("NR2_2")
	relErr := func(n int) float64 {
		libs := variation.Instances(cat, variation.Config{N: n, Seed: 42})
		sl, err := Build("x", libs)
		if err != nil {
			t.Fatal(err)
		}
		arc := sl.Cell("NR2_2").Pins[0].Arcs[0]
		sum, cnt := 0.0, 0
		axis := spec.LoadAxis()
		for i := range axis {
			for j := range stdcell.SlewAxis {
				want := spec.Sigma(axis[i], stdcell.SlewAxis[j], stdcell.Typical) * 1.05
				got := arc.SigmaRise.Values[i][j]
				sum += math.Abs(got-want) / want
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	e10, e120 := relErr(10), relErr(120)
	if e120 >= e10 {
		t.Errorf("error did not shrink with samples: N=10 %.3f vs N=120 %.3f", e10, e120)
	}
	if e120 > 0.15 {
		t.Errorf("N=120 error %.3f too large", e120)
	}
}
