package statlib

import (
	"errors"

	"stdcelltune/internal/liberty"
)

// ToLiberty serializes the statistical library in LVF style: the mean
// tables become cell_rise/cell_fall and the sigma tables become
// ocv_sigma_cell_rise/ocv_sigma_cell_fall. The result can be written with
// liberty.Write and loaded back with FromLiberty.
func (l *Library) ToLiberty() *liberty.Library {
	out := &liberty.Library{
		Name:           l.Name,
		TimeUnit:       "1ns",
		CapacitiveUnit: "1pf",
		VoltageUnit:    "1V",
		NominalProcess: 1,
	}
	for _, name := range l.CellOrder {
		c := l.Cells[name]
		lc := &liberty.Cell{
			Name:          c.Name,
			Area:          c.Area,
			DriveStrength: c.DriveStrength,
			Footprint:     c.Footprint,
		}
		for _, p := range c.Pins {
			lp := &liberty.Pin{Name: p.Name, Direction: liberty.Output, MaxCap: p.MaxCap}
			for _, a := range p.Arcs {
				lp.Timing = append(lp.Timing, &liberty.TimingArc{
					RelatedPin: a.RelatedPin,
					CellRise:   a.MeanRise,
					CellFall:   a.MeanFall,
					SigmaRise:  a.SigmaRise,
					SigmaFall:  a.SigmaFall,
					Template:   "stat_template",
				})
			}
			lc.Pins = append(lc.Pins, lp)
		}
		// The statistical library only stores output-pin statistics; a
		// placeholder input pin keeps the cell structurally valid for
		// arc-related references.
		for _, rel := range relatedPins(c) {
			lc.Pins = append(lc.Pins, &liberty.Pin{Name: rel, Direction: liberty.Input})
		}
		out.AddCell(lc)
	}
	return out
}

func relatedPins(c *Cell) []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range c.Pins {
		for _, a := range p.Arcs {
			if !seen[a.RelatedPin] {
				seen[a.RelatedPin] = true
				out = append(out, a.RelatedPin)
			}
		}
	}
	return out
}

// FromLiberty rebuilds a statistical library from its LVF serialization.
func FromLiberty(lib *liberty.Library) (*Library, error) {
	sl := &Library{Name: lib.Name, Cells: make(map[string]*Cell)}
	for _, lc := range lib.Cells {
		c := &Cell{
			Name:          lc.Name,
			Area:          lc.Area,
			DriveStrength: lc.DriveStrength,
			Footprint:     lc.Footprint,
		}
		for _, lp := range lc.Pins {
			if lp.Direction != liberty.Output || len(lp.Timing) == 0 {
				continue
			}
			p := &Pin{Name: lp.Name, MaxCap: lp.MaxCap}
			for _, la := range lp.Timing {
				if la.SigmaRise == nil || la.SigmaFall == nil {
					return nil, errors.New("statlib: arc without sigma tables is not a statistical library")
				}
				p.Arcs = append(p.Arcs, &Arc{
					RelatedPin: la.RelatedPin,
					MeanRise:   la.CellRise,
					MeanFall:   la.CellFall,
					SigmaRise:  la.SigmaRise,
					SigmaFall:  la.SigmaFall,
				})
			}
			c.Pins = append(c.Pins, p)
		}
		sl.Cells[c.Name] = c
		sl.CellOrder = append(sl.CellOrder, c.Name)
	}
	return sl, nil
}
