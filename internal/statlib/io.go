package statlib

import (
	"fmt"

	"stdcelltune/internal/liberty"
	"stdcelltune/internal/lut"
	"stdcelltune/internal/robust"
)

// ToLiberty serializes the statistical library in LVF style: the mean
// tables become cell_rise/cell_fall and the sigma tables become
// ocv_sigma_cell_rise/ocv_sigma_cell_fall. The result can be written with
// liberty.Write and loaded back with FromLiberty.
func (l *Library) ToLiberty() *liberty.Library {
	out := &liberty.Library{
		Name:           l.Name,
		TimeUnit:       "1ns",
		CapacitiveUnit: "1pf",
		VoltageUnit:    "1V",
		NominalProcess: 1,
	}
	for _, name := range l.CellOrder {
		c := l.Cells[name]
		lc := &liberty.Cell{
			Name:          c.Name,
			Area:          c.Area,
			DriveStrength: c.DriveStrength,
			Footprint:     c.Footprint,
		}
		for _, p := range c.Pins {
			lp := &liberty.Pin{Name: p.Name, Direction: liberty.Output, MaxCap: p.MaxCap}
			for _, a := range p.Arcs {
				lp.Timing = append(lp.Timing, &liberty.TimingArc{
					RelatedPin: a.RelatedPin,
					CellRise:   a.MeanRise,
					CellFall:   a.MeanFall,
					SigmaRise:  a.SigmaRise,
					SigmaFall:  a.SigmaFall,
					Template:   "stat_template",
				})
			}
			lc.Pins = append(lc.Pins, lp)
		}
		// The statistical library only stores output-pin statistics; a
		// placeholder input pin keeps the cell structurally valid for
		// arc-related references.
		for _, rel := range relatedPins(c) {
			lc.Pins = append(lc.Pins, &liberty.Pin{Name: rel, Direction: liberty.Input})
		}
		out.AddCell(lc)
	}
	return out
}

func relatedPins(c *Cell) []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range c.Pins {
		for _, a := range p.Arcs {
			if !seen[a.RelatedPin] {
				seen[a.RelatedPin] = true
				out = append(out, a.RelatedPin)
			}
		}
	}
	return out
}

// loadSlabHint sizes the slab for FromLiberty: all four tables of every
// timing arc get re-backed, so the hint is their summed dimensions.
func loadSlabHint(lib *liberty.Library) int {
	dims := func(t *lut.Table) int {
		if t == nil {
			return 0
		}
		return len(t.Loads) * len(t.Slews)
	}
	total := 0
	for _, c := range lib.Cells {
		for _, p := range c.Pins {
			if p.Direction != liberty.Output {
				continue
			}
			for _, a := range p.Timing {
				total += dims(a.CellRise) + dims(a.CellFall) + dims(a.SigmaRise) + dims(a.SigmaFall)
			}
		}
	}
	return total
}

// cloneIn is a nil-tolerant Table.CloneIn, for mean tables an arc may
// legitimately lack.
func cloneIn(t *lut.Table, s *lut.Slab) *lut.Table {
	if t == nil {
		return nil
	}
	return t.CloneIn(s)
}

// FromLiberty rebuilds a statistical library from its LVF serialization.
//
// A cell with an arc missing its sigma tables — a hand-edited file, a
// serializer that dropped the ocv_sigma groups, or a nominal library
// mistaken for a statistical one — is quarantined with a reason naming
// the pin and arc, not silently dropped and not a hard failure: partial
// damage degrades exactly like a degenerate cell in Build does. The
// load fails only when more than robust.DefaultQuarantineLimit of the
// cells are damaged, which is also what rejects a fully nominal library
// (every cell quarantined).
//
// The returned library's tables are deep copies carved from a fresh
// contiguous slab, so it never aliases the parsed input: callers may
// mutate or drop the *liberty.Library afterwards.
func FromLiberty(lib *liberty.Library) (*Library, error) {
	sl := &Library{
		Name: lib.Name, Cells: make(map[string]*Cell),
		Quarantine: robust.NewQuarantine("statlib"),
		slab:       lut.NewSlab(loadSlabHint(lib)),
	}
	sl.Quarantine.Total = len(lib.Cells)
	for _, lc := range lib.Cells {
		c := &Cell{
			Name:          lc.Name,
			Area:          lc.Area,
			DriveStrength: lc.DriveStrength,
			Footprint:     lc.Footprint,
		}
		quarantined := false
	pins:
		for _, lp := range lc.Pins {
			if lp.Direction != liberty.Output || len(lp.Timing) == 0 {
				continue
			}
			p := &Pin{Name: lp.Name, MaxCap: lp.MaxCap}
			for _, la := range lp.Timing {
				if la.SigmaRise == nil || la.SigmaFall == nil {
					sl.Quarantine.Add(lc.Name, fmt.Sprintf(
						"pin %s arc %s: no sigma tables (not statistical data)", lp.Name, la.RelatedPin))
					quarantined = true
					break pins
				}
				p.Arcs = append(p.Arcs, &Arc{
					RelatedPin: la.RelatedPin,
					MeanRise:   cloneIn(la.CellRise, sl.slab),
					MeanFall:   cloneIn(la.CellFall, sl.slab),
					SigmaRise:  la.SigmaRise.CloneIn(sl.slab),
					SigmaFall:  la.SigmaFall.CloneIn(sl.slab),
				})
			}
			c.Pins = append(c.Pins, p)
		}
		if quarantined {
			continue
		}
		sl.Cells[c.Name] = c
		sl.CellOrder = append(sl.CellOrder, c.Name)
	}
	if err := sl.Quarantine.Check(robust.DefaultQuarantineLimit); err != nil {
		return nil, err
	}
	return sl, nil
}
