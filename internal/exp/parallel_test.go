package exp

import (
	"context"
	"testing"
)

// TestSerialParallelIdentity is the determinism contract of the
// experiment fan-out: running the synthesis-heavy drivers on a
// single-worker pool and on the default pool must render byte-identical
// tables and curves. Every unit is single-flight cached and collected
// by index, so scheduling order must not leak into any result.
func TestSerialParallelIdentity(t *testing.T) {
	render := func(workers int) (table3, fig8, fig11 string) {
		t.Helper()
		old := poolWorkers
		poolWorkers = func() int { return workers }
		defer func() { poolWorkers = old }()
		f, err := NewFlow(context.Background(), SmallFlowConfig())
		if err != nil {
			t.Fatal(err)
		}
		t3, err := f.Table3()
		if err != nil {
			t.Fatal(err)
		}
		f8, err := f.Fig8()
		if err != nil {
			t.Fatal(err)
		}
		f11, err := f.Fig11()
		if err != nil {
			t.Fatal(err)
		}
		return t3.Render(), f8.Render(), f11.Render()
	}
	st3, sf8, sf11 := render(1)
	pt3, pf8, pf11 := render(4)
	if st3 != pt3 {
		t.Errorf("Table3 serial != parallel:\n--- serial ---\n%s\n--- parallel ---\n%s", st3, pt3)
	}
	if sf8 != pf8 {
		t.Errorf("Fig8 serial != parallel:\n--- serial ---\n%s\n--- parallel ---\n%s", sf8, pf8)
	}
	if sf11 != pf11 {
		t.Errorf("Fig11 serial != parallel:\n--- serial ---\n%s\n--- parallel ---\n%s", sf11, pf11)
	}
}

// TestSynthOutcomesRecorded checks every cached synthesis unit leaves a
// well-formed outcome row for the manifest, sorted by key.
func TestSynthOutcomesRecorded(t *testing.T) {
	f := smallFlow(t)
	if _, err := f.Baseline(8.0); err != nil {
		t.Fatal(err)
	}
	outs := f.SynthOutcomes()
	if len(outs) == 0 {
		t.Fatal("no synth outcomes recorded")
	}
	for i, o := range outs {
		if o.Key == "" || o.Iterations < 1 || o.FullAnalyses < 1 {
			t.Errorf("outcome %d malformed: %+v", i, o)
		}
		if i > 0 && outs[i-1].Key >= o.Key {
			t.Errorf("outcomes not sorted: %q before %q", outs[i-1].Key, o.Key)
		}
	}
}
