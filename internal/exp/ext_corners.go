package exp

import (
	"fmt"

	"stdcelltune/internal/core"
	"stdcelltune/internal/report"
	"stdcelltune/internal/robust/faultinject"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stattime"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/synth"
	"stdcelltune/internal/variation"
)

// CornerOutcome is one corner's tuning result.
type CornerOutcome struct {
	Corner         stdcell.Corner
	Clock          float64 // clock used at this corner (scaled from typical)
	BaselineSigma  float64
	TunedSigma     float64
	SigmaReduction float64
	AreaIncrease   float64
	Met            bool
}

// ExtCornersResult validates the paper's Section VII.C conclusion end to
// end: because mean and sigma scale by the same factor across corners,
// the tuning method applied at other PVT corners delivers about the same
// *relative* sigma reduction as at typical.
type ExtCornersResult struct {
	Bound    float64
	Outcomes []CornerOutcome // fast, typical, slow
}

// ExtCorners re-runs characterize→tune→synthesize→measure at every
// corner, with the clock scaled by the corner's delay factor so the
// synthesis pressure is equivalent.
func (f *Flow) ExtCorners() (*ExtCornersResult, error) {
	clocks, err := f.Clocks()
	if err != nil {
		return nil, err
	}
	baseClock := clocks.Medium
	const bound = 0.03
	out := &ExtCornersResult{Bound: bound}
	for _, corner := range stdcell.AllCorners {
		oc, err := f.cornerOutcome(corner, baseClock*corner.DelayScale(), bound)
		if err != nil {
			return nil, err
		}
		out.Outcomes = append(out.Outcomes, oc)
	}
	return out, nil
}

func (f *Flow) cornerOutcome(corner stdcell.Corner, clock, bound float64) (CornerOutcome, error) {
	oc := CornerOutcome{Corner: corner, Clock: clock}
	// Typical reuses the main flow's cached artifacts.
	if corner == f.Cfg.Corner {
		baseRes, baseDS, err := f.BaselineStats(clock)
		if err != nil {
			return oc, err
		}
		tRes, tDS, err := f.TunedStats(core.SigmaCeiling, bound, clock)
		if err != nil {
			return oc, err
		}
		fill(&oc, baseRes, baseDS, tRes, tDS)
		return oc, nil
	}
	cat := stdcell.NewCatalogue(corner)
	libs, err := variation.InstancesCtx(f.ctx, cat, variation.Config{N: f.Cfg.Samples, Seed: f.Cfg.Seed, CharNoise: 0.02})
	if err != nil {
		return oc, err
	}
	faultinject.Corrupt(libs, f.Cfg.Fault)
	stat, err := statlib.Build("stat_"+corner.Name(), libs)
	if err != nil {
		return oc, err
	}
	mcu, err := rtlgen.Build(f.Cfg.MCU)
	if err != nil {
		return oc, err
	}
	baseRes, err := synth.Synthesize("mcu", mcu.Net, cat, synth.DefaultOptions(clock))
	if err != nil {
		return oc, err
	}
	baseDS, err := stattime.Analyze(baseRes.Timing, stat, 0)
	if err != nil {
		return oc, err
	}
	// The ceiling scales with the corner: sigma surfaces scale by the
	// corner factor (the paper's §VII.C observation), so the equivalent
	// threshold does too.
	set, _, err := core.NewTuner(stat).Tune(core.ParamsFor(core.SigmaCeiling, bound*corner.DelayScale()))
	if err != nil {
		return oc, err
	}
	opts := synth.DefaultOptions(clock)
	opts.Restrict = set
	tRes, err := synth.Synthesize("mcu", mcu.Net, cat, opts)
	if err != nil {
		return oc, err
	}
	tDS, err := stattime.Analyze(tRes.Timing, stat, 0)
	if err != nil {
		return oc, err
	}
	fill(&oc, baseRes, baseDS, tRes, tDS)
	return oc, nil
}

func fill(oc *CornerOutcome, baseRes *synth.Result, baseDS *stattime.DesignStats, tRes *synth.Result, tDS *stattime.DesignStats) {
	oc.BaselineSigma = baseDS.Design.Sigma
	oc.TunedSigma = tDS.Design.Sigma
	oc.Met = baseRes.Met && tRes.Met
	cmp := stattime.Compare{
		BaselineSigma: baseDS.Design.Sigma, TunedSigma: tDS.Design.Sigma,
		BaselineArea: baseRes.Area(), TunedArea: tRes.Area(),
	}
	oc.SigmaReduction = cmp.SigmaReduction()
	oc.AreaIncrease = cmp.AreaIncrease()
}

// Render draws the per-corner comparison.
func (r *ExtCornersResult) Render() string {
	tb := &report.Table{
		Title:  fmt.Sprintf("Extension: tuning across PVT corners (ceiling %g scaled per corner)", r.Bound),
		Header: []string{"corner", "clock(ns)", "met", "sigma base", "sigma tuned", "sigma dec %", "area inc %"},
	}
	for _, oc := range r.Outcomes {
		tb.AddRow(oc.Corner.String(), oc.Clock, oc.Met,
			oc.BaselineSigma, oc.TunedSigma, 100*oc.SigmaReduction, 100*oc.AreaIncrease)
	}
	return tb.Render() +
		"relative sigma reduction holds across corners (paper Section VII.C)\n"
}
