package exp

import (
	"fmt"
	"sort"
	"strings"

	"stdcelltune/internal/core"
	"stdcelltune/internal/logic"
	"stdcelltune/internal/report"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/stattime"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/synth"
)

// WorkloadOutcome is the tuning result on one design.
type WorkloadOutcome struct {
	Name           string
	Clock          float64
	Cells          int
	TopFamilies    string // the most used families, e.g. "ND2 INV DFQ"
	BaselineSigma  float64
	TunedSigma     float64
	SigmaReduction float64
	AreaIncrease   float64
	Met            bool
}

// ExtWorkloadsResult measures how the tuning generalizes beyond the
// microcontroller: an adder/multiplier-dominated FIR filter and an
// XOR-dominated parallel CRC get the same characterize→tune→synthesize
// treatment.
type ExtWorkloadsResult struct {
	Bound    float64
	Outcomes []WorkloadOutcome
}

// ExtWorkloads runs the sweep over the three designs.
func (f *Flow) ExtWorkloads() (*ExtWorkloadsResult, error) {
	const bound = 0.03
	out := &ExtWorkloadsResult{Bound: bound}

	// The MCU reuses the cached medium-clock runs.
	clocks, err := f.Clocks()
	if err != nil {
		return nil, err
	}
	baseRes, baseDS, err := f.BaselineStats(clocks.Medium)
	if err != nil {
		return nil, err
	}
	tRes, tDS, err := f.TunedStats(core.SigmaCeiling, bound, clocks.Medium)
	if err != nil {
		return nil, err
	}
	out.Outcomes = append(out.Outcomes,
		outcomeOf("mcu", clocks.Medium, baseRes, baseDS, tRes, tDS))

	fir, err := rtlgen.BuildFIR(firConfigFor(f.Cfg))
	if err != nil {
		return nil, err
	}
	oc, err := f.workloadOutcome("fir", fir, bound)
	if err != nil {
		return nil, err
	}
	out.Outcomes = append(out.Outcomes, oc)

	crc, err := rtlgen.BuildCRC(crcConfigFor(f.Cfg))
	if err != nil {
		return nil, err
	}
	oc, err = f.workloadOutcome("crc", crc, bound)
	if err != nil {
		return nil, err
	}
	out.Outcomes = append(out.Outcomes, oc)
	return out, nil
}

func firConfigFor(cfg FlowConfig) rtlgen.FIRConfig {
	if cfg.MCU.Width < 32 {
		return rtlgen.SmallFIRConfig()
	}
	return rtlgen.DefaultFIRConfig()
}

func crcConfigFor(cfg FlowConfig) rtlgen.CRCConfig {
	if cfg.MCU.Width < 32 {
		return rtlgen.SmallCRCConfig()
	}
	return rtlgen.DefaultCRCConfig()
}

// workloadOutcome picks a moderately constrained clock for the design
// (15% margin over the relaxed critical path), then compares baseline
// and tuned synthesis.
func (f *Flow) workloadOutcome(name string, net *logic.Network, bound float64) (WorkloadOutcome, error) {
	oc := WorkloadOutcome{Name: name}
	relaxed, err := synth.Synthesize(name, net, f.Cat, synth.DefaultOptions(16))
	if err != nil {
		return oc, err
	}
	worst := 0.0
	for _, ep := range relaxed.Timing.Endpoints {
		if ep.Arrival > worst {
			worst = ep.Arrival
		}
	}
	clk := (worst+relaxed.Opts.STA.Uncertainty)*1.15 + 0.05
	oc.Clock = clk
	baseRes, err := synth.Synthesize(name, net, f.Cat, synth.DefaultOptions(clk))
	if err != nil {
		return oc, err
	}
	baseDS, err := stattime.Analyze(baseRes.Timing, f.Stat, 0)
	if err != nil {
		return oc, err
	}
	set, _, err := f.Tune(core.SigmaCeiling, bound)
	if err != nil {
		return oc, err
	}
	opts := synth.DefaultOptions(clk)
	opts.Restrict = set
	tRes, err := synth.Synthesize(name, net, f.Cat, opts)
	if err != nil {
		return oc, err
	}
	tDS, err := stattime.Analyze(tRes.Timing, f.Stat, 0)
	if err != nil {
		return oc, err
	}
	return outcomeOf(name, clk, baseRes, baseDS, tRes, tDS), nil
}

func outcomeOf(name string, clk float64, baseRes *synth.Result, baseDS *stattime.DesignStats, tRes *synth.Result, tDS *stattime.DesignStats) WorkloadOutcome {
	cmp := stattime.Compare{
		BaselineSigma: baseDS.Design.Sigma, TunedSigma: tDS.Design.Sigma,
		BaselineArea: baseRes.Area(), TunedArea: tRes.Area(),
	}
	return WorkloadOutcome{
		Name: name, Clock: clk,
		Cells:          len(baseRes.Netlist.Instances),
		TopFamilies:    topFamilies(baseRes, 5),
		BaselineSigma:  baseDS.Design.Sigma,
		TunedSigma:     tDS.Design.Sigma,
		SigmaReduction: cmp.SigmaReduction(),
		AreaIncrease:   cmp.AreaIncrease(),
		Met:            baseRes.Met && tRes.Met,
	}
}

func topFamilies(res *synth.Result, n int) string {
	counts := make(map[string]int)
	for _, inst := range res.Netlist.Instances {
		counts[stdcell.FamilyOf(inst.Spec.Name)]++
	}
	fams := make([]string, 0, len(counts))
	for fam := range counts {
		fams = append(fams, fam)
	}
	sort.Slice(fams, func(i, j int) bool {
		if counts[fams[i]] != counts[fams[j]] {
			return counts[fams[i]] > counts[fams[j]]
		}
		return fams[i] < fams[j]
	})
	if len(fams) > n {
		fams = fams[:n]
	}
	return strings.Join(fams, " ")
}

// Render draws the generalization table.
func (r *ExtWorkloadsResult) Render() string {
	tb := &report.Table{
		Title:  fmt.Sprintf("Extension: tuning across workloads (sigma ceiling %g)", r.Bound),
		Header: []string{"design", "clock(ns)", "cells", "top families", "met", "sigma dec %", "area inc %"},
	}
	for _, oc := range r.Outcomes {
		tb.AddRow(oc.Name, oc.Clock, oc.Cells, oc.TopFamilies, oc.Met,
			100*oc.SigmaReduction, 100*oc.AreaIncrease)
	}
	return tb.Render() +
		"the tuning generalizes: different cell mixes, same sigma-for-area trade\n"
}
