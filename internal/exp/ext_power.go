package exp

import (
	"fmt"

	"stdcelltune/internal/core"
	"stdcelltune/internal/power"
	"stdcelltune/internal/report"
)

// ExtPowerResult quantifies the power cost of variability tolerance —
// the dimension the paper's Section II mentions but leaves unevaluated.
// Tuned designs shift to bigger, lower-sigma cells: leakage and internal
// power rise while the local-variation sigma of the power itself falls
// (the paper's note that the tuning "can also be adjusted to measure...
// transition power").
type ExtPowerResult struct {
	Clock float64
	Bound float64

	Base  *power.Report
	Tuned *power.Report

	SigmaReduction float64 // design delay-sigma reduction of the same run
}

// ExtPower estimates baseline and ceiling-tuned power at the medium
// clock.
func (f *Flow) ExtPower() (*ExtPowerResult, error) {
	clocks, err := f.Clocks()
	if err != nil {
		return nil, err
	}
	clk := clocks.Medium
	best, err := f.bestBound(core.SigmaCeiling, clk)
	if err != nil {
		return nil, err
	}
	bound := best.Bound
	if !best.Met {
		bound = core.SweepBounds(core.SigmaCeiling)[0]
	}
	baseRes, err := f.Baseline(clk)
	if err != nil {
		return nil, err
	}
	tunedRes, err := f.Tuned(core.SigmaCeiling, bound, clk)
	if err != nil {
		return nil, err
	}
	cfg := power.DefaultConfig(clk)
	basePwr, err := power.Estimate(baseRes.Netlist, baseRes.Timing, cfg)
	if err != nil {
		return nil, err
	}
	tunedPwr, err := power.Estimate(tunedRes.Netlist, tunedRes.Timing, cfg)
	if err != nil {
		return nil, err
	}
	return &ExtPowerResult{
		Clock: clk, Bound: bound,
		Base: basePwr, Tuned: tunedPwr,
		SigmaReduction: best.SigmaReduction(),
	}, nil
}

// Render draws the power comparison.
func (r *ExtPowerResult) Render() string {
	tb := &report.Table{
		Title: fmt.Sprintf("Extension: power cost of variability tolerance @ %.2f ns (ceiling %g)",
			r.Clock, r.Bound),
		Header: []string{"component (mW)", "baseline", "tuned", "delta %"},
	}
	row := func(name string, b, t float64) {
		d := 0.0
		if b != 0 {
			d = 100 * (t - b) / b
		}
		tb.AddRow(name, b, t, d)
	}
	row("net switching", r.Base.Switching, r.Tuned.Switching)
	row("cell internal", r.Base.Internal, r.Tuned.Internal)
	row("leakage", r.Base.Leakage, r.Tuned.Leakage)
	row("total", r.Base.Total(), r.Tuned.Total())
	row("internal power sigma", r.Base.SigmaInternal, r.Tuned.SigmaInternal)
	return tb.Render() + fmt.Sprintf(
		"delay-sigma reduction bought: %.0f%%; power is part of the tuning price\n",
		100*r.SigmaReduction)
}
