package exp

import "stdcelltune/internal/digest"

// flowConfigDomain versions the FlowConfig digest layout. Bump it when
// a field is added or re-ordered below, so stale cache entries keyed on
// the old layout can never be confused with new ones.
const flowConfigDomain = "stdcelltune-flowconfig/1"

// Digest returns the canonical content hash of the flow configuration:
// a stable function of every field that influences pipeline output, in
// fixed order, with floats encoded exactly (no decimal-formatting
// drift). The service artifact cache and the run manifest share this
// key, so a manifest's spec_digest can be looked up directly in a warm
// daemon cache.
func (c FlowConfig) Digest() string {
	d := digest.New(flowConfigDomain)
	d.Int("samples", int64(c.Samples))
	d.Int("seed", c.Seed)
	d.Int("mcu.width", int64(c.MCU.Width))
	d.Int("mcu.registers", int64(c.MCU.Registers))
	d.Int("mcu.mulwidth", int64(c.MCU.MulWidth))
	d.Int("mcu.timers", int64(c.MCU.Timers))
	d.Str("corner", c.Corner.Name())
	d.Float("fault.rate", c.Fault.Rate)
	d.Int("fault.seed", c.Fault.Seed)
	for _, m := range c.Fault.Modes {
		d.Int("fault.mode", int64(m))
	}
	return d.Sum()
}
