package exp

import (
	"fmt"
	"strings"

	"stdcelltune/internal/pathmc"
	"stdcelltune/internal/report"
	"stdcelltune/internal/sta"
)

// extractedPaths picks a short, medium and long worst path from the
// baseline high-performance design, approximating the paper's 3/18/57
// cell extraction (scaled to the design's actual maximum depth).
func (f *Flow) extractedPaths() ([]sta.Path, error) {
	clocks, err := f.Clocks()
	if err != nil {
		return nil, err
	}
	res, err := f.Baseline(clocks.HighPerf)
	if err != nil {
		return nil, err
	}
	paths := res.Timing.WorstPaths()
	var nonEmpty []sta.Path
	maxDepth := 0
	for _, p := range paths {
		if p.Depth() > 0 {
			nonEmpty = append(nonEmpty, p)
		}
		if p.Depth() > maxDepth {
			maxDepth = p.Depth()
		}
	}
	if len(nonEmpty) == 0 {
		return nil, fmt.Errorf("exp: no non-empty paths")
	}
	medium := 18
	if medium > maxDepth {
		medium = maxDepth / 2
	}
	long := 57
	if long > maxDepth {
		long = maxDepth
	}
	return pathmc.PickPaths(nonEmpty, 3, medium, long), nil
}

// Fig15Path is the corner sweep of one extracted path.
type Fig15Path struct {
	Depth   int
	Corners []pathmc.CornerPoint
}

// Fig15Result reproduces Fig. 15: Monte-Carlo (N=200) corner behavior of
// three extracted paths — mean and sigma must scale by the same factor.
type Fig15Result struct {
	Paths []Fig15Path
}

// Fig15 runs the corner sweeps.
func (f *Flow) Fig15() (*Fig15Result, error) {
	paths, err := f.extractedPaths()
	if err != nil {
		return nil, err
	}
	res := &Fig15Result{}
	cfg := pathmc.DefaultConfig(f.Cfg.Seed + 100)
	for _, p := range paths {
		pts, err := pathmc.CornerSweep(p, cfg)
		if err != nil {
			return nil, err
		}
		res.Paths = append(res.Paths, Fig15Path{Depth: p.Depth(), Corners: pts})
	}
	return res, nil
}

// Render draws the relative mean/sigma per corner.
func (r *Fig15Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 15: Monte Carlo (N=200) corner scaling of extracted paths\n")
	for _, p := range r.Paths {
		tb := &report.Table{
			Title:  fmt.Sprintf("path depth %d", p.Depth),
			Header: []string{"corner", "mean (ns)", "sigma (ns)", "rel mean", "rel sigma"},
		}
		for _, c := range p.Corners {
			tb.AddRow(c.Corner.String(), c.Stats.Mu, c.Stats.Sigma, c.RelMean, c.RelSigma)
		}
		b.WriteString(tb.Render())
	}
	b.WriteString("mean and sigma scale by (about) the same factor across corners\n")
	return b.String()
}

// Fig16Path is the variation decomposition of one extracted path.
type Fig16Path struct {
	Depth      int
	Total      float64 // sigma with global+local
	LocalOnly  float64 // sigma with local only
	LocalShare float64 // LocalOnly / Total
}

// Fig16Result reproduces Fig. 16: the local-variation contribution for
// short, medium and long paths (the paper reports 65%/37%/6%).
type Fig16Result struct {
	Paths []Fig16Path
}

// Fig16 runs the decompositions.
func (f *Flow) Fig16() (*Fig16Result, error) {
	paths, err := f.extractedPaths()
	if err != nil {
		return nil, err
	}
	res := &Fig16Result{}
	cfg := pathmc.DefaultConfig(f.Cfg.Seed + 200)
	for _, p := range paths {
		d, err := pathmc.Decompose(p, cfg)
		if err != nil {
			return nil, err
		}
		res.Paths = append(res.Paths, Fig16Path{
			Depth:      p.Depth(),
			Total:      d.Total.Sigma,
			LocalOnly:  d.LocalOnly.Sigma,
			LocalShare: d.LocalShare,
		})
	}
	return res, nil
}

// Render draws the contribution table.
func (r *Fig16Result) Render() string {
	tb := &report.Table{
		Title:  "Fig 16: local-variation contribution per path depth (MC N=200)",
		Header: []string{"depth", "sigma total", "sigma local-only", "local share %"},
	}
	for _, p := range r.Paths {
		tb.AddRow(p.Depth, p.Total, p.LocalOnly, 100*p.LocalShare)
	}
	return tb.Render() +
		"local variation dominates short paths and decays with depth\n"
}
