package exp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"stdcelltune/internal/core"
	"stdcelltune/internal/report"
	"stdcelltune/internal/robust"
	"stdcelltune/internal/stattime"
)

// Fig8Result is the clock-period versus cell-area curve of the baseline
// synthesis (Fig. 8); the relaxed constraint sits where the curve goes
// flat.
type Fig8Result struct {
	Periods []float64
	Areas   []float64
	Met     []bool
	Knee    float64 // first period from the fast end where the curve is flat
}

// Fig8 sweeps the baseline synthesis from the minimum period outward.
func (f *Flow) Fig8() (*Fig8Result, error) {
	clocks, err := f.Clocks()
	if err != nil {
		return nil, err
	}
	minClk := clocks.HighPerf
	res := &Fig8Result{}
	// Each period is an independent synthesis probe; the pool runs them
	// concurrently and the index-addressed slices keep the sweep order
	// (and thus the rendered series) identical to the serial loop.
	mults := []float64{1.0, 1.08, 1.25, 1.5, 1.8, 2.2, 2.8, 3.3, 4.15, 5.0}
	res.Periods = make([]float64, len(mults))
	res.Areas = make([]float64, len(mults))
	res.Met = make([]bool, len(mults))
	err = robust.ForEachNamed(f.ctx, "fig8.sweep", poolWorkers(), len(mults), func(_ context.Context, i int) error {
		p := math.Round(minClk*mults[i]*20) / 20
		r, err := f.Baseline(p)
		if err != nil {
			return err
		}
		res.Periods[i] = p
		res.Areas[i] = r.Area()
		res.Met[i] = r.Met
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Knee: the earliest period whose area is within 2% of the final
	// (most relaxed) area.
	final := res.Areas[len(res.Areas)-1]
	res.Knee = res.Periods[len(res.Periods)-1]
	for i := range res.Periods {
		if res.Met[i] && res.Areas[i] <= final*1.02 {
			res.Knee = res.Periods[i]
			break
		}
	}
	return res, nil
}

// Render draws the curve.
func (r *Fig8Result) Render() string {
	s := report.RenderSeries("Fig 8: clock period vs total cell area (baseline)", "period(ns)",
		report.Series{Name: "area(um2)", X: r.Periods, Y: r.Areas})
	return s + fmt.Sprintf("relaxed-timing knee at %.2f ns\n", r.Knee)
}

// CellUseEntry is one bar of the Fig. 9 histogram.
type CellUseEntry struct {
	Cell     string
	Baseline int
	Tuned    int
}

// Fig9Result holds the cell-use histograms at one clock: baseline vs the
// marked (Table 3) tuning method.
type Fig9Result struct {
	Clock    float64
	Method   core.Method
	Bound    float64
	MinCount int
	Entries  []CellUseEntry

	BaselineInvUse int // total inverter+buffer instances (buffering signal)
	TunedInvUse    int
}

// Fig9 builds the histogram for one clock using the sigma-ceiling
// method's best bound (the paper marks the ceiling run in Fig. 9).
func (f *Flow) Fig9(clock float64) (*Fig9Result, error) {
	best, err := f.bestBound(core.SigmaCeiling, clock)
	if err != nil {
		return nil, err
	}
	base, err := f.Baseline(clock)
	if err != nil {
		return nil, err
	}
	bound := best.Bound
	if !best.Met {
		// Fall back to the loosest ceiling for reporting.
		bound = core.SweepBounds(core.SigmaCeiling)[0]
	}
	tuned, err := f.Tuned(core.SigmaCeiling, bound, clock)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{Clock: clock, Method: core.SigmaCeiling, Bound: bound, MinCount: 100}
	bu := base.Netlist.CellUse()
	tu := tuned.Netlist.CellUse()
	names := make(map[string]bool)
	for n := range bu {
		names[n] = true
	}
	for n := range tu {
		names[n] = true
	}
	var sorted []string
	for n := range names {
		if bu[n] > res.MinCount || tu[n] > res.MinCount {
			sorted = append(sorted, n)
		}
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		res.Entries = append(res.Entries, CellUseEntry{Cell: n, Baseline: bu[n], Tuned: tu[n]})
	}
	for n, c := range bu {
		if strings.HasPrefix(n, "INV_") || strings.HasPrefix(n, "BUF_") {
			res.BaselineInvUse += c
		}
	}
	for n, c := range tu {
		if strings.HasPrefix(n, "INV_") || strings.HasPrefix(n, "BUF_") {
			res.TunedInvUse += c
		}
	}
	return res, nil
}

// Render draws the histogram table.
func (r *Fig9Result) Render() string {
	tb := &report.Table{
		Title: fmt.Sprintf("Fig 9: cell use at %.2f ns (cells used >%d times), baseline vs %s (bound %g)",
			r.Clock, r.MinCount, r.Method, r.Bound),
		Header: []string{"cell", "baseline", "tuned"},
	}
	for _, e := range r.Entries {
		tb.AddRow(e.Cell, e.Baseline, e.Tuned)
	}
	return tb.Render() +
		fmt.Sprintf("total inverter/buffer instances: baseline %d, tuned %d\n", r.BaselineInvUse, r.TunedInvUse)
}

// Fig10Result is the headline chart: per method and clock, the relative
// sigma decrease and area increase of the best bound (area < 10%).
type Fig10Result struct {
	Table3 *Table3Result
}

// Fig10 reuses the Table 3 sweep (same data, different rendering).
func (f *Flow) Fig10() (*Fig10Result, error) {
	t3, err := f.Table3()
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Table3: t3}, nil
}

// Headline returns the sigma-ceiling result at the high-performance
// clock — the number the paper's abstract quotes (37% @ 7%).
func (r *Fig10Result) Headline() (sigmaReduction, areaIncrease float64, ok bool) {
	for _, b := range r.Table3.Best {
		if b.Method == core.SigmaCeiling && b.Clock == r.Table3.Clocks.HighPerf {
			return b.SigmaReduction(), b.AreaIncrease(), b.Met
		}
	}
	return 0, 0, false
}

// Render draws the per-method bars for every clock.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 10: relative sigma decrease / area increase (best bound, area <10%)\n")
	tb := &report.Table{
		Header: []string{"method", "clock(ns)", "bound", "sigma base", "sigma tuned",
			"sigma dec %", "area base", "area tuned", "area inc %"},
	}
	for _, best := range r.Table3.Best {
		if !best.Met {
			tb.AddRow(best.Method.String(), best.Clock, "-", best.SigmaBase, "-", "-", best.AreaBase, "-", "-")
			continue
		}
		tb.AddRow(best.Method.String(), best.Clock, best.Bound,
			best.SigmaBase, best.SigmaTuned, 100*best.SigmaReduction(),
			best.AreaBase, best.AreaTuned, 100*best.AreaIncrease())
	}
	b.WriteString(tb.Render())
	if sr, ai, ok := r.Headline(); ok {
		fmt.Fprintf(&b, "headline (sigma ceiling @ high performance): %.0f%% sigma reduction at %.0f%% area increase\n",
			100*sr, 100*ai)
	}
	return b.String()
}

// Fig11Point is one ceiling bound's trade-off at the high-performance
// clock.
type Fig11Point struct {
	Bound          float64
	Met            bool
	SigmaReduction float64
	AreaIncrease   float64
}

// Fig11Result is the sigma-versus-area trade-off across ceiling bounds.
type Fig11Result struct {
	Clock  float64
	Points []Fig11Point
}

// Fig11 sweeps the sigma-ceiling bounds at the high-performance clock.
func (f *Flow) Fig11() (*Fig11Result, error) {
	clocks, err := f.Clocks()
	if err != nil {
		return nil, err
	}
	clk := clocks.HighPerf
	baseRes, baseDS, err := f.BaselineStats(clk)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{Clock: clk}
	// Bound probes are independent (tune + synth + stats per bound, all
	// single-flight cached); index-addressed points keep the sweep order.
	bounds := core.SweepBounds(core.SigmaCeiling)
	res.Points = make([]Fig11Point, len(bounds))
	err = robust.ForEachNamed(f.ctx, "fig11.sweep", poolWorkers(), len(bounds), func(_ context.Context, i int) error {
		bound := bounds[i]
		sres, sds, err := f.TunedStats(core.SigmaCeiling, bound, clk)
		if err != nil {
			return err
		}
		pt := Fig11Point{Bound: bound, Met: sres.Met}
		if sres.Met {
			cmp := stattime.Compare{
				BaselineSigma: baseDS.Design.Sigma, TunedSigma: sds.Design.Sigma,
				BaselineArea: baseRes.Area(), TunedArea: sres.Area(),
			}
			pt.SigmaReduction = cmp.SigmaReduction()
			pt.AreaIncrease = cmp.AreaIncrease()
		}
		res.Points[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render draws the trade-off curve.
func (r *Fig11Result) Render() string {
	tb := &report.Table{
		Title:  fmt.Sprintf("Fig 11: sigma decrease vs area increase, sigma-ceiling sweep @ %.2f ns", r.Clock),
		Header: []string{"ceiling", "met", "sigma dec %", "area inc %"},
	}
	for _, p := range r.Points {
		if p.Met {
			tb.AddRow(p.Bound, p.Met, 100*p.SigmaReduction, 100*p.AreaIncrease)
		} else {
			tb.AddRow(p.Bound, p.Met, "-", "-")
		}
	}
	return tb.Render()
}

// Fig12Result compares path-depth distributions of the baseline and the
// ceiling-restricted design at the high-performance clock.
type Fig12Result struct {
	Clock         float64
	Bound         float64
	BaselineDepth map[int]int
	TunedDepth    map[int]int
	BaselineMean  float64
	TunedMean     float64
}

// Fig12 computes the worst-path depth histograms.
func (f *Flow) Fig12() (*Fig12Result, error) {
	clocks, err := f.Clocks()
	if err != nil {
		return nil, err
	}
	clk := clocks.HighPerf
	best, err := f.bestBound(core.SigmaCeiling, clk)
	if err != nil {
		return nil, err
	}
	bound := best.Bound
	if !best.Met {
		bound = core.SweepBounds(core.SigmaCeiling)[0]
	}
	_, baseDS, err := f.BaselineStats(clk)
	if err != nil {
		return nil, err
	}
	_, tunedDS, err := f.TunedStats(core.SigmaCeiling, bound, clk)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{
		Clock: clk, Bound: bound,
		BaselineDepth: baseDS.DepthHistogram(),
		TunedDepth:    tunedDS.DepthHistogram(),
	}
	res.BaselineMean = meanDepth(baseDS)
	res.TunedMean = meanDepth(tunedDS)
	return res, nil
}

func meanDepth(ds *stattime.DesignStats) float64 {
	sum := 0
	for _, p := range ds.Paths {
		sum += p.Depth
	}
	if len(ds.Paths) == 0 {
		return 0
	}
	return float64(sum) / float64(len(ds.Paths))
}

// Render draws the two histograms side by side.
func (r *Fig12Result) Render() string {
	depths := map[int]bool{}
	for d := range r.BaselineDepth {
		depths[d] = true
	}
	for d := range r.TunedDepth {
		depths[d] = true
	}
	var sorted []int
	for d := range depths {
		sorted = append(sorted, d)
	}
	sort.Ints(sorted)
	tb := &report.Table{
		Title:  fmt.Sprintf("Fig 12: worst-path depths @ %.2f ns, baseline vs sigma ceiling (bound %g)", r.Clock, r.Bound),
		Header: []string{"depth", "baseline paths", "tuned paths"},
	}
	for _, d := range sorted {
		tb.AddRow(d, r.BaselineDepth[d], r.TunedDepth[d])
	}
	return tb.Render() +
		fmt.Sprintf("mean depth: baseline %.2f, tuned %.2f\n", r.BaselineMean, r.TunedMean)
}

// Fig13Result is the sigma-versus-depth scatter with its correlation.
type Fig13Result struct {
	Clock       float64
	Bound       float64
	BaseDepths  []int
	BaseSigmas  []float64
	TunedDepths []int
	TunedSigmas []float64
	BaseCorr    float64
	TunedCorr   float64
}

// Fig13 extracts per-path sigma against depth for both designs.
func (f *Flow) Fig13() (*Fig13Result, error) {
	clocks, err := f.Clocks()
	if err != nil {
		return nil, err
	}
	clk := clocks.HighPerf
	best, err := f.bestBound(core.SigmaCeiling, clk)
	if err != nil {
		return nil, err
	}
	bound := best.Bound
	if !best.Met {
		bound = core.SweepBounds(core.SigmaCeiling)[0]
	}
	_, baseDS, err := f.BaselineStats(clk)
	if err != nil {
		return nil, err
	}
	_, tunedDS, err := f.TunedStats(core.SigmaCeiling, bound, clk)
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{Clock: clk, Bound: bound}
	res.BaseDepths, res.BaseSigmas = baseDS.SigmaVsDepth()
	res.TunedDepths, res.TunedSigmas = tunedDS.SigmaVsDepth()
	res.BaseCorr = baseDS.DepthSigmaCorrelation()
	res.TunedCorr = tunedDS.DepthSigmaCorrelation()
	return res, nil
}

// Render summarizes the scatter (binned) plus the correlation headline.
func (r *Fig13Result) Render() string {
	summarize := func(depths []int, sigmas []float64) (maxSigma float64, meanSigma float64) {
		for _, s := range sigmas {
			if s > maxSigma {
				maxSigma = s
			}
			meanSigma += s
		}
		if len(sigmas) > 0 {
			meanSigma /= float64(len(sigmas))
		}
		return maxSigma, meanSigma
	}
	bMax, bMean := summarize(r.BaseDepths, r.BaseSigmas)
	tMax, tMean := summarize(r.TunedDepths, r.TunedSigmas)
	tb := &report.Table{
		Title:  fmt.Sprintf("Fig 13: path sigma vs depth @ %.2f ns", r.Clock),
		Header: []string{"design", "paths", "max path sigma", "mean path sigma", "depth-sigma corr"},
	}
	tb.AddRow("baseline", len(r.BaseSigmas), bMax, bMean, r.BaseCorr)
	tb.AddRow("sigma ceiling", len(r.TunedSigmas), tMax, tMean, r.TunedCorr)
	return tb.Render() +
		"path depth is not a reliable predictor of path sigma (weak correlation)\n"
}

// Fig14Result compares the mean+3sigma path-delay profile of baseline
// and tuned designs (Figs. 14a/14b).
type Fig14Result struct {
	Clock        float64
	Effective    float64 // clock minus guard band
	Bound        float64
	BaseWorst3S  float64 // worst mean+3sigma, baseline (paper: 2.23)
	TunedWorst3S float64 // tuned (paper: 2.19)
	BaseAbove    int     // paths whose mu+3sigma exceeds the effective clock
	TunedAbove   int
	BasePaths    int
	TunedPaths   int
}

// Fig14 computes the worst-case profile of both designs.
func (f *Flow) Fig14() (*Fig14Result, error) {
	clocks, err := f.Clocks()
	if err != nil {
		return nil, err
	}
	clk := clocks.HighPerf
	best, err := f.bestBound(core.SigmaCeiling, clk)
	if err != nil {
		return nil, err
	}
	bound := best.Bound
	if !best.Met {
		bound = core.SweepBounds(core.SigmaCeiling)[0]
	}
	baseRes, baseDS, err := f.BaselineStats(clk)
	if err != nil {
		return nil, err
	}
	_, tunedDS, err := f.TunedStats(core.SigmaCeiling, bound, clk)
	if err != nil {
		return nil, err
	}
	eff := clk - baseRes.Opts.STA.Uncertainty
	res := &Fig14Result{Clock: clk, Effective: eff, Bound: bound,
		BasePaths: len(baseDS.Paths), TunedPaths: len(tunedDS.Paths)}
	for _, p := range baseDS.Paths {
		v := p.MeanPlus3Sigma()
		if v > res.BaseWorst3S {
			res.BaseWorst3S = v
		}
		if v > eff {
			res.BaseAbove++
		}
	}
	for _, p := range tunedDS.Paths {
		v := p.MeanPlus3Sigma()
		if v > res.TunedWorst3S {
			res.TunedWorst3S = v
		}
		if v > eff {
			res.TunedAbove++
		}
	}
	return res, nil
}

// Render summarizes both profiles.
func (r *Fig14Result) Render() string {
	tb := &report.Table{
		Title:  fmt.Sprintf("Fig 14: mean+3sigma path delay @ %.2f ns (effective %.2f ns)", r.Clock, r.Effective),
		Header: []string{"design", "paths", "worst mu+3sigma (ns)", "paths above effective clock"},
	}
	tb.AddRow("baseline", r.BasePaths, r.BaseWorst3S, r.BaseAbove)
	tb.AddRow("sigma ceiling", r.TunedPaths, r.TunedWorst3S, r.TunedAbove)
	return tb.Render()
}
