package exp

import (
	"fmt"

	"stdcelltune/internal/core"
	"stdcelltune/internal/cts"
	"stdcelltune/internal/place"
	"stdcelltune/internal/report"
	"stdcelltune/internal/sta"
	"stdcelltune/internal/stattime"
	"stdcelltune/internal/synth"
)

// ExtPNRResult is the reproduction's extension experiment: the paper's
// future-work section asks whether the tuning survives placement (real
// wire loads) and what it does for the clock tree. This driver places
// the synthesized design, re-times it with wirelength-derived wire
// capacitance, and synthesizes baseline and tuned clock trees.
type ExtPNRResult struct {
	Clock float64

	// Placement / post-route timing.
	Rows      int
	DieWidth  float64
	TotalHPWL float64
	PreWNS    float64 // fanout wire model (synthesis-time)
	PostWNS   float64 // placement wire model
	PreSigma  float64 // design sigma with fanout model
	PostSigma float64 // design sigma with placement wire loads

	// ECO: post-placement re-optimization with frozen wire loads (what a
	// real flow does when placement breaks synthesis-time timing).
	ECORan   bool
	ECOWNS   float64
	ECOArea  float64
	ECODelta int // instance-count change from ECO buffering

	// Clock tree, baseline vs sigma-ceiling windows.
	CeilingBound   float64
	BaseBuffers    int
	BaseLevels     int
	BaseSkew       float64 // nominal skew, ns
	BaseSkewSigma  float64 // worst pairwise 3-sigma-free sigma, ns
	TunedBuffers   int
	TunedLevels    int
	TunedSkew      float64
	TunedSkewSigma float64
}

// ExtPNR runs the placement and clock-tree extension at the medium
// clock.
func (f *Flow) ExtPNR() (*ExtPNRResult, error) {
	clocks, err := f.Clocks()
	if err != nil {
		return nil, err
	}
	clk := clocks.Medium
	res, err := f.Baseline(clk)
	if err != nil {
		return nil, err
	}
	out := &ExtPNRResult{Clock: clk, PreWNS: res.Timing.WNS()}

	p, err := place.Place(res.Netlist, place.DefaultConfig())
	if err != nil {
		return nil, err
	}
	out.Rows = p.Rows
	out.DieWidth = p.Width
	out.TotalHPWL = p.TotalHPWL()

	// Re-time with placement-derived wire loads.
	cfg := res.Opts.STA
	cfg.NetWireCap = p.WireCaps()
	post, err := sta.Analyze(res.Netlist, cfg)
	if err != nil {
		return nil, err
	}
	out.PostWNS = post.WNS()
	preDS, err := f.Stats(fmt.Sprintf("base/%g", clk), res)
	if err != nil {
		return nil, err
	}
	out.PreSigma = preDS.Design.Sigma
	postDS, err := stattime.Analyze(post, f.Stat, 0)
	if err != nil {
		return nil, err
	}
	out.PostSigma = postDS.Design.Sigma

	// ECO pass: if the real wire loads broke timing, re-optimize a clone
	// of the design against them (the flow cache keeps the original).
	if post.WNS() < 0 {
		eco := res.Netlist.Clone()
		opts := res.Opts
		opts.STA.NetWireCap = p.WireCaps()
		ecoRes, err := synth.Optimize(eco, opts)
		if err != nil {
			return nil, err
		}
		out.ECORan = true
		out.ECOWNS = ecoRes.Timing.WNS()
		out.ECOArea = ecoRes.Area()
		out.ECODelta = len(eco.Instances) - len(res.Netlist.Instances)
	}

	// Clock trees: unrestricted vs a tight ceiling (buffers are a
	// low-sigma family, so their windows only bind at small ceilings).
	out.CeilingBound = 0.001
	baseTree, baseA, err := cts.BuildLegal(p, f.Cat, f.Stat, cts.DefaultConfig())
	if err != nil {
		return nil, err
	}
	out.BaseBuffers = baseTree.BufferCount()
	out.BaseLevels = baseTree.Levels
	out.BaseSkew = baseA.NominalSkew()
	out.BaseSkewSigma = baseA.WorstSkewSigma

	set, _, err := f.Tune(core.SigmaCeiling, out.CeilingBound)
	if err != nil {
		return nil, err
	}
	tunedCfg := cts.DefaultConfig()
	tunedCfg.Windows = set
	tunedTree, tunedA, err := cts.BuildLegal(p, f.Cat, f.Stat, tunedCfg)
	if err != nil {
		return nil, err
	}
	out.TunedBuffers = tunedTree.BufferCount()
	out.TunedLevels = tunedTree.Levels
	out.TunedSkew = tunedA.NominalSkew()
	out.TunedSkewSigma = tunedA.WorstSkewSigma
	return out, nil
}

// Render draws the extension report.
func (r *ExtPNRResult) Render() string {
	tb := &report.Table{
		Title:  fmt.Sprintf("Extension: placement + clock tree @ %.2f ns (paper future work)", r.Clock),
		Header: []string{"quantity", "value"},
	}
	tb.AddRow("placement rows", r.Rows)
	tb.AddRow("die width (um)", r.DieWidth)
	tb.AddRow("total wirelength (um)", r.TotalHPWL)
	tb.AddRow("WNS, fanout wire model (ns)", r.PreWNS)
	tb.AddRow("WNS, placed wire model (ns)", r.PostWNS)
	tb.AddRow("design sigma, fanout model (ns)", r.PreSigma)
	tb.AddRow("design sigma, placed model (ns)", r.PostSigma)
	if r.ECORan {
		tb.AddRow("ECO: WNS after re-optimization (ns)", r.ECOWNS)
		tb.AddRow("ECO: area (um2)", r.ECOArea)
		tb.AddRow("ECO: instances added", r.ECODelta)
	}
	ct := &report.Table{
		Title:  fmt.Sprintf("clock tree: baseline vs sigma ceiling %.4g windows", r.CeilingBound),
		Header: []string{"tree", "buffers", "levels", "nominal skew (ns)", "skew sigma (ns)"},
	}
	ct.AddRow("baseline", r.BaseBuffers, r.BaseLevels, r.BaseSkew, r.BaseSkewSigma)
	ct.AddRow("tuned", r.TunedBuffers, r.TunedLevels, r.TunedSkew, r.TunedSkewSigma)
	return tb.Render() + ct.Render() +
		"tuning transfers to the clock tree: lower skew sigma from low-sigma buffer regions\n"
}
