package exp

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"stdcelltune/internal/core"
)

var (
	flowOnce sync.Once
	flowInst *Flow
	flowErr  error
)

// smallFlow shares one scaled-down flow across all exp tests.
func smallFlow(t *testing.T) *Flow {
	t.Helper()
	flowOnce.Do(func() {
		flowInst, flowErr = NewFlow(context.Background(), SmallFlowConfig())
	})
	if flowErr != nil {
		t.Fatal(flowErr)
	}
	return flowInst
}

func TestMinClockAndTable1(t *testing.T) {
	f := smallFlow(t)
	minClk, err := f.MinClock()
	if err != nil {
		t.Fatal(err)
	}
	if minClk < 0.5 || minClk > 16 {
		t.Fatalf("min clock %g implausible", minClk)
	}
	// The minimum must actually be met and a slightly smaller one not.
	res, err := f.Baseline(minClk)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Errorf("min clock %g not met", minClk)
	}
	t1, err := f.Table1()
	if err != nil {
		t.Fatal(err)
	}
	c := t1.Clocks
	if !(c.HighPerf < c.CloseToMax && c.CloseToMax < c.Medium && c.Medium < c.Low) {
		t.Errorf("clock ordering broken: %+v", c)
	}
	if got := len(c.Periods()); got != 4 {
		t.Errorf("periods %d want 4", got)
	}
	if !strings.Contains(t1.Render(), "High performance") {
		t.Error("render missing rows")
	}
}

func TestTable2Static(t *testing.T) {
	f := smallFlow(t)
	t2 := f.Table2()
	if len(t2.LoadSlopeBounds) != 4 || len(t2.SigmaCeilings) != 4 {
		t.Fatalf("table 2 shape: %+v", t2)
	}
	out := t2.Render()
	for _, want := range []string{"Load slope", "Slew slope", "Sigma ceiling", "0.06", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 render missing %q", want)
		}
	}
}

func TestFig1(t *testing.T) {
	f := smallFlow(t)
	r := f.Fig1()
	if r.Left.Variability() != r.Right.Variability() {
		t.Error("Fig 1 premise broken: variabilities must match")
	}
	if r.Left.Sigma >= r.Right.Sigma {
		t.Error("left must have the smaller sigma")
	}
	if !strings.Contains(r.Render(), "variability") {
		t.Error("render empty")
	}
}

func TestFig2Through7(t *testing.T) {
	f := smallFlow(t)
	f2, err := f.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if f2.MeanRelErr > 0.05 {
		t.Errorf("statlib mean error %g too large", f2.MeanRelErr)
	}
	if f2.SigmaRelErr > 0.5 {
		t.Errorf("statlib sigma error %g too large", f2.SigmaRelErr)
	}

	f3, err := f.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f3.Corners[0], f3.Corners[0]
	for _, c := range f3.Corners {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if f3.OffGrid < lo || f3.OffGrid > hi {
		t.Errorf("interpolated %g outside corner range [%g,%g]", f3.OffGrid, lo, hi)
	}

	f4, err := f.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent drives differ by only sqrt(2) in sigma, which a small MC
	// sample count can blur; compare two steps apart (4x drive = 2x
	// sigma) where the ordering must be unambiguous.
	for i := 2; i < len(f4.Surfaces); i++ {
		if f4.Surfaces[i].SigmaMax >= f4.Surfaces[i-2].SigmaMax {
			t.Errorf("Fig 4: sigma not falling with drive (%s vs %s)",
				f4.Surfaces[i].Cell, f4.Surfaces[i-2].Cell)
		}
	}
	for i := 1; i < len(f4.Surfaces); i++ {
		if f4.Surfaces[i].LoadMax <= f4.Surfaces[i-1].LoadMax {
			t.Errorf("Fig 4: load range not growing with drive")
		}
	}

	f5, err := f.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Surfaces) < 10 {
		t.Errorf("drive-6 cluster too small: %d", len(f5.Surfaces))
	}
	seenNR4 := false
	for _, s := range f5.Surfaces {
		if s.Cell == "NR4_6" {
			seenNR4 = true
		}
		if s.Drive != 6 {
			t.Errorf("non-drive-6 cell %s in cluster", s.Cell)
		}
	}
	if !seenNR4 {
		t.Error("NR4_6 (the paper's example) missing from the cluster")
	}

	f6, err := f.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if f6.Rect.Empty() {
		t.Error("Fig 6 rectangle empty at ceiling 0.02")
	}
	if !f6.Fig6Sanity() {
		t.Error("fast and exhaustive rectangle extraction disagree")
	}
	if f6.Threshold > f6.Ceiling {
		t.Errorf("threshold %g above ceiling %g", f6.Threshold, f6.Ceiling)
	}

	f7, err := f.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if f7.Tables < 600 {
		t.Errorf("only %d sigma tables in library", f7.Tables)
	}
	if !(f7.Percentile[50] <= f7.Percentile[90] && f7.Percentile[90] <= f7.Percentile[99]) {
		t.Error("percentiles not ordered")
	}
	if f7.GlobalMax < f7.Percentile[99] {
		t.Error("global max below p99")
	}
	for _, r := range []interface{ Render() string }{f2, f3, f4, f5, f6, f7} {
		if r.Render() == "" {
			t.Error("empty render")
		}
	}
}

func TestFig8Curve(t *testing.T) {
	f := smallFlow(t)
	r, err := f.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Periods) < 8 {
		t.Fatalf("sweep too short: %d", len(r.Periods))
	}
	// Area must broadly decrease toward relaxed clocks: the last point
	// must be below the first met point.
	var first float64
	for i, met := range r.Met {
		if met {
			first = r.Areas[i]
			break
		}
	}
	last := r.Areas[len(r.Areas)-1]
	if last >= first {
		t.Errorf("relaxed area %g not below tight area %g", last, first)
	}
	if r.Knee <= r.Periods[0] {
		t.Errorf("knee %g not beyond the minimum period", r.Knee)
	}
	if !strings.Contains(r.Render(), "knee") {
		t.Error("render missing knee")
	}
}

func TestTable3AndFig10(t *testing.T) {
	f := smallFlow(t)
	r, err := f.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table3.Best) != 5*4 {
		t.Fatalf("best entries %d want 20", len(r.Table3.Best))
	}
	anyMet := false
	for _, b := range r.Table3.Best {
		if !b.Met {
			continue
		}
		anyMet = true
		if b.SigmaTuned > b.SigmaBase {
			t.Errorf("%v @ %.2f: tuned sigma above baseline", b.Method, b.Clock)
		}
		if b.AreaIncrease() >= AreaCap {
			t.Errorf("%v @ %.2f: area increase %.2f over cap", b.Method, b.Clock, b.AreaIncrease())
		}
	}
	if !anyMet {
		t.Fatal("no method met timing at any clock")
	}
	if sr, _, ok := r.Headline(); ok && sr < 0.05 {
		t.Errorf("headline sigma reduction %.2f implausibly small", sr)
	}
	if !strings.Contains(r.Render(), "headline") && !strings.Contains(r.Render(), "sigma dec") {
		t.Error("fig10 render incomplete")
	}
	if !strings.Contains(r.Table3.Render(), "sigma ceiling") {
		t.Error("table3 render incomplete")
	}
}

func TestFig11Tradeoff(t *testing.T) {
	f := smallFlow(t)
	r, err := f.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points %d want 4", len(r.Points))
	}
	// Tightening the ceiling must not decrease the sigma reduction among
	// met points (trade-off monotonicity).
	prev := -1.0
	for _, p := range r.Points {
		if !p.Met {
			continue
		}
		if p.SigmaReduction < prev-0.02 {
			t.Errorf("sigma reduction fell when ceiling tightened: %v", r.Points)
		}
		prev = p.SigmaReduction
	}
	if !strings.Contains(r.Render(), "ceiling") {
		t.Error("render incomplete")
	}
}

func TestFig9CellUse(t *testing.T) {
	f := smallFlow(t)
	clocks, err := f.Clocks()
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Fig9(clocks.HighPerf)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) == 0 {
		t.Fatal("no cells above the use threshold")
	}
	if r.BaselineInvUse == 0 || r.TunedInvUse == 0 {
		t.Error("inverter counts empty")
	}
	if !strings.Contains(r.Render(), "baseline") {
		t.Error("render incomplete")
	}
}

func TestFig12Through14(t *testing.T) {
	f := smallFlow(t)
	f12, err := f.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.BaselineDepth) == 0 || len(f12.TunedDepth) == 0 {
		t.Fatal("empty depth histograms")
	}
	f13, err := f.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(f13.BaseSigmas) == 0 {
		t.Fatal("no scatter data")
	}
	// The Fig. 13 claim: depth alone does not dictate sigma — the
	// correlation should be visibly below perfect.
	if f13.BaseCorr > 0.95 {
		t.Errorf("depth-sigma correlation %.2f suspiciously perfect", f13.BaseCorr)
	}
	f14, err := f.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if f14.BaseWorst3S <= 0 || f14.TunedWorst3S <= 0 {
		t.Fatal("empty worst-case stats")
	}
	// Tuning reduces the worst mu+3sigma (paper: 2.23 -> 2.19).
	if f14.TunedWorst3S > f14.BaseWorst3S*1.02 {
		t.Errorf("tuned worst mu+3sigma %.3f above baseline %.3f", f14.TunedWorst3S, f14.BaseWorst3S)
	}
	for _, r := range []interface{ Render() string }{f12, f13, f14} {
		if r.Render() == "" {
			t.Error("empty render")
		}
	}
}

func TestFig15And16(t *testing.T) {
	f := smallFlow(t)
	f15, err := f.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(f15.Paths) != 3 {
		t.Fatalf("paths %d want 3", len(f15.Paths))
	}
	for _, p := range f15.Paths {
		for _, c := range p.Corners {
			if c.RelMean <= 0 || c.RelSigma <= 0 {
				t.Error("bad corner stats")
			}
			// Mean and sigma scale together (within MC noise).
			if diff := c.RelSigma/c.RelMean - 1; diff > 0.25 || diff < -0.25 {
				t.Errorf("depth %d corner %v: sigma/mean scaling diverges (%.2f)", p.Depth, c.Corner, diff)
			}
		}
	}
	f16, err := f.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(f16.Paths) != 3 {
		t.Fatalf("paths %d want 3", len(f16.Paths))
	}
	// Local share decays with depth.
	if !(f16.Paths[0].LocalShare > f16.Paths[1].LocalShare &&
		f16.Paths[1].LocalShare >= f16.Paths[2].LocalShare) {
		t.Errorf("local share not decaying: %+v", f16.Paths)
	}
	if !strings.Contains(f15.Render(), "corner") || !strings.Contains(f16.Render(), "local") {
		t.Error("render incomplete")
	}
	_ = core.Methods
}

func TestExtPNR(t *testing.T) {
	f := smallFlow(t)
	r, err := f.ExtPNR()
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows < 2 || r.TotalHPWL <= 0 {
		t.Fatal("placement degenerate")
	}
	if r.PreSigma <= 0 || r.PostSigma <= 0 {
		t.Fatal("sigma analysis empty")
	}
	if r.BaseBuffers == 0 || r.TunedBuffers == 0 {
		t.Fatal("clock trees empty")
	}
	// The tuned tree must not be worse in skew sigma.
	if r.TunedSkewSigma > r.BaseSkewSigma {
		t.Errorf("tuned skew sigma %.5f above baseline %.5f", r.TunedSkewSigma, r.BaseSkewSigma)
	}
	if !strings.Contains(r.Render(), "clock tree") {
		t.Error("render incomplete")
	}
}

func TestExtPower(t *testing.T) {
	f := smallFlow(t)
	r, err := f.ExtPower()
	if err != nil {
		t.Fatal(err)
	}
	if r.Base.Total() <= 0 || r.Tuned.Total() <= 0 {
		t.Fatal("empty power reports")
	}
	// The tuned design must not leak less: bigger cells are the price.
	if r.Tuned.Leakage < r.Base.Leakage*0.99 {
		t.Errorf("tuned leakage %g below baseline %g", r.Tuned.Leakage, r.Base.Leakage)
	}
	if !strings.Contains(r.Render(), "leakage") {
		t.Error("render incomplete")
	}
}

func TestExtYield(t *testing.T) {
	f := smallFlow(t)
	r, err := f.ExtYield()
	if err != nil {
		t.Fatal(err)
	}
	if r.TunedYield < r.BaseYield-1e-9 {
		t.Errorf("tuned yield %g below baseline %g", r.TunedYield, r.BaseYield)
	}
	if r.UncertaintyReclaimed() < -1e-9 {
		t.Errorf("tuning cost uncertainty: %g", r.UncertaintyReclaimed())
	}
	if len(r.SweepClocks) != 7 {
		t.Fatalf("sweep size %d", len(r.SweepClocks))
	}
	for i := 1; i < len(r.SweepBase); i++ {
		if r.SweepBase[i] < r.SweepBase[i-1] || r.SweepTuned[i] < r.SweepTuned[i-1] {
			t.Fatal("yield curves not monotone")
		}
	}
	if !strings.Contains(r.Render(), "uncertainty reclaimed") {
		t.Error("render incomplete")
	}
}

func TestFlowCaching(t *testing.T) {
	f := smallFlow(t)
	clocks, err := f.Clocks()
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Baseline(clocks.Low)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Baseline(clocks.Low)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("baseline not cached (pointer differs)")
	}
	s1, _, err := f.Tune(core.SigmaCeiling, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := f.Tune(core.SigmaCeiling, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("tuning not cached")
	}
	// MinClock stable across calls.
	m1, _ := f.MinClock()
	m2, _ := f.MinClock()
	if m1 != m2 {
		t.Error("min clock not cached")
	}
}

// TestTunedDesignStillMeetsHold: restriction can only slow paths, so the
// tuned design must keep passing hold checks.
func TestTunedDesignStillMeetsHold(t *testing.T) {
	f := smallFlow(t)
	clocks, err := f.Clocks()
	if err != nil {
		t.Fatal(err)
	}
	base, err := f.Baseline(clocks.Medium)
	if err != nil {
		t.Fatal(err)
	}
	bh, err := base.Timing.AnalyzeHold()
	if err != nil {
		t.Fatal(err)
	}
	if !bh.MeetsHold() {
		t.Fatalf("baseline violates hold: %g", bh.WorstHoldSlack())
	}
	tuned, err := f.Tuned(core.SigmaCeiling, 0.02, clocks.Medium)
	if err != nil {
		t.Fatal(err)
	}
	th, err := tuned.Timing.AnalyzeHold()
	if err != nil {
		t.Fatal(err)
	}
	if !th.MeetsHold() {
		t.Fatalf("tuned design violates hold: %g", th.WorstHoldSlack())
	}
}

func TestExtCorners(t *testing.T) {
	f := smallFlow(t)
	r, err := f.ExtCorners()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outcomes) != 3 {
		t.Fatalf("corners %d want 3", len(r.Outcomes))
	}
	var typical *CornerOutcome
	for i := range r.Outcomes {
		oc := &r.Outcomes[i]
		if !oc.Met {
			t.Fatalf("%v corner synthesis missed timing", oc.Corner)
		}
		if oc.SigmaReduction <= 0 {
			t.Errorf("%v corner: no sigma reduction (%g)", oc.Corner, oc.SigmaReduction)
		}
		if oc.Corner == f.Cfg.Corner {
			typical = oc
		}
	}
	if typical == nil {
		t.Fatal("typical corner missing")
	}
	// Relative reduction at other corners stays within a band of the
	// typical-corner reduction (paper: same factor scaling).
	for _, oc := range r.Outcomes {
		if oc.Corner == f.Cfg.Corner {
			continue
		}
		if diff := oc.SigmaReduction - typical.SigmaReduction; diff > 0.25 || diff < -0.25 {
			t.Errorf("%v corner reduction %.2f far from typical %.2f",
				oc.Corner, oc.SigmaReduction, typical.SigmaReduction)
		}
	}
	if !strings.Contains(r.Render(), "corners") {
		t.Error("render incomplete")
	}
}

// TestCancelMidTable3 checks the cancellation contract end to end:
// cancelling the flow context while Table3's method-by-clock fan-out is
// running must return promptly with context.Canceled and leave no
// worker goroutine behind.
func TestCancelMidTable3(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f, err := NewFlow(ctx, SmallFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the clock selection so the cancel lands inside Table3 itself,
	// not in the shared MinClock bisection.
	if _, err := f.Clocks(); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() {
		_, err := f.Table3()
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the fan-out start
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Table3 after cancel: %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Table3 did not return promptly after cancellation")
	}
	// The pool drains before Wait returns, so the goroutine count must
	// come back down (allow the runtime a moment and a little slack).
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancel: %d before, %d after", before, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestExtWorkloads(t *testing.T) {
	f := smallFlow(t)
	r, err := f.ExtWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outcomes) != 3 {
		t.Fatalf("workloads %d want 3", len(r.Outcomes))
	}
	names := map[string]bool{}
	for _, oc := range r.Outcomes {
		names[oc.Name] = true
		if !oc.Met {
			t.Errorf("%s missed timing at %.2f ns", oc.Name, oc.Clock)
		}
		if oc.SigmaReduction <= 0 {
			t.Errorf("%s: no sigma reduction (%.3f)", oc.Name, oc.SigmaReduction)
		}
		if oc.Cells == 0 || oc.TopFamilies == "" {
			t.Errorf("%s: missing stats", oc.Name)
		}
	}
	for _, want := range []string{"mcu", "fir", "crc"} {
		if !names[want] {
			t.Errorf("workload %s missing", want)
		}
	}
	// The CRC must show an XNOR-flavoured mix (XOR-dominated logic).
	for _, oc := range r.Outcomes {
		if oc.Name == "crc" && !strings.Contains(oc.TopFamilies, "XNR") {
			t.Errorf("crc top families %q should feature XNR", oc.TopFamilies)
		}
	}
	if !strings.Contains(r.Render(), "generalizes") {
		t.Error("render incomplete")
	}
}
