package exp

import (
	"sync"
	"testing"

	"stdcelltune/internal/robust/faultinject"
)

// TestFlowConfigDigestStability pins the digest of the two canonical
// configurations. These values key the service artifact cache; a drift
// here silently invalidates every warm cache, so changing them requires
// bumping the digest domain version deliberately.
func TestFlowConfigDigestStability(t *testing.T) {
	got := DefaultFlowConfig().Digest()
	const wantDefault = "sha256:acf4f04e70838f279a968080f27ad908ec8992a855fe6f5245a4f25568ed49da"
	if got != wantDefault {
		t.Errorf("DefaultFlowConfig digest drifted:\n got %s\nwant %s", got, wantDefault)
	}
	gotSmall := SmallFlowConfig().Digest()
	const wantSmall = "sha256:4ab0bf1e273aadfcb62139aa9520665a51d76cbe93a21ba9c88fba998291d7be"
	if gotSmall != wantSmall {
		t.Errorf("SmallFlowConfig digest drifted:\n got %s\nwant %s", gotSmall, wantSmall)
	}
}

func TestFlowConfigDigestSensitivity(t *testing.T) {
	base := DefaultFlowConfig()
	mut := []func(*FlowConfig){
		func(c *FlowConfig) { c.Samples++ },
		func(c *FlowConfig) { c.Seed++ },
		func(c *FlowConfig) { c.MCU.Width++ },
		func(c *FlowConfig) { c.Corner = c.Corner + 1 },
		func(c *FlowConfig) { c.Fault.Rate = 0.01 },
		func(c *FlowConfig) { c.Fault.Modes = []faultinject.Mode{faultinject.NaNEntry} },
	}
	seen := map[string]bool{base.Digest(): true}
	for i, m := range mut {
		c := base
		m(&c)
		d := c.Digest()
		if seen[d] {
			t.Errorf("mutation %d did not change the digest", i)
		}
		seen[d] = true
	}
}

// TestFlowConfigDigestConcurrent proves the digest is safe and stable
// under concurrent computation (the daemon hashes specs on every
// request).
func TestFlowConfigDigestConcurrent(t *testing.T) {
	cfg := DefaultFlowConfig()
	want := cfg.Digest()
	var wg sync.WaitGroup
	out := make([]string, 16)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = cfg.Digest()
		}(i)
	}
	wg.Wait()
	for i, d := range out {
		if d != want {
			t.Fatalf("goroutine %d: digest %s != %s", i, d, want)
		}
	}
}
