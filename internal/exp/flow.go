// Package exp contains one driver per table and figure of the paper's
// evaluation (see DESIGN.md §4). All drivers share a Flow, which caches
// the expensive artifacts — the statistical library, the microcontroller
// network, and every (method, bound, clock) synthesis run — so the full
// experiment suite performs each synthesis exactly once.
package exp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"stdcelltune/internal/core"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/perfstat"
	"stdcelltune/internal/restrict"
	"stdcelltune/internal/robust"
	"stdcelltune/internal/robust/faultinject"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stattime"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/synth"
	"stdcelltune/internal/variation"
)

// FlowConfig sizes the experiment flow.
type FlowConfig struct {
	Samples int // Monte-Carlo instances for the statistical library
	Seed    int64
	MCU     rtlgen.Config // evaluation design
	Corner  stdcell.Corner

	// Fault optionally corrupts the Monte-Carlo instances before the
	// statistical library is folded, exercising the quarantine and
	// degradation paths. Rate 0 (the zero value) disables injection and
	// reproduces the clean flow bit-identically.
	Fault faultinject.Config
}

// DefaultFlowConfig mirrors the paper's setup: 50 instances, the 20k-gate
// MCU, typical corner.
func DefaultFlowConfig() FlowConfig {
	return FlowConfig{Samples: 50, Seed: 1, MCU: rtlgen.DefaultConfig(), Corner: stdcell.Typical}
}

// SmallFlowConfig is the scaled-down flow used by fast tests.
func SmallFlowConfig() FlowConfig {
	return FlowConfig{Samples: 15, Seed: 1, MCU: rtlgen.SmallConfig(), Corner: stdcell.Typical}
}

// Flow owns the shared experiment state.
type Flow struct {
	Cfg  FlowConfig
	Cat  *stdcell.Catalogue
	Stat *statlib.Library
	MCU  *rtlgen.MCU

	// Quarantine reports the cells the statistical-library build
	// skipped (always non-nil; empty on a clean run).
	Quarantine *robust.Quarantine
	// Injected summarizes what fault injection corrupted, if enabled.
	Injected faultinject.Report

	// Obs is the flow's observability bundle (always non-nil): the
	// tracer pulled off the construction context (nil inside when
	// tracing is off), the perfstat collector backing the phase
	// timings, and the metrics registry. Perf aliases Obs.Perf for the
	// established -benchjson path; both cost two ReadMemStats per unit
	// of work, which is noise next to a synthesis or tuning run.
	Obs  *obs.Run
	Perf *perfstat.Collector

	ctx      context.Context
	mu       sync.Mutex
	synthRes map[string]*call[*synth.Result]
	statRes  map[string]*call[*stattime.DesignStats]
	tuneRes  map[string]*call[*tuneEntry]
	synthOut map[string]obs.SynthOutcome
	minClock float64
}

type tuneEntry struct {
	set *restrict.Set
	rep *core.Report
}

// call is a single-flight cache slot: the first caller computes under
// the Once, every concurrent or later caller for the same key blocks on
// (or reads) the same slot. This is what makes the parallel fan-out
// deterministic — a unit of work runs exactly once no matter how many
// pool workers ask for it, so results can't depend on scheduling.
type call[T any] struct {
	once sync.Once
	val  T
	err  error
}

// flowCall returns the slot for key in m, creating it under mu if absent.
func flowCall[T any](mu *sync.Mutex, m map[string]*call[T], key string) *call[T] {
	mu.Lock()
	defer mu.Unlock()
	c, ok := m[key]
	if !ok {
		c = &call[T]{}
		m[key] = c
	}
	return c
}

// poolWorkers sizes the experiment fan-out pools; tests pin it to 1 to
// prove serial/parallel result identity.
var poolWorkers = robust.DefaultWorkers

// NewFlow builds the shared artifacts: catalogue, Monte-Carlo instances
// (generated in parallel on the worker pool), statistical library and
// the microcontroller network. The context cancels both construction
// and every driver run later on the returned flow; nil means
// context.Background().
func NewFlow(ctx context.Context, cfg FlowConfig) (*Flow, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	run := obs.NewRun(obs.TracerFrom(ctx))
	log := obs.Log()
	cat := stdcell.NewCatalogue(cfg.Corner)
	stopChar := run.Phase("characterize", "samples", cfg.Samples, "seed", cfg.Seed)
	libs, err := variation.InstancesCtx(ctx, cat, variation.Config{N: cfg.Samples, Seed: cfg.Seed, CharNoise: 0.02})
	stopChar()
	if err != nil {
		return nil, err
	}
	log.Debug("characterized", "samples", cfg.Samples, "seed", cfg.Seed)
	injected := faultinject.Corrupt(libs, cfg.Fault)
	stopFold := run.Phase("statlib-fold", "instances", len(libs))
	stat, err := statlib.Build("stat_"+cfg.Corner.Name(), libs)
	stopFold()
	if err != nil {
		return nil, err
	}
	log.Debug("statistical library folded", "cells", len(stat.Cells), "quarantined", stat.Quarantine.Len())
	stopRTL := run.Phase("rtlgen")
	mcu, err := rtlgen.Build(cfg.MCU)
	stopRTL()
	if err != nil {
		return nil, err
	}
	log.Debug("mcu generated", "gates", mcu.Net.GateCount())
	return &Flow{
		Cfg: cfg, Cat: cat, Stat: stat, MCU: mcu,
		Quarantine: stat.Quarantine,
		Injected:   injected,
		Obs:        run,
		Perf:       run.Perf,
		ctx:        ctx,
		synthRes:   make(map[string]*call[*synth.Result]),
		statRes:    make(map[string]*call[*stattime.DesignStats]),
		tuneRes:    make(map[string]*call[*tuneEntry]),
		synthOut:   make(map[string]obs.SynthOutcome),
	}, nil
}

// Context returns the context the flow was built with.
func (f *Flow) Context() context.Context { return f.ctx }

// checkCtx is the cancellation checkpoint every driver passes through
// before starting an expensive unit of work (a tuning run, a synthesis,
// a statistical analysis).
func (f *Flow) checkCtx() error { return f.ctx.Err() }

// Tune runs (and caches, single-flight) a tuning method at a bound.
func (f *Flow) Tune(m core.Method, bound float64) (*restrict.Set, *core.Report, error) {
	key := fmt.Sprintf("%d/%g", m, bound)
	c := flowCall(&f.mu, f.tuneRes, key)
	c.once.Do(func() {
		if err := f.checkCtx(); err != nil {
			c.err = err
			return
		}
		// The span name carries the tuning unit (method @ bound) so each
		// unit is its own row in the trace; the perfstat phase stays the
		// aggregate "tune" row of the bench JSON.
		stopPerf := f.Perf.Start("tune")
		span := f.Obs.Tracer.Start(fmt.Sprintf("tune %s @%g", m, bound), "tune", "method", m.String(), "bound", bound)
		set, rep, err := core.NewTuner(f.Stat).Tune(core.ParamsFor(m, bound))
		span.End()
		stopPerf()
		if err != nil {
			c.err = err
			return
		}
		obs.Log().Debug("tuned", "method", m.String(), "bound", bound, "windows", set.Len())
		c.val = &tuneEntry{set: set, rep: rep}
	})
	if c.err != nil {
		return nil, nil, c.err
	}
	return c.val.set, c.val.rep, nil
}

// Baseline synthesizes (cached) the MCU without restrictions.
func (f *Flow) Baseline(clock float64) (*synth.Result, error) {
	return f.synth(fmt.Sprintf("base/%g", clock), clock, nil)
}

// Tuned synthesizes (cached) under the windows of a method at a bound.
func (f *Flow) Tuned(m core.Method, bound, clock float64) (*synth.Result, error) {
	set, _, err := f.Tune(m, bound)
	if err != nil {
		return nil, err
	}
	return f.synth(fmt.Sprintf("tuned/%d/%g/%g", m, bound, clock), clock, set)
}

func (f *Flow) synth(key string, clock float64, set *restrict.Set) (*synth.Result, error) {
	c := flowCall(&f.mu, f.synthRes, key)
	c.once.Do(func() {
		if err := f.checkCtx(); err != nil {
			c.err = err
			return
		}
		opts := synth.DefaultOptions(clock)
		opts.Restrict = set
		stop := f.Obs.Phase("synth", "key", key, "clock", clock)
		res, err := synth.SynthesizeCtx(f.ctx, "mcu", f.MCU.Net, f.Cat, opts)
		stop()
		if err != nil {
			c.err = err
			return
		}
		obs.Log().Debug("synthesized", "key", key, "met", res.Met, "area", res.Area(),
			"iterations", res.Iterations, "sta_full", res.FullAnalyses, "sta_incremental", res.IncrementalUpdates)
		f.mu.Lock()
		f.synthOut[key] = obs.SynthOutcome{
			Key: key, Clock: clock, Met: res.Met, Area: res.Area(),
			Iterations: res.Iterations, FullAnalyses: res.FullAnalyses,
			IncrementalUpdates: res.IncrementalUpdates,
		}
		f.mu.Unlock()
		c.val = res
	})
	return c.val, c.err
}

// SynthOutcomes lists what every cached synthesis unit did, sorted by
// cache key — the manifest's synth_outcomes section.
func (f *Flow) SynthOutcomes() []obs.SynthOutcome {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]obs.SynthOutcome, 0, len(f.synthOut))
	for _, o := range f.synthOut {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Stats computes (cached, single-flight) the statistical timing of a
// synthesis result.
func (f *Flow) Stats(key string, res *synth.Result) (*stattime.DesignStats, error) {
	c := flowCall(&f.mu, f.statRes, key)
	c.once.Do(func() {
		if err := f.checkCtx(); err != nil {
			c.err = err
			return
		}
		stop := f.Obs.Phase("stattime", "key", key)
		c.val, c.err = stattime.AnalyzeCtx(f.ctx, res.Timing, f.Stat, 0)
		stop()
	})
	return c.val, c.err
}

// BaselineStats is a convenience joining Baseline and Stats.
func (f *Flow) BaselineStats(clock float64) (*synth.Result, *stattime.DesignStats, error) {
	res, err := f.Baseline(clock)
	if err != nil {
		return nil, nil, err
	}
	ds, err := f.Stats(fmt.Sprintf("base/%g", clock), res)
	return res, ds, err
}

// TunedStats is a convenience joining Tuned and Stats.
func (f *Flow) TunedStats(m core.Method, bound, clock float64) (*synth.Result, *stattime.DesignStats, error) {
	res, err := f.Tuned(m, bound, clock)
	if err != nil {
		return nil, nil, err
	}
	ds, err := f.Stats(fmt.Sprintf("tuned/%d/%g/%g", m, bound, clock), res)
	return res, ds, err
}

// MinClock finds (cached) the minimum clock period at which the baseline
// synthesis still meets timing, to the given resolution — the paper's
// "reducing the clock period until the synthesis fails" (Table 1).
func (f *Flow) MinClock() (float64, error) {
	f.mu.Lock()
	cached := f.minClock
	f.mu.Unlock()
	if cached > 0 {
		return cached, nil
	}
	// Trace span only (no perfstat phase): the binary search is made of
	// Baseline calls whose synth windows already account the time; a
	// minclock perf window on top would just double-count their wall.
	span := f.Obs.Tracer.Start("minclock", "phase")
	defer span.End()
	lo, hi := 0.5, 16.0
	// Ensure hi is feasible.
	res, err := f.Baseline(hi)
	if err != nil {
		return 0, err
	}
	if !res.Met {
		return 0, fmt.Errorf("exp: design infeasible even at %.1f ns", hi)
	}
	for hi-lo > 0.1 {
		if err := f.checkCtx(); err != nil {
			return 0, err
		}
		mid := math.Round((lo+hi)/2*20) / 20 // 0.05 ns grid
		res, err := f.Baseline(mid)
		if err != nil {
			return 0, err
		}
		if res.Met {
			hi = mid
		} else {
			lo = mid
		}
	}
	f.mu.Lock()
	f.minClock = hi
	f.mu.Unlock()
	return hi, nil
}

// ClockSet is the experiment's Table 1: the four timing constraints.
type ClockSet struct {
	HighPerf   float64 // minimum achievable period
	CloseToMax float64 // just above the minimum (paper: 2.5 vs 2.41)
	Medium     float64 // paper ratio 4/2.41
	Low        float64 // paper ratio 10/2.41 (relaxed knee)
}

// Periods lists the four clocks in Table-1 order.
func (c ClockSet) Periods() []float64 {
	return []float64{c.HighPerf, c.CloseToMax, c.Medium, c.Low}
}

// Clocks derives the four constraint periods from the measured minimum,
// using the paper's ratios (2.41 : 2.5 : 4 : 10).
func (f *Flow) Clocks() (ClockSet, error) {
	minClk, err := f.MinClock()
	if err != nil {
		return ClockSet{}, err
	}
	round := func(v float64) float64 { return math.Round(v*10) / 10 }
	return ClockSet{
		HighPerf:   minClk,
		CloseToMax: round(minClk * 2.5 / 2.41),
		Medium:     round(minClk * 4 / 2.41),
		Low:        round(minClk * 10 / 2.41),
	}, nil
}
