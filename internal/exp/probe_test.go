package exp

import (
	"fmt"
	"testing"

	"stdcelltune/internal/core"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stattime"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/synth"
	"stdcelltune/internal/variation"
)

// TestProbeHeadline is a scoping probe for the paper's headline result
// (37% sigma reduction at 7% area increase). It is retained as a live
// integration test of the full flow at one clock.
func TestProbeHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow probe")
	}
	cat := stdcell.NewCatalogue(stdcell.Typical)
	libs := variation.Instances(cat, variation.DefaultConfig())
	sl, err := statlib.Build("stat", libs)
	if err != nil {
		t.Fatal(err)
	}
	mcu, err := rtlgen.Build(rtlgen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Find a workable "high performance" clock.
	for _, clk := range []float64{5.0, 4.0, 3.5, 3.0, 2.8} {
		res, err := synth.Synthesize("mcu", mcu.Net, cat, synth.DefaultOptions(clk))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("baseline clk=%.2f met=%v WNS=%.3f area=%.0f\n", clk, res.Met, res.Timing.WNS(), res.Area())
		if !res.Met {
			continue
		}
		ds, err := stattime.Analyze(res.Timing, sl, 0)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("  design sigma=%.4f mean=%.1f paths=%d maxdepth=%d\n",
			ds.Design.Sigma, ds.Design.Mu, len(ds.Paths), ds.MaxDepth())
		tuner := core.NewTuner(sl)
		for _, bound := range core.SweepBounds(core.SigmaCeiling) {
			set, rep, err := tuner.Tune(core.ParamsFor(core.SigmaCeiling, bound))
			if err != nil {
				t.Fatal(err)
			}
			opts := synth.DefaultOptions(clk)
			opts.Restrict = set
			rres, err := synth.Synthesize("mcu_r", mcu.Net, cat, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !rres.Met {
				fmt.Printf("  ceiling %.3f: UNMET (WNS=%.3f, excluded=%d)\n", bound, rres.Timing.WNS(), rep.ExcludedPins())
				for i, v := range rres.ViolationList() {
					if i >= 6 {
						break
					}
					fmt.Printf("    viol %s/%s %s %.4f > %.4f\n", v.Cell, v.Pin, v.Kind, v.Value, v.Limit)
				}
				continue
			}
			rds, err := stattime.Analyze(rres.Timing, sl, 0)
			if err != nil {
				t.Fatal(err)
			}
			cmp := stattime.Compare{
				BaselineSigma: ds.Design.Sigma, TunedSigma: rds.Design.Sigma,
				BaselineArea: res.Area(), TunedArea: rres.Area(),
			}
			fmt.Printf("  ceiling %.3f: sigma %.4f (-%.0f%%) area %.0f (+%.1f%%) excl=%d\n",
				bound, rds.Design.Sigma, 100*cmp.SigmaReduction(), rres.Area(),
				100*cmp.AreaIncrease(), rep.ExcludedPins())
		}
		break
	}
}
