package exp

import (
	"log/slog"
	"os"
	"testing"

	"stdcelltune/internal/core"
	"stdcelltune/internal/obs"
	"stdcelltune/internal/rtlgen"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stattime"
	"stdcelltune/internal/stdcell"
	"stdcelltune/internal/synth"
	"stdcelltune/internal/variation"
)

// TestProbeHeadline is a scoping probe for the paper's headline result
// (37% sigma reduction at 7% area increase). It is retained as a live
// integration test of the full flow at one clock. Its progress lines go
// through the obs logger: silent by default, visible under `go test -v`.
func TestProbeHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow probe")
	}
	if testing.Verbose() {
		obs.InitLog(os.Stdout, slog.LevelDebug)
		defer obs.SetLog(nil)
	}
	log := obs.Log()
	cat := stdcell.NewCatalogue(stdcell.Typical)
	libs := variation.Instances(cat, variation.DefaultConfig())
	sl, err := statlib.Build("stat", libs)
	if err != nil {
		t.Fatal(err)
	}
	mcu, err := rtlgen.Build(rtlgen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Find a workable "high performance" clock.
	for _, clk := range []float64{5.0, 4.0, 3.5, 3.0, 2.8} {
		res, err := synth.Synthesize("mcu", mcu.Net, cat, synth.DefaultOptions(clk))
		if err != nil {
			t.Fatal(err)
		}
		log.Debug("baseline", "clk", clk, "met", res.Met, "wns", res.Timing.WNS(), "area", res.Area())
		if !res.Met {
			continue
		}
		ds, err := stattime.Analyze(res.Timing, sl, 0)
		if err != nil {
			t.Fatal(err)
		}
		log.Debug("design", "sigma", ds.Design.Sigma, "mean", ds.Design.Mu,
			"paths", len(ds.Paths), "maxdepth", ds.MaxDepth())
		tuner := core.NewTuner(sl)
		for _, bound := range core.SweepBounds(core.SigmaCeiling) {
			set, rep, err := tuner.Tune(core.ParamsFor(core.SigmaCeiling, bound))
			if err != nil {
				t.Fatal(err)
			}
			opts := synth.DefaultOptions(clk)
			opts.Restrict = set
			rres, err := synth.Synthesize("mcu_r", mcu.Net, cat, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !rres.Met {
				log.Debug("ceiling unmet", "bound", bound, "wns", rres.Timing.WNS(), "excluded", rep.ExcludedPins())
				for i, v := range rres.ViolationList() {
					if i >= 6 {
						break
					}
					log.Debug("violation", "cell", v.Cell, "pin", v.Pin, "kind", v.Kind,
						"value", v.Value, "limit", v.Limit)
				}
				continue
			}
			rds, err := stattime.Analyze(rres.Timing, sl, 0)
			if err != nil {
				t.Fatal(err)
			}
			cmp := stattime.Compare{
				BaselineSigma: ds.Design.Sigma, TunedSigma: rds.Design.Sigma,
				BaselineArea: res.Area(), TunedArea: rres.Area(),
			}
			log.Debug("ceiling met", "bound", bound, "sigma", rds.Design.Sigma,
				"sigma_reduction_pct", 100*cmp.SigmaReduction(), "area", rres.Area(),
				"area_increase_pct", 100*cmp.AreaIncrease(), "excluded", rep.ExcludedPins())
		}
		break
	}
}
