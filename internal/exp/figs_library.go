package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"stdcelltune/internal/dist"
	"stdcelltune/internal/lut"
	"stdcelltune/internal/report"
	"stdcelltune/internal/statlib"
	"stdcelltune/internal/stdcell"
)

// Fig1Result demonstrates why the coefficient of variation is the wrong
// tuning metric (Fig. 1): two distributions with identical variability
// but very different absolute dispersion.
type Fig1Result struct {
	Left, Right dist.Normal
}

// Fig1 builds the paper's exact example.
func (f *Flow) Fig1() *Fig1Result {
	return &Fig1Result{
		Left:  dist.Normal{Mu: 0.5, Sigma: 0.01},
		Right: dist.Normal{Mu: 5, Sigma: 0.1},
	}
}

// Render draws the comparison.
func (r *Fig1Result) Render() string {
	tb := &report.Table{
		Title:  "Fig 1: variability (CoV) vs sigma as a selection metric",
		Header: []string{"distribution", "mean", "sigma", "variability"},
	}
	tb.AddRow("left", r.Left.Mu, r.Left.Sigma, r.Left.Variability())
	tb.AddRow("right", r.Right.Mu, r.Right.Sigma, r.Right.Variability())
	return tb.Render() +
		"identical variability, different dispersion: sigma is the usable metric\n"
}

// probe returns the named statistical cell, or — when the cell was
// quarantined out of the library (fault injection, broken
// characterization data) — the first healthy cell of the same family in
// library order, so the library-inspection figures degrade to a
// representative neighbour instead of failing. The returned name is the
// cell actually used.
func (f *Flow) probe(name string) (*statlib.Cell, string, error) {
	if c := f.Stat.Cell(name); c != nil && len(c.Pins) > 0 {
		return c, name, nil
	}
	fam := stdcell.FamilyOf(name)
	for _, alt := range f.Stat.CellOrder {
		if stdcell.FamilyOf(alt) != fam {
			continue
		}
		if c := f.Stat.Cell(alt); c != nil && len(c.Pins) > 0 {
			return c, alt, nil
		}
	}
	return nil, "", fmt.Errorf("exp: probe cell %s missing and family %s has no healthy member", name, fam)
}

// Fig2Result summarizes the statistical library construction (Fig. 2):
// how well the per-entry mean/sigma across N Monte-Carlo instances
// recover the analytic ground truth.
type Fig2Result struct {
	Samples     int
	Cells       int
	MeanRelErr  float64 // average |mc - analytic| / analytic over probes
	SigmaRelErr float64
	ProbedCells []string
}

// Fig2 probes a representative cell set against the analytic model.
func (f *Flow) Fig2() (*Fig2Result, error) {
	probes := []string{"INV_1", "INV_32", "ND2_4", "NR4_6", "XNR2_8", "MUX2_4", "DFQ_2"}
	res := &Fig2Result{Samples: f.Stat.Samples, Cells: len(f.Stat.Cells)}
	var meanErr, sigmaErr float64
	var n int
	for _, want := range probes {
		cell, name, err := f.probe(want)
		if err != nil {
			return nil, err
		}
		res.ProbedCells = append(res.ProbedCells, name)
		spec := f.Cat.Spec(name)
		if spec == nil {
			return nil, fmt.Errorf("exp: probe cell %s missing from catalogue", name)
		}
		arc := cell.Pins[0].Arcs[0]
		axis := spec.LoadAxis()
		for _, li := range []int{0, 3, 6} {
			for _, sj := range []int{0, 3, 6} {
				load, slew := axis[li], stdcell.SlewAxis[sj]
				wantMu := spec.Delay(load, slew, f.Cat.Corner) * 1.05
				wantSg := spec.Sigma(load, slew, f.Cat.Corner) * 1.05
				meanErr += math.Abs(arc.MeanRise.Values[li][sj]-wantMu) / wantMu
				sigmaErr += math.Abs(arc.SigmaRise.Values[li][sj]-wantSg) / wantSg
				n++
			}
		}
	}
	res.MeanRelErr = meanErr / float64(n)
	res.SigmaRelErr = sigmaErr / float64(n)
	return res, nil
}

// Render summarizes construction quality.
func (r *Fig2Result) Render() string {
	tb := &report.Table{
		Title:  "Fig 2: statistical library construction quality",
		Header: []string{"quantity", "value"},
	}
	tb.AddRow("MC instances folded", r.Samples)
	tb.AddRow("cells", r.Cells)
	tb.AddRow("mean rel. error", r.MeanRelErr)
	tb.AddRow("sigma rel. error", r.SigmaRelErr)
	return tb.Render()
}

// Fig3Result is the bilinear interpolation worked example (Fig. 3 /
// eqs. 2-4) evaluated on a real statistical table.
type Fig3Result struct {
	Cell       string
	Load, Slew float64
	OnGrid     float64 // exact table entry at an index point
	OffGrid    float64 // interpolated between four entries
	Corners    [4]float64
}

// Fig3 interpolates the ND2_4 sigma table between grid points (or a
// family neighbour's when ND2_4 is quarantined).
func (f *Flow) Fig3() (*Fig3Result, error) {
	cell, name, err := f.probe("ND2_4")
	if err != nil {
		return nil, err
	}
	t := cell.Pins[0].Arcs[0].SigmaRise
	res := &Fig3Result{Cell: name}
	res.OnGrid = t.Values[2][2]
	res.Load = (t.Loads[2] + t.Loads[3]) / 2
	res.Slew = (t.Slews[2] + t.Slews[3]) / 2
	res.Corners = [4]float64{t.Values[2][2], t.Values[2][3], t.Values[3][2], t.Values[3][3]}
	res.OffGrid = t.Lookup(res.Load, res.Slew)
	return res, nil
}

// Render shows the interpolation inputs and output.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3: bilinear interpolation on %s sigma LUT\n", r.Cell)
	fmt.Fprintf(&b, "Q11=%.5f Q12=%.5f Q21=%.5f Q22=%.5f\n", r.Corners[0], r.Corners[1], r.Corners[2], r.Corners[3])
	fmt.Fprintf(&b, "query (load=%.4f pF, slew=%.4f ns) -> X=%.5f ns (on-grid ref %.5f)\n",
		r.Load, r.Slew, r.OffGrid, r.OnGrid)
	return b.String()
}

// DriveSurface summarizes one cell's sigma LUT for Figs. 4/5/7.
type DriveSurface struct {
	Cell     string
	Drive    int
	LoadMax  float64 // top of the load axis (range grows with drive)
	SigmaMin float64
	SigmaMax float64
	GradLoad float64 // max per-index load-direction gradient
	GradSlew float64
}

func (f *Flow) surfaceOf(name string) (DriveSurface, error) {
	cell := f.Stat.Cell(name)
	if cell == nil || len(cell.Pins) == 0 {
		return DriveSurface{}, fmt.Errorf("exp: cell %s missing", name)
	}
	maxEq, err := cell.Pins[0].MaxSigmaTable()
	if err != nil {
		return DriveSurface{}, err
	}
	ds := DriveSurface{
		Cell:     name,
		Drive:    cell.DriveStrength,
		LoadMax:  maxEq.Loads[len(maxEq.Loads)-1],
		SigmaMin: maxEq.Min(),
		SigmaMax: maxEq.Max(),
		GradLoad: maxEq.IndexLoadSlope().Max(),
		GradSlew: maxEq.IndexSlewSlope().Max(),
	}
	return ds, nil
}

// Fig4Result is the inverter drive-strength family of sigma surfaces.
type Fig4Result struct {
	Surfaces []DriveSurface
}

// Fig4 summarizes INV_1 .. INV_32 (the paper's family plot). Members
// quarantined out of the statistical library are skipped; the figure
// needs at least two drives to show the trend.
func (f *Flow) Fig4() (*Fig4Result, error) {
	res := &Fig4Result{}
	for _, name := range []string{"INV_1", "INV_2", "INV_4", "INV_8", "INV_16", "INV_32"} {
		s, err := f.surfaceOf(name)
		if err != nil {
			if f.Quarantine.Has(name) {
				continue
			}
			return nil, err
		}
		res.Surfaces = append(res.Surfaces, s)
	}
	if len(res.Surfaces) < 2 {
		return nil, fmt.Errorf("exp: fewer than two healthy inverter drives")
	}
	return res, nil
}

func renderSurfaces(title string, surfaces []DriveSurface) string {
	tb := &report.Table{
		Title:  title,
		Header: []string{"cell", "drive", "load range (pF)", "sigma min", "sigma max", "grad load", "grad slew"},
	}
	for _, s := range surfaces {
		tb.AddRow(s.Cell, s.Drive, s.LoadMax, s.SigmaMin, s.SigmaMax, s.GradLoad, s.GradSlew)
	}
	return tb.Render()
}

// Render draws the family summary.
func (r *Fig4Result) Render() string {
	return renderSurfaces("Fig 4: inverter sigma surfaces vs drive strength", r.Surfaces)
}

// Fig5Result is the drive-6 cluster of Fig. 5.
type Fig5Result struct {
	Surfaces []DriveSurface
}

// Fig5 summarizes every drive-6 cell (one arc each, as in the paper).
func (f *Flow) Fig5() (*Fig5Result, error) {
	res := &Fig5Result{}
	var names []string
	for _, spec := range f.Cat.ByDrive[6] {
		names = append(names, spec.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		s, err := f.surfaceOf(name)
		if err != nil {
			continue // tie cells etc.
		}
		res.Surfaces = append(res.Surfaces, s)
	}
	if len(res.Surfaces) == 0 {
		return nil, fmt.Errorf("exp: no drive-6 cells")
	}
	return res, nil
}

// Render draws the cluster summary.
func (r *Fig5Result) Render() string {
	return renderSurfaces("Fig 5: sigma surfaces of the drive-6 cluster", r.Surfaces)
}

// Fig6Result demonstrates Algorithm 1 on a real binary LUT.
type Fig6Result struct {
	Cell      string
	Ceiling   float64
	Mask      *lut.Binary
	Rect      lut.Rect
	Threshold float64
}

// Fig6 thresholds NR4_6's worst sigma LUT (or a family neighbour's
// when NR4_6 is quarantined) by the 0.02 ceiling and extracts the
// largest origin-anchored rectangle.
func (f *Flow) Fig6() (*Fig6Result, error) {
	cell, name, err := f.probe("NR4_6")
	if err != nil {
		return nil, err
	}
	maxEq, err := cell.Pins[0].MaxSigmaTable()
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Cell: name, Ceiling: 0.02}
	res.Mask = maxEq.ThresholdLE(res.Ceiling)
	res.Rect = res.Mask.LargestRectangleFast()
	if !res.Rect.Empty() {
		res.Threshold = maxEq.ThresholdValue(res.Rect)
	}
	return res, nil
}

// Render prints the mask and the extracted rectangle.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6: largest rectangle on %s binary LUT (ceiling %.3f)\n", r.Cell, r.Ceiling)
	b.WriteString(r.Mask.String())
	fmt.Fprintf(&b, "rectangle: %v, threshold sigma at far corner: %.5f\n", r.Rect, r.Threshold)
	return b.String()
}

// Fig7Result summarizes all 304 cells' sigma surfaces (the paper's
// library-wide surface plot) as distribution statistics.
type Fig7Result struct {
	Tables     int
	GlobalMax  float64
	Percentile map[int]float64 // p50/p90/p99 of per-table max sigma
	PerFamily  []FamilySigma
}

// FamilySigma is the per-family worst sigma.
type FamilySigma struct {
	Family string
	Max    float64
}

// Fig7 folds the whole statistical library.
func (f *Flow) Fig7() (*Fig7Result, error) {
	res := &Fig7Result{Percentile: make(map[int]float64)}
	famMax := make(map[string]float64)
	var maxes []float64
	for name, cell := range f.Stat.Cells {
		for _, pin := range cell.Pins {
			for _, t := range pin.SigmaTables() {
				res.Tables++
				m := t.Max()
				maxes = append(maxes, m)
				if m > res.GlobalMax {
					res.GlobalMax = m
				}
				fam := stdcell.FamilyOf(name)
				if m > famMax[fam] {
					famMax[fam] = m
				}
			}
		}
	}
	if len(maxes) == 0 {
		return nil, fmt.Errorf("exp: empty statistical library")
	}
	for _, p := range []int{50, 90, 99} {
		res.Percentile[p] = dist.Quantile(maxes, float64(p)/100)
	}
	fams := make([]string, 0, len(famMax))
	for f := range famMax {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		res.PerFamily = append(res.PerFamily, FamilySigma{Family: fam, Max: famMax[fam]})
	}
	return res, nil
}

// Render draws the library-wide summary.
func (r *Fig7Result) Render() string {
	tb := &report.Table{
		Title:  "Fig 7: all cell delay sigma LUTs (library-wide summary)",
		Header: []string{"quantity", "value"},
	}
	tb.AddRow("sigma tables", r.Tables)
	tb.AddRow("global max sigma (ns)", r.GlobalMax)
	tb.AddRow("p50 of per-table max", r.Percentile[50])
	tb.AddRow("p90 of per-table max", r.Percentile[90])
	tb.AddRow("p99 of per-table max", r.Percentile[99])
	famT := &report.Table{Header: []string{"family", "max sigma"}}
	for _, fs := range r.PerFamily {
		famT.AddRow(fs.Family, fs.Max)
	}
	return tb.Render() + famT.Render()
}

// Fig6Sanity cross-checks the paper-faithful quartic rectangle scan
// against the fast variant on the Fig. 6 mask (the DESIGN.md ablation).
func (r *Fig6Result) Fig6Sanity() bool {
	slow := r.Mask.LargestRectangle()
	return slow.Area() == r.Rect.Area()
}
