package exp

import (
	"fmt"

	"stdcelltune/internal/core"
	"stdcelltune/internal/report"
)

// ExtYieldResult quantifies the paper's motivation paragraph: "a lower
// clock uncertainty means that the desired clock period can be decreased
// resulting in a faster design". It compares, at the high-performance
// clock, the parametric timing yield of baseline and tuned designs and
// the minimum clock each needs for a 99.9% yield target.
type ExtYieldResult struct {
	Clock     float64
	Effective float64
	Bound     float64

	BaseYield  float64 // yield at the effective clock
	TunedYield float64
	// Minimum effective clock for 99.9% yield — the "reclaimed
	// uncertainty" is the difference.
	BaseMinClock  float64
	TunedMinClock float64
	// YieldSweep: (effective clock, baseline yield, tuned yield).
	SweepClocks []float64
	SweepBase   []float64
	SweepTuned  []float64
}

// UncertaintyReclaimed returns how much guard band the tuning gives
// back (ns) at the 99.9% yield point.
func (r *ExtYieldResult) UncertaintyReclaimed() float64 {
	return r.BaseMinClock - r.TunedMinClock
}

// ExtYield runs the yield comparison at the high-performance clock.
func (f *Flow) ExtYield() (*ExtYieldResult, error) {
	clocks, err := f.Clocks()
	if err != nil {
		return nil, err
	}
	clk := clocks.HighPerf
	best, err := f.bestBound(core.SigmaCeiling, clk)
	if err != nil {
		return nil, err
	}
	bound := best.Bound
	if !best.Met {
		bound = core.SweepBounds(core.SigmaCeiling)[0]
	}
	baseRes, baseDS, err := f.BaselineStats(clk)
	if err != nil {
		return nil, err
	}
	_, tunedDS, err := f.TunedStats(core.SigmaCeiling, bound, clk)
	if err != nil {
		return nil, err
	}
	eff := clk - baseRes.Opts.STA.Uncertainty
	const target = 0.999
	out := &ExtYieldResult{
		Clock: clk, Effective: eff, Bound: bound,
		BaseYield:     baseDS.Yield(eff),
		TunedYield:    tunedDS.Yield(eff),
		BaseMinClock:  baseDS.MinClockForYield(target),
		TunedMinClock: tunedDS.MinClockForYield(target),
	}
	// Yield curves around the effective clock.
	for _, mult := range []float64{0.96, 0.98, 0.99, 1.0, 1.01, 1.02, 1.04} {
		t := eff * mult
		out.SweepClocks = append(out.SweepClocks, t)
		out.SweepBase = append(out.SweepBase, baseDS.Yield(t))
		out.SweepTuned = append(out.SweepTuned, tunedDS.Yield(t))
	}
	return out, nil
}

// Render draws the yield comparison.
func (r *ExtYieldResult) Render() string {
	tb := &report.Table{
		Title: fmt.Sprintf("Extension: timing yield and uncertainty reclaim @ %.2f ns (ceiling %g)",
			r.Clock, r.Bound),
		Header: []string{"quantity", "baseline", "tuned"},
	}
	tb.AddRow("yield at effective clock", r.BaseYield, r.TunedYield)
	tb.AddRow("min effective clock @99.9% yield (ns)", r.BaseMinClock, r.TunedMinClock)
	s := report.RenderSeries("yield vs effective clock", "clock(ns)",
		report.Series{Name: "baseline", X: r.SweepClocks, Y: r.SweepBase},
		report.Series{Name: "tuned", X: r.SweepClocks, Y: r.SweepTuned})
	return tb.Render() + s + fmt.Sprintf(
		"uncertainty reclaimed by tuning: %.3f ns (the paper's motivation, quantified)\n",
		r.UncertaintyReclaimed())
}
