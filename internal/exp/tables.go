package exp

import (
	"context"
	"fmt"

	"stdcelltune/internal/core"
	"stdcelltune/internal/report"
	"stdcelltune/internal/robust"
)

// Table1Result reproduces Table 1: the clock periods of the four timing
// constraints, anchored at the measured minimum achievable period.
type Table1Result struct {
	Clocks ClockSet
}

// Table1 finds the minimum clock period by shrinking until synthesis
// fails, then derives the other constraints at the paper's ratios.
func (f *Flow) Table1() (*Table1Result, error) {
	clocks, err := f.Clocks()
	if err != nil {
		return nil, err
	}
	return &Table1Result{Clocks: clocks}, nil
}

// Render draws the table in the paper's layout.
func (t *Table1Result) Render() string {
	tb := &report.Table{
		Title:  "Table 1: clock periods for different constraints",
		Header: []string{"constraint", "clock period (ns)"},
	}
	tb.AddRow("High performance", t.Clocks.HighPerf)
	tb.AddRow("Medium performance", t.Clocks.Medium)
	tb.AddRow("Low performance", t.Clocks.Low)
	tb.AddRow("Close to maximum check", t.Clocks.CloseToMax)
	return tb.Render()
}

// Table2Result reproduces Table 2: the constraint parameters used during
// threshold extraction. These are inputs of the method, fixed by the
// paper; the driver exists so the harness records them next to the
// measured outputs.
type Table2Result struct {
	LoadSlopeBounds []float64
	SlewSlopeBounds []float64
	SigmaCeilings   []float64
	Defaults        core.Params
}

// Table2 returns the paper's constraint parameter matrix.
func (f *Flow) Table2() *Table2Result {
	return &Table2Result{
		LoadSlopeBounds: core.SweepBounds(core.CellLoadSlope),
		SlewSlopeBounds: core.SweepBounds(core.CellSlewSlope),
		SigmaCeilings:   core.SweepBounds(core.SigmaCeiling),
		Defaults: core.Params{
			LoadSlopeBound: core.DefaultLoadSlopeBound,
			SlewSlopeBound: core.DefaultSlewSlopeBound,
			SigmaCeiling:   core.DefaultSigmaCeiling,
		},
	}
}

// Render draws the parameter matrix.
func (t *Table2Result) Render() string {
	tb := &report.Table{
		Title:  "Table 2: constraint parameters used during threshold extraction",
		Header: []string{"parameter", "sweep values", "default"},
	}
	tb.AddRow("Load slope bounds", fmt.Sprint(t.LoadSlopeBounds), t.Defaults.LoadSlopeBound)
	tb.AddRow("Slew slope bounds", fmt.Sprint(t.SlewSlopeBounds), t.Defaults.SlewSlopeBound)
	tb.AddRow("Sigma ceiling", fmt.Sprint(t.SigmaCeilings), t.Defaults.SigmaCeiling)
	return tb.Render()
}

// MethodBest is the winning bound of one tuning method at one clock:
// the highest sigma reduction with area increase below the cap.
type MethodBest struct {
	Method     core.Method
	Clock      float64
	Bound      float64
	Met        bool // any bound produced a met design within the area cap
	SigmaBase  float64
	SigmaTuned float64
	AreaBase   float64
	AreaTuned  float64
}

// SigmaReduction returns the fractional reduction.
func (m MethodBest) SigmaReduction() float64 {
	if m.SigmaBase == 0 {
		return 0
	}
	return (m.SigmaBase - m.SigmaTuned) / m.SigmaBase
}

// AreaIncrease returns the fractional increase.
func (m MethodBest) AreaIncrease() float64 {
	if m.AreaBase == 0 {
		return 0
	}
	return (m.AreaTuned - m.AreaBase) / m.AreaBase
}

// Table3Result holds, per method and clock, the constraint bound that
// achieved the highest sigma reduction at <10% area increase (Table 3),
// together with the measured reductions (Fig. 10 draws the same data).
type Table3Result struct {
	Clocks ClockSet
	Best   []MethodBest // 5 methods x 4 clocks, method-major
}

// AreaCap is the paper's acceptance bound for Fig. 10 / Table 3: area
// increase below 10%.
const AreaCap = 0.10

// Table3 runs the full 5-method x 4-bound x 4-clock sweep. The twenty
// (method, clock) cells are independent once the four baselines exist,
// so they run concurrently; the flow cache deduplicates shared tuning
// runs.
func (f *Flow) Table3() (*Table3Result, error) {
	clocks, err := f.Clocks()
	if err != nil {
		return nil, err
	}
	// Baselines first (each shared by five methods), then the tuning
	// runs (shared across clocks) — both serial so the parallel phase
	// below only ever hits warm caches for shared artifacts.
	for _, clk := range clocks.Periods() {
		if _, _, err := f.BaselineStats(clk); err != nil {
			return nil, err
		}
	}
	for _, m := range core.Methods {
		for _, bound := range core.SweepBounds(m) {
			if _, _, err := f.Tune(m, bound); err != nil {
				return nil, err
			}
		}
	}
	type cell struct {
		m   core.Method
		clk float64
	}
	var cells []cell
	for _, m := range core.Methods {
		for _, clk := range clocks.Periods() {
			cells = append(cells, cell{m, clk})
		}
	}
	// The worker pool bounds concurrency (slots are acquired before a
	// goroutine spawns), recovers per-cell panics into errors, honours
	// the flow context, and joins every cell error instead of dropping
	// all but the first.
	results := make([]MethodBest, len(cells))
	err = robust.ForEach(f.ctx, poolWorkers(), len(cells), func(_ context.Context, i int) error {
		c := cells[i]
		b, err := f.bestBound(c.m, c.clk)
		if err != nil {
			return fmt.Errorf("table3 %s at %.2f ns: %w", c.m, c.clk, err)
		}
		results[i] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Table3Result{Clocks: clocks, Best: results}, nil
}

// bestBound sweeps the method's Table-2 bounds at one clock and picks
// the highest sigma reduction whose area increase stays under AreaCap.
func (f *Flow) bestBound(m core.Method, clk float64) (MethodBest, error) {
	_, baseDS, err := f.BaselineStats(clk)
	if err != nil {
		return MethodBest{}, err
	}
	baseRes, err := f.Baseline(clk)
	if err != nil {
		return MethodBest{}, err
	}
	best := MethodBest{
		Method: m, Clock: clk,
		SigmaBase: baseDS.Design.Sigma, AreaBase: baseRes.Area(),
		SigmaTuned: baseDS.Design.Sigma, AreaTuned: baseRes.Area(),
	}
	for _, bound := range core.SweepBounds(m) {
		res, ds, err := f.TunedStats(m, bound, clk)
		if err != nil {
			return MethodBest{}, err
		}
		if !res.Met {
			continue
		}
		inc := (res.Area() - best.AreaBase) / best.AreaBase
		if inc >= AreaCap {
			continue
		}
		if !best.Met || ds.Design.Sigma < best.SigmaTuned {
			best.Met = true
			best.Bound = bound
			best.SigmaTuned = ds.Design.Sigma
			best.AreaTuned = res.Area()
		}
	}
	return best, nil
}

// Render draws Table 3: the chosen bound per method and clock.
func (t *Table3Result) Render() string {
	tb := &report.Table{
		Title: "Table 3: constraint parameters used to get the sigma decrease",
		Header: []string{"tuning method",
			fmt.Sprintf("%.2f ns", t.Clocks.HighPerf),
			fmt.Sprintf("%.2f ns", t.Clocks.CloseToMax),
			fmt.Sprintf("%.2f ns", t.Clocks.Medium),
			fmt.Sprintf("%.2f ns", t.Clocks.Low)},
	}
	perMethod := make(map[core.Method][]MethodBest)
	for _, b := range t.Best {
		perMethod[b.Method] = append(perMethod[b.Method], b)
	}
	for _, m := range core.Methods {
		row := []any{m.String()}
		for _, b := range perMethod[m] {
			if b.Met {
				row = append(row, b.Bound)
			} else {
				row = append(row, "-")
			}
		}
		tb.AddRow(row...)
	}
	return tb.Render()
}
