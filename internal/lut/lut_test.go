package lut

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func linearTable() *Table {
	// f(l,s) = 2l + 3s + 1 is reproduced exactly by bilinear interpolation.
	return NewFilled(
		[]float64{0.001, 0.004, 0.016, 0.064},
		[]float64{0.01, 0.05, 0.2, 0.6},
		func(l, s float64) float64 { return 2*l + 3*s + 1 },
	)
}

func TestValidate(t *testing.T) {
	tb := linearTable()
	if err := tb.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	bad := tb.Clone()
	bad.Loads[1] = bad.Loads[0] // not strictly ascending
	if err := bad.Validate(); err == nil {
		t.Fatal("non-ascending load axis accepted")
	}
	bad2 := tb.Clone()
	bad2.Values = bad2.Values[:2]
	if err := bad2.Validate(); err == nil {
		t.Fatal("row count mismatch accepted")
	}
	bad3 := tb.Clone()
	bad3.Values[0] = bad3.Values[0][:1]
	if err := bad3.Validate(); err == nil {
		t.Fatal("column count mismatch accepted")
	}
	empty := &Table{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestLookupExactOnGrid(t *testing.T) {
	tb := linearTable()
	for i, l := range tb.Loads {
		for j, s := range tb.Slews {
			got := tb.Lookup(l, s)
			if !almostEq(got, tb.Values[i][j], 1e-12) {
				t.Errorf("Lookup(%g,%g)=%g want %g", l, s, got, tb.Values[i][j])
			}
		}
	}
}

func TestLookupBilinearReproducesBilinearFunction(t *testing.T) {
	tb := linearTable()
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 500; k++ {
		l := 0.001 + rng.Float64()*(0.064-0.001)
		s := 0.01 + rng.Float64()*(0.6-0.01)
		want := 2*l + 3*s + 1
		if got := tb.Lookup(l, s); !almostEq(got, want, 1e-9) {
			t.Fatalf("Lookup(%g,%g)=%g want %g", l, s, got, want)
		}
	}
}

func TestLookupClampsOutsideRange(t *testing.T) {
	tb := linearTable()
	lo := tb.Lookup(-5, -5)
	if !almostEq(lo, tb.Values[0][0], 1e-12) {
		t.Errorf("below-range lookup %g want corner %g", lo, tb.Values[0][0])
	}
	hi := tb.Lookup(100, 100)
	n, m := tb.Dims()
	if !almostEq(hi, tb.Values[n-1][m-1], 1e-12) {
		t.Errorf("above-range lookup %g want corner %g", hi, tb.Values[n-1][m-1])
	}
}

func TestLookupPaperFigure3Worked(t *testing.T) {
	// A hand-computed bilinear example following Fig. 3 / eqs. (2)-(4).
	tb := New([]float64{1, 3}, []float64{10, 20})
	tb.Values[0][0] = 4 // Q11 (L1,S1)
	tb.Values[0][1] = 8 // Q12 (L1,S2)
	tb.Values[1][0] = 6 // Q21 (L2,S1)
	tb.Values[1][1] = 2 // Q22 (L2,S2)
	// L=2 halfway, S=15 halfway:
	// P1 = 0.5*4+0.5*6 = 5; P2 = 0.5*8+0.5*2 = 5; X = 5.
	if got := tb.Lookup(2, 15); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Lookup(2,15)=%g want 5", got)
	}
	// L=1 (on grid), S=12.5 quarter along slew: 4*0.75 + 8*0.25 = 5.
	if got := tb.Lookup(1, 12.5); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Lookup(1,12.5)=%g want 5", got)
	}
}

func TestLookupDegenerateAxes(t *testing.T) {
	one := New([]float64{1}, []float64{1})
	one.Values[0][0] = 42
	if got := one.Lookup(5, 5); got != 42 {
		t.Errorf("1x1 lookup got %g want 42", got)
	}
	row := New([]float64{1}, []float64{0, 10})
	row.Values[0][0], row.Values[0][1] = 0, 10
	if got := row.Lookup(99, 5); !almostEq(got, 5, 1e-12) {
		t.Errorf("1xN lookup got %g want 5", got)
	}
	col := New([]float64{0, 10}, []float64{1})
	col.Values[0][0], col.Values[1][0] = 0, 10
	if got := col.Lookup(2.5, 99); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Nx1 lookup got %g want 2.5", got)
	}
}

// A NaN query has no defined position on the axis, so Lookup answers
// NaN instead of panicking (sort.SearchFloat64s would otherwise return
// len(axis) and read out of bounds — the PR-1 fault injector hit this).
func TestLookupNaNQuery(t *testing.T) {
	nan := math.NaN()
	for _, tb := range []*Table{linearTable(), New([]float64{1}, []float64{1})} {
		for _, q := range [][2]float64{{nan, 0.05}, {0.01, nan}, {nan, nan}} {
			if got := tb.Lookup(q[0], q[1]); !math.IsNaN(got) {
				t.Errorf("Lookup(%g,%g)=%g want NaN", q[0], q[1], got)
			}
		}
	}
}

// Infinite queries are ordinary out-of-range values: they clamp to the
// table edge like any finite query beyond the axis.
func TestLookupInfQueryClamps(t *testing.T) {
	tb := linearTable()
	n, m := tb.Dims()
	pos, neg := math.Inf(1), math.Inf(-1)
	cases := []struct {
		l, s, want float64
	}{
		{neg, neg, tb.Values[0][0]},
		{pos, pos, tb.Values[n-1][m-1]},
		{neg, pos, tb.Values[0][m-1]},
		{pos, neg, tb.Values[n-1][0]},
	}
	for _, c := range cases {
		if got := tb.Lookup(c.l, c.s); got != c.want {
			t.Errorf("Lookup(%g,%g)=%g want %g", c.l, c.s, got, c.want)
		}
	}
}

// The memoized segment hint must never change a result: sweeping the
// same table with query orders designed to hit and miss the cached
// segment gives the same values as a fresh table each time.
func TestLookupSegmentHintConsistency(t *testing.T) {
	tb := NewFilled(
		[]float64{0.001, 0.004, 0.016, 0.064, 0.256},
		[]float64{0.01, 0.05, 0.2, 0.6, 1.8},
		func(l, s float64) float64 { return math.Sin(l*50) + math.Cos(s*2) },
	)
	queries := [][2]float64{
		{0.002, 0.02}, {0.002, 0.021}, // same segment twice (hint hit)
		{0.1, 1.0}, {0.002, 0.02}, // far jump, then back (hint miss)
		{0.004, 0.05}, {0.004, 0.05}, // exactly on grid
		{-1, 5}, {0.03, 0.3},
	}
	for k, q := range queries {
		fresh := tb.Clone() // cold hint
		want := fresh.Lookup(q[0], q[1])
		if got := tb.Lookup(q[0], q[1]); got != want {
			t.Errorf("query %d (%g,%g): warm %g != cold %g", k, q[0], q[1], got, want)
		}
	}
}

// Property: interpolation result is bounded by the min and max of the table.
func TestLookupWithinBoundsProperty(t *testing.T) {
	tb := NewFilled(
		[]float64{0.001, 0.002, 0.008, 0.03, 0.1},
		[]float64{0.005, 0.02, 0.09, 0.3, 1.2},
		func(l, s float64) float64 { return math.Sin(l*40)*0.3 + math.Cos(s*3) + 2 },
	)
	lo, hi := tb.Min(), tb.Max()
	f := func(lu, su uint16) bool {
		l := float64(lu) / float64(math.MaxUint16) * 0.2
		s := float64(su) / float64(math.MaxUint16) * 2.0
		v := tb.Lookup(l, s)
		return v >= lo-1e-12 && v <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: interpolation is monotone if the table is monotone in both axes.
func TestLookupMonotoneProperty(t *testing.T) {
	tb := NewFilled(
		[]float64{0.001, 0.004, 0.016, 0.064},
		[]float64{0.01, 0.05, 0.2, 0.6},
		func(l, s float64) float64 { return 5*l + 2*s + l*s },
	)
	f := func(a, b uint16, su uint16) bool {
		l1 := float64(a) / float64(math.MaxUint16) * 0.07
		l2 := float64(b) / float64(math.MaxUint16) * 0.07
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		s := float64(su) / float64(math.MaxUint16) * 0.7
		return tb.Lookup(l1, s) <= tb.Lookup(l2, s)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxEquivalent(t *testing.T) {
	a := linearTable()
	b := a.Clone()
	b.Values[1][2] = 1e9
	m, err := MaxEquivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Values[1][2] != 1e9 {
		t.Errorf("max entry %g want 1e9", m.Values[1][2])
	}
	if m.Values[0][0] != a.Values[0][0] {
		t.Errorf("untouched entry changed: %g want %g", m.Values[0][0], a.Values[0][0])
	}
	if _, err := MaxEquivalent(); err == nil {
		t.Error("MaxEquivalent() of nothing should error")
	}
	c := New([]float64{1, 2}, []float64{1, 2})
	if _, err := MaxEquivalent(a, c); err == nil {
		t.Error("mismatched axes should error")
	}
}

func TestMaxEquivalentIsElementwiseUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	loads := []float64{1, 2, 3}
	slews := []float64{1, 2}
	var ts []*Table
	for k := 0; k < 5; k++ {
		ts = append(ts, NewFilled(loads, slews, func(l, s float64) float64 {
			return rng.NormFloat64()
		}))
	}
	m, err := MaxEquivalent(ts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range loads {
		for j := range slews {
			for _, tb := range ts {
				if m.Values[i][j] < tb.Values[i][j] {
					t.Fatalf("entry (%d,%d): max %g below member %g", i, j, m.Values[i][j], tb.Values[i][j])
				}
			}
		}
	}
}

func TestScaleMinMax(t *testing.T) {
	tb := linearTable()
	mx, mn := tb.Max(), tb.Min()
	tb.Scale(2)
	if !almostEq(tb.Max(), 2*mx, 1e-12) || !almostEq(tb.Min(), 2*mn, 1e-12) {
		t.Errorf("scale: min/max %g/%g want %g/%g", tb.Min(), tb.Max(), 2*mn, 2*mx)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := linearTable()
	b := a.Clone()
	b.Values[0][0] = 999
	b.Loads[0] = -1
	if a.Values[0][0] == 999 || a.Loads[0] == -1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestSameAxes(t *testing.T) {
	a := linearTable()
	if !SameAxes(a, a.Clone()) {
		t.Error("clone should share axes")
	}
	b := a.Clone()
	b.Slews[0] += 1e-6
	if SameAxes(a, b) {
		t.Error("perturbed axis reported same")
	}
}

func TestStringContainsDims(t *testing.T) {
	s := linearTable().String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
}
