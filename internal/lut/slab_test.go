package lut

import (
	"math"
	"testing"
	"unsafe"
)

func TestSlabCarvesContiguously(t *testing.T) {
	loads := []float64{0.001, 0.002, 0.004}
	slews := []float64{0.01, 0.02}
	s := NewSlab(4 * len(loads) * len(slews))
	var tabs []*Table
	for k := 0; k < 4; k++ {
		tb := NewIn(s, loads, slews)
		for i := range tb.Values {
			for j := range tb.Values[i] {
				tb.Values[i][j] = float64(k*100 + i*10 + j)
			}
		}
		tabs = append(tabs, tb)
	}
	tables, floats, chunks := s.Stats()
	if tables != 4 || floats != 4*6 || chunks != 1 {
		t.Fatalf("Stats() = (%d, %d, %d), want (4, 24, 1)", tables, floats, chunks)
	}
	// Adjacent tables must be back to back in one backing array: the
	// next table's first element sits exactly one element past the
	// previous table's last.
	for k := 0; k+1 < len(tabs); k++ {
		a, b := tabs[k].flat, tabs[k+1].flat
		end := uintptr(unsafe.Pointer(&a[len(a)-1])) + unsafe.Sizeof(a[0])
		if end != uintptr(unsafe.Pointer(&b[0])) {
			t.Fatalf("tables %d and %d not adjacent in the slab", k, k+1)
		}
	}
	// Writes through Values and reads through At/Lookup stay coherent.
	for k, tb := range tabs {
		if got := tb.At(1, 1); got != float64(k*100+11) {
			t.Errorf("table %d At(1,1) = %v, want %d", k, got, k*100+11)
		}
		if err := tb.Validate(); err != nil {
			t.Errorf("table %d: %v", k, err)
		}
		if !tb.Contiguous() {
			t.Errorf("table %d not contiguous", k)
		}
	}
}

func TestSlabGrowsAndOversizedAlloc(t *testing.T) {
	s := NewSlab(4) // tiny chunks force growth
	small := NewIn(s, []float64{1, 2}, []float64{1, 2})
	big := NewIn(s, []float64{1, 2, 3, 4}, []float64{1, 2, 3})
	if small == nil || big == nil {
		t.Fatal("nil table from slab")
	}
	tables, floats, chunks := s.Stats()
	if tables != 2 || floats != 4+12 {
		t.Fatalf("Stats() = (%d, %d, %d)", tables, floats, chunks)
	}
	if chunks < 2 {
		t.Fatalf("expected chunk growth, got %d chunks", chunks)
	}
	// Appending to a row must never bleed into a neighbor (full-cap views).
	row := big.Values[0]
	if cap(row) != len(row) {
		t.Fatalf("row capacity %d exceeds length %d", cap(row), len(row))
	}
}

func TestNewInNilSlabAndCloneIn(t *testing.T) {
	loads := []float64{0.001, 0.004}
	slews := []float64{0.01, 0.05, 0.2}
	tb := NewIn(nil, loads, slews)
	for i := range tb.Values {
		for j := range tb.Values[i] {
			tb.Values[i][j] = math.Sqrt(float64(i+1) * float64(j+1))
		}
	}
	s := NewSlab(0)
	cp := tb.CloneIn(s)
	if !SameAxes(tb, cp) {
		t.Fatal("CloneIn changed axes")
	}
	for i := range tb.Values {
		for j := range tb.Values[i] {
			if tb.Values[i][j] != cp.Values[i][j] {
				t.Fatalf("CloneIn value [%d][%d] differs", i, j)
			}
		}
	}
	cp.Values[0][0] = -1
	if tb.Values[0][0] == -1 {
		t.Fatal("CloneIn aliases the source")
	}
	if n := tb.CloneIn(nil); n.At(0, 0) != tb.At(0, 0) {
		t.Fatal("CloneIn(nil) broken")
	}
	// Lookup parity between slab-backed and plain tables.
	if a, b := tb.Lookup(0.002, 0.07), cp.Lookup(0.002, 0.07); a != b {
		t.Fatalf("Lookup differs: %v vs %v", a, b)
	}
}
