package lut

// Slab carves the value grids of many tables out of large contiguous
// float64 chunks — the structure-of-arrays backing the statistical
// library uses so a whole library's mean/sigma tables live in a few
// allocations instead of four per arc. Within one chunk, consecutively
// created tables are laid out back to back in creation order, which is
// also the order a library fold writes them in; lookups that walk a
// cell's tables therefore stay in a handful of cache lines.
//
// A Slab only ever hands out memory; carved tables stay valid for the
// slab's whole lifetime (chunks are never recycled or moved). It is not
// safe for concurrent use — builders own their slab until publication,
// after which the tables are read-only like any other Table.
type Slab struct {
	cur    []float64 // unused tail of the active chunk
	chunk  int       // preferred chunk size, floats
	chunks int
	tables int
	floats int
}

// defaultSlabChunk is the fallback chunk size (floats) when a slab is
// created without a size hint: 64k floats = 512 KiB per chunk.
const defaultSlabChunk = 64 * 1024

// NewSlab returns a slab tuned to hold about hint floats. A builder
// that pre-computes its total table volume gets everything in one
// chunk; underestimates simply grow extra chunks.
func NewSlab(hint int) *Slab {
	s := &Slab{chunk: defaultSlabChunk}
	if hint > 0 {
		s.chunk = hint
	}
	return s
}

// alloc carves n floats off the active chunk, growing by a fresh chunk
// when the tail runs short. The returned slice has full capacity n, so
// appends by a confused caller can never bleed into a neighbor table.
func (s *Slab) alloc(n int) []float64 {
	if n == 0 {
		return nil
	}
	if len(s.cur) < n {
		size := s.chunk
		if size < n {
			size = n
		}
		s.cur = make([]float64, size)
		s.chunks++
	}
	b := s.cur[:n:n]
	s.cur = s.cur[n:]
	s.floats += n
	return b
}

// Stats reports how many tables and floats the slab has carved and how
// many backing chunks that took — the contiguity invariant tests pin.
func (s *Slab) Stats() (tables, floats, chunks int) {
	return s.tables, s.floats, s.chunks
}

// NewIn allocates a zero-valued table over the given axes with its
// value grid carved from the slab. A nil slab degrades to New, so
// builders can thread an optional slab without branching. The axes are
// copied, exactly as New copies them.
func NewIn(s *Slab, loads, slews []float64) *Table {
	if s == nil {
		return New(loads, slews)
	}
	t := &Table{
		Loads:  append([]float64(nil), loads...),
		Slews:  append([]float64(nil), slews...),
		Values: make([][]float64, len(loads)),
		flat:   s.alloc(len(loads) * len(slews)),
		stride: len(slews),
	}
	for i := range t.Values {
		t.Values[i] = t.flat[i*t.stride : (i+1)*t.stride : (i+1)*t.stride]
	}
	s.tables++
	return t
}

// CloneIn deep-copies the table with the copy's values carved from the
// slab; CloneIn(nil) is Clone.
func (t *Table) CloneIn(s *Slab) *Table {
	c := NewIn(s, t.Loads, t.Slews)
	for i := range t.Values {
		copy(c.Values[i], t.Values[i])
	}
	return c
}

// Contiguous reports whether the table's value grid is one contiguous
// backing array (built via New/NewIn rather than assembled by hand).
func (t *Table) Contiguous() bool { return t.flat != nil || len(t.Loads)*len(t.Slews) == 0 }
