package lut

// Slope tables, paper eqs. (12) and (13).
//
// The slew slope at entry (i,j) is the backward difference along the slew
// axis divided by the slew step; the load slope is the backward difference
// along the load axis divided by the load step. Because the differences
// need a predecessor, the first column of the slew-slope table and the
// first row of the load-slope table are zero (the paper fills them with
// zeros for the same reason: "because the indexes start at greater than
// one, the first row or column ... is filled with zeros").

// SlewSlope returns the table of gradients along the slew axis (eq. 12).
func (t *Table) SlewSlope() *Table {
	out := New(t.Loads, t.Slews)
	for i := range t.Loads {
		for j := 1; j < len(t.Slews); j++ {
			ds := t.Slews[j] - t.Slews[j-1]
			out.Values[i][j] = (t.Values[i][j] - t.Values[i][j-1]) / ds
		}
	}
	return out
}

// LoadSlope returns the table of gradients along the load axis (eq. 13).
func (t *Table) LoadSlope() *Table {
	out := New(t.Loads, t.Slews)
	for i := 1; i < len(t.Loads); i++ {
		dl := t.Loads[i] - t.Loads[i-1]
		for j := range t.Slews {
			out.Values[i][j] = (t.Values[i][j] - t.Values[i-1][j]) / dl
		}
	}
	return out
}

// IndexSlewSlope returns the gradient along the slew axis computed per
// index step rather than per unit of slew, exactly as written in eq. (12)
// of the paper where the denominator is the index difference (always 1).
// The per-unit variant SlewSlope is what the tuner uses by default since
// library axes are non-uniform; this variant is kept for the ablation
// bench comparing the two readings of the equation.
func (t *Table) IndexSlewSlope() *Table {
	out := New(t.Loads, t.Slews)
	for i := range t.Loads {
		for j := 1; j < len(t.Slews); j++ {
			out.Values[i][j] = t.Values[i][j] - t.Values[i][j-1]
		}
	}
	return out
}

// IndexLoadSlope is the per-index-step companion of IndexSlewSlope along
// the load axis (eq. 13 read literally).
func (t *Table) IndexLoadSlope() *Table {
	out := New(t.Loads, t.Slews)
	for i := 1; i < len(t.Loads); i++ {
		for j := range t.Slews {
			out.Values[i][j] = t.Values[i][j] - t.Values[i-1][j]
		}
	}
	return out
}
