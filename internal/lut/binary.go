package lut

import (
	"fmt"
	"strings"
)

// Binary is a boolean mask over the same grid as a Table. Ones[i][j] true
// means the (load i, slew j) entry is acceptable ("flat" or "below the
// ceiling" depending on which thresholding produced it).
type Binary struct {
	Loads []float64
	Slews []float64
	Ones  [][]bool
}

// NewBinary allocates an all-false mask over the given axes.
func NewBinary(loads, slews []float64) *Binary {
	b := &Binary{
		Loads: append([]float64(nil), loads...),
		Slews: append([]float64(nil), slews...),
		Ones:  make([][]bool, len(loads)),
	}
	for i := range b.Ones {
		b.Ones[i] = make([]bool, len(slews))
	}
	return b
}

// Threshold converts a value table into a binary mask: entries strictly
// smaller than limit become ones ("all table entries which are smaller
// than the slope threshold become a logic one").
func (t *Table) Threshold(limit float64) *Binary {
	b := NewBinary(t.Loads, t.Slews)
	for i := range t.Values {
		for j, v := range t.Values[i] {
			b.Ones[i][j] = v < limit
		}
	}
	return b
}

// ThresholdLE is the inclusive variant: entries less than or equal to
// limit become ones. Stage 2 of the tuning uses this, because the
// threshold sigma is by construction the value at the far corner of an
// acceptable region — the entry holding it must stay usable.
func (t *Table) ThresholdLE(limit float64) *Binary {
	b := NewBinary(t.Loads, t.Slews)
	for i := range t.Values {
		for j, v := range t.Values[i] {
			b.Ones[i][j] = v <= limit
		}
	}
	return b
}

// And combines two masks entry-wise; both must share axes dimensions.
// The paper combines the thresholded load and slew slope tables this way.
func (b *Binary) And(o *Binary) *Binary {
	out := NewBinary(b.Loads, b.Slews)
	for i := range b.Ones {
		for j := range b.Ones[i] {
			out.Ones[i][j] = b.Ones[i][j] && o.Ones[i][j]
		}
	}
	return out
}

// CountOnes returns the number of true entries.
func (b *Binary) CountOnes() int {
	n := 0
	for _, row := range b.Ones {
		for _, v := range row {
			if v {
				n++
			}
		}
	}
	return n
}

// Dims returns the number of load rows and slew columns.
func (b *Binary) Dims() (nLoads, nSlews int) { return len(b.Loads), len(b.Slews) }

// String renders the mask as rows of 0/1 characters, load-major.
func (b *Binary) String() string {
	var sb strings.Builder
	for _, row := range b.Ones {
		for _, v := range row {
			if v {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Rect is an inclusive rectangle of grid indices: load rows L1..L2 and
// slew columns S1..S2.
type Rect struct {
	L1, S1 int // lower-left (closest to the origin)
	L2, S2 int // upper-right
}

// Empty reports whether the rectangle covers no cells.
func (r Rect) Empty() bool { return r.L2 < r.L1 || r.S2 < r.S1 }

// Area returns the number of grid cells covered.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return (r.L2 - r.L1 + 1) * (r.S2 - r.S1 + 1)
}

func (r Rect) String() string {
	return fmt.Sprintf("rect[load %d..%d, slew %d..%d]", r.L1, r.L2, r.S1, r.S2)
}

// LargestRectangle implements Algorithm 1 of the paper: an exhaustive scan
// over every (lower-left, upper-right) index pair, keeping the largest
// all-ones rectangle. Ties are broken toward the origin: among equal-area
// rectangles the one with the lexicographically smallest (L1, S1)
// lower-left corner wins (smaller L1 first, then smaller S1), because
// lower-left corners are enumerated in exactly that order and only a
// strictly larger area replaces the incumbent — matching the paper's
// "starting as close as possible to the origin of the LUT". Returns a
// zero-area Rect with Empty()==true when the mask has no ones.
func (b *Binary) LargestRectangle() Rect {
	nl, ns := b.Dims()
	best := Rect{L1: 0, S1: 0, L2: -1, S2: -1}
	bestArea := 0
	// Lower-left corners are enumerated origin-first, and a rectangle only
	// replaces the incumbent on strictly larger area, so the result is the
	// origin-closest rectangle of maximal area — the paper's "largest
	// rectangle starting as close as possible to the origin".
	for ll := 0; ll < nl; ll++ {
		for ls := 0; ls < ns; ls++ {
			for ul := ll; ul < nl; ul++ {
				for us := ls; us < ns; us++ {
					r := Rect{L1: ll, S1: ls, L2: ul, S2: us}
					if a := r.Area(); a > bestArea && b.allOnes(r) {
						best, bestArea = r, a
					}
				}
			}
		}
	}
	return best
}

func (b *Binary) allOnes(r Rect) bool {
	for i := r.L1; i <= r.L2; i++ {
		for j := r.S1; j <= r.S2; j++ {
			if !b.Ones[i][j] {
				return false
			}
		}
	}
	return true
}

// LargestRectangleFast computes the same result as LargestRectangle using
// the classic histogram-stack technique in O(rows*cols) instead of the
// paper's O(rows^2 * cols^2) scan. The two are equivalence-tested and
// benchmarked against each other (DESIGN.md ablation #1).
func (b *Binary) LargestRectangleFast() Rect {
	nl, ns := b.Dims()
	best := Rect{L1: 0, S1: 0, L2: -1, S2: -1}
	bestArea := 0
	heights := make([]int, ns)
	type stkEntry struct{ col, height int }
	stack := make([]stkEntry, 0, ns+1)
	for i := 0; i < nl; i++ {
		for j := 0; j < ns; j++ {
			if b.Ones[i][j] {
				heights[j]++
			} else {
				heights[j] = 0
			}
		}
		stack = stack[:0]
		for j := 0; j <= ns; j++ {
			h := 0
			if j < ns {
				h = heights[j]
			}
			start := j
			for len(stack) > 0 && stack[len(stack)-1].height >= h {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				area := top.height * (j - top.col)
				if area > bestArea ||
					(area == bestArea && area > 0 && closerToOrigin(i-top.height+1, top.col, best)) {
					bestArea = area
					best = Rect{
						L1: i - top.height + 1, L2: i,
						S1: top.col, S2: j - 1,
					}
				}
				start = top.col
			}
			if h > 0 {
				stack = append(stack, stkEntry{col: start, height: h})
			}
		}
	}
	return best
}

// closerToOrigin reports whether a candidate rectangle with lower-left
// (l1,s1) is nearer the LUT origin than best, using the same ordering the
// exhaustive scan discovers rectangles in: lexicographic (L1, S1).
func closerToOrigin(l1, s1 int, best Rect) bool {
	if l1 != best.L1 {
		return l1 < best.L1
	}
	return s1 < best.S1
}

// ThresholdValue returns the table value at the rectangle corner furthest
// from the origin, i.e. (L2, S2). The paper extracts the tuning sigma
// threshold from this entry ("taking the sigma value corresponding to the
// rectangle coordinate furthest from the origin").
func (t *Table) ThresholdValue(r Rect) float64 {
	if r.Empty() {
		return 0
	}
	return t.Values[r.L2][r.S2]
}
