package lut

import (
	"math"
	"testing"
)

// FuzzLookup drives Lookup with arbitrary float64 loads and slews —
// including NaN, ±Inf, subnormals and huge magnitudes — and checks the
// documented contract: never panic, NaN in ⇒ NaN out, and any other
// query (the axes clamp it) lands within the table's value range.
func FuzzLookup(f *testing.F) {
	nan := math.NaN()
	seeds := [][2]float64{
		{0.01, 0.05},
		{nan, 0.05},
		{0.01, nan},
		{nan, nan},
		{math.Inf(1), math.Inf(-1)},
		{math.Inf(-1), math.Inf(1)},
		{-1e308, 1e308},
		{5e-324, -5e-324},
		{0, 0},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	tables := []*Table{
		NewFilled(
			[]float64{0.001, 0.004, 0.016, 0.064},
			[]float64{0.01, 0.05, 0.2, 0.6},
			func(l, s float64) float64 { return 2*l + 3*s + 1 },
		),
		New([]float64{0.5}, []float64{0.25}),                         // 1x1
		NewFilled([]float64{1}, []float64{0, 10}, add),               // 1xN
		NewFilled([]float64{0, 10}, []float64{1}, add),               // Nx1
		NewFilled([]float64{-2, -1, 0, 1, 2}, []float64{-1, 1}, add), // negative axes
	}
	f.Fuzz(func(t *testing.T, load, slew float64) {
		for _, tb := range tables {
			got := tb.Lookup(load, slew)
			if math.IsNaN(load) || math.IsNaN(slew) {
				if !math.IsNaN(got) {
					t.Fatalf("Lookup(%g,%g)=%g want NaN", load, slew, got)
				}
				continue
			}
			lo, hi := tb.Min(), tb.Max()
			if math.IsNaN(got) || got < lo-1e-9 || got > hi+1e-9 {
				t.Fatalf("Lookup(%g,%g)=%g outside table range [%g,%g]", load, slew, got, lo, hi)
			}
		}
	})
}

func add(l, s float64) float64 { return l + s }
