// Package lut implements the two-dimensional look-up tables that carry
// timing information in a standard cell library, together with the LUT
// algebra the library-tuning method is built from: bilinear interpolation
// (paper eqs. 2-4), slope tables (eqs. 12-13), binary thresholding, the
// max-equivalent table, and the largest-rectangle extraction of
// Algorithm 1.
//
// Throughout the package the first index ("rows") runs along the output
// load axis and the second index ("columns") along the input slew axis,
// matching the index_1/index_2 convention of Liberty tables.
package lut

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Table is a dense two-dimensional look-up table over a load axis and a
// slew axis. Values[i][j] corresponds to load Loads[i] and slew Slews[j].
//
// Tables built through New/NewFilled store their grid in one contiguous
// row-major backing array; the Values rows are views into it, so element
// writes through Values and through Set stay coherent. Tables assembled
// as struct literals keep working through the same API, just without the
// contiguous fast path.
type Table struct {
	Loads  []float64   // ascending load axis (index_1)
	Slews  []float64   // ascending slew axis (index_2)
	Values [][]float64 // len(Loads) rows of len(Slews) values

	// flat is the contiguous row-major backing of Values (nil for tables
	// built as struct literals); stride is the row length.
	flat   []float64
	stride int

	// seg memoizes the last (load, slew) segment pair a Lookup resolved,
	// packed as two uint32 indices. Queries along a timing path land in
	// the same segment almost every time, so validating the hint replaces
	// two binary searches with two comparisons. The hint is only trusted
	// after re-checking it brackets the query, so a stale or torn value
	// costs a binary search, never a wrong result.
	seg atomic.Uint64
}

// New allocates a zero-valued table over the given axes. The axes are
// copied so callers may reuse their slices. The value grid is one
// contiguous row-major allocation; Values exposes per-row views into it.
func New(loads, slews []float64) *Table {
	t := &Table{
		Loads:  append([]float64(nil), loads...),
		Slews:  append([]float64(nil), slews...),
		Values: make([][]float64, len(loads)),
		flat:   make([]float64, len(loads)*len(slews)),
		stride: len(slews),
	}
	for i := range t.Values {
		t.Values[i] = t.flat[i*t.stride : (i+1)*t.stride : (i+1)*t.stride]
	}
	return t
}

// NewFilled allocates a table and fills it by evaluating f at every grid
// point.
func NewFilled(loads, slews []float64, f func(load, slew float64) float64) *Table {
	t := New(loads, slews)
	for i, l := range t.Loads {
		for j, s := range t.Slews {
			t.Values[i][j] = f(l, s)
		}
	}
	return t
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := New(t.Loads, t.Slews)
	for i := range t.Values {
		copy(c.Values[i], t.Values[i])
	}
	return c
}

// Dims returns the number of load rows and slew columns.
func (t *Table) Dims() (nLoads, nSlews int) { return len(t.Loads), len(t.Slews) }

// Validate checks structural invariants: non-empty strictly ascending axes
// and a value grid matching the axes.
func (t *Table) Validate() error {
	if len(t.Loads) == 0 || len(t.Slews) == 0 {
		return errors.New("lut: empty axis")
	}
	if len(t.Values) != len(t.Loads) {
		return fmt.Errorf("lut: %d value rows for %d loads", len(t.Values), len(t.Loads))
	}
	for i, row := range t.Values {
		if len(row) != len(t.Slews) {
			return fmt.Errorf("lut: row %d has %d values for %d slews", i, len(row), len(t.Slews))
		}
	}
	if !strictlyAscending(t.Loads) {
		return errors.New("lut: load axis not strictly ascending")
	}
	if !strictlyAscending(t.Slews) {
		return errors.New("lut: slew axis not strictly ascending")
	}
	return nil
}

func strictlyAscending(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return false
		}
	}
	return true
}

// SameAxes reports whether two tables share identical load and slew axes.
func SameAxes(a, b *Table) bool {
	if len(a.Loads) != len(b.Loads) || len(a.Slews) != len(b.Slews) {
		return false
	}
	for i := range a.Loads {
		if a.Loads[i] != b.Loads[i] {
			return false
		}
	}
	for j := range a.Slews {
		if a.Slews[j] != b.Slews[j] {
			return false
		}
	}
	return true
}

// Hint-statistics counters. Lookup is the hottest function in the whole
// pipeline (~10 ns/op), so the observability layer cannot afford an
// always-on record: the counters hide behind one atomic bool whose load
// predicts perfectly when stats are off. Enabled by cmd binaries when
// -trace/-debugaddr is set; the hit ratio is exported as the
// lut.hint_hit_ratio gauge.
var (
	hintStatsOn atomic.Bool
	hintHits    atomic.Int64
	hintMisses  atomic.Int64
)

// SetHintStatsEnabled switches atomic-hint hit/miss counting on or off
// process-wide.
func SetHintStatsEnabled(on bool) { hintStatsOn.Store(on) }

// HintStats returns the cumulative hint hits and misses counted while
// enabled. A "hit" is a Lookup whose resolved (load, slew) segment pair
// equals the memoized hint, i.e. both binary searches were skipped.
func HintStats() (hits, misses int64) { return hintHits.Load(), hintMisses.Load() }

// HintHitRatio returns hits/(hits+misses), or -1 before any counted
// lookup — the value served as lut.hint_hit_ratio.
func HintHitRatio() float64 {
	h, m := HintStats()
	if h+m == 0 {
		return -1
	}
	return float64(h) / float64(h+m)
}

// segment locates i such that axis[i] <= x <= axis[i+1], clamping x to the
// axis range. It returns the index and the normalized position within the
// segment. Single-point axes return (0, 0); a NaN query yields a NaN
// fraction (never an out-of-range index).
func segment(axis []float64, x float64) (int, float64) {
	return segmentHint(axis, x, -1)
}

// segmentHint is segment with a candidate index from a previous query.
// A hint that still brackets x (axis[hint] < x <= axis[hint+1], the exact
// bracket the binary search would pick) is returned directly; anything
// else — including a stale, out-of-range or torn hint — falls back to the
// binary search, so the result is bit-identical either way.
func segmentHint(axis []float64, x float64, hint int) (int, float64) {
	n := len(axis)
	if math.IsNaN(x) {
		// All comparisons with NaN are false, so sort.SearchFloat64s
		// would return n and index out of range below. Surface the NaN
		// through the fraction instead.
		return 0, math.NaN()
	}
	if n == 1 {
		return 0, 0
	}
	if x <= axis[0] {
		return 0, 0
	}
	if x >= axis[n-1] {
		return n - 2, 1
	}
	if hint >= 0 && hint+1 < n && axis[hint] < x && x <= axis[hint+1] {
		return hint, (x - axis[hint]) / (axis[hint+1] - axis[hint])
	}
	// sort.SearchFloat64s returns the first index with axis[i] >= x.
	i := sort.SearchFloat64s(axis, x)
	lo := i - 1
	frac := (x - axis[lo]) / (axis[i] - axis[lo])
	return lo, frac
}

// Lookup bilinearly interpolates the table at the given load and slew,
// clamping queries outside the characterized range to the table edge.
// This implements eqs. (2)-(4): interpolate along the load axis first,
// then along the slew axis. A NaN load or slew returns NaN (the query
// point is undefined, so no table entry can be the right answer);
// ±Inf queries clamp to the table edge like any other out-of-range
// value. Lookup is safe for concurrent use.
func (t *Table) Lookup(load, slew float64) float64 {
	if math.IsNaN(load) || math.IsNaN(slew) {
		return math.NaN()
	}
	hint := t.seg.Load()
	li, lf := segmentHint(t.Loads, load, int(uint32(hint>>32)))
	sj, sf := segmentHint(t.Slews, slew, int(uint32(hint)))
	// Stat counting hides inside the branch the hint logic already
	// takes, so the disabled fast path pays one predictable load per
	// arm and nothing new in the interpolation below.
	if packed := uint64(uint32(li))<<32 | uint64(uint32(sj)); packed != hint {
		t.seg.Store(packed)
		if hintStatsOn.Load() {
			hintMisses.Add(1)
		}
	} else if hintStatsOn.Load() {
		hintHits.Add(1)
	}
	if len(t.Loads) == 1 && len(t.Slews) == 1 {
		return t.at(0, 0)
	}
	if len(t.Loads) == 1 {
		return lerp(t.at(0, sj), t.at(0, sj+1), sf)
	}
	if len(t.Slews) == 1 {
		return lerp(t.at(li, 0), t.at(li+1, 0), lf)
	}
	if t.flat != nil {
		base := li*t.stride + sj
		q11 := t.flat[base]            // (Li, Sj)
		q21 := t.flat[base+t.stride]   // (Li+1, Sj)
		q12 := t.flat[base+1]          // (Li, Sj+1)
		q22 := t.flat[base+t.stride+1] // (Li+1, Sj+1)
		p1 := lerp(q11, q21, lf)       // eq. (2)
		p2 := lerp(q12, q22, lf)       // eq. (3)
		return lerp(p1, p2, sf)        // eq. (4)
	}
	q11 := t.Values[li][sj]     // (Li, Sj)
	q21 := t.Values[li+1][sj]   // (Li+1, Sj)
	q12 := t.Values[li][sj+1]   // (Li, Sj+1)
	q22 := t.Values[li+1][sj+1] // (Li+1, Sj+1)
	p1 := lerp(q11, q21, lf)    // eq. (2)
	p2 := lerp(q12, q22, lf)    // eq. (3)
	return lerp(p1, p2, sf)     // eq. (4)
}

// at reads one grid value through the contiguous backing when present.
func (t *Table) at(i, j int) float64 {
	if t.flat != nil {
		return t.flat[i*t.stride+j]
	}
	return t.Values[i][j]
}

func lerp(a, b, f float64) float64 { return a + (b-a)*f }

// Max returns the maximum value in the table.
func (t *Table) Max() float64 {
	m := math.Inf(-1)
	for _, row := range t.Values {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// Min returns the minimum value in the table.
func (t *Table) Min() float64 {
	m := math.Inf(1)
	for _, row := range t.Values {
		for _, v := range row {
			if v < m {
				m = v
			}
		}
	}
	return m
}

// At returns the value at load index i and slew index j.
func (t *Table) At(i, j int) float64 { return t.at(i, j) }

// Set assigns the value at load index i and slew index j.
func (t *Table) Set(i, j int, v float64) {
	if t.flat != nil {
		t.flat[i*t.stride+j] = v
		return
	}
	t.Values[i][j] = v
}

// Scale multiplies every entry by k, in place, and returns the table.
func (t *Table) Scale(k float64) *Table {
	for i := range t.Values {
		for j := range t.Values[i] {
			t.Values[i][j] *= k
		}
	}
	return t
}

// MaxEquivalent builds the element-wise maximum of the given tables. All
// tables must share the same axes; the paper uses this to fold the LUTs of
// all timing arcs of an output pin (or all cells of a cluster) into one
// worst-case table.
func MaxEquivalent(tables ...*Table) (*Table, error) {
	if len(tables) == 0 {
		return nil, errors.New("lut: MaxEquivalent of zero tables")
	}
	base := tables[0]
	out := base.Clone()
	for _, tb := range tables[1:] {
		if !SameAxes(base, tb) {
			return nil, errors.New("lut: MaxEquivalent over mismatched axes")
		}
		for i := range out.Values {
			for j := range out.Values[i] {
				if tb.Values[i][j] > out.Values[i][j] {
					out.Values[i][j] = tb.Values[i][j]
				}
			}
		}
	}
	return out, nil
}

// String renders a compact human-readable dump of the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lut %dx%d loads=%v slews=%v\n", len(t.Loads), len(t.Slews), t.Loads, t.Slews)
	for _, row := range t.Values {
		for j, v := range row {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
