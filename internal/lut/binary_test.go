package lut

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func maskFromStrings(rows ...string) *Binary {
	loads := make([]float64, len(rows))
	for i := range loads {
		loads[i] = float64(i + 1)
	}
	slews := make([]float64, len(rows[0]))
	for j := range slews {
		slews[j] = float64(j + 1)
	}
	b := NewBinary(loads, slews)
	for i, r := range rows {
		for j, c := range r {
			b.Ones[i][j] = c == '1'
		}
	}
	return b
}

func TestThreshold(t *testing.T) {
	tb := New([]float64{1, 2}, []float64{1, 2})
	tb.Values[0][0] = 0.1
	tb.Values[0][1] = 0.5
	tb.Values[1][0] = 0.5
	tb.Values[1][1] = 0.9
	b := tb.Threshold(0.5)
	if !b.Ones[0][0] {
		t.Error("0.1 < 0.5 should be one")
	}
	if b.Ones[0][1] || b.Ones[1][0] {
		t.Error("0.5 < 0.5 is false; boundary must be zero")
	}
	if b.Ones[1][1] {
		t.Error("0.9 should be zero")
	}
	if got := b.CountOnes(); got != 1 {
		t.Errorf("CountOnes=%d want 1", got)
	}
}

func TestAnd(t *testing.T) {
	a := maskFromStrings("110", "011")
	b := maskFromStrings("100", "111")
	c := a.And(b)
	want := maskFromStrings("100", "011")
	for i := range c.Ones {
		for j := range c.Ones[i] {
			if c.Ones[i][j] != want.Ones[i][j] {
				t.Fatalf("And mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestLargestRectangleSimple(t *testing.T) {
	b := maskFromStrings(
		"1110",
		"1110",
		"0110",
		"0000",
	)
	r := b.LargestRectangle()
	if r.Area() != 6 {
		t.Fatalf("area %d want 6 (%v)", r.Area(), r)
	}
	if !b.allOnes(r) {
		t.Fatalf("rectangle %v covers zeros", r)
	}
	if r.L1 != 0 || r.S1 != 0 {
		t.Errorf("expected origin-anchored rect, got %v", r)
	}
}

func TestLargestRectangleAllZero(t *testing.T) {
	b := maskFromStrings("000", "000")
	r := b.LargestRectangle()
	if !r.Empty() || r.Area() != 0 {
		t.Fatalf("all-zero mask produced %v", r)
	}
	rf := b.LargestRectangleFast()
	if !rf.Empty() || rf.Area() != 0 {
		t.Fatalf("fast variant on all-zero mask produced %v", rf)
	}
}

func TestLargestRectangleAllOnes(t *testing.T) {
	b := maskFromStrings("111", "111", "111")
	for _, r := range []Rect{b.LargestRectangle(), b.LargestRectangleFast()} {
		if r.Area() != 9 || r.L1 != 0 || r.S1 != 0 || r.L2 != 2 || r.S2 != 2 {
			t.Fatalf("full mask rect %v", r)
		}
	}
}

func TestLargestRectangleSingleCell(t *testing.T) {
	b := maskFromStrings("000", "010", "000")
	r := b.LargestRectangle()
	if r.Area() != 1 || r.L1 != 1 || r.S1 != 1 {
		t.Fatalf("got %v want the single 1 at (1,1)", r)
	}
}

func TestLargestRectanglePrefersOrigin(t *testing.T) {
	// Two disjoint 2x2 blocks of equal size: the origin-closer one must win.
	b := maskFromStrings(
		"1100",
		"1100",
		"0011",
		"0011",
	)
	r := b.LargestRectangle()
	if r.Area() != 4 || r.L1 != 0 || r.S1 != 0 {
		t.Fatalf("expected origin block, got %v", r)
	}
}

// Property: the fast histogram-stack variant finds a rectangle of exactly
// the same (maximal) area as the paper's exhaustive Algorithm 1, and the
// rectangle it reports is genuinely all ones.
func TestLargestRectangleEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed uint32, wRaw, hRaw uint8, bias uint8) bool {
		w := int(wRaw%7) + 1
		h := int(hRaw%7) + 1
		r := rand.New(rand.NewSource(int64(seed)))
		p := 0.3 + float64(bias%5)*0.15
		loads := make([]float64, h)
		for i := range loads {
			loads[i] = float64(i + 1)
		}
		slews := make([]float64, w)
		for j := range slews {
			slews[j] = float64(j + 1)
		}
		b := NewBinary(loads, slews)
		for i := 0; i < h; i++ {
			for j := 0; j < w; j++ {
				b.Ones[i][j] = r.Float64() < p
			}
		}
		slow := b.LargestRectangle()
		fast := b.LargestRectangleFast()
		if slow.Area() != fast.Area() {
			t.Logf("mask:\n%s slow=%v fast=%v", b, slow, fast)
			return false
		}
		if fast.Area() > 0 && !b.allOnes(fast) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestLargestRectangleTieBreakProperty pins the *exact* rectangle, not
// just its area: on masks engineered to contain several equal-area
// maximal rectangles, the fast histogram-stack variant must pick the
// same lexicographically-first (L1, S1) rectangle the exhaustive scan
// keeps. (The scan's documented tie-break is exactly that order — see
// LargestRectangle.)
func TestLargestRectangleTieBreakProperty(t *testing.T) {
	adversarial := []*Binary{
		// 2x3 (rows 0-1) vs 3x2 (cols 0-1): same lower-left corner, area 6.
		maskFromStrings(
			"111",
			"111",
			"110",
		),
		// Two disjoint 2x2 blocks on the anti-diagonal.
		maskFromStrings(
			"0011",
			"0011",
			"1100",
			"1100",
		),
		// Four 1x2 dominoes, all area 2.
		maskFromStrings(
			"0110",
			"0000",
			"1001",
			"1001",
		),
		// Horizontal vs vertical stripe through the middle, both area 5.
		maskFromStrings(
			"00100",
			"00100",
			"11111",
			"00100",
			"00100",
		),
		// Checkerboard: every 1 is its own maximal rectangle.
		maskFromStrings(
			"1010",
			"0101",
			"1010",
		),
		// Full-width top band vs full-height left band, both area 6.
		maskFromStrings(
			"111",
			"100",
			"100",
			"100",
			"101",
		),
	}
	for k, b := range adversarial {
		slow := b.LargestRectangle()
		fast := b.LargestRectangleFast()
		if slow != fast {
			t.Errorf("mask %d:\n%s slow=%v fast=%v", k, b, slow, fast)
		}
	}
	// Randomized tie-heavy masks: small grids with coarse density make
	// equal-area maximal rectangles the common case.
	f := func(seed uint32, wRaw, hRaw, bias uint8) bool {
		w := int(wRaw%5) + 1
		h := int(hRaw%5) + 1
		r := rand.New(rand.NewSource(int64(seed)))
		p := 0.35 + float64(bias%4)*0.18
		loads := make([]float64, h)
		for i := range loads {
			loads[i] = float64(i + 1)
		}
		slews := make([]float64, w)
		for j := range slews {
			slews[j] = float64(j + 1)
		}
		b := NewBinary(loads, slews)
		for i := 0; i < h; i++ {
			for j := 0; j < w; j++ {
				b.Ones[i][j] = r.Float64() < p
			}
		}
		slow := b.LargestRectangle()
		fast := b.LargestRectangleFast()
		if slow != fast {
			t.Logf("mask:\n%s slow=%v fast=%v", b, slow, fast)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdValue(t *testing.T) {
	tb := New([]float64{1, 2, 3}, []float64{1, 2, 3})
	for i := range tb.Values {
		for j := range tb.Values[i] {
			tb.Values[i][j] = float64(10*i + j)
		}
	}
	r := Rect{L1: 0, S1: 0, L2: 1, S2: 2}
	if got := tb.ThresholdValue(r); got != 12 {
		t.Errorf("ThresholdValue=%g want 12 (far corner)", got)
	}
	if got := tb.ThresholdValue(Rect{L1: 0, S1: 0, L2: -1, S2: -1}); got != 0 {
		t.Errorf("empty rect threshold %g want 0", got)
	}
}

func TestSlopeTables(t *testing.T) {
	// f(l,s) = 4l + 7s has constant per-unit slopes 4 (load) and 7 (slew).
	tb := NewFilled(
		[]float64{1, 2, 4, 8},
		[]float64{1, 3, 9},
		func(l, s float64) float64 { return 4*l + 7*s },
	)
	ls := tb.LoadSlope()
	ss := tb.SlewSlope()
	for j := range tb.Slews {
		if ls.Values[0][j] != 0 {
			t.Errorf("load slope first row must be zero, got %g", ls.Values[0][j])
		}
	}
	for i := range tb.Loads {
		if ss.Values[i][0] != 0 {
			t.Errorf("slew slope first column must be zero, got %g", ss.Values[i][0])
		}
	}
	for i := 1; i < len(tb.Loads); i++ {
		for j := range tb.Slews {
			if !almostEq(ls.Values[i][j], 4, 1e-12) {
				t.Fatalf("load slope (%d,%d)=%g want 4", i, j, ls.Values[i][j])
			}
		}
	}
	for i := range tb.Loads {
		for j := 1; j < len(tb.Slews); j++ {
			if !almostEq(ss.Values[i][j], 7, 1e-12) {
				t.Fatalf("slew slope (%d,%d)=%g want 7", i, j, ss.Values[i][j])
			}
		}
	}
}

func TestIndexSlopeTables(t *testing.T) {
	tb := NewFilled(
		[]float64{1, 2, 4},
		[]float64{1, 3},
		func(l, s float64) float64 { return l + s },
	)
	ils := tb.IndexLoadSlope()
	// Row 2: Q(2,j) - Q(1,j) = 4-2 = 2 regardless of axis spacing.
	if ils.Values[2][0] != 2 {
		t.Errorf("index load slope %g want 2", ils.Values[2][0])
	}
	iss := tb.IndexSlewSlope()
	if iss.Values[0][1] != 2 {
		t.Errorf("index slew slope %g want 2", iss.Values[0][1])
	}
}

func TestBinaryString(t *testing.T) {
	b := maskFromStrings("10", "01")
	if got := b.String(); got != "10\n01\n" {
		t.Errorf("String()=%q", got)
	}
}

func TestRectString(t *testing.T) {
	r := Rect{L1: 0, S1: 1, L2: 2, S2: 3}
	if r.String() == "" {
		t.Error("empty Rect.String()")
	}
}

func TestThresholdLEInclusive(t *testing.T) {
	tb := New([]float64{1, 2}, []float64{1, 2})
	tb.Values[0][0] = 0.1
	tb.Values[0][1] = 0.5
	tb.Values[1][0] = 0.5
	tb.Values[1][1] = 0.9
	le := tb.ThresholdLE(0.5)
	if !le.Ones[0][0] || !le.Ones[0][1] || !le.Ones[1][0] {
		t.Error("values <= limit must be ones")
	}
	if le.Ones[1][1] {
		t.Error("0.9 above limit")
	}
	// Strict vs inclusive differ exactly on the boundary entries.
	strict := tb.Threshold(0.5)
	if strict.CountOnes() != 1 || le.CountOnes() != 3 {
		t.Errorf("strict %d inclusive %d", strict.CountOnes(), le.CountOnes())
	}
}
