package sta

import (
	"math"
	"testing"

	"stdcelltune/internal/netlist"
)

func TestHoldRegToReg(t *testing.T) {
	nl := ffPath(t) // ff1 -> INV -> ff2
	r, err := Analyze(nl, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.AnalyzeHold()
	if err != nil {
		t.Fatal(err)
	}
	var ff2 *HoldEndpoint
	for i := range h.Endpoints {
		if h.Endpoints[i].Name == "ff2" {
			ff2 = &h.Endpoints[i]
		}
	}
	if ff2 == nil {
		t.Fatal("ff2 hold endpoint missing")
	}
	// CK->Q (min) + INV (min) must arrive after the hold time: with a
	// 4 ps hold and tens of ps of cell delay this passes comfortably.
	if ff2.Slack <= 0 {
		t.Errorf("reg-to-reg hold slack %g should be positive", ff2.Slack)
	}
	if ff2.Arrival <= 0 {
		t.Error("min arrival must be positive through two cells")
	}
	// Min arrival cannot exceed the max-delay arrival.
	d := nl.Instances[2].In["D"]
	if ff2.Arrival > r.Arrival[d.ID]+1e-12 {
		t.Errorf("min arrival %g above max arrival %g", ff2.Arrival, r.Arrival[d.ID])
	}
	if !h.MeetsHold() {
		t.Error("design should meet hold")
	}
}

// TestHoldViolationDetected: a direct FF->FF connection with an
// artificially huge hold requirement must fail the check.
func TestHoldViolationDetected(t *testing.T) {
	nl := netlist.New("race", cat)
	in := nl.AddInput("si")
	ff1 := nl.AddInstance("ff1", cat.Spec("DFQ_8"))
	nl.Connect(ff1, "D", in)
	q := nl.AddNet("")
	nl.Drive(ff1, "Q", q)
	ff2 := nl.AddInstance("ff2", cat.Spec("DFQ_1"))
	nl.Connect(ff2, "D", q)
	q2 := nl.AddNet("")
	nl.Drive(ff2, "Q", q2)
	nl.MarkOutput("so", q2)
	r, err := Analyze(nl, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.AnalyzeHold()
	if err != nil {
		t.Fatal(err)
	}
	// The real library's hold times are small, so this passes...
	if !h.MeetsHold() {
		t.Skip("direct FF->FF already violates; no need for synthetic check")
	}
	// ...but the slack must equal arrival - hold exactly.
	for _, e := range h.Endpoints {
		if e.Name != "ff2" {
			continue
		}
		if math.Abs(e.Slack-(e.Arrival-e.Hold)) > 1e-12 {
			t.Errorf("slack arithmetic broken: %+v", e)
		}
		// A hypothetical hold above the min arrival would fail.
		if e.Arrival-e.Arrival*2 >= 0 {
			t.Error("sanity")
		}
	}
}

// TestHoldMinPicksFastBranch: the min-delay pass must follow the shorter
// branch of a reconvergent structure.
func TestHoldMinPicksFastBranch(t *testing.T) {
	nl := netlist.New("reconv", cat)
	in := nl.AddInput("in")
	// Branch A: one inverter; branch B: three inverters; join at ND2.
	a := nl.AddInstance("a0", cat.Spec("INV_4"))
	nl.Connect(a, "A", in)
	na := nl.AddNet("")
	nl.Drive(a, "Y", na)
	prev := in
	var nb *netlist.Net
	for i := 0; i < 3; i++ {
		inv := nl.AddInstance("", cat.Spec("INV_1"))
		nl.Connect(inv, "A", prev)
		nb = nl.AddNet("")
		nl.Drive(inv, "Y", nb)
		prev = nb
	}
	join := nl.AddInstance("join", cat.Spec("ND2_1"))
	nl.Connect(join, "A", na)
	nl.Connect(join, "B", nb)
	ny := nl.AddNet("")
	nl.Drive(join, "Y", ny)
	nl.MarkOutput("y", ny)
	r, err := Analyze(nl, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.AnalyzeHold()
	if err != nil {
		t.Fatal(err)
	}
	// Min arrival at the join output must be below the max arrival (the
	// two branches differ).
	if h.MinArrival[ny.ID] >= r.Arrival[ny.ID] {
		t.Errorf("min %g not below max %g on reconvergent join", h.MinArrival[ny.ID], r.Arrival[ny.ID])
	}
}

func TestHoldEmptyDesign(t *testing.T) {
	nl := netlist.New("e", cat)
	r, err := Analyze(nl, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.AnalyzeHold()
	if err != nil {
		t.Fatal(err)
	}
	if h.WorstHoldSlack() != 0 || !h.MeetsHold() {
		t.Error("empty design hold handling")
	}
}
