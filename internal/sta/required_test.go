package sta

import (
	"math"
	"testing"

	"stdcelltune/internal/netlist"
)

func TestRequiredTimesChain(t *testing.T) {
	nl := chain(t) // in -> INV_1 -> INV_2 -> out
	cfg := DefaultConfig(5)
	r, err := Analyze(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := r.RequiredTimes()
	out := nl.OutputNet("out")
	// The output net's required time is the effective clock.
	want := cfg.ClockPeriod - cfg.Uncertainty
	if math.Abs(req[out.ID]-want) > 1e-12 {
		t.Errorf("required(out)=%g want %g", req[out.ID], want)
	}
	// Upstream required = downstream required - arc delay, so net slack
	// is constant along a single chain.
	slacks := r.NetSlacks()
	var chainSlack []float64
	for _, n := range nl.Nets {
		if n.PrimaryIn {
			continue
		}
		chainSlack = append(chainSlack, slacks[n.ID])
	}
	for i := 1; i < len(chainSlack); i++ {
		if math.Abs(chainSlack[i]-chainSlack[0]) > 1e-9 {
			t.Errorf("slack varies along a single chain: %v", chainSlack)
		}
	}
	// Endpoint slack must equal the output net slack.
	if math.Abs(slacks[out.ID]-r.Endpoints[0].Slack) > 1e-9 {
		t.Errorf("net slack %g vs endpoint slack %g", slacks[out.ID], r.Endpoints[0].Slack)
	}
}

func TestRequiredTimesSetupSubtracted(t *testing.T) {
	nl := ffPath(t) // ff1 -> inv -> ff2
	cfg := DefaultConfig(4)
	r, err := Analyze(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := r.RequiredTimes()
	// The D net of ff2 must carry required = T - uncertainty - setup.
	var ff2 *netlist.Instance
	for _, inst := range nl.Instances {
		if inst.Name == "ff2" {
			ff2 = inst
		}
	}
	d := ff2.In["D"]
	want := cfg.ClockPeriod - cfg.Uncertainty - ff2.Spec.SetupTime(nl.Cat.Corner)
	if math.Abs(req[d.ID]-want) > 1e-12 {
		t.Errorf("required(D)=%g want %g", req[d.ID], want)
	}
}

func TestRequiredTimesDivergentFanout(t *testing.T) {
	// One driver feeding a short path and a long path: its required time
	// is set by the more critical (longer) branch.
	nl := netlist.New("fan", cat)
	in := nl.AddInput("in")
	drv := nl.AddInstance("drv", cat.Spec("INV_2"))
	nl.Connect(drv, "A", in)
	stem := nl.AddNet("stem")
	nl.Drive(drv, "Y", stem)
	// Short branch: direct PO.
	nl.MarkOutput("short", stem)
	// Long branch: 4 inverters then PO.
	cur := stem
	for i := 0; i < 4; i++ {
		inv := nl.AddInstance("", cat.Spec("INV_1"))
		nl.Connect(inv, "A", cur)
		nxt := nl.AddNet("")
		nl.Drive(inv, "Y", nxt)
		cur = nxt
	}
	nl.MarkOutput("long", cur)
	r, err := Analyze(nl, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	req := r.RequiredTimes()
	eff := r.Cfg.ClockPeriod - r.Cfg.Uncertainty
	// Stem required must be strictly below the PO requirement (the long
	// branch eats into it) even though the stem itself is also a PO.
	if req[stem.ID] >= eff {
		t.Errorf("stem required %g not reduced by the long branch (eff %g)", req[stem.ID], eff)
	}
	// And the slack of the stem equals the worst (long) endpoint slack.
	slacks := r.NetSlacks()
	var longSlack float64
	for _, ep := range r.Endpoints {
		if ep.Name == "long" {
			longSlack = ep.Slack
		}
	}
	if math.Abs(slacks[stem.ID]-longSlack) > 1e-9 {
		t.Errorf("stem slack %g want long-branch slack %g", slacks[stem.ID], longSlack)
	}
}

func TestRequiredInfinityForDeadNets(t *testing.T) {
	// A net with no downstream endpoint keeps +Inf required time.
	nl := netlist.New("dead", cat)
	in := nl.AddInput("in")
	inv := nl.AddInstance("u", cat.Spec("INV_1"))
	nl.Connect(inv, "A", in)
	dead := nl.AddNet("dead")
	nl.Drive(inv, "Y", dead)
	// A second, live cone so the design has an endpoint.
	inv2 := nl.AddInstance("v", cat.Spec("INV_1"))
	nl.Connect(inv2, "A", in)
	o := nl.AddNet("")
	nl.Drive(inv2, "Y", o)
	nl.MarkOutput("y", o)
	r, err := Analyze(nl, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	req := r.RequiredTimes()
	if !math.IsInf(req[dead.ID], 1) {
		t.Errorf("dead net required %g want +Inf", req[dead.ID])
	}
	if !math.IsInf(r.NetSlacks()[dead.ID], 1) {
		t.Error("dead net slack should be +Inf")
	}
}
