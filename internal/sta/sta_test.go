package sta

import (
	"math"
	"strings"
	"testing"

	"stdcelltune/internal/netlist"
	"stdcelltune/internal/stdcell"
)

var cat = stdcell.NewCatalogue(stdcell.Typical)

// chain builds: in -> INV_1 -> INV_2 -> out
func chain(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("chain", cat)
	in := nl.AddInput("in")
	i1 := nl.AddInstance("i1", cat.Spec("INV_1"))
	nl.Connect(i1, "A", in)
	n1 := nl.AddNet("")
	nl.Drive(i1, "Y", n1)
	i2 := nl.AddInstance("i2", cat.Spec("INV_2"))
	nl.Connect(i2, "A", n1)
	n2 := nl.AddNet("")
	nl.Drive(i2, "Y", n2)
	nl.MarkOutput("out", n2)
	return nl
}

func TestAnalyzeChainArrival(t *testing.T) {
	nl := chain(t)
	cfg := DefaultConfig(5)
	r, err := Analyze(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: load(n1) = cin(INV_2) + wire; load(n2) = outputLoad + wire.
	inv1, inv2 := cat.Spec("INV_1"), cat.Spec("INV_2")
	l1 := inv2.InputCap() + cfg.WireCapPerFanout
	l2 := cfg.OutputLoad + cfg.WireCapPerFanout
	lib := cat.Lib
	arc1 := lib.Cell("INV_1").Pin("Y").Timing[0]
	d1 := math.Max(arc1.CellRise.Lookup(l1, cfg.InputSlew), arc1.CellFall.Lookup(l1, cfg.InputSlew))
	s1 := math.Max(arc1.RiseTransition.Lookup(l1, cfg.InputSlew), arc1.FallTransition.Lookup(l1, cfg.InputSlew))
	arc2 := lib.Cell("INV_2").Pin("Y").Timing[0]
	d2 := math.Max(arc2.CellRise.Lookup(l2, s1), arc2.CellFall.Lookup(l2, s1))
	n2 := nl.OutputNet("out")
	if got := r.Arrival[n2.ID]; math.Abs(got-(d1+d2)) > 1e-9 {
		t.Errorf("arrival %g want %g", got, d1+d2)
	}
	if len(r.Endpoints) != 1 || r.Endpoints[0].Name != "out" {
		t.Fatalf("endpoints %+v", r.Endpoints)
	}
	wantSlack := cfg.ClockPeriod - cfg.Uncertainty - (d1 + d2)
	if got := r.Endpoints[0].Slack; math.Abs(got-wantSlack) > 1e-9 {
		t.Errorf("slack %g want %g", got, wantSlack)
	}
	if !r.MeetsTiming() {
		t.Error("relaxed chain should meet timing")
	}
	_ = inv1
}

func TestWNSAndTNS(t *testing.T) {
	nl := chain(t)
	r, err := Analyze(nl, DefaultConfig(0.301)) // required = 1ps: fails
	if err != nil {
		t.Fatal(err)
	}
	if r.WNS() >= 0 {
		t.Error("expected negative slack at 0.301ns")
	}
	if r.TNS() >= 0 || r.TNS() != r.WNS() {
		t.Errorf("TNS %g WNS %g", r.TNS(), r.WNS())
	}
	if r.MeetsTiming() {
		t.Error("MeetsTiming with negative WNS")
	}
}

// ffPath builds: FF1.Q -> INV -> FF2.D, the canonical reg-to-reg path.
func ffPath(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("ffp", cat)
	ff1 := nl.AddInstance("ff1", cat.Spec("DFQ_1"))
	in := nl.AddInput("si")
	nl.Connect(ff1, "D", in)
	q := nl.AddNet("")
	nl.Drive(ff1, "Q", q)
	inv := nl.AddInstance("mid", cat.Spec("INV_1"))
	nl.Connect(inv, "A", q)
	y := nl.AddNet("")
	nl.Drive(inv, "Y", y)
	ff2 := nl.AddInstance("ff2", cat.Spec("DFQ_1"))
	nl.Connect(ff2, "D", y)
	q2 := nl.AddNet("")
	nl.Drive(ff2, "Q", q2)
	nl.MarkOutput("so", q2)
	return nl
}

func TestRegToRegTiming(t *testing.T) {
	nl := ffPath(t)
	cfg := DefaultConfig(4)
	r, err := Analyze(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Endpoint at ff2 must include setup; arrival = CKQ(ff1) + inv delay.
	var ff2EP *Endpoint
	for i := range r.Endpoints {
		if r.Endpoints[i].Name == "ff2" {
			ff2EP = &r.Endpoints[i]
		}
	}
	if ff2EP == nil {
		t.Fatal("ff2 endpoint missing")
	}
	if !ff2EP.IsFF {
		t.Error("ff2 endpoint not marked FF")
	}
	setup := cat.Spec("DFQ_1").SetupTime(cat.Corner)
	wantSlack := cfg.ClockPeriod - cfg.Uncertainty - setup - ff2EP.Arrival
	if math.Abs(ff2EP.Slack-wantSlack) > 1e-12 {
		t.Errorf("slack %g want %g", ff2EP.Slack, wantSlack)
	}
	if ff2EP.Arrival <= 0 {
		t.Error("reg-to-reg arrival must be positive (CK->Q plus logic)")
	}
	// Worst path: FF1 (launch) + INV = depth 2.
	p := r.WorstPath(*ff2EP)
	if p.Depth() != 2 {
		t.Fatalf("path depth %d want 2 (launch FF + INV): %+v", p.Depth(), p.Steps)
	}
	if p.Steps[0].Inst.Name != "ff1" || p.Steps[0].FromPin != "CK" {
		t.Errorf("launch step %+v", p.Steps[0])
	}
	if p.Steps[1].Inst.Name != "mid" {
		t.Errorf("second step %+v", p.Steps[1])
	}
	// Step delays must sum to the endpoint arrival.
	sum := 0.0
	for _, s := range p.Steps {
		sum += s.Delay
	}
	if math.Abs(sum-ff2EP.Arrival) > 1e-9 {
		t.Errorf("step delays sum %g want arrival %g", sum, ff2EP.Arrival)
	}
}

// TestWorstPathPicksLonger: diamond with a short and a long branch; the
// backtrace must follow the long one.
func TestWorstPathPicksLonger(t *testing.T) {
	nl := netlist.New("diamond", cat)
	in := nl.AddInput("in")
	// Short branch: one inverter.
	a := nl.AddInstance("a", cat.Spec("INV_4"))
	nl.Connect(a, "A", in)
	na := nl.AddNet("")
	nl.Drive(a, "Y", na)
	// Long branch: three inverters.
	prev := in
	var nb *netlist.Net
	for i := 0; i < 3; i++ {
		inv := nl.AddInstance("", cat.Spec("INV_1"))
		nl.Connect(inv, "A", prev)
		nb = nl.AddNet("")
		nl.Drive(inv, "Y", nb)
		prev = nb
	}
	// Join with a NAND.
	nd := nl.AddInstance("join", cat.Spec("ND2_1"))
	nl.Connect(nd, "A", na)
	nl.Connect(nd, "B", nb)
	ny := nl.AddNet("")
	nl.Drive(nd, "Y", ny)
	nl.MarkOutput("y", ny)
	r, err := Analyze(nl, DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	p := r.WorstPath(r.Endpoints[0])
	if p.Depth() != 4 { // 3 inverters + NAND
		t.Fatalf("depth %d want 4", p.Depth())
	}
	if p.Steps[len(p.Steps)-1].FromPin != "B" {
		t.Errorf("join entered through %s want B", p.Steps[len(p.Steps)-1].FromPin)
	}
}

func TestMaxCapViolation(t *testing.T) {
	nl := netlist.New("viol", cat)
	in := nl.AddInput("in")
	drv := nl.AddInstance("drv", cat.Spec("INV_1"))
	nl.Connect(drv, "A", in)
	n := nl.AddNet("")
	nl.Drive(drv, "Y", n)
	// 60 heavy sinks exceed INV_1's max load.
	for i := 0; i < 60; i++ {
		s := nl.AddInstance("", cat.Spec("INV_32"))
		nl.Connect(s, "A", n)
		o := nl.AddNet("")
		nl.Drive(s, "Y", o)
		nl.MarkOutput("", o)
	}
	r, err := Analyze(nl, DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MaxCapViolations) == 0 {
		t.Fatal("overloaded net not reported")
	}
	if r.MeetsTiming() {
		t.Error("MeetsTiming despite max-cap violation")
	}
}

func TestSlewDegradesWithLoad(t *testing.T) {
	// Same driver, light vs heavy load: the heavy net must see a slower
	// transition and a larger delay.
	build := func(sinks int) float64 {
		nl := netlist.New("slew", cat)
		in := nl.AddInput("in")
		drv := nl.AddInstance("drv", cat.Spec("INV_2"))
		nl.Connect(drv, "A", in)
		n := nl.AddNet("")
		nl.Drive(drv, "Y", n)
		for i := 0; i < sinks; i++ {
			s := nl.AddInstance("", cat.Spec("INV_1"))
			nl.Connect(s, "A", n)
			o := nl.AddNet("")
			nl.Drive(s, "Y", o)
			nl.MarkOutput("", o)
		}
		r, err := Analyze(nl, DefaultConfig(10))
		if err != nil {
			t.Fatal(err)
		}
		return r.Slew[n.ID]
	}
	if build(8) <= build(1) {
		t.Error("slew should degrade with fanout")
	}
}

func TestOperatingPoints(t *testing.T) {
	nl := chain(t)
	r, err := Analyze(nl, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	ops := r.OperatingPoints()
	if len(ops) != 2 {
		t.Fatalf("ops %d want 2", len(ops))
	}
	for _, op := range ops {
		if op.Load <= 0 {
			t.Error("non-positive load")
		}
		if op.WorstIn < r.Cfg.InputSlew {
			t.Error("input slew below config floor")
		}
	}
}

func TestCriticalPath(t *testing.T) {
	nl := ffPath(t)
	r, err := Analyze(nl, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth() == 0 {
		t.Error("empty critical path")
	}
	// Empty netlist: no endpoints.
	empty := netlist.New("e", cat)
	re, err := Analyze(empty, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.CriticalPath(); err == nil {
		t.Error("critical path of empty design should error")
	}
	if re.WNS() != 0 {
		t.Error("empty design WNS should be 0")
	}
}

func TestTieCellTiming(t *testing.T) {
	nl := netlist.New("tie", cat)
	tie := nl.AddInstance("th", cat.Spec("TIEH_1"))
	n := nl.AddNet("")
	nl.Drive(tie, "Y", n)
	inv := nl.AddInstance("i", cat.Spec("INV_1"))
	nl.Connect(inv, "A", n)
	o := nl.AddNet("")
	nl.Drive(inv, "Y", o)
	nl.MarkOutput("y", o)
	r, err := Analyze(nl, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if r.Arrival[n.ID] != 0 {
		t.Error("tie output should arrive at t=0")
	}
	if !r.MeetsTiming() {
		t.Error("tie design should meet timing")
	}
}

func TestReportTiming(t *testing.T) {
	nl := ffPath(t)
	r, err := Analyze(nl, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	out := r.ReportTiming()
	for _, want := range []string{"Startpoint: ff1/CK (clock edge)", "setup check", "slack", "MET", "DFQ_1", "INV_1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Violated path shows VIOLATED.
	r2, err := Analyze(nl, DefaultConfig(0.31))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r2.ReportTiming(), "VIOLATED") {
		t.Error("violated path not flagged")
	}
	// Empty design.
	empty := netlist.New("e", cat)
	re, err := Analyze(empty, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(re.ReportTiming(), "no timing paths") {
		t.Error("empty design report")
	}
}
