package sta

import "math"

// Hold (min-delay) analysis. Setup checks bound the slowest path; hold
// checks bound the fastest: data launched at a clock edge must not race
// through and corrupt the capturing flop's previous value. With an ideal
// (zero-skew) clock the check is earliestArrival >= holdTime.
//
// Restricting a library can only slow paths down, so tuning never
// worsens hold — this analysis exists to verify exactly that.

// HoldEndpoint is a hold check at a flip-flop D pin.
type HoldEndpoint struct {
	Name    string
	Arrival float64 // earliest data arrival, ns
	Hold    float64 // required hold time of the capturing FF
	Slack   float64 // Arrival - Hold (positive = safe)
}

// HoldResult carries the min-delay analysis.
type HoldResult struct {
	// MinArrival per net ID: the earliest the net can switch after the
	// launching clock edge.
	MinArrival []float64
	Endpoints  []HoldEndpoint
}

// WorstHoldSlack returns the most negative hold slack (positive when all
// checks pass).
func (h *HoldResult) WorstHoldSlack() float64 {
	w := math.Inf(1)
	for _, e := range h.Endpoints {
		if e.Slack < w {
			w = e.Slack
		}
	}
	if math.IsInf(w, 1) {
		return 0
	}
	return w
}

// MeetsHold reports whether every hold check passes.
func (h *HoldResult) MeetsHold() bool { return h.WorstHoldSlack() >= 0 }

// AnalyzeHold runs the min-delay pass, reusing the max-delay solution's
// loads and slews (standard practice: min arrivals with the same
// parasitics).
func (r *Result) AnalyzeHold() (*HoldResult, error) {
	nl := r.nl
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	h := &HoldResult{MinArrival: make([]float64, len(r.Arrival))}
	for i := range h.MinArrival {
		h.MinArrival[i] = math.Inf(1)
	}
	for _, n := range nl.Nets {
		if n.PrimaryIn {
			h.MinArrival[n.ID] = 0
		}
	}
	for _, inst := range order {
		if inst.Spec.IsSequential() {
			for pin, out := range inst.Out {
				arc := r.arcOf(inst, pin, inst.Spec.Clock)
				if arc == nil {
					continue
				}
				// Min delay: the faster of the rise/fall tables.
				d := math.Min(arc.CellRise.Lookup(r.Load[out.ID], r.Cfg.InputSlew),
					arc.CellFall.Lookup(r.Load[out.ID], r.Cfg.InputSlew))
				h.MinArrival[out.ID] = d
			}
			continue
		}
		for pin, out := range inst.Out {
			best := math.Inf(1)
			for _, in := range inst.Spec.Inputs {
				inNet := inst.In[in]
				if inNet == nil {
					continue
				}
				arc := r.arcOf(inst, pin, in)
				if arc == nil {
					continue
				}
				d := math.Min(arc.CellRise.Lookup(r.Load[out.ID], r.Slew[inNet.ID]),
					arc.CellFall.Lookup(r.Load[out.ID], r.Slew[inNet.ID]))
				if a := h.MinArrival[inNet.ID] + d; a < best {
					best = a
				}
			}
			if math.IsInf(best, 1) {
				best = 0 // tie cells: constant, never races
			}
			h.MinArrival[out.ID] = best
		}
	}
	for _, inst := range nl.Instances {
		if !inst.Spec.IsSequential() {
			continue
		}
		d := inst.In["D"]
		if d == nil || d.Driver == nil {
			// Primary-input-fed flops are externally timed; without an
			// input-delay constraint a hold check there is meaningless.
			continue
		}
		hold := inst.Spec.HoldTime(nl.Cat.Corner)
		h.Endpoints = append(h.Endpoints, HoldEndpoint{
			Name:    inst.Name,
			Arrival: h.MinArrival[d.ID],
			Hold:    hold,
			Slack:   h.MinArrival[d.ID] - hold,
		})
	}
	return h, nil
}
